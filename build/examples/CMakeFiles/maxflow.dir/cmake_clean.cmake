file(REMOVE_RECURSE
  "CMakeFiles/maxflow.dir/maxflow.cpp.o"
  "CMakeFiles/maxflow.dir/maxflow.cpp.o.d"
  "maxflow"
  "maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
