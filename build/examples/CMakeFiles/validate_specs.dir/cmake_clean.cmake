file(REMOVE_RECURSE
  "CMakeFiles/validate_specs.dir/validate_specs.cpp.o"
  "CMakeFiles/validate_specs.dir/validate_specs.cpp.o.d"
  "validate_specs"
  "validate_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
