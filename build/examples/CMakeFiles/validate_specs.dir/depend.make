# Empty dependencies file for validate_specs.
# This may be replaced when dependencies are built.
