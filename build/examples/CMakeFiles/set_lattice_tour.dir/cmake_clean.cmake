file(REMOVE_RECURSE
  "CMakeFiles/set_lattice_tour.dir/set_lattice_tour.cpp.o"
  "CMakeFiles/set_lattice_tour.dir/set_lattice_tour.cpp.o.d"
  "set_lattice_tour"
  "set_lattice_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_lattice_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
