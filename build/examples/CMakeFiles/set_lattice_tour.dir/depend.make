# Empty dependencies file for set_lattice_tour.
# This may be replaced when dependencies are built.
