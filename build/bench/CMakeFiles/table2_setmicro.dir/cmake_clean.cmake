file(REMOVE_RECURSE
  "CMakeFiles/table2_setmicro.dir/table2_setmicro.cpp.o"
  "CMakeFiles/table2_setmicro.dir/table2_setmicro.cpp.o.d"
  "table2_setmicro"
  "table2_setmicro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_setmicro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
