# Empty compiler generated dependencies file for table2_setmicro.
# This may be replaced when dependencies are built.
