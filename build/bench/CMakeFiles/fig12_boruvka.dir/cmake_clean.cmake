file(REMOVE_RECURSE
  "CMakeFiles/fig12_boruvka.dir/fig12_boruvka.cpp.o"
  "CMakeFiles/fig12_boruvka.dir/fig12_boruvka.cpp.o.d"
  "fig12_boruvka"
  "fig12_boruvka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_boruvka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
