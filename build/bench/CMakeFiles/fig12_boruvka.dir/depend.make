# Empty dependencies file for fig12_boruvka.
# This may be replaced when dependencies are built.
