file(REMOVE_RECURSE
  "CMakeFiles/table1_parameter.dir/table1_parameter.cpp.o"
  "CMakeFiles/table1_parameter.dir/table1_parameter.cpp.o.d"
  "table1_parameter"
  "table1_parameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_parameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
