# Empty compiler generated dependencies file for table1_parameter.
# This may be replaced when dependencies are built.
