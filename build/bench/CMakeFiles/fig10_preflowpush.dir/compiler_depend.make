# Empty compiler generated dependencies file for fig10_preflowpush.
# This may be replaced when dependencies are built.
