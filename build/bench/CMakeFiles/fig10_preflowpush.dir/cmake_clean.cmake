file(REMOVE_RECURSE
  "CMakeFiles/fig10_preflowpush.dir/fig10_preflowpush.cpp.o"
  "CMakeFiles/fig10_preflowpush.dir/fig10_preflowpush.cpp.o.d"
  "fig10_preflowpush"
  "fig10_preflowpush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_preflowpush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
