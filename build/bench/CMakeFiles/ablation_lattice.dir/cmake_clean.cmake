file(REMOVE_RECURSE
  "CMakeFiles/ablation_lattice.dir/ablation_lattice.cpp.o"
  "CMakeFiles/ablation_lattice.dir/ablation_lattice.cpp.o.d"
  "ablation_lattice"
  "ablation_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
