# Empty compiler generated dependencies file for ablation_lattice.
# This may be replaced when dependencies are built.
