file(REMOVE_RECURSE
  "CMakeFiles/fig11_clustering.dir/fig11_clustering.cpp.o"
  "CMakeFiles/fig11_clustering.dir/fig11_clustering.cpp.o.d"
  "fig11_clustering"
  "fig11_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
