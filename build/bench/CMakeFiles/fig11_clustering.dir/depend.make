# Empty dependencies file for fig11_clustering.
# This may be replaced when dependencies are built.
