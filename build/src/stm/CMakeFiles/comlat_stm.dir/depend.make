# Empty dependencies file for comlat_stm.
# This may be replaced when dependencies are built.
