file(REMOVE_RECURSE
  "CMakeFiles/comlat_stm.dir/ObjectStm.cpp.o"
  "CMakeFiles/comlat_stm.dir/ObjectStm.cpp.o.d"
  "libcomlat_stm.a"
  "libcomlat_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
