
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stm/ObjectStm.cpp" "src/stm/CMakeFiles/comlat_stm.dir/ObjectStm.cpp.o" "gcc" "src/stm/CMakeFiles/comlat_stm.dir/ObjectStm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/comlat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
