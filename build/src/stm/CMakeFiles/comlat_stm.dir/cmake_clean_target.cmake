file(REMOVE_RECURSE
  "libcomlat_stm.a"
)
