# Empty compiler generated dependencies file for comlat_apps.
# This may be replaced when dependencies are built.
