
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/Boruvka.cpp" "src/apps/CMakeFiles/comlat_apps.dir/Boruvka.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/Boruvka.cpp.o.d"
  "/root/repo/src/apps/Clustering.cpp" "src/apps/CMakeFiles/comlat_apps.dir/Clustering.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/Clustering.cpp.o.d"
  "/root/repo/src/apps/Genrmf.cpp" "src/apps/CMakeFiles/comlat_apps.dir/Genrmf.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/Genrmf.cpp.o.d"
  "/root/repo/src/apps/MaxflowReference.cpp" "src/apps/CMakeFiles/comlat_apps.dir/MaxflowReference.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/MaxflowReference.cpp.o.d"
  "/root/repo/src/apps/PreflowPush.cpp" "src/apps/CMakeFiles/comlat_apps.dir/PreflowPush.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/PreflowPush.cpp.o.d"
  "/root/repo/src/apps/SetMicrobench.cpp" "src/apps/CMakeFiles/comlat_apps.dir/SetMicrobench.cpp.o" "gcc" "src/apps/CMakeFiles/comlat_apps.dir/SetMicrobench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adt/CMakeFiles/comlat_adt.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/comlat_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/comlat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
