file(REMOVE_RECURSE
  "libcomlat_apps.a"
)
