file(REMOVE_RECURSE
  "CMakeFiles/comlat_apps.dir/Boruvka.cpp.o"
  "CMakeFiles/comlat_apps.dir/Boruvka.cpp.o.d"
  "CMakeFiles/comlat_apps.dir/Clustering.cpp.o"
  "CMakeFiles/comlat_apps.dir/Clustering.cpp.o.d"
  "CMakeFiles/comlat_apps.dir/Genrmf.cpp.o"
  "CMakeFiles/comlat_apps.dir/Genrmf.cpp.o.d"
  "CMakeFiles/comlat_apps.dir/MaxflowReference.cpp.o"
  "CMakeFiles/comlat_apps.dir/MaxflowReference.cpp.o.d"
  "CMakeFiles/comlat_apps.dir/PreflowPush.cpp.o"
  "CMakeFiles/comlat_apps.dir/PreflowPush.cpp.o.d"
  "CMakeFiles/comlat_apps.dir/SetMicrobench.cpp.o"
  "CMakeFiles/comlat_apps.dir/SetMicrobench.cpp.o.d"
  "libcomlat_apps.a"
  "libcomlat_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
