# Empty compiler generated dependencies file for comlat_support.
# This may be replaced when dependencies are built.
