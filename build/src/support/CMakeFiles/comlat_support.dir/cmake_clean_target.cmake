file(REMOVE_RECURSE
  "libcomlat_support.a"
)
