file(REMOVE_RECURSE
  "CMakeFiles/comlat_support.dir/Options.cpp.o"
  "CMakeFiles/comlat_support.dir/Options.cpp.o.d"
  "CMakeFiles/comlat_support.dir/Random.cpp.o"
  "CMakeFiles/comlat_support.dir/Random.cpp.o.d"
  "CMakeFiles/comlat_support.dir/Stats.cpp.o"
  "CMakeFiles/comlat_support.dir/Stats.cpp.o.d"
  "libcomlat_support.a"
  "libcomlat_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
