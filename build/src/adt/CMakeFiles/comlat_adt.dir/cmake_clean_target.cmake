file(REMOVE_RECURSE
  "libcomlat_adt.a"
)
