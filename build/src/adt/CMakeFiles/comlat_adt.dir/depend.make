# Empty dependencies file for comlat_adt.
# This may be replaced when dependencies are built.
