file(REMOVE_RECURSE
  "CMakeFiles/comlat_adt.dir/Accumulator.cpp.o"
  "CMakeFiles/comlat_adt.dir/Accumulator.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/AdaptiveSet.cpp.o"
  "CMakeFiles/comlat_adt.dir/AdaptiveSet.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/BoostedKdTree.cpp.o"
  "CMakeFiles/comlat_adt.dir/BoostedKdTree.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/BoostedSet.cpp.o"
  "CMakeFiles/comlat_adt.dir/BoostedSet.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/BoostedUnionFind.cpp.o"
  "CMakeFiles/comlat_adt.dir/BoostedUnionFind.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/FlowGraph.cpp.o"
  "CMakeFiles/comlat_adt.dir/FlowGraph.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/IntHashSet.cpp.o"
  "CMakeFiles/comlat_adt.dir/IntHashSet.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/KdTree.cpp.o"
  "CMakeFiles/comlat_adt.dir/KdTree.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/OwnerLocks.cpp.o"
  "CMakeFiles/comlat_adt.dir/OwnerLocks.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/SetSpecs.cpp.o"
  "CMakeFiles/comlat_adt.dir/SetSpecs.cpp.o.d"
  "CMakeFiles/comlat_adt.dir/UnionFind.cpp.o"
  "CMakeFiles/comlat_adt.dir/UnionFind.cpp.o.d"
  "libcomlat_adt.a"
  "libcomlat_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
