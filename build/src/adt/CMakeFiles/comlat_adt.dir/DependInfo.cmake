
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adt/Accumulator.cpp" "src/adt/CMakeFiles/comlat_adt.dir/Accumulator.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/Accumulator.cpp.o.d"
  "/root/repo/src/adt/AdaptiveSet.cpp" "src/adt/CMakeFiles/comlat_adt.dir/AdaptiveSet.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/AdaptiveSet.cpp.o.d"
  "/root/repo/src/adt/BoostedKdTree.cpp" "src/adt/CMakeFiles/comlat_adt.dir/BoostedKdTree.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/BoostedKdTree.cpp.o.d"
  "/root/repo/src/adt/BoostedSet.cpp" "src/adt/CMakeFiles/comlat_adt.dir/BoostedSet.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/BoostedSet.cpp.o.d"
  "/root/repo/src/adt/BoostedUnionFind.cpp" "src/adt/CMakeFiles/comlat_adt.dir/BoostedUnionFind.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/BoostedUnionFind.cpp.o.d"
  "/root/repo/src/adt/FlowGraph.cpp" "src/adt/CMakeFiles/comlat_adt.dir/FlowGraph.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/FlowGraph.cpp.o.d"
  "/root/repo/src/adt/IntHashSet.cpp" "src/adt/CMakeFiles/comlat_adt.dir/IntHashSet.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/IntHashSet.cpp.o.d"
  "/root/repo/src/adt/KdTree.cpp" "src/adt/CMakeFiles/comlat_adt.dir/KdTree.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/KdTree.cpp.o.d"
  "/root/repo/src/adt/OwnerLocks.cpp" "src/adt/CMakeFiles/comlat_adt.dir/OwnerLocks.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/OwnerLocks.cpp.o.d"
  "/root/repo/src/adt/SetSpecs.cpp" "src/adt/CMakeFiles/comlat_adt.dir/SetSpecs.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/SetSpecs.cpp.o.d"
  "/root/repo/src/adt/UnionFind.cpp" "src/adt/CMakeFiles/comlat_adt.dir/UnionFind.cpp.o" "gcc" "src/adt/CMakeFiles/comlat_adt.dir/UnionFind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/comlat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/comlat_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
