
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/AbstractLockManager.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/AbstractLockManager.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/AbstractLockManager.cpp.o.d"
  "/root/repo/src/runtime/Executor.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/Executor.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/Executor.cpp.o.d"
  "/root/repo/src/runtime/Gatekeeper.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/Gatekeeper.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/Gatekeeper.cpp.o.d"
  "/root/repo/src/runtime/Interleaver.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/Interleaver.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/Interleaver.cpp.o.d"
  "/root/repo/src/runtime/LockScheme.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/LockScheme.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/LockScheme.cpp.o.d"
  "/root/repo/src/runtime/LockTable.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/LockTable.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/LockTable.cpp.o.d"
  "/root/repo/src/runtime/RoundExecutor.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/RoundExecutor.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/RoundExecutor.cpp.o.d"
  "/root/repo/src/runtime/SerialChecker.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/SerialChecker.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/SerialChecker.cpp.o.d"
  "/root/repo/src/runtime/SpecValidator.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/SpecValidator.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/SpecValidator.cpp.o.d"
  "/root/repo/src/runtime/Transaction.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/Transaction.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/Transaction.cpp.o.d"
  "/root/repo/src/runtime/Worklist.cpp" "src/runtime/CMakeFiles/comlat_runtime.dir/Worklist.cpp.o" "gcc" "src/runtime/CMakeFiles/comlat_runtime.dir/Worklist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
