file(REMOVE_RECURSE
  "CMakeFiles/comlat_runtime.dir/AbstractLockManager.cpp.o"
  "CMakeFiles/comlat_runtime.dir/AbstractLockManager.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/Executor.cpp.o"
  "CMakeFiles/comlat_runtime.dir/Executor.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/Gatekeeper.cpp.o"
  "CMakeFiles/comlat_runtime.dir/Gatekeeper.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/Interleaver.cpp.o"
  "CMakeFiles/comlat_runtime.dir/Interleaver.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/LockScheme.cpp.o"
  "CMakeFiles/comlat_runtime.dir/LockScheme.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/LockTable.cpp.o"
  "CMakeFiles/comlat_runtime.dir/LockTable.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/RoundExecutor.cpp.o"
  "CMakeFiles/comlat_runtime.dir/RoundExecutor.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/SerialChecker.cpp.o"
  "CMakeFiles/comlat_runtime.dir/SerialChecker.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/SpecValidator.cpp.o"
  "CMakeFiles/comlat_runtime.dir/SpecValidator.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/Transaction.cpp.o"
  "CMakeFiles/comlat_runtime.dir/Transaction.cpp.o.d"
  "CMakeFiles/comlat_runtime.dir/Worklist.cpp.o"
  "CMakeFiles/comlat_runtime.dir/Worklist.cpp.o.d"
  "libcomlat_runtime.a"
  "libcomlat_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
