file(REMOVE_RECURSE
  "libcomlat_runtime.a"
)
