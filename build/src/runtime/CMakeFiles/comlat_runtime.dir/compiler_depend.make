# Empty compiler generated dependencies file for comlat_runtime.
# This may be replaced when dependencies are built.
