# Empty compiler generated dependencies file for comlat_core.
# This may be replaced when dependencies are built.
