file(REMOVE_RECURSE
  "CMakeFiles/comlat_core.dir/Classify.cpp.o"
  "CMakeFiles/comlat_core.dir/Classify.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Eval.cpp.o"
  "CMakeFiles/comlat_core.dir/Eval.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Expr.cpp.o"
  "CMakeFiles/comlat_core.dir/Expr.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Lattice.cpp.o"
  "CMakeFiles/comlat_core.dir/Lattice.cpp.o.d"
  "CMakeFiles/comlat_core.dir/MethodSig.cpp.o"
  "CMakeFiles/comlat_core.dir/MethodSig.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Simplify.cpp.o"
  "CMakeFiles/comlat_core.dir/Simplify.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Spec.cpp.o"
  "CMakeFiles/comlat_core.dir/Spec.cpp.o.d"
  "CMakeFiles/comlat_core.dir/Value.cpp.o"
  "CMakeFiles/comlat_core.dir/Value.cpp.o.d"
  "libcomlat_core.a"
  "libcomlat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comlat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
