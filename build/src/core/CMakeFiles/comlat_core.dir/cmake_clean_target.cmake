file(REMOVE_RECURSE
  "libcomlat_core.a"
)
