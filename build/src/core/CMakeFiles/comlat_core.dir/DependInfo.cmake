
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Classify.cpp" "src/core/CMakeFiles/comlat_core.dir/Classify.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Classify.cpp.o.d"
  "/root/repo/src/core/Eval.cpp" "src/core/CMakeFiles/comlat_core.dir/Eval.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Eval.cpp.o.d"
  "/root/repo/src/core/Expr.cpp" "src/core/CMakeFiles/comlat_core.dir/Expr.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Expr.cpp.o.d"
  "/root/repo/src/core/Lattice.cpp" "src/core/CMakeFiles/comlat_core.dir/Lattice.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Lattice.cpp.o.d"
  "/root/repo/src/core/MethodSig.cpp" "src/core/CMakeFiles/comlat_core.dir/MethodSig.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/MethodSig.cpp.o.d"
  "/root/repo/src/core/Simplify.cpp" "src/core/CMakeFiles/comlat_core.dir/Simplify.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Simplify.cpp.o.d"
  "/root/repo/src/core/Spec.cpp" "src/core/CMakeFiles/comlat_core.dir/Spec.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Spec.cpp.o.d"
  "/root/repo/src/core/Value.cpp" "src/core/CMakeFiles/comlat_core.dir/Value.cpp.o" "gcc" "src/core/CMakeFiles/comlat_core.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
