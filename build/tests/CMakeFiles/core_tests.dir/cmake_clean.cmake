file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/ClassifyTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ClassifyTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/EvalTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/EvalTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ExprTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ExprTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/LatticeTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/LatticeTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/SimplifyTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/SimplifyTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/SpecTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/SpecTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ValueTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ValueTest.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
