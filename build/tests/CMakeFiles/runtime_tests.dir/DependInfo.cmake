
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/ExecutorTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/ExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/ExecutorTest.cpp.o.d"
  "/root/repo/tests/runtime/GatekeeperTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/GatekeeperTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/GatekeeperTest.cpp.o.d"
  "/root/repo/tests/runtime/InterleaverTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/InterleaverTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/InterleaverTest.cpp.o.d"
  "/root/repo/tests/runtime/LockSchemeTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/LockSchemeTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/LockSchemeTest.cpp.o.d"
  "/root/repo/tests/runtime/LockTableTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/LockTableTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/LockTableTest.cpp.o.d"
  "/root/repo/tests/runtime/RoundExecutorTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/RoundExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/RoundExecutorTest.cpp.o.d"
  "/root/repo/tests/runtime/SerialCheckerTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/SerialCheckerTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/SerialCheckerTest.cpp.o.d"
  "/root/repo/tests/runtime/SpecValidatorTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/SpecValidatorTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/SpecValidatorTest.cpp.o.d"
  "/root/repo/tests/runtime/StmTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/StmTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/StmTest.cpp.o.d"
  "/root/repo/tests/runtime/TransactionTest.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/TransactionTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/TransactionTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/comlat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/adt/CMakeFiles/comlat_adt.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/comlat_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/comlat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
