file(REMOVE_RECURSE
  "CMakeFiles/runtime_tests.dir/runtime/ExecutorTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/ExecutorTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/GatekeeperTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/GatekeeperTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/InterleaverTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/InterleaverTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/LockSchemeTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/LockSchemeTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/LockTableTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/LockTableTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/RoundExecutorTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/RoundExecutorTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/SerialCheckerTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/SerialCheckerTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/SpecValidatorTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/SpecValidatorTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/StmTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/StmTest.cpp.o.d"
  "CMakeFiles/runtime_tests.dir/runtime/TransactionTest.cpp.o"
  "CMakeFiles/runtime_tests.dir/runtime/TransactionTest.cpp.o.d"
  "runtime_tests"
  "runtime_tests.pdb"
  "runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
