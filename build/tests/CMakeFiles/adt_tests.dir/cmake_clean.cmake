file(REMOVE_RECURSE
  "CMakeFiles/adt_tests.dir/adt/AccumulatorTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/AccumulatorTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/AdaptiveSetTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/AdaptiveSetTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/FlowGraphTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/FlowGraphTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/IntHashSetTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/IntHashSetTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/KdTreeTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/KdTreeTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/OwnerLocksTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/OwnerLocksTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/SerializabilityTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/SerializabilityTest.cpp.o.d"
  "CMakeFiles/adt_tests.dir/adt/UnionFindTest.cpp.o"
  "CMakeFiles/adt_tests.dir/adt/UnionFindTest.cpp.o.d"
  "adt_tests"
  "adt_tests.pdb"
  "adt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
