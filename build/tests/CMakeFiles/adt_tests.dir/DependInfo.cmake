
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adt/AccumulatorTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/AccumulatorTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/AccumulatorTest.cpp.o.d"
  "/root/repo/tests/adt/AdaptiveSetTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/AdaptiveSetTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/AdaptiveSetTest.cpp.o.d"
  "/root/repo/tests/adt/FlowGraphTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/FlowGraphTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/FlowGraphTest.cpp.o.d"
  "/root/repo/tests/adt/IntHashSetTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/IntHashSetTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/IntHashSetTest.cpp.o.d"
  "/root/repo/tests/adt/KdTreeTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/KdTreeTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/KdTreeTest.cpp.o.d"
  "/root/repo/tests/adt/OwnerLocksTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/OwnerLocksTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/OwnerLocksTest.cpp.o.d"
  "/root/repo/tests/adt/SerializabilityTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/SerializabilityTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/SerializabilityTest.cpp.o.d"
  "/root/repo/tests/adt/UnionFindTest.cpp" "tests/CMakeFiles/adt_tests.dir/adt/UnionFindTest.cpp.o" "gcc" "tests/CMakeFiles/adt_tests.dir/adt/UnionFindTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/comlat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/adt/CMakeFiles/comlat_adt.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/comlat_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/comlat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comlat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/comlat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
