file(REMOVE_RECURSE
  "CMakeFiles/apps_tests.dir/apps/BoruvkaTest.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/BoruvkaTest.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/ClusteringTest.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/ClusteringTest.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/GenrmfTest.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/GenrmfTest.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/PreflowPushTest.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/PreflowPushTest.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/SetMicrobenchTest.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/SetMicrobenchTest.cpp.o.d"
  "apps_tests"
  "apps_tests.pdb"
  "apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
