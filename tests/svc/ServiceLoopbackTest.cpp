//===- tests/svc/ServiceLoopbackTest.cpp - End-to-end loopback service --------===//
//
// The PR's acceptance test: a loopback comlat-serve instance under real
// concurrent load, with every committed batch checked against the serial
// replay oracle (OracleReplica in commit-sequence order) and the final
// abstract state compared against the server's own dump.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"
#include "svc/LoadGen.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::svc;

TEST(ServiceLoopbackTest, ConcurrentLoadMatchesSerialReplayOracle) {
  ServerConfig SC;
  SC.Port = 0; // ephemeral
  SC.IoThreads = 2;
  SC.Workers = 4;
  SC.UfElements = 256;
  SC.Backoff.Kind = BackoffKind::Yield;
  Server Srv(SC);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;

  LoadGenConfig LC;
  LC.Port = Srv.port();
  LC.Threads = 8;
  LC.BatchesPerThread = 1250; // 8 * 1250 * 8 ops = 80k ops in 10k batches
  LC.OpsPerBatch = 8;
  LC.KeySpace = 128; // small keyspace -> real conflicts -> real retries
  LC.UfElements = SC.UfElements;
  LC.Verify = true;
  const LoadGenStats Stats = runLoadGen(LC);

  EXPECT_EQ(Stats.Sent, 10000u);
  EXPECT_EQ(Stats.OkReplies, 10000u); // closed loop never sheds
  EXPECT_EQ(Stats.BusyReplies, 0u);
  EXPECT_EQ(Stats.ErrorReplies, 0u);
  EXPECT_EQ(Stats.ProtocolErrors, 0u);
  EXPECT_EQ(Stats.OpsCommitted, 80000u);
  ASSERT_TRUE(Stats.VerifyRan);
  EXPECT_TRUE(Stats.VerifyOk) << Stats.VerifyDetail;

  // The service counters saw the run.
  const std::string Metrics = fetchMetricsText("127.0.0.1", Srv.port());
  EXPECT_NE(Metrics.find("comlat_svc_requests_total"), std::string::npos);
  EXPECT_NE(Metrics.find("comlat_svc_request_latency_us"), std::string::npos);
  EXPECT_GE(
      obs::MetricsRegistry::global().counter("comlat_svc_requests_total")
          ->value(),
      10000u);

  Srv.stop();
}

TEST(ServiceLoopbackTest, OpenLoopPacingAlsoVerifies) {
  ServerConfig SC;
  SC.Port = 0;
  SC.UfElements = 64;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  LoadGenConfig LC;
  LC.Port = Srv.port();
  LC.Threads = 2;
  LC.BatchesPerThread = 500;
  LC.OpsPerBatch = 4;
  LC.TargetQps = 20000; // open loop: sends decouple from replies
  LC.UfElements = SC.UfElements;
  LC.Verify = true;
  const LoadGenStats Stats = runLoadGen(LC);

  EXPECT_EQ(Stats.Sent, 1000u);
  EXPECT_EQ(Stats.ProtocolErrors, 0u);
  EXPECT_EQ(Stats.OkReplies + Stats.BusyReplies, 1000u);
  EXPECT_GT(Stats.OkReplies, 0u);
  ASSERT_TRUE(Stats.VerifyRan);
  EXPECT_TRUE(Stats.VerifyOk) << Stats.VerifyDetail;
  Srv.stop();
}

TEST(ServiceLoopbackTest, PingMetricsAndStateFrames) {
  ServerConfig SC;
  SC.Port = 0;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
  Request Req;
  Req.ReqId = 1;
  Req.Type = MsgType::Ping;
  Response Resp;
  ASSERT_TRUE(C.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);

  Req.ReqId = 2;
  Req.Type = MsgType::Batch;
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Set), SetAdd, 11, 0});
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 5, 0});
  ASSERT_TRUE(C.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  ASSERT_EQ(Resp.Results.size(), 2u);
  EXPECT_EQ(Resp.Results[0], 1); // first add returns "changed"
  EXPECT_EQ(Resp.Results[1], 5);
  EXPECT_GT(Resp.CommitSeq, 0u);

  Req.ReqId = 3;
  Req.Type = MsgType::State;
  Req.Ops.clear();
  ASSERT_TRUE(C.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  OracleReplica Replica(SC.UfElements);
  Replica.applyOp({static_cast<uint8_t>(ObjectId::Set), SetAdd, 11, 0});
  Replica.applyOp({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 5, 0});
  EXPECT_EQ(Resp.Text, Replica.stateText());

  Req.ReqId = 4;
  Req.Type = MsgType::Metrics;
  ASSERT_TRUE(C.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  EXPECT_NE(Resp.Text.find("comlat_svc_connections_total"),
            std::string::npos);
  Srv.stop();
}
