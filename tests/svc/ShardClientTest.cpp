//===- tests/svc/ShardClientTest.cpp - Direct-routing client ------------------===//
//
// The ShardClient's acceptance tests: the router-equality fuzz (the client
// rebuilt from a proxy's published Stats geometry must plan every batch
// bit-identically to the proxy's own router), the bootstrap parser, the
// direct/fallback routing split against an in-process cluster, pipelined
// submission depth, and the failure audits — a shard answering for a key
// it does not own (misroute), a backend refusing the envelope, and a
// Redirect chase onto the named leader.
//
// The lying-shard scenarios use a scripted TCP server (FakeShard): a real
// backend always annotates itself truthfully, so only a fake can produce
// the wrong-annotation replies the misroute audit exists to catch.
//
//===----------------------------------------------------------------------===//

#include "svc/Client.h"
#include "svc/LoadGen.h"
#include "svc/Proxy.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <memory>
#include <random>
#include <thread>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// Three shard backends + a proxy, started on ephemeral ports (the same
/// harness as ShardProxyTest).
struct Cluster {
  std::vector<std::unique_ptr<Server>> Backends;
  std::unique_ptr<Proxy> P;

  explicit Cluster(unsigned NumShards, size_t UfElements = 128) {
    ProxyConfig PC;
    PC.UfElements = UfElements;
    for (unsigned I = 0; I != NumShards; ++I) {
      ServerConfig SC;
      SC.Port = 0;
      SC.IoThreads = 1;
      SC.Workers = 2;
      SC.UfElements = UfElements;
      SC.ShardId = static_cast<int>(I);
      SC.Backoff.Kind = BackoffKind::Yield;
      Backends.push_back(std::make_unique<Server>(SC));
      std::string Err;
      EXPECT_TRUE(Backends.back()->start(&Err)) << Err;
      PC.Backends.push_back({"127.0.0.1", Backends.back()->port()});
    }
    P = std::make_unique<Proxy>(PC);
    std::string Err;
    EXPECT_TRUE(P->start(&Err)) << Err;
  }

  ~Cluster() {
    if (P)
      P->stop();
    for (auto &B : Backends)
      B->stop();
  }
};

/// A scripted shard endpoint: accepts connections, decodes request frames
/// and answers each with whatever the handler fabricates — wrong shard
/// annotations, Redirects, anything a test needs a backend to lie about.
struct FakeShard {
  int ListenFd = -1;
  uint16_t Port = 0;
  std::function<Response(const Request &)> Handler;
  std::atomic<bool> StopFlag{false};
  std::thread Th;

  explicit FakeShard(std::function<Response(const Request &)> H)
      : Handler(std::move(H)) {
    listen();
    Th = std::thread([this] { run(); });
  }

  void listen() {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(ListenFd, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = 0;
    ASSERT_EQ(::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)),
              0);
    ASSERT_EQ(::listen(ListenFd, 8), 0);
    socklen_t Len = sizeof(Addr);
    ASSERT_EQ(::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                            &Len),
              0);
    Port = ntohs(Addr.sin_port);
  }

  ~FakeShard() {
    StopFlag.store(true);
    if (Th.joinable())
      Th.join();
    if (ListenFd >= 0)
      ::close(ListenFd);
  }

  void run() {
    while (!StopFlag.load()) {
      pollfd Pfd{ListenFd, POLLIN, 0};
      if (::poll(&Pfd, 1, 50) <= 0)
        continue;
      const int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        continue;
      serve(Fd);
      ::close(Fd);
    }
  }

  void serve(int Fd) {
    std::string Buf;
    char Chunk[4096];
    while (!StopFlag.load()) {
      pollfd Pfd{Fd, POLLIN, 0};
      if (::poll(&Pfd, 1, 50) <= 0)
        continue;
      const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return; // client gone
      Buf.append(Chunk, static_cast<size_t>(N));
      for (;;) {
        std::string_view Payload;
        size_t Consumed = 0;
        if (peelFrame(Buf, Payload, Consumed) != FrameResult::Ok)
          break;
        Request Req;
        std::string Err;
        const bool Decoded = decodeRequest(Payload, Req, Err);
        Buf.erase(0, Consumed);
        if (!Decoded)
          return;
        Response R = Handler(Req);
        R.ReqId = Req.ReqId;
        std::string Out;
        encodeResponse(R, Out);
        size_t Off = 0;
        while (Off < Out.size()) {
          const ssize_t W = ::send(Fd, Out.data() + Off, Out.size() - Off,
                                   MSG_NOSIGNAL);
          if (W <= 0)
            return;
          Off += static_cast<size_t>(W);
        }
      }
    }
  }
};

/// A Stats text announcing a one-shard ring whose only backend is \p Port —
/// every keyed batch the client plans routes there.
std::string oneShardStats(uint16_t Port) {
  return "role=proxy\nshards=1\nring_vnodes=8\nring_seed=7\nshard0=127.0.0.1:" +
         std::to_string(Port) + "\n";
}

Op setAdd(int64_t K) {
  return {static_cast<uint8_t>(ObjectId::Set), SetAdd, K, 0};
}

/// The first \p Count set keys the router sends to \p Shard.
std::vector<int64_t> setKeysFor(const ShardRouter &R, unsigned Shard,
                                size_t Count) {
  std::vector<int64_t> Keys;
  for (int64_t K = 0; Keys.size() < Count && K < 100000; ++K)
    if (R.shardForOp(setAdd(K)) == Shard)
      Keys.push_back(K);
  EXPECT_EQ(Keys.size(), Count);
  return Keys;
}

/// A client config whose proxy endpoint refuses connections — for tests
/// that bootstrap from a literal Stats text and must never reach a proxy
/// (a rebootstrap against it fails fast and keeps the current ring).
ShardClientConfig noProxyConfig() {
  ShardClientConfig C;
  C.ProxyPort = 1; // reserved port: connect refused immediately
  C.UfElements = 128;
  return C;
}

/// One random valid op drawn across all three structures and methods.
Op randomOp(std::mt19937_64 &Rng) {
  Op O;
  switch (Rng() % 3) {
  case 0:
    O.Obj = static_cast<uint8_t>(ObjectId::Set);
    O.Method = static_cast<uint8_t>(Rng() % 3); // add/remove/contains
    O.A = static_cast<int64_t>(Rng() % 1024);
    break;
  case 1:
    O.Obj = static_cast<uint8_t>(ObjectId::Acc);
    O.Method = static_cast<uint8_t>(Rng() % 2); // increment/read
    O.A = static_cast<int64_t>(Rng() % 100);
    break;
  default:
    O.Obj = static_cast<uint8_t>(ObjectId::Uf);
    O.Method = static_cast<uint8_t>(Rng() % 2); // find/union
    O.A = static_cast<int64_t>(Rng() % 128);
    O.B = static_cast<int64_t>(Rng() % 128);
    break;
  }
  return O;
}

} // namespace

TEST(ShardClientTest, ParseRingGeometryRoundTripsProxyStats) {
  ProxyConfig PC;
  PC.Backends = {{"127.0.0.1", 7001}, {"10.0.0.2", 7002}, {"127.0.0.1", 7003}};
  PC.VNodes = 32;
  PC.RingSeed = 0xABCDEFull;
  Proxy P(PC); // never started: statsText is pure config + counters

  RingGeometry G;
  std::string Err;
  ASSERT_TRUE(parseRingGeometry(P.statsText(), G, &Err)) << Err;
  EXPECT_EQ(G.Role, "proxy");
  EXPECT_EQ(G.Shards, 3u);
  EXPECT_EQ(G.VNodes, 32u);
  EXPECT_EQ(G.Seed, 0xABCDEFull);
  ASSERT_EQ(G.Endpoints.size(), 3u);
  EXPECT_EQ(G.Endpoints[1].Host, "10.0.0.2");
  EXPECT_EQ(G.Endpoints[1].Port, 7002);
  EXPECT_TRUE(G.routable());
}

TEST(ShardClientTest, ParseRingGeometryRejectsBrokenStats) {
  RingGeometry G;
  std::string Err;
  // Announces two shards but lists one endpoint.
  EXPECT_FALSE(parseRingGeometry(
      "role=proxy\nshards=2\nring_vnodes=8\nring_seed=1\n"
      "shard0=127.0.0.1:7001\n",
      G, &Err));
  EXPECT_NE(Err.find("shard1"), std::string::npos) << Err;
  // Unparseable endpoint.
  EXPECT_FALSE(parseRingGeometry(
      "role=proxy\nshards=1\nring_vnodes=8\nring_seed=1\nshard0=nonsense\n",
      G, &Err));
  // A plain backend's Stats (no ring lines) parses into a non-routable
  // geometry: the client then proxies everything instead of failing.
  ASSERT_TRUE(parseRingGeometry("role=leader\ndurable=1\n", G, &Err)) << Err;
  EXPECT_FALSE(G.routable());
}

TEST(ShardClientTest, RouterEqualsProxyRouterAcrossRandomGeometries) {
  // The direct path is sound only if the client's rebuilt router agrees
  // with the proxy's on *every* batch — fuzz randomized geometries and
  // randomized batches and require identical RoutePlans.
  std::mt19937_64 Rng(0xC0FFEEull);
  for (unsigned Geo = 0; Geo != 40; ++Geo) {
    ProxyConfig PC;
    const unsigned Shards = 1 + Rng() % 8;
    for (unsigned S = 0; S != Shards; ++S)
      PC.Backends.push_back(
          {"127.0.0.1", static_cast<uint16_t>(7001 + S)});
    PC.VNodes = 1 + Rng() % 128;
    PC.RingSeed = Rng();
    PC.UfElements = 128;
    Proxy P(PC); // never started; only its statsText/router are exercised

    ShardClient SC(noProxyConfig());
    std::string Err;
    ASSERT_TRUE(SC.bootstrapFromText(P.statsText(), &Err)) << Err;
    ASSERT_TRUE(SC.directEngaged());
    ASSERT_NE(SC.router(), nullptr);
    EXPECT_EQ(SC.geometry().Shards, Shards);

    for (unsigned Batch = 0; Batch != 50; ++Batch) {
      std::vector<Op> Ops;
      const unsigned N = 1 + Rng() % 12;
      for (unsigned I = 0; I != N; ++I)
        Ops.push_back(randomOp(Rng));

      const RoutePlan Want = P.router().plan(Ops);
      const RoutePlan Got = SC.router()->plan(Ops);
      ASSERT_EQ(Got.Subs.size(), Want.Subs.size());
      for (size_t I = 0; I != Want.Subs.size(); ++I) {
        EXPECT_EQ(Got.Subs[I].Shard, Want.Subs[I].Shard);
        EXPECT_EQ(Got.Subs[I].OpIdx, Want.Subs[I].OpIdx);
      }

      // wouldRouteDirect must be exactly "single-shard plan, no Pinned
      // op", and must name the plan's shard.
      bool AnyPinned = false;
      for (const Op &O : Ops)
        AnyPinned |= P.router()
                         .route(static_cast<ObjectId>(O.Obj), O.Method)
                         .Kind == RouteKind::Pinned;
      unsigned Shard = ~0u;
      const bool Direct = SC.wouldRouteDirect(Ops, &Shard);
      EXPECT_EQ(Direct, !AnyPinned && Want.singleShard());
      if (Direct) {
        EXPECT_EQ(Shard, Want.Subs[0].Shard);
      }
    }
  }
}

TEST(ShardClientTest, LyingShardAnnotationCountsMisrouteAndFailsBatch) {
  // The fake owns the whole one-shard ring but annotates its Ok replies
  // with shard 9 — a shard answering for a key it does not own. The audit
  // must flag it rather than hand the caller a wrong-shard commit.
  FakeShard Fake([](const Request &Req) {
    Response R;
    R.St = Status::Ok;
    R.CommitSeq = 1;
    R.Results.assign(Req.Ops.size(), 1);
    R.Shards.push_back({9, 1, static_cast<uint32_t>(Req.Ops.size())});
    return R;
  });

  ShardClient SC(noProxyConfig());
  ASSERT_TRUE(SC.bootstrapFromText(oneShardStats(Fake.Port)));
  ASSERT_TRUE(SC.directEngaged());

  ClientCompletion C;
  ASSERT_TRUE(SC.call({setAdd(5)}, C, 10.0));
  EXPECT_EQ(C.R.St, Status::Error);
  EXPECT_NE(C.R.Text.find("misroute"), std::string::npos) << C.R.Text;
  EXPECT_TRUE(C.Direct);
  EXPECT_FALSE(C.ConnLost); // the server answered; the answer was wrong
  EXPECT_EQ(SC.counters().Misroutes, 1u);
  EXPECT_EQ(SC.counters().DirectBatches, 1u);
}

TEST(ShardClientTest, TruthfulAnnotationPassesTheAudit) {
  // Control for the misroute test: the same fake annotating correctly.
  FakeShard Fake([](const Request &Req) {
    Response R;
    R.St = Status::Ok;
    R.CommitSeq = 42;
    R.Results.assign(Req.Ops.size(), 1);
    R.Shards.push_back({Req.Shard, 42, static_cast<uint32_t>(Req.Ops.size())});
    return R;
  });

  ShardClient SC(noProxyConfig());
  ASSERT_TRUE(SC.bootstrapFromText(oneShardStats(Fake.Port)));

  ClientCompletion C;
  ASSERT_TRUE(SC.call({setAdd(5)}, C, 10.0));
  EXPECT_EQ(C.R.St, Status::Ok);
  EXPECT_TRUE(C.Direct);
  EXPECT_EQ(C.Shard, 0u);
  EXPECT_EQ(C.R.CommitSeq, 42u);
  EXPECT_EQ(SC.counters().Misroutes, 0u);
}

TEST(ShardClientTest, BackendEnvelopeRefusalCountsMisroute) {
  // A real backend stamped shard 1, wired into the ring as slot 0: it
  // refuses the SubBatch envelope ("this is shard 1"), which the client
  // must treat as a ring/wiring disagreement, not a clean error.
  ServerConfig SrvC;
  SrvC.Port = 0;
  SrvC.UfElements = 128;
  SrvC.ShardId = 1;
  Server Srv(SrvC);
  ASSERT_TRUE(Srv.start());

  ShardClient SC(noProxyConfig());
  ASSERT_TRUE(SC.bootstrapFromText(oneShardStats(Srv.port())));

  ClientCompletion C;
  ASSERT_TRUE(SC.call({setAdd(5)}, C, 10.0));
  EXPECT_EQ(C.R.St, Status::Error);
  EXPECT_NE(C.R.Text.find("this is shard"), std::string::npos) << C.R.Text;
  EXPECT_EQ(SC.counters().Misroutes, 1u);
  Srv.stop();
}

TEST(ShardClientTest, RedirectRepointsTheSlotAtTheNamedLeader) {
  // The slot's backend turned follower: it Redirects at a real leader.
  // The chase must re-point the slot, resend, and come back Ok.
  ServerConfig SrvC;
  SrvC.Port = 0;
  SrvC.UfElements = 128;
  SrvC.ShardId = 0;
  Server Leader(SrvC);
  ASSERT_TRUE(Leader.start());

  const uint16_t LeaderPort = Leader.port();
  FakeShard Fake([LeaderPort](const Request &) {
    Response R;
    R.St = Status::Redirect;
    R.Text = "leader=127.0.0.1:" + std::to_string(LeaderPort);
    return R;
  });

  ShardClient SC(noProxyConfig());
  ASSERT_TRUE(SC.bootstrapFromText(oneShardStats(Fake.Port)));

  ClientCompletion C;
  ASSERT_TRUE(SC.call({setAdd(5)}, C, 10.0));
  EXPECT_EQ(C.R.St, Status::Ok);
  EXPECT_TRUE(C.Direct);
  EXPECT_EQ(C.Shard, 0u);
  EXPECT_EQ(SC.counters().Redirects, 1u);
  EXPECT_EQ(SC.counters().Misroutes, 0u);
  Leader.stop();
}

TEST(ShardClientTest, PipelinedDirectBatchesNeverTouchTheProxy) {
  Cluster C(3);

  ShardClientConfig CC;
  CC.ProxyPort = C.P->port();
  CC.Window = 32;
  CC.UfElements = 128;
  ShardClient SC(CC);
  std::string Err;
  ASSERT_TRUE(SC.connect(&Err)) << Err;
  ASSERT_TRUE(SC.directEngaged());
  EXPECT_EQ(SC.geometry().Shards, 3u);

  // 16 single-key batches for one shard, submitted back-to-back without
  // polling: they stack up in the connection's pending map, which is the
  // pipelining depth the counters must witness.
  const std::vector<int64_t> Keys = setKeysFor(*SC.router(), 0, 16);
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_TRUE(SC.submit(/*Token=*/I + 1, {setAdd(Keys[I])}));

  std::vector<ClientCompletion> Done;
  ASSERT_TRUE(SC.drain(Done, 15.0));
  ASSERT_EQ(Done.size(), Keys.size());
  for (const ClientCompletion &D : Done) {
    EXPECT_EQ(D.R.St, Status::Ok);
    EXPECT_TRUE(D.Direct);
    EXPECT_EQ(D.Shard, 0u);
    ASSERT_EQ(D.R.Results.size(), 1u);
    EXPECT_EQ(D.R.Results[0], 1); // first add reports "changed"
  }
  EXPECT_EQ(SC.counters().DirectBatches, Keys.size());
  EXPECT_EQ(SC.counters().ProxiedBatches, 0u);
  EXPECT_EQ(SC.counters().Misroutes, 0u);
  EXPECT_GE(SC.counters().MaxConnInflight, 4u);
  // The proxy routed nothing: its only traffic was the bootstrap Stats.
  EXPECT_EQ(C.P->fastPathBatches(), 0u);
  EXPECT_EQ(C.P->splitBatches(), 0u);
}

TEST(ShardClientTest, PinnedAndCrossShardBatchesFallBackToTheProxy) {
  Cluster C(3);

  ShardClientConfig CC;
  CC.ProxyPort = C.P->port();
  CC.UfElements = 128;
  ShardClient SC(CC);
  ASSERT_TRUE(SC.connect());
  ASSERT_TRUE(SC.directEngaged());

  // Pinned: union-find serializes through its owner shard, and pinned
  // reads need the proxy's merge semantics — never direct.
  std::vector<Op> Pinned = {
      {static_cast<uint8_t>(ObjectId::Uf), UfUnion, 3, 9}};
  EXPECT_FALSE(SC.wouldRouteDirect(Pinned, nullptr));
  ClientCompletion Done;
  ASSERT_TRUE(SC.call(Pinned, Done, 15.0));
  EXPECT_EQ(Done.R.St, Status::Ok);
  EXPECT_FALSE(Done.Direct);

  // Cross-shard: one key per shard cannot be a single SubBatch.
  std::vector<Op> Cross = {setAdd(setKeysFor(*SC.router(), 0, 1)[0]),
                           setAdd(setKeysFor(*SC.router(), 1, 1)[0]),
                           setAdd(setKeysFor(*SC.router(), 2, 1)[0])};
  EXPECT_FALSE(SC.wouldRouteDirect(Cross, nullptr));
  ASSERT_TRUE(SC.call(Cross, Done, 15.0));
  EXPECT_EQ(Done.R.St, Status::Ok);
  EXPECT_FALSE(Done.Direct);
  EXPECT_GE(Done.R.Shards.size(), 3u); // the proxy split it

  EXPECT_EQ(SC.counters().DirectBatches, 0u);
  EXPECT_EQ(SC.counters().ProxiedBatches, 2u);
  EXPECT_EQ(C.P->splitBatches(), 1u);
}

TEST(ShardClientTest, DirectVerifiedLoadMatchesPerShardOracles) {
  // The end-to-end gate: the verify oracle (per-shard commit_seq replay +
  // lattice-merge equality) must hold when batches bypass the proxy.
  Cluster C(3);

  LoadGenConfig LC;
  LC.Port = C.P->port();
  LC.Threads = 2;
  LC.BatchesPerThread = 150;
  LC.OpsPerBatch = 4;
  LC.KeySpace = 64;
  LC.UfElements = 128;
  LC.Verify = true;
  LC.Direct = true;
  LC.DirectWindow = 8;
  const LoadGenStats Stats = runLoadGen(LC);

  EXPECT_EQ(Stats.Sent, 300u);
  EXPECT_EQ(Stats.OkReplies, 300u);
  EXPECT_EQ(Stats.ProtocolErrors, 0u);
  EXPECT_TRUE(Stats.DirectRequested);
  EXPECT_TRUE(Stats.Direct);
  // Random mixed batches land on both paths; both must be exercised.
  EXPECT_GT(Stats.DirectBatches, 0u);
  EXPECT_GT(Stats.ProxiedBatches, 0u);
  EXPECT_EQ(Stats.DirectBatches + Stats.ProxiedBatches, Stats.Sent);
  EXPECT_EQ(Stats.ClientMisroutes, 0u);
  ASSERT_TRUE(Stats.VerifyRan);
  EXPECT_TRUE(Stats.VerifyOk) << Stats.VerifyDetail;
}
