//===- tests/svc/ShardProxyTest.cpp - Sharded serving loopback ----------------===//
//
// The sharding subsystem's acceptance test, in-process: three comlat-serve
// backends (each stamped with its ring slot) behind one comlat-shard proxy.
// Covers the verified-load path (per-shard replay oracles + lattice-merge
// equality, all inside runLoadGen), the fast-path/split routing split, the
// shard-mismatch guard, scatter-gather State merging, and the
// partial-commit reply contract when a backend dies mid-ring.
//
// Note: the backends share this process's global MetricsRegistry, so tests
// here never assert on merged Metrics sums (the proxy's scatter-gather
// would double-count the shared families); the process-level metrics
// behavior is covered by the CI svc-shard job instead.
//
//===----------------------------------------------------------------------===//

#include "svc/LoadGen.h"
#include "svc/Proxy.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <memory>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// Three shard backends + a proxy, started on ephemeral ports.
struct Cluster {
  std::vector<std::unique_ptr<Server>> Backends;
  std::unique_ptr<Proxy> P;

  explicit Cluster(unsigned NumShards, size_t UfElements = 128) {
    ProxyConfig PC;
    PC.UfElements = UfElements;
    for (unsigned I = 0; I != NumShards; ++I) {
      ServerConfig SC;
      SC.Port = 0;
      SC.IoThreads = 1;
      SC.Workers = 2;
      SC.UfElements = UfElements;
      SC.ShardId = static_cast<int>(I);
      SC.Backoff.Kind = BackoffKind::Yield;
      Backends.push_back(std::make_unique<Server>(SC));
      std::string Err;
      EXPECT_TRUE(Backends.back()->start(&Err)) << Err;
      PC.Backends.push_back({"127.0.0.1", Backends.back()->port()});
    }
    P = std::make_unique<Proxy>(PC);
    std::string Err;
    EXPECT_TRUE(P->start(&Err)) << Err;
  }

  ~Cluster() {
    if (P)
      P->stop();
    for (auto &B : Backends)
      B->stop();
  }
};

/// The first \p Count set keys the router sends to \p Shard.
std::vector<int64_t> setKeysFor(const ShardRouter &R, unsigned Shard,
                                size_t Count) {
  std::vector<int64_t> Keys;
  for (int64_t K = 0; Keys.size() < Count && K < 100000; ++K)
    if (R.shardForOp({static_cast<uint8_t>(ObjectId::Set), SetAdd, K, 0}) ==
        Shard)
      Keys.push_back(K);
  EXPECT_EQ(Keys.size(), Count);
  return Keys;
}

Op setAdd(int64_t K) {
  return {static_cast<uint8_t>(ObjectId::Set), SetAdd, K, 0};
}

} // namespace

TEST(ShardProxyTest, ThreeShardVerifiedLoadMatchesPerShardOracles) {
  Cluster C(3);

  LoadGenConfig LC;
  LC.Port = C.P->port();
  LC.Threads = 4;
  LC.BatchesPerThread = 250;
  LC.OpsPerBatch = 8;
  LC.KeySpace = 64; // small keyspace -> real cross-shard conflicts
  LC.UfElements = 128;
  LC.Verify = true;
  const LoadGenStats Stats = runLoadGen(LC);

  EXPECT_EQ(Stats.Sent, 1000u);
  EXPECT_EQ(Stats.OkReplies, 1000u);
  EXPECT_EQ(Stats.ErrorReplies, 0u);
  EXPECT_EQ(Stats.ProtocolErrors, 0u);
  EXPECT_EQ(Stats.Role, "proxy");
  EXPECT_EQ(Stats.Shards, 3u);
  EXPECT_GT(Stats.RingVNodes, 0u);
  ASSERT_TRUE(Stats.VerifyRan);
  EXPECT_TRUE(Stats.VerifyOk) << Stats.VerifyDetail;
  // Random 8-op batches over 3 shards essentially always split.
  EXPECT_GT(C.P->splitBatches(), 0u);
}

TEST(ShardProxyTest, SecondVerifiedRunSeedsFromNonEmptyShards) {
  // The verifying client must seed its per-shard oracles from pre-run
  // SnapState dumps; a second run against already-populated shards is the
  // regression test for that seeding.
  Cluster C(3);

  LoadGenConfig LC;
  LC.Port = C.P->port();
  LC.Threads = 2;
  LC.BatchesPerThread = 150;
  LC.OpsPerBatch = 6;
  LC.KeySpace = 48;
  LC.UfElements = 128;
  LC.Verify = true;
  LC.Seed = 1;
  const LoadGenStats First = runLoadGen(LC);
  ASSERT_TRUE(First.VerifyRan);
  ASSERT_TRUE(First.VerifyOk) << First.VerifyDetail;

  LC.Seed = 2;
  const LoadGenStats Second = runLoadGen(LC);
  EXPECT_EQ(Second.ProtocolErrors, 0u);
  ASSERT_TRUE(Second.VerifyRan);
  EXPECT_TRUE(Second.VerifyOk) << Second.VerifyDetail;
}

TEST(ShardProxyTest, SingleShardBatchesTakeTheFastPath) {
  Cluster C(3);
  const ShardRouter &R = C.P->router();
  const std::vector<int64_t> Keys = setKeysFor(R, 1, 4);

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", C.P->port()));
  Request Req;
  Req.ReqId = 1;
  Req.Type = MsgType::Batch;
  for (const int64_t K : Keys)
    Req.Ops.push_back(setAdd(K));
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  ASSERT_EQ(Resp.Results.size(), Keys.size());
  for (const int64_t V : Resp.Results)
    EXPECT_EQ(V, 1); // first add of each key reports "changed"
  // The whole batch went to one backend as one spliced SubBatch, and its
  // single annotation names the ring slot the router predicted.
  ASSERT_EQ(Resp.Shards.size(), 1u);
  EXPECT_EQ(Resp.Shards[0].Shard, 1u);
  EXPECT_EQ(Resp.Shards[0].NumOps, Keys.size());
  EXPECT_EQ(Resp.Shards[0].CommitSeq, Resp.CommitSeq);
  EXPECT_EQ(C.P->fastPathBatches(), 1u);
  EXPECT_EQ(C.P->splitBatches(), 0u);
}

TEST(ShardProxyTest, CrossShardBatchSplitsWithAscendingAnnotations) {
  Cluster C(3);
  const ShardRouter &R = C.P->router();

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", C.P->port()));
  Request Req;
  Req.ReqId = 2;
  Req.Type = MsgType::Batch;
  // One set key per shard plus a pinned union-find op: three or more subs.
  for (unsigned S = 0; S != 3; ++S)
    Req.Ops.push_back(setAdd(setKeysFor(R, S, 1)[0]));
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 3, 9});
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  ASSERT_EQ(Resp.Results.size(), Req.Ops.size());
  ASSERT_GE(Resp.Shards.size(), 3u);
  uint64_t MaxSeq = 0, OpSum = 0;
  for (size_t I = 0; I != Resp.Shards.size(); ++I) {
    if (I > 0) {
      EXPECT_GT(Resp.Shards[I].Shard, Resp.Shards[I - 1].Shard);
    }
    MaxSeq = std::max(MaxSeq, Resp.Shards[I].CommitSeq);
    OpSum += Resp.Shards[I].NumOps;
  }
  EXPECT_EQ(OpSum, Req.Ops.size()); // every op routed exactly once
  EXPECT_EQ(Resp.CommitSeq, MaxSeq);
  EXPECT_EQ(C.P->splitBatches(), 1u);
}

TEST(ShardProxyTest, BackendRefusesMismatchedSubBatch) {
  ServerConfig SC;
  SC.Port = 0;
  SC.UfElements = 64;
  SC.ShardId = 0;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", Srv.port()));
  Request Req;
  Req.ReqId = 3;
  Req.Type = MsgType::SubBatch;
  Req.Shard = 1; // wrong: this backend serves slot 0
  Req.Ops.push_back(setAdd(5));
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Error);
  EXPECT_NE(Resp.Text.find("shard"), std::string::npos) << Resp.Text;

  // The matching envelope commits and self-attests in the annotation.
  Req.ReqId = 4;
  Req.Shard = 0;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  ASSERT_EQ(Resp.Shards.size(), 1u);
  EXPECT_EQ(Resp.Shards[0].Shard, 0u);
  EXPECT_EQ(Resp.Shards[0].NumOps, 1u);
  Srv.stop();
}

TEST(ShardProxyTest, ScatterStateEqualsLatticeMergeOfBackends) {
  Cluster C(3);
  const ShardRouter &R = C.P->router();

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", C.P->port()));
  Request Req;
  Req.ReqId = 5;
  Req.Type = MsgType::Batch;
  for (unsigned S = 0; S != 3; ++S)
    for (const int64_t K : setKeysFor(R, S, 3))
      Req.Ops.push_back(setAdd(K));
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 11, 0});
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 1, 2});
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  ASSERT_EQ(Resp.St, Status::Ok);

  // Quiesced now (closed loop): gather every backend's own State dump and
  // join them exactly the way the proxy must.
  std::vector<std::string> Views;
  for (auto &B : C.Backends) {
    Client Direct;
    ASSERT_TRUE(Direct.connect("127.0.0.1", B->port()));
    Request SReq;
    SReq.ReqId = 6;
    SReq.Type = MsgType::State;
    Response SResp;
    ASSERT_TRUE(Direct.call(SReq, SResp));
    ASSERT_EQ(SResp.St, Status::Ok);
    Views.push_back(SResp.Text);
  }
  std::string Expect, Err;
  ASSERT_TRUE(mergeStateTexts(Views, Expect, &Err)) << Err;

  Req.ReqId = 7;
  Req.Type = MsgType::State;
  Req.Ops.clear();
  ASSERT_TRUE(Cl.call(Req, Resp));
  ASSERT_EQ(Resp.St, Status::Ok);
  EXPECT_EQ(Resp.Text, Expect);
  // The merged view must actually span shards: all nine keys present.
  EXPECT_NE(Resp.Text.find("acc=11"), std::string::npos) << Resp.Text;
}

TEST(ShardProxyTest, SnapStateRelaysToTheNamedShard) {
  Cluster C(3);
  const ShardRouter &R = C.P->router();
  const int64_t Key = setKeysFor(R, 2, 1)[0];

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", C.P->port()));
  Request Req;
  Req.ReqId = 8;
  Req.Type = MsgType::Batch;
  Req.Ops.push_back(setAdd(Key));
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  ASSERT_EQ(Resp.St, Status::Ok);

  // Shard 2 holds the key; the others must not.
  for (uint32_t S = 0; S != 3; ++S) {
    Req.ReqId = 9 + S;
    Req.Type = MsgType::SnapState;
    Req.Ops.clear();
    Req.Shard = S;
    ASSERT_TRUE(Cl.call(Req, Resp));
    ASSERT_EQ(Resp.St, Status::Ok) << Resp.Text;
    const std::string KeyStr = std::to_string(Key);
    const bool Holds =
        Resp.Text.find("set=" + KeyStr + ",") != std::string::npos ||
        Resp.Text.find("," + KeyStr + ",") != std::string::npos;
    EXPECT_EQ(Holds, S == 2) << "shard " << S << ": " << Resp.Text;
  }

  // An out-of-ring shard id is refused without touching any backend.
  Req.ReqId = 20;
  Req.Shard = 3;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Error);
}

TEST(ShardProxyTest, PartialCommitNamesTheSurvivingSubBatches) {
  Cluster C(3);
  const ShardRouter &R = C.P->router();
  const unsigned UfOwner = R.ownerShard(ObjectId::Uf);

  // Kill the union-find owner's backend; set ops on the two other shards
  // still commit, the pinned op cannot.
  C.Backends[UfOwner]->stop();

  Client Cl;
  ASSERT_TRUE(Cl.connect("127.0.0.1", C.P->port()));
  Request Req;
  Req.ReqId = 21;
  Req.Type = MsgType::Batch;
  std::vector<unsigned> LiveShards;
  for (unsigned S = 0; S != 3; ++S)
    if (S != UfOwner) {
      Req.Ops.push_back(setAdd(setKeysFor(R, S, 1)[0]));
      LiveShards.push_back(S);
    }
  Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, 1});
  Response Resp;
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Error);
  // Partial-commit contract: no results (the transaction as a whole did
  // not commit), but annotations name exactly the sub-batches that did, so
  // a verifying client can fold them into its oracles.
  EXPECT_TRUE(Resp.Results.empty());
  ASSERT_EQ(Resp.Shards.size(), LiveShards.size());
  for (size_t I = 0; I != Resp.Shards.size(); ++I) {
    EXPECT_EQ(Resp.Shards[I].Shard, LiveShards[I]);
    EXPECT_EQ(Resp.Shards[I].NumOps, 1u);
    EXPECT_GT(Resp.Shards[I].CommitSeq, 0u);
  }

  // Routing resumes for batches that avoid the dead slot.
  Req.ReqId = 22;
  Req.Ops.clear();
  Req.Ops.push_back(setAdd(setKeysFor(R, LiveShards[0], 2)[1]));
  ASSERT_TRUE(Cl.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
}

TEST(ShardProxyTest, StatsPublishRingGeometryAndEndpoints) {
  Cluster C(3);
  const std::string Stats = fetchStatsText("127.0.0.1", C.P->port());
  EXPECT_NE(Stats.find("role=proxy"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("shards=3"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("ring_vnodes=64"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("ring_seed="), std::string::npos) << Stats;
  for (unsigned S = 0; S != 3; ++S)
    EXPECT_NE(Stats.find("shard" + std::to_string(S) + "=127.0.0.1:"),
              std::string::npos)
        << Stats;
}
