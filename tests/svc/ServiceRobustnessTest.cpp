//===- tests/svc/ServiceRobustnessTest.cpp - Unhappy-path behavior ------------===//
//
// The serving layer's failure contract: malformed input fails one frame or
// one connection (never the event loop), overload sheds with BUSY but
// every frame still gets a reply, slow readers are paused instead of
// buffering without bound, idle connections are reaped, and a drain
// finishes admitted work before exiting.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"
#include "svc/LoadGen.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <thread>

using namespace comlat;
using namespace comlat::svc;

namespace {

Request pingReq(uint64_t Id) {
  Request R;
  R.ReqId = Id;
  R.Type = MsgType::Ping;
  return R;
}

Request batchReq(uint64_t Id) {
  Request R;
  R.ReqId = Id;
  R.Type = MsgType::Batch;
  R.Ops.push_back(
      {static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 1, 0});
  return R;
}

/// Encodes a frame whose payload is raw \p Payload bytes.
std::string rawFrame(const std::string &Payload) {
  std::string Out;
  const uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  Out += Payload;
  return Out;
}

} // namespace

TEST(ServiceRobustnessTest, MalformedPayloadFailsOnlyThatFrame) {
  ServerConfig SC;
  SC.Port = 0;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
  // Well-framed garbage: framing survives, the payload is rejected.
  ASSERT_TRUE(C.sendRaw(rawFrame("this is not a request")));
  Response Resp;
  ASSERT_TRUE(C.recvResponse(Resp));
  EXPECT_EQ(Resp.St, Status::Error);
  EXPECT_FALSE(Resp.Text.empty());

  // Same connection still serves valid traffic afterwards.
  ASSERT_TRUE(C.call(pingReq(2), Resp));
  EXPECT_EQ(Resp.St, Status::Ok);

  // Invalid op in a structurally valid batch: error reply, connection
  // survives, nothing commits.
  Request Bad = batchReq(3);
  Bad.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfFind,
                     static_cast<int64_t>(SC.UfElements), 0});
  ASSERT_TRUE(C.call(Bad, Resp));
  EXPECT_EQ(Resp.St, Status::Error);
  ASSERT_TRUE(C.call(pingReq(4), Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  Srv.stop();
}

TEST(ServiceRobustnessTest, OversizedFrameClosesOnlyThatConnection) {
  ServerConfig SC;
  SC.Port = 0;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  Client Victim;
  ASSERT_TRUE(Victim.connect("127.0.0.1", Srv.port()));
  std::string Huge;
  const uint32_t Len = MaxFramePayload + 1;
  for (unsigned I = 0; I != 4; ++I)
    Huge.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  ASSERT_TRUE(Victim.sendRaw(Huge));
  // One error reply, then EOF: no resync point on a byte stream.
  Response Resp;
  ASSERT_TRUE(Victim.recvResponse(Resp));
  EXPECT_EQ(Resp.St, Status::Error);
  EXPECT_FALSE(Victim.recvResponse(Resp));

  // The event loop survived: a fresh connection works.
  Client Fresh;
  ASSERT_TRUE(Fresh.connect("127.0.0.1", Srv.port()));
  ASSERT_TRUE(Fresh.call(pingReq(1), Resp));
  EXPECT_EQ(Resp.St, Status::Ok);
  Srv.stop();
}

TEST(ServiceRobustnessTest, QueueOverflowShedsBusyWithoutDroppingReplies) {
  ServerConfig SC;
  SC.Port = 0;
  SC.QueueCapacity = 4;
  SC.Workers = 2;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());
  // Paused workers: the queue fills deterministically, overflow sheds.
  Srv.submitter().pause();

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
  constexpr unsigned N = 20;
  for (unsigned I = 0; I != N; ++I)
    ASSERT_TRUE(C.send(batchReq(I)));

  // 4 frames sit in the queue (reply pending); 16 must get BUSY now.
  unsigned Busy = 0;
  std::vector<Response> Got;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (Got.size() < N - SC.QueueCapacity &&
         std::chrono::steady_clock::now() < Deadline) {
    ASSERT_TRUE(C.pollResponses(Got));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(Got.size(), N - SC.QueueCapacity);
  for (const Response &R : Got) {
    EXPECT_EQ(R.St, Status::Busy);
    ++Busy;
  }
  EXPECT_EQ(Busy, 16u);

  // Releasing the workers answers the queued four: every frame got exactly
  // one reply, nothing was silently dropped.
  Srv.submitter().resume();
  for (unsigned I = 0; I != SC.QueueCapacity; ++I) {
    Response Resp;
    ASSERT_TRUE(C.recvResponse(Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
  }
  Srv.stop();
}

TEST(ServiceRobustnessTest, SlowReaderIsPausedNotBufferedUnbounded) {
  ServerConfig SC;
  SC.Port = 0;
  SC.MaxWriteBuffered = 4096; // tiny cap so a few metrics dumps trip it
  // Pin the kernel send buffer: without this, loopback auto-tuning absorbs
  // megabytes of replies and sends never hit EAGAIN, so the user-space
  // backlog (what this test is about) would never fill.
  SC.SocketSndBuf = 16 * 1024;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  obs::Counter *Stalls = obs::MetricsRegistry::global().counter(
      "comlat_svc_backpressure_stalls_total");
  const uint64_t StallsBefore = Stalls->value();

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));

  // Fire many metrics requests without reading a single reply: each reply
  // is a multi-KB Prometheus dump, so the reply backlog (~1 MB, well past
  // the pinned kernel buffers plus our receive buffer) passes the cap and
  // the server must stop reading us instead of buffering without bound.
  constexpr unsigned N = 256;
  for (unsigned I = 0; I != N; ++I) {
    Request Req;
    Req.ReqId = I;
    Req.Type = MsgType::Metrics;
    ASSERT_TRUE(C.send(Req));
  }
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Stalls->value() == StallsBefore &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(Stalls->value(), StallsBefore);

  // Now drain like a healthy reader: every frame still gets its reply —
  // backpressure pauses the connection, it never drops replies. This also
  // exercises resumption re-parsing the frames buffered while paused.
  std::vector<bool> Seen(N, false);
  for (unsigned I = 0; I != N; ++I) {
    Response Resp;
    ASSERT_TRUE(C.recvResponse(Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    ASSERT_LT(Resp.ReqId, N);
    EXPECT_FALSE(Seen[Resp.ReqId]);
    Seen[Resp.ReqId] = true;
  }
  Srv.stop();
}

TEST(ServiceRobustnessTest, IdleConnectionsAreReaped) {
  ServerConfig SC;
  SC.Port = 0;
  SC.IdleTimeoutMs = 100;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
  Response Resp;
  ASSERT_TRUE(C.call(pingReq(1), Resp));
  // Go idle past the timeout: the server closes us (recv sees EOF).
  EXPECT_FALSE(C.recvResponse(Resp));
  EXPECT_GE(obs::MetricsRegistry::global()
                .counter("comlat_svc_idle_closed_total")
                ->value(),
            1u);
  Srv.stop();
}

TEST(ServiceRobustnessTest, DrainFinishesAdmittedWorkThenCloses) {
  ServerConfig SC;
  SC.Port = 0;
  SC.QueueCapacity = 8;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());
  Srv.submitter().pause();

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
  for (unsigned I = 0; I != 3; ++I)
    ASSERT_TRUE(C.send(batchReq(I)));
  // Wait until all three are admitted (queued behind the paused workers).
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (Srv.submitter().queueDepth() < 3 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Srv.submitter().queueDepth(), 3u);

  // Drain: admitted work must finish and its replies must flush before
  // the connection closes.
  Srv.requestStop();
  Srv.submitter().resume();
  for (unsigned I = 0; I != 3; ++I) {
    Response Resp;
    ASSERT_TRUE(C.recvResponse(Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
  }
  Response Resp;
  EXPECT_FALSE(C.recvResponse(Resp)); // then EOF
  Srv.stop();
}
