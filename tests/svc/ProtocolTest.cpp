//===- tests/svc/ProtocolTest.cpp - Wire protocol framing/codec ---------------===//

#include "svc/Protocol.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::svc;

namespace {

Request sampleBatch() {
  Request R;
  R.ReqId = 0xABCDEF0123456789ull;
  R.Type = MsgType::Batch;
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Set), SetAdd, 42, 0});
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, -7, 0});
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 3, 9});
  return R;
}

/// Frames + peels + decodes, expecting success.
Request roundtrip(const Request &In) {
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  EXPECT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  EXPECT_EQ(Consumed, Wire.size());
  Request Out;
  std::string Err;
  EXPECT_TRUE(decodeRequest(Payload, Out, Err)) << Err;
  return Out;
}

} // namespace

TEST(ProtocolTest, BatchRequestRoundtrip) {
  const Request In = sampleBatch();
  const Request Out = roundtrip(In);
  EXPECT_EQ(Out.ReqId, In.ReqId);
  EXPECT_EQ(Out.Type, MsgType::Batch);
  ASSERT_EQ(Out.Ops.size(), In.Ops.size());
  for (size_t I = 0; I != In.Ops.size(); ++I) {
    EXPECT_EQ(Out.Ops[I].Obj, In.Ops[I].Obj);
    EXPECT_EQ(Out.Ops[I].Method, In.Ops[I].Method);
    EXPECT_EQ(Out.Ops[I].A, In.Ops[I].A);
    EXPECT_EQ(Out.Ops[I].B, In.Ops[I].B);
  }
}

TEST(ProtocolTest, BodylessRequestsRoundtrip) {
  for (const MsgType T : {MsgType::Metrics, MsgType::State, MsgType::Ping}) {
    Request In;
    In.ReqId = 7;
    In.Type = T;
    const Request Out = roundtrip(In);
    EXPECT_EQ(Out.ReqId, 7u);
    EXPECT_EQ(Out.Type, T);
  }
}

TEST(ProtocolTest, ResponseRoundtrip) {
  Response In;
  In.ReqId = 99;
  In.St = Status::Ok;
  In.CommitSeq = 1234567;
  In.Results = {1, -5, 0, INT64_MAX};
  In.Text = "hello";
  std::string Wire;
  encodeResponse(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_EQ(Out.ReqId, In.ReqId);
  EXPECT_EQ(Out.St, In.St);
  EXPECT_EQ(Out.CommitSeq, In.CommitSeq);
  EXPECT_EQ(Out.Results, In.Results);
  EXPECT_EQ(Out.Text, In.Text);
}

TEST(ProtocolTest, PartialFrameNeedsMore) {
  std::string Wire;
  encodeRequest(sampleBatch(), Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut)
    EXPECT_EQ(peelFrame(std::string_view(Wire).substr(0, Cut), Payload,
                        Consumed),
              FrameResult::NeedMore);
}

TEST(ProtocolTest, OversizedLengthPrefixIsMalformed) {
  std::string Wire;
  const uint32_t Len = MaxFramePayload + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  std::string_view Payload;
  size_t Consumed = 0;
  EXPECT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Malformed);
}

TEST(ProtocolTest, TwoFramesPeelInOrder) {
  Request A, B;
  A.ReqId = 1;
  A.Type = MsgType::Ping;
  B.ReqId = 2;
  B.Type = MsgType::Metrics;
  std::string Wire;
  encodeRequest(A, Wire);
  encodeRequest(B, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(Payload, Out, Err));
  EXPECT_EQ(Out.ReqId, 1u);
  std::string_view Rest = std::string_view(Wire).substr(Consumed);
  ASSERT_EQ(peelFrame(Rest, Payload, Consumed), FrameResult::Ok);
  ASSERT_TRUE(decodeRequest(Payload, Out, Err));
  EXPECT_EQ(Out.ReqId, 2u);
}

TEST(ProtocolTest, RejectsUnknownTypeButEchoesReqId) {
  Request In;
  In.ReqId = 31337;
  In.Type = MsgType::Ping;
  std::string Wire;
  encodeRequest(In, Wire);
  Wire[4 + 8] = 77; // corrupt the type byte behind the length prefix
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Out.ReqId, 31337u); // best-effort fill for the error reply
}

TEST(ProtocolTest, RejectsEmptyAndOverlongBatches) {
  Request In = sampleBatch();
  std::string Wire;
  encodeRequest(In, Wire);
  // Zero the op count (little-endian u32 right after req_id + type).
  const size_t CountOff = 4 + 8 + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire[CountOff + I] = 0;
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));

  const uint32_t Overlong = MaxBatchOps + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire[CountOff + I] = static_cast<char>((Overlong >> (8 * I)) & 0xFF);
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  Request In;
  In.ReqId = 5;
  In.Type = MsgType::Ping;
  std::string Payload;
  // Hand-build payload + junk, then reframe.
  for (unsigned I = 0; I != 8; ++I)
    Payload.push_back(static_cast<char>((In.ReqId >> (8 * I)) & 0xFF));
  Payload.push_back(static_cast<char>(MsgType::Ping));
  Payload.push_back('x');
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, ValidOpBounds) {
  const size_t UfN = 8;
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Set), SetContains, -5, 0},
                      UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Set), 3, 0, 0}, UfN));
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Acc), AccRead, 0, 0},
                      UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Acc), 2, 0, 0}, UfN));
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfFind, 7, 0}, UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfFind, 8, 0},
                       UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, -1},
                       UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, 8},
                       UfN));
  EXPECT_FALSE(validOp({3, 0, 0, 0}, UfN)); // unknown object
}
