//===- tests/svc/ProtocolTest.cpp - Wire protocol framing/codec ---------------===//

#include "svc/Protocol.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::svc;

namespace {

Request sampleBatch() {
  Request R;
  R.ReqId = 0xABCDEF0123456789ull;
  R.Type = MsgType::Batch;
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Set), SetAdd, 42, 0});
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, -7, 0});
  R.Ops.push_back({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 3, 9});
  return R;
}

/// Frames + peels + decodes, expecting success.
Request roundtrip(const Request &In) {
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  EXPECT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  EXPECT_EQ(Consumed, Wire.size());
  Request Out;
  std::string Err;
  EXPECT_TRUE(decodeRequest(Payload, Out, Err)) << Err;
  return Out;
}

} // namespace

TEST(ProtocolTest, BatchRequestRoundtrip) {
  const Request In = sampleBatch();
  const Request Out = roundtrip(In);
  EXPECT_EQ(Out.ReqId, In.ReqId);
  EXPECT_EQ(Out.Type, MsgType::Batch);
  ASSERT_EQ(Out.Ops.size(), In.Ops.size());
  for (size_t I = 0; I != In.Ops.size(); ++I) {
    EXPECT_EQ(Out.Ops[I].Obj, In.Ops[I].Obj);
    EXPECT_EQ(Out.Ops[I].Method, In.Ops[I].Method);
    EXPECT_EQ(Out.Ops[I].A, In.Ops[I].A);
    EXPECT_EQ(Out.Ops[I].B, In.Ops[I].B);
  }
}

TEST(ProtocolTest, BodylessRequestsRoundtrip) {
  for (const MsgType T : {MsgType::Metrics, MsgType::State, MsgType::Ping}) {
    Request In;
    In.ReqId = 7;
    In.Type = T;
    const Request Out = roundtrip(In);
    EXPECT_EQ(Out.ReqId, 7u);
    EXPECT_EQ(Out.Type, T);
  }
}

TEST(ProtocolTest, ResponseRoundtrip) {
  Response In;
  In.ReqId = 99;
  In.St = Status::Ok;
  In.CommitSeq = 1234567;
  In.Results = {1, -5, 0, INT64_MAX};
  In.Text = "hello";
  std::string Wire;
  encodeResponse(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_EQ(Out.ReqId, In.ReqId);
  EXPECT_EQ(Out.St, In.St);
  EXPECT_EQ(Out.CommitSeq, In.CommitSeq);
  EXPECT_EQ(Out.Results, In.Results);
  EXPECT_EQ(Out.Text, In.Text);
}

TEST(ProtocolTest, PartialFrameNeedsMore) {
  std::string Wire;
  encodeRequest(sampleBatch(), Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut)
    EXPECT_EQ(peelFrame(std::string_view(Wire).substr(0, Cut), Payload,
                        Consumed),
              FrameResult::NeedMore);
}

TEST(ProtocolTest, OversizedLengthPrefixIsMalformed) {
  std::string Wire;
  const uint32_t Len = MaxFramePayload + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  std::string_view Payload;
  size_t Consumed = 0;
  EXPECT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Malformed);
}

TEST(ProtocolTest, TwoFramesPeelInOrder) {
  Request A, B;
  A.ReqId = 1;
  A.Type = MsgType::Ping;
  B.ReqId = 2;
  B.Type = MsgType::Metrics;
  std::string Wire;
  encodeRequest(A, Wire);
  encodeRequest(B, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(Payload, Out, Err));
  EXPECT_EQ(Out.ReqId, 1u);
  std::string_view Rest = std::string_view(Wire).substr(Consumed);
  ASSERT_EQ(peelFrame(Rest, Payload, Consumed), FrameResult::Ok);
  ASSERT_TRUE(decodeRequest(Payload, Out, Err));
  EXPECT_EQ(Out.ReqId, 2u);
}

TEST(ProtocolTest, RejectsUnknownTypeButEchoesReqId) {
  Request In;
  In.ReqId = 31337;
  In.Type = MsgType::Ping;
  std::string Wire;
  encodeRequest(In, Wire);
  Wire[4 + 8] = 77; // corrupt the type byte behind the length prefix
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Out.ReqId, 31337u); // best-effort fill for the error reply
}

TEST(ProtocolTest, RejectsEmptyAndOverlongBatches) {
  Request In = sampleBatch();
  std::string Wire;
  encodeRequest(In, Wire);
  // Zero the op count (little-endian u32 right after req_id + type).
  const size_t CountOff = 4 + 8 + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire[CountOff + I] = 0;
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));

  const uint32_t Overlong = MaxBatchOps + 1;
  for (unsigned I = 0; I != 4; ++I)
    Wire[CountOff + I] = static_cast<char>((Overlong >> (8 * I)) & 0xFF);
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, RejectsTrailingBytes) {
  Request In;
  In.ReqId = 5;
  In.Type = MsgType::Ping;
  std::string Payload;
  // Hand-build payload + junk, then reframe.
  for (unsigned I = 0; I != 8; ++I)
    Payload.push_back(static_cast<char>((In.ReqId >> (8 * I)) & 0xFF));
  Payload.push_back(static_cast<char>(MsgType::Ping));
  Payload.push_back('x');
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, ValidOpBounds) {
  const size_t UfN = 8;
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Set), SetContains, -5, 0},
                      UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Set), 3, 0, 0}, UfN));
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Acc), AccRead, 0, 0},
                      UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Acc), 2, 0, 0}, UfN));
  EXPECT_TRUE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfFind, 7, 0}, UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfFind, 8, 0},
                       UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, -1},
                       UfN));
  EXPECT_FALSE(validOp({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, 8},
                       UfN));
  EXPECT_FALSE(validOp({3, 0, 0, 0}, UfN)); // unknown object
}

//===----------------------------------------------------------------------===//
// Replication frames (Subscribe / WalChunk / SnapshotXfer)
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, SubscribeRoundtrip) {
  Request In;
  In.ReqId = 11;
  In.Type = MsgType::Subscribe;
  In.Seq = 0xDEADBEEF12345678ull;
  const Request Out = roundtrip(In);
  EXPECT_EQ(Out.Type, MsgType::Subscribe);
  EXPECT_EQ(Out.Seq, In.Seq);
}

TEST(ProtocolTest, WalChunkRoundtrip) {
  Request In;
  In.ReqId = 12;
  In.Type = MsgType::WalChunk;
  In.Seq = 4242;
  In.StampUs = 1234567890123ull;
  In.Blob = std::string("\x00\x01payload\xFF", 10);
  const Request Out = roundtrip(In);
  EXPECT_EQ(Out.Type, MsgType::WalChunk);
  EXPECT_EQ(Out.Seq, In.Seq);
  EXPECT_EQ(Out.StampUs, In.StampUs);
  EXPECT_EQ(Out.Blob, In.Blob);
}

TEST(ProtocolTest, SnapshotXferRoundtrip) {
  for (const uint8_t Last : {0, 1}) {
    Request In;
    In.ReqId = 13;
    In.Type = MsgType::SnapshotXfer;
    In.Seq = 777;
    In.Last = Last;
    In.Blob = "set{1 2 3}\nacc{0}\n";
    const Request Out = roundtrip(In);
    EXPECT_EQ(Out.Type, MsgType::SnapshotXfer);
    EXPECT_EQ(Out.Seq, In.Seq);
    EXPECT_EQ(Out.Last, Last);
    EXPECT_EQ(Out.Blob, In.Blob);
  }
}

TEST(ProtocolTest, EmptyWalChunkAndSnapshotChunkRoundtrip) {
  // A heartbeat WalChunk carries no records; an empty snapshot state is
  // one empty final chunk. Both are legal frames.
  Request In;
  In.ReqId = 14;
  In.Type = MsgType::WalChunk;
  In.Seq = 9;
  EXPECT_EQ(roundtrip(In).Blob, "");
  In.Type = MsgType::SnapshotXfer;
  In.Last = 1;
  EXPECT_EQ(roundtrip(In).Blob, "");
}

TEST(ProtocolTest, ReplicationFrameTruncationFuzz) {
  // Every strict prefix of each replication frame's payload must be
  // rejected cleanly — the follower treats an undecodable frame as fatal,
  // so the decoder must never misread a cut as a shorter valid frame.
  std::vector<Request> Frames(3);
  Frames[0].Type = MsgType::Subscribe;
  Frames[0].Seq = 500;
  Frames[1].Type = MsgType::WalChunk;
  Frames[1].Seq = 501;
  Frames[1].StampUs = 99;
  Frames[1].Blob = "0123456789abcdef";
  Frames[2].Type = MsgType::SnapshotXfer;
  Frames[2].Seq = 502;
  Frames[2].Last = 1;
  Frames[2].Blob = "state text";
  for (const Request &In : Frames) {
    std::string Wire;
    encodeRequest(In, Wire);
    std::string_view Payload;
    size_t Consumed = 0;
    ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
    for (size_t Cut = 0; Cut < Payload.size(); ++Cut) {
      Request Out;
      std::string Err;
      EXPECT_FALSE(decodeRequest(Payload.substr(0, Cut), Out, Err))
          << "type " << unsigned(static_cast<uint8_t>(In.Type)) << " cut "
          << Cut;
    }
  }
}

TEST(ProtocolTest, WalChunkTrailingBytesRejected) {
  Request In;
  In.ReqId = 15;
  In.Type = MsgType::WalChunk;
  In.Blob = "abc";
  std::string Wire;
  encodeRequest(In, Wire);
  // Grow the frame by one byte past what nbytes accounts for.
  const uint32_t NewLen = static_cast<uint32_t>(Wire.size() - 4 + 1);
  Wire.push_back('z');
  for (unsigned I = 0; I != 4; ++I)
    Wire[I] = static_cast<char>((NewLen >> (8 * I)) & 0xFF);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, SnapshotXferRejectsBadLastFlag) {
  Request In;
  In.ReqId = 16;
  In.Type = MsgType::SnapshotXfer;
  In.Last = 2; // encoder writes it verbatim; the decoder must refuse
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, RedirectResponseRoundtrip) {
  Response In;
  In.ReqId = 17;
  In.St = Status::Redirect;
  In.Text = "leader=127.0.0.1:7411";
  std::string Wire;
  encodeResponse(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_EQ(Out.St, Status::Redirect);
  EXPECT_EQ(Out.Text, In.Text);
}

TEST(ProtocolTest, ResponseRejectsUnknownStatusByte) {
  Response In;
  In.ReqId = 18;
  In.St = Status::Redirect;
  std::string Wire;
  encodeResponse(In, Wire);
  Wire[4 + 8] = 4; // one past Redirect, the highest known status
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  EXPECT_FALSE(decodeResponse(Payload, Out));
}

//===----------------------------------------------------------------------===//
// Sharding frames (SubBatch / SnapState / shard-annotation trailer)
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, SubBatchRoundtrip) {
  Request In = sampleBatch();
  In.Type = MsgType::SubBatch;
  In.Shard = 7;
  const Request Out = roundtrip(In);
  EXPECT_EQ(Out.Type, MsgType::SubBatch);
  EXPECT_EQ(Out.Shard, 7u);
  ASSERT_EQ(Out.Ops.size(), In.Ops.size());
  for (size_t I = 0; I != In.Ops.size(); ++I) {
    EXPECT_EQ(Out.Ops[I].Obj, In.Ops[I].Obj);
    EXPECT_EQ(Out.Ops[I].Method, In.Ops[I].Method);
    EXPECT_EQ(Out.Ops[I].A, In.Ops[I].A);
    EXPECT_EQ(Out.Ops[I].B, In.Ops[I].B);
  }
}

TEST(ProtocolTest, SubBatchBodyMatchesBatchPastTheShardField) {
  // The proxy's zero-copy fast path splices a client Batch body verbatim
  // behind `u32 shard`; this pins the layout equality it relies on.
  Request AsBatch = sampleBatch();
  Request AsSub = AsBatch;
  AsSub.Type = MsgType::SubBatch;
  AsSub.Shard = 3;
  std::string BatchWire, SubWire;
  encodeRequest(AsBatch, BatchWire);
  encodeRequest(AsSub, SubWire);
  // Past the frame prefix, req_id, type (and the sub's shard field), the
  // bodies must be byte-identical.
  const std::string BatchBody = BatchWire.substr(4 + 8 + 1);
  const std::string SubBody = SubWire.substr(4 + 8 + 1 + 4);
  EXPECT_EQ(SubBody, BatchBody);
}

TEST(ProtocolTest, SubBatchRejectsOutOfRangeShard) {
  Request In = sampleBatch();
  In.Type = MsgType::SubBatch;
  In.Shard = MaxShards; // one past the last valid slot
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ProtocolTest, SnapStateRoundtrip) {
  for (const uint32_t Shard : {0u, 5u, MaxShards - 1, ShardSelf}) {
    Request In;
    In.ReqId = 20;
    In.Type = MsgType::SnapState;
    In.Shard = Shard;
    const Request Out = roundtrip(In);
    EXPECT_EQ(Out.Type, MsgType::SnapState);
    EXPECT_EQ(Out.Shard, Shard);
  }
}

TEST(ProtocolTest, SnapStateRejectsOutOfRangeShard) {
  // Anything in (MaxShards, ShardSelf) is neither a slot nor the self
  // selector.
  Request In;
  In.ReqId = 21;
  In.Type = MsgType::SnapState;
  In.Shard = MaxShards + 9;
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Request Out;
  std::string Err;
  EXPECT_FALSE(decodeRequest(Payload, Out, Err));
}

TEST(ProtocolTest, ShardAnnotatedResponseRoundtrip) {
  Response In;
  In.ReqId = 22;
  In.St = Status::Ok;
  In.CommitSeq = 500; // legacy field: max over sub-batches
  In.Results = {1, 0, -3};
  In.Shards = {{0, 120, 1}, {2, 500, 2}};
  std::string Wire;
  encodeResponse(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_EQ(Out.CommitSeq, In.CommitSeq);
  EXPECT_EQ(Out.Results, In.Results);
  ASSERT_EQ(Out.Shards.size(), 2u);
  EXPECT_EQ(Out.Shards[0].Shard, 0u);
  EXPECT_EQ(Out.Shards[0].CommitSeq, 120u);
  EXPECT_EQ(Out.Shards[0].NumOps, 1u);
  EXPECT_EQ(Out.Shards[1].Shard, 2u);
  EXPECT_EQ(Out.Shards[1].CommitSeq, 500u);
  EXPECT_EQ(Out.Shards[1].NumOps, 2u);
}

TEST(ProtocolTest, UnannotatedResponseDecodesWithEmptyTrailer) {
  // Backward compatibility: a pre-sharding reply (no trailer bytes) must
  // decode with Shards empty, not fail.
  Response In;
  In.ReqId = 23;
  In.St = Status::Ok;
  In.Results = {7};
  std::string Wire;
  encodeResponse(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  Response Out;
  ASSERT_TRUE(decodeResponse(Payload, Out));
  EXPECT_TRUE(Out.Shards.empty());
}

TEST(ProtocolTest, ResponseTrailerMalformedVariantsRejected) {
  Response In;
  In.ReqId = 24;
  In.St = Status::Ok;
  In.Results = {1};
  In.Shards = {{1, 10, 1}};
  std::string Good;
  encodeResponse(In, Good);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Good, Payload, Consumed), FrameResult::Ok);
  const size_t TrailerOff = Payload.size() - (4 + (4 + 8 + 4));

  auto PatchU32 = [&](size_t Off, uint32_t V) {
    std::string Wire = Good;
    for (unsigned I = 0; I != 4; ++I)
      Wire[4 + Off + I] = static_cast<char>((V >> (8 * I)) & 0xFF);
    return Wire;
  };
  auto Rejects = [&](const std::string &Wire, const char *What) {
    std::string_view P;
    size_t C = 0;
    ASSERT_EQ(peelFrame(Wire, P, C), FrameResult::Ok);
    Response Out;
    EXPECT_FALSE(decodeResponse(P, Out)) << What;
  };

  // num_shards = 0 with trailer bytes present.
  Rejects(PatchU32(TrailerOff, 0), "zero num_shards");
  // num_shards past the shard-count bound.
  Rejects(PatchU32(TrailerOff, MaxShards + 1), "num_shards > MaxShards");
  // num_shards promising more entries than the payload carries.
  Rejects(PatchU32(TrailerOff, 2), "num_shards overruns payload");
  // Entry shard id out of range.
  Rejects(PatchU32(TrailerOff + 4, MaxShards), "entry shard out of range");
  // Entry op count past the batch bound.
  Rejects(PatchU32(TrailerOff + 4 + 4 + 8, MaxBatchOps + 1),
          "entry num_ops > MaxBatchOps");
  // Junk past a complete trailer.
  {
    std::string Wire = Good;
    const uint32_t NewLen = static_cast<uint32_t>(Wire.size() - 4 + 1);
    Wire.push_back('z');
    for (unsigned I = 0; I != 4; ++I)
      Wire[I] = static_cast<char>((NewLen >> (8 * I)) & 0xFF);
    Rejects(Wire, "trailing bytes after trailer");
  }
  // Every strict cut through the trailer must read as a failure, never as
  // a shorter valid reply (the u32 text_len already consumed the text, so
  // leftover bytes must be a full trailer or nothing).
  for (size_t Cut = TrailerOff + 1; Cut < Payload.size(); ++Cut) {
    std::string Wire = Good;
    Wire.resize(4 + Cut);
    const uint32_t NewLen = static_cast<uint32_t>(Cut);
    for (unsigned I = 0; I != 4; ++I)
      Wire[I] = static_cast<char>((NewLen >> (8 * I)) & 0xFF);
    std::string_view P;
    size_t C = 0;
    ASSERT_EQ(peelFrame(Wire, P, C), FrameResult::Ok);
    Response Out;
    EXPECT_FALSE(decodeResponse(P, Out)) << "trailer cut at " << Cut;
  }
}

TEST(ProtocolTest, SubBatchTruncationFuzz) {
  Request In = sampleBatch();
  In.Type = MsgType::SubBatch;
  In.Shard = 2;
  std::string Wire;
  encodeRequest(In, Wire);
  std::string_view Payload;
  size_t Consumed = 0;
  ASSERT_EQ(peelFrame(Wire, Payload, Consumed), FrameResult::Ok);
  for (size_t Cut = 0; Cut < Payload.size(); ++Cut) {
    Request Out;
    std::string Err;
    EXPECT_FALSE(decodeRequest(Payload.substr(0, Cut), Out, Err))
        << "cut " << Cut;
  }
}

TEST(ProtocolTest, MutatingOpVocabulary) {
  EXPECT_TRUE(mutatingOp({static_cast<uint8_t>(ObjectId::Set), SetAdd, 1, 0}));
  EXPECT_TRUE(
      mutatingOp({static_cast<uint8_t>(ObjectId::Set), SetRemove, 1, 0}));
  EXPECT_FALSE(
      mutatingOp({static_cast<uint8_t>(ObjectId::Set), SetContains, 1, 0}));
  EXPECT_TRUE(
      mutatingOp({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 1, 0}));
  EXPECT_FALSE(
      mutatingOp({static_cast<uint8_t>(ObjectId::Acc), AccRead, 0, 0}));
  EXPECT_TRUE(mutatingOp({static_cast<uint8_t>(ObjectId::Uf), UfUnion, 0, 1}));
  EXPECT_FALSE(mutatingOp({static_cast<uint8_t>(ObjectId::Uf), UfFind, 0, 0}));
}
