//===- tests/svc/HashRingTest.cpp - Ring, router and lattice merges -----------===//
//
// The sharding subsystem's deterministic core: consistent-hash ring
// distribution and stability, the spec-derived routing table (the kinds are
// computed from SpecClassification, never hardcoded — these tests pin what
// the derivation must conclude), batch planning, and the lattice merges
// that reconcile scatter-gathered whole-structure reads.
//
//===----------------------------------------------------------------------===//

#include "svc/Shard.h"

#include "adt/UnionFind.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace comlat;
using namespace comlat::svc;

namespace {

Op setOp(uint8_t Method, int64_t Key) {
  return {static_cast<uint8_t>(ObjectId::Set), Method, Key, 0};
}
Op accOp(uint8_t Method, int64_t A = 1) {
  return {static_cast<uint8_t>(ObjectId::Acc), Method, A, 0};
}
Op ufOp(uint8_t Method, int64_t A, int64_t B = 0) {
  return {static_cast<uint8_t>(ObjectId::Uf), Method, A, B};
}

} // namespace

//===----------------------------------------------------------------------===//
// HashRing
//===----------------------------------------------------------------------===//

TEST(HashRingTest, CoversAllShards) {
  const HashRing Ring(5, 64, 42);
  std::set<unsigned> Seen;
  for (uint64_t K = 0; K != 10000; ++K)
    Seen.insert(Ring.shardForKey(K));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(HashRingTest, DistributionWithinTwofoldAt64VNodes) {
  // The issue's bound: at 64 vnodes per shard, the busiest shard's key
  // share stays within 2x the least busy one's.
  for (const unsigned Shards : {2u, 3u, 5u, 8u}) {
    const HashRing Ring(Shards, 64, 0x5EED);
    std::map<unsigned, uint64_t> Counts;
    const uint64_t Keys = 200000;
    for (uint64_t K = 0; K != Keys; ++K)
      ++Counts[Ring.shardForKey(K * 0x9E3779B97F4A7C15ull + K)];
    ASSERT_EQ(Counts.size(), Shards);
    uint64_t Min = UINT64_MAX, Max = 0;
    for (const auto &[S, N] : Counts) {
      Min = std::min(Min, N);
      Max = std::max(Max, N);
    }
    EXPECT_LE(Max, 2 * Min) << "shards=" << Shards << " min=" << Min
                            << " max=" << Max;
  }
}

TEST(HashRingTest, DeterministicAcrossInstances) {
  // Same (shards, vnodes, seed) must map identically in any process — the
  // loadgen rebuilds the proxy's ring from its published Stats and
  // recomputes every plan, which only works if the mapping is a pure
  // function of the three parameters.
  const HashRing A(7, 64, 1234), B(7, 64, 1234);
  for (uint64_t K = 0; K != 5000; ++K)
    ASSERT_EQ(A.shardForKey(K), B.shardForKey(K));
}

TEST(HashRingTest, SeedChangesTheMapping) {
  const HashRing A(4, 64, 1), B(4, 64, 2);
  unsigned Differ = 0;
  for (uint64_t K = 0; K != 1000; ++K)
    Differ += A.shardForKey(K) != B.shardForKey(K);
  EXPECT_GT(Differ, 100u); // ~3/4 expected; anything near zero is a bug
}

TEST(HashRingTest, SingleShardDegenerates) {
  const HashRing Ring(1, 64, 99);
  for (uint64_t K = 0; K != 1000; ++K)
    ASSERT_EQ(Ring.shardForKey(K), 0u);
}

TEST(HashRingTest, GeometryIsPublished) {
  const HashRing Ring(3, 16, 777);
  EXPECT_EQ(Ring.numShards(), 3u);
  EXPECT_EQ(Ring.vnodes(), 16u);
  EXPECT_EQ(Ring.seed(), 777u);
}

//===----------------------------------------------------------------------===//
// ShardRouter: spec-derived method routes
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, SetMethodsDeriveKeyed) {
  // Every precise-set pair is always-commuting or separable-and-state-free
  // on the key argument, so the whole family shards by key.
  const HashRing Ring(3, 64, 7);
  const ShardRouter Router(Ring);
  for (const uint8_t M : {SetAdd, SetRemove, SetContains}) {
    const MethodRoute &R = Router.route(ObjectId::Set, M);
    EXPECT_EQ(R.Kind, RouteKind::Keyed) << unsigned(M);
    EXPECT_EQ(R.KeyArg, 0u);
  }
}

TEST(ShardRouterTest, AccumulatorIncrementDerivesAnywhere) {
  // Increment is privatizable (unconditional self-commuter returning
  // nothing): any replica absorbs it and the merge is the sum.
  const HashRing Ring(3, 64, 7);
  const ShardRouter Router(Ring);
  EXPECT_EQ(Router.route(ObjectId::Acc, AccIncrement).Kind,
            RouteKind::Anywhere);
}

TEST(ShardRouterTest, NonSeparableMethodsDerivePinned) {
  // Read serializes against every increment; union/find conflict through
  // the partition itself — no key argument separates them, so the
  // structure pins to one owning shard.
  const HashRing Ring(3, 64, 7);
  const ShardRouter Router(Ring);
  EXPECT_EQ(Router.route(ObjectId::Acc, AccRead).Kind, RouteKind::Pinned);
  EXPECT_EQ(Router.route(ObjectId::Uf, UfFind).Kind, RouteKind::Pinned);
  EXPECT_EQ(Router.route(ObjectId::Uf, UfUnion).Kind, RouteKind::Pinned);
}

TEST(ShardRouterTest, PinnedMethodsShareTheOwner) {
  const HashRing Ring(5, 64, 11);
  const ShardRouter Router(Ring);
  const unsigned Owner = Router.ownerShard(ObjectId::Uf);
  EXPECT_LT(Owner, 5u);
  EXPECT_EQ(Router.shardForOp(ufOp(UfFind, 3)), Owner);
  EXPECT_EQ(Router.shardForOp(ufOp(UfUnion, 1, 2)), Owner);
}

//===----------------------------------------------------------------------===//
// ShardRouter: batch plans
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, PlanCoversEveryOpExactlyOnce) {
  const HashRing Ring(4, 64, 3);
  const ShardRouter Router(Ring);
  std::vector<Op> Ops;
  for (int64_t K = 0; K != 40; ++K)
    Ops.push_back(setOp(SetAdd, K));
  Ops.push_back(accOp(AccIncrement));
  Ops.push_back(ufOp(UfUnion, 1, 2));
  Ops.push_back(accOp(AccRead, 0));
  const RoutePlan Plan = Router.plan(Ops);
  std::set<uint32_t> Seen;
  unsigned PrevShard = 0;
  bool First = true;
  for (const RoutePlan::Sub &Sub : Plan.Subs) {
    if (!First)
      EXPECT_GT(Sub.Shard, PrevShard) << "subs must ascend by shard";
    First = false;
    PrevShard = Sub.Shard;
    for (const uint32_t I : Sub.OpIdx) {
      EXPECT_TRUE(Seen.insert(I).second) << "op routed twice";
      ASSERT_LT(I, Ops.size());
    }
  }
  EXPECT_EQ(Seen.size(), Ops.size());
}

TEST(ShardRouterTest, KeyedOpsFollowTheRing) {
  const HashRing Ring(3, 64, 21);
  const ShardRouter Router(Ring);
  // A batch of same-key set ops is single-shard by construction.
  const RoutePlan Plan = Router.plan(
      {setOp(SetAdd, 17), setOp(SetContains, 17), setOp(SetRemove, 17)});
  ASSERT_TRUE(Plan.singleShard());
  EXPECT_EQ(Plan.Subs[0].OpIdx.size(), 3u);
}

TEST(ShardRouterTest, AnywhereOpsJoinThePrimarySub) {
  // A batch of only privatizable increments must not split: they attach
  // to one shard (any is correct — the merge is the sum).
  const HashRing Ring(3, 64, 21);
  const ShardRouter Router(Ring);
  const RoutePlan Plan =
      Router.plan({accOp(AccIncrement), accOp(AccIncrement)});
  ASSERT_TRUE(Plan.singleShard());
  EXPECT_EQ(Plan.Subs[0].OpIdx.size(), 2u);

  // Mixed with a keyed op, the increments ride that op's shard instead of
  // opening a second sub-batch.
  const RoutePlan Mixed =
      Router.plan({setOp(SetAdd, 5), accOp(AccIncrement)});
  ASSERT_TRUE(Mixed.singleShard());
  EXPECT_EQ(Mixed.Subs[0].Shard, Router.shardForOp(setOp(SetAdd, 5)));
}

TEST(ShardRouterTest, PlanIsDeterministicAcrossRouters) {
  const HashRing RingA(3, 64, 5), RingB(3, 64, 5);
  const ShardRouter A(RingA), B(RingB);
  std::vector<Op> Ops;
  for (int64_t K = 0; K != 30; ++K) {
    Ops.push_back(setOp(SetAdd, K * 37));
    if (K % 5 == 0)
      Ops.push_back(ufOp(UfUnion, K % 8, (K + 3) % 8));
  }
  const RoutePlan PA = A.plan(Ops), PB = B.plan(Ops);
  ASSERT_EQ(PA.Subs.size(), PB.Subs.size());
  for (size_t I = 0; I != PA.Subs.size(); ++I) {
    EXPECT_EQ(PA.Subs[I].Shard, PB.Subs[I].Shard);
    EXPECT_EQ(PA.Subs[I].OpIdx, PB.Subs[I].OpIdx);
  }
}

TEST(ShardRouterTest, EmptyBatchPlansEmpty) {
  const HashRing Ring(3, 64, 5);
  const ShardRouter Router(Ring);
  EXPECT_TRUE(Router.plan({}).Subs.empty());
}

//===----------------------------------------------------------------------===//
// Lattice merges
//===----------------------------------------------------------------------===//

TEST(StateMergeTest, UnionsSetsAndSumsAccumulators) {
  // Per-shard dumps in ObjectHost::stateText() format (uf= of a fresh
  // 4-element forest is each element its own class).
  const std::string A = "set=1,3,\nacc=10\nuf=0:0,1:1,2:2,3:3,\n";
  const std::string B = "set=2,3,\nacc=-4\nuf=0:0,1:1,2:2,3:3,\n";
  std::string Merged, Err;
  ASSERT_TRUE(mergeStateTexts({A, B}, Merged, &Err)) << Err;
  EXPECT_NE(Merged.find("set=1,2,3,"), std::string::npos) << Merged;
  EXPECT_NE(Merged.find("acc=6"), std::string::npos) << Merged;
}

TEST(StateMergeTest, JoinsUnionFindPartitions) {
  // Shard A united {0,1}; shard B united {1,2}. The partition join is the
  // finest partition coarser than both: {0,1,2} one class, {3} alone. The
  // expected signature comes from performing those same unions on a
  // reference forest (representatives depend on rank tie-breaks, so the
  // comparison goes through the same public API, not a literal).
  const std::string A = "set=\nacc=0\nuf=0:0,0:0,2:2,3:3,\n";
  const std::string B = "set=\nacc=0\nuf=0:0,1:1,1:1,3:3,\n";
  std::string Merged, Err;
  ASSERT_TRUE(mergeStateTexts({A, B}, Merged, &Err)) << Err;
  UnionFind Ref(4);
  bool Changed = false;
  Ref.unite(1, 0, nullptr, nullptr, Changed);
  Ref.unite(2, 1, nullptr, nullptr, Changed);
  EXPECT_NE(Merged.find("uf=" + Ref.signature()), std::string::npos)
      << Merged;
  EXPECT_TRUE(Ref.sameSet(0, 2));
  EXPECT_FALSE(Ref.sameSet(0, 3));
}

TEST(StateMergeTest, MergeOrderOnlyRelabelsRepresentatives) {
  // Set union and accumulator sum are order-independent byte for byte.
  // The union-find PARTITION is too, but its representative labels follow
  // rank tie-breaks and thus union order — which is why every consumer
  // (proxy and verifying client) merges in the same ascending shard order.
  const std::string A = "set=5,9,\nacc=3\nuf=0:0,0:0,2:2,\n";
  const std::string B = "set=2,\nacc=4\nuf=0:0,1:1,1:1,\n";
  std::string AB, BA, AA, Err;
  ASSERT_TRUE(mergeStateTexts({A, B}, AB, &Err)) << Err;
  ASSERT_TRUE(mergeStateTexts({B, A}, BA, &Err)) << Err;
  EXPECT_NE(AB.find("set=2,5,9,"), std::string::npos) << AB;
  EXPECT_NE(BA.find("set=2,5,9,"), std::string::npos) << BA;
  EXPECT_NE(AB.find("acc=7"), std::string::npos) << AB;
  EXPECT_NE(BA.find("acc=7"), std::string::npos) << BA;
  // Both orders produce the same partition: each element's smallest class
  // member (the first half of each `smallest:rep` pair) agrees.
  auto Smallest = [](const std::string &Text) {
    const size_t Pos = Text.find("uf=");
    std::vector<std::string> Out;
    size_t P = Pos + 3;
    while (P < Text.size() && Text[P] != '\n') {
      const size_t Colon = Text.find(':', P);
      Out.push_back(Text.substr(P, Colon - P));
      P = Text.find(',', Colon) + 1;
    }
    return Out;
  };
  EXPECT_EQ(Smallest(AB), Smallest(BA));
  // Merging a single dump re-derives its set, sum and partition (reps may
  // relabel; the consumers only ever compare merge output against merge
  // output, never against a raw dump).
  ASSERT_TRUE(mergeStateTexts({A}, AA, &Err)) << Err;
  EXPECT_NE(AA.find("set=5,9,"), std::string::npos) << AA;
  EXPECT_NE(AA.find("acc=3"), std::string::npos) << AA;
  EXPECT_EQ(Smallest(AA), Smallest(A));
}

TEST(StateMergeTest, RejectsDisagreeingForestSizes) {
  const std::string A = "set=\nacc=0\nuf=0:0,1:1,\n";
  const std::string B = "set=\nacc=0\nuf=0:0,1:1,2:2,\n";
  std::string Merged, Err;
  EXPECT_FALSE(mergeStateTexts({A, B}, Merged, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(MetricsMergeTest, SumsSamplesAndKeepsCommentsOnce) {
  const std::string A = "# TYPE comlat_committed_total counter\n"
                        "comlat_committed_total 10\n"
                        "comlat_aborts_total{cause=\"lock\"} 2\n";
  const std::string B = "# TYPE comlat_committed_total counter\n"
                        "comlat_committed_total 32\n"
                        "comlat_aborts_total{cause=\"lock\"} 1\n";
  const std::string Merged = mergeMetricsTexts({A, B});
  EXPECT_NE(Merged.find("comlat_committed_total 42"), std::string::npos)
      << Merged;
  EXPECT_NE(Merged.find("{cause=\"lock\"} 3"), std::string::npos) << Merged;
  // The TYPE comment appears exactly once.
  const size_t First = Merged.find("# TYPE comlat_committed_total");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Merged.find("# TYPE comlat_committed_total", First + 1),
            std::string::npos);
}

TEST(MetricsMergeTest, DisjointFamiliesPassThrough) {
  const std::string A = "only_on_a 5\n";
  const std::string B = "only_on_b 7\n";
  const std::string Merged = mergeMetricsTexts({A, B});
  EXPECT_NE(Merged.find("only_on_a 5"), std::string::npos);
  EXPECT_NE(Merged.find("only_on_b 7"), std::string::npos);
}
