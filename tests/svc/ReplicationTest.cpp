//===- tests/svc/ReplicationTest.cpp - ReplayEngine + live followers -------===//
//
// The replication layer end to end: the one ReplayEngine's sequence
// policies (Resume / Strict / Ordered), its divergence refusal, the
// RecoverySource cache, the hub's subscription triage (resume, snapshot
// bridge, divergent-subscriber refusal), and live leader + follower server
// pairs — catch-up plus live tail, mutation Redirects, monotonic read
// stamps, snapshot bootstrap after leader truncation, and a durable
// follower restarting into a resume from its own recovered watermark.
//
//===----------------------------------------------------------------------===//

#include "svc/LoadGen.h"
#include "svc/Replication.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace comlat;
using namespace comlat::svc;

namespace {

class ReplicationTest : public ::testing::Test {
protected:
  void SetUp() override {
    char L[] = "/tmp/comlat-repl-lead-XXXXXX";
    char F[] = "/tmp/comlat-repl-fol-XXXXXX";
    ASSERT_NE(::mkdtemp(L), nullptr);
    ASSERT_NE(::mkdtemp(F), nullptr);
    LeaderDir = L;
    FollowerDir = F;
  }

  void TearDown() override {
    for (const std::string &Dir : {LeaderDir, FollowerDir}) {
      if (DIR *D = ::opendir(Dir.c_str())) {
        while (struct dirent *E = ::readdir(D)) {
          const std::string Name = E->d_name;
          if (Name != "." && Name != "..")
            ::unlink((Dir + "/" + Name).c_str());
        }
        ::closedir(D);
      }
      ::rmdir(Dir.c_str());
    }
  }

  static constexpr size_t UfN = 64;

  ServerConfig leaderConfig() const {
    ServerConfig SC;
    SC.Port = 0;
    SC.IoThreads = 2;
    SC.Workers = 2;
    SC.UfElements = UfN;
    SC.Backoff.Kind = BackoffKind::Yield;
    SC.Durable = true;
    SC.WalDir = LeaderDir;
    SC.WalSyncIntervalUs = 200;
    return SC;
  }

  ServerConfig followerConfig(uint16_t LeaderPort, bool Durable = true) const {
    ServerConfig SC;
    SC.Port = 0;
    SC.IoThreads = 2;
    SC.Workers = 2;
    SC.UfElements = UfN;
    SC.Backoff.Kind = BackoffKind::Yield;
    SC.Durable = Durable;
    SC.WalDir = Durable ? FollowerDir : "";
    SC.WalSyncIntervalUs = 200;
    SC.FollowHost = "127.0.0.1";
    SC.FollowPort = LeaderPort;
    return SC;
  }

  /// Small verified load against \p Port; returns the stats.
  static LoadGenStats load(uint16_t Port, uint64_t Batches = 100,
                           uint64_t Seed = 42) {
    LoadGenConfig LC;
    LC.Port = Port;
    LC.Threads = 2;
    LC.BatchesPerThread = Batches;
    LC.OpsPerBatch = 4;
    LC.KeySpace = 32;
    LC.UfElements = UfN;
    LC.Seed = Seed;
    return runLoadGen(LC);
  }

  FollowerCheckResult check(uint16_t LeaderPort, uint16_t FollowerPort,
                            bool WithOracle = true) const {
    FollowerCheckConfig FC;
    FC.LeaderPort = LeaderPort;
    FC.FollowerPort = FollowerPort;
    FC.UfElements = UfN;
    FC.CatchUpTimeoutSec = 30;
    if (WithOracle)
      FC.LeaderWalDir = LeaderDir;
    return runFollowerCheck(FC);
  }

  /// One accumulator increment; the oracle assigns its logged result so
  /// synthetic histories replay exactly.
  static WalRecord rec(OracleReplica &Gen, uint64_t Seq, int64_t Amount) {
    WalRecord R;
    R.Seq = Seq;
    Op O;
    O.Obj = static_cast<uint8_t>(ObjectId::Acc);
    O.Method = AccIncrement;
    O.A = Amount;
    R.Ops.push_back(O);
    R.Results.push_back(Gen.applyOp(O));
    return R;
  }

  std::string LeaderDir;
  std::string FollowerDir;
};

} // namespace

//===----------------------------------------------------------------------===//
// ReplayEngine unit behavior
//===----------------------------------------------------------------------===//

TEST_F(ReplicationTest, ResumePolicySkipsBelowWatermarkAndRefusesGaps) {
  OracleReplica Gen(UfN);
  const WalRecord R1 = rec(Gen, 1, 5), R2 = rec(Gen, 2, 7),
                  R3 = rec(Gen, 3, 9);

  OracleReplayTarget Target(UfN);
  ReplayEngine Engine(Target, SeqPolicy::Resume);
  std::string Err;
  ASSERT_TRUE(Engine.applyAll({R1, R2}, &Err)) << Err;
  EXPECT_EQ(Engine.appliedSeq(), 2u);
  EXPECT_EQ(Engine.appliedRecords(), 2u);

  // A follower resuming mid-stream re-receives overlap: skipped, not
  // re-applied, not an error.
  ReplayEngine::Outcome Out;
  ASSERT_TRUE(Engine.apply(R2, Out, &Err)) << Err;
  EXPECT_EQ(Out, ReplayEngine::Outcome::Skipped);
  EXPECT_EQ(Engine.appliedRecords(), 2u);

  // But a hole is missing acknowledged history: fatal.
  OracleReplica Gen2(UfN);
  WalRecord R5 = rec(Gen2, 5, 1);
  EXPECT_FALSE(Engine.apply(R5, Out, &Err));
  EXPECT_NE(Err.find("gap"), std::string::npos);

  ASSERT_TRUE(Engine.apply(R3, Out, &Err)) << Err;
  EXPECT_EQ(Engine.appliedSeq(), 3u);
  EXPECT_EQ(Target.stateText(), Gen.stateText());
}

TEST_F(ReplicationTest, StrictPolicyRefusesDuplicates) {
  OracleReplica Gen(UfN);
  const WalRecord R1 = rec(Gen, 1, 5);
  OracleReplayTarget Target(UfN);
  ReplayEngine Engine(Target, SeqPolicy::Strict);
  ReplayEngine::Outcome Out;
  std::string Err;
  ASSERT_TRUE(Engine.apply(R1, Out, &Err)) << Err;
  EXPECT_FALSE(Engine.apply(R1, Out, &Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST_F(ReplicationTest, OrderedPolicyToleratesGapsButNotDuplicates) {
  // The live-verify shape: a reply lost to a tolerated disconnect leaves
  // a legitimate hole, but the same sequence twice is always a bug.
  OracleReplica Gen(UfN);
  const WalRecord R1 = rec(Gen, 1, 5), R4 = rec(Gen, 4, 7);
  OracleReplayTarget Target(UfN);
  ReplayEngine Engine(Target, SeqPolicy::Ordered);
  ReplayEngine::Outcome Out;
  std::string Err;
  ASSERT_TRUE(Engine.apply(R1, Out, &Err)) << Err;
  ASSERT_TRUE(Engine.apply(R4, Out, &Err)) << Err; // hole at 2-3: fine
  EXPECT_EQ(Engine.appliedSeq(), 4u);
  EXPECT_FALSE(Engine.apply(R4, Out, &Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST_F(ReplicationTest, DivergenceIsRefusedWithDetail) {
  OracleReplica Gen(UfN);
  WalRecord R1 = rec(Gen, 1, 5);
  R1.Results[0] += 1; // the log claims a result replay cannot reproduce
  OracleReplayTarget Target(UfN);
  ReplayEngine Engine(Target, SeqPolicy::Strict);
  ReplayEngine::Outcome Out;
  std::string Err;
  EXPECT_FALSE(Engine.apply(R1, Out, &Err));
  EXPECT_NE(Err.find("diverged at seq 1"), std::string::npos);
}

TEST_F(ReplicationTest, RecoverySourceReplaysSnapshotPlusTail) {
  // Build a real directory: records 1..6 through a Wal, a snapshot at 4,
  // then verify the cached source replays snapshot + tail to the same
  // state a straight-through oracle reaches.
  OracleReplica Gen(UfN);
  ObjectHost SnapHost(UfN);
  HostReplayTarget SnapTarget(SnapHost);
  ReplayEngine SnapEngine(SnapTarget, SeqPolicy::Strict);
  std::string Err;
  {
    Wal Log(WalConfig{LeaderDir, 200, 16}, 1);
    for (int I = 1; I <= 6; ++I) {
      const WalRecord R = rec(Gen, static_cast<uint64_t>(I), I * 3);
      if (I <= 4) {
        ASSERT_TRUE(SnapEngine.applyAll({R}, &Err)) << Err;
      }
      // The encode fn runs later on the log thread, so it must own its
      // bytes — a reference into this loop iteration would dangle.
      std::string Bytes;
      encodeWalRecord(Bytes, R.Seq, R.Ops, R.Results);
      Log.logCommit(
          [Bytes](uint64_t, std::string &Out) { Out += Bytes; });
    }
    Log.flush();
  }
  SnapshotData Snap;
  Snap.Seq = 4;
  Snap.State = SnapHost.snapshotText();
  ASSERT_TRUE(writeSnapshot(LeaderDir, Snap, &Err)) << Err;

  RecoverySource Source(LeaderDir);
  ASSERT_TRUE(Source.load(/*Repair=*/true, &Err)) << Err;
  ASSERT_TRUE(Source.hasSnapshot());
  EXPECT_EQ(Source.snapshot().Seq, 4u);
  EXPECT_EQ(Source.watermark(), 6u);
  EXPECT_FALSE(Source.scan().Gap);

  OracleReplayTarget Target(UfN);
  ReplayEngine Engine(Target, SeqPolicy::Strict);
  ASSERT_TRUE(Source.replayInto(Engine, &Err)) << Err;
  EXPECT_EQ(Engine.appliedSeq(), 6u);
  EXPECT_EQ(Engine.appliedRecords(), 2u); // only the tail past the snapshot
  EXPECT_EQ(Target.stateText(), Gen.stateText());
}

//===----------------------------------------------------------------------===//
// Live leader + follower servers
//===----------------------------------------------------------------------===//

TEST_F(ReplicationTest, FollowerCatchesUpAndServesConsistentReads) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  // History the follower must catch up on...
  EXPECT_EQ(load(Leader.port()).ProtocolErrors, 0u);

  Server Follower(followerConfig(Leader.port()));
  ASSERT_TRUE(Follower.start(&Err)) << Err;
  EXPECT_TRUE(Follower.isFollower());
  EXPECT_FALSE(Leader.isFollower());

  // ...plus live records shipped while both serve.
  EXPECT_EQ(load(Leader.port(), 100, 43).ProtocolErrors, 0u);
  Leader.submitter().drain();

  const FollowerCheckResult R = check(Leader.port(), Follower.port());
  EXPECT_TRUE(R.Ok) << R.Detail;
  EXPECT_GT(R.LeaderDurableSeq, 0u);
  EXPECT_GE(R.FollowerAppliedSeq, R.LeaderDurableSeq);
  EXPECT_EQ(Follower.objects().stateText(), Leader.objects().stateText());

  const std::string Stats = Follower.statsText();
  EXPECT_NE(Stats.find("role=follower"), std::string::npos);
  EXPECT_NE(Stats.find("repl_applied_seq="), std::string::npos);
  EXPECT_NE(Leader.statsText().find("role=leader"), std::string::npos);

  Follower.stop();
  Leader.stop();
}

TEST_F(ReplicationTest, FollowerRedirectsMutationsAtTheLeader) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  Server Follower(followerConfig(Leader.port(), /*Durable=*/false));
  ASSERT_TRUE(Follower.start(&Err)) << Err;

  Client C;
  ASSERT_TRUE(C.connect("127.0.0.1", Follower.port()));
  Request Req;
  Req.ReqId = 1;
  Req.Type = MsgType::Batch;
  Op O;
  O.Obj = static_cast<uint8_t>(ObjectId::Set);
  O.Method = SetAdd;
  O.A = 3;
  Req.Ops.push_back(O);
  Response Resp;
  ASSERT_TRUE(C.call(Req, Resp));
  EXPECT_EQ(Resp.St, Status::Redirect);
  EXPECT_NE(Resp.Text.find("leader=127.0.0.1:"), std::string::npos);

  // The read vocabulary still answers, stamped with a watermark.
  Request Read;
  Read.ReqId = 2;
  Read.Type = MsgType::Batch;
  Op RO;
  RO.Obj = static_cast<uint8_t>(ObjectId::Acc);
  RO.Method = AccRead;
  Read.Ops.push_back(RO);
  ASSERT_TRUE(C.call(Read, Resp));
  EXPECT_EQ(Resp.St, Status::Ok);

  Follower.stop();
  Leader.stop();
}

TEST_F(ReplicationTest, MixedLoadRoutesReadsToFollowerMonotonically) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  Server Follower(followerConfig(Leader.port()));
  ASSERT_TRUE(Follower.start(&Err)) << Err;

  LoadGenConfig LC;
  LC.Port = Leader.port();
  LC.Threads = 2;
  LC.BatchesPerThread = 150;
  LC.OpsPerBatch = 4;
  LC.KeySpace = 32;
  LC.UfElements = UfN;
  LC.ReadHost = "127.0.0.1";
  LC.ReadPort = Follower.port();
  LC.ReadFraction = 0.3;
  const LoadGenStats Stats = runLoadGen(LC);
  EXPECT_EQ(Stats.ProtocolErrors, 0u);
  EXPECT_GT(Stats.FollowerReads, 0u);
  EXPECT_EQ(Stats.MonotonicViolations, 0u);
  EXPECT_EQ(Stats.RedirectReplies, 0u); // reads never bounce

  Follower.stop();
  Leader.stop();
}

TEST_F(ReplicationTest, SnapshotBridgesASubscriberTheWalNoLongerCovers) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  EXPECT_EQ(load(Leader.port()).ProtocolErrors, 0u);
  Leader.submitter().drain();
  // Snapshot + truncate: the WAL's early records are gone, so a fresh
  // subscriber at watermark 0 can only be bridged by a SnapshotXfer.
  ASSERT_TRUE(Leader.snapshotNow());

  ASSERT_NE(Leader.hub(), nullptr);
  const ReplicationHub::SubscribePlan FreshPlan =
      Leader.hub()->planSubscribe(0);
  EXPECT_TRUE(FreshPlan.Accept);
  EXPECT_TRUE(FreshPlan.SendSnapshot);

  Server Follower(followerConfig(Leader.port()));
  ASSERT_TRUE(Follower.start(&Err)) << Err;
  // The shipped snapshot is persisted locally: a durable follower records
  // the bridge so its own restart can recover past the leader's hole.
  EXPECT_GT(Follower.recoveredSeq(), 0u);

  EXPECT_EQ(load(Leader.port(), 50, 44).ProtocolErrors, 0u);
  Leader.submitter().drain();
  const FollowerCheckResult R = check(Leader.port(), Follower.port());
  EXPECT_TRUE(R.Ok) << R.Detail;

  Follower.stop();
  Leader.stop();
}

TEST_F(ReplicationTest, DurableFollowerRestartsIntoAResumeFromItsWatermark) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  EXPECT_EQ(load(Leader.port()).ProtocolErrors, 0u);

  uint64_t AppliedBefore = 0;
  {
    Server Follower(followerConfig(Leader.port()));
    ASSERT_TRUE(Follower.start(&Err)) << Err;
    const FollowerCheckResult R = check(Leader.port(), Follower.port());
    ASSERT_TRUE(R.Ok) << R.Detail;
    AppliedBefore = Follower.replication()->appliedSeq();
    Follower.stop();
  }
  ASSERT_GT(AppliedBefore, 0u);

  // History moves on while the follower is down.
  EXPECT_EQ(load(Leader.port(), 80, 45).ProtocolErrors, 0u);
  Leader.submitter().drain();

  Server Reborn(followerConfig(Leader.port()));
  ASSERT_TRUE(Reborn.start(&Err)) << Err;
  // It recovered its own mirrored WAL first, then resumed the stream —
  // no snapshot re-ship, no re-application of acknowledged history.
  EXPECT_GE(Reborn.recoveredSeq(), AppliedBefore);
  const FollowerCheckResult R = check(Leader.port(), Reborn.port());
  EXPECT_TRUE(R.Ok) << R.Detail;
  EXPECT_EQ(Reborn.objects().stateText(), Leader.objects().stateText());
  EXPECT_FALSE(Reborn.replicationFailed());

  Reborn.stop();
  Leader.stop();
}

TEST_F(ReplicationTest, HubRefusesDivergentOrUncoverableSubscribers) {
  Server Leader(leaderConfig());
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;
  EXPECT_EQ(load(Leader.port(), 50).ProtocolErrors, 0u);
  Leader.submitter().drain();
  ASSERT_NE(Leader.hub(), nullptr);

  // A subscriber claiming a watermark past the leader's durable history
  // has a history the leader never produced: divergent, refused.
  uint64_t Durable = 0;
  {
    std::istringstream In(Leader.statsText());
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("wal_durable_seq=", 0) == 0)
        Durable = std::strtoull(Line.c_str() + 16, nullptr, 10);
  }
  ASSERT_GT(Durable, 0u);
  const ReplicationHub::SubscribePlan Ahead =
      Leader.hub()->planSubscribe(Durable + 100);
  EXPECT_FALSE(Ahead.Accept);
  EXPECT_NE(Ahead.Reason.find("ahead"), std::string::npos);

  // At the watermark: accept, nothing to re-ship.
  const ReplicationHub::SubscribePlan AtTip =
      Leader.hub()->planSubscribe(Durable);
  EXPECT_TRUE(AtTip.Accept);
  EXPECT_FALSE(AtTip.SendSnapshot);

  // After snapshot + truncation, a stale watermark the WAL no longer
  // covers (and no snapshot can bridge, since only watermark-0
  // subscribers take one) is refused with instructions.
  ASSERT_TRUE(Leader.snapshotNow());
  const ReplicationHub::SubscribePlan Stale = Leader.hub()->planSubscribe(1);
  EXPECT_FALSE(Stale.Accept);
  EXPECT_NE(Stale.Reason.find("truncated"), std::string::npos);

  Leader.stop();
}

TEST_F(ReplicationTest, FollowerAgainstNonDurableLeaderFailsToStart) {
  ServerConfig SC = leaderConfig();
  SC.Durable = false;
  SC.WalDir.clear();
  Server Leader(SC);
  std::string Err;
  ASSERT_TRUE(Leader.start(&Err)) << Err;

  Server Follower(followerConfig(Leader.port(), /*Durable=*/false));
  std::string FollowErr;
  EXPECT_FALSE(Follower.start(&FollowErr));
  EXPECT_NE(FollowErr.find("follow:"), std::string::npos);
  EXPECT_NE(FollowErr.find("refused"), std::string::npos);

  Follower.stop();
  Leader.stop();
}
