//===- tests/svc/WalTailTest.cpp - Live tail subscription edges ------------===//
//
// The Wal tail-subscription contract ReplicationHub is built on: a
// subscriber registered at the durable watermark W sees every record > W
// exactly once, in order, with no delivery of anything it already covers;
// rotation mid-subscription never tears or duplicates the stream; and
// unsubscription bounds trailing deliveries to at most the group already
// in flight.
//
//===----------------------------------------------------------------------===//

#include "svc/Wal.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <mutex>
#include <string>
#include <vector>

using namespace comlat;
using namespace comlat::svc;

namespace {

class WalTailTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/comlat-walttest-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        const std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  /// Logs one record whose single op/result encode \p Marker, and returns
  /// the assigned sequence.
  static uint64_t logOne(Wal &Log, int64_t Marker) {
    return Log.logCommit([Marker](uint64_t Seq, std::string &Out) {
      Op O;
      O.Obj = 1; // acc
      O.Method = 0;
      O.A = Marker;
      encodeWalRecord(Out, Seq, {O}, {Marker});
    });
  }

  /// A tail sink collecting every delivered record under a lock (the log
  /// thread calls it), plus the advertised [First, Last] ranges.
  struct Collector {
    std::mutex Mu;
    std::vector<WalRecord> Records;
    std::vector<std::pair<uint64_t, uint64_t>> Ranges;

    Wal::TailFn sink() {
      return [this](uint64_t First, uint64_t Last, const std::string &Bytes) {
        std::lock_guard<std::mutex> G(Mu);
        Ranges.emplace_back(First, Last);
        size_t Pos = 0;
        WalRecord R;
        while (decodeWalRecord(Bytes, Pos, R) == WalDecode::Ok)
          Records.push_back(R);
        EXPECT_EQ(Pos, Bytes.size()); // no torn record inside a delivery
      };
    }

    std::vector<uint64_t> seqs() {
      std::lock_guard<std::mutex> G(Mu);
      std::vector<uint64_t> Out;
      for (const WalRecord &R : Records)
        Out.push_back(R.Seq);
      return Out;
    }
  };

  /// Deliveries trail flush(): the log thread publishes durability (which
  /// is what flush waits on) before it invokes the sinks. Bounded wait for
  /// the collector to hold \p N records.
  static void awaitRecords(Collector &C, size_t N) {
    for (int I = 0; I != 2000 && C.seqs().size() < N; ++I)
      ::usleep(1000);
  }

  std::string Dir;
};

} // namespace

TEST_F(WalTailTest, SubscribeAtWatermarkGetsExactlyTheRecordsPastIt) {
  Wal Log(WalConfig{Dir, 500, 16}, 1);
  for (int I = 0; I != 5; ++I)
    logOne(Log, I);
  Log.flush();

  Collector C;
  const uint64_t W = Log.subscribeTail(1, C.sink());
  EXPECT_EQ(W, 5u); // everything logged so far is durable

  for (int I = 5; I != 12; ++I)
    logOne(Log, I);
  Log.flush();

  // Exactly seqs W+1..12, once each, in order: nothing at or below the
  // watermark is re-delivered, nothing past it is skipped.
  awaitRecords(C, 7);
  const std::vector<uint64_t> Seqs = C.seqs();
  ASSERT_EQ(Seqs.size(), 7u);
  for (size_t I = 0; I != Seqs.size(); ++I)
    EXPECT_EQ(Seqs[I], W + 1 + I);
  // The payload round-trips: results carry the markers we logged.
  {
    std::lock_guard<std::mutex> G(C.Mu);
    for (const WalRecord &R : C.Records) {
      ASSERT_EQ(R.Results.size(), 1u);
      EXPECT_EQ(R.Results[0], static_cast<int64_t>(R.Seq) - 1);
    }
  }
  Log.unsubscribeTail(1);
}

TEST_F(WalTailTest, MidStreamSubscribeSplicesAgainstCatchUpScan) {
  // The hub's splice: records <= the subscription watermark come from a
  // directory scan, records above it from the live tail. Together they
  // must cover the history exactly once.
  Wal Log(WalConfig{Dir, 500, 16}, 1);
  for (int I = 0; I != 8; ++I)
    logOne(Log, I);
  Log.flush();

  Collector C;
  const uint64_t W = Log.subscribeTail(7, C.sink());

  for (int I = 8; I != 15; ++I)
    logOne(Log, I);
  Log.flush();

  awaitRecords(C, 7);
  WalScan Scan;
  std::string Err;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/0, Scan, &Err, /*Repair=*/false))
      << Err;

  std::vector<uint64_t> All;
  for (const WalRecord &R : Scan.Records)
    if (R.Seq <= W)
      All.push_back(R.Seq); // the catch-up half
  for (const uint64_t S : C.seqs())
    All.push_back(S); // the live half
  ASSERT_EQ(All.size(), 15u);
  for (size_t I = 0; I != All.size(); ++I)
    EXPECT_EQ(All[I], I + 1); // contiguous, no overlap, no hole
  Log.unsubscribeTail(7);
}

TEST_F(WalTailTest, RotationDuringSubscriptionKeepsTheStreamContiguous) {
  Wal Log(WalConfig{Dir, 500, 4}, 1);
  Collector C;
  const uint64_t W = Log.subscribeTail(2, C.sink());
  EXPECT_EQ(W, 0u);

  for (int I = 0; I != 6; ++I)
    logOne(Log, I);
  Log.flush();
  Log.rotateAfter(Log.lastAssignedSeq()); // seal the segment mid-stream
  for (int I = 6; I != 12; ++I)
    logOne(Log, I);
  Log.flush();
  Log.rotateAfter(Log.lastAssignedSeq());
  for (int I = 12; I != 15; ++I)
    logOne(Log, I);
  Log.flush();

  awaitRecords(C, 15);
  const std::vector<uint64_t> Seqs = C.seqs();
  ASSERT_EQ(Seqs.size(), 15u);
  for (size_t I = 0; I != Seqs.size(); ++I)
    EXPECT_EQ(Seqs[I], I + 1);

  // The advertised ranges never overlap and never leave a hole either.
  {
    std::lock_guard<std::mutex> G(C.Mu);
    uint64_t Expect = 1;
    for (const auto &[First, Last] : C.Ranges) {
      EXPECT_EQ(First, Expect);
      EXPECT_LE(First, Last);
      Expect = Last + 1;
    }
    EXPECT_EQ(Expect, 16u);
  }
  Log.unsubscribeTail(2);
}

TEST_F(WalTailTest, UnsubscribeStopsDeliveries) {
  Wal Log(WalConfig{Dir, 500, 16}, 1);
  Collector C;
  Log.subscribeTail(3, C.sink());
  for (int I = 0; I != 4; ++I)
    logOne(Log, I);
  Log.flush();
  Log.unsubscribeTail(3);
  // A delivery already snapshotted for the pre-unsubscribe group may still
  // trail in, but nothing logged after unsubscription ever does.
  for (int I = 4; I != 8; ++I)
    logOne(Log, I);
  Log.flush();
  Log.flush();
  for (const uint64_t S : C.seqs())
    EXPECT_LE(S, 4u);
}
