//===- tests/svc/WalTest.cpp - WAL and snapshot durability edges -----------===//
//
// The on-disk half of the durability layer, exercised without a server:
// record encode/decode, torn tails and CRC damage, directory scans with
// repair, live-log group commit and ACK release, segment rotation and
// truncation, and the snapshot write/load/prune protocol including the
// crash windows the temp-file + atomic-rename dance is meant to survive.
//
//===----------------------------------------------------------------------===//

#include "svc/Snapshot.h"
#include "svc/Wal.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// A fresh directory per test, removed (recursively, one level) on exit.
class WalTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/comlat-waltest-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        const std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  /// One synthetic record whose ops/results are derived from \p Seq.
  static WalRecord makeRecord(uint64_t Seq, size_t NumOps = 3) {
    WalRecord R;
    R.Seq = Seq;
    for (size_t I = 0; I != NumOps; ++I) {
      Op O;
      O.Obj = static_cast<uint8_t>(I % 3);
      O.Method = static_cast<uint8_t>(Seq % 2);
      O.A = static_cast<int64_t>(Seq * 10 + I);
      O.B = -static_cast<int64_t>(I);
      R.Ops.push_back(O);
      R.Results.push_back(static_cast<int64_t>(Seq + I));
    }
    return R;
  }

  static void appendEncoded(std::string &Buf, const WalRecord &R) {
    encodeWalRecord(Buf, R.Seq, R.Ops, R.Results);
  }

  void writeFile(const std::string &Name, const std::string &Bytes) const {
    std::ofstream Out(Dir + "/" + Name, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    ASSERT_TRUE(Out.good());
  }

  std::string readFile(const std::string &Name) const {
    std::ifstream In(Dir + "/" + Name, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  bool exists(const std::string &Name) const {
    struct stat St;
    return ::stat((Dir + "/" + Name).c_str(), &St) == 0;
  }

  std::string Dir;
};

void expectSame(const WalRecord &A, const WalRecord &B) {
  EXPECT_EQ(A.Seq, B.Seq);
  ASSERT_EQ(A.Ops.size(), B.Ops.size());
  for (size_t I = 0; I != A.Ops.size(); ++I) {
    EXPECT_EQ(A.Ops[I].Obj, B.Ops[I].Obj);
    EXPECT_EQ(A.Ops[I].Method, B.Ops[I].Method);
    EXPECT_EQ(A.Ops[I].A, B.Ops[I].A);
    EXPECT_EQ(A.Ops[I].B, B.Ops[I].B);
  }
  EXPECT_EQ(A.Results, B.Results);
}

} // namespace

//===----------------------------------------------------------------------===//
// Record encode/decode
//===----------------------------------------------------------------------===//

TEST_F(WalTest, RecordRoundTrip) {
  std::string Buf;
  const WalRecord In1 = makeRecord(7), In2 = makeRecord(8, 1);
  appendEncoded(Buf, In1);
  appendEncoded(Buf, In2);

  size_t Pos = 0;
  WalRecord Out;
  ASSERT_EQ(decodeWalRecord(Buf, Pos, Out), WalDecode::Ok);
  expectSame(In1, Out);
  ASSERT_EQ(decodeWalRecord(Buf, Pos, Out), WalDecode::Ok);
  expectSame(In2, Out);
  EXPECT_EQ(decodeWalRecord(Buf, Pos, Out), WalDecode::End);
  EXPECT_EQ(Pos, Buf.size());
}

TEST_F(WalTest, DecodeTornOnEveryTruncationPoint) {
  // Any strict prefix of a record must decode as Torn, never Ok and never
  // a crash — this is exactly what a torn tail looks like after kill -9.
  std::string Buf;
  appendEncoded(Buf, makeRecord(1));
  WalRecord Out;
  for (size_t Cut = 1; Cut != Buf.size(); ++Cut) {
    size_t Pos = 0;
    EXPECT_EQ(decodeWalRecord(std::string_view(Buf.data(), Cut), Pos, Out),
              WalDecode::Torn)
        << "prefix length " << Cut;
    EXPECT_EQ(Pos, 0u);
  }
}

TEST_F(WalTest, DecodeTornOnCrcDamage) {
  std::string Buf;
  appendEncoded(Buf, makeRecord(1));
  // Flip one payload byte: the length still parses, the CRC must not.
  Buf[6] = static_cast<char>(Buf[6] ^ 0x40);
  size_t Pos = 0;
  WalRecord Out;
  EXPECT_EQ(decodeWalRecord(Buf, Pos, Out), WalDecode::Torn);
}

TEST_F(WalTest, DecodeTornOnAbsurdLength) {
  std::string Buf;
  const uint32_t Len = MaxWalRecordPayload + 1;
  for (unsigned I = 0; I != 4; ++I)
    Buf.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  Buf.append(64, '\0');
  size_t Pos = 0;
  WalRecord Out;
  EXPECT_EQ(decodeWalRecord(Buf, Pos, Out), WalDecode::Torn);
}

//===----------------------------------------------------------------------===//
// Directory scan and repair
//===----------------------------------------------------------------------===//

TEST_F(WalTest, ScanSkipsWatermarkAndKeepsOrder) {
  std::string Seg;
  for (uint64_t Seq = 1; Seq <= 6; ++Seq)
    appendEncoded(Seg, makeRecord(Seq));
  writeFile("wal-00000000000000000001.log", Seg);

  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/4, Scan));
  EXPECT_FALSE(Scan.Torn);
  EXPECT_EQ(Scan.Skipped, 4u);
  EXPECT_EQ(Scan.LastSeq, 6u);
  ASSERT_EQ(Scan.Records.size(), 2u);
  EXPECT_EQ(Scan.Records[0].Seq, 5u);
  EXPECT_EQ(Scan.Records[1].Seq, 6u);
}

TEST_F(WalTest, ScanStopsAtTornTailAndRepairTruncates) {
  std::string Seg;
  appendEncoded(Seg, makeRecord(1));
  appendEncoded(Seg, makeRecord(2));
  const size_t ValidLen = Seg.size();
  Seg.append("partial-garbage");
  writeFile("wal-00000000000000000001.log", Seg);
  // A later segment after the torn one must be dropped entirely: its
  // records were never acknowledged (ACKs are released in order) and
  // replaying them would apply effects the torn gap never had.
  std::string Seg2;
  appendEncoded(Seg2, makeRecord(3));
  writeFile("wal-00000000000000000003.log", Seg2);

  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan, nullptr, /*Repair=*/false));
  EXPECT_TRUE(Scan.Torn);
  EXPECT_EQ(Scan.LastSeq, 2u);
  ASSERT_EQ(Scan.Records.size(), 2u);
  // Without Repair the files are untouched.
  EXPECT_EQ(readFile("wal-00000000000000000001.log").size(), Seg.size());
  EXPECT_TRUE(exists("wal-00000000000000000003.log"));

  WalScan Repaired;
  ASSERT_TRUE(scanWalDir(Dir, 0, Repaired, nullptr, /*Repair=*/true));
  EXPECT_TRUE(Repaired.Torn);
  EXPECT_EQ(Repaired.Records.size(), 2u);
  // Repair physically truncates the torn file and unlinks later segments,
  // so stale bytes can never shadow the next writer's appends.
  EXPECT_EQ(readFile("wal-00000000000000000001.log").size(), ValidLen);
  EXPECT_FALSE(exists("wal-00000000000000000003.log"));

  WalScan Clean;
  ASSERT_TRUE(scanWalDir(Dir, 0, Clean));
  EXPECT_FALSE(Clean.Torn);
  EXPECT_EQ(Clean.Records.size(), 2u);
}

TEST_F(WalTest, ScanTreatsSequenceRegressionAsTorn) {
  std::string Seg;
  appendEncoded(Seg, makeRecord(5));
  appendEncoded(Seg, makeRecord(3)); // file order must be seq order
  writeFile("wal-00000000000000000005.log", Seg);

  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/4, Scan));
  EXPECT_TRUE(Scan.Torn);
  EXPECT_FALSE(Scan.Gap);
  ASSERT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.Records[0].Seq, 5u);
}

TEST_F(WalTest, ScanReportsSequenceGapAndLeavesFilesAlone) {
  // Records 3..4 are missing: a hole in acknowledged history (e.g. the
  // WAL was truncated past the snapshot that could actually be loaded).
  // Unlike a torn tail this must not be repaired away — the records past
  // the hole were acknowledged — only reported, so recovery can refuse.
  std::string Seg1, Seg2;
  appendEncoded(Seg1, makeRecord(1));
  appendEncoded(Seg1, makeRecord(2));
  writeFile("wal-00000000000000000001.log", Seg1);
  appendEncoded(Seg2, makeRecord(5));
  appendEncoded(Seg2, makeRecord(6));
  writeFile("wal-00000000000000000005.log", Seg2);

  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan, nullptr, /*Repair=*/true));
  EXPECT_TRUE(Scan.Gap);
  EXPECT_EQ(Scan.GapAt, 3u);
  EXPECT_FALSE(Scan.Torn);
  EXPECT_EQ(Scan.LastSeq, 2u);
  ASSERT_EQ(Scan.Records.size(), 2u);
  // Even with Repair on, a gap touches nothing: both files survive.
  EXPECT_TRUE(exists("wal-00000000000000000001.log"));
  EXPECT_TRUE(exists("wal-00000000000000000005.log"));

  // A watermark covering the hole makes the same files a valid log again
  // (the missing records are subsumed by the snapshot).
  WalScan Covered;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/4, Covered));
  EXPECT_FALSE(Covered.Gap);
  EXPECT_EQ(Covered.Records.size(), 2u);
}

TEST_F(WalTest, ScanReportsGapBetweenWatermarkAndFirstRecord) {
  // The fallback-snapshot hole: snapshot watermark 2 loaded, but the WAL
  // only starts at 5 — sequences 3..4 were acknowledged and are gone.
  std::string Seg;
  appendEncoded(Seg, makeRecord(5));
  appendEncoded(Seg, makeRecord(6));
  writeFile("wal-00000000000000000005.log", Seg);

  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/2, Scan));
  EXPECT_TRUE(Scan.Gap);
  EXPECT_EQ(Scan.GapAt, 3u);
  EXPECT_TRUE(Scan.Records.empty());
}

TEST_F(WalTest, ScanToleratesEmptyAndHeaderOnlyFiles) {
  writeFile("wal-00000000000000000001.log", "");
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan));
  EXPECT_FALSE(Scan.Torn); // an empty segment is a clean (if pointless) log
  EXPECT_EQ(Scan.Records.size(), 0u);

  writeFile("wal-00000000000000000001.log", std::string("\x08\x00", 2));
  WalScan Scan2;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan2));
  EXPECT_TRUE(Scan2.Torn); // two header bytes: a torn, repairable tail
  EXPECT_EQ(Scan2.Records.size(), 0u);
}

TEST_F(WalTest, RepairUnlinksRecordlessSegmentsSoRestartCanRecreate) {
  // The crash-loop trap: a segment created but never written (crash
  // before the first durable record, or a torn first record that repair
  // would truncate to nothing) must not survive repair — the next
  // writer's first commit re-creates the very same name with O_EXCL.
  std::string Seg;
  appendEncoded(Seg, makeRecord(1));
  appendEncoded(Seg, makeRecord(2));
  writeFile("wal-00000000000000000001.log", Seg);
  writeFile("wal-00000000000000000003.log", "");                    // empty
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan, nullptr, /*Repair=*/true));
  EXPECT_FALSE(Scan.Torn);
  EXPECT_EQ(Scan.LastSeq, 2u);
  EXPECT_FALSE(exists("wal-00000000000000000003.log"));

  // Torn-to-nothing variant: a partial first record leaves no valid
  // prefix, so repair unlinks rather than truncating to zero bytes.
  writeFile("wal-00000000000000000003.log", std::string("\x08\x00", 2));
  WalScan Scan2;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan2, nullptr, /*Repair=*/true));
  EXPECT_TRUE(Scan2.Torn);
  EXPECT_FALSE(exists("wal-00000000000000000003.log"));

  // The restart the trap used to kill: a new Wal resuming at sequence 3
  // opens wal-...03.log fresh and serves commits.
  WalConfig Config;
  Config.Dir = Dir;
  {
    Wal Log(Config, /*FirstSeq=*/3);
    Log.logCommit([](uint64_t S, std::string &Out) {
      const WalRecord R = makeRecord(S, 1);
      encodeWalRecord(Out, S, R.Ops, R.Results);
    });
    Log.flush();
    EXPECT_EQ(Log.durableSeq(), 3u);
  }
  WalScan After;
  ASSERT_TRUE(scanWalDir(Dir, 0, After));
  EXPECT_FALSE(After.Torn);
  EXPECT_EQ(After.LastSeq, 3u);
}

TEST_F(WalTest, OpenSegmentAdoptsEmptyLeftoverWithoutRepair) {
  // Same trap when no repair scan ran (standalone Wal use): an empty
  // leftover under the exact segment name is adopted, not fatal.
  writeFile("wal-00000000000000000007.log", "");
  WalConfig Config;
  Config.Dir = Dir;
  {
    Wal Log(Config, /*FirstSeq=*/7);
    Log.logCommit([](uint64_t S, std::string &Out) {
      const WalRecord R = makeRecord(S, 1);
      encodeWalRecord(Out, S, R.Ops, R.Results);
    });
    Log.flush();
  }
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/6, Scan));
  EXPECT_FALSE(Scan.Torn);
  EXPECT_FALSE(Scan.Gap);
  ASSERT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.Records[0].Seq, 7u);
}

//===----------------------------------------------------------------------===//
// Live log
//===----------------------------------------------------------------------===//

TEST_F(WalTest, LiveLogPersistsInSequenceOrder) {
  WalConfig Config;
  Config.Dir = Dir;
  Config.SyncIntervalUs = 200;
  constexpr uint64_t N = 200;
  {
    Wal Log(Config, /*FirstSeq=*/1);
    for (uint64_t I = 0; I != N; ++I) {
      const uint64_t Seq = Log.logCommit([](uint64_t S, std::string &Out) {
        const WalRecord R = makeRecord(S);
        encodeWalRecord(Out, S, R.Ops, R.Results);
      });
      EXPECT_EQ(Seq, I + 1);
    }
    EXPECT_EQ(Log.lastAssignedSeq(), N);
    Log.flush();
    EXPECT_EQ(Log.durableSeq(), N);
  }
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, 0, Scan));
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), N);
  for (uint64_t I = 0; I != N; ++I)
    expectSame(makeRecord(I + 1), Scan.Records[I]);
}

TEST_F(WalTest, AcksFireOnlyAfterDurability) {
  WalConfig Config;
  Config.Dir = Dir;
  Wal Log(Config, 1);
  std::atomic<int> Fired{0};
  const uint64_t Seq = Log.logCommit([](uint64_t S, std::string &Out) {
    const WalRecord R = makeRecord(S, 1);
    encodeWalRecord(Out, S, R.Ops, R.Results);
  });
  Log.awaitDurable(Seq, [&] {
    EXPECT_GE(Log.durableSeq(), Seq); // never before the fdatasync
    Fired.fetch_add(1);
  });
  Log.waitDurable(Seq);
  // waitDurable wakes when the watermark is published; the group's ack
  // callbacks run on the log thread right after, so give them a moment.
  for (int I = 0; I != 20000 && Fired.load() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_EQ(Fired.load(), 1);
  // Registering after the fact runs inline on this thread.
  Log.awaitDurable(Seq, [&] { Fired.fetch_add(1); });
  EXPECT_EQ(Fired.load(), 2);
}

TEST_F(WalTest, RotationAndTruncationDropOnlyCoveredSegments) {
  WalConfig Config;
  Config.Dir = Dir;
  Config.SyncIntervalUs = 100;
  Wal Log(Config, 1);
  auto Append = [&Log] {
    return Log.logCommit([](uint64_t S, std::string &Out) {
      const WalRecord R = makeRecord(S, 1);
      encodeWalRecord(Out, S, R.Ops, R.Results);
    });
  };
  for (int I = 0; I != 10; ++I)
    Append();
  Log.flush();
  // Snapshot protocol: rotate at the watermark, then drop what it covers.
  Log.rotateAfter(10);
  for (int I = 0; I != 5; ++I)
    Append();
  Log.flush();
  EXPECT_EQ(Log.truncateThrough(10), 1u);

  // Scanned against the snapshot watermark, the truncated log is whole.
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/10, Scan));
  EXPECT_FALSE(Scan.Torn);
  EXPECT_FALSE(Scan.Gap);
  ASSERT_EQ(Scan.Records.size(), 5u);
  EXPECT_EQ(Scan.Records.front().Seq, 11u);
  EXPECT_EQ(Scan.Records.back().Seq, 15u);
  EXPECT_EQ(Scan.LastSeq, 15u);

  // Without the covering snapshot the deleted prefix is a hole, and the
  // scan says so instead of replaying over it.
  WalScan NoSnap;
  ASSERT_TRUE(scanWalDir(Dir, 0, NoSnap));
  EXPECT_TRUE(NoSnap.Gap);
  EXPECT_EQ(NoSnap.GapAt, 1u);
}

TEST_F(WalTest, TruncateKeepsClosedSegmentsAboveTheBoundary) {
  // The server truncates through the *previous* snapshot's watermark, so
  // a closed segment with records above that boundary must survive for
  // the retained fallback snapshot to replay from.
  WalConfig Config;
  Config.Dir = Dir;
  Config.SyncIntervalUs = 100;
  Wal Log(Config, 1);
  auto Append = [&Log] {
    return Log.logCommit([](uint64_t S, std::string &Out) {
      const WalRecord R = makeRecord(S, 1);
      encodeWalRecord(Out, S, R.Ops, R.Results);
    });
  };
  for (int I = 0; I != 4; ++I)
    Append();
  Log.flush();
  Log.rotateAfter(4); // closes [1,4]
  for (int I = 0; I != 4; ++I)
    Append();
  Log.flush();
  Log.rotateAfter(8); // closes [5,8]
  Append();
  Log.flush();

  EXPECT_EQ(Log.truncateThrough(4), 1u); // only [1,4] is covered
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/4, Scan));
  EXPECT_FALSE(Scan.Gap);
  ASSERT_EQ(Scan.Records.size(), 5u);
  EXPECT_EQ(Scan.Records.front().Seq, 5u);

  EXPECT_EQ(Log.truncateThrough(8), 1u); // now [5,8] goes too
  WalScan Scan2;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/8, Scan2));
  EXPECT_FALSE(Scan2.Gap);
  ASSERT_EQ(Scan2.Records.size(), 1u);
  EXPECT_EQ(Scan2.Records.front().Seq, 9u);
}

TEST_F(WalTest, RotateAtRecoveredWatermarkCompletesWithoutNewWrites) {
  // A snapshot (timer or SIGUSR1) right after recovery rotates at the
  // recovered watermark before this Wal instance has written anything.
  // The boundary is already durable history, so the rotation must
  // complete immediately — not spin the writer or hang shutdown.
  WalConfig Config;
  Config.Dir = Dir;
  {
    Wal Log(Config, /*FirstSeq=*/11);
    Log.rotateAfter(10);
    EXPECT_EQ(Log.truncateThrough(10), 0u); // nothing closed, returns
    const uint64_t Seq = Log.logCommit([](uint64_t S, std::string &Out) {
      const WalRecord R = makeRecord(S, 1);
      encodeWalRecord(Out, S, R.Ops, R.Results);
    });
    EXPECT_EQ(Seq, 11u);
    Log.flush();
  } // ~Wal must join, not hang on the pending rotation
  WalScan Scan;
  ASSERT_TRUE(scanWalDir(Dir, /*Watermark=*/10, Scan));
  ASSERT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.Records[0].Seq, 11u);
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

TEST_F(WalTest, SnapshotRoundTripAndPrune) {
  SnapshotData S1{100, "state-one"};
  SnapshotData S2{200, "state-two"};
  ASSERT_TRUE(writeSnapshot(Dir, S1));
  ASSERT_TRUE(writeSnapshot(Dir, S2));

  SnapshotData Out;
  ASSERT_TRUE(loadNewestSnapshot(Dir, Out));
  EXPECT_EQ(Out.Seq, 200u);
  EXPECT_EQ(Out.State, "state-two");

  SnapshotData S3{300, "state-three"};
  ASSERT_TRUE(writeSnapshot(Dir, S3));
  EXPECT_EQ(pruneSnapshots(Dir, /*Keep=*/2), 1u);
  EXPECT_FALSE(exists("snap-00000000000000000100.snap"));
  ASSERT_TRUE(loadNewestSnapshot(Dir, Out));
  EXPECT_EQ(Out.Seq, 300u);
}

TEST_F(WalTest, SnapshotLoaderFallsBackPastDamage) {
  // Crash window 1: a *.tmp the writer never renamed. It must be invisible
  // to the loader and swept by prune.
  ASSERT_TRUE(writeSnapshot(Dir, {100, "good-old"}));
  writeFile("snap-00000000000000000150.snap.tmp", "half-written");
  // Crash window 2: a renamed file whose payload was damaged afterwards
  // (or a lying disk): CRC fails, the loader falls back to the older one.
  ASSERT_TRUE(writeSnapshot(Dir, {200, "newest"}));
  std::string Bytes = readFile("snap-00000000000000000200.snap");
  Bytes[Bytes.size() / 2] ^= 0x01;
  writeFile("snap-00000000000000000200.snap", Bytes);

  SnapshotData Out;
  ASSERT_TRUE(loadNewestSnapshot(Dir, Out));
  EXPECT_EQ(Out.Seq, 100u);
  EXPECT_EQ(Out.State, "good-old");

  pruneSnapshots(Dir, 2);
  EXPECT_FALSE(exists("snap-00000000000000000150.snap.tmp"));
}

TEST_F(WalTest, SnapshotLoadFailsCleanlyOnEmptyDir) {
  SnapshotData Out;
  EXPECT_FALSE(loadNewestSnapshot(Dir, Out)); // fresh dir: not an error
  writeFile("snap-00000000000000000001.snap", "");
  writeFile("snap-00000000000000000002.snap", "not a snapshot");
  EXPECT_FALSE(loadNewestSnapshot(Dir, Out)); // all damaged: still clean
}
