//===- tests/svc/DurableServerTest.cpp - Durable serving end to end --------===//
//
// The durability layer behind a live server: a loopback comlat-serve in
// --durable mode under concurrent verified load, stopped and restarted on
// the same WAL directory, with the reborn server's state checked against
// the serial oracle and the pre-restart world. Also covers the Stats
// frame, snapshot + truncation mid-run, sequence continuity across
// restarts, and runRecoveryCheck as a library (the crash harness's audit,
// here on a gracefully stopped server — kill -9 coverage lives in
// ci/crash_loop.sh, torn-file coverage in WalTest.cpp).
//
//===----------------------------------------------------------------------===//

#include "svc/LoadGen.h"
#include "svc/Server.h"
#include "svc/Wal.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <fstream>
#include <string>

using namespace comlat;
using namespace comlat::svc;

namespace {

class DurableServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/comlat-durtest-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        const std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  ServerConfig durableConfig() const {
    ServerConfig SC;
    SC.Port = 0;
    SC.IoThreads = 2;
    SC.Workers = 4;
    SC.UfElements = 128;
    SC.Backoff.Kind = BackoffKind::Yield;
    SC.Durable = true;
    SC.WalDir = Dir;
    SC.WalSyncIntervalUs = 200;
    return SC;
  }

  std::string Dir;
};

} // namespace

TEST_F(DurableServerTest, VerifiedLoadSurvivesRestart) {
  const std::string Acked = Dir + "/acked.txt";
  std::string StateBefore;
  {
    Server Srv(durableConfig());
    std::string Err;
    ASSERT_TRUE(Srv.start(&Err)) << Err;
    EXPECT_EQ(Srv.recoveredSeq(), 0u); // fresh directory

    LoadGenConfig LC;
    LC.Port = Srv.port();
    LC.Threads = 4;
    LC.BatchesPerThread = 250;
    LC.OpsPerBatch = 6;
    LC.KeySpace = 64;
    LC.UfElements = 128;
    LC.Verify = true;
    LC.AckedLogPath = Acked;
    const LoadGenStats Stats = runLoadGen(LC);
    EXPECT_EQ(Stats.ProtocolErrors, 0u);
    EXPECT_EQ(Stats.OkReplies, 1000u);
    ASSERT_TRUE(Stats.VerifyRan);
    EXPECT_TRUE(Stats.VerifyOk) << Stats.VerifyDetail;
    EXPECT_TRUE(Stats.Durable); // echoed from the Stats frame

    const std::string Text = Srv.statsText();
    EXPECT_NE(Text.find("durable=1"), std::string::npos);
    EXPECT_NE(Text.find("wal_durable_seq="), std::string::npos);

    Srv.submitter().drain();
    StateBefore = Srv.objects().stateText();
    Srv.stop();
  }
  {
    Server Srv(durableConfig());
    std::string Err;
    ASSERT_TRUE(Srv.start(&Err)) << Err;
    EXPECT_GE(Srv.recoveredSeq(), 1000u);
    EXPECT_EQ(Srv.objects().stateText(), StateBefore);

    // The crash harness's audit passes against a graceful restart too.
    RecoveryCheckConfig RC;
    RC.Port = Srv.port();
    RC.WalDir = Dir;
    RC.AckedLogPath = Acked;
    RC.UfElements = 128;
    const RecoveryCheckResult R = runRecoveryCheck(RC);
    EXPECT_TRUE(R.Ok) << R.Detail;
    EXPECT_EQ(R.AckedBatches, 1000u);
    EXPECT_EQ(R.RecoveredSeq, Srv.recoveredSeq());
    Srv.stop();
  }
}

TEST_F(DurableServerTest, SnapshotTruncatesAndRecoveryUsesIt) {
  std::string StateBefore;
  uint64_t SeqBefore = 0;
  {
    Server Srv(durableConfig());
    ASSERT_TRUE(Srv.start());

    LoadGenConfig LC;
    LC.Port = Srv.port();
    LC.Threads = 2;
    LC.BatchesPerThread = 200;
    LC.OpsPerBatch = 4;
    LC.UfElements = 128;
    const LoadGenStats S1 = runLoadGen(LC);
    EXPECT_EQ(S1.ProtocolErrors, 0u);

    ASSERT_TRUE(Srv.snapshotNow());
    const std::string Text = Srv.statsText();
    EXPECT_NE(Text.find("snapshot_seq="), std::string::npos);

    // Serving continues across a snapshot; these land past the watermark.
    LC.Seed = 99;
    const LoadGenStats S2 = runLoadGen(LC);
    EXPECT_EQ(S2.ProtocolErrors, 0u);

    Srv.submitter().drain();
    StateBefore = Srv.objects().stateText();
    Srv.stop();
    SeqBefore = 800; // 2 runs * 2 threads * 200 batches
  }
  {
    Server Srv(durableConfig());
    ASSERT_TRUE(Srv.start());
    EXPECT_GE(Srv.recoveredSeq(), SeqBefore);
    EXPECT_EQ(Srv.objects().stateText(), StateBefore);

    // Sequence numbers continue past the recovered watermark: a client
    // can never see the same commit sequence twice across a restart.
    Client C;
    ASSERT_TRUE(C.connect("127.0.0.1", Srv.port()));
    Request Req;
    Req.ReqId = 1;
    Req.Type = MsgType::Batch;
    Req.Ops.push_back({static_cast<uint8_t>(ObjectId::Acc), AccIncrement, 3, 0});
    Response Resp;
    ASSERT_TRUE(C.call(Req, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_GT(Resp.CommitSeq, Srv.recoveredSeq());
    Srv.stop();
  }
}

TEST_F(DurableServerTest, RecoveryFallsBackToOlderSnapshotWithWalIntact) {
  // Two snapshots are retained, but the older one is only a real
  // fallback if the WAL still holds every record above *its* watermark —
  // truncation therefore trails one snapshot behind. Damaging the newest
  // snapshot must leave a recoverable directory, not a silent hole.
  std::string StateBefore;
  {
    Server Srv(durableConfig());
    ASSERT_TRUE(Srv.start());

    LoadGenConfig LC;
    LC.Port = Srv.port();
    LC.Threads = 2;
    LC.BatchesPerThread = 100;
    LC.OpsPerBatch = 4;
    LC.UfElements = 128;
    EXPECT_EQ(runLoadGen(LC).ProtocolErrors, 0u);
    ASSERT_TRUE(Srv.snapshotNow());
    LC.Seed = 7;
    EXPECT_EQ(runLoadGen(LC).ProtocolErrors, 0u);
    ASSERT_TRUE(Srv.snapshotNow()); // prunes to two, truncates through #1
    LC.Seed = 8;
    EXPECT_EQ(runLoadGen(LC).ProtocolErrors, 0u);
    // Idle re-snapshots at an unchanged watermark (the periodic timer on
    // a quiet server) must not advance truncation past the fallback.
    Srv.submitter().drain();
    ASSERT_TRUE(Srv.snapshotNow());
    ASSERT_TRUE(Srv.snapshotNow());

    StateBefore = Srv.objects().stateText();
    Srv.stop();
  }

  // Corrupt the newest snapshot's payload; its CRC check must now fail.
  std::string Newest;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      const std::string Name = E->d_name;
      if (Name.size() > 10 && Name.compare(0, 5, "snap-") == 0 &&
          Name.compare(Name.size() - 5, 5, ".snap") == 0 && Name > Newest)
        Newest = Name;
    }
    ::closedir(D);
  }
  ASSERT_FALSE(Newest.empty());
  const std::string Path = Dir + "/" + Newest;
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(Bytes.empty());
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 1);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    ASSERT_TRUE(Out.good());
  }

  {
    Server Srv(durableConfig());
    std::string Err;
    ASSERT_TRUE(Srv.start(&Err)) << Err;
    EXPECT_EQ(Srv.objects().stateText(), StateBefore);
    EXPECT_GE(Srv.recoveredSeq(), 600u); // 3 runs * 2 threads * 100
    Srv.stop();
  }
}

TEST_F(DurableServerTest, StartFailsWithoutWalDir) {
  ServerConfig SC = durableConfig();
  SC.WalDir.clear();
  Server Srv(SC);
  std::string Err;
  EXPECT_FALSE(Srv.start(&Err));
  EXPECT_FALSE(Err.empty());
}

TEST_F(DurableServerTest, NonDurableServerReportsItInStats) {
  ServerConfig SC;
  SC.Port = 0;
  Server Srv(SC);
  ASSERT_TRUE(Srv.start());
  const std::string Text = fetchStatsText("127.0.0.1", Srv.port());
  EXPECT_NE(Text.find("durable=0"), std::string::npos);
  EXPECT_TRUE(waitReady("127.0.0.1", Srv.port(), 5.0));
  Srv.stop();
}
