//===- tests/runtime/LockTableTest.cpp - Multi-mode abstract locks ------------===//

#include "runtime/LockTable.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

/// Two modes: 0 shared (self-compatible), 1 exclusive.
CompatMatrix rwMatrix() { return {{1, 0}, {0, 0}}; }

} // namespace

TEST(LockTableTest, SharedModeAdmitsManyHolders) {
  AbstractLock L;
  const CompatMatrix M = rwMatrix();
  EXPECT_TRUE(L.tryAcquire(1, 0, M));
  EXPECT_TRUE(L.tryAcquire(2, 0, M));
  EXPECT_TRUE(L.tryAcquire(3, 0, M));
  EXPECT_TRUE(L.heldBy(2));
}

TEST(LockTableTest, ExclusiveModeBlocksOthers) {
  AbstractLock L;
  const CompatMatrix M = rwMatrix();
  EXPECT_TRUE(L.tryAcquire(1, 1, M));
  EXPECT_FALSE(L.tryAcquire(2, 1, M));
  EXPECT_FALSE(L.tryAcquire(2, 0, M));
}

TEST(LockTableTest, SharedBlocksExclusive) {
  AbstractLock L;
  const CompatMatrix M = rwMatrix();
  EXPECT_TRUE(L.tryAcquire(1, 0, M));
  EXPECT_FALSE(L.tryAcquire(2, 1, M));
  EXPECT_TRUE(L.tryAcquire(2, 0, M));
}

TEST(LockTableTest, ReentrantForSameTransaction) {
  AbstractLock L;
  const CompatMatrix M = rwMatrix();
  EXPECT_TRUE(L.tryAcquire(1, 1, M));
  EXPECT_TRUE(L.tryAcquire(1, 1, M));
  EXPECT_TRUE(L.tryAcquire(1, 0, M)); // Mode mix within one tx.
}

TEST(LockTableTest, ReleaseAllFreesEveryHold) {
  AbstractLock L;
  const CompatMatrix M = rwMatrix();
  EXPECT_TRUE(L.tryAcquire(1, 1, M));
  EXPECT_TRUE(L.tryAcquire(1, 1, M));
  L.releaseAll(1);
  EXPECT_FALSE(L.heldBy(1));
  EXPECT_TRUE(L.tryAcquire(2, 1, M));
}

TEST(LockTableTest, TableAllocatesOnDemandAndIsStable) {
  LockTable T;
  AbstractLock *A = T.lockFor(LockTable::PlainSpace, Value::integer(7));
  AbstractLock *B = T.lockFor(LockTable::PlainSpace, Value::integer(7));
  AbstractLock *C = T.lockFor(LockTable::PlainSpace, Value::integer(8));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(T.size(), 2u);
}

TEST(LockTableTest, KeySpacesAreDisjoint) {
  LockTable T;
  AbstractLock *Plain = T.lockFor(LockTable::PlainSpace, Value::integer(3));
  AbstractLock *Keyed = T.lockFor(/*Space=*/0, Value::integer(3));
  EXPECT_NE(Plain, Keyed);
}

TEST(LockTableTest, DistinctValueKindsDistinctLocks) {
  LockTable T;
  AbstractLock *IntLock = T.lockFor(LockTable::PlainSpace, Value::integer(1));
  AbstractLock *BoolLock =
      T.lockFor(LockTable::PlainSpace, Value::boolean(true));
  EXPECT_NE(IntLock, BoolLock);
}
