//===- tests/runtime/PooledTxStressTest.cpp - Transaction pool reuse --------===//
//
// The pooled engines (Executor, Submitter) construct one Transaction per
// worker and reset() it between items and retry attempts, so every inline
// buffer, grown spill capacity and the overflow arena is reused across
// thousands of logically distinct transactions. These tests drive that
// reuse hard enough for the sanitizers to catch lifetime bugs: a
// single-threaded cycle that forces the undo log through its inline
// buffer into the arena every round, and a multi-threaded gated-set
// stress where each thread funnels all its transactions through one
// pooled object and every round must still admit a serial witness.
// tsan-labeled (and run under the ASan job) like the striped-gate stress.
//
//===----------------------------------------------------------------------===//

#include "adt/BoostedSet.h"
#include "runtime/SerialChecker.h"
#include "runtime/Transaction.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace comlat;

TEST(PooledTxStressTest, UndoSpillReusedAcrossManyResets) {
  Transaction Tx(1);
  std::vector<int> Log;
  TxId Next = 1;
  for (unsigned Cycle = 0; Cycle != 200; ++Cycle) {
    Tx.reset(Next++);
    Log.clear();
    // 40 undos: well past the 8 inline slots, so every cycle re-spills
    // into the (rewound) arena.
    for (int I = 0; I != 40; ++I)
      Tx.addUndo([&Log, I] { Log.push_back(I); });
    Tx.addCommitAction([&Log] { Log.push_back(-1); });
    if (Cycle % 2 == 0) {
      Tx.commit();
      // Commit runs commit actions only; undos are dropped unrun.
      ASSERT_EQ(Log.size(), 1u);
      EXPECT_EQ(Log[0], -1);
    } else {
      Tx.fail();
      Tx.abort();
      // Abort runs the undos newest-first and no commit action.
      ASSERT_EQ(Log.size(), 40u);
      for (int I = 0; I != 40; ++I)
        EXPECT_EQ(Log[static_cast<size_t>(I)], 39 - I);
    }
  }
}

TEST(PooledTxStressTest, RecordedHistorySpillResetsCleanly) {
  // History entries hold Invocations (inline arg storage); spilling the
  // history list and resetting exercises non-trivial element destruction
  // against the arena rewind.
  Transaction Tx(1);
  TxId Next = 1;
  for (unsigned Cycle = 0; Cycle != 100; ++Cycle) {
    Tx.reset(Next++);
    Tx.setRecording(true);
    for (int64_t I = 0; I != 20; ++I)
      Tx.recordInvocation(0x1234, Invocation(0, {Value::integer(I)},
                                             Value::boolean(true)));
    ASSERT_EQ(Tx.history().size(), 20u);
    EXPECT_EQ(Tx.history()[19].second.Args[0].asInt(), 19);
    Tx.commit();
  }
}

namespace {

struct PoolStressCase {
  const char *Name;
  uint64_t KeySpace;
  unsigned Threads;
  unsigned TxPerThread;
};

class PooledTxGateStress : public ::testing::TestWithParam<PoolStressCase> {};

std::string poolStressName(
    const ::testing::TestParamInfo<PoolStressCase> &Info) {
  return Info.param.Name;
}

} // namespace

TEST_P(PooledTxGateStress, RecycledTransactionsStaySerializable) {
  const PoolStressCase &Param = GetParam();
  for (unsigned Round = 0; Round != 12; ++Round) {
    const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
    const unsigned NumThreads = Param.Threads;
    // Traces of committed transactions, grouped per thread; taken by the
    // owning thread right before the pooled object is reset and reused.
    std::vector<std::vector<TxTrace>> Traces(NumThreads);

    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        Rng R(uint64_t(Round) * 7919 + T + 1);
        Transaction Tx(0); // Pooled: one object for all attempts below.
        for (unsigned A = 0; A != Param.TxPerThread; ++A) {
          const TxId Id = uint64_t(A) * NumThreads + T + 1;
          Tx.reset(Id);
          Tx.setRecording(true);
          bool Ok = true;
          for (unsigned Op = 0; Op != 3 && Ok; ++Op) {
            const int64_t Key =
                static_cast<int64_t>(R.nextBelow(Param.KeySpace));
            bool Res = false;
            switch (R.nextBelow(3)) {
            case 0:
              Ok = Set->add(Tx, Key, Res);
              break;
            case 1:
              Ok = Set->remove(Tx, Key, Res);
              break;
            default:
              Ok = Set->contains(Tx, Key, Res);
              break;
            }
          }
          if (Ok) {
            Tx.commit();
            Traces[T].push_back(traceOf(Tx, Id));
          } else {
            Tx.abort();
          }
        }
      });
    for (std::thread &Th : Threads)
      Th.join();

    std::vector<TxTrace> All;
    for (const std::vector<TxTrace> &Per : Traces)
      All.insert(All.end(), Per.begin(), Per.end());

    EXPECT_TRUE(findSerialWitness(
        All, [] { return std::make_unique<SetReplayer>(); },
        Set->signature()))
        << Param.Name << " round " << Round << " with " << All.size()
        << " committed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, PooledTxGateStress,
    ::testing::Values(
        // Heavy same-key collisions: aborted attempts recycle the pool.
        PoolStressCase{"colliding_keys", 3, 3, 2},
        // Mostly distinct keys: long committed streams through one object.
        PoolStressCase{"distinct_keys", 4096, 3, 2}),
    poolStressName);
