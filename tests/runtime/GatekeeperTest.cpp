//===- tests/runtime/GatekeeperTest.cpp - Forward/general gatekeeping ---------===//

#include "adt/BoostedKdTree.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "runtime/Gatekeeper.h"

#include <gtest/gtest.h>

using namespace comlat;

//===----------------------------------------------------------------------===//
// Forward gatekeeper over the precise set specification (Fig. 2)
//===----------------------------------------------------------------------===//

namespace {

/// Commits a single-op transaction that seeds the set.
void seedSet(TxSet &Set, std::initializer_list<int64_t> Keys) {
  Transaction Tx(999);
  for (const int64_t K : Keys) {
    bool Res = false;
    ASSERT_TRUE(Set.add(Tx, K, Res));
  }
  Tx.commit();
}

} // namespace

TEST(ForwardGatekeeperTest, NonMutatingAddsCommute) {
  // Two transactions add a key that is already present: both adds return
  // false and commute under Fig. 2 (the advantage over r/w locks).
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  seedSet(*Set, {7});
  Transaction T1(1), T2(2);
  bool R1 = true, R2 = true;
  EXPECT_TRUE(Set->add(T1, 7, R1));
  EXPECT_TRUE(Set->add(T2, 7, R2));
  EXPECT_FALSE(R1);
  EXPECT_FALSE(R2);
  T1.commit();
  T2.commit();
}

TEST(ForwardGatekeeperTest, MutatingAddsOnSameKeyConflict) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R1 = false, R2 = false;
  EXPECT_TRUE(Set->add(T1, 7, R1));
  EXPECT_TRUE(R1);
  EXPECT_FALSE(Set->add(T2, 7, R2));
  EXPECT_TRUE(T2.failed());
  T2.abort();
  T1.commit();
  // After T1 committed, the key stays.
  EXPECT_EQ(Set->signature(), "7,");
}

TEST(ForwardGatekeeperTest, ConflictUndoesTheOffendingInvocation) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R = false;
  EXPECT_TRUE(Set->add(T1, 7, R));
  // T2's add(7) executes, is found conflicting, and must be rolled back
  // before the conflict is reported... but T1's insert is still pending.
  EXPECT_FALSE(Set->add(T2, 7, R));
  T2.abort();
  T1.fail();
  T1.abort();
  // Both aborted: the set is empty again.
  EXPECT_EQ(Set->signature(), "");
}

TEST(ForwardGatekeeperTest, DistinctKeysCommute) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R = false;
  EXPECT_TRUE(Set->add(T1, 1, R));
  EXPECT_TRUE(Set->add(T2, 2, R));
  EXPECT_TRUE(Set->remove(T1, 3, R)); // Absent key: a no-op, commutes.
  EXPECT_FALSE(R);
  T1.commit();
  T2.commit();
  EXPECT_EQ(Set->signature(), "1,2,");
}

TEST(ForwardGatekeeperTest, RemoveOfUncommittedAddConflicts) {
  // remove(k) would observe the other transaction's uncommitted add(k):
  // the returns depend on the order, so Fig. 2 rejects the pair (which
  // also rules out cascading aborts).
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R = false;
  EXPECT_TRUE(Set->add(T2, 2, R));
  EXPECT_TRUE(R);
  EXPECT_FALSE(Set->remove(T1, 2, R));
  EXPECT_TRUE(T1.failed());
  T1.abort();
  T2.commit();
  EXPECT_EQ(Set->signature(), "2,");
}

TEST(ForwardGatekeeperTest, ContainsVsMutatingAdd) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R = false;
  EXPECT_TRUE(Set->contains(T1, 5, R));
  EXPECT_FALSE(R);
  // add(5) mutates and 5 was observed by T1's contains: conflict.
  EXPECT_FALSE(Set->add(T2, 5, R));
  T2.abort();
  T1.commit();
}

TEST(ForwardGatekeeperTest, SameTransactionNeverSelfConflicts) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1);
  bool R = false;
  EXPECT_TRUE(Set->add(T1, 5, R));
  EXPECT_TRUE(Set->remove(T1, 5, R));
  EXPECT_TRUE(Set->add(T1, 5, R));
  EXPECT_TRUE(Set->contains(T1, 5, R));
  EXPECT_TRUE(R);
  T1.commit();
  EXPECT_EQ(Set->signature(), "5,");
}

TEST(ForwardGatekeeperTest, AbortRestoresAbstractState) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  seedSet(*Set, {1, 2});
  Transaction T1(1);
  bool R = false;
  EXPECT_TRUE(Set->remove(T1, 1, R));
  EXPECT_TRUE(Set->add(T1, 3, R));
  EXPECT_TRUE(Set->remove(T1, 2, R));
  T1.fail();
  T1.abort();
  EXPECT_EQ(Set->signature(), "1,2,");
}

//===----------------------------------------------------------------------===//
// Forward gatekeeper over the kd-tree specification (Fig. 4)
//===----------------------------------------------------------------------===//

namespace {

class KdGateTest : public ::testing::Test {
protected:
  KdGateTest() {
    // Points on a line: 0 at x=0, 1 at x=1, 2 at x=10, 3 at x=10.4.
    for (const double X : {0.0, 1.0, 10.0, 10.4}) {
      Point3 P{{X, 0.0, 0.0}};
      Store.addPoint(P);
    }
    Tree = makeGatedKdTree(&Store);
    Transaction Seed(99);
    bool Changed = false;
    EXPECT_TRUE(Tree->add(Seed, 0, Changed));
    EXPECT_TRUE(Tree->add(Seed, 1, Changed));
    Seed.commit();
  }

  PointStore Store;
  std::unique_ptr<TxKdTree> Tree;
};

} // namespace

TEST_F(KdGateTest, FarAddCommutesWithNearest) {
  Transaction T1(1), T2(2);
  int64_t N = KdNullPoint;
  ASSERT_TRUE(Tree->nearest(T1, 0, N));
  EXPECT_EQ(N, 1);
  // Point 2 (x=10) is farther from 0 than the answer (distance 1): the
  // Fig. 4 condition dist(a,b) > dist(a,r1) admits it.
  bool Changed = false;
  EXPECT_TRUE(Tree->add(T2, 2, Changed));
  EXPECT_TRUE(Changed);
  T1.commit();
  T2.commit();
}

TEST_F(KdGateTest, NearAddConflictsWithNearest) {
  Transaction T1(1), T2(2);
  int64_t N = KdNullPoint;
  ASSERT_TRUE(Tree->nearest(T2, 2, N)); // Nearest to x=10 is x=1 (point 1).
  EXPECT_EQ(N, 1);
  // Point 3 at x=10.4 is much closer to point 2 than point 1 was: adding
  // it invalidates the active nearest -> conflict.
  bool Changed = false;
  EXPECT_FALSE(Tree->add(T1, 3, Changed));
  EXPECT_TRUE(T1.failed());
  T1.abort();
  T2.commit();
  // The conflicting add was undone.
  EXPECT_EQ(Tree->size(), 2u);
}

TEST_F(KdGateTest, RemovingTheAnswerConflicts) {
  Transaction T1(1), T2(2);
  int64_t N = KdNullPoint;
  ASSERT_TRUE(Tree->nearest(T1, 0, N));
  ASSERT_EQ(N, 1);
  bool Changed = false;
  EXPECT_FALSE(Tree->remove(T2, 1, Changed));
  T2.abort();
  T1.commit();
}

TEST_F(KdGateTest, RemovingAnUnrelatedPointCommutes) {
  Transaction Seed(98);
  bool Changed = false;
  ASSERT_TRUE(Tree->add(Seed, 2, Changed));
  Seed.commit();

  Transaction T1(1), T2(2);
  int64_t N = KdNullPoint;
  ASSERT_TRUE(Tree->nearest(T1, 0, N));
  ASSERT_EQ(N, 1);
  // Removing point 2 (x=10) does not affect nearest(0)=1.
  EXPECT_TRUE(Tree->remove(T2, 2, Changed));
  EXPECT_TRUE(Changed);
  T1.commit();
  T2.commit();
}

//===----------------------------------------------------------------------===//
// General gatekeeper over union-find (Fig. 5)
//===----------------------------------------------------------------------===//

namespace {

class UfGateTest : public ::testing::Test {
protected:
  UfGateTest() : Uf(makeGatedUnionFind(8)) {
    // Committed prefix: {0,1} merged, {2,3} merged.
    Transaction Seed(99);
    bool Changed = false;
    EXPECT_TRUE(Uf->unite(Seed, 0, 1, Changed));
    EXPECT_TRUE(Uf->unite(Seed, 2, 3, Changed));
    Seed.commit();
  }

  std::unique_ptr<TxUnionFind> Uf;
};

} // namespace

TEST_F(UfGateTest, FindsAlwaysCommute) {
  Transaction T1(1), T2(2);
  int64_t R1 = UfNone, R2 = UfNone;
  EXPECT_TRUE(Uf->find(T1, 0, R1));
  EXPECT_TRUE(Uf->find(T2, 1, R2));
  EXPECT_EQ(R1, R2);
  T1.commit();
  T2.commit();
}

TEST_F(UfGateTest, FindCrossingActiveUnionConflicts) {
  Transaction T1(1), T2(2);
  bool Changed = false;
  // T1 merges the {0,1} and {2,3} components.
  EXPECT_TRUE(Uf->unite(T1, 1, 3, Changed));
  EXPECT_TRUE(Changed);
  // T2's find on an element whose pre-union representative was the loser
  // must conflict (evaluated by rollback: rep(s1, x) == loser(s1, 1, 3)).
  const int64_t Loser = 3; // By rank both roots tie; b's root loses.
  int64_t R = UfNone;
  // Element 2 or 3 lies under the losing root.
  EXPECT_FALSE(Uf->find(T2, Loser, R));
  EXPECT_TRUE(T2.failed());
  T2.abort();
  T1.commit();
}

TEST_F(UfGateTest, FindOutsideActiveUnionCommutes) {
  Transaction T1(1), T2(2);
  bool Changed = false;
  EXPECT_TRUE(Uf->unite(T1, 0, 4, Changed));
  int64_t R = UfNone;
  // {2,3} and 5 are untouched by the active union.
  EXPECT_TRUE(Uf->find(T2, 2, R));
  EXPECT_TRUE(Uf->find(T2, 5, R));
  T1.commit();
  T2.commit();
}

TEST_F(UfGateTest, AbortedUnionIsInvisible) {
  Transaction T1(1);
  bool Changed = false;
  EXPECT_TRUE(Uf->unite(T1, 1, 3, Changed));
  T1.fail();
  T1.abort();
  Transaction T2(2);
  int64_t Ra = UfNone, Rb = UfNone;
  EXPECT_TRUE(Uf->find(T2, 1, Ra));
  EXPECT_TRUE(Uf->find(T2, 3, Rb));
  EXPECT_NE(Ra, Rb);
  T2.commit();
}

TEST_F(UfGateTest, UnionsOnDisjointComponentsCommute) {
  Transaction T1(1), T2(2);
  bool Changed = false;
  EXPECT_TRUE(Uf->unite(T1, 0, 4, Changed));
  EXPECT_TRUE(Uf->unite(T2, 2, 5, Changed));
  T1.commit();
  T2.commit();
}

TEST_F(UfGateTest, UnionsTouchingTheSameComponentConflict) {
  Transaction T1(1), T2(2);
  bool Changed = false;
  EXPECT_TRUE(Uf->unite(T1, 1, 4, Changed));
  // T2's union touches the component T1 merged.
  EXPECT_FALSE(Uf->unite(T2, 0, 5, Changed));
  T2.abort();
  T1.commit();
}

TEST_F(UfGateTest, RollbackEvaluationRestoresState) {
  // After a conflicting check (which rolls back and redoes), the structure
  // must be intact.
  Transaction T1(1), T2(2);
  bool Changed = false;
  EXPECT_TRUE(Uf->unite(T1, 1, 3, Changed));
  int64_t R = UfNone;
  EXPECT_FALSE(Uf->find(T2, 2, R));
  T2.abort();
  T1.commit();
  Transaction T3(3);
  EXPECT_TRUE(Uf->find(T3, 2, R));
  int64_t R0 = UfNone;
  EXPECT_TRUE(Uf->find(T3, 0, R0));
  EXPECT_EQ(R, R0); // All four elements now share one set.
  T3.commit();
}

TEST_F(UfGateTest, CreateConflictsWithEverything) {
  Transaction T1(1), T2(2);
  int64_t R = UfNone;
  EXPECT_TRUE(Uf->find(T1, 5, R));
  int64_t Id = UfNone;
  EXPECT_FALSE(Uf->create(T2, Id));
  T2.abort();
  T1.commit();
}

//===----------------------------------------------------------------------===//
// Striped admission (compiled-condition refactor)
//===----------------------------------------------------------------------===//

TEST(StripedGatekeeperTest, PreciseSetSpecStripes) {
  // Every precise-set condition carries the separable `x != y` disjunct
  // and the sharded set target opts in, so admission stripes by key.
  const std::unique_ptr<GateTarget> Target = makeSetGateTarget();
  ForwardGatekeeper GK(&preciseSetSpec(), Target.get(), "striped-test");
  EXPECT_TRUE(GK.striped());
  EXPECT_EQ(GK.numStripes(), GateStripeCount);

  const SetSig &S = setSig();
  const CondProgram &AddAdd = GK.pairProgram(S.Add, S.Add);
  EXPECT_TRUE(AddAdd.keySeparability().Separable);
  EXPECT_EQ(AddAdd.keySeparability().Arg1, 0u);
}

TEST(StripedGatekeeperTest, KeyFunctionSpecFallsBackToOneStripe) {
  // `part(x) != part(y)` separates key classes, not keys: equal-partition
  // keys can land on different stripes, so striping would be unsound and
  // the gatekeeper must keep the global critical section.
  const std::unique_ptr<GateTarget> Target = makeSetGateTarget();
  ForwardGatekeeper GK(&partitionedSetSpec(), Target.get(), "global-test");
  EXPECT_FALSE(GK.striped());
  EXPECT_EQ(GK.numStripes(), 1u);
}

TEST(StripedGatekeeperTest, SameStripeConflictsStillDetected) {
  // Striping must not lose the same-key veto: a mutating add against an
  // active mutating add of the same key conflicts (r1 != r2 under Fig. 2).
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1), T2(2);
  bool R1 = false, R2 = false;
  EXPECT_TRUE(Set->add(T1, 5, R1));
  EXPECT_TRUE(R1);
  EXPECT_FALSE(Set->add(T2, 5, R2));
  T2.abort();
  T1.commit();

  // Distinct keys: different stripes, no check at all, both admitted.
  Transaction T3(3), T4(4);
  EXPECT_TRUE(Set->add(T3, 100, R1));
  EXPECT_TRUE(Set->add(T4, 200, R2));
  T3.commit();
  T4.commit();
}

TEST(StripedGatekeeperTest, AbortUndoesAcrossStripes) {
  // One transaction mutates several stripes; its abort must undo all of
  // them (the per-tx stripe mask drives the sweep).
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  Transaction T1(1);
  bool Res = false;
  for (const int64_t Key : {11, 222, 3333, 44444})
    EXPECT_TRUE(Set->add(T1, Key, Res));
  T1.abort();
  Transaction T2(2);
  for (const int64_t Key : {11, 222, 3333, 44444}) {
    EXPECT_TRUE(Set->contains(T2, Key, Res));
    EXPECT_FALSE(Res) << Key;
  }
  T2.commit();
}
