//===- tests/runtime/SpecValidatorTest.cpp - Condition validation -------------===//
//
// The randomized commutativity-condition validator (the testing side of
// the paper's §2.2 verification discussion). Shipped specifications must
// survive the search; deliberately broken ones — including the paper's
// exact Fig. 5 union~union condition, which is unsound for representative
// identity in the equal-rank tie case — must be refuted with concrete
// counterexamples.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedKdTree.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "core/Lattice.h"
#include "runtime/SpecValidator.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

namespace {

ValidationConfig quickConfig(uint64_t Seed) {
  ValidationConfig C;
  C.Trials = 3000;
  C.PrefixOps = 5;
  C.Seed = Seed;
  return C;
}

} // namespace

TEST(SpecValidatorTest, ShippedSetSpecsAreValid) {
  const ValidationHarness Harness = setValidationHarness();
  for (const CommSpec *Spec :
       {&preciseSetSpec(), &strengthenedSetSpec(), &exclusiveSetSpec(),
        &partitionedSetSpec(), &bottomSetSpec()}) {
    const auto Issue = validateSpec(*Spec, Harness, quickConfig(1));
    EXPECT_FALSE(Issue.has_value())
        << Spec->name() << ": " << Issue->str(setSig().Sig);
  }
}

TEST(SpecValidatorTest, OverPermissiveSetSpecRefuted) {
  // add ~ add = true is not a valid condition: two mutating adds of the
  // same key return different values depending on order.
  CommSpec Broken = preciseSetSpec();
  Broken.setName("set-broken");
  Broken.set(setSig().Add, setSig().Add, top());
  const auto Issue =
      validateSpec(Broken, setValidationHarness(), quickConfig(2));
  ASSERT_TRUE(Issue.has_value());
  EXPECT_NE(Issue->str(setSig().Sig).find("add"), std::string::npos);
}

TEST(SpecValidatorTest, WrongReturnClauseRefuted) {
  // add(a) ~ contains(b) must require the *mutator*'s return to be false;
  // guarding on the contains return instead is unsound.
  CommSpec Broken = preciseSetSpec();
  Broken.setName("set-wrong-ret");
  Broken.set(setSig().Add, setSig().Contains,
             disj(ne(arg1(0), arg2(0)), eq(ret2(), cst(true))));
  const auto Issue =
      validateSpec(Broken, setValidationHarness(), quickConfig(3));
  EXPECT_TRUE(Issue.has_value());
}

TEST(SpecValidatorTest, AccumulatorSpecIsValid) {
  const auto Issue = validateSpec(accumulatorSpec(),
                                  accumulatorValidationHarness(),
                                  quickConfig(4));
  EXPECT_FALSE(Issue.has_value())
      << Issue->str(accumulatorSig().Sig);
}

TEST(SpecValidatorTest, AccumulatorIncrementReadRefutedIfAllowed) {
  CommSpec Broken = accumulatorSpec();
  Broken.setName("accumulator-broken");
  Broken.set(accumulatorSig().Increment, accumulatorSig().Read, top());
  const auto Issue = validateSpec(Broken, accumulatorValidationHarness(),
                                  quickConfig(5));
  ASSERT_TRUE(Issue.has_value());
}

TEST(SpecValidatorTest, KdSpecIsValid) {
  PointStore Store;
  Rng R(6);
  for (unsigned I = 0; I != 6; ++I) {
    Point3 P;
    for (unsigned D = 0; D != KdDims; ++D)
      P.C[D] = R.nextDouble();
    Store.addPoint(P);
  }
  ValidationConfig C = quickConfig(6);
  C.Trials = 2000;
  const auto Issue = validateSpec(kdSpec(), kdValidationHarness(&Store), C);
  EXPECT_FALSE(Issue.has_value()) << Issue->str(kdSig().Sig);
}

TEST(SpecValidatorTest, KdNearestAddWithoutDistanceGuardRefuted) {
  PointStore Store;
  Rng R(7);
  for (unsigned I = 0; I != 6; ++I) {
    Point3 P;
    for (unsigned D = 0; D != KdDims; ++D)
      P.C[D] = R.nextDouble();
    Store.addPoint(P);
  }
  CommSpec Broken = kdSpec();
  Broken.setName("kd-broken");
  Broken.set(kdSig().Nearest, kdSig().Add, top());
  const auto Issue =
      validateSpec(Broken, kdValidationHarness(&Store), quickConfig(7));
  ASSERT_TRUE(Issue.has_value());
}

TEST(SpecValidatorTest, StrengthenedUfSpecIsValid) {
  const auto Issue = validateSpec(ufSpec(), ufValidationHarness(5),
                                  quickConfig(8));
  EXPECT_FALSE(Issue.has_value()) << Issue->str(ufSig().Sig);
}

TEST(SpecValidatorTest, PaperExactFig5UnionUnionRefuted) {
  // The loser-only Fig. 5 condition admits the equal-rank tie scenario in
  // which the final representative differs between orders — observable
  // through find, hence not a valid commutativity condition once
  // representative identity is part of the abstract state. This is the
  // documented deviation behind ufSpec()'s both-representatives clause.
  const CommSpec Fig5 = paperExactUfSpec();
  const auto Issue = validateSpec(Fig5, ufValidationHarness(4),
                                  quickConfig(9));
  ASSERT_TRUE(Issue.has_value());
  EXPECT_NE(Issue->str(ufSig().Sig).find("union"), std::string::npos);
}

TEST(SpecValidatorTest, BottomSpecsAreVacuouslyValid) {
  // With every condition false, no pair is ever claimed commuting.
  const CommSpec Bot = bottomSpec(ufSig().Sig, "uf-bottom");
  const auto Issue =
      validateSpec(Bot, ufValidationHarness(4), quickConfig(10));
  EXPECT_FALSE(Issue.has_value());
}
