//===- tests/runtime/SerialCheckerTest.cpp - Serializability oracle -----------===//

#include "adt/BoostedSet.h"
#include "runtime/SerialChecker.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace comlat;

namespace {

TxTrace makeTrace(TxId Id,
                  std::initializer_list<std::pair<MethodId, std::pair<int64_t, bool>>>
                      Ops) {
  TxTrace T;
  T.Id = Id;
  for (const auto &[Method, KV] : Ops)
    T.Invocations.emplace_back(
        0x1, Invocation(Method, {Value::integer(KV.first)},
                        Value::boolean(KV.second)));
  return T;
}

std::unique_ptr<Replayer> freshSetReplayer() {
  return std::make_unique<SetReplayer>();
}

} // namespace

TEST(SerialCheckerTest, CommitOrderWitness) {
  const SetSig &S = setSig();
  // T1: add(1)/true. T2: contains(1)/true. Serial witness: T1 then T2.
  const std::vector<TxTrace> Traces = {
      makeTrace(1, {{S.Add, {1, true}}}),
      makeTrace(2, {{S.Contains, {1, true}}}),
  };
  std::vector<TxId> Witness;
  EXPECT_TRUE(findSerialWitness(Traces, freshSetReplayer, "", &Witness));
  const std::vector<TxId> Expected = {1, 2};
  EXPECT_EQ(Witness, Expected);
}

TEST(SerialCheckerTest, ReversedWitnessFound) {
  const SetSig &S = setSig();
  // T1 observed the element missing, T2 added it: only T1-before-T2 works,
  // even though ids suggest otherwise.
  const std::vector<TxTrace> Traces = {
      makeTrace(2, {{S.Add, {1, true}}}),
      makeTrace(1, {{S.Contains, {1, false}}}),
  };
  std::vector<TxId> Witness;
  EXPECT_TRUE(findSerialWitness(Traces, freshSetReplayer, "", &Witness));
  const std::vector<TxId> Expected = {1, 2};
  EXPECT_EQ(Witness, Expected);
}

TEST(SerialCheckerTest, NonSerializableRejected) {
  const SetSig &S = setSig();
  // Both transactions claim their add mutated the same key: impossible in
  // any serial order.
  const std::vector<TxTrace> Traces = {
      makeTrace(1, {{S.Add, {1, true}}}),
      makeTrace(2, {{S.Add, {1, true}}}),
  };
  EXPECT_FALSE(findSerialWitness(Traces, freshSetReplayer, ""));
}

TEST(SerialCheckerTest, WriteSkewRejected) {
  const SetSig &S = setSig();
  // T1: contains(1)=false then add(2)/true; T2: contains(2)=false then
  // add(1)/true. Each order contradicts one contains.
  const std::vector<TxTrace> Traces = {
      makeTrace(1, {{S.Contains, {1, false}}, {S.Add, {2, true}}}),
      makeTrace(2, {{S.Contains, {2, false}}, {S.Add, {1, true}}}),
  };
  // Wait: serial T1;T2 -> T2's contains(2) sees T1's add(2) = true, but T2
  // recorded false. Serial T2;T1 symmetric. Not serializable.
  EXPECT_FALSE(findSerialWitness(Traces, freshSetReplayer, ""));
}

TEST(SerialCheckerTest, FinalStateSignatureChecked) {
  const SetSig &S = setSig();
  const std::vector<TxTrace> Traces = {
      makeTrace(1, {{S.Add, {1, true}}}),
      makeTrace(2, {{S.Add, {2, true}}}),
  };
  EXPECT_TRUE(findSerialWitness(Traces, freshSetReplayer, "1,2,"));
  EXPECT_FALSE(findSerialWitness(Traces, freshSetReplayer, "1,"));
}

TEST(SerialCheckerTest, EmptyTraceSetIsSerializable) {
  EXPECT_TRUE(findSerialWitness({}, freshSetReplayer, ""));
}

TEST(SerialCheckerTest, ThreeTransactionsOrderingConstraint) {
  const SetSig &S = setSig();
  // T3 adds 1; T1 removes 1 (successfully); T2 observed 1 absent. Every
  // witness must place the add before the successful remove (T2 may sit
  // before the add or after the remove).
  const std::vector<TxTrace> Traces = {
      makeTrace(1, {{S.Remove, {1, true}}}),
      makeTrace(2, {{S.Contains, {1, false}}}),
      makeTrace(3, {{S.Add, {1, true}}}),
  };
  std::vector<TxId> Witness;
  EXPECT_TRUE(findSerialWitness(Traces, freshSetReplayer, "", &Witness));
  ASSERT_EQ(Witness.size(), 3u);
  const auto PosOf = [&Witness](TxId Id) {
    return std::find(Witness.begin(), Witness.end(), Id) - Witness.begin();
  };
  EXPECT_LT(PosOf(3), PosOf(1));
  EXPECT_TRUE(PosOf(2) < PosOf(3) || PosOf(2) > PosOf(1));
}

TEST(SerialCheckerTest, TraceOfExtractsHistory) {
  Transaction Tx(5);
  Tx.setRecording(true);
  Tx.recordInvocation(0x1, Invocation(0, {Value::integer(1)},
                                      Value::boolean(true)));
  const TxTrace T = traceOf(Tx, 5);
  EXPECT_EQ(T.Id, 5u);
  ASSERT_EQ(T.Invocations.size(), 1u);
  Tx.commit();
}
