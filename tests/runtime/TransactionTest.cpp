//===- tests/runtime/TransactionTest.cpp - Transaction lifecycle --------------===//

#include "runtime/Transaction.h"

#include <gtest/gtest.h>

#include <set>

using namespace comlat;

namespace {

/// Records detector callbacks for lifecycle assertions.
class MockDetector : public ConflictDetector {
public:
  void undoFor(Transaction &Tx) override { Events.push_back("undo"); }
  void release(Transaction &Tx, bool Committed) override {
    Events.push_back(Committed ? "release-commit" : "release-abort");
  }
  const char *name() const override { return "mock"; }

  std::vector<std::string> Events;
};

} // namespace

TEST(TransactionTest, CommitRunsActionsThenReleases) {
  MockDetector D;
  std::vector<std::string> Log;
  Transaction Tx(1);
  Tx.touch(&D);
  Tx.addCommitAction([&Log] { Log.push_back("commit-action"); });
  Tx.addUndo([&Log] { Log.push_back("undo"); });
  Tx.commit();
  EXPECT_TRUE(Tx.finished());
  EXPECT_EQ(Log, std::vector<std::string>{"commit-action"});
  EXPECT_EQ(D.Events, std::vector<std::string>{"release-commit"});
}

TEST(TransactionTest, AbortUndoesInReverseAndSkipsCommitActions) {
  MockDetector D;
  std::vector<std::string> Log;
  Transaction Tx(1);
  Tx.touch(&D);
  Tx.addUndo([&Log] { Log.push_back("undo-1"); });
  Tx.addUndo([&Log] { Log.push_back("undo-2"); });
  Tx.addCommitAction([&Log] { Log.push_back("commit-action"); });
  Tx.fail();
  Tx.abort();
  const std::vector<std::string> Expected = {"undo-2", "undo-1"};
  EXPECT_EQ(Log, Expected);
  const std::vector<std::string> DetectorExpected = {"undo", "release-abort"};
  EXPECT_EQ(D.Events, DetectorExpected);
}

TEST(TransactionTest, TouchDeduplicates) {
  MockDetector D;
  Transaction Tx(1);
  Tx.touch(&D);
  Tx.touch(&D);
  Tx.touch(&D);
  Tx.commit();
  EXPECT_EQ(D.Events.size(), 1u);
}

TEST(TransactionTest, DeferredReleaseForRoundModel) {
  MockDetector D;
  Transaction Tx(1);
  Tx.touch(&D);
  Tx.commit(/*Release=*/false);
  EXPECT_TRUE(Tx.finished());
  EXPECT_TRUE(D.Events.empty());
  Tx.releaseDetectors();
  EXPECT_EQ(D.Events, std::vector<std::string>{"release-commit"});
}

TEST(TransactionTest, HistoryRecordingIsOptIn) {
  Transaction Off(1);
  Off.recordInvocation(0x1, Invocation(0, {Value::integer(1)}));
  EXPECT_TRUE(Off.history().empty());
  Off.commit();

  Transaction On(2);
  On.setRecording(true);
  On.recordInvocation(0x1, Invocation(0, {Value::integer(1)}));
  On.recordInvocation(0x2, Invocation(1, {}));
  ASSERT_EQ(On.history().size(), 2u);
  EXPECT_EQ(On.history()[0].first, 0x1u);
  EXPECT_EQ(On.history()[1].second.Method, 1u);
  On.commit();
}

TEST(TransactionTest, FailIsSticky) {
  Transaction Tx(1);
  EXPECT_FALSE(Tx.failed());
  Tx.fail();
  EXPECT_TRUE(Tx.failed());
  Tx.fail();
  EXPECT_TRUE(Tx.failed());
  Tx.abort();
}

TEST(TransactionTest, AllocTxIdIsUniqueAndAboveTheSmallIdSpace) {
  // Detectors key conflicts by TxId, so engine-allocated ids must never
  // collide with each other or with the hand-picked small ids tests and
  // per-run executors use (reserved range: everything below 2^32).
  std::set<TxId> Seen;
  for (int I = 0; I != 1000; ++I) {
    const TxId Id = allocTxId();
    EXPECT_GE(Id, uint64_t(1) << 32);
    EXPECT_TRUE(Seen.insert(Id).second);
  }
}
