//===- tests/runtime/StripedGateStressTest.cpp - Striping under threads ------===//
//
// Soundness of striped admission under real concurrency: threads hammer a
// striped forward gatekeeper (precise set spec over the sharded target),
// and every round's committed transactions must admit a serial witness
// with identical return values and final abstract state. Key spaces are
// chosen so stripes genuinely collide and genuinely diverge. Runs under
// the tsan ctest label, so a -DCOMLAT_SANITIZE=thread build race-checks
// the stripe mutexes, the sharded tx-mask table, and the sharded target.
//
//===----------------------------------------------------------------------===//

#include "adt/BoostedSet.h"
#include "runtime/SerialChecker.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace comlat;

namespace {

struct StressCase {
  const char *Name;
  /// Key range the threads draw from. Small: heavy same-stripe collisions;
  /// large: mostly distinct stripes (the striped fast path).
  uint64_t KeySpace;
  unsigned Threads;
};

class StripedGateStress : public ::testing::TestWithParam<StressCase> {};

std::string stressName(const ::testing::TestParamInfo<StressCase> &Info) {
  return Info.param.Name;
}

} // namespace

TEST_P(StripedGateStress, ConcurrentAdmissionsStaySerializable) {
  const StressCase &Param = GetParam();
  for (unsigned Round = 0; Round != 20; ++Round) {
    const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
    const unsigned NumThreads = Param.Threads;
    std::vector<std::unique_ptr<Transaction>> Txs(NumThreads);
    std::vector<char> Committed(NumThreads, 0);

    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        Rng R(uint64_t(Round) * 1009 + T + 1);
        auto Tx = std::make_unique<Transaction>(T + 1);
        Tx->setRecording(true);
        bool Ok = true;
        for (unsigned Op = 0; Op != 3 && Ok; ++Op) {
          const int64_t Key = static_cast<int64_t>(R.nextBelow(Param.KeySpace));
          bool Res = false;
          switch (R.nextBelow(3)) {
          case 0:
            Ok = Set->add(*Tx, Key, Res);
            break;
          case 1:
            Ok = Set->remove(*Tx, Key, Res);
            break;
          default:
            Ok = Set->contains(*Tx, Key, Res);
            break;
          }
        }
        if (Ok) {
          Tx->commit();
          Committed[T] = 1;
        } else {
          Tx->abort();
        }
        Txs[T] = std::move(Tx);
      });
    for (std::thread &Th : Threads)
      Th.join();

    std::vector<TxTrace> Traces;
    for (unsigned T = 0; T != NumThreads; ++T)
      if (Committed[T])
        Traces.push_back(traceOf(*Txs[T], T + 1));

    EXPECT_TRUE(findSerialWitness(
        Traces, [] { return std::make_unique<SetReplayer>(); },
        Set->signature()))
        << Param.Name << " round " << Round << " with " << Traces.size()
        << " committed of " << NumThreads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, StripedGateStress,
    ::testing::Values(
        // Same-stripe collisions dominate: serialization correctness.
        StressCase{"colliding_keys", 3, 4},
        // Mostly distinct stripes: the striped fast path under load.
        StressCase{"distinct_keys", 4096, 4},
        // Mixed, more threads than stripes touched.
        StressCase{"mixed_keys", 64, 6}),
    stressName);
