//===- tests/runtime/PrivatizerTest.cpp - Privatization census protocol ------===//
//
// Drives a PrivDomain directly — an apply callback into a local array
// stands in for the owning detector — and pins the census protocol:
// divert/publish/merge, the abort-drops-deltas rule, the mutual exclusion
// between the priv and blocker populations (veto and fallback), and the
// sole-member self-upgrade that hands pending deltas back for flushing.
//
//===----------------------------------------------------------------------===//

#include "runtime/Privatizer.h"

#include <gtest/gtest.h>

#include <array>

using namespace comlat;

namespace {

struct DomainFixture : public ::testing::Test {
  std::array<int64_t, 8> Master{};
  PrivDomain Domain{[this](int64_t Slot, int64_t Amount) {
                      Master[size_t(Slot)] += Amount;
                    },
                    "privatizer-test"};
};

} // namespace

TEST_F(DomainFixture, DivertPublishMergeLifecycle) {
  Transaction Tx(1);
  EXPECT_TRUE(Domain.tryDivert(Tx, /*Slot=*/5, /*Amount=*/3));
  EXPECT_TRUE(Domain.tryDivert(Tx, 5, 4));
  EXPECT_TRUE(Domain.tryDivert(Tx, 2, 1));
  // Repeated updates of one slot coalesce into one transaction-held record.
  EXPECT_EQ(Tx.numPrivDeltas(&Domain), 2u);
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{1, 0}));

  // Publish on commit: deltas leave the transaction, but the master is
  // untouched until someone needs it.
  Domain.release(Tx, /*Committed=*/true);
  Tx.commit();
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{0, 0}));
  EXPECT_EQ(Master[5], 0);

  // First blocker entry merges the replicas into the master.
  Transaction Blocker(2);
  EXPECT_EQ(Domain.enterBlocker(Blocker), PrivDomain::BlockOutcome::Entered);
  EXPECT_EQ(Master[5], 7);
  EXPECT_EQ(Master[2], 1);
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(Domain.enterBlocker(Blocker),
            PrivDomain::BlockOutcome::AlreadyBlocker);
  Domain.release(Blocker, true);
  Blocker.commit();
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{0, 0}));

  EXPECT_EQ(Domain.numDiverted(), 3u);
  EXPECT_GE(Domain.numMerges(), 1u);
}

TEST_F(DomainFixture, AbortDropsDeltas) {
  Transaction Tx(1);
  EXPECT_TRUE(Domain.tryDivert(Tx, 0, 42));
  Domain.release(Tx, /*Committed=*/false);
  Tx.abort();

  Domain.mergeQuiesced();
  EXPECT_EQ(Master[0], 0);
}

TEST_F(DomainFixture, BlockerVetoesWhileOtherPrivLive) {
  Transaction Priv(1), Blocker(2);
  EXPECT_TRUE(Domain.tryDivert(Priv, 1, 10));

  // Another transaction holds unpublished deltas: the blocker must fail.
  EXPECT_EQ(Domain.enterBlocker(Blocker), PrivDomain::BlockOutcome::Veto);
  EXPECT_EQ(Domain.numVetoes(), 1u);
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{1, 0}));

  Domain.release(Priv, true);
  Priv.commit();

  // Once the priv census drains, the same blocker enters and sees the
  // published delta merged.
  EXPECT_EQ(Domain.enterBlocker(Blocker), PrivDomain::BlockOutcome::Entered);
  EXPECT_EQ(Master[1], 10);
  Domain.release(Blocker, true);
  Blocker.commit();
}

TEST_F(DomainFixture, DivertFallsBackWhileBlockersLive) {
  Transaction Blocker(1), Priv(2);
  EXPECT_EQ(Domain.enterBlocker(Blocker), PrivDomain::BlockOutcome::Entered);

  // A live blocker forces new updates through the ordinary admission
  // path: the divert is refused and nothing sticks to the transaction.
  EXPECT_FALSE(Domain.tryDivert(Priv, 3, 5));
  EXPECT_EQ(Priv.numPrivDeltas(&Domain), 0u);
  EXPECT_EQ(Domain.numFallbacks(), 1u);

  Domain.release(Blocker, true);
  Blocker.commit();

  EXPECT_TRUE(Domain.tryDivert(Priv, 3, 5));
  Domain.release(Priv, true);
  Priv.commit();
  Domain.mergeQuiesced();
  EXPECT_EQ(Master[3], 5);
}

TEST_F(DomainFixture, SoleMemberSelfUpgradeFlushes) {
  Transaction Tx(1);
  EXPECT_TRUE(Domain.tryDivert(Tx, 4, 9));

  // The only priv member executes a conflicting method: upgrade in place.
  // Its own pending deltas come back to the caller for re-admission.
  EXPECT_EQ(Domain.enterBlocker(Tx), PrivDomain::BlockOutcome::NeedsFlush);
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(Tx.privState(&Domain), Transaction::PrivState::Blocker);

  int64_t FlushedSlot = -1, FlushedAmount = 0;
  Tx.consumePrivDeltas(&Domain, [&](int64_t Slot, int64_t Amount) {
    FlushedSlot = Slot;
    FlushedAmount = Amount;
    Master[size_t(Slot)] += Amount; // stand-in for the admission path
  });
  EXPECT_EQ(FlushedSlot, 4);
  EXPECT_EQ(FlushedAmount, 9);

  Domain.release(Tx, true);
  Tx.commit();
  EXPECT_EQ(Master[4], 9);
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{0, 0}));
}

TEST_F(DomainFixture, SelfUpgradeVetoedWhenNotSole) {
  Transaction Tx1(1), Tx2(2);
  EXPECT_TRUE(Domain.tryDivert(Tx1, 0, 1));
  EXPECT_TRUE(Domain.tryDivert(Tx2, 0, 2));

  // Tx1 is not the sole priv member, so it cannot upgrade in place.
  EXPECT_EQ(Domain.enterBlocker(Tx1), PrivDomain::BlockOutcome::Veto);

  Domain.release(Tx1, true);
  Tx1.commit();
  Domain.release(Tx2, true);
  Tx2.commit();
  Domain.mergeQuiesced();
  EXPECT_EQ(Master[0], 3);
}

TEST_F(DomainFixture, MultiplePrivTransactionsAggregate) {
  Transaction Tx1(1), Tx2(2);
  EXPECT_TRUE(Domain.tryDivert(Tx1, 6, 100));
  EXPECT_TRUE(Domain.tryDivert(Tx2, 6, 200));
  EXPECT_EQ(Domain.census(), (std::pair<uint32_t, uint32_t>{2, 0}));

  Domain.release(Tx1, true);
  Tx1.commit();
  Domain.release(Tx2, true);
  Tx2.commit();

  Domain.mergeQuiesced();
  EXPECT_EQ(Master[6], 300);
}
