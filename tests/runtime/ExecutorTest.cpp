//===- tests/runtime/ExecutorTest.cpp - Speculative executor ------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedSet.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace comlat;

TEST(ExecutorTest, DrainsAllItems) {
  Worklist WL;
  for (int64_t I = 0; I != 100; ++I)
    WL.push(I);
  std::atomic<int64_t> Sum{0};
  Executor Exec({.NumThreads = 2});
  const ExecStats Stats =
      Exec.run(WL, [&Sum](Transaction &, int64_t Item, TxWorklist &) {
        Sum.fetch_add(Item);
      });
  EXPECT_EQ(Stats.Committed, 100u);
  EXPECT_EQ(Stats.Aborted, 0u);
  EXPECT_EQ(Sum.load(), 99 * 100 / 2);
  EXPECT_TRUE(WL.empty());
}

TEST(ExecutorTest, CommitTimePushesAreProcessed) {
  Worklist WL;
  WL.push(4); // Each item N > 0 pushes N-1.
  std::atomic<uint64_t> Count{0};
  Executor Exec({.NumThreads = 2});
  const ExecStats Stats =
      Exec.run(WL, [&Count](Transaction &, int64_t Item, TxWorklist &Out) {
        Count.fetch_add(1);
        if (Item > 0)
          Out.push(Item - 1);
      });
  EXPECT_EQ(Count.load(), 5u); // 4,3,2,1,0.
  EXPECT_EQ(Stats.Committed, 5u);
}

TEST(ExecutorTest, AbortedItemsRetryUntilCommitted) {
  // Every item conflicts on its first attempt (simulated via a shared
  // first-try marker), then succeeds.
  Worklist WL;
  for (int64_t I = 0; I != 20; ++I)
    WL.push(I);
  std::mutex M;
  std::set<int64_t> SeenOnce;
  Executor Exec({.NumThreads = 2});
  const ExecStats Stats = Exec.run(
      WL, [&M, &SeenOnce](Transaction &Tx, int64_t Item, TxWorklist &) {
        std::lock_guard<std::mutex> Guard(M);
        if (SeenOnce.insert(Item).second)
          Tx.fail(); // First attempt conflicts.
      });
  EXPECT_EQ(Stats.Committed, 20u);
  EXPECT_EQ(Stats.Aborted, 20u);
  EXPECT_DOUBLE_EQ(Stats.abortRatio(), 0.5);
}

TEST(ExecutorTest, AbortedEffectsAreUndone) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  Worklist WL;
  for (int64_t I = 0; I != 50; ++I)
    WL.push(I);
  std::mutex M;
  std::set<int64_t> SeenOnce;
  Executor Exec({.NumThreads = 2});
  Exec.run(WL, [&](Transaction &Tx, int64_t Item, TxWorklist &) {
    if (!Acc->increment(Tx, Item))
      return;
    std::lock_guard<std::mutex> Guard(M);
    if (SeenOnce.insert(Item).second)
      Tx.fail(); // Abort after the increment: it must be rolled back.
  });
  EXPECT_EQ(Acc->value(), 49 * 50 / 2);
}

TEST(ExecutorTest, ConflictingSchemesStillProduceCorrectState) {
  // Global-lock set with multi-op transactions under 4 threads: high
  // contention, but the final set must contain exactly the pushed keys.
  const std::unique_ptr<TxSet> Set = makeLockedSet(bottomSetSpec());
  Worklist WL;
  for (int64_t I = 0; I != 50; ++I)
    WL.push(I);
  Executor Exec({.NumThreads = 4});
  const ExecStats Stats =
      Exec.run(WL, [&Set](Transaction &Tx, int64_t Item, TxWorklist &) {
        bool Res = false;
        if (!Set->add(Tx, Item, Res))
          return;
        if (!Set->contains(Tx, Item, Res))
          return;
      });
  EXPECT_EQ(Stats.Committed, 50u);
  const std::unique_ptr<TxSet> Expected = makeDirectSet();
  Transaction Tx(1);
  for (int64_t I = 0; I != 50; ++I) {
    bool Res = false;
    Expected->add(Tx, I, Res);
  }
  Tx.commit();
  EXPECT_EQ(Set->signature(), Expected->signature());
}

TEST(ExecutorTest, SingleThreadMatchesMultiThreadResult) {
  for (const unsigned Threads : {1u, 3u}) {
    const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
    Worklist WL;
    for (int64_t I = 1; I <= 30; ++I)
      WL.push(I);
    Executor Exec({.NumThreads = Threads});
    Exec.run(WL, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
      Acc->increment(Tx, Item);
    });
    EXPECT_EQ(Acc->value(), 30 * 31 / 2) << Threads << " threads";
  }
}

TEST(ExecutorTest, BothPoliciesDrainTheSameWork) {
  for (const WorklistPolicy Policy :
       {WorklistPolicy::ChunkedStealing, WorklistPolicy::GlobalFifo}) {
    Worklist WL;
    for (int64_t I = 0; I != 64; ++I)
      WL.push(I);
    std::atomic<int64_t> Sum{0};
    Executor Exec({.NumThreads = 3, .Worklist = Policy});
    const ExecStats Stats =
        Exec.run(WL, [&Sum](Transaction &, int64_t Item, TxWorklist &Out) {
          Sum.fetch_add(Item);
          if (Item >= 64) // Second generation: stop.
            return;
          Out.push(Item + 64);
        });
    EXPECT_EQ(Stats.Committed, 128u) << worklistPolicyName(Policy);
    EXPECT_EQ(Sum.load(), 127 * 128 / 2) << worklistPolicyName(Policy);
    EXPECT_TRUE(WL.empty());
  }
}

TEST(ExecutorTest, PoolIsReusedAcrossRuns) {
  // The tentpole claim: one Executor owns one persistent thread pool, so
  // back-to-back run() calls must work (and stay independent).
  Executor Exec({.NumThreads = 4});
  for (int Round = 0; Round != 3; ++Round) {
    const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
    Worklist WL;
    for (int64_t I = 1; I <= 20; ++I)
      WL.push(I);
    const ExecStats Stats =
        Exec.run(WL, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
          Acc->increment(Tx, Item);
        });
    EXPECT_EQ(Stats.Committed, 20u) << "round " << Round;
    EXPECT_EQ(Acc->value(), 20 * 21 / 2) << "round " << Round;
  }
}

TEST(ExecutorTest, EmptySeedTerminatesImmediately) {
  for (const WorklistPolicy Policy :
       {WorklistPolicy::ChunkedStealing, WorklistPolicy::GlobalFifo}) {
    Worklist WL;
    Executor Exec({.NumThreads = 4, .Worklist = Policy});
    const ExecStats Stats =
        Exec.run(WL, [](Transaction &, int64_t, TxWorklist &) {
          FAIL() << "no item should ever run";
        });
    EXPECT_EQ(Stats.Committed, 0u);
    EXPECT_EQ(Stats.Aborted, 0u);
  }
}

TEST(ExecutorTest, AbortCausesAreClassified) {
  Worklist WL;
  for (int64_t I = 0; I != 10; ++I)
    WL.push(I);
  std::mutex M;
  std::set<int64_t> SeenOnce;
  Executor Exec({.NumThreads = 2});
  const ExecStats Stats = Exec.run(
      WL, [&M, &SeenOnce](Transaction &Tx, int64_t Item, TxWorklist &) {
        std::lock_guard<std::mutex> Guard(M);
        if (SeenOnce.insert(Item).second)
          Tx.fail(); // Operator-requested abort: AbortCause::User.
      });
  EXPECT_EQ(Stats.Aborted, 10u);
  EXPECT_EQ(Stats.abortsByCause(AbortCause::User), 10u);
  EXPECT_EQ(Stats.abortsByCause(AbortCause::LockConflict), 0u);
  EXPECT_EQ(Stats.abortsByCause(AbortCause::Gatekeeper), 0u);
}

TEST(ExecutorStressTest, TerminationUnderBurstsAndAborts) {
  // The termination-detection barrier must neither hang (a worker parks
  // and misses a wakeup) nor fire early (declare quiescence while commit-
  // time pushes are still in flight). Burst-generating items (each item
  // D > 0 pushes three copies of D-1 at commit) keep the worklist
  // oscillating between empty-looking and full; probabilistic aborts make
  // abort re-pushes race the barrier's idle accounting. Expected commits:
  // seeds * (3^(D+1) - 1) / 2.
  constexpr int64_t Depth = 6;
  constexpr uint64_t PerSeed = (2187 - 1) / 2; // (3^7 - 1) / 2.
  for (const WorklistPolicy Policy :
       {WorklistPolicy::ChunkedStealing, WorklistPolicy::GlobalFifo}) {
    Worklist WL;
    for (int I = 0; I != 4; ++I)
      WL.push(Depth);
    std::atomic<uint64_t> Attempts{0};
    Executor Exec({.NumThreads = 4, .Worklist = Policy});
    const ExecStats Stats = Exec.run(
        WL, [&Attempts](Transaction &Tx, int64_t Item, TxWorklist &Out) {
          if (Attempts.fetch_add(1) % 7 == 0)
            Tx.fail(); // ~14% of attempts abort and re-push.
          if (Item > 0)
            for (int C = 0; C != 3; ++C)
              Out.push(Item - 1);
        });
    EXPECT_EQ(Stats.Committed, 4 * PerSeed) << worklistPolicyName(Policy);
    EXPECT_GT(Stats.Aborted, 0u) << worklistPolicyName(Policy);
    EXPECT_EQ(Stats.abortsByCause(AbortCause::User), Stats.Aborted);
    EXPECT_TRUE(WL.empty());
  }
}

TEST(ExecutorStressTest, RepeatedRunsTerminateReliably) {
  // Many short runs maximize the number of park/wake/terminate cycles the
  // barrier goes through — the regime where lost-notification bugs live.
  Executor Exec({.NumThreads = 4});
  for (int Round = 0; Round != 50; ++Round) {
    Worklist WL;
    WL.push(3); // A short chain: 3 -> 2 -> 1 -> 0.
    std::atomic<uint64_t> Count{0};
    const ExecStats Stats = Exec.run(
        WL, [&Count](Transaction &, int64_t Item, TxWorklist &Out) {
          Count.fetch_add(1);
          if (Item > 0)
            Out.push(Item - 1);
        });
    ASSERT_EQ(Stats.Committed, 4u) << "round " << Round;
    ASSERT_EQ(Count.load(), 4u) << "round " << Round;
  }
}
