//===- tests/runtime/ExecutorTest.cpp - Speculative executor ------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedSet.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace comlat;

TEST(ExecutorTest, DrainsAllItems) {
  Worklist WL;
  for (int64_t I = 0; I != 100; ++I)
    WL.push(I);
  std::atomic<int64_t> Sum{0};
  Executor Exec(2);
  const ExecStats Stats =
      Exec.run(WL, [&Sum](Transaction &, int64_t Item, TxWorklist &) {
        Sum.fetch_add(Item);
      });
  EXPECT_EQ(Stats.Committed, 100u);
  EXPECT_EQ(Stats.Aborted, 0u);
  EXPECT_EQ(Sum.load(), 99 * 100 / 2);
  EXPECT_TRUE(WL.empty());
}

TEST(ExecutorTest, CommitTimePushesAreProcessed) {
  Worklist WL;
  WL.push(4); // Each item N > 0 pushes N-1.
  std::atomic<uint64_t> Count{0};
  Executor Exec(2);
  const ExecStats Stats =
      Exec.run(WL, [&Count](Transaction &, int64_t Item, TxWorklist &Out) {
        Count.fetch_add(1);
        if (Item > 0)
          Out.push(Item - 1);
      });
  EXPECT_EQ(Count.load(), 5u); // 4,3,2,1,0.
  EXPECT_EQ(Stats.Committed, 5u);
}

TEST(ExecutorTest, AbortedItemsRetryUntilCommitted) {
  // Every item conflicts on its first attempt (simulated via a shared
  // first-try marker), then succeeds.
  Worklist WL;
  for (int64_t I = 0; I != 20; ++I)
    WL.push(I);
  std::mutex M;
  std::set<int64_t> SeenOnce;
  Executor Exec(2);
  const ExecStats Stats = Exec.run(
      WL, [&M, &SeenOnce](Transaction &Tx, int64_t Item, TxWorklist &) {
        std::lock_guard<std::mutex> Guard(M);
        if (SeenOnce.insert(Item).second)
          Tx.fail(); // First attempt conflicts.
      });
  EXPECT_EQ(Stats.Committed, 20u);
  EXPECT_EQ(Stats.Aborted, 20u);
  EXPECT_DOUBLE_EQ(Stats.abortRatio(), 0.5);
}

TEST(ExecutorTest, AbortedEffectsAreUndone) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  Worklist WL;
  for (int64_t I = 0; I != 50; ++I)
    WL.push(I);
  std::mutex M;
  std::set<int64_t> SeenOnce;
  Executor Exec(2);
  Exec.run(WL, [&](Transaction &Tx, int64_t Item, TxWorklist &) {
    if (!Acc->increment(Tx, Item))
      return;
    std::lock_guard<std::mutex> Guard(M);
    if (SeenOnce.insert(Item).second)
      Tx.fail(); // Abort after the increment: it must be rolled back.
  });
  EXPECT_EQ(Acc->value(), 49 * 50 / 2);
}

TEST(ExecutorTest, ConflictingSchemesStillProduceCorrectState) {
  // Global-lock set with multi-op transactions under 4 threads: high
  // contention, but the final set must contain exactly the pushed keys.
  const std::unique_ptr<TxSet> Set = makeLockedSet(bottomSetSpec());
  Worklist WL;
  for (int64_t I = 0; I != 50; ++I)
    WL.push(I);
  Executor Exec(4);
  const ExecStats Stats =
      Exec.run(WL, [&Set](Transaction &Tx, int64_t Item, TxWorklist &) {
        bool Res = false;
        if (!Set->add(Tx, Item, Res))
          return;
        if (!Set->contains(Tx, Item, Res))
          return;
      });
  EXPECT_EQ(Stats.Committed, 50u);
  const std::unique_ptr<TxSet> Expected = makeDirectSet();
  Transaction Tx(1);
  for (int64_t I = 0; I != 50; ++I) {
    bool Res = false;
    Expected->add(Tx, I, Res);
  }
  Tx.commit();
  EXPECT_EQ(Set->signature(), Expected->signature());
}

TEST(ExecutorTest, SingleThreadMatchesMultiThreadResult) {
  for (const unsigned Threads : {1u, 3u}) {
    const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
    Worklist WL;
    for (int64_t I = 1; I <= 30; ++I)
      WL.push(I);
    Executor Exec(Threads);
    Exec.run(WL, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
      Acc->increment(Tx, Item);
    });
    EXPECT_EQ(Acc->value(), 30 * 31 / 2) << Threads << " threads";
  }
}
