//===- tests/runtime/LockSchemeTest.cpp - §3.2 construction -------------------===//

#include "adt/Accumulator.h"
#include "adt/FlowGraph.h"
#include "adt/SetSpecs.h"
#include "core/Eval.h"
#include "runtime/LockScheme.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

/// Finds a mode id by name.
ModeId modeByName(const LockScheme &S, const std::string &Name) {
  for (ModeId M = 0; M != S.numModes(); ++M)
    if (S.modeName(M) == Name)
      return M;
  ADD_FAILURE() << "no mode named " << Name;
  return 0;
}

} // namespace

TEST(LockSchemeTest, AccumulatorFullMatrixMatchesFig8a) {
  const LockScheme S(accumulatorSpec());
  // Modes: increment:ds, increment:arg0, read:ds, read:ret.
  EXPECT_EQ(S.numModes(), 4u);
  const ModeId IncDs = modeByName(S, "increment:ds");
  const ModeId IncArg = modeByName(S, "increment:arg0");
  const ModeId ReadDs = modeByName(S, "read:ds");
  const ModeId ReadRet = modeByName(S, "read:ret");
  // Fig. 8(a): only inc:ds x read:ds is incompatible.
  for (ModeId A = 0; A != S.numModes(); ++A)
    for (ModeId B = 0; B != S.numModes(); ++B) {
      const bool ShouldConflict = (A == IncDs && B == ReadDs) ||
                                  (A == ReadDs && B == IncDs);
      EXPECT_EQ(S.compat()[A][B] == 0, ShouldConflict)
          << S.modeName(A) << " vs " << S.modeName(B);
    }
  (void)IncArg;
  (void)ReadRet;
}

TEST(LockSchemeTest, AccumulatorReductionMatchesFig8b) {
  const LockScheme S(accumulatorSpec());
  // The argument and return modes are compatible with everything and get
  // reduced; the two :ds modes stay.
  EXPECT_FALSE(S.modeReduced(modeByName(S, "increment:ds")));
  EXPECT_FALSE(S.modeReduced(modeByName(S, "read:ds")));
  EXPECT_TRUE(S.modeReduced(modeByName(S, "increment:arg0")));
  EXPECT_TRUE(S.modeReduced(modeByName(S, "read:ret")));
  // Acquisitions: each method takes only its structure mode.
  const AccumulatorSig &A = accumulatorSig();
  ASSERT_EQ(S.preAcquires(A.Increment).size(), 1u);
  EXPECT_TRUE(S.preAcquires(A.Increment)[0].OnStructure);
  ASSERT_EQ(S.preAcquires(A.Read).size(), 1u);
  EXPECT_TRUE(S.preAcquires(A.Read)[0].OnStructure);
  EXPECT_TRUE(S.postAcquires(A.Read).empty());
}

TEST(LockSchemeTest, MatrixRenderingShowsIncompatibilities) {
  const LockScheme S(accumulatorSpec());
  const std::string Full = S.matrixStr(/*IncludeReduced=*/true);
  EXPECT_NE(Full.find("increment:arg0"), std::string::npos);
  const std::string Reduced = S.matrixStr(/*IncludeReduced=*/false);
  EXPECT_EQ(Reduced.find("increment:arg0"), std::string::npos);
  EXPECT_NE(Reduced.find("x"), std::string::npos);
}

TEST(LockSchemeTest, StrengthenedSetIsReadWriteKeyLocks) {
  const LockScheme S(strengthenedSetSpec());
  const SetSig &Set = setSig();
  const ModeId AddArg = modeByName(S, "add:arg0");
  const ModeId RemoveArg = modeByName(S, "remove:arg0");
  const ModeId ContainsArg = modeByName(S, "contains:arg0");
  // contains is a read lock: self-compatible, conflicting with writers.
  EXPECT_TRUE(S.compat()[ContainsArg][ContainsArg]);
  EXPECT_FALSE(S.compat()[ContainsArg][AddArg]);
  EXPECT_FALSE(S.compat()[ContainsArg][RemoveArg]);
  EXPECT_FALSE(S.compat()[AddArg][AddArg]);
  EXPECT_FALSE(S.compat()[AddArg][RemoveArg]);
  // Structure modes are all-compatible (no false condition) and reduced.
  EXPECT_TRUE(S.modeReduced(S.structureMode(Set.Add)));
  // Every method locks exactly its key argument.
  ASSERT_EQ(S.preAcquires(Set.Add).size(), 1u);
  EXPECT_FALSE(S.preAcquires(Set.Add)[0].OnStructure);
  EXPECT_FALSE(S.preAcquires(Set.Add)[0].KeyFn.has_value());
}

TEST(LockSchemeTest, ExclusiveSetLocksAreExclusive) {
  const LockScheme S(exclusiveSetSpec());
  const ModeId ContainsArg = modeByName(S, "contains:arg0");
  EXPECT_FALSE(S.compat()[ContainsArg][ContainsArg]);
}

TEST(LockSchemeTest, BottomSetIsAGlobalLock) {
  const LockScheme S(bottomSetSpec());
  const SetSig &Set = setSig();
  // All structure modes mutually incompatible; every method acquires only
  // the structure lock.
  for (const MethodId M : {Set.Add, Set.Remove, Set.Contains}) {
    ASSERT_EQ(S.preAcquires(M).size(), 1u);
    EXPECT_TRUE(S.preAcquires(M)[0].OnStructure);
    for (const MethodId M2 : {Set.Add, Set.Remove, Set.Contains})
      EXPECT_FALSE(S.compat()[S.structureMode(M)][S.structureMode(M2)]);
  }
}

TEST(LockSchemeTest, PartitionedSetLocksThroughKeyFunction) {
  const LockScheme S(partitionedSetSpec());
  const SetSig &Set = setSig();
  ASSERT_EQ(S.preAcquires(Set.Add).size(), 1u);
  EXPECT_EQ(S.preAcquires(Set.Add)[0].KeyFn,
            std::optional<StateFnId>(Set.Part));
  // contains ~ contains stayed true, so contains still takes a read-like
  // mode on the partition.
  const ModeId ContainsArg = modeByName(S, "contains:arg0");
  EXPECT_TRUE(S.compat()[ContainsArg][ContainsArg]);
}

TEST(LockSchemeTest, FlowSpecsProduceNodeLocks) {
  const LockScheme Ml(mlFlowSpec());
  const FlowSig &F = flowSig();
  // pushFlow locks both of its argument nodes.
  EXPECT_EQ(Ml.preAcquires(F.PushFlow).size(), 2u);
  // getNeighbors is a read lock in ml and exclusive in ex.
  const ModeId GN = modeByName(Ml, "getNeighbors:arg0");
  EXPECT_TRUE(Ml.compat()[GN][GN]);
  const LockScheme Ex(exFlowSpec());
  const ModeId GNx = modeByName(Ex, "getNeighbors:arg0");
  EXPECT_FALSE(Ex.compat()[GNx][GNx]);
}

//===----------------------------------------------------------------------===//
// Compiled key programs and pair conditions
//===----------------------------------------------------------------------===//

TEST(LockSchemeTest, AcquisitionsCarryCompiledKeyPrograms) {
  const LockScheme S(partitionedSetSpec());
  const SetSig &Set = setSig();
  ASSERT_EQ(S.preAcquires(Set.Add).size(), 1u);
  const LockAcquisition &Acq = S.preAcquires(Set.Add)[0];
  ASSERT_NE(Acq.KeyProg, nullptr);
  // The program computes part(arg0); evaluate with part = x mod 4.
  FnResolver Resolver([](const Term &T, ValueSpan A) {
    EXPECT_EQ(T.Fn, setSig().Part);
    return Value::integer(A[0].asInt() % 4);
  });
  const Invocation I(Set.Add, {Value::integer(10)});
  CondProgram::Inputs In;
  In.Inv1 = CondProgram::Frame(I);
  In.Resolver = &Resolver;
  EXPECT_EQ(Acq.KeyProg->eval(In).asInt(), 2);
}

TEST(LockSchemeTest, StructureAcquisitionsHaveNoKeyProgram) {
  const LockScheme S(bottomSetSpec());
  const SetSig &Set = setSig();
  ASSERT_FALSE(S.preAcquires(Set.Add).empty());
  EXPECT_TRUE(S.preAcquires(Set.Add)[0].OnStructure);
  EXPECT_EQ(S.preAcquires(Set.Add)[0].KeyProg, nullptr);
}

TEST(LockSchemeTest, PairProgramsMatchInterpretedConditions) {
  // The compiled pair conditions must agree with the interpreter on the
  // specification the scheme was built from.
  const CommSpec &Spec = strengthenedSetSpec();
  const LockScheme S(Spec);
  const unsigned N = Spec.sig().numMethods();
  const Invocation I1(0, {Value::integer(3)}, Value::boolean(true));
  const Invocation I2(0, {Value::integer(3)}, Value::boolean(false));
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = 0; M2 != N; ++M2) {
      EvalContext Ctx{&I1, &I2, nullptr};
      CondProgram::Inputs In;
      In.Inv1 = CondProgram::Frame(I1);
      In.Inv2 = CondProgram::Frame(I2);
      EXPECT_EQ(S.pairProgram(M1, M2).evalBool(In),
                evalFormula(Spec.get(M1, M2), Ctx))
          << Spec.sig().method(M1).Name << " ~ "
          << Spec.sig().method(M2).Name;
    }
}
