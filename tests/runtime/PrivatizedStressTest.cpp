//===- tests/runtime/PrivatizedStressTest.cpp - Privatization under threads --===//
//
// Soundness of privatized commutative-update coalescing under real
// concurrency: threads hammer the privatized accumulator, blind-insert
// set and excess counters with mixed update/read workloads through pooled
// transactions (retry on veto), and every round's committed transactions
// must admit a serial witness with identical return values and final
// abstract state. The read-heavy mixes force constant merge traffic and
// self-upgrade flushes; the update-only mixes keep replicas live across
// many commits before a single quiesced merge. Runs under the tsan ctest
// label, so a -DCOMLAT_SANITIZE=thread build race-checks the census CAS
// protocol, the replica publish/merge handoff and the merge mutex.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/ExcessCounter.h"
#include "adt/PrivSet.h"
#include "runtime/SerialChecker.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace comlat;

namespace {

constexpr unsigned Rounds = 12;
constexpr unsigned OpsPerTx = 3;
constexpr unsigned Retries = 8;

struct StressCase {
  const char *Name;
  unsigned Threads;
  /// Probability (percent) that an op reads instead of updating.
  unsigned ReadPct;
};

std::string stressName(const ::testing::TestParamInfo<StressCase> &Info) {
  return Info.param.Name;
}

class PrivatizedStress : public ::testing::TestWithParam<StressCase> {};

/// Runs one round: each thread executes one transaction of \p OpsPerTx ops
/// through \p Body, retrying up to \p Retries times on conflict, with
/// recording on. Returns the committed traces.
template <typename BodyFn>
std::vector<TxTrace> runRound(unsigned NumThreads, unsigned Round,
                              BodyFn &&Body) {
  std::vector<std::unique_ptr<Transaction>> Txs(NumThreads);
  std::vector<char> Committed(NumThreads, 0);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng R(uint64_t(Round) * 7919 + T + 1);
      // Pooled transaction: one object recycled across retries, ids drawn
      // from a per-thread block.
      TxId Next = (static_cast<TxId>(T + 1) << 32) + Round * Retries + 1;
      auto Tx = std::make_unique<Transaction>(Next++);
      Tx->setRecording(true);
      for (unsigned Attempt = 0; Attempt != Retries; ++Attempt) {
        bool Ok = true;
        for (unsigned Op = 0; Op != OpsPerTx && Ok; ++Op)
          Ok = Body(R, *Tx);
        if (Ok) {
          Tx->commit();
          Committed[T] = 1;
          break;
        }
        Tx->abort();
        if (Attempt + 1 != Retries) {
          // reset() restores the default recording=off; a retry that
          // commits unrecorded ops would (rightly) fail the oracle.
          Tx->reset(Next++);
          Tx->setRecording(true);
        }
      }
      Txs[T] = std::move(Tx);
    });
  for (std::thread &Th : Threads)
    Th.join();

  std::vector<TxTrace> Traces;
  for (unsigned T = 0; T != NumThreads; ++T)
    if (Committed[T])
      Traces.push_back(traceOf(*Txs[T], T + 1));
  return Traces;
}

} // namespace

TEST_P(PrivatizedStress, AccumulatorStaysSerializable) {
  const StressCase &Param = GetParam();
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const std::unique_ptr<TxAccumulator> Acc = makePrivatizedAccumulator();
    const std::vector<TxTrace> Traces =
        runRound(Param.Threads, Round, [&](Rng &R, Transaction &Tx) {
          if (R.nextBelow(100) < Param.ReadPct) {
            int64_t Res = 0;
            return Acc->read(Tx, Res);
          }
          return Acc->increment(Tx, int64_t(R.nextBelow(10)));
        });

    // Quiesced value() merges every outstanding replica; the witness
    // search replays the committed histories against it. The dump makes a
    // failed witness search diagnosable from the CI log alone.
    std::string Dump;
    for (const TxTrace &T : Traces) {
      Dump += "\n  tx " + std::to_string(T.Id) + ":";
      for (const auto &P : T.Invocations) {
        Dump += " m" + std::to_string(P.second.Method) + "(";
        for (size_t A = 0; A != P.second.Args.size(); ++A)
          Dump += (A ? "," : "") + P.second.Args[A].str();
        Dump += ")->" + P.second.Ret.str();
      }
    }
    EXPECT_TRUE(findSerialWitness(
        Traces, [] { return std::make_unique<AccumulatorReplayer>(); },
        std::to_string(Acc->value())))
        << Param.Name << " round " << Round << " with " << Traces.size()
        << " committed of " << Param.Threads << " value=" << Acc->value()
        << Dump;
  }
}

TEST_P(PrivatizedStress, BlindInsertSetStaysSerializable) {
  const StressCase &Param = GetParam();
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const std::unique_ptr<TxPrivSet> Set = makeGatedPrivSet(/*Privatize=*/true);
    const std::vector<TxTrace> Traces =
        runRound(Param.Threads, Round, [&](Rng &R, Transaction &Tx) {
          const int64_t Key = int64_t(R.nextBelow(5));
          const uint64_t Roll = R.nextBelow(100);
          if (Roll < Param.ReadPct) {
            bool Res = false;
            return Set->contains(Tx, Key, Res);
          }
          // Removes are blockers too; keep them rarer than inserts so
          // replicas actually accumulate.
          if (Roll % 5 == 0)
            return Set->remove(Tx, Key);
          return Set->insert(Tx, Key);
        });

    EXPECT_TRUE(findSerialWitness(
        Traces, [] { return std::make_unique<PrivSetReplayer>(); },
        Set->signature()))
        << Param.Name << " round " << Round << " with " << Traces.size()
        << " committed of " << Param.Threads;
  }
}

TEST_P(PrivatizedStress, ExcessCountersStaySerializable) {
  const StressCase &Param = GetParam();
  constexpr unsigned NumNodes = 6;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const std::unique_ptr<TxExcessCounter> Counter =
        makeGatedExcessCounter(NumNodes, /*Privatize=*/true);
    const std::vector<TxTrace> Traces =
        runRound(Param.Threads, Round, [&](Rng &R, Transaction &Tx) {
          const int64_t Node = int64_t(R.nextBelow(NumNodes));
          if (R.nextBelow(100) < Param.ReadPct) {
            int64_t Res = 0;
            return Counter->readExcess(Tx, Node, Res);
          }
          return Counter->addExcess(Tx, Node, int64_t(R.nextBelow(7)));
        });

    // Same format as ExcessReplayer::stateSignature; value() merges.
    std::string Expected;
    for (unsigned Node = 0; Node != NumNodes; ++Node) {
      Expected += std::to_string(Counter->value(Node));
      Expected += ',';
    }
    EXPECT_TRUE(findSerialWitness(
        Traces,
        [&] { return std::make_unique<ExcessReplayer>(NumNodes); },
        Expected))
        << Param.Name << " round " << Round << " with " << Traces.size()
        << " committed of " << Param.Threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, PrivatizedStress,
    ::testing::Values(
        // Pure updates: replicas stay live across every commit, one
        // quiesced merge at the end.
        StressCase{"update_only", 4, 0},
        // Read-heavy: blockers constantly force merges, vetoes and
        // self-upgrade flushes; the divert path keeps falling back.
        StressCase{"read_heavy", 4, 50},
        // Mild read traffic over more threads.
        StressCase{"mixed", 6, 15}),
    stressName);
