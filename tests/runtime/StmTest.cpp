//===- tests/runtime/StmTest.cpp - Memory-level baseline ----------------------===//

#include "stm/ObjectStm.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(StmTest, ReadersShareAnObject) {
  ObjectStm Stm("stm");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Stm.read(T1, 42));
  EXPECT_TRUE(Stm.read(T2, 42));
  T1.commit();
  T2.commit();
}

TEST(StmTest, WriterExcludesEveryone) {
  ObjectStm Stm("stm");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Stm.write(T1, 42));
  EXPECT_FALSE(Stm.read(T2, 42));
  EXPECT_TRUE(T2.failed());
  T2.abort();
  Transaction T3(3);
  EXPECT_FALSE(Stm.write(T3, 42));
  T3.abort();
  T1.commit();
}

TEST(StmTest, ReaderBlocksWriter) {
  ObjectStm Stm("stm");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Stm.read(T1, 7));
  EXPECT_FALSE(Stm.write(T2, 7));
  T2.abort();
  T1.commit();
}

TEST(StmTest, UpgradeWithinOneTransaction) {
  ObjectStm Stm("stm");
  Transaction T1(1);
  EXPECT_TRUE(Stm.read(T1, 7));
  EXPECT_TRUE(Stm.write(T1, 7));
  T1.commit();
}

TEST(StmTest, ReleaseFreesObjects) {
  ObjectStm Stm("stm");
  {
    Transaction T1(1);
    EXPECT_TRUE(Stm.write(T1, 7));
    T1.commit();
  }
  Transaction T2(2);
  EXPECT_TRUE(Stm.write(T2, 7));
  T2.commit();
}

TEST(StmTest, AbortReleasesToo) {
  ObjectStm Stm("stm");
  {
    Transaction T1(1);
    EXPECT_TRUE(Stm.write(T1, 7));
    T1.fail();
    T1.abort();
  }
  Transaction T2(2);
  EXPECT_TRUE(Stm.write(T2, 7));
  T2.commit();
}

TEST(StmTest, DistinctObjectsIndependent) {
  ObjectStm Stm("stm");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Stm.write(T1, 1));
  EXPECT_TRUE(Stm.write(T2, 2));
  T1.commit();
  T2.commit();
  EXPECT_EQ(Stm.numConflicts(), 0u);
}

TEST(StmTest, StatsCount) {
  ObjectStm Stm("stm");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Stm.read(T1, 1));
  EXPECT_TRUE(Stm.write(T1, 2));
  EXPECT_FALSE(Stm.write(T2, 2));
  EXPECT_EQ(Stm.numAccesses(), 3u);
  EXPECT_EQ(Stm.numConflicts(), 1u);
  T2.abort();
  T1.commit();
}
