//===- tests/runtime/WorklistTest.cpp - Scheduler policy invariants -----------===//

#include "runtime/WorklistPolicy.h"

#include "obs/MetricsRegistry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

using namespace comlat;

namespace {

/// Pops everything worker \p W can see (local work plus steals) in order.
std::vector<int64_t> drainAll(WorkScheduler &Sched, unsigned W) {
  std::vector<int64_t> Out;
  while (const std::optional<int64_t> Item = Sched.tryPop(W))
    Out.push_back(*Item);
  return Out;
}

/// Steals counted into the process-wide registry since construction.
/// Scheduler tests observe steal deltas through this window because the
/// counter is global (the scheduler no longer threads an ExecStats).
class StealWindow {
public:
  StealWindow() : Start(ExecMetrics::global().Steals->value()) {}
  uint64_t steals() const {
    return ExecMetrics::global().Steals->value() - Start;
  }

private:
  uint64_t Start;
};

} // namespace

TEST(ChunkedWorklistTest, SingleWorkerIsFifo) {
  // FIFO order is a liveness requirement, not a taste choice: an operator
  // that re-pushes an item to "retry later" must not get that item as the
  // very next pop (see WorklistPolicy.h).
  ChunkedWorklist WL(1, /*ChunkSize=*/4);
  StealWindow Window;
  for (int64_t I = 0; I != 11; ++I)
    WL.push(0, I);
  const std::vector<int64_t> Got = drainAll(WL, 0);
  std::vector<int64_t> Want(11);
  for (int64_t I = 0; I != 11; ++I)
    Want[static_cast<size_t>(I)] = I;
  EXPECT_EQ(Got, Want);
  EXPECT_TRUE(WL.empty());
  EXPECT_EQ(Window.steals(), 0u);
}

TEST(ChunkedWorklistTest, RePushedItemDrainsAfterOlderWork) {
  ChunkedWorklist WL(1, /*ChunkSize=*/8);
  WL.push(0, 1);
  WL.push(0, 2);
  ASSERT_EQ(WL.tryPop(0), std::optional<int64_t>(1));
  WL.push(0, 1); // Retry: must come out after 2.
  EXPECT_EQ(WL.tryPop(0), std::optional<int64_t>(2));
  EXPECT_EQ(WL.tryPop(0), std::optional<int64_t>(1));
}

TEST(ChunkedWorklistTest, FullChunksSpillToTheShelf) {
  ChunkedWorklist WL(2, /*ChunkSize=*/4);
  for (int64_t I = 0; I != 9; ++I) // Two full chunks + one in the fill.
    WL.push(0, I);
  EXPECT_EQ(WL.shelvedChunks(0), 2u);
  EXPECT_EQ(WL.shelvedChunks(1), 0u);
  EXPECT_EQ(WL.size(), 9u);
}

TEST(ChunkedWorklistTest, StealTakesWholeChunksOldestKeptByOwner) {
  ChunkedWorklist WL(2, /*ChunkSize=*/4);
  for (int64_t I = 0; I != 12; ++I) // Chunks {0..3} {4..7}, fill {8..11}.
    WL.push(0, I);
  ASSERT_EQ(WL.shelvedChunks(0), 2u);

  // The thief takes the back (newest) shelved chunk in one steal.
  StealWindow Window;
  EXPECT_EQ(WL.tryPop(1), std::optional<int64_t>(4));
  EXPECT_EQ(Window.steals(), 1u);
  EXPECT_EQ(WL.shelvedChunks(0), 1u);
  // The rest of the stolen chunk is now the thief's local work.
  EXPECT_EQ(WL.tryPop(1), std::optional<int64_t>(5));
  EXPECT_EQ(Window.steals(), 1u);

  // The owner still drains its oldest work first, without stealing.
  EXPECT_EQ(WL.tryPop(0), std::optional<int64_t>(0));
  EXPECT_EQ(Window.steals(), 1u);
}

TEST(ChunkedWorklistTest, PrivateFillChunkIsNotStealable) {
  ChunkedWorklist WL(2, /*ChunkSize=*/64);
  WL.push(0, 7); // Stays in worker 0's fill chunk (not shelved).
  EXPECT_EQ(WL.tryPop(1), std::nullopt);
  EXPECT_FALSE(WL.empty()); // But it still counts as queued work.
  EXPECT_EQ(WL.tryPop(0), std::optional<int64_t>(7));
  EXPECT_TRUE(WL.empty());
}

TEST(ChunkedWorklistTest, NoItemLostOrDuplicatedAcrossWorkers) {
  const unsigned Workers = 4;
  const int64_t N = 1000;
  ChunkedWorklist WL(Workers, /*ChunkSize=*/16);
  for (int64_t I = 0; I != N; ++I)
    WL.push(static_cast<unsigned>(I) % Workers, I);
  std::multiset<int64_t> Seen;
  for (unsigned W = 0; W != Workers; ++W)
    for (const int64_t Item : drainAll(WL, W))
      Seen.insert(Item);
  EXPECT_EQ(Seen.size(), static_cast<size_t>(N));
  for (int64_t I = 0; I != N; ++I)
    EXPECT_EQ(Seen.count(I), 1u) << "item " << I;
  EXPECT_TRUE(WL.empty());
}

TEST(ChunkedWorklistTest, PendingCountNeverUndercountsUnderConcurrency) {
  // Hammer push/tryPop from real threads; the executor's termination
  // barrier relies on empty() never reporting true while an item is
  // queued. Total popped must equal total pushed once all threads are
  // done and the structure must report empty.
  const unsigned Workers = 4;
  const int64_t PerWorker = 2000;
  ChunkedWorklist WL(Workers, /*ChunkSize=*/8);
  std::atomic<int64_t> Popped{0};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Workers; ++W)
    Threads.emplace_back([&WL, &Popped, W] {
      for (int64_t I = 0; I != PerWorker; ++I) {
        WL.push(W, I);
        if (I % 3 == 0)
          if (WL.tryPop(W))
            Popped.fetch_add(1);
      }
      while (WL.tryPop(W))
        Popped.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  // Stragglers: a worker may finish while another's fill chunk still holds
  // items only the owner could pop. Drain every lane from one thread.
  for (unsigned W = 0; W != Workers; ++W)
    while (WL.tryPop(W))
      Popped.fetch_add(1);
  EXPECT_EQ(Popped.load(), PerWorker * static_cast<int64_t>(Workers));
  EXPECT_TRUE(WL.empty());
  EXPECT_EQ(WL.size(), 0u);
}

TEST(WorklistPolicyTest, ParseAcceptsDocumentedSpellings) {
  WorklistPolicy P;
  EXPECT_TRUE(parseWorklistPolicy("chunked", P));
  EXPECT_EQ(P, WorklistPolicy::ChunkedStealing);
  EXPECT_TRUE(parseWorklistPolicy("stealing", P));
  EXPECT_EQ(P, WorklistPolicy::ChunkedStealing);
  EXPECT_TRUE(parseWorklistPolicy("fifo", P));
  EXPECT_EQ(P, WorklistPolicy::GlobalFifo);
  EXPECT_TRUE(parseWorklistPolicy("global-fifo", P));
  EXPECT_EQ(P, WorklistPolicy::GlobalFifo);
  EXPECT_FALSE(parseWorklistPolicy("lifo", P));
  EXPECT_STREQ(worklistPolicyName(WorklistPolicy::ChunkedStealing),
               "chunked");
  EXPECT_STREQ(worklistPolicyName(WorklistPolicy::GlobalFifo), "fifo");
}

TEST(WorklistPolicyTest, GlobalFifoWrapsTheSeedInPlace) {
  // The seed Worklist itself backs the scheduler: pops come out in seed
  // FIFO order and commit-time pushes land back in the same queue. This
  // is what makes a 1-thread GlobalFifo run reproduce the seed executor.
  Worklist Seed({10, 20, 30});
  const std::unique_ptr<WorkScheduler> Sched = makeWorkScheduler(
      WorklistPolicy::GlobalFifo, Seed, /*NumWorkers=*/2, /*ChunkSize=*/4);
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(10));
  Sched->push(1, 40);
  EXPECT_FALSE(Seed.empty()); // The push went into the seed worklist.
  EXPECT_EQ(Sched->tryPop(1), std::optional<int64_t>(20));
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(30));
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(40));
  EXPECT_TRUE(Sched->empty());
  EXPECT_TRUE(Seed.empty());
}

TEST(WorklistPolicyTest, ChunkedFactoryDrainsTheSeedRoundRobin) {
  Worklist Seed({0, 1, 2, 3, 4, 5});
  const std::unique_ptr<WorkScheduler> Sched =
      makeWorkScheduler(WorklistPolicy::ChunkedStealing, Seed,
                        /*NumWorkers=*/2, /*ChunkSize=*/4);
  EXPECT_TRUE(Seed.empty()); // Fully drained into the per-worker lanes.
  // Round-robin seeding: worker 0 got {0,2,4}, worker 1 got {1,3,5}.
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(0));
  EXPECT_EQ(Sched->tryPop(1), std::optional<int64_t>(1));
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(2));
  EXPECT_EQ(Sched->tryPop(1), std::optional<int64_t>(3));
  EXPECT_EQ(Sched->tryPop(0), std::optional<int64_t>(4));
  EXPECT_EQ(Sched->tryPop(1), std::optional<int64_t>(5));
  EXPECT_TRUE(Sched->empty());
}
