//===- tests/runtime/SubmitterTest.cpp - Batch submission entry point ---------===//

#include "runtime/Submitter.h"

#include "adt/Accumulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace comlat;

namespace {

SubmitterConfig quickConfig(unsigned Threads = 2) {
  SubmitterConfig Config;
  Config.NumThreads = Threads;
  Config.Backoff.Kind = BackoffKind::Yield;
  return Config;
}

} // namespace

TEST(SubmitterTest, CommitsAndFiresCompletionOnce) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  constexpr int N = 100;
  std::atomic<int> Completions{0};
  std::atomic<int> Commits{0};
  std::mutex SeqM;
  std::set<uint64_t> Seqs;
  {
    Submitter Sub(quickConfig(4));
    for (int I = 0; I != N; ++I)
      ASSERT_TRUE(Sub.trySubmit(
          [&Acc](Transaction &Tx) {
            if (!Acc->increment(Tx, 1))
              return;
          },
          [&](const SubmitOutcome &Outcome) {
            Completions.fetch_add(1);
            if (Outcome.Committed) {
              Commits.fetch_add(1);
              std::lock_guard<std::mutex> Guard(SeqM);
              Seqs.insert(Outcome.CommitSeq);
            }
          }));
    Sub.drain();
  }
  EXPECT_EQ(Completions.load(), N);
  EXPECT_EQ(Commits.load(), N);
  EXPECT_EQ(Acc->value(), N);
  // Commit sequence numbers are distinct and never zero for a commit.
  EXPECT_EQ(Seqs.size(), static_cast<size_t>(N));
  EXPECT_EQ(Seqs.count(0), 0u);
}

TEST(SubmitterTest, RetriesInvisiblyUntilConflictClears) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  // A reader transaction holds the accumulator in read mode, so the
  // submitted increment conflicts and must retry until the reader commits.
  Transaction Reader(1000);
  int64_t V = 0;
  ASSERT_TRUE(Acc->read(Reader, V));

  std::atomic<bool> Done{false};
  std::atomic<unsigned> SeenAborts{0};
  std::atomic<bool> SeenCommitted{false};
  Submitter Sub(quickConfig(1));
  ASSERT_TRUE(Sub.trySubmit(
      [&Acc](Transaction &Tx) {
        if (!Acc->increment(Tx, 7))
          return;
      },
      [&](const SubmitOutcome &Outcome) {
        SeenAborts.store(Outcome.Aborts);
        SeenCommitted.store(Outcome.Committed);
        Done.store(true);
      }));

  // The submission keeps aborting while the reader holds its lock; give it
  // time to demonstrate that no abort ever surfaces as a completion.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Done.load());
  EXPECT_EQ(Acc->value(), 0);

  Reader.commit();
  Sub.drain();
  EXPECT_TRUE(Done.load());
  EXPECT_TRUE(SeenCommitted.load());
  EXPECT_GE(SeenAborts.load(), 1u);
  EXPECT_EQ(Acc->value(), 7);
}

TEST(SubmitterTest, ShedsWhenPausedAndFull) {
  SubmitterConfig Config = quickConfig(1);
  Config.QueueCapacity = 2;
  Submitter Sub(Config);
  Sub.pause(); // workers will not pop, so the queue fills deterministically

  std::atomic<int> Completions{0};
  auto Body = [](Transaction &) {};
  auto Done = [&](const SubmitOutcome &) { Completions.fetch_add(1); };
  EXPECT_TRUE(Sub.trySubmit(Body, Done));
  EXPECT_TRUE(Sub.trySubmit(Body, Done));
  EXPECT_EQ(Sub.queueDepth(), 2u);
  // Queue at capacity: refused, and neither callback may ever run.
  EXPECT_FALSE(Sub.trySubmit(Body, Done));

  Sub.resume();
  Sub.drain();
  EXPECT_EQ(Completions.load(), 2);
}

TEST(SubmitterTest, MaxAttemptsFailsTerminally) {
  SubmitterConfig Config = quickConfig(1);
  Config.MaxAttempts = 3;
  Submitter Sub(Config);
  std::atomic<unsigned> BodyRuns{0};
  std::atomic<bool> Done{false};
  SubmitOutcome Final;
  ASSERT_TRUE(Sub.trySubmit(
      [&](Transaction &Tx) {
        BodyRuns.fetch_add(1);
        Tx.fail(); // never succeeds
      },
      [&](const SubmitOutcome &Outcome) {
        Final = Outcome;
        Done.store(true);
      }));
  Sub.drain();
  EXPECT_TRUE(Done.load());
  EXPECT_FALSE(Final.Committed);
  EXPECT_EQ(Final.Aborts, 3u);
  EXPECT_EQ(Final.CommitSeq, 0u);
  EXPECT_EQ(BodyRuns.load(), 3u);
}

TEST(SubmitterTest, DrainCompletesQueuedWorkAndStopsAdmission) {
  SubmitterConfig Config = quickConfig(2);
  Config.QueueCapacity = 16;
  Submitter Sub(Config);
  Sub.pause();
  std::atomic<int> Completions{0};
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Sub.trySubmit([](Transaction &) {},
                              [&](const SubmitOutcome &Outcome) {
                                EXPECT_TRUE(Outcome.Committed);
                                Completions.fetch_add(1);
                              }));
  EXPECT_EQ(Sub.queueDepth(), 5u);
  Sub.drain(); // must resume the paused workers and finish everything
  EXPECT_EQ(Completions.load(), 5);
  EXPECT_FALSE(Sub.trySubmit([](Transaction &) {}, [](const SubmitOutcome &) {}));
}

TEST(SubmitterTest, StampHookAssignsCommitSequences) {
  // The WAL hook: a StampFn replaces the internal commit-sequence counter
  // so an external allocator (the durability log) both numbers and records
  // the commit inside the commit action, while detectors are still held.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  constexpr int N = 50;
  std::atomic<uint64_t> External{1000};
  std::atomic<int> StampCalls{0};
  std::mutex SeqM;
  std::set<uint64_t> Seqs;
  {
    Submitter Sub(quickConfig(4));
    for (int I = 0; I != N; ++I)
      ASSERT_TRUE(Sub.trySubmit(
          [&Acc](Transaction &Tx) {
            if (!Acc->increment(Tx, 1))
              return;
          },
          [&](const SubmitOutcome &Outcome) {
            ASSERT_TRUE(Outcome.Committed);
            std::lock_guard<std::mutex> Guard(SeqM);
            Seqs.insert(Outcome.CommitSeq);
          },
          /*TraceTag=*/0,
          /*Stamp=*/[&]() -> uint64_t {
            StampCalls.fetch_add(1);
            return External.fetch_add(1);
          }));
    Sub.drain();
  }
  // Exactly one stamp per commit, and the outcome carries the external
  // numbering — distinct, dense, starting where the allocator started.
  EXPECT_EQ(StampCalls.load(), N);
  EXPECT_EQ(Seqs.size(), static_cast<size_t>(N));
  EXPECT_EQ(*Seqs.begin(), 1000u);
  EXPECT_EQ(*Seqs.rbegin(), 1000u + N - 1);
  EXPECT_EQ(Acc->value(), N);
}

TEST(SubmitterTest, StampHookNotCalledOnAbort) {
  SubmitterConfig Config = quickConfig(1);
  Config.MaxAttempts = 2;
  Submitter Sub(Config);
  std::atomic<int> StampCalls{0};
  std::atomic<bool> Done{false};
  ASSERT_TRUE(Sub.trySubmit([](Transaction &Tx) { Tx.fail(); },
                            [&](const SubmitOutcome &Outcome) {
                              EXPECT_FALSE(Outcome.Committed);
                              Done.store(true);
                            },
                            0, [&]() -> uint64_t {
                              StampCalls.fetch_add(1);
                              return 1;
                            }));
  Sub.drain();
  EXPECT_TRUE(Done.load());
  EXPECT_EQ(StampCalls.load(), 0); // only a commit is ever logged
}
