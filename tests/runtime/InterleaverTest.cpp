//===- tests/runtime/InterleaverTest.cpp - Deterministic schedules ------------===//

#include "adt/Accumulator.h"
#include "runtime/Interleaver.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(InterleaverTest, EnumerateSchedulesCountsMultinomial) {
  // Two scripts with 2 steps each: 4!/(2!2!) = 6 schedules.
  EXPECT_EQ(enumerateSchedules({2, 2}).size(), 6u);
  // Three scripts with 1 step each: 3! = 6.
  EXPECT_EQ(enumerateSchedules({1, 1, 1}).size(), 6u);
  // Limit caps the enumeration.
  EXPECT_EQ(enumerateSchedules({2, 2}, 4).size(), 4u);
}

TEST(InterleaverTest, SchedulesAreDistinct) {
  const auto All = enumerateSchedules({2, 1});
  ASSERT_EQ(All.size(), 3u);
  EXPECT_NE(All[0], All[1]);
  EXPECT_NE(All[1], All[2]);
  EXPECT_NE(All[0], All[2]);
}

TEST(InterleaverTest, RunsStepsInScheduleOrder) {
  std::vector<int> Log;
  std::vector<TxScript> Scripts(2);
  for (int S = 0; S != 2; ++S)
    for (int Step = 0; Step != 2; ++Step)
      Scripts[S].Steps.push_back(
          [&Log, S, Step](Transaction &) { Log.push_back(S * 10 + Step); });
  const InterleaveOutcome Out =
      runInterleaved(Scripts, {0, 1, 0, 1});
  EXPECT_TRUE(Out.Committed[0]);
  EXPECT_TRUE(Out.Committed[1]);
  const std::vector<int> Expected = {0, 10, 1, 11};
  EXPECT_EQ(Log, Expected);
}

TEST(InterleaverTest, FailedScriptAbortsAndSkipsRemainingSlots) {
  std::vector<int> Log;
  std::vector<TxScript> Scripts(2);
  Scripts[0].Steps.push_back([&Log](Transaction &Tx) {
    Log.push_back(1);
    Tx.fail();
  });
  Scripts[0].Steps.push_back([&Log](Transaction &) { Log.push_back(2); });
  Scripts[1].Steps.push_back([&Log](Transaction &) { Log.push_back(3); });
  const InterleaveOutcome Out = runInterleaved(Scripts, {0, 0, 1});
  EXPECT_FALSE(Out.Committed[0]);
  EXPECT_TRUE(Out.Committed[1]);
  const std::vector<int> Expected = {1, 3}; // Step 2 skipped.
  EXPECT_EQ(Log, Expected);
  EXPECT_EQ(Out.numCommitted(), 1u);
}

TEST(InterleaverTest, ConflictingScriptsUnderRealDetector) {
  // increment vs read on one accumulator conflicts in every interleaving
  // where both are live simultaneously; with the read first and committed
  // before the increment starts both commit.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  std::vector<TxScript> Scripts(2);
  Scripts[0].Steps.push_back(
      [&Acc](Transaction &Tx) { Acc->increment(Tx, 5); });
  Scripts[1].Steps.push_back([&Acc](Transaction &Tx) {
    int64_t V = 0;
    Acc->read(Tx, V);
  });
  // Sequential schedules: both commit.
  for (const std::vector<unsigned> Schedule :
       {std::vector<unsigned>{0, 1}, std::vector<unsigned>{1, 0}}) {
    const std::unique_ptr<TxAccumulator> Fresh = makeLockedAccumulator();
    std::vector<TxScript> S(2);
    S[0].Steps.push_back(
        [&Fresh](Transaction &Tx) { Fresh->increment(Tx, 5); });
    S[1].Steps.push_back([&Fresh](Transaction &Tx) {
      int64_t V = 0;
      Fresh->read(Tx, V);
    });
    const InterleaveOutcome Out = runInterleaved(S, Schedule);
    EXPECT_EQ(Out.numCommitted(), 2u);
  }
}

TEST(InterleaverTest, HistoriesAreRecorded) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  std::vector<TxScript> Scripts(1);
  Scripts[0].Steps.push_back(
      [&Acc](Transaction &Tx) { Acc->increment(Tx, 7); });
  const InterleaveOutcome Out = runInterleaved(Scripts, {0});
  ASSERT_EQ(Out.Txs[0]->history().size(), 1u);
  EXPECT_EQ(Out.Txs[0]->history()[0].second.Args[0], Value::integer(7));
}
