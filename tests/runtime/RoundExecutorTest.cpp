//===- tests/runtime/RoundExecutorTest.cpp - ParaMeter round model ------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedSet.h"
#include "runtime/RoundExecutor.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(RoundExecutorTest, FullyCommutingWorkIsOneRound) {
  // Increments all commute (Fig. 7): unbounded processors finish N items
  // in a single round -> parallelism N.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  std::vector<int64_t> Items;
  for (int64_t I = 0; I != 64; ++I)
    Items.push_back(I);
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run(Items, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
        Acc->increment(Tx, Item);
      });
  EXPECT_EQ(Stats.Rounds, 1u);
  EXPECT_EQ(Stats.Committed, 64u);
  EXPECT_EQ(Stats.Aborted, 0u);
  EXPECT_DOUBLE_EQ(Stats.parallelism(), 64.0);
  EXPECT_EQ(Acc->value(), 63 * 64 / 2);
}

TEST(RoundExecutorTest, GlobalLockSerializesEverything) {
  // Under the bottom spec every pair conflicts: N items need N rounds.
  const std::unique_ptr<TxSet> Set = makeLockedSet(bottomSetSpec());
  std::vector<int64_t> Items = {0, 1, 2, 3, 4, 5, 6, 7};
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run(Items, [&Set](Transaction &Tx, int64_t Item, TxWorklist &) {
        bool Res = false;
        Set->add(Tx, Item, Res);
      });
  EXPECT_EQ(Stats.Rounds, 8u);
  EXPECT_EQ(Stats.Committed, 8u);
  EXPECT_EQ(Stats.Aborted, 8u * 7 / 2);
  EXPECT_DOUBLE_EQ(Stats.parallelism(), 1.0);
  EXPECT_EQ(Set->signature(), "0,1,2,3,4,5,6,7,");
}

TEST(RoundExecutorTest, MixedConflictStructure) {
  // Items alternate increment/read on one accumulator: the round model
  // packs all increments in round 1 (reads defer), all reads in round 2.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  std::vector<int64_t> Items;
  for (int64_t I = 0; I != 10; ++I)
    Items.push_back(I);
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run(Items, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
        if (Item % 2 == 0) {
          Acc->increment(Tx, 1);
        } else {
          int64_t V = 0;
          Acc->read(Tx, V);
        }
      });
  EXPECT_EQ(Stats.Rounds, 2u);
  EXPECT_EQ(Stats.Committed, 10u);
  EXPECT_EQ(Stats.Aborted, 5u);
  EXPECT_EQ(Acc->value(), 5);
}

TEST(RoundExecutorTest, GeneratedWorkRunsInLaterRounds) {
  // Each item spawns a child; children are independent, so rounds =
  // chain depth.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run({3}, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &WL) {
        Acc->increment(Tx, 1);
        if (Item > 0)
          WL.push(Item - 1);
      });
  EXPECT_EQ(Stats.Rounds, 4u);
  EXPECT_EQ(Stats.Committed, 4u);
  EXPECT_EQ(Acc->value(), 4);
}

TEST(RoundExecutorTest, EmptyInputIsZeroRounds) {
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run({}, [](Transaction &, int64_t, TxWorklist &) {});
  EXPECT_EQ(Stats.Rounds, 0u);
  EXPECT_EQ(Stats.Committed, 0u);
  EXPECT_DOUBLE_EQ(Stats.parallelism(), 0.0);
}
