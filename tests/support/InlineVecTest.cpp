//===- tests/support/InlineVecTest.cpp - Small-buffer vector ----------------===//
//
// The transaction hot path keeps undo logs, argument lists and held-lock
// records in InlineVec; these tests pin down the storage contract the
// allocation-free steady state relies on: inline until N, spill to heap or
// to a bound arena after, capacity kept across clear(), storage dropped by
// resetStorage(), and move-only element types working through container
// moves (copies are never instantiated for them).
//
//===----------------------------------------------------------------------===//

#include "support/InlineVec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

using namespace comlat;

TEST(InlineVecTest, StaysInlineUpToN) {
  InlineVec<int, 4> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_TRUE(V.isInline());
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(InlineVecTest, SpillsToHeapBeyondN) {
  InlineVec<int, 2> V;
  for (int I = 0; I != 100; ++I)
    V.push_back(I);
  EXPECT_FALSE(V.isInline());
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(V[static_cast<size_t>(I)], I);
}

TEST(InlineVecTest, ClearKeepsSpilledCapacity) {
  InlineVec<int, 2> V;
  for (int I = 0; I != 64; ++I)
    V.push_back(I);
  const size_t Cap = V.capacity();
  ASSERT_GE(Cap, 64u);
  V.clear();
  EXPECT_TRUE(V.empty());
  // Refilling to the same size must not grow again.
  for (int I = 0; I != 64; ++I)
    V.push_back(I);
  EXPECT_EQ(V.capacity(), Cap);
}

TEST(InlineVecTest, ResetStorageReturnsToInline) {
  InlineVec<int, 2> V;
  for (int I = 0; I != 16; ++I)
    V.push_back(I);
  EXPECT_FALSE(V.isInline());
  V.resetStorage();
  EXPECT_TRUE(V.isInline());
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), 2u);
  V.push_back(7);
  EXPECT_EQ(V[0], 7);
}

TEST(InlineVecTest, ArenaBackedSpillSurvivesArenaReuseCycle) {
  BumpArena Arena;
  InlineVec<int, 2> V(&Arena);
  // Several pooled cycles: spill into the arena, read back, then shrink to
  // inline *before* the arena rewinds — the transaction pool's exact order.
  for (int Cycle = 0; Cycle != 8; ++Cycle) {
    for (int I = 0; I != 33; ++I)
      V.push_back(Cycle * 100 + I);
    EXPECT_FALSE(V.isInline());
    for (int I = 0; I != 33; ++I)
      EXPECT_EQ(V[static_cast<size_t>(I)], Cycle * 100 + I);
    V.resetStorage();
    Arena.reset();
  }
  EXPECT_TRUE(V.isInline());
}

TEST(InlineVecTest, MoveOnlyElementsSpillAndMove) {
  InlineVec<std::unique_ptr<int>, 2> V;
  for (int I = 0; I != 10; ++I)
    V.push_back(std::make_unique<int>(I));
  EXPECT_FALSE(V.isInline());

  // Container move steals the spill buffer; elements stay valid.
  InlineVec<std::unique_ptr<int>, 2> W(std::move(V));
  ASSERT_EQ(W.size(), 10u);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(*W[static_cast<size_t>(I)], I);

  // Move assignment from an inline donor moves element-wise.
  InlineVec<std::unique_ptr<int>, 2> Inline;
  Inline.push_back(std::make_unique<int>(42));
  W = std::move(Inline);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(*W[0], 42);
}

TEST(InlineVecTest, MoveFromInlineDonorLeavesDonorReusable) {
  InlineVec<std::string, 4> V;
  V.push_back("alpha");
  V.push_back("beta");
  InlineVec<std::string, 4> W(std::move(V));
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0], "alpha");
  EXPECT_EQ(W[1], "beta");
  EXPECT_TRUE(V.empty());
  V.push_back("gamma");
  EXPECT_EQ(V[0], "gamma");
}

TEST(InlineVecTest, ResizeGrowsAndShrinks) {
  InlineVec<int, 2> V;
  V.resize(5);
  EXPECT_EQ(V.size(), 5u);
  for (const int X : V)
    EXPECT_EQ(X, 0);
  V.resize(1);
  EXPECT_EQ(V.size(), 1u);
}

TEST(InlineVecTest, DestructorsRunExactlyOnce) {
  struct Probe {
    explicit Probe(int *C) : C(C) {}
    Probe(Probe &&O) noexcept : C(O.C) { O.C = nullptr; }
    Probe(const Probe &) = delete;
    ~Probe() {
      if (C)
        ++*C;
    }
    int *C;
  };
  int Destroyed = 0;
  {
    InlineVec<Probe, 2> V;
    for (int I = 0; I != 9; ++I)
      V.emplace_back(&Destroyed);
    EXPECT_EQ(Destroyed, 0); // Growth moves, never destroys live probes.
  }
  EXPECT_EQ(Destroyed, 9);
}
