//===- tests/support/OptionsTest.cpp - Command-line parser --------------------===//

#include "support/Options.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

Options parse(std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv = {"prog"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return Options(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(OptionsTest, ParsesTypedValues) {
  const Options Opts =
      parse({"--threads=8", "--qps=1500.5", "--seed=42", "--name=svc"});
  EXPECT_EQ(Opts.getInt("threads", 0), 8);
  EXPECT_EQ(Opts.getUInt("seed", 0), 42u);
  EXPECT_DOUBLE_EQ(Opts.getDouble("qps", 0), 1500.5);
  EXPECT_EQ(Opts.getString("name", ""), "svc");
  EXPECT_TRUE(Opts.has("threads"));
  EXPECT_FALSE(Opts.has("missing"));
  EXPECT_EQ(Opts.getInt("missing", -3), -3);
}

TEST(OptionsTest, BareFlagReadsAsTrue) {
  const Options Opts = parse({"--verify", "--csv=false"});
  EXPECT_TRUE(Opts.getBool("verify"));
  EXPECT_FALSE(Opts.getBool("csv"));
  EXPECT_FALSE(Opts.getBool("absent"));
  EXPECT_TRUE(Opts.getBool("absent", true));
}

TEST(OptionsTest, DuplicateFlagLastWins) {
  const Options Opts = parse({"--threads=2", "--threads=16"});
  EXPECT_EQ(Opts.getInt("threads", 0), 16);
}

TEST(OptionsTest, MissingValueIsEmptyString) {
  const Options Opts = parse({"--port-file="});
  EXPECT_TRUE(Opts.has("port-file"));
  EXPECT_EQ(Opts.getString("port-file", "default"), "");
  EXPECT_EQ(Opts.getInt("port-file", 9), 0); // strtoll("") == 0
}

TEST(OptionsTest, PositionalArgumentExits) {
  EXPECT_EXIT(parse({"batches"}), ::testing::ExitedWithCode(2),
              "unexpected positional argument");
  EXPECT_EXIT(parse({"-threads=8"}), ::testing::ExitedWithCode(2),
              "unexpected positional argument");
}

TEST(OptionsTest, CheckKnownAcceptsListedFlags) {
  const Options Opts = parse({"--port=1", "--verify"});
  Opts.checkKnown({"port", "verify", "threads"}); // must not exit
}

TEST(OptionsTest, CheckKnownRejectsTypos) {
  const Options Opts = parse({"--theads=8"});
  EXPECT_EXIT(Opts.checkKnown({"threads", "port"}),
              ::testing::ExitedWithCode(2), "unknown flag '--theads'");
}

TEST(OptionsTest, ServeAndLoadgenFlagVocabulariesParse) {
  // The flag sets the two svc binaries validate with checkKnown: keep
  // these in sync with src/svc/comlat_serve.cpp / comlat_loadgen.cpp.
  const Options Serve = parse({"--port=0", "--bind=0.0.0.0",
                               "--port-file=/tmp/p", "--io-threads=2",
                               "--workers=4", "--queue=512",
                               "--idle-timeout-ms=1000",
                               "--max-write-buffer=65536",
                               "--uf-elements=2048", "--max-attempts=10"});
  Serve.checkKnown({"port", "bind", "port-file", "io-threads", "workers",
                    "queue", "idle-timeout-ms", "max-write-buffer",
                    "uf-elements", "max-attempts"});
  EXPECT_EQ(Serve.getUInt("queue", 0), 512u);
  EXPECT_EQ(Serve.getString("bind", ""), "0.0.0.0");

  const Options Gen = parse({"--host=localhost", "--port=7411", "--threads=8",
                             "--batches=1000", "--duration=5.5", "--qps=2000",
                             "--ops-per-batch=8", "--seed=7",
                             "--keyspace=4096", "--verify", "--json=o.json",
                             "--metrics-out=m.txt"});
  Gen.checkKnown({"host", "port", "threads", "batches", "duration", "qps",
                  "ops-per-batch", "seed", "keyspace", "verify", "json",
                  "metrics-out"});
  EXPECT_DOUBLE_EQ(Gen.getDouble("duration", 0), 5.5);
  EXPECT_EQ(Gen.getUInt("seed", 0), 7u);
}
