//===- tests/support/SmallFuncTest.cpp - Move-only inline callable ----------===//
//
// Undo and commit actions are SmallFuncs; these tests pin down the
// contract the hot path depends on: small captures live inline (and move
// without touching the heap pointer), oversized captures spill to the
// heap but stay correct, move transfers ownership exactly once, and
// move-only captures (the undo-owns-a-resource case) work end to end.
//
//===----------------------------------------------------------------------===//

#include "support/SmallFunc.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

using namespace comlat;

TEST(SmallFuncTest, EmptyAndEngaged) {
  SmallFunc<int()> F;
  EXPECT_FALSE(static_cast<bool>(F));
  F = [] { return 5; };
  ASSERT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F(), 5);
  F.reset();
  EXPECT_FALSE(static_cast<bool>(F));
}

TEST(SmallFuncTest, SmallCaptureCallsThrough) {
  int X = 3;
  SmallFunc<int(int)> F = [&X](int Y) { return X + Y; };
  EXPECT_EQ(F(4), 7);
  X = 10;
  EXPECT_EQ(F(4), 14);
}

TEST(SmallFuncTest, MoveTransfersAndEmptiesSource) {
  int Calls = 0;
  SmallFunc<void()> F = [&Calls] { ++Calls; };
  SmallFunc<void()> G(std::move(F));
  EXPECT_FALSE(static_cast<bool>(F));
  ASSERT_TRUE(static_cast<bool>(G));
  G();
  EXPECT_EQ(Calls, 1);

  SmallFunc<void()> H;
  H = std::move(G);
  EXPECT_FALSE(static_cast<bool>(G));
  H();
  EXPECT_EQ(Calls, 2);
}

TEST(SmallFuncTest, MoveOnlyCaptureRunsOnce) {
  auto P = std::make_unique<int>(99);
  SmallFunc<int()> F = [P = std::move(P)] { return *P; };
  SmallFunc<int()> G = std::move(F);
  EXPECT_EQ(G(), 99);
}

TEST(SmallFuncTest, LargeCaptureSpillsToHeapAndStaysCorrect) {
  // 128 bytes of captured state: over the 48-byte inline bound by design.
  std::array<int, 32> Big;
  for (int I = 0; I != 32; ++I)
    Big[static_cast<size_t>(I)] = I;
  SmallFunc<int()> F = [Big] {
    int Sum = 0;
    for (const int X : Big)
      Sum += X;
    return Sum;
  };
  EXPECT_EQ(F(), 31 * 32 / 2);
  // Heap-mode move steals the pointer; both directions stay callable.
  SmallFunc<int()> G = std::move(F);
  EXPECT_FALSE(static_cast<bool>(F));
  EXPECT_EQ(G(), 31 * 32 / 2);
}

TEST(SmallFuncTest, CaptureDestroyedExactlyOnce) {
  struct Probe {
    explicit Probe(int *C) : C(C) {}
    Probe(Probe &&O) noexcept : C(O.C) { O.C = nullptr; }
    Probe(const Probe &O) = delete;
    ~Probe() {
      if (C)
        ++*C;
    }
    void operator()() const {}
    int *C;
  };
  int Destroyed = 0;
  {
    SmallFunc<void()> F = Probe(&Destroyed);
    SmallFunc<void()> G = std::move(F); // Inline move: move + destroy shell.
    G();
  }
  EXPECT_EQ(Destroyed, 1);

  // Heap mode: the spilled callable is deleted exactly once too.
  struct BigProbe : Probe {
    using Probe::Probe;
    unsigned char Pad[128];
  };
  Destroyed = 0;
  {
    SmallFunc<void()> F = BigProbe(&Destroyed);
    SmallFunc<void()> G = std::move(F);
    G();
    EXPECT_EQ(Destroyed, 0); // Pointer steal: no intermediate destruction.
  }
  EXPECT_EQ(Destroyed, 1);
}

TEST(SmallFuncTest, ReassignmentDropsOldCallable) {
  int DroppedA = 0, DroppedB = 0;
  struct Probe {
    explicit Probe(int *C) : C(C) {}
    Probe(Probe &&O) noexcept : C(O.C) { O.C = nullptr; }
    ~Probe() {
      if (C)
        ++*C;
    }
    void operator()() const {}
    int *C;
  };
  SmallFunc<void()> F = Probe(&DroppedA);
  F = Probe(&DroppedB);
  EXPECT_EQ(DroppedA, 1);
  EXPECT_EQ(DroppedB, 0);
}
