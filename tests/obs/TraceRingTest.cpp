//===- tests/obs/TraceRingTest.cpp - Event-ring invariants --------------------===//

#include "obs/TraceRing.h"

#include <gtest/gtest.h>

#include <thread>

using namespace comlat;
using namespace comlat::obs;

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing Ring(5);
  EXPECT_EQ(Ring.capacity(), 8u);
  TraceRing Exact(16);
  EXPECT_EQ(Exact.capacity(), 16u);
}

TEST(TraceRingTest, RetainsEventsInRecordingOrder) {
  TraceRing Ring(8);
  for (uint64_t I = 0; I != 5; ++I)
    Ring.recordAt(/*Tick=*/100 + I, EventKind::ItemPop, /*Tx=*/I,
                  /*Arg=*/static_cast<int64_t>(I * 10), 0, 0);
  const std::vector<TraceEvent> Events = Ring.snapshot();
  ASSERT_EQ(Events.size(), 5u);
  for (uint64_t I = 0; I != 5; ++I) {
    EXPECT_EQ(Events[I].Tick, 100 + I);
    EXPECT_EQ(Events[I].Tx, I);
    EXPECT_EQ(Events[I].Arg, static_cast<int64_t>(I * 10));
    EXPECT_EQ(Events[I].Kind, EventKind::ItemPop);
  }
  EXPECT_EQ(Ring.dropped(), 0u);
}

TEST(TraceRingTest, WrapKeepsTheMostRecentEvents) {
  // Observability must never become backpressure: a full ring overwrites
  // the oldest events and reports how many were lost.
  TraceRing Ring(4);
  for (uint64_t I = 0; I != 11; ++I)
    Ring.recordAt(I, EventKind::Commit, I, 0, 0, 0);
  EXPECT_EQ(Ring.recorded(), 11u);
  EXPECT_EQ(Ring.dropped(), 7u);
  const std::vector<TraceEvent> Events = Ring.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  // Oldest-first order of the surviving suffix {7, 8, 9, 10}.
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Events[I].Tx, 7 + I);
}

TEST(TraceRingTest, ResetForgetsEventsKeepsCapacity) {
  TraceRing Ring(8);
  Ring.recordAt(1, EventKind::Commit, 1, 0, 0, 0);
  Ring.reset();
  EXPECT_EQ(Ring.recorded(), 0u);
  EXPECT_TRUE(Ring.snapshot().empty());
  EXPECT_EQ(Ring.capacity(), 8u);
}

TEST(TraceRingTest, EventIsOneCacheHalfLine) {
  // The hot-path contract: one 32-byte store per event.
  static_assert(sizeof(TraceEvent) == 32, "trace event grew");
}

TEST(TraceRingTest, PackPairRoundTrips) {
  const uint32_t Packed = packPair(3, 7);
  EXPECT_EQ(pairFirst(Packed), 3u);
  EXPECT_EQ(pairSecond(Packed), 7u);
  const uint32_t Max = packPair(0xFFFF, 0xFFFE);
  EXPECT_EQ(pairFirst(Max), 0xFFFFu);
  EXPECT_EQ(pairSecond(Max), 0xFFFEu);
}

TEST(TraceSessionTest, InternAssignsStableIdsAndKinds) {
  TraceSession Session;
  const uint16_t A = Session.internLabel("set<rw>", "lock");
  const uint16_t B = Session.internLabel("kdtree-gk", "gate");
  EXPECT_NE(A, 0);
  EXPECT_NE(B, 0);
  EXPECT_NE(A, B);
  EXPECT_EQ(Session.internLabel("set<rw>", "lock"), A);
  EXPECT_EQ(Session.labelName(A), "set<rw>");
  EXPECT_EQ(Session.labelKind(A), "lock");
  EXPECT_EQ(Session.labelName(B), "kdtree-gk");
  EXPECT_EQ(Session.labelKind(B), "gate");
  // Label 0 is the reserved "no attribution" id.
  EXPECT_EQ(Session.labelName(0), "");
  EXPECT_EQ(Session.labelKind(0), "");
}

TEST(TraceSessionTest, DetailTextRegistersAndResolves) {
  TraceSession Session;
  const uint16_t L = Session.internLabel("set<rw>", "lock");
  Session.describeDetail(L, packPair(1, 2), "wr vs rd");
  EXPECT_EQ(Session.detailText(L, packPair(1, 2)), "wr vs rd");
  EXPECT_EQ(Session.detailText(L, packPair(2, 1)), "");
}

TEST(TraceSessionTest, ConcurrentWritersUseDisjointRings) {
  // Each thread records into its own ring; the session aggregates them
  // after the writers quiesce. Under TSan this validates the single-writer
  // design: no two threads ever touch the same ring.
  TraceSession Session;
  Session.arm(/*RingCapacity=*/1024);
  const unsigned NumThreads = 4;
  const uint64_t PerThread = 500;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Session, T] {
      TraceRing &Ring = Session.ringForThisThread();
      for (uint64_t I = 0; I != PerThread; ++I)
        Ring.record(EventKind::Commit, /*Tx=*/T * PerThread + I, 0, 0, 0);
    });
  for (std::thread &T : Threads)
    T.join();
  Session.disarm();

  uint64_t Total = 0;
  for (const TraceRing *Ring : Session.rings())
    Total += Ring->snapshot().size();
  EXPECT_EQ(Total, NumThreads * PerThread);
}

TEST(TraceSessionTest, GlobalMacroRecordsOnlyWhileArmed) {
  TraceSession &Session = TraceSession::global();
  // Quiesce anything earlier tests left behind.
  Session.disarm();
  Session.resetEvents();
  const auto TotalEvents = [&Session] {
    uint64_t Total = 0;
    for (const TraceRing *Ring : Session.rings())
      Total += Ring->snapshot().size();
    return Total;
  };

  COMLAT_TRACE(EventKind::Commit, 1, 0, 0, 0);
  EXPECT_EQ(TotalEvents(), 0u) << "disarmed session must not record";

  Session.arm(64);
  COMLAT_TRACE(EventKind::Commit, 2, 0, 0, 0);
  Session.disarm();
#if COMLAT_TRACING_ENABLED
  EXPECT_EQ(TotalEvents(), 1u);
#else
  EXPECT_EQ(TotalEvents(), 0u);
#endif
  Session.resetEvents();
}
