//===- tests/obs/ExportTest.cpp - Golden export formats -----------------------===//
//
// Byte-exact golden tests for the two export formats downstream tooling
// parses: the Chrome Trace Event JSON (chrome://tracing, Perfetto) and the
// ExecStats JSON rows the bench harnesses emit. recordAt() with fixed ticks
// and a fixed calibration make the documents fully deterministic.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExport.h"
#include "runtime/ExecStats.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::obs;

namespace {

/// One worker lane with an attributed abort, a retry of the same item that
/// commits, and the detector instant that explains the abort.
struct GoldenTrace {
  TraceSession Session;
  TraceRing Ring{8};
  uint16_t Label = 0;

  GoldenTrace() {
    Label = Session.internLabel("set<rw>", "lock");
    Session.describeDetail(Label, packPair(1, 2), "wr vs rd");
    Ring.setRingId(2);
    Ring.recordAt(100, EventKind::ItemPop, /*Tx=*/7, /*Item=*/42, 0, 0);
    Ring.recordAt(105, EventKind::LockConflict, 7, 0, packPair(1, 2), Label);
    Ring.recordAt(110, EventKind::Abort, 7, 42, packPair(1, 2), Label);
    Ring.recordAt(120, EventKind::ItemPop, /*Tx=*/8, /*Item=*/42, 0, 0);
    Ring.recordAt(130, EventKind::Commit, 8, 42, 0, 0);
  }

  std::string render(TraceExportResult *Res = nullptr) const {
    return TraceExport::toChromeJson({&Ring}, Session, /*TicksPerMicro=*/1.0,
                                     /*BaseTick=*/100, Res);
  }
};

} // namespace

TEST(ChromeTraceTest, GoldenDocument) {
  const GoldenTrace G;
  const std::string Expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"lock-conflict\",\"cat\":\"detector\",\"ph\":\"i\","
      "\"ts\":5.000,\"pid\":1,\"tid\":2,\"s\":\"t\",\"args\":{\"tx\":7,"
      "\"detector\":\"set<rw>\",\"why\":\"wr vs rd\"}},\n"
      "{\"name\":\"abort:lock\",\"cat\":\"iteration\",\"ph\":\"X\","
      "\"ts\":0.000,\"pid\":1,\"tid\":2,\"dur\":10.000,\"args\":{"
      "\"item\":42,\"tx\":7,\"detector\":\"set<rw>\",\"why\":\"wr vs rd\"}},"
      "\n"
      "{\"name\":\"commit\",\"cat\":\"iteration\",\"ph\":\"X\","
      "\"ts\":20.000,\"pid\":1,\"tid\":2,\"dur\":10.000,\"args\":{"
      "\"item\":42,\"tx\":8}}\n"
      "],\"otherData\":{\"events\":5,\"dropped\":0,\"aborts\":1,"
      "\"abortsAttributed\":1}}\n";
  EXPECT_EQ(G.render(), Expected);
}

TEST(ChromeTraceTest, ResultCountsAttribution) {
  const GoldenTrace G;
  TraceExportResult Res;
  G.render(&Res);
  EXPECT_EQ(Res.Events, 5u);
  EXPECT_EQ(Res.Dropped, 0u);
  EXPECT_EQ(Res.Aborts, 1u);
  EXPECT_EQ(Res.AbortsAttributed, 1u);
}

TEST(ChromeTraceTest, UserAbortIsNotAttributed) {
  TraceSession Session;
  TraceRing Ring(8);
  Ring.recordAt(10, EventKind::ItemPop, 1, 5, 0, 0);
  Ring.recordAt(20, EventKind::Abort, 1, 5, 0, /*Label=*/0);
  TraceExportResult Res;
  const std::string Json = TraceExport::toChromeJson(
      {&Ring}, Session, /*TicksPerMicro=*/1.0, /*BaseTick=*/10, &Res);
  EXPECT_EQ(Res.Aborts, 1u);
  EXPECT_EQ(Res.AbortsAttributed, 0u);
  EXPECT_NE(Json.find("\"abort:user\""), std::string::npos);
}

TEST(ChromeTraceTest, RoundEventsBecomeCounterTracks) {
  TraceSession Session;
  TraceRing Ring(8);
  Ring.recordAt(1000, EventKind::Round, /*Round=*/1, /*Available=*/64,
                /*Committed=*/60, 0);
  const std::string Json = TraceExport::toChromeJson(
      {&Ring}, Session, /*TicksPerMicro=*/1.0, /*BaseTick=*/1000, nullptr);
  EXPECT_NE(Json.find("\"name\":\"parallelism\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"available\":64"), std::string::npos);
  EXPECT_NE(Json.find("\"committed\":60"), std::string::npos);
}

TEST(ChromeTraceTest, WrappedPopDegradesToInstantOutcome) {
  // When the ring wrapped past the pop, the commit/abort cannot be a span
  // (no start time); it must still appear, as an instant.
  TraceSession Session;
  TraceRing Ring(8);
  Ring.recordAt(50, EventKind::Commit, 3, 9, 0, 0);
  const std::string Json = TraceExport::toChromeJson(
      {&Ring}, Session, /*TicksPerMicro=*/1.0, /*BaseTick=*/0, nullptr);
  EXPECT_NE(Json.find("\"name\":\"commit\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(Json.find("\"dur\""), std::string::npos);
}

TEST(ExecStatsJsonTest, GoldenRow) {
  ExecStats S;
  S.Committed = 3;
  S.Aborted = 2;
  S.AbortsByCause[static_cast<unsigned>(AbortCause::LockConflict)] = 1;
  S.AbortsByCause[static_cast<unsigned>(AbortCause::Gatekeeper)] = 1;
  S.Steals = 4;
  S.EmptyPops = 5;
  S.BackoffMicros = 6;
  S.Rounds = 7;
  S.Seconds = 0.5;
  S.CommitLatency.addMicros(1);
  S.CommitLatency.addMicros(3);
  S.CommitLatency.addMicros(5);
  const std::string Expected =
      "{\"committed\":3,\"aborted\":2,"
      "\"abortsByCause\":{\"lock\":1,\"gatekeeper\":1,\"user\":0},"
      "\"steals\":4,\"emptyPops\":5,\"backoffUs\":6,"
      "\"rounds\":7,\"seconds\":0.500000,\"abortRatio\":0.400000,"
      "\"parallelism\":0.43,\"commitLatencyUs\":{\"count\":3,"
      "\"mean\":3.00,\"p50UpperBound\":4,\"p99UpperBound\":8,"
      "\"buckets\":[1,1,1]}}";
  EXPECT_EQ(S.toJson(), Expected);
}

TEST(ExecStatsJsonTest, GoldenCsvRow) {
  ExecStats S;
  S.Committed = 10;
  S.Aborted = 1;
  S.AbortsByCause[static_cast<unsigned>(AbortCause::User)] = 1;
  S.Seconds = 0.25;
  const std::string Expected =
      "10,1,0,0,1,0,0,0,0,0.250000,0.090909,0.00,0,0";
  EXPECT_EQ(S.toCsvRow(), Expected);
  // Header and row column counts must agree.
  const std::string Header = ExecStats::csvHeader();
  const auto Count = [](const std::string &T) {
    size_t N = 1;
    for (const char C : T)
      N += C == ',';
    return N;
  };
  EXPECT_EQ(Count(Header), Count(Expected));
}

TEST(ExecStatsDeltaTest, SnapshotDifferenceIsCounterWise) {
  ExecStats Before, After;
  Before.Committed = 10;
  After.Committed = 25;
  Before.Aborted = 2;
  After.Aborted = 5;
  Before.AbortsByCause[0] = 2;
  After.AbortsByCause[0] = 4;
  After.AbortsByCause[2] = 1;
  Before.CommitLatency.addMicros(3);
  After.CommitLatency.addMicros(3);
  After.CommitLatency.addMicros(9);
  // Rounds/Seconds are engine-set, never differenced.
  Before.Rounds = 99;
  After.Rounds = 100;
  After.Seconds = 3.0;

  const ExecStats D = ExecStats::delta(Before, After);
  EXPECT_EQ(D.Committed, 15u);
  EXPECT_EQ(D.Aborted, 3u);
  EXPECT_EQ(D.AbortsByCause[0], 2u);
  EXPECT_EQ(D.AbortsByCause[2], 1u);
  EXPECT_EQ(D.Rounds, 0u);
  EXPECT_EQ(D.Seconds, 0.0);
  EXPECT_EQ(D.CommitLatency.Count, 1u);
  EXPECT_EQ(D.CommitLatency.TotalMicros, 9u);
}
