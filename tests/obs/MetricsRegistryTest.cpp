//===- tests/obs/MetricsRegistryTest.cpp - Sharded metric semantics -----------===//

#include "obs/MetricsRegistry.h"

#include <gtest/gtest.h>

#include <thread>

using namespace comlat;
using namespace comlat::obs;

TEST(MetricsRegistryTest, SameNameReturnsTheSameHandle) {
  MetricsRegistry R;
  Counter *A = R.counter("x_total");
  Counter *B = R.counter("x_total");
  EXPECT_EQ(A, B);
  Histogram *H1 = R.histogram("y_micros");
  Histogram *H2 = R.histogram("y_micros");
  EXPECT_EQ(H1, H2);
}

TEST(MetricsRegistryTest, CounterMergesShardsWrittenByManyThreads) {
  // The write side is sharded per thread; value() must present one merged
  // total regardless of which shards absorbed the adds.
  MetricsRegistry R;
  Counter *C = R.counter("mt_total");
  const unsigned NumThreads = 8;
  const uint64_t PerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([C] {
      for (uint64_t I = 0; I != PerThread; ++I)
        C->add();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C->value(), NumThreads * PerThread);
}

TEST(MetricsRegistryTest, CounterAddSupportsIncrements) {
  MetricsRegistry R;
  Counter *C = R.counter("inc_total");
  C->add(5);
  C->add(7);
  EXPECT_EQ(C->value(), 12u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry R;
  Gauge *G = R.gauge("level");
  G->set(42);
  G->set(-7);
  EXPECT_EQ(G->value(), -7);
}

TEST(MetricsRegistryTest, HistogramBucketsAreLog2) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 0u);
  EXPECT_EQ(Histogram::bucketFor(2), 1u);
  EXPECT_EQ(Histogram::bucketFor(3), 1u);
  EXPECT_EQ(Histogram::bucketFor(4), 2u);
  EXPECT_EQ(Histogram::bucketFor(1023), 9u);
  EXPECT_EQ(Histogram::bucketFor(1024), 10u);
  // The top bucket is open-ended.
  EXPECT_EQ(Histogram::bucketFor(~0ull), Histogram::NumBuckets - 1);
}

TEST(MetricsRegistryTest, HistogramSnapshotMergesShards) {
  MetricsRegistry R;
  Histogram *H = R.histogram("lat_micros");
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([H] {
      for (uint64_t I = 0; I != 100; ++I)
        H->observe(8); // bucket 3
    });
  for (std::thread &T : Threads)
    T.join();
  const HistogramSnapshot Snap = H->snapshot();
  EXPECT_EQ(Snap.Count, 400u);
  EXPECT_EQ(Snap.Sum, 3200u);
  EXPECT_EQ(Snap.Buckets[3], 400u);
  EXPECT_DOUBLE_EQ(Snap.mean(), 8.0);
  // Every sample sits in [8, 16): the p50/p99 upper bound is 16.
  EXPECT_EQ(Snap.quantileUpperBound(0.5), 16u);
  EXPECT_EQ(Snap.quantileUpperBound(0.99), 16u);
}

TEST(MetricsRegistryTest, MetricNameRendersLabelSets) {
  EXPECT_EQ(metricName("base_total", {}), "base_total");
  EXPECT_EQ(metricName("base_total", {{"a", "x"}}), "base_total{a=\"x\"}");
  EXPECT_EQ(metricName("c_total", {{"detector", "set<rw>"}, {"held", "wr"}}),
            "c_total{detector=\"set<rw>\",held=\"wr\"}");
  // Quotes and backslashes in values are escaped.
  EXPECT_EQ(metricName("q_total", {{"v", "a\"b\\c"}}),
            "q_total{v=\"a\\\"b\\\\c\"}");
}

TEST(MetricsRegistryTest, PrometheusTextExposesTypesAndValues) {
  MetricsRegistry R;
  R.counter("alpha_total")->add(3);
  R.gauge("beta")->set(-2);
  R.histogram("gamma_micros")->observe(5);
  const std::string Text = R.toPrometheusText();
  EXPECT_NE(Text.find("# TYPE alpha_total counter"), std::string::npos);
  EXPECT_NE(Text.find("alpha_total 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE beta gauge"), std::string::npos);
  EXPECT_NE(Text.find("beta -2"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE gamma_micros histogram"), std::string::npos);
  // 5 lands in [4, 8): the cumulative le="8" bucket holds it.
  EXPECT_NE(Text.find("gamma_micros_bucket{le=\"8\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("gamma_micros_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("gamma_micros_sum 5"), std::string::npos);
  EXPECT_NE(Text.find("gamma_micros_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, LabeledSeriesShareOneTypeHeader) {
  MetricsRegistry R;
  R.counter(metricName("multi_total", {{"k", "a"}}))->add(1);
  R.counter(metricName("multi_total", {{"k", "b"}}))->add(2);
  const std::string Text = R.toPrometheusText();
  // One # TYPE line for the family, both series under it.
  size_t First = Text.find("# TYPE multi_total counter");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("# TYPE multi_total counter", First + 1),
            std::string::npos);
  EXPECT_NE(Text.find("multi_total{k=\"a\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("multi_total{k=\"b\"} 2"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportIsParsableShape) {
  MetricsRegistry R;
  R.counter("j_total")->add(9);
  R.histogram("j_micros")->observe(3);
  const std::string Json = R.toJson();
  EXPECT_EQ(Json.front(), '{');
  EXPECT_NE(Json.find("\"j_total\": 9"), std::string::npos);
  EXPECT_NE(Json.find("\"j_micros\": {\"count\": 1, \"sum\": 3"),
            std::string::npos);
}
