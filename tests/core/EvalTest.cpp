//===- tests/core/EvalTest.cpp - Condition evaluation ------------------------===//

#include "core/Eval.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

namespace {

class EvalTest : public ::testing::Test {
protected:
  EvalTest()
      : Inv1(0, {Value::integer(3), Value::integer(4)}, Value::boolean(true)),
        Inv2(1, {Value::integer(3)}, Value::boolean(false)) {
    Ctx.Inv1 = &Inv1;
    Ctx.Inv2 = &Inv2;
  }

  Invocation Inv1;
  Invocation Inv2;
  EvalContext Ctx;
};

} // namespace

TEST_F(EvalTest, SlotsAndConstants) {
  EXPECT_EQ(evalTerm(arg1(0), Ctx), Value::integer(3));
  EXPECT_EQ(evalTerm(arg1(1), Ctx), Value::integer(4));
  EXPECT_EQ(evalTerm(arg2(0), Ctx), Value::integer(3));
  EXPECT_EQ(evalTerm(ret1(), Ctx), Value::boolean(true));
  EXPECT_EQ(evalTerm(ret2(), Ctx), Value::boolean(false));
  EXPECT_EQ(evalTerm(cst(int64_t{9}), Ctx), Value::integer(9));
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(evalTerm(arith(ArithOp::Add, arg1(0), arg1(1)), Ctx),
            Value::integer(7));
  EXPECT_EQ(evalTerm(arith(ArithOp::Sub, arg1(0), arg1(1)), Ctx),
            Value::integer(-1));
  EXPECT_EQ(evalTerm(arith(ArithOp::Mul, arg1(0), arg1(1)), Ctx),
            Value::integer(12));
  EXPECT_EQ(evalTerm(arith(ArithOp::Div, arg1(1), cst(int64_t{2})), Ctx),
            Value::integer(2));
  // Mixed int/real promotes to real.
  EXPECT_EQ(evalTerm(arith(ArithOp::Mul, arg1(0), cst(0.5)), Ctx),
            Value::real(1.5));
}

TEST_F(EvalTest, ApplyGoesThroughResolver) {
  FnResolver R([](const Term &Apply, ValueSpan Args) {
    EXPECT_EQ(Apply.Fn, 7u);
    EXPECT_EQ(Args.size(), 2u);
    return Value::integer(Args[0].asInt() * 10 + Args[1].asInt());
  });
  Ctx.Resolver = &R;
  EXPECT_EQ(evalTerm(apply(7, StateRef::S1, {arg1(0), arg2(0)}), Ctx),
            Value::integer(33));
}

TEST_F(EvalTest, NestedApplyResolvesInnerFirst) {
  FnResolver R([](const Term &Apply, ValueSpan Args) {
    if (Apply.Fn == 0)
      return Value::integer(Args[0].asInt() + 1);
    return Value::integer(Args[0].asInt() * 2);
  });
  Ctx.Resolver = &R;
  // f1(f0(3)) = (3+1)*2 = 8.
  EXPECT_EQ(evalTerm(apply(1, StateRef::None,
                           {apply(0, StateRef::None, {arg1(0)})}),
                     Ctx),
            Value::integer(8));
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(evalFormula(eq(arg1(0), arg2(0)), Ctx));
  EXPECT_FALSE(evalFormula(ne(arg1(0), arg2(0)), Ctx));
  EXPECT_TRUE(evalFormula(lt(arg1(0), arg1(1)), Ctx));
  EXPECT_TRUE(evalFormula(le(arg1(0), arg1(0)), Ctx));
  EXPECT_FALSE(evalFormula(gt(arg1(0), arg1(1)), Ctx));
  EXPECT_TRUE(evalFormula(ge(arg1(1), arg1(0)), Ctx));
  EXPECT_TRUE(evalFormula(eq(ret1(), cst(true)), Ctx));
  EXPECT_TRUE(evalFormula(eq(ret2(), cst(false)), Ctx));
}

TEST_F(EvalTest, Connectives) {
  EXPECT_TRUE(evalFormula(top(), Ctx));
  EXPECT_FALSE(evalFormula(bottom(), Ctx));
  EXPECT_TRUE(evalFormula(negate(bottom()), Ctx));
  EXPECT_TRUE(evalFormula(conj(top(), eq(arg1(0), arg2(0))), Ctx));
  EXPECT_FALSE(evalFormula(conj(top(), bottom()), Ctx));
  EXPECT_TRUE(evalFormula(disj(bottom(), top()), Ctx));
  EXPECT_FALSE(evalFormula(disj(bottom(), ne(arg1(0), arg2(0))), Ctx));
}

TEST_F(EvalTest, ShortCircuitSkipsResolver) {
  unsigned Calls = 0;
  FnResolver R([&Calls](const Term &, ValueSpan) {
    ++Calls;
    return Value::integer(0);
  });
  Ctx.Resolver = &R;
  const FormulaPtr F =
      disj(top(), eq(apply(0, StateRef::S1, {arg1(0)}), cst(int64_t{0})));
  EXPECT_TRUE(evalFormula(F, Ctx));
  EXPECT_EQ(Calls, 0u);
}

TEST_F(EvalTest, SetPreciseConditionSemantics) {
  // add(3)/true followed by add(3)/false: a == b and r1 != false: the
  // Fig. 2 condition must reject the pair.
  const FormulaPtr F =
      disj(ne(arg1(0), arg2(0)),
           conj(eq(ret1(), cst(false)), eq(ret2(), cst(false))));
  EXPECT_FALSE(evalFormula(F, Ctx)); // Inv1 ret true.
  // Both no-ops commute.
  Invocation A(0, {Value::integer(5)}, Value::boolean(false));
  Invocation B(0, {Value::integer(5)}, Value::boolean(false));
  EvalContext C2{&A, &B, nullptr};
  EXPECT_TRUE(evalFormula(F, C2));
  // Distinct keys commute regardless of returns.
  Invocation D(0, {Value::integer(6)}, Value::boolean(true));
  EvalContext C3{&A, &D, nullptr};
  EXPECT_TRUE(evalFormula(F, C3));
}
