//===- tests/core/ExprTest.cpp - Expression AST ------------------------------===//

#include "core/Expr.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

namespace {

DataTypeSig makeSig() {
  DataTypeSig Sig("demo");
  Sig.addMethod("m", 2, true, true);
  Sig.addStateFn("f", 1, /*Pure=*/false);
  Sig.addStateFn("g", 2, /*Pure=*/true);
  return Sig;
}

} // namespace

TEST(ExprTest, TermPrinting) {
  const DataTypeSig Sig = makeSig();
  EXPECT_EQ(arg1(0)->str(&Sig), "v1[0]");
  EXPECT_EQ(arg2(1)->str(&Sig), "v2[1]");
  EXPECT_EQ(ret1()->str(&Sig), "r1");
  EXPECT_EQ(cst(false)->str(&Sig), "false");
  const TermPtr App = apply(0, StateRef::S1, {arg1(0)});
  EXPECT_EQ(App->str(&Sig), "f(s1, v1[0])");
  const TermPtr Ar = arith(ArithOp::Add, arg1(0), cst(int64_t{2}));
  EXPECT_EQ(Ar->str(&Sig), "(v1[0] + 2)");
}

TEST(ExprTest, FormulaPrinting) {
  const DataTypeSig Sig = makeSig();
  const FormulaPtr F =
      disj(ne(arg1(0), arg2(0)), conj(eq(ret1(), cst(false)),
                                      eq(ret2(), cst(false))));
  EXPECT_EQ(F->str(&Sig),
            "(v1[0] != v2[0] || (r1 == false && r2 == false))");
}

TEST(ExprTest, StructuralKeysDistinguish) {
  EXPECT_NE(arg1(0)->key(), arg2(0)->key());
  EXPECT_NE(arg1(0)->key(), arg1(1)->key());
  EXPECT_NE(ret1()->key(), ret2()->key());
  EXPECT_NE(apply(0, StateRef::S1, {arg1(0)})->key(),
            apply(0, StateRef::S2, {arg1(0)})->key());
  EXPECT_NE(apply(0, StateRef::S1, {arg1(0)})->key(),
            apply(1, StateRef::S1, {arg1(0)})->key());
  EXPECT_EQ(eq(arg1(0), arg2(0))->key(), eq(arg1(0), arg2(0))->key());
}

TEST(ExprTest, StructuralEquality) {
  EXPECT_TRUE(structurallyEqual(eq(arg1(0), arg2(0)), eq(arg1(0), arg2(0))));
  EXPECT_FALSE(structurallyEqual(eq(arg1(0), arg2(0)), ne(arg1(0), arg2(0))));
}

TEST(ExprTest, MirrorSwapsEverything) {
  const FormulaPtr F =
      disj(ne(arg1(0), arg2(1)),
           gt(apply(0, StateRef::S1, {arg2(0)}),
              apply(1, StateRef::None, {ret1()})));
  const FormulaPtr M = mirrorFormula(F);
  const DataTypeSig Sig = makeSig();
  EXPECT_EQ(M->str(&Sig),
            "(v2[0] != v1[1] || f(s2, v1[0]) > g(r2))");
}

TEST(ExprTest, MirrorIsInvolutive) {
  const FormulaPtr F =
      conj(ne(apply(0, StateRef::S1, {arg1(0)}), ret2()),
           lt(arith(ArithOp::Mul, arg1(1), arg2(0)), cst(3.0)));
  EXPECT_TRUE(structurallyEqual(F, mirrorFormula(mirrorFormula(F))));
}

TEST(ExprTest, MentionsHelpers) {
  const TermPtr T = apply(0, StateRef::S1, {arg2(0), ret1()});
  EXPECT_TRUE(termMentionsInv(T, InvIndex::Inv1));
  EXPECT_TRUE(termMentionsInv(T, InvIndex::Inv2));
  EXPECT_TRUE(termMentionsRet(T, InvIndex::Inv1));
  EXPECT_FALSE(termMentionsRet(T, InvIndex::Inv2));
  const FormulaPtr F = eq(ret2(), cst(false));
  EXPECT_TRUE(formulaMentionsRet(F, InvIndex::Inv2));
  EXPECT_FALSE(formulaMentionsRet(F, InvIndex::Inv1));
}

TEST(ExprTest, ForEachApplyVisitsNested) {
  const FormulaPtr F =
      eq(apply(0, StateRef::S1, {apply(1, StateRef::None, {arg1(0)})}),
         arg2(0));
  unsigned Count = 0;
  forEachApply(F, [&Count](const Term &) { ++Count; });
  EXPECT_EQ(Count, 2u);
}
