//===- tests/core/SpecClassTest.cpp - First-class spec classification --------===//
//
// The SpecClassification contract: the per-pair CommClass verdicts agree
// with brute-force interpretation of the original condition formulas, the
// per-method records are consistent projections of the pair table, and
// the privatization masks single out exactly the blind, unconditionally
// self-commuting mutators on every lattice point we ship.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/ExcessCounter.h"
#include "adt/PrivSet.h"
#include "adt/SetSpecs.h"
#include "core/Eval.h"
#include "core/Spec.h"

#include <gtest/gtest.h>

#include <vector>

using namespace comlat;
using namespace comlat::dsl;

namespace {

/// Every shipped lattice point under test.
std::vector<const CommSpec *> allSpecs() {
  return {&preciseSetSpec(), &strengthenedSetSpec(), &exclusiveSetSpec(),
          &partitionedSetSpec(), &bottomSetSpec(), &accumulatorSpec(),
          &privSetSpec(), &excessSpec()};
}

/// All argument vectors over {0..3}^arity.
std::vector<std::vector<Value>> argSamples(unsigned Arity) {
  std::vector<std::vector<Value>> Out{{}};
  for (unsigned A = 0; A != Arity; ++A) {
    std::vector<std::vector<Value>> Next;
    for (const std::vector<Value> &Prefix : Out)
      for (int64_t V = 0; V != 4; ++V) {
        std::vector<Value> Ext = Prefix;
        Ext.push_back(Value::integer(V));
        Next.push_back(std::move(Ext));
      }
    Out = std::move(Next);
  }
  return Out;
}

std::vector<Value> retSamples(bool HasRet) {
  if (!HasRet)
    return {Value::none()};
  return {Value::boolean(false), Value::boolean(true)};
}

} // namespace

// Brute-force ground truth: evaluate each pair's original (unsimplified)
// condition over every argument/return combination from a small domain and
// check the classified CommClass matches — ALWAYS iff every sample is
// true, NEVER iff every sample is false, CONDITIONAL iff both occur. The
// shipped specs' conditions are all state-free (the set lattice's only
// application, part(), is pure), so formula interpretation needs no
// historical state; the domain {0..3} with part = key mod 2 exercises
// both sides of every equality and partition clause.
TEST(SpecClassTest, ClassificationAgreesWithInterpretedSpec) {
  FnResolver PartResolver([](const Term &, ValueSpan Args) {
    return Value::integer(Args[0].asInt() % 2);
  });
  for (const CommSpec *Spec : allSpecs()) {
    const DataTypeSig &Sig = Spec->sig();
    for (MethodId M1 = 0; M1 != Sig.numMethods(); ++M1)
      for (MethodId M2 = 0; M2 != Sig.numMethods(); ++M2) {
        const PairClass &PC = Spec->classifyPair(M1, M2);
        ASSERT_TRUE(PC.StateFree)
            << Spec->name() << ": unexpected impure state application";
        const FormulaPtr Cond = Spec->get(M1, M2);
        bool SawTrue = false, SawFalse = false;
        for (const std::vector<Value> &A1 : argSamples(Sig.method(M1).NumArgs))
          for (const std::vector<Value> &A2 :
               argSamples(Sig.method(M2).NumArgs))
            for (const Value &R1 : retSamples(Sig.method(M1).HasRet))
              for (const Value &R2 : retSamples(Sig.method(M2).HasRet)) {
                const Invocation I1(
                    M1, ValueSpan(A1.data(), A1.size()), R1);
                const Invocation I2(
                    M2, ValueSpan(A2.data(), A2.size()), R2);
                EvalContext Ctx{&I1, &I2, &PartResolver};
                (evalFormula(Cond, Ctx) ? SawTrue : SawFalse) = true;
              }
        switch (PC.K) {
        case CommClass::AlwaysCommutes:
          EXPECT_TRUE(SawTrue && !SawFalse)
              << Spec->name() << " (" << Sig.method(M1).Name << ", "
              << Sig.method(M2).Name << ") classified ALWAYS";
          break;
        case CommClass::NeverCommutes:
          EXPECT_TRUE(SawFalse && !SawTrue)
              << Spec->name() << " (" << Sig.method(M1).Name << ", "
              << Sig.method(M2).Name << ") classified NEVER";
          break;
        case CommClass::ConditionallyCommutes:
          EXPECT_TRUE(SawTrue && SawFalse)
              << Spec->name() << " (" << Sig.method(M1).Name << ", "
              << Sig.method(M2).Name << ") classified CONDITIONAL";
          break;
        }
      }
  }
}

// The per-method record is a projection of the pair table: Self is the
// self-pair class, and AlwaysMask bit N holds exactly when (M, N) is
// ALWAYS. Specs are symmetric, so one orientation decides.
TEST(SpecClassTest, MethodRecordsProjectPairTable) {
  for (const CommSpec *Spec : allSpecs()) {
    const DataTypeSig &Sig = Spec->sig();
    for (MethodId M = 0; M != Sig.numMethods(); ++M) {
      const MethodClass &MC = Spec->classifyMethod(M);
      EXPECT_EQ(MC.Self, Spec->classifyPair(M, M).K) << Spec->name();
      for (MethodId N = 0; N != Sig.numMethods(); ++N)
        EXPECT_EQ((MC.AlwaysMask >> N) & 1,
                  Spec->classifyPair(M, N).always() ? 1u : 0u)
            << Spec->name() << " " << Sig.method(M).Name << " vs "
            << Sig.method(N).Name;
    }
  }
}

// The privatization verdicts on the shipped lattice points. The set's add
// returns the changed bit, so no set spec privatizes anything; the three
// privatizable ADTs each divert exactly their blind mutator and block on
// everything that conditionally conflicts with it.
TEST(SpecClassTest, PrivatizationMasks) {
  for (const CommSpec *Spec : {&preciseSetSpec(), &strengthenedSetSpec(),
                               &exclusiveSetSpec(), &partitionedSetSpec(),
                               &bottomSetSpec()}) {
    EXPECT_EQ(Spec->classification().privatizableMask(), 0u) << Spec->name();
    EXPECT_EQ(Spec->classification().blockerMask(), 0u) << Spec->name();
  }

  const AccumulatorSig &AS = accumulatorSig();
  EXPECT_EQ(accumulatorSpec().classification().privatizableMask(),
            uint64_t(1) << AS.Increment);
  EXPECT_EQ(accumulatorSpec().classification().blockerMask(),
            uint64_t(1) << AS.Read);

  const PrivSetSig &PS = privSetSig();
  EXPECT_EQ(privSetSpec().classification().privatizableMask(),
            uint64_t(1) << PS.Insert);
  EXPECT_EQ(privSetSpec().classification().blockerMask(),
            (uint64_t(1) << PS.Remove) | (uint64_t(1) << PS.Contains));

  const ExcessSig &ES = excessSig();
  EXPECT_EQ(excessSpec().classification().privatizableMask(),
            uint64_t(1) << ES.AddExcess);
  EXPECT_EQ(excessSpec().classification().blockerMask(),
            uint64_t(1) << ES.ReadExcess);
}

// A method with a return value never privatizes, no matter how liberal its
// commutativity: the replica cannot produce the return without the master
// state. The blind privset insert is the same lattice condition (top)
// without the return, and does.
TEST(SpecClassTest, ReturnValueBlocksPrivatization) {
  const SetSig &SS = setSig();
  EXPECT_TRUE(preciseSetSpec().classifyPair(SS.Contains, SS.Contains).always());
  EXPECT_FALSE(preciseSetSpec().classifyMethod(SS.Contains).Privatizable);

  const PrivSetSig &PS = privSetSig();
  EXPECT_TRUE(privSetSpec().classifyPair(PS.Insert, PS.Insert).always());
  EXPECT_TRUE(privSetSpec().classifyMethod(PS.Insert).Privatizable);
  // remove also self-commutes unconditionally, but it only conditionally
  // commutes with insert, so the greedy closure (method-id order) keeps it
  // out of the privatized set and it becomes a blocker instead.
  EXPECT_TRUE(privSetSpec().classifyPair(PS.Remove, PS.Remove).always());
  EXPECT_FALSE(privSetSpec().classifyMethod(PS.Remove).Privatizable);
  EXPECT_TRUE(privSetSpec().classifyMethod(PS.Remove).PrivBlocker);
}

// set() invalidates the lazily built classification cache: re-pointing a
// pair re-derives the verdicts.
TEST(SpecClassTest, SetterInvalidatesCache) {
  DataTypeSig Sig("cache-probe");
  const MethodId Bump = Sig.addMethod("bump", 1, /*HasRet=*/false,
                                      /*Mutating=*/true);
  CommSpec Spec(&Sig, "cache-probe");
  Spec.set(Bump, Bump, top());
  EXPECT_TRUE(Spec.classifyPair(Bump, Bump).always());
  EXPECT_EQ(Spec.classification().privatizableMask(), uint64_t(1) << Bump);

  Spec.set(Bump, Bump, ne(arg1(0), arg2(0)));
  EXPECT_EQ(Spec.classifyPair(Bump, Bump).K,
            CommClass::ConditionallyCommutes);
  EXPECT_EQ(Spec.classification().privatizableMask(), 0u);

  // Copies re-derive rather than share the cache.
  const CommSpec Copy = Spec;
  EXPECT_EQ(Copy.classifyPair(Bump, Bump).K,
            CommClass::ConditionallyCommutes);
}

// Striping metadata: the key-separable disjunct and state-freeness feed
// the striped-admission analysis, so pin them on the specs that stripe.
TEST(SpecClassTest, SeparabilityMetadata) {
  const SetSig &SS = setSig();
  const PairClass &AddRemove =
      strengthenedSetSpec().classifyPair(SS.Add, SS.Remove);
  EXPECT_TRUE(AddRemove.Separable);
  EXPECT_EQ(AddRemove.KeyArg1, 0u);
  EXPECT_EQ(AddRemove.KeyArg2, 0u);

  const ExcessSig &ES = excessSig();
  const PairClass &AddRead =
      excessSpec().classifyPair(ES.AddExcess, ES.ReadExcess);
  EXPECT_TRUE(AddRead.Separable);
  EXPECT_EQ(AddRead.KeyArg1, 0u);
  EXPECT_EQ(AddRead.KeyArg2, 0u);

  // The accumulator's conflict is through the one shared cell — nothing
  // to stripe on.
  const AccumulatorSig &AS = accumulatorSig();
  EXPECT_FALSE(
      accumulatorSpec().classifyPair(AS.Increment, AS.Read).Separable);
}
