//===- tests/core/CondIRTest.cpp - Compiled condition programs ---------------===//
//
// The compiled evaluator (core/CondIR.h) replaces the tree interpreter on
// every hot path, so its one obligation is *exact* agreement with
// evalFormula — enforced here by construction-direct unit tests and a
// differential fuzzer over random formulas and invocation pairs, plus the
// validator's differential mode over the real set-lattice specifications.
//
//===----------------------------------------------------------------------===//

#include "core/CondIR.h"

#include "adt/BoostedSet.h"
#include "core/Eval.h"
#include "runtime/SpecValidator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

namespace {

Invocation inv(std::vector<Value> Args, int64_t Ret) {
  Invocation I(0, std::move(Args));
  I.Ret = Value::integer(Ret);
  return I;
}

/// A deterministic pure function for apply terms: f(x) = 2x + 1.
Value pureFn(const Term &, ValueSpan Args) {
  return Value::integer(2 * Args[0].asInt() + 1);
}

/// Evaluates \p F both ways on the same inputs and demands agreement;
/// returns the shared verdict.
bool bothWays(const FormulaPtr &F, const Invocation &Inv1,
              const Invocation &Inv2) {
  FnResolver Resolver(pureFn);
  EvalContext Ctx{&Inv1, &Inv2, &Resolver};
  const bool Interpreted = evalFormula(F, Ctx);

  CondCompiler C;
  const CondProgram P = C.compileFormula(F);
  CondProgram::Inputs In;
  In.Inv1 = CondProgram::Frame(Inv1);
  In.Inv2 = CondProgram::Frame(Inv2);
  In.Resolver = &Resolver;
  EXPECT_EQ(P.evalBool(In), Interpreted) << P.disassemble();
  return Interpreted;
}

} // namespace

TEST(CondProgram, ComparisonAndArithmetic) {
  const Invocation I1 = inv({Value::integer(3), Value::integer(4)}, 7);
  const Invocation I2 = inv({Value::integer(3), Value::integer(9)}, 12);

  EXPECT_TRUE(bothWays(eq(arg1(0), arg2(0)), I1, I2));
  EXPECT_FALSE(bothWays(eq(arg1(1), arg2(1)), I1, I2));
  EXPECT_TRUE(bothWays(eq(arith(ArithOp::Add, arg1(0), arg1(1)), ret1()),
                       I1, I2));
  EXPECT_TRUE(bothWays(lt(ret1(), ret2()), I1, I2));
  EXPECT_TRUE(
      bothWays(ge(arith(ArithOp::Mul, arg1(0), arg2(1)), cst(27)), I1, I2));
}

TEST(CondProgram, ConstantFolding) {
  CondCompiler C;
  const CondProgram T = C.compileFormula(top());
  EXPECT_TRUE(T.alwaysTrue());
  EXPECT_FALSE(T.alwaysFalse());

  CondCompiler C2;
  const CondProgram B = C2.compileFormula(bottom());
  EXPECT_TRUE(B.alwaysFalse());

  // A tautology over constants folds too (Simplify runs first).
  CondCompiler C3;
  const CondProgram F = C3.compileFormula(eq(cst(2), cst(2)));
  EXPECT_TRUE(F.alwaysTrue());
}

TEST(CondProgram, ShortCircuitSkipsApplies) {
  // x1 != x2  ∨  f(x1) == r2: when the disjunct is true the apply must
  // never fire (on the gatekeeper fast path this is the whole win).
  const FormulaPtr F =
      disj({ne(arg1(0), arg2(0)),
            eq(apply(0, StateRef::None, {arg1(0)}), ret2())});
  unsigned Calls = 0;
  FnResolver Resolver([&Calls](const Term &T, ValueSpan A) {
    ++Calls;
    return pureFn(T, A);
  });

  CondCompiler C;
  const CondProgram P = C.compileFormula(F);
  CondProgram::Inputs In;
  const Invocation I1 = inv({Value::integer(1)}, 0);
  const Invocation I2 = inv({Value::integer(2)}, 0);
  In.Inv1 = CondProgram::Frame(I1);
  In.Inv2 = CondProgram::Frame(I2);
  In.Resolver = &Resolver;
  EXPECT_TRUE(P.evalBool(In));
  EXPECT_EQ(Calls, 0u);

  // Equal keys: the second disjunct runs, f(1) = 3 == r2.
  const Invocation I3 = inv({Value::integer(1)}, 3);
  In.Inv2 = CondProgram::Frame(I3);
  EXPECT_TRUE(P.evalBool(In));
  EXPECT_EQ(Calls, 1u);
}

TEST(CondProgram, AppliesAreMemoizedPerEvaluation) {
  // The same application twice: one resolver call, one apply slot.
  const TermPtr App = apply(0, StateRef::None, {arg1(0)});
  const FormulaPtr F = conj({ge(App, cst(0)), le(App, cst(100))});
  unsigned Calls = 0;
  FnResolver Resolver([&Calls](const Term &T, ValueSpan A) {
    ++Calls;
    return pureFn(T, A);
  });

  CondCompiler C;
  const CondProgram P = C.compileFormula(F);
  EXPECT_EQ(P.applySlots().size(), 1u);
  CondProgram::Inputs In;
  const Invocation I1 = inv({Value::integer(5)}, 0);
  In.Inv1 = CondProgram::Frame(I1);
  In.Inv2 = CondProgram::Frame(I1);
  In.Resolver = &Resolver;
  EXPECT_TRUE(P.evalBool(In));
  EXPECT_EQ(Calls, 1u);

  // Memoization is per evaluation, not per program.
  EXPECT_TRUE(P.evalBool(In));
  EXPECT_EQ(Calls, 2u);
}

TEST(CondProgram, ExternalSlotsReplaceApplies) {
  // Binding the apply term as external slot 0 turns it into an indexed
  // load; no resolver is needed at all.
  const TermPtr App = apply(0, StateRef::S1, {arg1(0)});
  const FormulaPtr F = eq(App, ret2());

  CondCompiler C;
  C.bindExternal(App, 0);
  const CondProgram P = C.compileFormula(F);
  EXPECT_TRUE(P.applySlots().empty());
  EXPECT_EQ(P.numExternalSlots(), 1u);

  const Value Ext[] = {Value::integer(42)};
  CondProgram::Inputs In;
  const Invocation I1 = inv({Value::integer(5)}, 0);
  const Invocation I2 = inv({Value::integer(5)}, 42);
  In.Inv1 = CondProgram::Frame(I1);
  In.Inv2 = CondProgram::Frame(I2);
  In.Ext = Ext;
  In.NumExt = 1;
  EXPECT_TRUE(P.evalBool(In));

  const Invocation I3 = inv({Value::integer(5)}, 41);
  In.Inv2 = CondProgram::Frame(I3);
  EXPECT_FALSE(P.evalBool(In));
}

TEST(CondProgram, KeySeparability) {
  // The set-lattice shape: a top-level disjunct `x != y`.
  CondCompiler C;
  const CondProgram P = C.compileFormula(
      disj({ne(arg1(0), arg2(0)), eq(ret1(), ret2())}));
  EXPECT_TRUE(P.keySeparability().Separable);
  EXPECT_EQ(P.keySeparability().Arg1, 0u);
  EXPECT_EQ(P.keySeparability().Arg2, 0u);

  // Key-function clauses separate classes, not keys: not separable.
  const KeySeparability K1 = analyzeKeySeparability(
      ne(apply(0, StateRef::None, {arg1(0)}),
         apply(0, StateRef::None, {arg2(0)})));
  EXPECT_FALSE(K1.Separable);

  // Equality does not separate.
  EXPECT_FALSE(analyzeKeySeparability(eq(arg1(0), arg2(0))).Separable);

  // Both orientations of the disequality are recognized.
  EXPECT_TRUE(analyzeKeySeparability(ne(arg2(1), arg1(0))).Separable);
}

TEST(CondProgram, CompiledKeyTerms) {
  // The abstract-lock key shape: k(arg0), pure.
  CondCompiler C;
  const CondProgram P =
      C.compileTerm(apply(0, StateRef::None, {arg1(1)}));
  FnResolver Resolver(pureFn);
  CondProgram::Inputs In;
  const Invocation I1 = inv({Value::integer(3), Value::integer(10)}, 0);
  In.Inv1 = CondProgram::Frame(I1);
  In.Resolver = &Resolver;
  EXPECT_EQ(P.eval(In).asInt(), 21);
}

//===----------------------------------------------------------------------===//
// Differential fuzz: random formulas, random invocation pairs
//===----------------------------------------------------------------------===//

namespace {

TermPtr randomTerm(Rng &R, unsigned Depth) {
  const unsigned NumKinds = Depth == 0 ? 4 : 6;
  switch (R.nextBelow(NumKinds)) {
  case 0:
    return arg1(static_cast<unsigned>(R.nextBelow(2)));
  case 1:
    return arg2(static_cast<unsigned>(R.nextBelow(2)));
  case 2:
    return cst(static_cast<int64_t>(R.nextBelow(7)) - 3);
  case 3:
    return R.nextBelow(2) ? ret1() : ret2();
  case 4: {
    // Div excluded: the fuzz would mostly test divide-by-zero handling.
    static const ArithOp Ops[] = {ArithOp::Add, ArithOp::Sub, ArithOp::Mul};
    return arith(Ops[R.nextBelow(3)], randomTerm(R, Depth - 1),
                 randomTerm(R, Depth - 1));
  }
  default:
    return apply(0, StateRef::None, {randomTerm(R, Depth - 1)});
  }
}

FormulaPtr randomFormula(Rng &R, unsigned Depth) {
  static const CmpOp Cmps[] = {CmpOp::EQ, CmpOp::NE, CmpOp::LT,
                               CmpOp::LE, CmpOp::GT, CmpOp::GE};
  if (Depth == 0 || R.nextBelow(3) == 0)
    return cmp(Cmps[R.nextBelow(6)], randomTerm(R, 2), randomTerm(R, 2));
  switch (R.nextBelow(4)) {
  case 0:
    return R.nextBelow(8) == 0 ? top() : bottom();
  case 1:
    return negate(randomFormula(R, Depth - 1));
  case 2:
    return conj({randomFormula(R, Depth - 1), randomFormula(R, Depth - 1)});
  default:
    return disj({randomFormula(R, Depth - 1), randomFormula(R, Depth - 1)});
  }
}

} // namespace

TEST(CondIRDifferential, RandomFormulasAgreeWithInterpreter) {
  Rng R(0xC0DE);
  unsigned True = 0, Total = 0;
  for (unsigned F = 0; F != 400; ++F) {
    const FormulaPtr Formula = randomFormula(R, 3);
    for (unsigned Pair = 0; Pair != 8; ++Pair) {
      const auto RandInv = [&R] {
        return inv({Value::integer(static_cast<int64_t>(R.nextBelow(5)) - 2),
                    Value::integer(static_cast<int64_t>(R.nextBelow(5)) - 2)},
                   static_cast<int64_t>(R.nextBelow(9)) - 4);
      };
      ++Total;
      if (bothWays(Formula, RandInv(), RandInv()))
        ++True;
    }
  }
  // The fuzz must exercise both verdicts, not collapse to one.
  EXPECT_GT(True, 0u);
  EXPECT_LT(True, Total);
}

TEST(CondIRDifferential, SetLatticeSpecsAgreeUnderValidator) {
  // The validator's differential mode re-checks compiled-vs-interpreted
  // agreement on every trial of every real set specification, with state
  // functions resolved against live frozen structures.
  const ValidationHarness Harness = setValidationHarness(/*KeySpace=*/6);
  ValidationConfig Config;
  Config.Trials = 600;
  Config.Differential = true;
  for (const CommSpec *Spec :
       {&preciseSetSpec(), &strengthenedSetSpec(), &exclusiveSetSpec(),
        &partitionedSetSpec(), &bottomSetSpec()}) {
    const std::optional<ValidationIssue> Issue =
        validateSpec(*Spec, Harness, Config);
    EXPECT_FALSE(Issue.has_value())
        << Spec->name() << ": " << Issue->str(Spec->sig());
  }
}
