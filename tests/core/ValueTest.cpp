//===- tests/core/ValueTest.cpp - Value semantics ---------------------------===//

#include "core/Value.h"

#include <gtest/gtest.h>

#include <map>

using namespace comlat;

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::none().isNone());
  EXPECT_TRUE(Value::boolean(true).isBool());
  EXPECT_TRUE(Value::integer(3).isInt());
  EXPECT_TRUE(Value::real(2.5).isReal());
  EXPECT_TRUE(Value::boolean(true).asBool());
  EXPECT_FALSE(Value::boolean(false).asBool());
  EXPECT_EQ(Value::integer(-7).asInt(), -7);
  EXPECT_DOUBLE_EQ(Value::real(2.5).asReal(), 2.5);
}

TEST(ValueTest, EqualitySameKind) {
  EXPECT_EQ(Value::none(), Value::none());
  EXPECT_EQ(Value::boolean(true), Value::boolean(true));
  EXPECT_NE(Value::boolean(true), Value::boolean(false));
  EXPECT_EQ(Value::integer(5), Value::integer(5));
  EXPECT_NE(Value::integer(5), Value::integer(6));
  EXPECT_EQ(Value::real(1.5), Value::real(1.5));
  EXPECT_NE(Value::real(1.5), Value::real(1.25));
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_EQ(Value::integer(3), Value::real(3.0));
  EXPECT_EQ(Value::real(3.0), Value::integer(3));
  EXPECT_NE(Value::integer(3), Value::real(3.5));
}

TEST(ValueTest, NonNumericCrossKindNeverEqual) {
  EXPECT_NE(Value::none(), Value::integer(0));
  EXPECT_NE(Value::boolean(false), Value::integer(0));
  EXPECT_NE(Value::boolean(true), Value::integer(1));
}

TEST(ValueTest, AsNumberPromotes) {
  EXPECT_DOUBLE_EQ(Value::integer(4).asNumber(), 4.0);
  EXPECT_DOUBLE_EQ(Value::real(4.5).asNumber(), 4.5);
}

TEST(ValueTest, TotalOrderUsableAsMapKey) {
  std::map<Value, int> M;
  M[Value::integer(1)] = 1;
  M[Value::integer(2)] = 2;
  M[Value::boolean(true)] = 3;
  M[Value::none()] = 4;
  M[Value::real(1.0)] = 5;
  EXPECT_EQ(M.size(), 5u);
  EXPECT_EQ(M[Value::integer(1)], 1);
  EXPECT_EQ(M[Value::real(1.0)], 5);
}

TEST(ValueTest, OrderIsStrictWeak) {
  const Value Vs[] = {Value::none(), Value::boolean(false),
                      Value::boolean(true), Value::integer(-1),
                      Value::integer(7), Value::real(0.5)};
  for (const Value &A : Vs) {
    EXPECT_FALSE(A < A);
    for (const Value &B : Vs) {
      if (A < B)
        EXPECT_FALSE(B < A);
    }
  }
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::integer(1).hash(), Value::boolean(true).hash());
  EXPECT_NE(Value::integer(0).hash(), Value::none().hash());
  EXPECT_EQ(Value::integer(42).hash(), Value::integer(42).hash());
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(Value::none().str(), "()");
  EXPECT_EQ(Value::boolean(true).str(), "true");
  EXPECT_EQ(Value::boolean(false).str(), "false");
  EXPECT_EQ(Value::integer(-12).str(), "-12");
  EXPECT_EQ(Value::real(2.5).str(), "2.5");
}
