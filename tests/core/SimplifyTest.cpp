//===- tests/core/SimplifyTest.cpp - Formula normalization --------------------===//

#include "core/Simplify.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_TRUE(simplify(eq(cst(int64_t{3}), cst(int64_t{3})))->isTrue());
  EXPECT_TRUE(simplify(eq(cst(int64_t{3}), cst(int64_t{4})))->isFalse());
  EXPECT_TRUE(simplify(lt(cst(int64_t{3}), cst(int64_t{4})))->isTrue());
  EXPECT_TRUE(simplify(ge(cst(1.0), cst(2.0)))->isFalse());
  EXPECT_TRUE(simplify(eq(cst(true), cst(false)))->isFalse());
}

TEST(SimplifyTest, IdenticalTermComparisons) {
  EXPECT_TRUE(simplify(eq(arg1(0), arg1(0)))->isTrue());
  EXPECT_TRUE(simplify(ne(arg1(0), arg1(0)))->isFalse());
  EXPECT_TRUE(simplify(le(ret2(), ret2()))->isTrue());
  EXPECT_TRUE(simplify(lt(ret2(), ret2()))->isFalse());
}

TEST(SimplifyTest, NegationRules) {
  EXPECT_TRUE(simplify(negate(top()))->isFalse());
  EXPECT_TRUE(simplify(negate(bottom()))->isTrue());
  // Double negation.
  const FormulaPtr F = ne(arg1(0), arg2(0));
  EXPECT_TRUE(structurallyEqual(simplify(negate(negate(F))), simplify(F)));
  // Negated comparison flips the operator.
  EXPECT_TRUE(structurallyEqual(simplify(negate(eq(arg1(0), arg2(0)))),
                                simplify(ne(arg1(0), arg2(0)))));
  EXPECT_TRUE(structurallyEqual(simplify(negate(lt(arg1(0), arg2(0)))),
                                simplify(ge(arg1(0), arg2(0)))));
}

TEST(SimplifyTest, JunctionIdentityAndAbsorption) {
  const FormulaPtr F = ne(arg1(0), arg2(0));
  EXPECT_TRUE(structurallyEqual(simplify(conj(F, top())), simplify(F)));
  EXPECT_TRUE(simplify(conj(F, bottom()))->isFalse());
  EXPECT_TRUE(structurallyEqual(simplify(disj(F, bottom())), simplify(F)));
  EXPECT_TRUE(simplify(disj(F, top()))->isTrue());
}

TEST(SimplifyTest, FlattensAndDeduplicates) {
  const FormulaPtr A = ne(arg1(0), arg2(0));
  const FormulaPtr B = ne(arg1(1), arg2(1));
  const FormulaPtr Nested = conj(A, conj(B, A));
  const FormulaPtr S = simplify(Nested);
  ASSERT_EQ(S->K, Formula::Kind::And);
  EXPECT_EQ(S->Kids.size(), 2u);
}

TEST(SimplifyTest, SingleChildCollapses) {
  const FormulaPtr A = ne(arg1(0), arg2(0));
  EXPECT_TRUE(structurallyEqual(simplify(conj(A, A)), simplify(A)));
  EXPECT_TRUE(structurallyEqual(simplify(disj(A, A)), simplify(A)));
}

TEST(SimplifyTest, CanonicalChildOrder) {
  const FormulaPtr A = ne(arg1(0), arg2(0));
  const FormulaPtr B = ne(arg1(1), arg2(1));
  EXPECT_TRUE(structurallyEqual(simplify(conj(A, B)), simplify(conj(B, A))));
  EXPECT_TRUE(structurallyEqual(simplify(disj(A, B)), simplify(disj(B, A))));
}

TEST(SimplifyTest, SymmetricCmpOperandOrder) {
  EXPECT_TRUE(structurallyEqual(simplify(eq(arg2(0), arg1(0))),
                                simplify(eq(arg1(0), arg2(0)))));
  EXPECT_TRUE(structurallyEqual(simplify(ne(arg2(0), arg1(0))),
                                simplify(ne(arg1(0), arg2(0)))));
}

TEST(SimplifyTest, Idempotent) {
  const FormulaPtr F = disj(
      conj(ne(arg1(0), arg2(0)), top(), negate(negate(eq(ret1(), cst(false))))),
      bottom(), conj(eq(cst(int64_t{1}), cst(int64_t{1})), ne(arg1(1), arg2(1))));
  const FormulaPtr S1 = simplify(F);
  const FormulaPtr S2 = simplify(S1);
  EXPECT_TRUE(structurallyEqual(S1, S2));
}
