//===- tests/core/LatticeTest.cpp - Lattice operations -------------------------===//

#include "adt/BoostedKdTree.h"
#include "adt/SetSpecs.h"
#include "core/Lattice.h"
#include "core/Simplify.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

TEST(LatticeTest, SimpleFragmentExactImplication) {
  const DataTypeSig &Sig = setSig().Sig;
  const FormulaPtr A = ne(arg1(0), arg2(0));
  const FormulaPtr B = ne(arg1(1), arg2(1));
  // More conjuncts = stronger.
  EXPECT_EQ(implies(conj(A, B), A, Sig), Tri::Yes);
  EXPECT_EQ(implies(A, conj(A, B), Sig), Tri::No);
  EXPECT_EQ(implies(A, B, Sig), Tri::No);
  EXPECT_EQ(implies(bottom(), A, Sig), Tri::Yes);
  EXPECT_EQ(implies(A, top(), Sig), Tri::Yes);
  EXPECT_EQ(implies(top(), A, Sig), Tri::No);
  EXPECT_EQ(implies(A, bottom(), Sig), Tri::No);
}

TEST(LatticeTest, KeyedClauseImpliesPlainClause) {
  // part(a) != part(b) implies a != b but not vice versa.
  const SetSig &S = setSig();
  const FormulaPtr Keyed = ne(apply(S.Part, StateRef::None, {arg1(0)}),
                              apply(S.Part, StateRef::None, {arg2(0)}));
  const FormulaPtr Plain = ne(arg1(0), arg2(0));
  EXPECT_EQ(implies(Keyed, Plain, S.Sig), Tri::Yes);
  EXPECT_EQ(implies(Plain, Keyed, S.Sig), Tri::No);
}

TEST(LatticeTest, DropDisjunctStructuralRule) {
  const DataTypeSig &Sig = setSig().Sig;
  const FormulaPtr Clause = ne(arg1(0), arg2(0));
  const FormulaPtr Full =
      disj(Clause, conj(eq(ret1(), cst(false)), eq(ret2(), cst(false))));
  EXPECT_EQ(implies(Clause, Full, Sig), Tri::Yes);
  EXPECT_EQ(implies(Full, Clause, Sig), Tri::No);
}

TEST(LatticeTest, RandomRefutationOnStateFunctions) {
  // f(s1, a) != f(s2, a) is satisfiable under uninterpreted functions, so
  // "true implies f(s1,a) == f(s2,a)" must be refuted.
  DataTypeSig Sig("t");
  const StateFnId F = Sig.addStateFn("f", 1, /*Pure=*/false);
  const FormulaPtr Eq = eq(apply(F, StateRef::S1, {arg1(0)}),
                           apply(F, StateRef::S2, {arg1(0)}));
  EXPECT_EQ(implies(top(), Eq, Sig), Tri::No);
}

TEST(LatticeTest, SpecOrderOfTheSetLattice) {
  // bottom <= partitioned <= strengthened <= precise, and exclusive lies
  // between bottom and strengthened.
  EXPECT_EQ(specLeq(bottomSetSpec(), partitionedSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(partitionedSetSpec(), strengthenedSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(strengthenedSetSpec(), preciseSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(exclusiveSetSpec(), strengthenedSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(bottomSetSpec(), exclusiveSetSpec()), Tri::Yes);
  // And strictly so.
  EXPECT_EQ(specLeq(preciseSetSpec(), strengthenedSetSpec()), Tri::No);
  EXPECT_EQ(specLeq(strengthenedSetSpec(), partitionedSetSpec()), Tri::No);
  EXPECT_EQ(specLeq(strengthenedSetSpec(), exclusiveSetSpec()), Tri::No);
  EXPECT_EQ(specLeq(partitionedSetSpec(), bottomSetSpec()), Tri::No);
}

TEST(LatticeTest, JoinMeetBounds) {
  const CommSpec &A = exclusiveSetSpec();
  const CommSpec &B = partitionedSetSpec();
  const CommSpec J = specJoin(A, B, "join");
  const CommSpec M = specMeet(A, B, "meet");
  EXPECT_EQ(specLeq(A, J), Tri::Yes);
  EXPECT_EQ(specLeq(B, J), Tri::Yes);
  EXPECT_EQ(specLeq(M, A), Tri::Yes);
  EXPECT_EQ(specLeq(M, B), Tri::Yes);
}

TEST(LatticeTest, JoinMeetIdempotentOnEqualSpecs) {
  const CommSpec &A = strengthenedSetSpec();
  const CommSpec J = specJoin(A, A, "jj");
  const CommSpec M = specMeet(A, A, "mm");
  EXPECT_EQ(specLeq(J, A), Tri::Yes);
  EXPECT_EQ(specLeq(A, J), Tri::Yes);
  EXPECT_EQ(specLeq(M, A), Tri::Yes);
  EXPECT_EQ(specLeq(A, M), Tri::Yes);
}

TEST(LatticeTest, LeqReflexiveTransitive) {
  const CommSpec *Chain[] = {&bottomSetSpec(), &partitionedSetSpec(),
                             &strengthenedSetSpec(), &preciseSetSpec()};
  for (const CommSpec *S : Chain)
    EXPECT_EQ(specLeq(*S, *S), Tri::Yes);
  // Transitivity along the chain.
  EXPECT_EQ(specLeq(*Chain[0], *Chain[3]), Tri::Yes);
  EXPECT_EQ(specLeq(*Chain[1], *Chain[3]), Tri::Yes);
}

TEST(LatticeTest, SimpleUnderApproxDerivesFig3) {
  // The mechanical strengthening of the precise set spec is exactly the
  // Fig. 3 spec (asserted pointwise, both directions).
  const CommSpec Derived =
      simpleUnderApproxSpec(preciseSetSpec(), "derived");
  const SetSig &S = setSig();
  for (MethodId M1 = 0; M1 != S.Sig.numMethods(); ++M1)
    for (MethodId M2 = 0; M2 != S.Sig.numMethods(); ++M2)
      EXPECT_TRUE(structurallyEqual(
          simplify(Derived.get(M1, M2)),
          simplify(strengthenedSetSpec().get(M1, M2))))
          << "pair (" << M1 << ", " << M2 << ")";
  EXPECT_EQ(Derived.classify(), ConditionClass::Simple);
}

TEST(LatticeTest, SimpleUnderApproxOfKdSpec) {
  // The kd-tree has no useful SIMPLE under-approximation for nearest~add:
  // pruning must collapse it to false (the paper's §5 remark).
  const KdSig &K = kdSig();
  const FormulaPtr F =
      simpleUnderApprox(kdSpec().get(K.Nearest, K.Add), K.Sig);
  EXPECT_TRUE(F->isFalse());
  // While add~add keeps its key clause.
  const FormulaPtr G = simpleUnderApprox(kdSpec().get(K.Add, K.Add), K.Sig);
  EXPECT_FALSE(G->isFalse());
  EXPECT_TRUE(tryGetSimple(G, K.Sig).has_value());
}

TEST(LatticeTest, UnderApproxAlwaysImplies) {
  const CommSpec &Spec = preciseSetSpec();
  const unsigned N = Spec.sig().numMethods();
  for (MethodId M1 = 0; M1 != N; ++M1)
    for (MethodId M2 = 0; M2 != N; ++M2) {
      const FormulaPtr Under =
          simpleUnderApprox(Spec.get(M1, M2), Spec.sig());
      EXPECT_NE(implies(Under, Spec.get(M1, M2), Spec.sig()), Tri::No);
    }
}

TEST(LatticeTest, BottomIsLeastAmongTested) {
  const CommSpec Bot = bottomSpec(setSig().Sig, "bot");
  EXPECT_EQ(specLeq(Bot, preciseSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(Bot, bottomSetSpec()), Tri::Yes);
  EXPECT_EQ(specLeq(preciseSetSpec(), Bot), Tri::No);
}

TEST(LatticeTest, PartitionSpecKeepsTrueConditions) {
  // contains ~ contains stays true through the partition transform.
  const SetSig &S = setSig();
  EXPECT_TRUE(partitionedSetSpec().get(S.Contains, S.Contains)->isTrue());
}
