//===- tests/core/SpecTest.cpp - Specification storage -------------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedKdTree.h"
#include "adt/BoostedUnionFind.h"
#include "adt/FlowGraph.h"
#include "adt/SetSpecs.h"
#include "core/Eval.h"
#include "core/Simplify.h"
#include "core/Spec.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

TEST(SpecTest, CompletenessOfPaperSpecs) {
  EXPECT_TRUE(preciseSetSpec().isComplete());
  EXPECT_TRUE(strengthenedSetSpec().isComplete());
  EXPECT_TRUE(exclusiveSetSpec().isComplete());
  EXPECT_TRUE(partitionedSetSpec().isComplete());
  EXPECT_TRUE(bottomSetSpec().isComplete());
  EXPECT_TRUE(accumulatorSpec().isComplete());
  EXPECT_TRUE(kdSpec().isComplete());
  EXPECT_TRUE(ufSpec().isComplete());
  EXPECT_TRUE(mlFlowSpec().isComplete());
  EXPECT_TRUE(exFlowSpec().isComplete());
  EXPECT_TRUE(partFlowSpec().isComplete());
}

TEST(SpecTest, MirroredRetrieval) {
  const UfSig &U = ufSig();
  // (Union, Find) is stored; (Find, Union) must be the mirror.
  const FormulaPtr Stored = ufSpec().get(U.Union, U.Find);
  const FormulaPtr Mirrored = ufSpec().get(U.Find, U.Union);
  EXPECT_TRUE(structurallyEqual(mirrorFormula(Stored), Mirrored) ||
              // Simplification may reorder; compare via double mirror.
              structurallyEqual(Stored, mirrorFormula(Mirrored)));
}

TEST(SpecTest, SetStoredInEitherOrientation) {
  const SetSig &S = setSig();
  CommSpec Spec(&S.Sig, "orient");
  // Define (Contains, Add) even though Contains > Add; retrieval in both
  // orientations must agree semantically.
  Spec.set(S.Contains, S.Add, disj(ne(arg1(0), arg2(0)),
                                   eq(ret2(), cst(false))));
  const FormulaPtr AddContains = Spec.get(S.Add, S.Contains);
  const FormulaPtr ContainsAdd = Spec.get(S.Contains, S.Add);
  // add(3)/true (mutating) vs contains(3)/true must be rejected in both
  // orientations; distinct keys accepted.
  Invocation Add(S.Add, {Value::integer(3)}, Value::boolean(true));
  Invocation Has(S.Contains, {Value::integer(3)}, Value::boolean(true));
  {
    EvalContext Ctx{&Add, &Has, nullptr};
    EXPECT_FALSE(evalFormula(AddContains, Ctx));
  }
  {
    EvalContext Ctx{&Has, &Add, nullptr};
    EXPECT_FALSE(evalFormula(ContainsAdd, Ctx));
  }
  Invocation Has2(S.Contains, {Value::integer(4)}, Value::boolean(false));
  {
    EvalContext Ctx{&Add, &Has2, nullptr};
    EXPECT_TRUE(evalFormula(AddContains, Ctx));
  }
}

TEST(SpecTest, SelfPairsAreMirrorSymmetric) {
  // Self-pair conditions are used for either execution order, so swapping
  // the invocations must not change the verdict.
  const struct {
    const CommSpec *Spec;
    MethodId M;
  } Cases[] = {
      {&preciseSetSpec(), setSig().Add},
      {&preciseSetSpec(), setSig().Remove},
      {&strengthenedSetSpec(), setSig().Add},
      {&kdSpec(), kdSig().Add},
      {&mlFlowSpec(), flowSig().PushFlow},
  };
  for (const auto &C : Cases) {
    const FormulaPtr F = C.Spec->get(C.M, C.M);
    const FormulaPtr M = simplify(mirrorFormula(F));
    EXPECT_TRUE(structurallyEqual(simplify(F), M))
        << C.Spec->name() << " self-pair for method " << C.M
        << " is not mirror-symmetric: " << F->str() << " vs " << M->str();
  }
}

TEST(SpecTest, StrDumpsAllConditions) {
  const std::string Dump = preciseSetSpec().str();
  EXPECT_NE(Dump.find("add ~ add"), std::string::npos);
  EXPECT_NE(Dump.find("contains ~ contains"), std::string::npos);
  EXPECT_NE(Dump.find("ONLINE-CHECKABLE"), std::string::npos);
}

TEST(SpecTest, AccumulatorSpecMatchesFig7) {
  const AccumulatorSig &A = accumulatorSig();
  EXPECT_TRUE(accumulatorSpec().get(A.Increment, A.Increment)->isTrue());
  EXPECT_TRUE(accumulatorSpec().get(A.Increment, A.Read)->isFalse());
  EXPECT_TRUE(accumulatorSpec().get(A.Read, A.Increment)->isFalse());
  EXPECT_TRUE(accumulatorSpec().get(A.Read, A.Read)->isTrue());
}
