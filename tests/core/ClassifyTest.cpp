//===- tests/core/ClassifyTest.cpp - SIMPLE / ONLINE-CHECKABLE -----------------===//

#include "adt/BoostedKdTree.h"
#include "adt/BoostedUnionFind.h"
#include "adt/SetSpecs.h"
#include "core/Classify.h"

#include <gtest/gtest.h>

using namespace comlat;
using namespace comlat::dsl;

TEST(ClassifyTest, TrueFalseAreSimple) {
  const DataTypeSig &Sig = setSig().Sig;
  auto T = tryGetSimple(top(), Sig);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->K, SimpleForm::Kind::True);
  auto F = tryGetSimple(bottom(), Sig);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->K, SimpleForm::Kind::False);
}

TEST(ClassifyTest, DisequalityClauseIsSimple) {
  const DataTypeSig &Sig = setSig().Sig;
  auto F = tryGetSimple(ne(arg1(0), arg2(0)), Sig);
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->Clauses.size(), 1u);
  EXPECT_FALSE(F->Clauses[0].Lhs.IsRet);
  EXPECT_EQ(F->Clauses[0].Lhs.ArgIndex, 0u);
  EXPECT_FALSE(F->Clauses[0].KeyFn.has_value());
}

TEST(ClassifyTest, OrientationNormalized) {
  const DataTypeSig &Sig = setSig().Sig;
  // v2 on the left still yields an Inv1-first clause.
  auto F = tryGetSimple(ne(arg2(0), arg1(1)), Sig);
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->Clauses.size(), 1u);
  EXPECT_EQ(F->Clauses[0].Lhs.ArgIndex, 1u);
  EXPECT_EQ(F->Clauses[0].Rhs.ArgIndex, 0u);
}

TEST(ClassifyTest, ReturnSlotsAllowed) {
  const DataTypeSig &Sig = setSig().Sig;
  auto F = tryGetSimple(ne(ret1(), arg2(0)), Sig);
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->Clauses[0].Lhs.IsRet);
}

TEST(ClassifyTest, KeyedClauseIsSimpleWithSharedPureFn) {
  const SetSig &S = setSig();
  const FormulaPtr Keyed =
      ne(apply(S.Part, StateRef::None, {arg1(0)}),
         apply(S.Part, StateRef::None, {arg2(0)}));
  auto F = tryGetSimple(Keyed, S.Sig);
  ASSERT_TRUE(F.has_value());
  ASSERT_EQ(F->Clauses.size(), 1u);
  EXPECT_EQ(F->Clauses[0].KeyFn, std::optional<StateFnId>(S.Part));
}

TEST(ClassifyTest, MismatchedKeyFnsNotSimple) {
  const KdSig &K = kdSig();
  // dist is binary; also use two different wrappings.
  const FormulaPtr F =
      ne(apply(K.Dist, StateRef::None, {arg1(0), arg1(0)}), arg2(0));
  EXPECT_FALSE(tryGetSimple(F, K.Sig).has_value());
}

TEST(ClassifyTest, EqualityNotSimple) {
  // SIMPLE means conjunction of DISequalities (Def. 6 via App. B).
  const DataTypeSig &Sig = setSig().Sig;
  EXPECT_FALSE(tryGetSimple(eq(arg1(0), arg2(0)), Sig).has_value());
}

TEST(ClassifyTest, SameInvocationBothSidesNotSimple) {
  const DataTypeSig &Sig = setSig().Sig;
  EXPECT_FALSE(tryGetSimple(ne(arg1(0), arg1(1)), Sig).has_value());
}

TEST(ClassifyTest, DisjunctionNotSimple) {
  const DataTypeSig &Sig = setSig().Sig;
  const FormulaPtr F =
      disj(ne(arg1(0), arg2(0)), eq(ret1(), cst(false)));
  EXPECT_FALSE(tryGetSimple(F, Sig).has_value());
}

TEST(ClassifyTest, PaperSpecClasses) {
  EXPECT_EQ(preciseSetSpec().classify(), ConditionClass::OnlineCheckable);
  EXPECT_EQ(strengthenedSetSpec().classify(), ConditionClass::Simple);
  EXPECT_EQ(exclusiveSetSpec().classify(), ConditionClass::Simple);
  EXPECT_EQ(partitionedSetSpec().classify(), ConditionClass::Simple);
  EXPECT_EQ(bottomSetSpec().classify(), ConditionClass::Simple);
  EXPECT_EQ(kdSpec().classify(), ConditionClass::OnlineCheckable);
  EXPECT_EQ(ufSpec().classify(), ConditionClass::General);
}

TEST(ClassifyTest, OnlineCheckableDefinition) {
  const UfSig &U = ufSig();
  // rep(s1, v2[0]) breaks Def. 7; rep(s1, v1[0]) does not.
  EXPECT_FALSE(
      isOnlineCheckable(ne(apply(U.Rep, StateRef::S1, {arg2(0)}), arg1(0))));
  EXPECT_TRUE(
      isOnlineCheckable(ne(apply(U.Rep, StateRef::S1, {arg1(0)}), arg2(0))));
  // s2-applications over first-invocation values are fine.
  EXPECT_TRUE(
      isOnlineCheckable(ne(apply(U.Rep, StateRef::S2, {arg1(0)}), arg2(0))));
}

TEST(ClassifyTest, KdLogPlanMatchesPaper) {
  // The forward gatekeeper for kd-trees logs (x, dist(x, r)) per nearest
  // (§3.3.1): dist(v1[0], r1) must be loggable; dist(v1[0], v2[0]) not.
  const KdSig &K = kdSig();
  const FormulaPtr Cond = kdSpec().get(K.Nearest, K.Add);
  const std::vector<TermPtr> Logs = collectLoggableApplies(Cond);
  ASSERT_EQ(Logs.size(), 1u);
  EXPECT_EQ(Logs[0]->key(),
            apply(K.Dist, StateRef::None, {arg1(0), ret1()})->key());
}

TEST(ClassifyTest, UfLogAndS2Plans) {
  const UfSig &U = ufSig();
  // union-first orientation: loser(s1, v1...) loggable; rep(s1, v2[0]) not.
  const FormulaPtr UnionFind = ufSpec().get(U.Union, U.Find);
  const std::vector<TermPtr> Logs = collectLoggableApplies(UnionFind);
  ASSERT_EQ(Logs.size(), 1u);
  EXPECT_EQ(Logs[0]->Fn, U.Loser);
  // find-first orientation mirrors to s2-applications, evaluated live.
  const FormulaPtr FindUnion = ufSpec().get(U.Find, U.Union);
  const std::vector<TermPtr> S2 = collectS2Applies(FindUnion);
  EXPECT_EQ(S2.size(), 2u);
  EXPECT_TRUE(collectLoggableApplies(FindUnion).empty());
}

TEST(ClassifyTest, WorseClassOrdering) {
  EXPECT_EQ(worseClass(ConditionClass::Simple, ConditionClass::General),
            ConditionClass::General);
  EXPECT_EQ(
      worseClass(ConditionClass::OnlineCheckable, ConditionClass::Simple),
      ConditionClass::OnlineCheckable);
}
