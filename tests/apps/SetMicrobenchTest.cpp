//===- tests/apps/SetMicrobenchTest.cpp - Table 2 workload --------------------===//

#include "apps/SetMicrobench.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

MicroParams smallParams(unsigned KeyClasses) {
  MicroParams P;
  P.NumOps = 2000;
  P.OpsPerTx = 4;
  P.KeyClasses = KeyClasses;
  P.Threads = 4;
  P.Seed = 9;
  return P;
}

} // namespace

TEST(SetMicrobenchTest, AllSchemesAgreeOnFinalState) {
  // The committed operations are a pure function of the seed, so every
  // scheme must produce the same final abstract set.
  for (const unsigned KeyClasses : {0u, 10u}) {
    const MicroParams P = smallParams(KeyClasses);
    std::string Expected;
    for (const SetScheme Scheme :
         {SetScheme::Direct, SetScheme::GlobalLock, SetScheme::Exclusive,
          SetScheme::ReadWrite, SetScheme::Gatekeeper}) {
      MicroParams Local = P;
      if (Scheme == SetScheme::Direct)
        Local.Threads = 1; // The unprotected baseline is sequential.
      const std::unique_ptr<TxSet> Set = makeMicrobenchSet(Scheme);
      const ExecStats Stats = runSetMicrobench(*Set, Local);
      EXPECT_EQ(Stats.Committed, (P.NumOps + P.OpsPerTx - 1) / P.OpsPerTx);
      if (Expected.empty())
        Expected = Set->signature();
      else
        EXPECT_EQ(Set->signature(), Expected)
            << setSchemeName(Scheme) << " classes=" << KeyClasses;
    }
  }
}

TEST(SetMicrobenchTest, DistinctKeysNeverAbortUnderKeyLocks) {
  // Table 2(a): with all-distinct keys the key-locking schemes and the
  // gatekeeper run abort-free.
  MicroParams P = smallParams(0);
  for (const SetScheme Scheme : {SetScheme::Exclusive, SetScheme::ReadWrite,
                                 SetScheme::Gatekeeper}) {
    const std::unique_ptr<TxSet> Set = makeMicrobenchSet(Scheme);
    const ExecStats Stats = runSetMicrobench(*Set, P);
    EXPECT_EQ(Stats.Aborted, 0u) << setSchemeName(Scheme);
  }
}

TEST(SetMicrobenchTest, SchemeNamesAreStable) {
  EXPECT_STREQ(setSchemeName(SetScheme::GlobalLock), "global-lock");
  EXPECT_STREQ(setSchemeName(SetScheme::Gatekeeper), "gatekeeper");
}
