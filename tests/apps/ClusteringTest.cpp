//===- tests/apps/ClusteringTest.cpp - Agglomerative clustering ---------------===//

#include "apps/Clustering.h"

#include <gtest/gtest.h>

#include <set>

using namespace comlat;

namespace {

/// Checks the structural validity of a merge list for N initial points:
/// N-1 merges, every id consumed at most once, parents fresh.
void checkDendrogram(const std::vector<Merge> &Merges, size_t N) {
  EXPECT_EQ(Merges.size(), N - 1);
  std::set<int64_t> Consumed;
  for (const Merge &M : Merges) {
    EXPECT_TRUE(Consumed.insert(M.A).second) << "id merged twice: " << M.A;
    EXPECT_TRUE(Consumed.insert(M.B).second) << "id merged twice: " << M.B;
    EXPECT_GE(M.Parent, static_cast<int64_t>(N));
    EXPECT_FALSE(Consumed.count(M.Parent));
  }
}

} // namespace

TEST(ClusteringTest, SequentialProducesFullDendrogram) {
  Clustering App(32, 42);
  const ClusterResult R = App.runSequential();
  checkDendrogram(R.Merges, 32);
}

TEST(ClusteringTest, TwoPointsMergeOnce) {
  Clustering App(2, 1);
  const ClusterResult R = App.runSequential();
  ASSERT_EQ(R.Merges.size(), 1u);
  EXPECT_EQ(R.Merges[0].Parent, 2);
}

TEST(ClusteringTest, SinglePointNoMerges) {
  Clustering App(1, 1);
  const ClusterResult R = App.runSequential();
  EXPECT_TRUE(R.Merges.empty());
}

namespace {

class ClusteringVariants : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ClusteringVariants, SpeculativeProducesFullDendrogram) {
  for (const unsigned Threads : {1u, 4u}) {
    Clustering App(48, 7);
    const ClusterResult R =
        App.runSpeculative(GetParam(), {.NumThreads = Threads});
    checkDendrogram(R.Merges, 48);
    EXPECT_GT(R.Exec.Committed, 0u);
  }
}

TEST_P(ClusteringVariants, ParameterRoundModel) {
  Clustering App(48, 11);
  const ClusterResult R = App.runParameter(GetParam());
  checkDendrogram(R.Merges, 48);
  EXPECT_GT(R.Rounds.Rounds, 0u);
  EXPECT_GE(R.Rounds.parallelism(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, ClusteringVariants,
                         ::testing::Values("kd-gk", "kd-ml"));

TEST(ClusteringTest, GatekeeperExposesMoreRoundParallelism) {
  // Table 1's clustering shape: the forward gatekeeper's critical path is
  // much shorter than memory-level detection's.
  Clustering GkApp(96, 13);
  const ClusterResult Gk = GkApp.runParameter("kd-gk");
  Clustering MlApp(96, 13);
  const ClusterResult Ml = MlApp.runParameter("kd-ml");
  EXPECT_LT(Gk.Rounds.Rounds, Ml.Rounds.Rounds);
}

TEST(ClusteringTest, WeightConservation) {
  // The final centroid aggregates every initial point exactly once; with
  // unit weights its weight equals N. Verify through the merge list.
  constexpr size_t N = 24;
  Clustering App(N, 3);
  const ClusterResult R = App.runSequential();
  std::map<int64_t, double> Weight;
  for (size_t I = 0; I != N; ++I)
    Weight[static_cast<int64_t>(I)] = 1.0;
  for (const Merge &M : R.Merges)
    Weight[M.Parent] = Weight.at(M.A) + Weight.at(M.B);
  EXPECT_DOUBLE_EQ(Weight.at(R.Merges.back().Parent),
                   static_cast<double>(N));
}
