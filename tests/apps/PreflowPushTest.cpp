//===- tests/apps/PreflowPushTest.cpp - Max-flow correctness ------------------===//

#include "apps/Genrmf.h"
#include "apps/MaxflowReference.h"
#include "apps/PreflowPush.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

/// Tiny hand-built instance with known max flow 7.
MaxflowInstance tinyInstance() {
  MaxflowInstance Inst;
  Inst.Graph = std::make_unique<FlowGraph>(4);
  Inst.Source = 0;
  Inst.Sink = 3;
  Inst.Graph->addEdge(0, 1, 4);
  Inst.Graph->addEdge(0, 2, 3);
  Inst.Graph->addEdge(1, 3, 5);
  Inst.Graph->addEdge(2, 3, 3);
  Inst.Graph->addEdge(1, 2, 1);
  return Inst;
}

} // namespace

TEST(PreflowPushTest, DinicOnTinyInstance) {
  const MaxflowInstance Inst = tinyInstance();
  EXPECT_EQ(referenceMaxflow(*Inst.Graph, Inst.Source, Inst.Sink), 7);
}

TEST(PreflowPushTest, SequentialMatchesDinic) {
  for (const uint64_t Seed : {1ull, 2ull, 3ull}) {
    const MaxflowInstance Ref = genrmf(3, 3, 1, 20, Seed);
    const int64_t Expected =
        referenceMaxflow(*Ref.Graph, Ref.Source, Ref.Sink);
    MaxflowInstance Run = genrmf(3, 3, 1, 20, Seed);
    EXPECT_EQ(PreflowPush::runSequential(*Run.Graph, Run.Source, Run.Sink),
              Expected)
        << "seed " << Seed;
    EXPECT_TRUE(Run.Graph->checkFlowValid(Run.Source, Run.Sink));
  }
}

namespace {

class PreflowSchemes : public ::testing::TestWithParam<const char *> {
protected:
  static const CommSpec &spec() {
    const std::string S = GetParam();
    if (S == "ml")
      return mlFlowSpec();
    if (S == "ex")
      return exFlowSpec();
    return partFlowSpec();
  }
};

} // namespace

TEST_P(PreflowSchemes, SpeculativeMatchesDinic) {
  for (const uint64_t Seed : {5ull, 6ull}) {
    const MaxflowInstance Ref = genrmf(3, 3, 1, 20, Seed);
    const int64_t Expected =
        referenceMaxflow(*Ref.Graph, Ref.Source, Ref.Sink);
    for (const unsigned Threads : {1u, 4u}) {
      MaxflowInstance Run = genrmf(3, 3, 1, 20, Seed);
      const PreflowResult R = PreflowPush::runSpeculative(
          *Run.Graph, Run.Source, Run.Sink, spec(), {.NumThreads = Threads},
          /*Partitions=*/8);
      EXPECT_EQ(R.FlowValue, Expected)
          << GetParam() << " seed " << Seed << " threads " << Threads;
      EXPECT_TRUE(Run.Graph->checkFlowValid(Run.Source, Run.Sink));
      EXPECT_GT(R.Exec.Committed, 0u);
    }
  }
}

TEST_P(PreflowSchemes, ParameterRoundModelMatchesDinic) {
  const MaxflowInstance Ref = genrmf(3, 3, 1, 20, 9);
  const int64_t Expected = referenceMaxflow(*Ref.Graph, Ref.Source, Ref.Sink);
  MaxflowInstance Run = genrmf(3, 3, 1, 20, 9);
  const PreflowRoundResult R = PreflowPush::runParameter(
      *Run.Graph, Run.Source, Run.Sink, spec(), /*Partitions=*/8);
  EXPECT_EQ(R.FlowValue, Expected);
  EXPECT_GT(R.Rounds.Rounds, 0u);
  EXPECT_GE(R.Rounds.parallelism(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PreflowSchemes,
                         ::testing::Values("ml", "ex", "part"));

TEST(PreflowPushTest, ParallelismOrderingOnRmf) {
  // ParaMeter parallelism must not increase as the spec gets stronger:
  // ml >= ex >= part (Table 1's shape).
  const auto RunWith = [](const CommSpec &Spec, unsigned Partitions) {
    MaxflowInstance Run = genrmf(4, 4, 1, 30, 11);
    return PreflowPush::runParameter(*Run.Graph, Run.Source, Run.Sink, Spec,
                                     Partitions)
        .Rounds;
  };
  const RoundStats Ml = RunWith(mlFlowSpec(), 8);
  const RoundStats Ex = RunWith(exFlowSpec(), 8);
  const RoundStats Part = RunWith(partFlowSpec(), 8);
  EXPECT_GE(Ml.parallelism(), Ex.parallelism() * 0.99);
  EXPECT_GE(Ex.parallelism(), Part.parallelism() * 0.99);
}
