//===- tests/apps/BoruvkaTest.cpp - MST correctness ---------------------------===//

#include "apps/Boruvka.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(BoruvkaTest, MeshGeneratorShape) {
  const MeshInstance Mesh = randomMesh(4, 3, 1);
  EXPECT_EQ(Mesh.NumNodes, 12u);
  // 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 edges.
  EXPECT_EQ(Mesh.Edges.size(), 17u);
  // Unique weights 1..E.
  std::set<int64_t> Weights;
  for (const MeshInstance::Edge &E : Mesh.Edges)
    Weights.insert(E.W);
  EXPECT_EQ(Weights.size(), Mesh.Edges.size());
  EXPECT_EQ(*Weights.begin(), 1);
}

TEST(BoruvkaTest, KruskalOnKnownGraph) {
  MeshInstance Mesh;
  Mesh.NumNodes = 4;
  Mesh.Edges = {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {0, 2, 5}};
  EXPECT_EQ(kruskalWeight(Mesh), 1 + 2 + 3);
}

TEST(BoruvkaTest, SequentialMatchesKruskal) {
  for (const uint64_t Seed : {1ull, 2ull, 3ull}) {
    const MeshInstance Mesh = randomMesh(8, 8, Seed);
    const int64_t Expected = kruskalWeight(Mesh);
    Boruvka App(&Mesh);
    const BoruvkaResult R = App.runSequential();
    EXPECT_EQ(R.MstWeight, Expected) << "seed " << Seed;
    EXPECT_EQ(R.MstEdges, Mesh.NumNodes - 1);
  }
}

namespace {

class BoruvkaVariants : public ::testing::TestWithParam<const char *> {};

std::string variantName(const ::testing::TestParamInfo<const char *> &Info) {
  std::string Name = Info.param;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(BoruvkaVariants, SpeculativeMatchesKruskal) {
  const MeshInstance Mesh = randomMesh(8, 8, 4);
  const int64_t Expected = kruskalWeight(Mesh);
  for (const unsigned Threads : {1u, 4u}) {
    Boruvka App(&Mesh);
    const BoruvkaResult R =
        App.runSpeculative(GetParam(), {.NumThreads = Threads});
    EXPECT_EQ(R.MstWeight, Expected)
        << GetParam() << " threads " << Threads;
    EXPECT_EQ(R.MstEdges, Mesh.NumNodes - 1);
  }
}

TEST_P(BoruvkaVariants, ParameterRoundModelMatchesKruskal) {
  const MeshInstance Mesh = randomMesh(8, 8, 5);
  const int64_t Expected = kruskalWeight(Mesh);
  Boruvka App(&Mesh);
  const BoruvkaResult R = App.runParameter(GetParam());
  EXPECT_EQ(R.MstWeight, Expected) << GetParam();
  EXPECT_GT(R.Rounds.Rounds, 0u);
  EXPECT_GE(R.Rounds.parallelism(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, BoruvkaVariants,
                         ::testing::Values("uf-gk", "uf-gk-spec", "uf-ml",
                                           "uf-direct"),
                         variantName);
