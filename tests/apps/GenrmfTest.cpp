//===- tests/apps/GenrmfTest.cpp - GENRMF generator ---------------------------===//

#include "apps/Genrmf.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(GenrmfTest, TopologyAndCapacities) {
  const MaxflowInstance Inst = genrmf(3, 4, 1, 100, 42);
  EXPECT_EQ(Inst.Graph->numNodes(), 36u);
  EXPECT_EQ(Inst.Source, 0u);
  EXPECT_EQ(Inst.Sink, 35u);
  // A corner node in an inner frame: 2 in-frame neighbors (bidirectional)
  // + 1 inter-frame out + 1 inter-frame in = degree >= 4 (residual edges
  // are merged with reverses).
  EXPECT_GE(Inst.Graph->degree(9), 3u);
  // In-frame capacity is C2 * A * A = 900.
  bool Found900 = false;
  for (unsigned I = 0; I != Inst.Graph->degree(0); ++I)
    if (Inst.Graph->residual(0, I) >= 900)
      Found900 = true;
  EXPECT_TRUE(Found900);
}

TEST(GenrmfTest, DeterministicPerSeed) {
  const MaxflowInstance A = genrmf(3, 3, 1, 50, 7);
  const MaxflowInstance B = genrmf(3, 3, 1, 50, 7);
  ASSERT_EQ(A.Graph->numNodes(), B.Graph->numNodes());
  for (unsigned U = 0; U != A.Graph->numNodes(); ++U) {
    ASSERT_EQ(A.Graph->degree(U), B.Graph->degree(U));
    for (unsigned I = 0; I != A.Graph->degree(U); ++I) {
      EXPECT_EQ(A.Graph->neighbor(U, I), B.Graph->neighbor(U, I));
      EXPECT_EQ(A.Graph->residual(U, I), B.Graph->residual(U, I));
    }
  }
}

TEST(GenrmfTest, DifferentSeedsDiffer) {
  const MaxflowInstance A = genrmf(4, 3, 1, 50, 1);
  const MaxflowInstance B = genrmf(4, 3, 1, 50, 2);
  bool AnyDiff = false;
  for (unsigned U = 0; U != A.Graph->numNodes() && !AnyDiff; ++U)
    for (unsigned I = 0; I != A.Graph->degree(U) && !AnyDiff; ++I)
      if (I < B.Graph->degree(U) &&
          (A.Graph->neighbor(U, I) != B.Graph->neighbor(U, I) ||
           A.Graph->residual(U, I) != B.Graph->residual(U, I)))
        AnyDiff = true;
  EXPECT_TRUE(AnyDiff);
}
