//===- tests/adt/KdTreeTest.cpp - Kd-tree property tests ----------------------===//

#include "adt/KdTree.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace comlat;

namespace {

/// Brute-force nearest with the same tie-break (smaller id).
int64_t bruteNearest(const PointStore &Store,
                     const std::vector<int64_t> &Members, int64_t Query) {
  int64_t Best = KdNullPoint;
  double BestD2 = std::numeric_limits<double>::infinity();
  for (const int64_t Id : Members) {
    if (Id == Query)
      continue;
    const double D2 = Store.dist2(Query, Id);
    if (D2 < BestD2 || (D2 == BestD2 && (Best == KdNullPoint || Id < Best))) {
      BestD2 = D2;
      Best = Id;
    }
  }
  return Best;
}

int64_t addRandomPoint(PointStore &Store, Rng &R) {
  Point3 P;
  for (unsigned D = 0; D != KdDims; ++D)
    P.C[D] = R.nextDouble();
  return Store.addPoint(P);
}

/// Counts probe events.
class CountingProbe : public MemProbe {
public:
  bool onRead(uint64_t) override {
    ++Reads;
    return true;
  }
  bool onWrite(uint64_t) override {
    ++Writes;
    return true;
  }
  unsigned Reads = 0;
  unsigned Writes = 0;
};

/// Vetoes the Nth write.
class VetoProbe : public MemProbe {
public:
  explicit VetoProbe(unsigned VetoAt) : VetoAt(VetoAt) {}
  bool onRead(uint64_t) override { return true; }
  bool onWrite(uint64_t) override { return ++Writes != VetoAt; }
  unsigned Writes = 0;

private:
  unsigned VetoAt;
};

} // namespace

TEST(KdTreeTest, EmptyTreeNearestIsNull) {
  PointStore Store;
  Rng R(1);
  const int64_t P = addRandomPoint(Store, R);
  KdTree Tree(&Store);
  int64_t Res = 0;
  EXPECT_EQ(Tree.nearest(P, nullptr, Res), KdTree::Status::Ok);
  EXPECT_EQ(Res, KdNullPoint);
}

TEST(KdTreeTest, SinglePointExcludesSelf) {
  PointStore Store;
  Rng R(1);
  const int64_t P = addRandomPoint(Store, R);
  KdTree Tree(&Store);
  bool Changed = false;
  Tree.add(P, nullptr, Changed);
  EXPECT_TRUE(Changed);
  int64_t Res = 0;
  Tree.nearest(P, nullptr, Res);
  // "By convention, the point at infinity is the closest point if the
  // data set contains a single point."
  EXPECT_EQ(Res, KdNullPoint);
}

TEST(KdTreeTest, DuplicateAddAndMissingRemove) {
  PointStore Store;
  Rng R(1);
  const int64_t P = addRandomPoint(Store, R);
  KdTree Tree(&Store);
  bool Changed = true;
  Tree.remove(P, nullptr, Changed);
  EXPECT_FALSE(Changed);
  Tree.add(P, nullptr, Changed);
  EXPECT_TRUE(Changed);
  Tree.add(P, nullptr, Changed);
  EXPECT_FALSE(Changed);
  EXPECT_EQ(Tree.size(), 1u);
}

TEST(KdTreeTest, DistConventions) {
  PointStore Store;
  Store.addPoint(Point3{{0, 0, 0}});
  Store.addPoint(Point3{{3, 4, 0}});
  EXPECT_DOUBLE_EQ(Store.dist(0, 1), 5.0);
  EXPECT_TRUE(std::isinf(Store.dist(0, KdNullPoint)));
  EXPECT_TRUE(std::isinf(Store.dist(KdNullPoint, 0)));
}

class KdTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KdTreeProperty, NearestMatchesBruteForceUnderChurn) {
  Rng R(GetParam());
  PointStore Store;
  KdTree Tree(&Store, /*LeafCapacity=*/4);
  std::vector<int64_t> Members;
  std::vector<int64_t> All;
  for (unsigned I = 0; I != 120; ++I)
    All.push_back(addRandomPoint(Store, R));

  for (unsigned Step = 0; Step != 600; ++Step) {
    const int64_t Id = All[R.nextBelow(All.size())];
    const unsigned Op = static_cast<unsigned>(R.nextBelow(3));
    bool Changed = false;
    if (Op == 0) {
      Tree.add(Id, nullptr, Changed);
      if (Changed)
        Members.push_back(Id);
    } else if (Op == 1) {
      Tree.remove(Id, nullptr, Changed);
      if (Changed)
        Members.erase(std::find(Members.begin(), Members.end(), Id));
    } else {
      int64_t Got = 0;
      Tree.nearest(Id, nullptr, Got);
      EXPECT_EQ(Got, bruteNearest(Store, Members, Id)) << "step " << Step;
    }
    if (Step % 97 == 0)
      EXPECT_TRUE(Tree.checkInvariants()) << "step " << Step;
  }
  EXPECT_TRUE(Tree.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(KdTreeTest, TieBreakPicksSmallerId) {
  PointStore Store;
  Store.addPoint(Point3{{0, 0, 0}}); // 0: query
  Store.addPoint(Point3{{1, 0, 0}}); // 1
  Store.addPoint(Point3{{-1, 0, 0}}); // 2: same distance as 1
  KdTree Tree(&Store);
  bool Changed = false;
  Tree.add(1, nullptr, Changed);
  Tree.add(2, nullptr, Changed);
  int64_t Res = 0;
  Tree.nearest(0, nullptr, Res);
  EXPECT_EQ(Res, 1);
}

TEST(KdTreeTest, InteriorWritesOnlyWhenBoxChanges) {
  // Build a cloud, then add an interior point: only the leaf should be
  // written. Adding an outlier must write the whole path.
  PointStore Store;
  Rng R(7);
  KdTree Tree(&Store, /*LeafCapacity=*/4);
  bool Changed = false;
  for (unsigned I = 0; I != 64; ++I) {
    const int64_t Id = addRandomPoint(Store, R);
    Tree.add(Id, nullptr, Changed);
  }
  // Interior point (deep inside the unit cube the cloud spans).
  const int64_t Inner = Store.addPoint(Point3{{0.5, 0.5, 0.5}});
  CountingProbe InnerProbe;
  Tree.add(Inner, &InnerProbe, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_GE(InnerProbe.Reads, 1u);
  // Leaf write plus at most a few deep nodes whose tight boxes expand; the
  // decisive property is that the upper tree (root included) is only read.
  EXPECT_LE(InnerProbe.Writes, 4u);
  // Outlier: every node's box on the path expands.
  const int64_t Outlier = Store.addPoint(Point3{{50, 50, 50}});
  CountingProbe OutlierProbe;
  Tree.add(Outlier, &OutlierProbe, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_EQ(OutlierProbe.Reads, 0u);
  EXPECT_GE(OutlierProbe.Writes, 2u);
}

TEST(KdTreeTest, ProbeVetoLeavesTreeUntouched) {
  PointStore Store;
  Rng R(9);
  KdTree Tree(&Store, /*LeafCapacity=*/4);
  bool Changed = false;
  std::vector<int64_t> Members;
  for (unsigned I = 0; I != 32; ++I) {
    const int64_t Id = addRandomPoint(Store, R);
    Tree.add(Id, nullptr, Changed);
    Members.push_back(Id);
  }
  const std::string Before = Tree.signature();
  const int64_t Outlier = Store.addPoint(Point3{{10, 10, 10}});
  VetoProbe Veto(1);
  EXPECT_EQ(Tree.add(Outlier, &Veto, Changed), KdTree::Status::Conflict);
  EXPECT_EQ(Tree.signature(), Before);
  EXPECT_TRUE(Tree.checkInvariants());
  // Removal veto too.
  VetoProbe Veto2(1);
  EXPECT_EQ(Tree.remove(Members[0], &Veto2, Changed),
            KdTree::Status::Conflict);
  EXPECT_EQ(Tree.signature(), Before);
}

TEST(KdTreeTest, RemoveShrinksBoxesSoundly) {
  // Remove boundary points repeatedly and confirm queries stay exact.
  PointStore Store;
  Rng R(13);
  KdTree Tree(&Store, /*LeafCapacity=*/4);
  std::vector<int64_t> Members;
  bool Changed = false;
  for (unsigned I = 0; I != 80; ++I) {
    const int64_t Id = addRandomPoint(Store, R);
    Tree.add(Id, nullptr, Changed);
    Members.push_back(Id);
  }
  while (Members.size() > 1) {
    // Remove the lexicographically extreme member (a box corner).
    size_t ArgMax = 0;
    for (size_t I = 1; I != Members.size(); ++I)
      if (Store.get(Members[I]).C[0] > Store.get(Members[ArgMax]).C[0])
        ArgMax = I;
    Tree.remove(Members[ArgMax], nullptr, Changed);
    ASSERT_TRUE(Changed);
    Members.erase(Members.begin() + static_cast<ptrdiff_t>(ArgMax));
    const int64_t Query = Members[0];
    int64_t Got = 0;
    Tree.nearest(Query, nullptr, Got);
    EXPECT_EQ(Got, bruteNearest(Store, Members, Query));
    EXPECT_TRUE(Tree.checkInvariants());
  }
}
