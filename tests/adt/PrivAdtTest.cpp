//===- tests/adt/PrivAdtTest.cpp - Privatizable ADTs ------------------------===//
//
// The blind-insert set and the excess counters: their specifications hold
// up under randomized validation (Definition 1), and the privatized
// variants agree with the plain gated ones op for op — including the
// within-transaction self-upgrade, where a transaction that diverted
// updates then reads and must observe its own pending deltas flushed
// through the ordinary admission path.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/ExcessCounter.h"
#include "adt/PrivSet.h"
#include "runtime/SpecValidator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <memory>

using namespace comlat;

namespace {

ValidationConfig quickConfig(uint64_t Seed) {
  ValidationConfig C;
  C.Trials = 3000;
  C.PrefixOps = 5;
  C.Seed = Seed;
  return C;
}

/// Commits \p Fn as one transaction; the privatized paths never conflict
/// single-threaded, so failure is a test bug.
template <typename Fn> void committed(TxId Id, Fn &&Body) {
  Transaction Tx(Id);
  ASSERT_TRUE(Body(Tx));
  Tx.commit();
}

} // namespace

TEST(PrivAdtTest, PrivSetSpecIsValid) {
  const auto Issue = validateSpec(privSetSpec(), privSetValidationHarness(),
                                  quickConfig(61));
  EXPECT_FALSE(Issue.has_value())
      << privSetSpec().name() << ": " << Issue->str(privSetSig().Sig);
}

TEST(PrivAdtTest, OverPermissivePrivSetSpecRefuted) {
  // insert ~ contains = true is wrong: contains(x) after insert(x) answers
  // differently than before it.
  CommSpec Broken = privSetSpec();
  Broken.setName("privset-broken");
  Broken.set(privSetSig().Insert, privSetSig().Contains, dsl::top());
  const auto Issue =
      validateSpec(Broken, privSetValidationHarness(), quickConfig(62));
  ASSERT_TRUE(Issue.has_value());
}

TEST(PrivAdtTest, PrivatizedSetMatchesGatedSet) {
  const std::unique_ptr<TxPrivSet> Priv = makeGatedPrivSet(true);
  const std::unique_ptr<TxPrivSet> Gated = makeGatedPrivSet(false);
  Rng R(11);
  TxId Next = 1;
  for (unsigned Op = 0; Op != 400; ++Op) {
    const int64_t Key = int64_t(R.nextBelow(16));
    const uint64_t Kind = R.nextBelow(3);
    committed(Next++, [&](Transaction &Tx) {
      switch (Kind) {
      case 0:
        return Priv->insert(Tx, Key);
      case 1:
        return Priv->remove(Tx, Key);
      default: {
        bool Res = false;
        return Priv->contains(Tx, Key, Res);
      }
      }
    });
    committed(Next++, [&](Transaction &Tx) {
      switch (Kind) {
      case 0:
        return Gated->insert(Tx, Key);
      case 1:
        return Gated->remove(Tx, Key);
      default: {
        bool Res = false;
        return Gated->contains(Tx, Key, Res);
      }
      }
    });
  }
  // signature() merges outstanding replicas first.
  EXPECT_EQ(Priv->signature(), Gated->signature());
}

TEST(PrivAdtTest, SelfUpgradeSeesOwnPendingInserts) {
  const std::unique_ptr<TxPrivSet> Set = makeGatedPrivSet(true);
  Transaction Tx(1);
  ASSERT_TRUE(Set->insert(Tx, 7));
  // Same transaction reads back: the divert self-upgrades to a blocker and
  // flushes the pending insert through the gate, so the read sees it.
  bool Res = false;
  ASSERT_TRUE(Set->contains(Tx, 7, Res));
  EXPECT_TRUE(Res);
  // And updates after the upgrade stay on the gated path.
  ASSERT_TRUE(Set->insert(Tx, 8));
  ASSERT_TRUE(Set->contains(Tx, 8, Res));
  EXPECT_TRUE(Res);
  Tx.commit();
}

TEST(PrivAdtTest, PrivatizedExcessMatchesGated) {
  constexpr unsigned NumNodes = 8;
  const std::unique_ptr<TxExcessCounter> Priv =
      makeGatedExcessCounter(NumNodes, true);
  const std::unique_ptr<TxExcessCounter> Gated =
      makeGatedExcessCounter(NumNodes, false);
  Rng R(13);
  TxId Next = 1;
  for (unsigned Op = 0; Op != 400; ++Op) {
    const int64_t Node = int64_t(R.nextBelow(NumNodes));
    const int64_t Amount = int64_t(R.nextBelow(9)) - 4;
    const bool Read = R.nextBool(0.25);
    int64_t PrivRes = 0, GatedRes = 0;
    committed(Next++, [&](Transaction &Tx) {
      return Read ? Priv->readExcess(Tx, Node, PrivRes)
                  : Priv->addExcess(Tx, Node, Amount);
    });
    committed(Next++, [&](Transaction &Tx) {
      return Read ? Gated->readExcess(Tx, Node, GatedRes)
                  : Gated->addExcess(Tx, Node, Amount);
    });
    if (Read)
      EXPECT_EQ(PrivRes, GatedRes) << "node " << Node << " op " << Op;
  }
  for (unsigned Node = 0; Node != NumNodes; ++Node)
    EXPECT_EQ(Priv->value(Node), Gated->value(Node)) << "node " << Node;
}

TEST(PrivAdtTest, ReadMergesCommittedIncrements) {
  const std::unique_ptr<TxAccumulator> Acc = makePrivatizedAccumulator();
  for (TxId Id = 1; Id <= 10; ++Id)
    committed(Id, [&](Transaction &Tx) { return Acc->increment(Tx, 5); });
  // A fresh reader is the first blocker: it must observe every committed
  // diverted increment merged into the master.
  int64_t Res = 0;
  committed(11, [&](Transaction &Tx) { return Acc->read(Tx, Res); });
  EXPECT_EQ(Res, 50);
  EXPECT_EQ(Acc->value(), 50);
}
