//===- tests/adt/AdaptiveSetTest.cpp - Dynamic scheme selection ---------------===//

#include "adt/AdaptiveSet.h"
#include "runtime/Executor.h"
#include "runtime/SerialChecker.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

AdaptivePolicy tightPolicy() {
  AdaptivePolicy P;
  P.Window = 8;
  P.EscalateAbortRatio = 0.2;
  P.DeescalateAbortRatio = 0.01;
  return P;
}

} // namespace

TEST(AdaptiveSetTest, StartsAtTheCheapestLevel) {
  AdaptiveSet Set;
  EXPECT_EQ(Set.currentLevel(), AdaptiveSet::Level::Exclusive);
  EXPECT_EQ(Set.numSwitches(), 0u);
}

TEST(AdaptiveSetTest, SequentialSemanticsMatchDirect) {
  AdaptiveSet Set(tightPolicy());
  Transaction Tx(1);
  bool Res = false;
  EXPECT_TRUE(Set.add(Tx, 1, Res));
  EXPECT_TRUE(Res);
  EXPECT_TRUE(Set.add(Tx, 1, Res));
  EXPECT_FALSE(Res);
  EXPECT_TRUE(Set.contains(Tx, 1, Res));
  EXPECT_TRUE(Res);
  EXPECT_TRUE(Set.remove(Tx, 2, Res));
  EXPECT_FALSE(Res);
  Tx.commit();
  EXPECT_EQ(Set.signature(), "1,");
}

TEST(AdaptiveSetTest, TransactionsBindToOneLevelForLife) {
  AdaptiveSet Set(tightPolicy());
  Transaction T1(1), T2(2);
  bool Res = false;
  // Exclusive locks: concurrent contains on the same key conflict.
  EXPECT_TRUE(Set.contains(T1, 5, Res));
  EXPECT_FALSE(Set.contains(T2, 5, Res));
  EXPECT_TRUE(T2.failed());
  T2.abort();
  T1.commit();
}

TEST(AdaptiveSetTest, EscalatesUnderAborts) {
  // Alternate conflicting pairs until the abort window trips; the set
  // must move up the lattice (exclusive -> rw at least).
  AdaptiveSet Set(tightPolicy());
  for (unsigned Round = 0; Round != 64; ++Round) {
    Transaction T1(2 * Round + 1), T2(2 * Round + 2);
    bool Res = false;
    ASSERT_TRUE(Set.contains(T1, 7, Res) || T1.failed());
    const bool Ok2 = Set.contains(T2, 7, Res);
    if (T1.failed())
      T1.abort();
    else
      T1.commit();
    if (!Ok2 || T2.failed())
      T2.abort();
    else
      T2.commit();
    if (Set.numSwitches() > 0)
      break;
  }
  EXPECT_GT(Set.numSwitches(), 0u);
  EXPECT_NE(Set.currentLevel(), AdaptiveSet::Level::Exclusive);
  // After the switch, read/read on one key no longer conflicts.
  Transaction T1(1001), T2(1002);
  bool Res = false;
  EXPECT_TRUE(Set.contains(T1, 7, Res));
  EXPECT_TRUE(Set.contains(T2, 7, Res));
  T1.commit();
  T2.commit();
}

TEST(AdaptiveSetTest, DrainBarrierRefusesNewTransactions) {
  AdaptivePolicy Policy = tightPolicy();
  Policy.Window = 4;
  AdaptiveSet Set(Policy);
  // Trip the escalation window with conflicting pairs.
  for (unsigned Round = 0; Round != 16; ++Round) {
    Transaction T1(2 * Round + 1), T2(2 * Round + 2);
    bool Res = false;
    (void)Set.contains(T1, 7, Res);
    (void)Set.contains(T2, 7, Res);
    // Finish T1 first: its release may trip the window and request a
    // switch while T2 is still live; a newcomer must then be refused
    // (drain barrier).
    if (T1.failed())
      T1.abort();
    else
      T1.commit();
    Transaction T3(1000 + Round);
    const bool Ok3 = Set.contains(T3, 9, Res);
    if (!Ok3) {
      EXPECT_TRUE(T3.failed());
      T3.abort();
      if (T2.failed())
        T2.abort();
      else
        T2.commit();
      EXPECT_GT(Set.numDrainRefusals(), 0u);
      // With everything drained, the next transaction binds to the new
      // level.
      Transaction T4(5000);
      EXPECT_TRUE(Set.contains(T4, 9, Res));
      T4.commit();
      EXPECT_GT(Set.numSwitches(), 0u);
      return;
    }
    T3.commit();
    if (T2.failed())
      T2.abort();
    else
      T2.commit();
  }
  GTEST_SKIP() << "no drain refusal observed under this schedule";
}

TEST(AdaptiveSetTest, ExecutorWorkloadStaysCorrectAcrossSwitches) {
  // Conflict-heavy multi-op transactions drive escalation; the final
  // abstract state must match an unprotected sequential run of the same
  // committed operations.
  AdaptivePolicy Policy = tightPolicy();
  AdaptiveSet Set(Policy);
  Worklist WL;
  constexpr int64_t NumTxs = 600;
  for (int64_t I = 0; I != NumTxs; ++I)
    WL.push(I);
  Executor Exec({.NumThreads = 4});
  const ExecStats Stats = Exec.run(
      WL, [&Set](Transaction &Tx, int64_t Item, TxWorklist &) {
        Rng R(static_cast<uint64_t>(Item) * 977);
        for (unsigned J = 0; J != 4; ++J) {
          const int64_t Key = static_cast<int64_t>(R.nextBelow(6));
          bool Res = false;
          const bool Ok = R.nextBool(0.5) ? Set.add(Tx, Key, Res)
                                          : Set.contains(Tx, Key, Res);
          if (!Ok)
            return;
        }
      });
  EXPECT_EQ(Stats.Committed, static_cast<uint64_t>(NumTxs));
  // Reference: committed adds are a pure function of the item stream.
  IntHashSet Ref;
  for (int64_t I = 0; I != NumTxs; ++I) {
    Rng R(static_cast<uint64_t>(I) * 977);
    for (unsigned J = 0; J != 4; ++J) {
      const int64_t Key = static_cast<int64_t>(R.nextBelow(6));
      if (R.nextBool(0.5))
        Ref.insert(Key);
    }
  }
  EXPECT_EQ(Set.signature(), Ref.signature());
}

TEST(AdaptiveSetTest, DeescalatesWhenQuiet) {
  AdaptivePolicy Policy = tightPolicy();
  AdaptiveSet Set(Policy);
  // Force one escalation.
  for (unsigned Round = 0; Round != 64 && Set.numSwitches() == 0; ++Round) {
    Transaction T1(2 * Round + 1), T2(2 * Round + 2);
    bool Res = false;
    (void)Set.contains(T1, 7, Res);
    (void)Set.contains(T2, 7, Res);
    if (T1.failed())
      T1.abort();
    else
      T1.commit();
    if (T2.failed())
      T2.abort();
    else
      T2.commit();
  }
  ASSERT_GT(Set.numSwitches(), 0u);
  const uint64_t After = Set.numSwitches();
  // A long abort-free stretch of distinct-key work de-escalates.
  for (int64_t I = 0; I != 200 && Set.numSwitches() == After; ++I) {
    Transaction Tx(10000 + I);
    bool Res = false;
    ASSERT_TRUE(Set.add(Tx, 100 + I, Res));
    Tx.commit();
  }
  EXPECT_GT(Set.numSwitches(), After);
  EXPECT_EQ(Set.currentLevel(), AdaptiveSet::Level::Exclusive);
}
