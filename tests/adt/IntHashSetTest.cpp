//===- tests/adt/IntHashSetTest.cpp - Hash-set semantics ----------------------===//

#include "adt/IntHashSet.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace comlat;

TEST(IntHashSetTest, BasicInsertEraseContains) {
  IntHashSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(3));
  EXPECT_FALSE(S.insert(3));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.erase(3));
  EXPECT_FALSE(S.erase(3));
  EXPECT_TRUE(S.empty());
}

TEST(IntHashSetTest, NegativeAndExtremeKeys) {
  IntHashSet S;
  EXPECT_TRUE(S.insert(-1));
  EXPECT_TRUE(S.insert(INT64_MIN));
  EXPECT_TRUE(S.insert(INT64_MAX));
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.contains(INT64_MIN));
  EXPECT_TRUE(S.contains(INT64_MAX));
  EXPECT_EQ(S.size(), 4u);
}

TEST(IntHashSetTest, GrowthKeepsMembers) {
  IntHashSet S(4);
  for (int64_t I = 0; I != 1000; ++I)
    EXPECT_TRUE(S.insert(I * 7));
  EXPECT_EQ(S.size(), 1000u);
  for (int64_t I = 0; I != 1000; ++I)
    EXPECT_TRUE(S.contains(I * 7));
  EXPECT_FALSE(S.contains(3));
}

TEST(IntHashSetTest, SortedElementsAndSignature) {
  IntHashSet S;
  S.insert(5);
  S.insert(-2);
  S.insert(9);
  const std::vector<int64_t> Expected = {-2, 5, 9};
  EXPECT_EQ(S.sortedElements(), Expected);
  EXPECT_EQ(S.signature(), "-2,5,9,");
}

TEST(IntHashSetTest, ClearResets) {
  IntHashSet S;
  for (int64_t I = 0; I != 50; ++I)
    S.insert(I);
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(10));
  EXPECT_TRUE(S.insert(10));
}

/// Property test: random op streams against std::set.
class IntHashSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntHashSetProperty, MatchesStdSet) {
  Rng R(GetParam());
  IntHashSet S;
  std::set<int64_t> Ref;
  for (unsigned Step = 0; Step != 4000; ++Step) {
    // Small key space forces collisions and backward-shift deletions.
    const int64_t Key = static_cast<int64_t>(R.nextBelow(64));
    switch (R.nextBelow(3)) {
    case 0:
      EXPECT_EQ(S.insert(Key), Ref.insert(Key).second);
      break;
    case 1:
      EXPECT_EQ(S.erase(Key), Ref.erase(Key) != 0);
      break;
    default:
      EXPECT_EQ(S.contains(Key), Ref.count(Key) != 0);
      break;
    }
    EXPECT_EQ(S.size(), Ref.size());
  }
  const std::vector<int64_t> Sorted(Ref.begin(), Ref.end());
  EXPECT_EQ(S.sortedElements(), Sorted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntHashSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
