//===- tests/adt/UnionFindTest.cpp - Disjoint-set forest ----------------------===//

#include "adt/UnionFind.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace comlat;

namespace {

/// Naive partition reference.
class NaivePartition {
public:
  explicit NaivePartition(size_t N) : Label(N) {
    for (size_t I = 0; I != N; ++I)
      Label[I] = static_cast<int64_t>(I);
  }
  void unite(int64_t A, int64_t B) {
    const int64_t La = Label[A], Lb = Label[B];
    if (La == Lb)
      return;
    for (int64_t &L : Label)
      if (L == Lb)
        L = La;
  }
  bool same(int64_t A, int64_t B) const { return Label[A] == Label[B]; }

private:
  std::vector<int64_t> Label;
};

} // namespace

TEST(UnionFindTest, BasicUniteFind) {
  UnionFind UF(4);
  int64_t R = UfNone;
  UF.find(0, nullptr, nullptr, R);
  EXPECT_EQ(R, 0);
  bool Changed = false;
  UF.unite(0, 1, nullptr, nullptr, Changed);
  EXPECT_TRUE(Changed);
  UF.unite(0, 1, nullptr, nullptr, Changed);
  EXPECT_FALSE(Changed);
  EXPECT_TRUE(UF.sameSet(0, 1));
  EXPECT_FALSE(UF.sameSet(0, 2));
}

TEST(UnionFindTest, LoserWinnerDefinitions) {
  UnionFind UF(4);
  // Equal ranks: b's root loses (the paper's definition).
  EXPECT_EQ(UF.loserOf(0, 1), 1);
  EXPECT_EQ(UF.winnerOf(0, 1), 0);
  bool Changed = false;
  UF.unite(0, 1, nullptr, nullptr, Changed); // Root 0, rank 1.
  // Now root 0 outranks root 2.
  EXPECT_EQ(UF.loserOf(2, 0), 2);
  EXPECT_EQ(UF.winnerOf(2, 0), 0);
  // Same set: no loser.
  EXPECT_EQ(UF.loserOf(0, 1), UfNone);
  EXPECT_EQ(UF.winnerOf(0, 1), UfNone);
}

TEST(UnionFindTest, PathCompressionPreservesAbstractState) {
  UnionFind UF(8);
  bool Changed = false;
  for (int I = 1; I != 8; ++I)
    UF.unite(0, I, nullptr, nullptr, Changed);
  const std::string Before = UF.signature();
  // Finds compress but must not change the abstract state.
  for (int I = 0; I != 8; ++I) {
    int64_t R = UfNone;
    UF.find(I, nullptr, nullptr, R);
  }
  EXPECT_EQ(UF.signature(), Before);
  EXPECT_TRUE(UF.checkInvariants());
}

TEST(UnionFindTest, CompressionRecordsUndoActions) {
  UnionFind UF(6);
  bool Changed = false;
  // Build a chain: 0<-1<-2... via careful unions (rank tricks), then a
  // find from the tail must compress at least one pointer.
  UF.unite(0, 1, nullptr, nullptr, Changed); // 0 rank 1.
  UF.unite(2, 3, nullptr, nullptr, Changed); // 2 rank 1.
  UF.unite(0, 2, nullptr, nullptr, Changed); // 0 rank 2; 2 under 0.
  GateActionList Actions;
  int64_t R = UfNone;
  UF.find(3, nullptr, &Actions, R);
  EXPECT_EQ(R, 0);
  EXPECT_FALSE(Actions.empty());
  // Undo the compressions: abstract state unchanged, invariants hold.
  for (size_t I = Actions.size(); I != 0; --I)
    Actions[I - 1].Undo();
  EXPECT_TRUE(UF.checkInvariants());
  EXPECT_TRUE(UF.sameSet(3, 0));
}

TEST(UnionFindTest, UniteUndoRestoresExactly) {
  UnionFind UF(8);
  bool Changed = false;
  GateActionList Setup;
  UF.unite(0, 1, nullptr, &Setup, Changed);
  UF.unite(2, 3, nullptr, &Setup, Changed);
  const std::string Before = UF.signature();
  GateActionList Actions;
  UF.unite(1, 3, nullptr, &Actions, Changed);
  EXPECT_TRUE(Changed);
  EXPECT_TRUE(UF.sameSet(0, 2));
  for (size_t I = Actions.size(); I != 0; --I)
    Actions[I - 1].Undo();
  EXPECT_EQ(UF.signature(), Before);
  EXPECT_FALSE(UF.sameSet(0, 2));
  // Redo replays it.
  for (const GateAction &A : Actions)
    A.Redo();
  EXPECT_TRUE(UF.sameSet(0, 2));
  EXPECT_TRUE(UF.checkInvariants());
}

TEST(UnionFindTest, CreateAndDestroy) {
  UnionFind UF(2);
  const int64_t Id = UF.createElement();
  EXPECT_EQ(Id, 2);
  EXPECT_EQ(UF.numElements(), 3u);
  int64_t R = UfNone;
  UF.find(Id, nullptr, nullptr, R);
  EXPECT_EQ(R, Id);
  UF.destroyLastElement();
  EXPECT_EQ(UF.numElements(), 2u);
}

TEST(UnionFindTest, ChainOfWalksUncompressed) {
  UnionFind UF(4);
  bool Changed = false;
  UF.unite(0, 1, nullptr, nullptr, Changed);
  UF.unite(0, 2, nullptr, nullptr, Changed);
  std::vector<int64_t> Chain;
  UF.chainOf(1, Chain);
  ASSERT_GE(Chain.size(), 2u);
  EXPECT_EQ(Chain.front(), 1);
  EXPECT_EQ(Chain.back(), 0);
}

class UnionFindProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindProperty, MatchesNaivePartition) {
  Rng R(GetParam());
  constexpr size_t N = 64;
  UnionFind UF(N);
  NaivePartition Ref(N);
  for (unsigned Step = 0; Step != 400; ++Step) {
    const int64_t A = static_cast<int64_t>(R.nextBelow(N));
    const int64_t B = static_cast<int64_t>(R.nextBelow(N));
    if (R.nextBool(0.4)) {
      bool Changed = false;
      UF.unite(A, B, nullptr, nullptr, Changed);
      EXPECT_EQ(Changed, !Ref.same(A, B));
      Ref.unite(A, B);
    } else {
      EXPECT_EQ(UF.sameSet(A, B), Ref.same(A, B));
    }
  }
  EXPECT_TRUE(UF.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindProperty,
                         ::testing::Values(3, 14, 15, 92, 65, 35));

TEST(UnionFindTest, ProbeSeesCompressionWrites) {
  // The §1 motivation: two finds on the same chain conflict at memory
  // level because compression writes traversed elements.
  UnionFind UF(8);
  bool Changed = false;
  UF.unite(0, 1, nullptr, nullptr, Changed);
  UF.unite(2, 3, nullptr, nullptr, Changed);
  UF.unite(0, 2, nullptr, nullptr, Changed);
  struct Counting : MemProbe {
    bool onRead(uint64_t) override {
      ++Reads;
      return true;
    }
    bool onWrite(uint64_t) override {
      ++Writes;
      return true;
    }
    unsigned Reads = 0, Writes = 0;
  } Probe;
  int64_t R = UfNone;
  UF.find(3, &Probe, nullptr, R);
  EXPECT_GE(Probe.Reads, 2u);
  EXPECT_GE(Probe.Writes, 1u);
}
