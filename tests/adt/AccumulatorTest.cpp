//===- tests/adt/AccumulatorTest.cpp - Accumulator variants -------------------===//

#include "adt/Accumulator.h"

#include <gtest/gtest.h>

using namespace comlat;

namespace {

class AccumulatorVariants
    : public ::testing::TestWithParam<const char *> {
protected:
  std::unique_ptr<TxAccumulator> make() const {
    return std::string(GetParam()) == "locks" ? makeLockedAccumulator()
                                              : makeGatedAccumulator();
  }
};

} // namespace

TEST_P(AccumulatorVariants, SequentialSemantics) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction Tx(1);
  EXPECT_TRUE(Acc->increment(Tx, 5));
  EXPECT_TRUE(Acc->increment(Tx, -2));
  int64_t V = 0;
  EXPECT_TRUE(Acc->read(Tx, V));
  EXPECT_EQ(V, 3);
  Tx.commit();
  EXPECT_EQ(Acc->value(), 3);
}

TEST_P(AccumulatorVariants, IncrementsCommute) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Acc->increment(T1, 1));
  EXPECT_TRUE(Acc->increment(T2, 2));
  EXPECT_TRUE(Acc->increment(T1, 4));
  T1.commit();
  T2.commit();
  EXPECT_EQ(Acc->value(), 7);
}

TEST_P(AccumulatorVariants, IncrementConflictsWithRead) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Acc->increment(T1, 1));
  int64_t V = 0;
  EXPECT_FALSE(Acc->read(T2, V));
  EXPECT_TRUE(T2.failed());
  T2.abort();
  T1.commit();
}

TEST_P(AccumulatorVariants, ReadConflictsWithIncrement) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction T1(1), T2(2);
  int64_t V = 0;
  EXPECT_TRUE(Acc->read(T1, V));
  EXPECT_FALSE(Acc->increment(T2, 1));
  T2.abort();
  T1.commit();
  EXPECT_EQ(Acc->value(), 0);
}

TEST_P(AccumulatorVariants, ReadsCommute) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction T1(1), T2(2);
  int64_t A = -1, B = -1;
  EXPECT_TRUE(Acc->read(T1, A));
  EXPECT_TRUE(Acc->read(T2, B));
  EXPECT_EQ(A, 0);
  EXPECT_EQ(B, 0);
  T1.commit();
  T2.commit();
}

TEST_P(AccumulatorVariants, AbortRollsBack) {
  const std::unique_ptr<TxAccumulator> Acc = make();
  Transaction T1(1);
  EXPECT_TRUE(Acc->increment(T1, 10));
  EXPECT_TRUE(Acc->increment(T1, 20));
  T1.fail();
  T1.abort();
  EXPECT_EQ(Acc->value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AccumulatorVariants,
                         ::testing::Values("locks", "gatekeeper"));
