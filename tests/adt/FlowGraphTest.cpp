//===- tests/adt/FlowGraphTest.cpp - Flow network + boosted methods -----------===//

#include "adt/FlowGraph.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(FlowGraphTest, AddEdgeCreatesResiduals) {
  FlowGraph G(3);
  G.addEdge(0, 1, 10);
  EXPECT_EQ(G.degree(0), 1u);
  EXPECT_EQ(G.degree(1), 1u); // Reverse zero-capacity edge.
  EXPECT_EQ(G.residual(0, 0), 10);
  EXPECT_EQ(G.residual(1, 0), 0);
}

TEST(FlowGraphTest, ParallelEdgesMerge) {
  FlowGraph G(2);
  G.addEdge(0, 1, 10);
  G.addEdge(0, 1, 5);
  EXPECT_EQ(G.degree(0), 1u);
  EXPECT_EQ(G.residual(0, 0), 15);
}

TEST(FlowGraphTest, ApplyPushMovesFlowAndExcess) {
  FlowGraph G(2);
  G.addEdge(0, 1, 10);
  G.setExcess(0, 7);
  G.applyPush(0, 0, 7);
  EXPECT_EQ(G.residual(0, 0), 3);
  EXPECT_EQ(G.residual(1, 0), 7);
  EXPECT_EQ(G.excess(0), 0);
  EXPECT_EQ(G.excess(1), 7);
  // Undo with a negative delta.
  G.applyPush(0, 0, -7);
  EXPECT_EQ(G.residual(0, 0), 10);
  EXPECT_EQ(G.excess(1), 0);
}

TEST(FlowGraphTest, BoostedPushValidatesAdmissibility) {
  FlowGraph G(3);
  G.addEdge(0, 1, 10);
  G.setExcess(0, 4);
  BoostedFlowGraph BG(&G, mlFlowSpec());
  Transaction Tx(1);
  int64_t Pushed = -1;
  bool Activated = false;
  // Heights equal: inadmissible, pushes nothing, still commits.
  EXPECT_TRUE(BG.pushFlow(Tx, 0, 0, Pushed, Activated));
  EXPECT_EQ(Pushed, 0);
  G.setHeight(0, 1);
  EXPECT_TRUE(BG.pushFlow(Tx, 0, 0, Pushed, Activated));
  EXPECT_EQ(Pushed, 4);
  EXPECT_TRUE(Activated);
  Tx.commit();
}

TEST(FlowGraphTest, BoostedRelabelComputesMinPlusOne) {
  FlowGraph G(4);
  G.addEdge(0, 1, 5);
  G.addEdge(0, 2, 5);
  G.setHeight(1, 3);
  G.setHeight(2, 7);
  BoostedFlowGraph BG(&G, mlFlowSpec());
  Transaction Tx(1);
  int64_t NewHeight = 0;
  EXPECT_TRUE(BG.relabel(Tx, 0, NewHeight));
  EXPECT_EQ(NewHeight, 4); // min(3, 7) + 1.
  Tx.commit();
  EXPECT_EQ(G.height(0), 4);
}

TEST(FlowGraphTest, AbortUndoesPushAndRelabel) {
  FlowGraph G(2);
  G.addEdge(0, 1, 10);
  G.setExcess(0, 4);
  G.setHeight(0, 1);
  BoostedFlowGraph BG(&G, mlFlowSpec());
  Transaction Tx(1);
  int64_t Pushed = 0, NewHeight = 0;
  bool Activated = false;
  EXPECT_TRUE(BG.pushFlow(Tx, 0, 0, Pushed, Activated));
  EXPECT_TRUE(BG.relabel(Tx, 0, NewHeight));
  Tx.fail();
  Tx.abort();
  EXPECT_EQ(G.excess(0), 4);
  EXPECT_EQ(G.excess(1), 0);
  EXPECT_EQ(G.residual(0, 0), 10);
  EXPECT_EQ(G.height(0), 1);
}

TEST(FlowGraphTest, MlAllowsConcurrentGetNeighbors) {
  FlowGraph G(3);
  G.addEdge(0, 1, 1);
  BoostedFlowGraph BG(&G, mlFlowSpec());
  Transaction T1(1), T2(2);
  unsigned D = 0;
  EXPECT_TRUE(BG.getNeighbors(T1, 0, D));
  EXPECT_TRUE(BG.getNeighbors(T2, 0, D));
  T1.commit();
  T2.commit();
}

TEST(FlowGraphTest, ExForbidsConcurrentGetNeighbors) {
  FlowGraph G(3);
  G.addEdge(0, 1, 1);
  BoostedFlowGraph BG(&G, exFlowSpec());
  Transaction T1(1), T2(2);
  unsigned D = 0;
  EXPECT_TRUE(BG.getNeighbors(T1, 0, D));
  EXPECT_FALSE(BG.getNeighbors(T2, 0, D));
  T2.abort();
  T1.commit();
}

TEST(FlowGraphTest, RelabelConflictsWithPushOnSharedNode) {
  FlowGraph G(3);
  G.addEdge(0, 1, 5);
  G.addEdge(1, 2, 5);
  G.setExcess(0, 1);
  G.setHeight(0, 1);
  BoostedFlowGraph BG(&G, mlFlowSpec());
  Transaction T1(1), T2(2);
  int64_t Pushed = 0;
  bool Activated = false;
  EXPECT_TRUE(BG.pushFlow(T1, 0, 0, Pushed, Activated)); // Locks 0 and 1.
  int64_t H = 0;
  EXPECT_FALSE(BG.relabel(T2, 1, H));
  T2.abort();
  // Node 2 is free.
  Transaction T3(3);
  EXPECT_TRUE(BG.relabel(T3, 2, H));
  T3.commit();
  T1.commit();
}

TEST(FlowGraphTest, PartitionedLocksCoarsen) {
  FlowGraph G(64);
  for (unsigned I = 0; I + 1 != 64; ++I)
    G.addEdge(I, I + 1, 1);
  BoostedFlowGraph BG(&G, partFlowSpec(), /*Partitions=*/4);
  Transaction T1(1), T2(2);
  int64_t H = 0;
  // Nodes 0 and 4 share partition (mod 4): conflict despite distinct ids.
  EXPECT_TRUE(BG.relabel(T1, 0, H));
  EXPECT_FALSE(BG.relabel(T2, 4, H));
  T2.abort();
  // Node 5 is in another partition.
  Transaction T3(3);
  EXPECT_TRUE(BG.relabel(T3, 5, H));
  T3.commit();
  T1.commit();
}

TEST(FlowGraphTest, FlowValidityChecker) {
  FlowGraph G(3);
  G.addEdge(0, 1, 5);
  G.addEdge(1, 2, 5);
  G.setExcess(0, 5);
  G.setHeight(0, 1);
  G.applyPush(0, 0, 5);
  EXPECT_TRUE(G.checkFlowValid(0, 2));
  G.setHeight(1, 1);
  G.applyPush(1, 1, 5); // Edge index 1 of node 1 is 1->2.
  EXPECT_TRUE(G.checkFlowValid(0, 2));
  EXPECT_EQ(G.excess(2), 5);
}
