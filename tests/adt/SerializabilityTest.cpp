//===- tests/adt/SerializabilityTest.cpp - Theorem 2, end to end --------------===//
//
// The paper's central safety claim (Theorem 2): if every pair of method
// invocations from concurrent transactions satisfies its commutativity
// condition, the execution is serializable. These tests run randomized
// transaction scripts under adversarial deterministic interleavings for
// every conflict-detection scheme and confirm, via brute-force witness
// search, that the committed transactions always admit an equivalent
// serial order with identical return values and final abstract state.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedKdTree.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "runtime/Interleaver.h"
#include "runtime/SerialChecker.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <array>

using namespace comlat;

namespace {

/// Builds a random schedule for the given per-script step counts.
std::vector<unsigned> randomSchedule(const std::vector<unsigned> &Counts,
                                     Rng &R) {
  std::vector<unsigned> Schedule;
  for (unsigned I = 0; I != Counts.size(); ++I)
    for (unsigned J = 0; J != Counts[I]; ++J)
      Schedule.push_back(I);
  R.shuffle(Schedule);
  return Schedule;
}

/// Collects committed traces from an interleaver outcome.
std::vector<TxTrace> committedTraces(const InterleaveOutcome &Out) {
  std::vector<TxTrace> Traces;
  for (size_t I = 0; I != Out.Txs.size(); ++I)
    if (Out.Committed[I])
      Traces.push_back(traceOf(*Out.Txs[I], I + 1));
  return Traces;
}

} // namespace

//===----------------------------------------------------------------------===//
// Set: all four schemes of Table 2
//===----------------------------------------------------------------------===//

namespace {

struct SetCase {
  const char *Scheme;
  uint64_t Seed;
};

class SetSerializability : public ::testing::TestWithParam<SetCase> {
protected:
  static std::unique_ptr<TxSet> makeSet(const std::string &Scheme) {
    if (Scheme == "global")
      return makeLockedSet(bottomSetSpec());
    if (Scheme == "exclusive")
      return makeLockedSet(exclusiveSetSpec());
    if (Scheme == "rw")
      return makeLockedSet(strengthenedSetSpec());
    if (Scheme == "partitioned")
      return makeLockedSet(partitionedSetSpec(), /*Partitions=*/2);
    return makeGatedSet(preciseSetSpec());
  }
};

std::string setCaseName(const ::testing::TestParamInfo<SetCase> &Info) {
  return std::string(Info.param.Scheme) + "_" +
         std::to_string(Info.param.Seed);
}

} // namespace

TEST_P(SetSerializability, RandomScriptsAlwaysSerializable) {
  const SetCase &Param = GetParam();
  Rng R(Param.Seed);
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    const std::unique_ptr<TxSet> Set = makeSet(Param.Scheme);
    const unsigned NumScripts = 2 + static_cast<unsigned>(R.nextBelow(3));
    const unsigned StepsPer = 2 + static_cast<unsigned>(R.nextBelow(3));
    std::vector<TxScript> Scripts(NumScripts);
    for (TxScript &S : Scripts) {
      for (unsigned J = 0; J != StepsPer; ++J) {
        const int64_t Key = static_cast<int64_t>(R.nextBelow(4));
        const unsigned Op = static_cast<unsigned>(R.nextBelow(3));
        S.Steps.push_back([&Set, Key, Op](Transaction &Tx) {
          bool Res = false;
          if (Op == 0)
            Set->add(Tx, Key, Res);
          else if (Op == 1)
            Set->remove(Tx, Key, Res);
          else
            Set->contains(Tx, Key, Res);
        });
      }
    }
    const std::vector<unsigned> Counts(NumScripts, StepsPer);
    const InterleaveOutcome Out =
        runInterleaved(Scripts, randomSchedule(Counts, R));
    const std::vector<TxTrace> Traces = committedTraces(Out);
    EXPECT_TRUE(findSerialWitness(
        Traces, [] { return std::make_unique<SetReplayer>(); },
        Set->signature()))
        << Param.Scheme << " trial " << Trial << " with "
        << Traces.size() << " committed of " << NumScripts;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SetSerializability,
    ::testing::Values(SetCase{"global", 1}, SetCase{"global", 2},
                      SetCase{"exclusive", 1}, SetCase{"exclusive", 2},
                      SetCase{"rw", 1}, SetCase{"rw", 2},
                      SetCase{"partitioned", 1}, SetCase{"partitioned", 2},
                      SetCase{"gatekeeper", 1}, SetCase{"gatekeeper", 2},
                      SetCase{"gatekeeper", 3}, SetCase{"gatekeeper", 4}),
    setCaseName);

TEST(SetSerializabilityExhaustive, GatekeeperAllSchedulesOfThreeTxs) {
  // Exhaustive over every interleaving of three 2-step transactions.
  const std::vector<std::vector<unsigned>> Schedules =
      enumerateSchedules({2, 2, 2});
  ASSERT_EQ(Schedules.size(), 90u);
  Rng R(77);
  for (unsigned Workload = 0; Workload != 6; ++Workload) {
    std::vector<std::array<std::pair<unsigned, int64_t>, 2>> Plan(3);
    for (auto &Script : Plan)
      for (auto &[Op, Key] : Script) {
        Op = static_cast<unsigned>(R.nextBelow(3));
        Key = static_cast<int64_t>(R.nextBelow(2));
      }
    for (const std::vector<unsigned> &Schedule : Schedules) {
      const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
      std::vector<TxScript> Scripts(3);
      for (unsigned S = 0; S != 3; ++S)
        for (const auto &[Op, Key] : Plan[S])
          Scripts[S].Steps.push_back(
              [&Set, Op = Op, Key = Key](Transaction &Tx) {
                bool Res = false;
                if (Op == 0)
                  Set->add(Tx, Key, Res);
                else if (Op == 1)
                  Set->remove(Tx, Key, Res);
                else
                  Set->contains(Tx, Key, Res);
              });
      const InterleaveOutcome Out = runInterleaved(Scripts, Schedule);
      EXPECT_TRUE(findSerialWitness(
          committedTraces(Out), [] { return std::make_unique<SetReplayer>(); },
          Set->signature()));
    }
  }
}

//===----------------------------------------------------------------------===//
// Accumulator: both implementations of the same lattice point
//===----------------------------------------------------------------------===//

TEST(AccumulatorSerializability, RandomScripts) {
  Rng R(5);
  for (const bool Gated : {false, true}) {
    for (unsigned Trial = 0; Trial != 30; ++Trial) {
      const std::unique_ptr<TxAccumulator> Acc =
          Gated ? makeGatedAccumulator() : makeLockedAccumulator();
      std::vector<TxScript> Scripts(3);
      for (TxScript &S : Scripts)
        for (unsigned J = 0; J != 2; ++J) {
          const bool IsInc = R.nextBool(0.6);
          const int64_t Amount = static_cast<int64_t>(R.nextBelow(5));
          S.Steps.push_back([&Acc, IsInc, Amount](Transaction &Tx) {
            if (IsInc) {
              Acc->increment(Tx, Amount);
            } else {
              int64_t V = 0;
              Acc->read(Tx, V);
            }
          });
        }
      const InterleaveOutcome Out =
          runInterleaved(Scripts, randomSchedule({2, 2, 2}, R));
      EXPECT_TRUE(findSerialWitness(
          committedTraces(Out),
          [] { return std::make_unique<AccumulatorReplayer>(); },
          std::to_string(Acc->value())));
    }
  }
}

//===----------------------------------------------------------------------===//
// Kd-tree: forward gatekeeper and memory-level STM
//===----------------------------------------------------------------------===//

namespace {

class KdSerializability : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(KdSerializability, GatekeeperAndStm) {
  Rng R(GetParam());
  for (const bool UseStm : {false, true}) {
    for (unsigned Trial = 0; Trial != 20; ++Trial) {
      PointStore Store;
      std::vector<int64_t> Ids;
      for (unsigned I = 0; I != 8; ++I) {
        Point3 P;
        for (unsigned D = 0; D != KdDims; ++D)
          P.C[D] = R.nextDouble();
        Ids.push_back(Store.addPoint(P));
      }
      const std::unique_ptr<TxKdTree> Tree =
          UseStm ? makeStmKdTree(&Store) : makeGatedKdTree(&Store);
      // Seed half of the points; remember the seed invocations so the
      // replayer can reconstruct the initial state.
      std::vector<Invocation> SeedInvs;
      {
        Transaction Seed(1000);
        Seed.setRecording(true);
        bool Changed = false;
        for (unsigned I = 0; I != 4; ++I)
          ASSERT_TRUE(Tree->add(Seed, Ids[I], Changed));
        for (const auto &[Tag, Inv] : Seed.history())
          SeedInvs.push_back(Inv);
        Seed.commit();
      }
      std::vector<TxScript> Scripts(3);
      for (TxScript &S : Scripts)
        for (unsigned J = 0; J != 2; ++J) {
          const int64_t Id = Ids[R.nextBelow(Ids.size())];
          const unsigned Op = static_cast<unsigned>(R.nextBelow(3));
          S.Steps.push_back([&Tree, Id, Op](Transaction &Tx) {
            bool Changed = false;
            int64_t Res = KdNullPoint;
            if (Op == 0)
              Tree->add(Tx, Id, Changed);
            else if (Op == 1)
              Tree->remove(Tx, Id, Changed);
            else
              Tree->nearest(Tx, Id, Res);
          });
        }
      const InterleaveOutcome Out =
          runInterleaved(Scripts, randomSchedule({2, 2, 2}, R));
      const auto MakeReplayer =
          [&Store, &SeedInvs]() -> std::unique_ptr<Replayer> {
        auto Rep = std::make_unique<KdReplayer>(&Store);
        for (const Invocation &Inv : SeedInvs)
          Rep->replay(0, Inv);
        return Rep;
      };
      EXPECT_TRUE(findSerialWitness(committedTraces(Out), MakeReplayer,
                                    Tree->signature()))
          << (UseStm ? "kd-ml" : "kd-gk") << " trial " << Trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdSerializability,
                         ::testing::Values(101, 202, 303, 404));

//===----------------------------------------------------------------------===//
// Union-find: generic general gatekeeper, specialized gatekeeper, STM
//===----------------------------------------------------------------------===//

namespace {

struct UfCase {
  const char *Variant;
  uint64_t Seed;
};

class UfSerializability : public ::testing::TestWithParam<UfCase> {
protected:
  static std::unique_ptr<TxUnionFind> makeUf(const std::string &Variant,
                                             size_t N) {
    if (Variant == "uf-gk")
      return makeGatedUnionFind(N);
    if (Variant == "uf-gk-spec")
      return makeSpecializedUnionFind(N);
    return makeStmUnionFind(N);
  }
};

std::string ufCaseName(const ::testing::TestParamInfo<UfCase> &Info) {
  std::string Name = Info.param.Variant;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_" + std::to_string(Info.param.Seed);
}

} // namespace

TEST_P(UfSerializability, RandomScripts) {
  const UfCase &Param = GetParam();
  Rng R(Param.Seed);
  constexpr size_t N = 8;
  for (unsigned Trial = 0; Trial != 30; ++Trial) {
    const std::unique_ptr<TxUnionFind> Uf = makeUf(Param.Variant, N);
    // Committed seed unions (also given to the replayer).
    std::vector<Invocation> SeedInvs;
    {
      Transaction Seed(1000);
      Seed.setRecording(true);
      bool Changed = false;
      for (unsigned I = 0; I != 2; ++I) {
        const int64_t A = static_cast<int64_t>(R.nextBelow(N));
        const int64_t B = static_cast<int64_t>(R.nextBelow(N));
        ASSERT_TRUE(Uf->unite(Seed, A, B, Changed));
      }
      for (const auto &[Tag, Inv] : Seed.history())
        SeedInvs.push_back(Inv);
      Seed.commit();
    }
    std::vector<TxScript> Scripts(3);
    for (TxScript &S : Scripts)
      for (unsigned J = 0; J != 2; ++J) {
        const int64_t A = static_cast<int64_t>(R.nextBelow(N));
        const int64_t B = static_cast<int64_t>(R.nextBelow(N));
        const bool IsUnion = R.nextBool(0.5);
        S.Steps.push_back([&Uf, A, B, IsUnion](Transaction &Tx) {
          if (IsUnion) {
            bool Changed = false;
            Uf->unite(Tx, A, B, Changed);
          } else {
            int64_t Rep = UfNone;
            Uf->find(Tx, A, Rep);
          }
        });
      }
    const InterleaveOutcome Out =
        runInterleaved(Scripts, randomSchedule({2, 2, 2}, R));
    const auto MakeReplayer = [&SeedInvs,
                               N]() -> std::unique_ptr<Replayer> {
      auto Rep = std::make_unique<UfReplayer>(N);
      for (const Invocation &Inv : SeedInvs)
        Rep->replay(0, Inv);
      return Rep;
    };
    EXPECT_TRUE(findSerialWitness(committedTraces(Out), MakeReplayer,
                                  Uf->signature()))
        << Param.Variant << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, UfSerializability,
    ::testing::Values(UfCase{"uf-gk", 1}, UfCase{"uf-gk", 2},
                      UfCase{"uf-gk", 3}, UfCase{"uf-gk-spec", 1},
                      UfCase{"uf-gk-spec", 2}, UfCase{"uf-gk-spec", 3},
                      UfCase{"uf-ml", 1}, UfCase{"uf-ml", 2}),
    ufCaseName);
