//===- tests/adt/OwnerLocksTest.cpp - Exclusive ownership ---------------------===//

#include "adt/OwnerLocks.h"

#include <gtest/gtest.h>

using namespace comlat;

TEST(OwnerLocksTest, ExclusivePerId) {
  OwnerLocks Owners("test");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Owners.own(T1, 5));
  EXPECT_FALSE(Owners.own(T2, 5));
  EXPECT_TRUE(T2.failed());
  EXPECT_TRUE(Owners.own(T1, 6));
  T2.abort();
  T1.commit();
}

TEST(OwnerLocksTest, ReentrantForOwner) {
  OwnerLocks Owners("test");
  Transaction T1(1);
  EXPECT_TRUE(Owners.own(T1, 5));
  EXPECT_TRUE(Owners.own(T1, 5));
  T1.commit();
}

TEST(OwnerLocksTest, ReleasedAtCommitAndAbort) {
  OwnerLocks Owners("test");
  {
    Transaction T1(1);
    EXPECT_TRUE(Owners.own(T1, 5));
    T1.commit();
  }
  {
    Transaction T2(2);
    EXPECT_TRUE(Owners.own(T2, 5));
    T2.fail();
    T2.abort();
  }
  Transaction T3(3);
  EXPECT_TRUE(Owners.own(T3, 5));
  T3.commit();
}

TEST(OwnerLocksTest, DistinctIdsIndependent) {
  OwnerLocks Owners("test");
  Transaction T1(1), T2(2);
  EXPECT_TRUE(Owners.own(T1, 1));
  EXPECT_TRUE(Owners.own(T2, 2));
  T1.commit();
  T2.commit();
  EXPECT_EQ(Owners.manager().numConflicts(), 0u);
}

TEST(OwnerLocksTest, SpecIsSimpleExclusive) {
  EXPECT_EQ(ownerSpec().classify(), ConditionClass::Simple);
}
