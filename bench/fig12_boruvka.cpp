//===- bench/fig12_boruvka.cpp - Fig. 12: Boruvka speedup ---------------------===//
//
// Regenerates Fig. 12 of "Exploiting the Commutativity Lattice": Boruvka's
// algorithm under the general gatekeeper (uf-gk, plus the paper's
// hand-specialized uf-gk-spec) vs the memory-level STM baseline (uf-ml).
// The paper's findings: general gatekeeping offers no *parallelism* edge
// here (Boruvka performs no interfering finds), but its overhead is far
// lower (~31% vs a TM), so it wins outright — semantic tracking beats
// logging every read and write of path compression.
//
// One hardware core here: rows report measured wall-clock plus the model
// projection T * o_d / min(a_d, p) (see fig10 for the rationale).
//
//===----------------------------------------------------------------------===//

#include "apps/Boruvka.h"
#include "obs/ObsCli.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const unsigned MeshSide = static_cast<unsigned>(Opts.getUInt("mesh", 64));
  const unsigned ParameterSide =
      static_cast<unsigned>(Opts.getUInt("parameter-mesh", 40));
  const unsigned MaxThreads =
      static_cast<unsigned>(Opts.getUInt("max-threads", 4));
  const uint64_t Seed = Opts.getUInt("seed", 42);

  const MeshInstance Mesh = randomMesh(MeshSide, MeshSide, Seed);
  const MeshInstance SmallMesh = randomMesh(ParameterSide, ParameterSide, Seed);
  double SeqSeconds = 0;
  {
    Boruvka App(&Mesh);
    App.runSequential(&SeqSeconds);
  }
  std::printf("Fig. 12: Boruvka on a %ux%u random mesh "
              "(sequential T = %.4fs).\n\n",
              MeshSide, MeshSide, SeqSeconds);

  for (const char *Variant : {"uf-ml", "uf-gk", "uf-gk-spec"}) {
    double Parallelism;
    {
      Boruvka App(&SmallMesh);
      Parallelism = App.runParameter(Variant).Rounds.parallelism();
    }
    double Overhead;
    {
      Boruvka App(&Mesh);
      const BoruvkaResult R = App.runSpeculative(Variant, {.NumThreads = 1});
      Overhead = SeqSeconds > 0 ? R.Exec.Seconds / SeqSeconds : 0;
    }
    std::printf("variant %-10s (parallelism a=%.2f at %ux%u, overhead "
                "o=%.2f)\n",
                Variant, Parallelism, ParameterSide, ParameterSide, Overhead);
    std::printf("  %8s %12s %10s %14s %16s\n", "threads", "measured(s)",
                "abort %", "model time(s)", "model speedup");
    for (unsigned Threads = 1; Threads <= MaxThreads; ++Threads) {
      Boruvka App(&Mesh);
      const BoruvkaResult R =
          App.runSpeculative(Variant, {.NumThreads = Threads});
      const double Model =
          SeqSeconds * Overhead /
          std::max(1.0, std::min(Parallelism, static_cast<double>(Threads)));
      std::printf("  %8u %12.4f %9.2f%% %14.4f %16.2f\n", Threads,
                  R.Exec.Seconds, 100.0 * R.Exec.abortRatio(), Model,
                  Model > 0 ? SeqSeconds / Model : 0.0);
    }
  }
  return 0;
}
