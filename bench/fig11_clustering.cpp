//===- bench/fig11_clustering.cpp - Fig. 11: clustering performance -----------===//
//
// Regenerates Fig. 11 of "Exploiting the Commutativity Lattice":
// agglomerative clustering under the forward gatekeeper (kd-gk) vs the
// memory-level STM baseline (kd-ml) as threads grow. The paper's headline:
// despite implementing the *most precise* specification, the gatekeeper
// has lower overhead and better scalability than memory-level detection,
// because it tracks a handful of semantic facts per invocation instead of
// every concrete node access.
//
// One hardware core here: per-thread rows report measured wall-clock of
// the real speculative run plus the paper's analytical projection
// T * o_d / min(a_d, p) built from measured overhead and ParaMeter
// parallelism (see fig10 for the rationale).
//
//===----------------------------------------------------------------------===//

#include "apps/Clustering.h"
#include "obs/ObsCli.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const size_t Points = Opts.getUInt("points", 4000);
  const size_t ParameterPoints = Opts.getUInt("parameter-points", 1200);
  const unsigned MaxThreads =
      static_cast<unsigned>(Opts.getUInt("max-threads", 4));
  const uint64_t Seed = Opts.getUInt("seed", 42);

  double SeqSeconds = 0;
  {
    Clustering App(Points, Seed);
    App.runSequential(&SeqSeconds);
  }
  std::printf("Fig. 11: agglomerative clustering, %zu random points "
              "(sequential T = %.4fs).\n\n",
              Points, SeqSeconds);

  for (const char *Variant : {"kd-gk", "kd-ml"}) {
    double Parallelism;
    {
      // ParaMeter on a reduced instance (the round model is itself a
      // simulation; parallelism ratios stabilize quickly with size).
      Clustering App(ParameterPoints, Seed);
      Parallelism = App.runParameter(Variant).Rounds.parallelism();
    }
    double Overhead;
    {
      Clustering App(Points, Seed);
      const ClusterResult R = App.runSpeculative(Variant, {.NumThreads = 1});
      Overhead = SeqSeconds > 0 ? R.Exec.Seconds / SeqSeconds : 0;
    }
    std::printf("variant %-6s (parallelism a=%.2f at %zu pts, overhead "
                "o=%.2f)\n",
                Variant, Parallelism, ParameterPoints, Overhead);
    std::printf("  %8s %12s %10s %14s\n", "threads", "measured(s)",
                "abort %", "model T*o/min(a,p)");
    for (unsigned Threads = 1; Threads <= MaxThreads; ++Threads) {
      Clustering App(Points, Seed);
      const ClusterResult R =
          App.runSpeculative(Variant, {.NumThreads = Threads});
      const double Model =
          SeqSeconds * Overhead /
          std::max(1.0, std::min(Parallelism, static_cast<double>(Threads)));
      std::printf("  %8u %12.4f %9.2f%% %14.4f\n", Threads, R.Exec.Seconds,
                  100.0 * R.Exec.abortRatio(), Model);
    }
  }
  return 0;
}
