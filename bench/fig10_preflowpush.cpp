//===- bench/fig10_preflowpush.cpp - Fig. 10: preflow-push performance -------===//
//
// Regenerates Fig. 10 of "Exploiting the Commutativity Lattice":
// preflow-push run-time under the three lattice points (ml / ex / part)
// as the thread count grows.
//
// This container exposes one hardware core, so raw wall-clock cannot show
// multicore scaling. Each series therefore reports, per thread count p:
//   * the measured run-time of the real speculative execution (threads are
//     real; on one core this exposes overhead and abort behaviour), and
//   * the paper's own analytical model T * o_d / min(a_d, p) (§5 "Putting
//     it all together"), instantiated with the measured sequential time T,
//     measured overhead o_d and ParaMeter parallelism a_d.
// The paper's observation — lower-overhead/lower-parallelism detectors win
// because a_d >> p for all three — shows up as the model ordering
// part < ex < ml at every p.
//
//===----------------------------------------------------------------------===//

#include "apps/Genrmf.h"
#include "apps/PreflowPush.h"
#include "obs/ObsCli.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const unsigned A = static_cast<unsigned>(Opts.getUInt("rmf-a", 8));
  const unsigned Frames = static_cast<unsigned>(Opts.getUInt("rmf-frames", 8));
  const unsigned MaxThreads =
      static_cast<unsigned>(Opts.getUInt("max-threads", 4));
  const uint64_t Seed = Opts.getUInt("seed", 42);

  double SeqSeconds = 0;
  {
    MaxflowInstance Inst = genrmf(A, Frames, 1, 100, Seed);
    PreflowPush::runSequential(*Inst.Graph, Inst.Source, Inst.Sink,
                               &SeqSeconds);
  }
  std::printf("Fig. 10: preflow-push, GENRMF a=%u frames=%u "
              "(sequential T = %.4fs).\n\n",
              A, Frames, SeqSeconds);

  const struct {
    const char *Name;
    const CommSpec &Spec;
  } Variants[] = {
      {"ml", mlFlowSpec()}, {"ex", exFlowSpec()}, {"part", partFlowSpec()}};

  for (const auto &V : Variants) {
    // Parallelism and overhead for the model row.
    double Parallelism;
    {
      MaxflowInstance Inst = genrmf(A, Frames, 1, 100, Seed);
      Parallelism = PreflowPush::runParameter(*Inst.Graph, Inst.Source,
                                              Inst.Sink, V.Spec, 32)
                        .Rounds.parallelism();
    }
    double Overhead;
    {
      MaxflowInstance Inst = genrmf(A, Frames, 1, 100, Seed);
      const PreflowResult R = PreflowPush::runSpeculative(
          *Inst.Graph, Inst.Source, Inst.Sink, V.Spec, {.NumThreads = 1}, 32);
      Overhead = SeqSeconds > 0 ? R.Exec.Seconds / SeqSeconds : 0;
    }
    std::printf("variant %-5s (parallelism a=%.2f, overhead o=%.2f)\n",
                V.Name, Parallelism, Overhead);
    std::printf("  %8s %12s %10s %14s\n", "threads", "measured(s)",
                "abort %", "model T*o/min(a,p)");
    for (unsigned Threads = 1; Threads <= MaxThreads; ++Threads) {
      MaxflowInstance Inst = genrmf(A, Frames, 1, 100, Seed);
      const PreflowResult R = PreflowPush::runSpeculative(
          *Inst.Graph, Inst.Source, Inst.Sink, V.Spec, {.NumThreads = Threads},
          32);
      const double Model =
          SeqSeconds * Overhead /
          std::max(1.0, std::min(Parallelism, static_cast<double>(Threads)));
      std::printf("  %8u %12.4f %9.2f%% %14.4f\n", Threads, R.Exec.Seconds,
                  100.0 * R.Exec.abortRatio(), Model);
    }
  }
  return 0;
}
