//===- bench/table2_setmicro.cpp - Table 2: the set microbenchmark ------------===//
//
// Regenerates Table 2 of "Exploiting the Commutativity Lattice": abort
// ratio and run-time of the set microbenchmark at 4 threads, under four
// conflict detectors drawn from the set's commutativity lattice, on two
// inputs (all keys distinct; keys in 10 equivalence classes).
//
// Expected shapes: the global lock aborts massively and is slowest on both
// inputs; with distinct keys the remaining schemes are abort-free and the
// cheap exclusive locks win; with repeated keys the gatekeeper (precise
// spec: non-mutating adds commute) has the fewest aborts, then r/w locks,
// then exclusive locks.
//
// Note: this container exposes one hardware thread, so real threads barely
// overlap and the measured abort column underestimates contention. The
// "model abort %" column therefore re-runs the same transaction stream
// under the ParaMeter round model (unbounded simultaneous transactions,
// --model-ops of them): its deferral ratio upper-bounds the abort ratio of
// a truly parallel run and preserves the paper's ordering — global lock
// highest by far; everything else abort-free on distinct keys; gatekeeper
// < r/w < exclusive on repeated keys.
//
//===----------------------------------------------------------------------===//

#include "apps/SetMicrobench.h"
#include "obs/ObsCli.h"
#include "support/AllocCount.h"
#include "support/Options.h"
#include "support/Random.h"

#include <cstdio>

using namespace comlat;

/// Measures steady-state heap allocations per committed operation on one
/// scheme: a single worker drives a pooled transaction over a small, fully
/// warmed key space, so every inline buffer, lock-table slot and stripe
/// log has reached its high-water capacity before counting starts. The
/// allocation-free hot-path invariant says the measured delta is zero
/// (CI enforces it for the gatekeeper CSV rows). Returns -1 when the
/// build does not count allocations (COMLAT_COUNT_ALLOCS=OFF).
static double steadyAllocsPerOp(SetScheme Scheme) {
  if (!allocCountingEnabled())
    return -1.0;
  constexpr unsigned KeySpace = 512;
  constexpr unsigned WarmOps = 4096;
  constexpr unsigned MeasuredOps = 4096;
  const std::unique_ptr<TxSet> Set = makeMicrobenchSet(Scheme);
  Rng R(7);
  Transaction Tx(1);
  TxId Next = 1;
  const auto RunOp = [&] {
    Tx.reset(Next++);
    const int64_t Key = static_cast<int64_t>(R.nextBelow(KeySpace));
    bool Res = false;
    const bool Ok = R.nextBool(0.5) ? Set->add(Tx, Key, Res)
                                    : Set->contains(Tx, Key, Res);
    // Single-threaded: conflicts are impossible, but keep the abort path
    // well-formed anyway.
    if (Ok)
      Tx.commit();
    else
      Tx.abort();
  };
  for (unsigned I = 0; I != WarmOps; ++I)
    RunOp();
  const uint64_t Before = totalAllocs();
  for (unsigned I = 0; I != MeasuredOps; ++I)
    RunOp();
  return static_cast<double>(totalAllocs() - Before) / MeasuredOps;
}

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  MicroParams P;
  P.NumOps = Opts.getUInt("ops", 200000);
  P.OpsPerTx = static_cast<unsigned>(Opts.getUInt("ops-per-tx", 8));
  P.Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  P.Seed = Opts.getUInt("seed", 42);
  if (!parseWorklistPolicy(Opts.getString("worklist", "chunked"), P.Policy)) {
    std::fprintf(stderr, "error: unknown --worklist value (use "
                         "chunked|fifo)\n");
    return 1;
  }
  const bool Csv = Opts.getBool("csv");

  const uint64_t ModelOps = Opts.getUInt("model-ops", 4096);

  if (Csv) {
    // The seed and privatization mode ride along in every row so an
    // archived CSV is self-describing enough to reproduce.
    // steady_allocs_per_op is a bench-level column (ExecStats rows are
    // golden-tested byte-exact): heap allocations per committed op once
    // the single-threaded probe is warm, or -1 when the build does not
    // count allocations. None of the Table 2 schemes diverts updates —
    // the set's add returns the changed bit, which makes it
    // non-privatizable — so privatized is always 0 here; the privatized
    // column exists so these rows merge cleanly with privatized runs
    // (bench/micro_schemes.cpp's blind-insert fixtures).
    std::printf("scheme,input,seed,privatized,%s,steady_allocs_per_op\n",
                ExecStats::csvHeader().c_str());
    const SetScheme Schemes[] = {SetScheme::GlobalLock, SetScheme::Exclusive,
                                 SetScheme::ReadWrite, SetScheme::Gatekeeper};
    for (const SetScheme Scheme : Schemes) {
      const double SteadyAllocs = steadyAllocsPerOp(Scheme);
      for (const unsigned Input : {0u, 1u}) {
        MicroParams Local = P;
        Local.KeyClasses = Input == 0 ? 0 : 10;
        const std::unique_ptr<TxSet> Set = makeMicrobenchSet(Scheme);
        const ExecStats Stats = runSetMicrobench(*Set, Local);
        std::printf("%s,%s,%llu,0,%s,%.4f\n", setSchemeName(Scheme),
                    Input == 0 ? "distinct" : "10-class",
                    static_cast<unsigned long long>(P.Seed),
                    Stats.toCsvRow().c_str(), SteadyAllocs);
      }
    }
    return 0;
  }

  std::printf("Table 2: set microbenchmark, %llu ops, %u ops/tx, %u "
              "threads, seed %llu;\nmodel columns from the "
              "unbounded-processor round model over %llu ops.\n\n",
              static_cast<unsigned long long>(P.NumOps), P.OpsPerTx,
              P.Threads, static_cast<unsigned long long>(P.Seed),
              static_cast<unsigned long long>(ModelOps));
  std::printf("%-20s | %-9s %-9s %-12s | %-9s %-9s %-12s\n", "", "distinct",
              "", "", "10-class", "", "");
  std::printf("%-20s | %9s %9s %12s | %9s %9s %12s\n", "scheme", "abort %",
              "time(s)", "model abort%", "abort %", "time(s)",
              "model abort%");

  const SetScheme Schemes[] = {SetScheme::GlobalLock, SetScheme::Exclusive,
                               SetScheme::ReadWrite, SetScheme::Gatekeeper};
  for (const SetScheme Scheme : Schemes) {
    double Abort[2], Time[2], Model[2];
    for (const unsigned Input : {0u, 1u}) {
      MicroParams Local = P;
      Local.KeyClasses = Input == 0 ? 0 : 10;
      const std::unique_ptr<TxSet> Set = makeMicrobenchSet(Scheme);
      const ExecStats Stats = runSetMicrobench(*Set, Local);
      Abort[Input] = 100.0 * Stats.abortRatio();
      Time[Input] = Stats.Seconds;
      MicroParams ModelParams = Local;
      ModelParams.NumOps = ModelOps;
      // The paper's microbenchmark runs one operation per transaction;
      // the lockstep model then represents exactly `threads` concurrent
      // operations.
      ModelParams.OpsPerTx = 1;
      const std::unique_ptr<TxSet> ModelSet = makeMicrobenchSet(Scheme);
      const RoundStats Rounds =
          runSetMicrobenchRounds(*ModelSet, ModelParams);
      Model[Input] = 100.0 * Rounds.abortRatio();
    }
    std::printf("%-20s | %8.2f%% %9.3f %11.2f%% | %8.2f%% %9.3f %11.2f%%\n",
                setSchemeName(Scheme), Abort[0], Time[0], Model[0], Abort[1],
                Time[1], Model[1]);
  }

  // Unprotected sequential baseline for context.
  {
    MicroParams Local = P;
    Local.Threads = 1;
    const std::unique_ptr<TxSet> Set = makeMicrobenchSet(SetScheme::Direct);
    const ExecStats Stats = runSetMicrobench(*Set, Local);
    std::printf("%-20s | %9s %9.3f | (sequential baseline, distinct "
                "input)\n",
                "direct (1 thread)", "-", Stats.Seconds);
  }
  return 0;
}
