//===- bench/table1_overhead.cpp - Table 1: conflict-detection overhead ------===//
//
// Regenerates the overhead column of Table 1: the ratio between the
// parallelized application running on a single thread and the plain
// sequential implementation (the paper's o_d). Every measurement is the
// minimum over --reps runs to suppress scheduler noise. Expected shapes:
// preflow overhead part <= ex/ml; the gatekeepers' overheads modest
// (kd-gk below kd-ml; uf-gk below uf-ml; the specialized union-find
// gatekeeper far below both) because they track semantic state instead of
// every concrete access.
//
//===----------------------------------------------------------------------===//

#include "apps/Boruvka.h"
#include "apps/Clustering.h"
#include "apps/Genrmf.h"
#include "apps/PreflowPush.h"
#include "obs/ObsCli.h"
#include "support/Options.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <functional>

using namespace comlat;

/// Minimum of \p Reps timed runs of \p Run (which returns seconds).
static double bestOf(unsigned Reps, const std::function<double()> &Run) {
  double Best = Run();
  for (unsigned I = 1; I < Reps; ++I)
    Best = std::min(Best, Run());
  return Best;
}

static void printRow(const char *App, const char *Variant, double Seconds,
                     double BaselineSeconds) {
  std::printf("%-14s %-10s %12.4f %12.4f %10.2f\n", App, Variant, Seconds,
              BaselineSeconds,
              BaselineSeconds > 0 ? Seconds / BaselineSeconds : 0.0);
}

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const unsigned RmfA = static_cast<unsigned>(Opts.getUInt("rmf-a", 8));
  const unsigned RmfFrames =
      static_cast<unsigned>(Opts.getUInt("rmf-frames", 8));
  const unsigned MeshSide = static_cast<unsigned>(Opts.getUInt("mesh", 64));
  const size_t Points = Opts.getUInt("points", 4000);
  const uint64_t Seed = Opts.getUInt("seed", 42);
  const unsigned Reps = static_cast<unsigned>(Opts.getUInt("reps", 3));

  std::printf("Table 1 (overhead column): single-threaded speculative "
              "run-time vs.\nplain sequential run-time (best of %u); "
              "overhead o_d is their ratio.\n\n",
              Reps);
  std::printf("%-14s %-10s %12s %12s %10s\n", "app", "variant", "spec-1t(s)",
              "seq(s)", "overhead");

  // Preflow-push.
  {
    const double SeqSeconds = bestOf(Reps, [&] {
      MaxflowInstance Inst = genrmf(RmfA, RmfFrames, 1, 100, Seed);
      double S = 0;
      PreflowPush::runSequential(*Inst.Graph, Inst.Source, Inst.Sink, &S);
      return S;
    });
    const struct {
      const char *Name;
      const CommSpec &Spec;
    } Variants[] = {
        {"ml", mlFlowSpec()}, {"ex", exFlowSpec()}, {"part", partFlowSpec()}};
    for (const auto &V : Variants) {
      const double Spec1t = bestOf(Reps, [&] {
        MaxflowInstance Inst = genrmf(RmfA, RmfFrames, 1, 100, Seed);
        return PreflowPush::runSpeculative(*Inst.Graph, Inst.Source,
                                           Inst.Sink, V.Spec,
                                           {.NumThreads = 1}, 32)
            .Exec.Seconds;
      });
      printRow("preflow-push", V.Name, Spec1t, SeqSeconds);
    }
  }

  // Boruvka.
  {
    const MeshInstance Mesh = randomMesh(MeshSide, MeshSide, Seed);
    const double SeqSeconds = bestOf(Reps, [&] {
      Boruvka App(&Mesh);
      double S = 0;
      App.runSequential(&S);
      return S;
    });
    for (const char *Variant : {"uf-ml", "uf-gk", "uf-gk-spec"}) {
      const double Spec1t = bestOf(Reps, [&] {
        Boruvka App(&Mesh);
        return App.runSpeculative(Variant, {.NumThreads = 1}).Exec.Seconds;
      });
      printRow("boruvka", Variant, Spec1t, SeqSeconds);
    }
  }

  // Clustering.
  {
    const double SeqSeconds = bestOf(Reps, [&] {
      Clustering App(Points, Seed);
      double S = 0;
      App.runSequential(&S);
      return S;
    });
    for (const char *Variant : {"kd-ml", "kd-gk"}) {
      const double Spec1t = bestOf(Reps, [&] {
        Clustering App(Points, Seed);
        return App.runSpeculative(Variant, {.NumThreads = 1}).Exec.Seconds;
      });
      printRow("clustering", Variant, Spec1t, SeqSeconds);
    }
  }
  return 0;
}
