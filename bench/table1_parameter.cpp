//===- bench/table1_parameter.cpp - Table 1: path length & parallelism -------===//
//
// Regenerates the ParaMeter columns of Table 1 of "Exploiting the
// Commutativity Lattice": critical path length and average parallelism for
//
//   preflow-push : part / ex / ml          (abstract-lock lattice points)
//   Boruvka      : uf-ml / uf-gk (+ spec)  (general gatekeeping vs STM)
//   clustering   : kd-ml / kd-gk           (forward gatekeeping vs STM)
//
// Inputs are scaled-down versions of the paper's (GENRMF, random mesh,
// random points); override with --rmf-a/--rmf-frames, --mesh, --points.
// Expected shapes (see EXPERIMENTS.md): parallelism part < ex <= ml for
// preflow-push; kd-gk >> kd-ml; uf-gk ~ uf-ml.
//
//===----------------------------------------------------------------------===//

#include "apps/Boruvka.h"
#include "apps/Clustering.h"
#include "apps/Genrmf.h"
#include "apps/PreflowPush.h"
#include "obs/ObsCli.h"
#include "support/Options.h"
#include "support/Timer.h"

#include <cstdio>

using namespace comlat;

static bool CsvMode = false;

static void printRow(const char *App, const char *Variant,
                     const RoundStats &Stats) {
  if (CsvMode) {
    std::printf("%s,%s,%s\n", App, Variant, Stats.toCsvRow().c_str());
    return;
  }
  std::printf("%-14s %-10s %10llu %12llu %12llu %14.2f\n", App, Variant,
              static_cast<unsigned long long>(Stats.Committed),
              static_cast<unsigned long long>(Stats.Aborted),
              static_cast<unsigned long long>(Stats.Rounds),
              Stats.parallelism());
}

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const unsigned RmfA = static_cast<unsigned>(Opts.getUInt("rmf-a", 8));
  const unsigned RmfFrames =
      static_cast<unsigned>(Opts.getUInt("rmf-frames", 4));
  const unsigned MeshSide = static_cast<unsigned>(Opts.getUInt("mesh", 40));
  const size_t Points = Opts.getUInt("points", 1200);
  const uint64_t Seed = Opts.getUInt("seed", 42);
  CsvMode = Opts.getBool("csv");

  if (CsvMode) {
    std::printf("app,variant,%s\n", ExecStats::csvHeader().c_str());
  } else {
    std::printf("Table 1 (ParaMeter model): committed iterations, deferred "
                "executions,\ncritical path length (rounds) and average "
                "parallelism.\n\n");
    std::printf("%-14s %-10s %10s %12s %12s %14s\n", "app", "variant",
                "committed", "deferred", "path-len", "parallelism");
  }

  // Preflow-push on GENRMF.
  {
    const struct {
      const char *Name;
      const CommSpec &Spec;
    } Variants[] = {
        {"ml", mlFlowSpec()}, {"ex", exFlowSpec()}, {"part", partFlowSpec()}};
    for (const auto &V : Variants) {
      MaxflowInstance Inst = genrmf(RmfA, RmfFrames, 1, 100, Seed);
      const PreflowRoundResult R = PreflowPush::runParameter(
          *Inst.Graph, Inst.Source, Inst.Sink, V.Spec, /*Partitions=*/32);
      printRow("preflow-push", V.Name, R.Rounds);
    }
  }

  // Boruvka on a random mesh.
  for (const char *Variant : {"uf-ml", "uf-gk", "uf-gk-spec"}) {
    const MeshInstance Mesh = randomMesh(MeshSide, MeshSide, Seed);
    Boruvka App(&Mesh);
    const BoruvkaResult R = App.runParameter(Variant);
    printRow("boruvka", Variant, R.Rounds);
  }

  // Agglomerative clustering on random points.
  for (const char *Variant : {"kd-ml", "kd-gk"}) {
    Clustering App(Points, Seed);
    const ClusterResult R = App.runParameter(Variant);
    printRow("clustering", Variant, R.Rounds);
  }
  return 0;
}
