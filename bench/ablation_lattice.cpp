//===- bench/ablation_lattice.cpp - §4 ablations over the lattice -------------===//
//
// Ablations for the design choices §4 of the paper calls out:
//
//  1. Moving down the set lattice (precise -> r/w -> exclusive -> global):
//     per-operation overhead falls while the ParaMeter parallelism of a
//     conflict-heavy workload falls too — the precision/performance
//     trade-off of §4.1, measured on one axis each.
//
//  2. Disciplined lock coarsening (§4.2): sweeping the partition count of
//     the partitioned preflow-push detector from 1 (a global lock) toward
//     many partitions interpolates between the bottom of the lattice and
//     plain per-node locks: parallelism grows with partitions, overhead
//     stays near the exclusive scheme's.
//
//  3. Generic vs specialized general gatekeeper for union-find: the
//     systematic rollback construction vs the paper's hand-built
//     find-reps/loser-rep logs, same workload.
//
//===----------------------------------------------------------------------===//

#include "apps/Boruvka.h"
#include "apps/Genrmf.h"
#include "apps/PreflowPush.h"
#include "apps/SetMicrobench.h"
#include "core/Lattice.h"
#include "runtime/RoundExecutor.h"
#include "obs/ObsCli.h"
#include "support/Options.h"
#include "support/Random.h"

#include <cstdio>

using namespace comlat;

/// Round-model parallelism of a conflict-heavy set workload (repeated
/// keys) under one lattice point.
static double setParallelism(const CommSpec &Spec, bool Gated,
                             uint64_t Seed) {
  const std::unique_ptr<TxSet> Set =
      Gated ? makeGatedSet(Spec) : makeLockedSet(Spec);
  std::vector<int64_t> Items;
  for (int64_t I = 0; I != 256; ++I)
    Items.push_back(I);
  Rng R(Seed);
  std::vector<std::pair<int64_t, unsigned>> Plan;
  for (int64_t I = 0; I != 256; ++I)
    Plan.emplace_back(static_cast<int64_t>(R.nextBelow(12)),
                      static_cast<unsigned>(R.nextBelow(2)));
  RoundExecutor Exec;
  const RoundStats Stats =
      Exec.run(Items, [&Set, &Plan](Transaction &Tx, int64_t Item,
                                    TxWorklist &) {
        const auto &[Key, Op] = Plan[static_cast<size_t>(Item)];
        bool Res = false;
        if (Op == 0)
          Set->add(Tx, Key, Res);
        else
          Set->contains(Tx, Key, Res);
      });
  return Stats.parallelism();
}

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  obs::ScopedObs Obs(Opts);
  const uint64_t Seed = Opts.getUInt("seed", 42);
  const uint64_t Ops = Opts.getUInt("ops", 100000);

  // --- 1. Set lattice tour -------------------------------------------------
  std::printf("Ablation 1: the set lattice (conflict-heavy 12-key workload "
              "for parallelism;\n%llu single-thread ops for per-op "
              "overhead).\n\n",
              static_cast<unsigned long long>(Ops));
  std::printf("%-22s %-18s %14s %14s\n", "spec", "class", "parallelism",
              "1t time (s)");
  const struct {
    const char *Label;
    const CommSpec &Spec;
    bool Gated;
  } Points[] = {
      {"precise (Fig.2)", preciseSetSpec(), true},
      {"r/w (Fig.3)", strengthenedSetSpec(), false},
      {"exclusive", exclusiveSetSpec(), false},
      {"partitioned(16)", partitionedSetSpec(), false},
      {"bottom (global)", bottomSetSpec(), false},
  };
  for (const auto &P : Points) {
    const double Par = setParallelism(P.Spec, P.Gated, Seed);
    MicroParams MP;
    MP.NumOps = Ops;
    MP.OpsPerTx = 8;
    MP.Threads = 1;
    MP.KeyClasses = 0;
    MP.Seed = Seed;
    const std::unique_ptr<TxSet> Set =
        P.Gated ? makeGatedSet(P.Spec) : makeLockedSet(P.Spec);
    const ExecStats Stats = runSetMicrobench(*Set, MP);
    std::printf("%-22s %-18s %14.2f %14.4f\n", P.Label,
                conditionClassName(P.Spec.classify()), Par, Stats.Seconds);
  }

  // --- 2. Partition-count sweep (§4.2) ------------------------------------
  std::printf("\nAblation 2: preflow-push partition sweep (GENRMF 6x6, "
              "ParaMeter model).\n\n");
  std::printf("%10s %14s %12s\n", "partitions", "parallelism", "path-len");
  for (const unsigned Parts : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    MaxflowInstance Inst = genrmf(6, 6, 1, 100, Seed);
    const PreflowRoundResult R = PreflowPush::runParameter(
        *Inst.Graph, Inst.Source, Inst.Sink, partFlowSpec(), Parts);
    std::printf("%10u %14.2f %12llu\n", Parts, R.Rounds.parallelism(),
                static_cast<unsigned long long>(R.Rounds.Rounds));
  }

  // --- 3. Generic vs specialized union-find gatekeeper ---------------------
  std::printf("\nAblation 3: generic rollback gatekeeper vs the paper's "
              "specialized one\n(Boruvka, 48x48 mesh, single thread).\n\n");
  std::printf("%-12s %12s %14s\n", "variant", "time (s)", "parallelism");
  const MeshInstance Mesh = randomMesh(48, 48, Seed);
  for (const char *Variant : {"uf-gk", "uf-gk-spec"}) {
    Boruvka App(&Mesh);
    const BoruvkaResult R = App.runSpeculative(Variant, {.NumThreads = 1});
    Boruvka App2(&Mesh);
    const BoruvkaResult P = App2.runParameter(Variant);
    std::printf("%-12s %12.4f %14.2f\n", Variant, R.Exec.Seconds,
                P.Rounds.parallelism());
  }
  return 0;
}
