//===- bench/micro_schemes.cpp - Per-invocation scheme costs ------------------===//
//
// Google-benchmark microbenchmarks of the three conflict-detection
// constructions (§3.4's overhead hierarchy): per-invocation cost of
// abstract locking, forward gatekeeping (including its growth with the
// number of live invocations it must check against) and general
// gatekeeping's rollback evaluation, plus the memory-level STM baseline.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceExport.h"
#include "stm/ObjectStm.h"
#include "support/AllocCount.h"
#include "support/Random.h"
#include "svc/Wal.h"

#include <benchmark/benchmark.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace comlat;

// Seed for every randomized key stream below; --seed=N overrides it in the
// custom main, which also records it in the benchmark context so archived
// JSON output is reproducible.
static uint64_t BenchSeed = 42;

/// A key stream drawn from the shared xoshiro generator: uniform over
/// [0, 4096), decorrelated across benchmarks by a per-stream salt.
class KeyStream {
public:
  explicit KeyStream(uint64_t Salt) : R(BenchSeed ^ Salt) {}
  int64_t next() { return static_cast<int64_t>(R.nextBelow(4096)); }

private:
  Rng R;
};


/// Scope guard reporting heap allocations per iteration as the
/// "allocs_per_op" user counter: the process-wide allocation delta over
/// this benchmark's lifetime divided by its iteration count. Includes the
/// one-time warm-up growth of the structure under test, which amortizes to
/// ~0 over the measured iteration counts; -1 when the build does not count
/// allocations (COMLAT_COUNT_ALLOCS=OFF).
class AllocsPerOp {
public:
  explicit AllocsPerOp(benchmark::State &State)
      : State(State), Start(totalAllocs()) {}
  ~AllocsPerOp() {
    const double Iters = static_cast<double>(State.iterations());
    State.counters["allocs_per_op"] =
        allocCountingEnabled() && Iters != 0
            ? static_cast<double>(totalAllocs() - Start) / Iters
            : -1.0;
  }

private:
  benchmark::State &State;
  uint64_t Start;
};

/// Baseline: the unprotected concrete structure.
static void BM_DirectSetAdd(benchmark::State &State) {
  const std::unique_ptr<TxSet> Set = makeDirectSet();
  KeyStream Keys(0x1);
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(1);
    bool Res = false;
    Set->add(Tx, Keys.next(), Res);
    benchmark::DoNotOptimize(Res);
    Tx.commit();
  }
}
BENCHMARK(BM_DirectSetAdd);

/// Abstract locking: one exclusive key lock per op.
static void BM_AbstractLockSetAdd(benchmark::State &State) {
  const std::unique_ptr<TxSet> Set = makeLockedSet(exclusiveSetSpec());
  KeyStream Keys(0x2);
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(1);
    bool Res = false;
    Set->add(Tx, Keys.next(), Res);
    benchmark::DoNotOptimize(Res);
    Tx.commit();
  }
}
BENCHMARK(BM_AbstractLockSetAdd);

/// Abstract locking with read/write key locks (Fig. 3 scheme).
static void BM_RwLockSetContains(benchmark::State &State) {
  const std::unique_ptr<TxSet> Set = makeLockedSet(strengthenedSetSpec());
  KeyStream Keys(0x3);
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(1);
    bool Res = false;
    Set->contains(Tx, Keys.next(), Res);
    benchmark::DoNotOptimize(Res);
    Tx.commit();
  }
}
BENCHMARK(BM_RwLockSetContains);

/// Forward gatekeeping with a varying number of live invocations to check
/// against (the Checks cost of §3.3.1).
static void BM_GatekeeperSetAdd(benchmark::State &State) {
  const std::unique_ptr<TxSet> Set = makeGatedSet(preciseSetSpec());
  const unsigned LiveInvocations = static_cast<unsigned>(State.range(0));
  // A long-lived transaction holds this many active invocations.
  Transaction Holder(999);
  for (unsigned I = 0; I != LiveInvocations; ++I) {
    bool Res = false;
    Set->add(Holder, 1000000 + I, Res);
  }
  KeyStream Keys(0x4); // stays below 1000000: never conflicts with Holder
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(1);
    bool Res = false;
    Set->add(Tx, Keys.next(), Res);
    benchmark::DoNotOptimize(Res);
    Tx.commit();
  }
  Holder.commit();
}
BENCHMARK(BM_GatekeeperSetAdd)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

/// Gatekeeper admission throughput as the thread count grows, contrasting
/// the two hot paths of the striped refactor:
///
///  * the *separable* mix (precise spec, `x != y` disjuncts) admits on the
///    per-key stripe — disjoint keys never meet a shared mutex;
///  * the *non-separable* mix (partitioned spec, `part(x) != part(y)`
///    separates key classes, not keys) falls back to the single global
///    stripe, the classic critical section.
///
/// Items processed = admissions, so the reported items/sec is checks/sec.
class GateThroughputBase : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State &State) override {
    if (State.thread_index() == 0)
      Set = makeGatedSet(spec());
  }
  void TearDown(const benchmark::State &State) override {
    if (State.thread_index() == 0)
      Set.reset();
  }

protected:
  virtual const CommSpec &spec() const = 0;

  void admitLoop(benchmark::State &State) {
    // Per-thread disjoint key ranges: cross-thread pairs always satisfy
    // the separable disjunct (and usually cross partitions too, so the
    // non-separable run measures serialization, not aborts).
    int64_t Key = static_cast<int64_t>(State.thread_index()) << 20;
    for (auto _ : State) {
      Transaction Tx(static_cast<TxId>(State.thread_index()) + 1);
      bool Res = false;
      if (Set->add(Tx, ++Key, Res)) {
        benchmark::DoNotOptimize(Res);
        Tx.commit();
      } else {
        Tx.abort();
      }
    }
    State.SetItemsProcessed(State.iterations());
  }

  std::unique_ptr<TxSet> Set;
};

class GateThroughputSeparable : public GateThroughputBase {
  const CommSpec &spec() const override { return preciseSetSpec(); }
};

class GateThroughputNonSeparable : public GateThroughputBase {
  const CommSpec &spec() const override { return partitionedSetSpec(); }
};

BENCHMARK_DEFINE_F(GateThroughputSeparable, Admit)(benchmark::State &State) {
  admitLoop(State);
}
BENCHMARK_REGISTER_F(GateThroughputSeparable, Admit)
    ->ThreadRange(1, 8)
    ->UseRealTime();

BENCHMARK_DEFINE_F(GateThroughputNonSeparable, Admit)
(benchmark::State &State) { admitLoop(State); }
BENCHMARK_REGISTER_F(GateThroughputNonSeparable, Admit)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Memory-level STM: one object lock per concrete access.
static void BM_StmRead(benchmark::State &State) {
  ObjectStm Stm("bench");
  KeyStream Keys(0x5);
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(1);
    Stm.read(Tx, static_cast<uint64_t>(Keys.next()));
    Tx.commit();
  }
}
BENCHMARK(BM_StmRead);

/// union-find finds under each scheme: the paper's §1 motivating overhead
/// (path compression makes uf-ml track every touched element).
template <typename MakeFn>
static void ufFindBench(benchmark::State &State, MakeFn Make) {
  const std::unique_ptr<TxUnionFind> Uf = Make(4096);
  {
    Transaction Init(1);
    bool Changed = false;
    for (int64_t I = 1; I != 4096; ++I)
      Uf->unite(Init, 0, I, Changed);
    Init.commit();
  }
  KeyStream Keys(0x6);
  AllocsPerOp Allocs(State);
  for (auto _ : State) {
    Transaction Tx(2);
    int64_t Rep = UfNone;
    Uf->find(Tx, Keys.next(), Rep);
    benchmark::DoNotOptimize(Rep);
    Tx.commit();
  }
}

static void BM_UfFindDirect(benchmark::State &State) {
  ufFindBench(State, makeDirectUnionFind);
}
BENCHMARK(BM_UfFindDirect);

static void BM_UfFindGeneralGatekeeper(benchmark::State &State) {
  ufFindBench(State, makeGatedUnionFind);
}
BENCHMARK(BM_UfFindGeneralGatekeeper);

static void BM_UfFindSpecializedGatekeeper(benchmark::State &State) {
  ufFindBench(State, makeSpecializedUnionFind);
}
BENCHMARK(BM_UfFindSpecializedGatekeeper);

static void BM_UfFindStm(benchmark::State &State) {
  ufFindBench(State, makeStmUnionFind);
}
BENCHMARK(BM_UfFindStm);

/// Rollback evaluation cost: a find checked against an active union must
/// unwind and replay the mutation log (general gatekeeping's worst case).
static void BM_UfRollbackEvaluation(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    const std::unique_ptr<TxUnionFind> Uf = makeGatedUnionFind(64);
    Transaction Holder(1);
    bool Changed = false;
    // An active union forces rollback evaluation on every checked find.
    Uf->unite(Holder, 0, 1, Changed);
    State.ResumeTiming();
    Transaction Tx(2);
    int64_t Rep = UfNone;
    Uf->find(Tx, 5, Rep); // Unrelated element: commutes, but evaluates
                          // rep(s1, 5) by rollback.
    benchmark::DoNotOptimize(Rep);
    Tx.commit();
    State.PauseTiming();
    Holder.commit();
    State.ResumeTiming();
  }
}
BENCHMARK(BM_UfRollbackEvaluation);

/// Gatekeeper on a SIMPLE spec vs generated locks for the same spec: the
/// cost of over-engineering a lattice point (§3.4's hierarchy).
static void BM_AccumulatorIncrementLocks(benchmark::State &State) {
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  for (auto _ : State) {
    Transaction Tx(1);
    Acc->increment(Tx, 1);
    Tx.commit();
  }
}
BENCHMARK(BM_AccumulatorIncrementLocks);

static void BM_AccumulatorIncrementGatekeeper(benchmark::State &State) {
  const std::unique_ptr<TxAccumulator> Acc = makeGatedAccumulator();
  for (auto _ : State) {
    Transaction Tx(1);
    Acc->increment(Tx, 1);
    Tx.commit();
  }
}
BENCHMARK(BM_AccumulatorIncrementGatekeeper);

/// Multi-threaded increment throughput: the privatized diversion
/// (per-worker replicas, no gate stripe, no lock) against the same
/// workload through the plain gatekeeper, whose single stripe is the
/// classic critical section. Items processed = committed increments. On
/// the single-threaded run the fixture warms a pooled transaction first
/// and reports exact steady-state heap allocations per op as
/// "allocs_per_op" (the privatized fast path must report 0; CI enforces
/// it) — multi-threaded windows overlap across workers, so only the
/// 1-thread row carries the counter.
class AccumulatorThroughputBase : public benchmark::Fixture {
public:
  // google-benchmark runs SetUp / the case / TearDown per thread with no
  // barrier around them (the only built-in barriers bracket the timed
  // loop), so the fixture provides its own handshakes: Ready gates every
  // thread's first touch of Acc on thread 0 finishing construction, and
  // Done lets thread 0's TearDown wait for every thread's TotalIncs
  // contribution before checking the sum.
  void SetUp(const benchmark::State &State) override {
    if (State.thread_index() == 0) {
      Acc = make();
      TotalIncs.store(0, std::memory_order_relaxed);
      Done.store(0, std::memory_order_relaxed);
      Ready.store(1, std::memory_order_release);
    } else {
      while (Ready.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
    }
  }
  void TearDown(const benchmark::State &State) override {
    if (State.thread_index() != 0)
      return;
    while (Done.load(std::memory_order_acquire) !=
           static_cast<int>(State.threads()))
      std::this_thread::yield();
    // Quiesced read: merges outstanding privatized deltas, and checks the
    // replicas actually drained into the master.
    const int64_t Got = Acc->value();
    const int64_t Want = TotalIncs.load(std::memory_order_relaxed);
    if (Got != Want) {
      std::fprintf(stderr, "AccumulatorThroughput: sum %lld != %lld\n",
                   static_cast<long long>(Got),
                   static_cast<long long>(Want));
      std::abort();
    }
    Acc.reset();
    Ready.store(0, std::memory_order_relaxed);
  }

protected:
  virtual std::unique_ptr<TxAccumulator> make() const = 0;

  void incLoop(benchmark::State &State) {
    TxId Next = (static_cast<TxId>(State.thread_index()) << 32) + 1;
    Transaction Tx(Next);
    // Warm the pooled transaction and this worker's replica so the
    // measured window is steady state.
    for (unsigned I = 0; I != 1024; ++I) {
      Tx.reset(Next++);
      if (Acc->increment(Tx, 0))
        Tx.commit();
      else
        Tx.abort();
    }
    const bool Measure = State.threads() == 1;
    const uint64_t Start = totalAllocs();
    int64_t Incs = 0;
    for (auto _ : State) {
      Tx.reset(Next++);
      if (Acc->increment(Tx, 1)) {
        Tx.commit();
        ++Incs;
      } else {
        Tx.abort();
      }
    }
    if (Measure)
      State.counters["allocs_per_op"] =
          allocCountingEnabled() && State.iterations() != 0
              ? static_cast<double>(totalAllocs() - Start) /
                    static_cast<double>(State.iterations())
              : -1.0;
    TotalIncs.fetch_add(Incs, std::memory_order_relaxed);
    Done.fetch_add(1, std::memory_order_release);
    State.SetItemsProcessed(State.iterations());
  }

  std::unique_ptr<TxAccumulator> Acc;
  std::atomic<int64_t> TotalIncs{0};
  std::atomic<int> Ready{0};
  std::atomic<int> Done{0};
};

class AccumulatorThroughputGated : public AccumulatorThroughputBase {
  std::unique_ptr<TxAccumulator> make() const override {
    return makeGatedAccumulator();
  }
};

class AccumulatorThroughputPrivatized : public AccumulatorThroughputBase {
  std::unique_ptr<TxAccumulator> make() const override {
    return makePrivatizedAccumulator();
  }
};

BENCHMARK_DEFINE_F(AccumulatorThroughputGated, Inc)(benchmark::State &State) {
  incLoop(State);
}
BENCHMARK_REGISTER_F(AccumulatorThroughputGated, Inc)
    ->ThreadRange(1, 8)
    ->UseRealTime();

BENCHMARK_DEFINE_F(AccumulatorThroughputPrivatized, Inc)
(benchmark::State &State) { incLoop(State); }
BENCHMARK_REGISTER_F(AccumulatorThroughputPrivatized, Inc)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Durable-commit throughput: each iteration logs one 4-op batch record
/// and blocks until its covering fdatasync — the full ACK-release cost a
/// durable server pays per commit. Single-threaded this is fsync-bound
/// (one group per record, the worst case); with concurrent appenders the
/// group-commit window coalesces records per sync, so items/sec scaling
/// past the 1-thread row is the whole point of the design. The run's
/// comlat_wal_appends_total / comlat_wal_fsyncs_total registry counters
/// (dumped via --metrics-json) carry the achieved group size; the
/// bench-smoke durable gate reads them from the service-bench leg.
class WalAppendThroughput : public benchmark::Fixture {
public:
  // Same per-thread SetUp/TearDown discipline as AccumulatorThroughputBase:
  // Ready gates every thread on thread 0 constructing the log, Done lets
  // thread 0 destroy it only after every appender finished.
  void SetUp(const benchmark::State &State) override {
    if (State.thread_index() == 0) {
      char Template[] = "/tmp/comlat-walbench-XXXXXX";
      if (::mkdtemp(Template) == nullptr) {
        std::perror("mkdtemp");
        std::abort();
      }
      Dir = Template;
      svc::WalConfig Config;
      Config.Dir = Dir;
      Config.SyncIntervalUs = 100;
      Log = std::make_unique<svc::Wal>(Config, /*FirstSeq=*/1);
      Done.store(0, std::memory_order_relaxed);
      Ready.store(1, std::memory_order_release);
    } else {
      while (Ready.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
    }
  }

  void TearDown(const benchmark::State &State) override {
    if (State.thread_index() != 0)
      return;
    while (Done.load(std::memory_order_acquire) !=
           static_cast<int>(State.threads()))
      std::this_thread::yield();
    Log.reset();
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        const std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
    Ready.store(0, std::memory_order_relaxed);
  }

protected:
  void appendLoop(benchmark::State &State) {
    std::vector<svc::Op> Ops(4);
    for (size_t I = 0; I != Ops.size(); ++I) {
      Ops[I].Obj = static_cast<uint8_t>(I % 3);
      Ops[I].Method = 0;
      Ops[I].A = static_cast<int64_t>(I);
      Ops[I].B = 0;
    }
    std::vector<int64_t> Results(Ops.size(), 1);
    for (auto _ : State) {
      const uint64_t Seq =
          Log->logCommit([&Ops, &Results](uint64_t S, std::string &Out) {
            svc::encodeWalRecord(Out, S, Ops, Results);
          });
      Log->waitDurable(Seq);
    }
    Done.fetch_add(1, std::memory_order_release);
    State.SetItemsProcessed(State.iterations());
  }

  std::unique_ptr<svc::Wal> Log;
  std::string Dir;
  std::atomic<int> Ready{0};
  std::atomic<int> Done{0};
};

BENCHMARK_DEFINE_F(WalAppendThroughput, Append)(benchmark::State &State) {
  appendLoop(State);
}
BENCHMARK_REGISTER_F(WalAppendThroughput, Append)
    ->ThreadRange(1, 4)
    ->UseRealTime();

// Custom main instead of benchmark_main: peels --seed=N and
// --metrics-json=PATH off argv before google-benchmark sees them (it
// rejects unknown flags), then records the seed in the benchmark context
// so it lands in console and JSON output. The metrics dump carries the
// comlat_* registry counters the run produced (the bench-smoke gate reads
// the comlat_privatized_* family out of it).
int main(int Argc, char **Argv) {
  std::string MetricsJsonPath;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(Argc));
  Args.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    const std::string_view Arg(Argv[I]);
    if (Arg.rfind("--seed=", 0) == 0)
      BenchSeed = std::strtoull(Argv[I] + 7, nullptr, 10);
    else if (Arg.rfind("--metrics-json=", 0) == 0)
      MetricsJsonPath = std::string(Arg.substr(15));
    else
      Args.push_back(Argv[I]);
  }
  int Filtered = static_cast<int>(Args.size());
  benchmark::Initialize(&Filtered, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Filtered, Args.data()))
    return 1;
  benchmark::AddCustomContext("seed", std::to_string(BenchSeed));
  benchmark::RunSpecifiedBenchmarks();
  if (!MetricsJsonPath.empty() &&
      !obs::TraceExport::writeTextFile(MetricsJsonPath,
                                       obs::MetricsRegistry::global().toJson()))
    std::fprintf(stderr, "micro_schemes: cannot write metrics file '%s'\n",
                 MetricsJsonPath.c_str());
  benchmark::Shutdown();
  return 0;
}
