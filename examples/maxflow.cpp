//===- examples/maxflow.cpp - Preflow-push with abstract locks ----------------===//
//
// The preflow-push case study (§5) as a standalone tool: generates a
// GENRMF instance, solves it speculatively under a chosen lattice point
// (ml / ex / part), verifies the flow against the built-in Dinic oracle
// and reports executor statistics.
//
// Usage:
//   ./build/examples/maxflow [--variant=ml|ex|part] [--threads=4]
//                            [--rmf-a=8] [--rmf-frames=6] [--seed=42]
//                            [--partitions=32]
//
//===----------------------------------------------------------------------===//

#include "apps/Genrmf.h"
#include "apps/MaxflowReference.h"
#include "apps/PreflowPush.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  const std::string Variant = Opts.getString("variant", "part");
  const unsigned Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  const unsigned A = static_cast<unsigned>(Opts.getUInt("rmf-a", 8));
  const unsigned Frames = static_cast<unsigned>(Opts.getUInt("rmf-frames", 6));
  const unsigned Partitions =
      static_cast<unsigned>(Opts.getUInt("partitions", 32));
  const uint64_t Seed = Opts.getUInt("seed", 42);

  const CommSpec &Spec = Variant == "ml"   ? mlFlowSpec()
                         : Variant == "ex" ? exFlowSpec()
                                           : partFlowSpec();

  std::printf("GENRMF a=%u frames=%u (%u nodes), scheme %s, %u threads\n", A,
              Frames, A * A * Frames, Spec.name().c_str(), Threads);

  const MaxflowInstance Oracle = genrmf(A, Frames, 1, 100, Seed);
  const int64_t Expected =
      referenceMaxflow(*Oracle.Graph, Oracle.Source, Oracle.Sink);

  MaxflowInstance Inst = genrmf(A, Frames, 1, 100, Seed);
  const PreflowResult R = PreflowPush::runSpeculative(
      *Inst.Graph, Inst.Source, Inst.Sink, Spec, {.NumThreads = Threads},
      Partitions);

  std::printf("max flow      : %lld (Dinic oracle: %lld) %s\n",
              static_cast<long long>(R.FlowValue),
              static_cast<long long>(Expected),
              R.FlowValue == Expected ? "[ok]" : "[MISMATCH]");
  std::printf("flow validity : %s\n",
              Inst.Graph->checkFlowValid(Inst.Source, Inst.Sink)
                  ? "conservation + capacity hold"
                  : "VIOLATED");
  std::printf("iterations    : %llu committed, %llu aborted (%.2f%%)\n",
              static_cast<unsigned long long>(R.Exec.Committed),
              static_cast<unsigned long long>(R.Exec.Aborted),
              100.0 * R.Exec.abortRatio());
  std::printf("wall clock    : %.4f s\n", R.Exec.Seconds);
  return R.FlowValue == Expected ? 0 : 1;
}
