//===- examples/clustering.cpp - Forward gatekeeping in action ----------------===//
//
// The agglomerative-clustering case study (§5): builds a kd-tree over
// random points and collapses mutual nearest neighbors into centroids
// until one cluster remains, under either the forward gatekeeper (kd-gk,
// the ONLINE-CHECKABLE Fig. 4 spec) or the memory-level STM baseline
// (kd-ml). Prints the dendrogram head and executor statistics.
//
// Usage:
//   ./build/examples/clustering [--variant=kd-gk|kd-ml] [--threads=4]
//                               [--points=2000] [--seed=42]
//
//===----------------------------------------------------------------------===//

#include "apps/Clustering.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  const std::string Variant = Opts.getString("variant", "kd-gk");
  const unsigned Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  const size_t Points = Opts.getUInt("points", 2000);
  const uint64_t Seed = Opts.getUInt("seed", 42);

  std::printf("clustering %zu random points, variant %s, %u threads\n",
              Points, Variant.c_str(), Threads);

  Clustering App(Points, Seed);
  const ClusterResult R = App.runSpeculative(Variant, {.NumThreads = Threads});

  std::printf("merges        : %zu (expected %zu)\n", R.Merges.size(),
              Points - 1);
  std::printf("iterations    : %llu committed, %llu aborted (%.2f%%)\n",
              static_cast<unsigned long long>(R.Exec.Committed),
              static_cast<unsigned long long>(R.Exec.Aborted),
              100.0 * R.Exec.abortRatio());
  std::printf("wall clock    : %.4f s\n", R.Exec.Seconds);
  std::printf("first merges  :\n");
  for (size_t I = 0; I != R.Merges.size() && I != 5; ++I)
    std::printf("  %lld + %lld -> %lld\n",
                static_cast<long long>(R.Merges[I].A),
                static_cast<long long>(R.Merges[I].B),
                static_cast<long long>(R.Merges[I].Parent));
  return R.Merges.size() == Points - 1 ? 0 : 1;
}
