//===- examples/validate_specs.cpp - Hunting unsound conditions ---------------===//
//
// The paper leaves the *correctness* of commutativity conditions to
// external verification (§2.2, citing Kim & Rinard). This example runs
// comlat's randomized condition validator over the shipped specifications
// and over two instructive unsound ones:
//
//  * the paper's exact Fig. 5 union~union condition (loser-only), which
//    breaks representative identity in the equal-rank tie case, and
//  * the paper's exact Fig. 4 nearest~remove condition, which lacks a
//    distance guard in the remove-first orientation.
//
// Both produce concrete two-invocation counterexamples in milliseconds.
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "adt/BoostedKdTree.h"
#include "adt/BoostedSet.h"
#include "adt/BoostedUnionFind.h"
#include "runtime/SpecValidator.h"

#include <cstdio>

using namespace comlat;
using namespace comlat::dsl;

static void report(const char *Label, const CommSpec &Spec,
                   const ValidationHarness &Harness) {
  ValidationConfig Config;
  Config.Trials = 5000;
  const auto Issue = validateSpec(Spec, Harness, Config);
  if (Issue)
    std::printf("%-28s REFUTED: %s\n", Label,
                Issue->str(Spec.sig()).c_str());
  else
    std::printf("%-28s ok (no counterexample in %u trials)\n", Label,
                Config.Trials);
}

int main() {
  std::printf("validating shipped specifications...\n");
  report("set precise (Fig. 2)", preciseSetSpec(), setValidationHarness());
  report("set r/w (Fig. 3)", strengthenedSetSpec(), setValidationHarness());
  report("set exclusive", exclusiveSetSpec(), setValidationHarness());
  report("accumulator (Fig. 7)", accumulatorSpec(),
         accumulatorValidationHarness());

  PointStore Store;
  Rng R(1);
  for (unsigned I = 0; I != 6; ++I) {
    Point3 P;
    for (unsigned D = 0; D != KdDims; ++D)
      P.C[D] = R.nextDouble();
    Store.addPoint(P);
  }
  report("kd-tree (Fig. 4, fixed)", kdSpec(), kdValidationHarness(&Store));
  report("union-find (Fig. 5, fixed)", ufSpec(), ufValidationHarness(5));

  std::printf("\nvalidating the paper's exact conditions...\n");
  report("union-find Fig. 5 verbatim", paperExactUfSpec(),
         ufValidationHarness(4));

  CommSpec KdVerbatim = kdSpec();
  KdVerbatim.setName("kd-fig4-verbatim");
  const KdSig &K = kdSig();
  KdVerbatim.set(K.Nearest, K.Remove,
                 disj(eq(ret2(), cst(false)),
                      conj(ne(arg1(0), arg2(0)), ne(ret1(), arg2(0)))));
  report("kd-tree Fig. 4 verbatim", KdVerbatim, kdValidationHarness(&Store));
  return 0;
}
