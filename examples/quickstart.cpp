//===- examples/quickstart.cpp - From a spec to a running detector ------------===//
//
// Quickstart for the comlat library, following the paper's accumulator
// running example (§3.2):
//
//  1. declare an ADT signature;
//  2. write its commutativity specification in the condition DSL;
//  3. let the library classify it (SIMPLE / ONLINE-CHECKABLE / GENERAL);
//  4. generate the abstract-lock scheme and inspect the Fig. 8
//     compatibility matrices;
//  5. run speculative transactions against the boosted structure.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "adt/Accumulator.h"
#include "runtime/Executor.h"

#include <cstdio>

using namespace comlat;

int main() {
  // 1-2. The accumulator signature and its Fig. 7 specification ship with
  // the library; see adt/Accumulator.cpp for the 6 lines that define them
  // with the DSL (increment~increment = true, increment~read = false,
  // read~read = true).
  const CommSpec &Spec = accumulatorSpec();
  std::printf("%s\n", Spec.str().c_str());

  // 3. Classify: this spec is SIMPLE, so Theorem 1 guarantees a sound and
  // complete abstract-lock implementation exists.
  std::printf("classification: %s\n\n",
              conditionClassName(Spec.classify()));

  // 4. Run the §3.2 construction and print both Fig. 8 matrices.
  const LockScheme Scheme(Spec);
  std::printf("full compatibility matrix (Fig. 8a):\n%s\n",
              Scheme.matrixStr(/*IncludeReduced=*/true).c_str());
  std::printf("reduced compatibility matrix (Fig. 8b):\n%s\n",
              Scheme.matrixStr(/*IncludeReduced=*/false).c_str());

  // 5. Speculatively execute 1000 increments and 100 reads on 4 threads.
  // Increments commute with each other and reads with reads; increments
  // against reads conflict and one side retries.
  const std::unique_ptr<TxAccumulator> Acc = makeLockedAccumulator();
  Worklist WL;
  for (int64_t I = 0; I != 1100; ++I)
    WL.push(I);
  Executor Exec({.NumThreads = 4});
  const ExecStats Stats =
      Exec.run(WL, [&Acc](Transaction &Tx, int64_t Item, TxWorklist &) {
        if (Item % 11 == 0) {
          int64_t Value = 0;
          Acc->read(Tx, Value); // May conflict; executor retries.
        } else {
          Acc->increment(Tx, 1);
        }
      });
  std::printf("executed %llu transactions (%llu aborted and retried)\n",
              static_cast<unsigned long long>(Stats.Committed),
              static_cast<unsigned long long>(Stats.Aborted));
  std::printf("final accumulator value: %lld (expected 1000)\n",
              static_cast<long long>(Acc->value()));
  return Acc->value() == 1000 ? 0 : 1;
}
