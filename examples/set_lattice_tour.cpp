//===- examples/set_lattice_tour.cpp - Walking the commutativity lattice -----===//
//
// A tour of the paper's central object, the commutativity lattice (§2.4,
// §4), on the set ADT:
//
//  * print the five specification points this library ships (precise,
//    read/write, exclusive, partitioned, bottom) and verify their order
//    with the lattice decision procedures;
//  * derive the Fig. 3 spec mechanically from Fig. 2 (simple
//    under-approximation) and the §4.2 partitioned spec from Fig. 3;
//  * demonstrate the precision difference at runtime: two transactions
//    that add an already-present key commute under the precise spec
//    (forward gatekeeper) but conflict under read/write key locks.
//
//===----------------------------------------------------------------------===//

#include "adt/BoostedSet.h"
#include "core/Lattice.h"

#include <cstdio>

using namespace comlat;

static const char *triName(Tri T) {
  switch (T) {
  case Tri::Yes:
    return "yes";
  case Tri::No:
    return "no";
  case Tri::Unknown:
    return "unknown";
  }
  return "?";
}

int main() {
  const CommSpec *Points[] = {&preciseSetSpec(), &strengthenedSetSpec(),
                              &exclusiveSetSpec(), &partitionedSetSpec(),
                              &bottomSetSpec()};
  for (const CommSpec *Spec : Points)
    std::printf("%s\n", Spec->str().c_str());

  // The lattice order between every pair of points.
  std::printf("lattice order (row <= column?):\n%-18s", "");
  for (const CommSpec *Col : Points)
    std::printf(" %-16s", Col->name().c_str());
  std::printf("\n");
  for (const CommSpec *Row : Points) {
    std::printf("%-18s", Row->name().c_str());
    for (const CommSpec *Col : Points)
      std::printf(" %-16s", triName(specLeq(*Row, *Col)));
    std::printf("\n");
  }

  // Mechanical strengthening: Fig. 2 -> Fig. 3 (drop non-SIMPLE
  // disjuncts) and Fig. 3 -> partitions (§4.2).
  const CommSpec Derived =
      simpleUnderApproxSpec(preciseSetSpec(), "derived-from-precise");
  std::printf("\nsimpleUnderApprox(precise) == strengthened? %s\n",
              triName(specLeq(Derived, strengthenedSetSpec())));

  // Runtime precision difference: add of an already-present key.
  for (const bool UseGatekeeper : {true, false}) {
    const std::unique_ptr<TxSet> Set =
        UseGatekeeper ? makeGatedSet(preciseSetSpec())
                      : makeLockedSet(strengthenedSetSpec());
    {
      Transaction Seed(99);
      bool Res = false;
      Set->add(Seed, 7, Res);
      Seed.commit();
    }
    Transaction T1(1), T2(2);
    bool R1 = false, R2 = false;
    const bool Ok1 = Set->add(T1, 7, R1);
    const bool Ok2 = Set->add(T2, 7, R2);
    std::printf("\n%s: concurrent add(7) on {7}: first %s, second %s\n",
                Set->schemeName(), Ok1 ? "admitted" : "conflicted",
                Ok2 ? "admitted" : "conflicted");
    if (Ok1)
      T1.commit();
    else
      T1.abort();
    if (Ok2)
      T2.commit();
    else
      T2.abort();
  }
  std::printf("\nThe precise point admits both (neither add mutated); the\n"
              "SIMPLE point pays for its cheap locks with a lost schedule.\n");
  return 0;
}
