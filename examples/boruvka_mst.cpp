//===- examples/boruvka_mst.cpp - General gatekeeping in action ---------------===//
//
// The Boruvka case study (§5): computes a minimum spanning tree of a
// random mesh with the union-find structure under one of the paper's
// conflict detectors — the generic general gatekeeper (uf-gk, rollback
// evaluation of the Fig. 5 conditions), the hand-specialized gatekeeper
// with find-reps/loser-rep logs (uf-gk-spec), or memory-level STM (uf-ml,
// where path compression makes finds conflict). The MST weight is checked
// against Kruskal.
//
// Usage:
//   ./build/examples/boruvka_mst [--variant=uf-gk|uf-gk-spec|uf-ml]
//                                [--threads=4] [--mesh=64] [--seed=42]
//
//===----------------------------------------------------------------------===//

#include "apps/Boruvka.h"
#include "support/Options.h"

#include <cstdio>
#include <string>

using namespace comlat;

int main(int Argc, char **Argv) {
  const Options Opts(Argc, Argv);
  const std::string Variant = Opts.getString("variant", "uf-gk");
  const unsigned Threads = static_cast<unsigned>(Opts.getUInt("threads", 4));
  const unsigned Mesh = static_cast<unsigned>(Opts.getUInt("mesh", 64));
  const uint64_t Seed = Opts.getUInt("seed", 42);

  std::printf("Boruvka on a %ux%u mesh (%u nodes), variant %s, %u threads\n",
              Mesh, Mesh, Mesh * Mesh, Variant.c_str(), Threads);

  const MeshInstance Instance = randomMesh(Mesh, Mesh, Seed);
  const int64_t Expected = kruskalWeight(Instance);

  Boruvka App(&Instance);
  const BoruvkaResult R = App.runSpeculative(Variant, {.NumThreads = Threads});

  std::printf("MST weight    : %lld (Kruskal oracle: %lld) %s\n",
              static_cast<long long>(R.MstWeight),
              static_cast<long long>(Expected),
              R.MstWeight == Expected ? "[ok]" : "[MISMATCH]");
  std::printf("MST edges     : %zu (expected %u)\n", R.MstEdges,
              Mesh * Mesh - 1);
  std::printf("iterations    : %llu committed, %llu aborted (%.2f%%)\n",
              static_cast<unsigned long long>(R.Exec.Committed),
              static_cast<unsigned long long>(R.Exec.Aborted),
              100.0 * R.Exec.abortRatio());
  std::printf("wall clock    : %.4f s\n", R.Exec.Seconds);
  return R.MstWeight == Expected ? 0 : 1;
}
