#!/usr/bin/env bash
#===- ci/crash_loop.sh - kill -9 a durable server, prove zero acked loss -===#
#
# The durability layer's acceptance harness (DESIGN.md §3.10): repeatedly
#
#   1. start comlat-serve --durable on the SAME wal directory (recovery is
#      cumulative across iterations, so every restart is also a recovery
#      test of the previous iteration's crash);
#   2. drive it with comlat-loadgen recording every acknowledged batch
#      (seq, ops, results) to a ground-truth file, tolerating disconnects;
#   3. kill -9 the server at a random point, sometimes right after a
#      SIGUSR1-triggered snapshot so the snapshot/rotation/truncation
#      windows get crashed into too;
#   4. restart, wait for readiness, and run the recovery audit: the server
#      must report a recovered watermark covering every acknowledged
#      sequence, the WAL/snapshot files must contain every acknowledged
#      batch bit-for-bit, and a serial oracle replay of snapshot + WAL
#      must reproduce both the logged results and the server's live state.
#
# Any acknowledged-but-lost batch, torn-tail mishandling, replay
# divergence or unclean loadgen failure fails the loop. Usage:
#
#   ci/crash_loop.sh BUILD_DIR [ITERATIONS] [ARTIFACT_DIR] [SEED]
#
#===----------------------------------------------------------------------===#

set -u

BUILD_DIR=${1:?usage: crash_loop.sh BUILD_DIR [ITERATIONS] [ARTIFACT_DIR] [SEED]}
ITERATIONS=${2:-5}
ART=${3:-crash-artifacts}
SEED=${4:-$(( $(date +%s) % 100000 ))}

SERVE="$BUILD_DIR/src/svc/comlat-serve"
LOADGEN="$BUILD_DIR/src/svc/comlat-loadgen"
WAL_DIR="$ART/wal"
SERVER_PID=""

mkdir -p "$WAL_DIR"
echo "crash_loop: $ITERATIONS iterations, seed $SEED, artifacts in $ART"

FOLLOWER_PID=""

fail() {
  echo "crash_loop: FAILED: $*" >&2
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null
  exit 1
}

# start_server NAME [PORT]: PORT defaults to 0 (ephemeral); the
# leader-crash iteration pins one so its live follower can reconnect to
# the restarted leader at the address it subscribed to.
start_server() {
  rm -f "$ART/port"
  "$SERVE" --port="${2:-0}" --port-file="$ART/port" \
    --durable --wal-dir="$WAL_DIR" --wal-sync-interval=500 \
    --workers=4 >>"$ART/serve_$1.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 200); do
    [ -s "$ART/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup (iteration $1)"
    sleep 0.05
  done
  [ -s "$ART/port" ] || fail "server never published its port (iteration $1)"
  PORT=$(cat "$ART/port")
  "$LOADGEN" --port="$PORT" --wait-ready=30 --batches=0 \
    || fail "server not ready (iteration $1)"
}

# RANDOM is seedable, so the whole loop is reproducible from one number.
RANDOM=$SEED

for I in $(seq 1 "$ITERATIONS"); do
  echo "--- iteration $I ---"
  start_server "$I"

  ACKED="$ART/acked_$I.txt"
  "$LOADGEN" --port="$PORT" --threads=4 --duration=30 \
    --acked-log="$ACKED" --tolerate-disconnect \
    --seed=$(( SEED + I )) >"$ART/loadgen_$I.log" 2>&1 &
  LG=$!

  # Crash 0.1 - 2.5 seconds into the load, far from any clean boundary.
  T=$(( RANDOM % 25 + 1 ))
  sleep "$(( T / 10 )).$(( T % 10 ))"
  if [ $(( I % 2 )) -eq 0 ]; then
    # Even iterations: snapshot first, then crash into the rotation /
    # truncation / prune windows the snapshot opened.
    kill -USR1 "$SERVER_PID" 2>/dev/null
    sleep "0.$(( RANDOM % 9 + 1 ))"
  fi
  kill -9 "$SERVER_PID" || fail "server already dead before kill (iteration $I)"
  SERVER_PID=""

  # The loadgen must exit 0: disconnects are tolerated, anything else
  # (undecodable frames, lost replies on a live connection) is a bug.
  wait "$LG" || fail "loadgen exited $? (iteration $I); see $ART/loadgen_$I.log"
  ACKED_COUNT=$(wc -l <"$ACKED")

  start_server "${I}r"
  "$LOADGEN" --port="$PORT" --check-recovery="$ACKED" --wal-dir="$WAL_DIR" \
    | tee -a "$ART/audit.log"
  RC=${PIPESTATUS[0]}
  [ "$RC" -eq 0 ] || fail "recovery audit exited $RC (iteration $I)"
  echo "iteration $I ok: $ACKED_COUNT acked batches all recovered"

  # Leave the server down for the next iteration's start_server, proving
  # a kill -9 of an idle (post-recovery) server is just as recoverable.
  kill -9 "$SERVER_PID"
  SERVER_PID=""
done

# Leader-crash iteration with a live follower (DESIGN.md §3.11): a
# durable follower subscribes to the accumulated leader, the leader takes
# a kill -9 under load, restarts on the same WAL directory and port, and
# the follower — which stayed up the whole time — must reconnect, resume
# from its watermark and pass the full follower audit against the
# recovered history. The regular recovery audit gates the leader first.
echo "--- leader-crash iteration with live follower ---"
FIXED_PORT=$(( 20000 + RANDOM % 20000 ))
FWAL_DIR="$ART/fwal"
mkdir -p "$FWAL_DIR"
start_server lf "$FIXED_PORT"

rm -f "$ART/fport"
"$SERVE" --port=0 --port-file="$ART/fport" \
  --durable --wal-dir="$FWAL_DIR" --wal-sync-interval=500 \
  --workers=4 --follow=127.0.0.1:"$PORT" >>"$ART/follower.log" 2>&1 &
FOLLOWER_PID=$!
for _ in $(seq 200); do
  [ -s "$ART/fport" ] && break
  kill -0 "$FOLLOWER_PID" 2>/dev/null || fail "follower died on startup"
  sleep 0.05
done
[ -s "$ART/fport" ] || fail "follower never published its port"
FPORT=$(cat "$ART/fport")
"$LOADGEN" --port="$FPORT" --wait-ready=30 --batches=0 \
  || fail "follower not ready"

ACKED="$ART/acked_lf.txt"
"$LOADGEN" --port="$PORT" --threads=4 --duration=30 \
  --acked-log="$ACKED" --tolerate-disconnect \
  --seed=$(( SEED + 99 )) >"$ART/loadgen_lf.log" 2>&1 &
LG=$!
sleep "1.$(( RANDOM % 9 ))"
kill -9 "$SERVER_PID" || fail "leader already dead before kill (leader-crash iteration)"
SERVER_PID=""
wait "$LG" || fail "loadgen exited $? (leader-crash iteration); see $ART/loadgen_lf.log"

start_server lfr "$FIXED_PORT"
"$LOADGEN" --port="$PORT" --check-recovery="$ACKED" --wal-dir="$WAL_DIR" \
  | tee -a "$ART/audit.log"
RC=${PIPESTATUS[0]}
[ "$RC" -eq 0 ] || fail "recovery audit exited $RC (leader-crash iteration)"
kill -0 "$FOLLOWER_PID" 2>/dev/null \
  || fail "follower died while the leader was down"
"$LOADGEN" --port="$PORT" --check-follower=127.0.0.1:"$FPORT" \
  --leader-wal-dir="$WAL_DIR" | tee -a "$ART/audit.log"
RC=${PIPESTATUS[0]}
[ "$RC" -eq 0 ] || fail "follower audit exited $RC after leader recovery"
echo "leader-crash iteration ok: follower resumed across the leader restart"

# The follower drains gracefully; the leader stays down for the final
# pass's start_server, same as every other iteration.
kill -TERM "$FOLLOWER_PID"
( sleep 30; kill -9 "$FOLLOWER_PID" 2>/dev/null ) &
FWATCHDOG=$!
wait "$FOLLOWER_PID" || fail "follower graceful drain exited non-zero"
kill "$FWATCHDOG" 2>/dev/null
FOLLOWER_PID=""
kill -9 "$SERVER_PID"
SERVER_PID=""

# Final pass: a graceful lifecycle on the accumulated directory still
# works — recover everything, serve more load, drain on SIGTERM, exit 0.
# (No --verify here: that oracle assumes a fresh server, and this one
# carries the whole loop's history — the recovery audits above already
# checked the serial witness against that history.)
start_server final
"$LOADGEN" --port="$PORT" --threads=2 --duration=2 \
  >"$ART/loadgen_final.log" 2>&1 || fail "final load run failed"
kill -TERM "$SERVER_PID"
( sleep 30; kill -9 "$SERVER_PID" 2>/dev/null ) &
WATCHDOG=$!
wait "$SERVER_PID" || fail "graceful drain exited non-zero"
kill "$WATCHDOG" 2>/dev/null
SERVER_PID=""

echo "crash_loop: all $ITERATIONS iterations plus the leader-crash/follower iteration passed (zero acknowledged-batch loss)"
