#!/usr/bin/env python3
"""Bench-smoke gate: validate the observability artifacts against the
checked-in baselines.

Counter *values* are workload- and timing-dependent, so the gate checks
structure and invariants, not exact numbers:

  * every metric key present in any baseline file (BENCH_baseline.json,
    plus incremental ones such as BENCH_pr3.json for the striped
    gatekeeper counters) still exists in the fresh table2 metrics dump
    (a vanished key means an instrumentation site was lost);
  * stripe gauges are powers of two in [1, 64] and striped + global
    admissions are non-zero whenever a gatekeeper ran;
  * the fresh run committed work and its abort accounting is consistent
    (cause breakdown sums to the abort total);
  * the Chrome trace is valid JSON and >= 99% of its aborts carry a
    concrete detector attribution;
  * the CSV artifacts are non-empty and rectangular.

`--update BASELINE.json ARTIFACT_DIR` rewrites a baseline from a fresh
run instead of checking: an existing baseline keeps its key set (only the
values are refreshed, so incremental baselines like BENCH_pr3.json stay
scoped to their counters); a new file captures the full metrics dump.
"""

import csv
import json
import sys
from pathlib import Path


def fail(msg: str) -> None:
    print(f"BASELINE CHECK FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def base_name(key: str) -> str:
    """Metric family: the name with any {label="..."} set stripped."""
    return key.split("{", 1)[0]


def check_metrics(baseline_paths: list, metrics_path: Path) -> None:
    baseline = {}
    for path in baseline_paths:
        baseline.update(json.loads(path.read_text()))
    # Keys starting with "_" are baseline-file annotations (provenance,
    # measured throughput), not metric names; they are never expected in a
    # fresh metrics dump.
    baseline = {k: v for k, v in baseline.items() if not k.startswith("_")}
    fresh = json.loads(metrics_path.read_text())

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        fail(f"{metrics_path}: baseline metrics missing from fresh run: "
             f"{missing[:10]}")

    # Families must not silently vanish either (a renamed label set would
    # pass the per-key check for unlabeled metrics only).
    lost = sorted({base_name(k) for k in baseline} -
                  {base_name(k) for k in fresh})
    if lost:
        fail(f"{metrics_path}: baseline metric families lost: {lost}")

    # Striped-gatekeeper invariants (PR 3 baseline): every admission went
    # through exactly one of the two paths, and the stripe gauge is sane.
    stripes = [v for k, v in fresh.items()
               if base_name(k) == "comlat_gate_stripes"]
    for count in stripes:
        if count < 1 or count > 64 or (count & (count - 1)) != 0:
            fail(f"{metrics_path}: stripe count {count} is not a power of "
                 f"two in [1, 64]")
    striped = sum(v for k, v in fresh.items()
                  if base_name(k) == "comlat_gate_striped_admissions_total")
    unstriped = sum(v for k, v in fresh.items()
                    if base_name(k) == "comlat_gate_global_admissions_total")
    if stripes and striped + unstriped == 0:
        fail(f"{metrics_path}: gatekeeper ran but admitted nothing")

    committed = fresh.get("comlat_committed_total", 0)
    if committed <= 0:
        fail(f"{metrics_path}: no committed iterations recorded")

    aborted = fresh.get("comlat_aborted_total", 0)
    by_cause = sum(v for k, v in fresh.items()
                   if base_name(k) == "comlat_aborts_total")
    if by_cause != aborted:
        fail(f"{metrics_path}: abort causes sum to {by_cause}, "
             f"total says {aborted}")
    print(f"ok: {metrics_path} ({len(fresh)} metrics, "
          f"{committed} committed, {aborted} aborted)")


def check_trace(trace_path: Path) -> None:
    doc = json.loads(trace_path.read_text())
    events = doc.get("traceEvents")
    other = doc.get("otherData", {})
    if not isinstance(events, list) or not events:
        fail(f"{trace_path}: no trace events")
    aborts = other.get("aborts", 0)
    attributed = other.get("abortsAttributed", 0)
    if aborts and attributed / aborts < 0.99:
        fail(f"{trace_path}: only {attributed}/{aborts} aborts attributed")
    print(f"ok: {trace_path} ({len(events)} events, "
          f"{attributed}/{aborts} aborts attributed)")


def dump_flat(metrics: dict) -> str:
    """The C++ --metrics-json format: sorted keys, 2-space indent, any
    nested histogram object kept on one line."""
    lines = []
    for key in sorted(metrics):
        value = json.dumps(metrics[key], separators=(", ", ": "))
        lines.append(f"  {json.dumps(key)}: {value}")
    return "{\n" + ",\n".join(lines) + "\n}\n"


def update_baseline(baseline_path: Path, metrics_path: Path) -> None:
    fresh = json.loads(metrics_path.read_text())
    if baseline_path.exists():
        doc = json.loads(baseline_path.read_text())
        keep = {k: v for k, v in doc.items() if k.startswith("_")}
        keys = set(doc) - set(keep)
        gone = sorted(keys - set(fresh))
        if gone:
            fail(f"--update: baseline keys missing from {metrics_path}: "
                 f"{gone[:10]} (delete the baseline to re-capture from "
                 f"scratch)")
        scope = "refreshed"
    else:
        keep = {}
        keys = set(fresh)
        scope = "captured"
    merged = {k: fresh[k] for k in keys}
    merged.update(keep)
    baseline_path.write_text(dump_flat(merged))
    print(f"{scope}: {baseline_path} ({len(keys)} metrics from "
          f"{metrics_path})")


def check_csv(csv_path: Path) -> None:
    with csv_path.open() as fp:
        rows = list(csv.reader(fp))
    if len(rows) < 2:
        fail(f"{csv_path}: header only")
    widths = {len(r) for r in rows if r}
    if len(widths) != 1:
        fail(f"{csv_path}: ragged rows (widths {sorted(widths)})")
    print(f"ok: {csv_path} ({len(rows) - 1} data rows)")


def check_alloc_free(csv_path: Path) -> None:
    """The PR 5 invariant: a steady-state committed operation on the gated
    set allocates nothing. table2's CSV carries the single-threaded warm
    probe's measurement in steady_allocs_per_op (-1 when the build does not
    count allocations, e.g. a local run without COMLAT_COUNT_ALLOCS)."""
    with csv_path.open() as fp:
        rows = list(csv.DictReader(fp))
    if not rows or "steady_allocs_per_op" not in rows[0]:
        fail(f"{csv_path}: no steady_allocs_per_op column")
    checked = 0
    for row in rows:
        allocs = float(row["steady_allocs_per_op"])
        if allocs < 0:
            continue  # Build doesn't count allocations.
        if row["scheme"] == "gatekeeper" and allocs != 0:
            fail(f"{csv_path}: gatekeeper steady state allocates "
                 f"{allocs} per op (want 0)")
        checked += 1
    state = f"{checked} rows" if checked else "skipped (counting disabled)"
    print(f"ok: {csv_path} alloc-free invariant ({state})")


def check_privatized_metrics(baseline_path: Path, metrics_path: Path) -> None:
    """The PR 6 baseline (BENCH_pr6.json) scopes the privatized-diversion
    counters. They come from micro_schemes' own registry dump (the table2
    schemes never divert — set add returns the changed bit — so the
    table2 metrics file cannot carry them). Beyond key existence:

      * the run diverted work (privatized ops > 0);
      * at least one merge drained replicas into the master (the fixture's
        TearDown reads the quiesced value every run, so a zero here means
        the merge path silently stopped running);
      * coalescing holds: merged deltas never exceed diverted ops (each
        transaction's deltas coalesce by slot before publication).
    """
    baseline = json.loads(baseline_path.read_text())
    baseline = {k: v for k, v in baseline.items() if not k.startswith("_")}
    fresh = json.loads(metrics_path.read_text())

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        fail(f"{metrics_path}: privatized baseline metrics missing from "
             f"fresh run: {missing[:10]}")
    lost = sorted({base_name(k) for k in baseline} -
                  {base_name(k) for k in fresh})
    if lost:
        fail(f"{metrics_path}: privatized metric families lost: {lost}")

    ops = sum(v for k, v in fresh.items()
              if base_name(k) == "comlat_privatized_ops_total")
    merges = sum(v for k, v in fresh.items()
                 if base_name(k) == "comlat_privatized_merges_total")
    merged = sum(v for k, v in fresh.items()
                 if base_name(k) == "comlat_privatized_merged_deltas_total")
    if ops <= 0:
        fail(f"{metrics_path}: no operations took the privatized path")
    if merges < 1:
        fail(f"{metrics_path}: replicas were never merged back")
    if merged > ops:
        fail(f"{metrics_path}: {merged} merged deltas exceed {ops} "
             f"privatized ops (per-transaction coalescing broken)")
    print(f"ok: {metrics_path} ({ops} privatized ops, {merges} merges, "
          f"{merged} merged deltas)")


def check_privatized_allocs(bench_json_path: Path) -> None:
    """The privatized fast path must be allocation-free in steady state:
    the 1-thread AccumulatorThroughputPrivatized row carries an exact
    allocs_per_op counter (-1 when the build does not count allocations).
    """
    doc = json.loads(bench_json_path.read_text())
    rows = {b.get("name", ""): b for b in doc.get("benchmarks", [])}
    name = "AccumulatorThroughputPrivatized/Inc/real_time/threads:1"
    if name not in rows:
        fail(f"{bench_json_path}: benchmark row {name} missing")
    allocs = rows[name].get("allocs_per_op")
    if allocs is None:
        fail(f"{bench_json_path}: {name} carries no allocs_per_op counter")
    if allocs < 0:
        print(f"ok: {bench_json_path} privatized alloc-free invariant "
              f"skipped (counting disabled)")
        return
    if allocs != 0:
        fail(f"{bench_json_path}: privatized steady state allocates "
             f"{allocs} per op (want 0)")
    print(f"ok: {bench_json_path} privatized path allocation-free")


def parse_prometheus(text_path: Path) -> tuple:
    """Parse a Prometheus text exposition into ({sample_name: value},
    {declared families}). Families come from the `# TYPE` lines, so a
    histogram (whose samples are name_bucket/name_sum/name_count) is still
    found under its base name."""
    values = {}
    families = set()
    for line in text_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                families.add(parts[2])
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values, families


def check_durable_metrics(baseline_path: Path, metrics_path: Path) -> float:
    """The PR 7 baseline (BENCH_pr7.json) scopes the WAL metric families
    the durable serving leg must export. Beyond family existence:

      * the run appended and fsynced (a durable leg that never touched
        the log proves nothing);
      * group commit actually coalesced: appends per fdatasync must
        average at least the baseline's _min_group_size, or the ACK
        batching that pays for durability has silently degraded to one
        fsync per commit;
      * the durable watermark advanced past zero.

    Returns the baseline's _min_durable_qps_ratio for the caller's
    throughput gate.
    """
    doc = json.loads(baseline_path.read_text())
    min_group = float(doc.get("_min_group_size", 2.0))
    min_ratio = float(doc.get("_min_durable_qps_ratio", 0.6))
    baseline = {k for k in doc if not k.startswith("_")}
    values, families = parse_prometheus(metrics_path)

    missing = sorted(baseline - families)
    if missing:
        fail(f"{metrics_path}: WAL metric families missing from durable "
             f"run: {missing}")

    appends = values.get("comlat_wal_appends_total", 0)
    fsyncs = values.get("comlat_wal_fsyncs_total", 0)
    durable_seq = values.get("comlat_wal_durable_seq", 0)
    if appends <= 0:
        fail(f"{metrics_path}: durable run appended nothing to the WAL")
    if fsyncs <= 0:
        fail(f"{metrics_path}: WAL was appended to but never fsynced")
    if durable_seq <= 0:
        fail(f"{metrics_path}: durable watermark never advanced")
    group = appends / fsyncs
    if group < min_group:
        fail(f"{metrics_path}: group commit coalesced only {group:.2f} "
             f"appends per fsync (want >= {min_group})")
    print(f"ok: {metrics_path} ({int(appends)} appends, {int(fsyncs)} "
          f"fsyncs, {group:.1f} per group, durable seq {int(durable_seq)})")
    return min_ratio


def check_durable_throughput(on_path: Path, off_path: Path,
                             min_ratio: float) -> None:
    """Identically paced open-loop runs against a durable and a
    non-durable server: both must be clean (no protocol errors, real
    committed work), the loadgen must have observed the server's durable
    mode through the Stats frame, and WAL-on throughput must stay within
    min_ratio of WAL-off."""
    on = json.loads(on_path.read_text())
    off = json.loads(off_path.read_text())
    if on.get("loadgen_durable") != 1:
        fail(f"{on_path}: server did not report durable mode")
    if off.get("loadgen_durable") != 0:
        fail(f"{off_path}: supposedly non-durable server reported durable")
    for path, doc in ((on_path, on), (off_path, off)):
        if doc.get("loadgen_protocol_errors", 0) != 0:
            fail(f"{path}: {doc['loadgen_protocol_errors']} protocol errors")
        if doc.get("loadgen_ok_replies", 0) <= 0:
            fail(f"{path}: no committed batches")
    qps_on = on.get("loadgen_qps", 0)
    qps_off = off.get("loadgen_qps", 0)
    if qps_off <= 0:
        fail(f"{off_path}: zero baseline throughput")
    ratio = qps_on / qps_off
    if ratio < min_ratio:
        fail(f"WAL-on throughput {qps_on:.0f} qps is {ratio:.2f}x WAL-off "
             f"{qps_off:.0f} qps (want >= {min_ratio}x)")
    print(f"ok: durable throughput {qps_on:.0f} qps = {ratio:.2f}x "
          f"non-durable {qps_off:.0f} qps")


def check_replicated(baseline_path: Path, artifacts: Path) -> None:
    """The PR 8 baseline (BENCH_pr8.json) scopes the replication metric
    families: the `_leader` list names the shipping-side families expected
    in the leader's dump, the plain keys the applying-side families
    expected in the follower's. Beyond existence:

      * the leader actually shipped (chunks and bytes non-zero) and the
        follower actually applied (records, chunks, bytes non-zero);
      * the follower's apply rate over the load's wall clock reaches at
        least _min_apply_qps_ratio of the leader's acknowledged ingest
        qps — a follower that trails the leader's commit rate can never
        converge under sustained load;
      * steady-state lag is bounded: after the follower audit forced a
        full catch-up, the lag gauge must sit at or below _max_lag_seq;
      * the load itself was clean (no protocol errors, real commits) and
        the follower never had to reconnect during the uninterrupted run.
    """
    doc = json.loads(baseline_path.read_text())
    min_ratio = float(doc.get("_min_apply_qps_ratio", 0.5))
    max_lag = float(doc.get("_max_lag_seq", 64))
    leader_families = set(doc.get("_leader", []))
    follower_families = {k for k in doc if not k.startswith("_")}

    leader, leader_decl = parse_prometheus(artifacts / "leader_repl_metrics.txt")
    follower, follower_decl = parse_prometheus(
        artifacts / "follower_repl_metrics.txt")
    missing = sorted(leader_families - leader_decl)
    if missing:
        fail(f"leader dump: replication families missing: {missing}")
    missing = sorted(follower_families - follower_decl)
    if missing:
        fail(f"follower dump: replication families missing: {missing}")

    shipped_chunks = leader.get("comlat_repl_ship_chunks_total", 0)
    shipped_bytes = leader.get("comlat_repl_ship_bytes_total", 0)
    if shipped_chunks <= 0 or shipped_bytes <= 0:
        fail(f"leader shipped nothing ({int(shipped_chunks)} chunks, "
             f"{int(shipped_bytes)} bytes)")
    applied = follower.get("comlat_repl_applied_total", 0)
    if applied <= 0:
        fail("follower applied nothing")
    if follower.get("comlat_repl_chunks_total", 0) <= 0:
        fail("follower received no chunks")
    reconnects = follower.get("comlat_repl_reconnects_total", 0)
    if reconnects != 0:
        fail(f"follower reconnected {int(reconnects)} times during an "
             f"uninterrupted run")
    lag = follower.get("comlat_repl_lag_seq", 0)
    if lag > max_lag:
        fail(f"steady-state lag {int(lag)} records exceeds the "
             f"{int(max_lag)}-record bound after a forced catch-up")

    load = json.loads((artifacts / "loadgen_repl.json").read_text())
    if load.get("loadgen_protocol_errors", 0) != 0:
        fail(f"leader load saw {load['loadgen_protocol_errors']} protocol "
             f"errors")
    acked = load.get("loadgen_ok_replies", 0)
    wall = load.get("loadgen_wall_sec", 0)
    ingest_qps = load.get("loadgen_qps", 0)
    if acked <= 0 or wall <= 0 or ingest_qps <= 0:
        fail("leader load committed nothing")
    apply_qps = applied / wall
    ratio = apply_qps / ingest_qps
    if ratio < min_ratio:
        fail(f"follower applied {apply_qps:.0f} records/s = {ratio:.2f}x "
             f"the leader's {ingest_qps:.0f} qps ingest "
             f"(want >= {min_ratio}x)")
    print(f"ok: follower applied {int(applied)} records at "
          f"{apply_qps:.0f}/s = {ratio:.2f}x leader ingest "
          f"{ingest_qps:.0f} qps, lag {int(lag)}, "
          f"{int(shipped_chunks)} chunks shipped")


def check_sharded(baseline_path: Path, artifacts: Path) -> None:
    """The PR 9 baseline (BENCH_pr9.json) scopes the sharding proxy's
    comlat_proxy_* metric families and the scale-out gate. The leg runs
    identically paced open-loop load against a 1-shard and a 3-shard
    proxy with --shard-affinity (key-partitioned clients, the
    key-separable workload the lattice proves coordination-free), plus a
    short unaffine cross-shard burst so split routing is exercised too.
    Beyond family existence in the 3-shard proxy's dump:

      * both runs were clean (no protocol errors, real commits), the
        loadgen observed the proxy role and shard count through the Stats
        frame (1 and 3 respectively), and shard-affine key drawing
        actually engaged (the Stats ring geometry reached the client);
      * 3-shard committed-op throughput reaches at least
        _min_shard_qps_ratio of the 1-shard run — the whole point of
        spec-driven scale-out. The committed rate (ops_committed /
        wall_sec) is the gate, not loadgen_qps: an overdriven open loop
        counts sends at the pacing rate no matter what the server
        absorbs, so only commits measure capacity;
      * routing exercised both paths (fast-path and split batches both
        non-zero; batches accounted) and was sound: zero misroutes (a
        backend disowning a sub-batch's stamped slot) and zero shard
        errors (backends lost mid-flight) during an undisturbed run.
    """
    doc = json.loads(baseline_path.read_text())
    min_ratio = float(doc.get("_min_shard_qps_ratio", 1.8))
    families = {k for k in doc if not k.startswith("_")}

    values, declared = parse_prometheus(artifacts / "proxy_metrics.txt")
    missing = sorted(families - declared)
    if missing:
        fail(f"proxy dump: comlat_proxy_* families missing: {missing}")
    if values.get("comlat_proxy_shards", 0) != 3:
        fail(f"proxy dump: expected a 3-shard ring, gauge says "
             f"{values.get('comlat_proxy_shards', 0)}")
    if values.get("comlat_proxy_fastpath_total", 0) <= 0:
        fail("proxy dump: no batch took the single-shard fast path — "
             "shard-affine load never engaged")
    if values.get("comlat_proxy_split_total", 0) <= 0:
        fail("proxy dump: no batch ever split across shards — the load "
             "never exercised the cross-shard path")
    if values.get("comlat_proxy_batches_total", 0) <= 0:
        fail("proxy dump: proxy routed no batches")
    for clean in ("comlat_proxy_misroutes_total",
                  "comlat_proxy_shard_errors_total"):
        if values.get(clean, 0) != 0:
            fail(f"proxy dump: {clean} = {int(values[clean])} during an "
                 f"undisturbed run")

    one = json.loads((artifacts / "loadgen_shard1.json").read_text())
    three = json.loads((artifacts / "loadgen_shard3.json").read_text())
    for path, doc_, shards in (("loadgen_shard1.json", one, 1),
                               ("loadgen_shard3.json", three, 3)):
        if doc_.get("loadgen_protocol_errors", 0) != 0:
            fail(f"{path}: {doc_['loadgen_protocol_errors']} protocol errors")
        if doc_.get("loadgen_ok_replies", 0) <= 0:
            fail(f"{path}: no committed batches")
        if doc_.get("loadgen_role") != "proxy":
            fail(f"{path}: load did not run against a proxy "
                 f"(role={doc_.get('loadgen_role')!r})")
        if doc_.get("loadgen_shards", 0) != shards:
            fail(f"{path}: expected {shards} shards, Stats reported "
                 f"{doc_.get('loadgen_shards', 0)}")
        if doc_.get("loadgen_shard_affinity", 0) != 1:
            fail(f"{path}: shard-affine key drawing never engaged "
                 f"(loadgen_shard_affinity="
                 f"{doc_.get('loadgen_shard_affinity', 0)})")
        if doc_.get("loadgen_wall_sec", 0) <= 0:
            fail(f"{path}: zero wall time")
    rate1 = one["loadgen_ops_committed"] / one["loadgen_wall_sec"]
    rate3 = three["loadgen_ops_committed"] / three["loadgen_wall_sec"]
    if rate1 <= 0:
        fail("loadgen_shard1.json: zero baseline committed throughput")
    ratio = rate3 / rate1
    if ratio < min_ratio:
        fail(f"3-shard committed throughput {rate3:.0f} ops/s is "
             f"{ratio:.2f}x the 1-shard {rate1:.0f} ops/s "
             f"(want >= {min_ratio}x)")
    print(f"ok: 3-shard committed throughput {rate3:.0f} ops/s = "
          f"{ratio:.2f}x 1-shard {rate1:.0f} ops/s, "
          f"{int(values['comlat_proxy_fastpath_total'])} fast-path + "
          f"{int(values['comlat_proxy_split_total'])} split batches, "
          f"0 misroutes")


def check_direct(baseline_path: Path, artifacts: Path) -> None:
    """The PR 10 baseline (BENCH_pr10.json) scopes the direct-routing gate
    and the RTT-split metric families. The leg runs identically paced
    open-loop shard-affine load against one freshly started 3-shard
    cluster twice — through the proxy, then with --direct (client-side
    routing + pipelined submission). Beyond family existence in the
    proxy's dump:

      * both runs were clean (no protocol errors, real commits, proxy
        role and 3-shard ring observed through Stats, shard-affinity
        engaged) and the proxy run did not silently engage direct mode;
      * the direct run actually routed directly (loadgen_direct = 1,
        direct batches non-zero) and the pipelining window engaged:
        loadgen_direct_max_inflight >= _min_inflight, or the client
        degenerated to one-at-a-time round trips and the comparison
        means nothing;
      * routing was sound from both vantage points: zero client-observed
        misroutes (wrong-shard reply annotations) and zero proxy-observed
        misroutes;
      * the direct run's client-side RTT split recorded fast-path
        samples — the per-route-kind latency accounting this PR added;
      * direct committed-op throughput reaches at least
        _min_direct_qps_ratio of the proxied run — the proxy hop the
        lattice's key-separability proof lets the client skip. As with
        the sharded gate, committed rate (ops_committed / wall_sec) is
        compared, not send qps.
    """
    doc = json.loads(baseline_path.read_text())
    min_ratio = float(doc.get("_min_direct_qps_ratio", 1.4))
    min_inflight = float(doc.get("_min_inflight", 4))
    families = {k for k in doc if not k.startswith("_")}

    values, declared = parse_prometheus(artifacts / "proxy_direct_metrics.txt")
    missing = sorted(families - declared)
    if missing:
        fail(f"proxy dump: direct-routing families missing: {missing}")
    if values.get("comlat_proxy_misroutes_total", 0) != 0:
        fail(f"proxy dump: comlat_proxy_misroutes_total = "
             f"{int(values['comlat_proxy_misroutes_total'])} during an "
             f"undisturbed run")
    if values.get("comlat_proxy_rtt_fastpath_count", 0) <= 0:
        fail("proxy dump: the proxied leg recorded no fast-path RTT "
             "samples — the per-route-kind histograms never engaged")

    proxied = json.loads((artifacts / "loadgen_proxied.json").read_text())
    direct = json.loads((artifacts / "loadgen_direct.json").read_text())
    for path, doc_ in (("loadgen_proxied.json", proxied),
                       ("loadgen_direct.json", direct)):
        if doc_.get("loadgen_protocol_errors", 0) != 0:
            fail(f"{path}: {doc_['loadgen_protocol_errors']} protocol errors")
        if doc_.get("loadgen_ok_replies", 0) <= 0:
            fail(f"{path}: no committed batches")
        if doc_.get("loadgen_role") != "proxy":
            fail(f"{path}: load did not run against a proxy "
                 f"(role={doc_.get('loadgen_role')!r})")
        if doc_.get("loadgen_shards", 0) != 3:
            fail(f"{path}: expected 3 shards, Stats reported "
                 f"{doc_.get('loadgen_shards', 0)}")
        if doc_.get("loadgen_shard_affinity", 0) != 1:
            fail(f"{path}: shard-affine key drawing never engaged")
        if doc_.get("loadgen_wall_sec", 0) <= 0:
            fail(f"{path}: zero wall time")
        if doc_.get("loadgen_client_misroutes", 0) != 0:
            fail(f"{path}: client observed "
                 f"{doc_['loadgen_client_misroutes']} misrouted replies")
    if proxied.get("loadgen_direct", 0) != 0:
        fail("loadgen_proxied.json: the proxied leg ran in direct mode")
    if direct.get("loadgen_direct", 0) != 1:
        fail("loadgen_direct.json: direct routing never engaged")
    if direct.get("loadgen_direct_batches", 0) <= 0:
        fail("loadgen_direct.json: no batch was routed directly")
    inflight = direct.get("loadgen_direct_max_inflight", 0)
    if inflight < min_inflight:
        fail(f"loadgen_direct.json: max in-flight depth {inflight} never "
             f"reached {int(min_inflight)} — pipelining did not engage")
    if direct.get("loadgen_rtt_fastpath_count", 0) <= 0:
        fail("loadgen_direct.json: client-side fast-path RTT split "
             "recorded no samples")

    rate_proxied = (proxied["loadgen_ops_committed"] /
                    proxied["loadgen_wall_sec"])
    rate_direct = direct["loadgen_ops_committed"] / direct["loadgen_wall_sec"]
    if rate_proxied <= 0:
        fail("loadgen_proxied.json: zero baseline committed throughput")
    ratio = rate_direct / rate_proxied
    if ratio < min_ratio:
        fail(f"direct committed throughput {rate_direct:.0f} ops/s is "
             f"{ratio:.2f}x the proxied {rate_proxied:.0f} ops/s "
             f"(want >= {min_ratio}x)")
    print(f"ok: direct committed throughput {rate_direct:.0f} ops/s = "
          f"{ratio:.2f}x proxied {rate_proxied:.0f} ops/s, "
          f"{int(direct['loadgen_direct_batches'])} direct batches, "
          f"in-flight depth {int(inflight)}, 0 misroutes")


def main() -> None:
    if len(sys.argv) >= 2 and sys.argv[1] == "--direct":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --direct BENCH_pr10.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        check_direct(Path(sys.argv[2]), Path(sys.argv[3]))
        print("bench smoke (direct): all checks passed")
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--sharded":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --sharded BENCH_pr9.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        check_sharded(Path(sys.argv[2]), Path(sys.argv[3]))
        print("bench smoke (sharded): all checks passed")
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--replicated":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --replicated BENCH_pr8.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        check_replicated(Path(sys.argv[2]), Path(sys.argv[3]))
        print("bench smoke (replicated): all checks passed")
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--durable":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --durable BENCH_pr7.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        artifacts = Path(sys.argv[3])
        min_ratio = check_durable_metrics(Path(sys.argv[2]),
                                          artifacts / "wal_metrics.txt")
        check_durable_throughput(artifacts / "loadgen_wal_on.json",
                                 artifacts / "loadgen_wal_off.json",
                                 min_ratio)
        print("bench smoke (durable): all checks passed")
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--privatized":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --privatized BENCH_pr6.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        artifacts = Path(sys.argv[3])
        check_privatized_metrics(Path(sys.argv[2]),
                                 artifacts / "privatized_metrics.json")
        check_privatized_allocs(artifacts / "gate_throughput.json")
        print("bench smoke (privatized): all checks passed")
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--update":
        if len(sys.argv) != 4:
            print(f"usage: {sys.argv[0]} --update BASELINE.json "
                  f"ARTIFACT_DIR", file=sys.stderr)
            sys.exit(2)
        update_baseline(Path(sys.argv[2]),
                        Path(sys.argv[3]) / "table2_metrics.json")
        return
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} BASELINE.json [BASELINE2.json ...] "
              f"ARTIFACT_DIR", file=sys.stderr)
        print(f"       {sys.argv[0]} --update BASELINE.json ARTIFACT_DIR",
              file=sys.stderr)
        sys.exit(2)
    baselines = [Path(p) for p in sys.argv[1:-1]]
    artifacts = Path(sys.argv[-1])
    check_metrics(baselines, artifacts / "table2_metrics.json")
    check_trace(artifacts / "table2_trace.json")
    check_csv(artifacts / "table2.csv")
    check_alloc_free(artifacts / "table2.csv")
    check_csv(artifacts / "table1.csv")
    print("bench smoke: all checks passed")


if __name__ == "__main__":
    main()
