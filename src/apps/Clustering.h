//===- apps/Clustering.h - Agglomerative clustering --------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The agglomerative-clustering case study (§5, after Walter et al. [24]):
/// repeatedly pick a point p, find its nearest neighbor n; when the
/// relationship is mutual (nearest(n) == p) replace both by their weighted
/// centroid, until one cluster remains. The kd-tree carries all conflict
/// detection; kd-gk (forward gatekeeper) and kd-ml (memory-level STM) are
/// the paper's two variants.
///
/// Centroid linkage is not reducible, so different (all correct) execution
/// orders may produce different dendrograms; validation therefore checks
/// the merge count, the mutual-nearest property via the serializability
/// oracle on small instances, and cluster-weight conservation.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_CLUSTERING_H
#define COMLAT_APPS_CLUSTERING_H

#include "adt/BoostedKdTree.h"
#include "runtime/Executor.h"
#include "runtime/RoundExecutor.h"

#include <mutex>

namespace comlat {

/// One recorded merge: A and B replaced by Parent.
struct Merge {
  int64_t A;
  int64_t B;
  int64_t Parent;
};

/// Result of one clustering run.
struct ClusterResult {
  std::vector<Merge> Merges;
  ExecStats Exec;
  RoundStats Rounds; ///< Filled by the ParaMeter entry point only.
};

/// The clustering workload: a point store, per-point weights, and the
/// merge machinery shared by all variants.
class Clustering {
public:
  /// Generates \p N uniform random points in the unit cube.
  Clustering(size_t N, uint64_t Seed);

  PointStore &store() { return Store; }
  size_t numInitialPoints() const { return InitialPoints; }

  /// Sequential reference (direct kd-tree, no transactions).
  ClusterResult runSequential(double *Seconds = nullptr);

  /// Speculative run over any kd-tree variant ("kd-gk", "kd-ml",
  /// "kd-direct" for single-threaded baselines), under \p Config's thread
  /// count and scheduling policy.
  ClusterResult runSpeculative(const std::string &Variant,
                               const ExecutorConfig &Config);

  /// ParaMeter round-model run (critical path / parallelism, Table 1).
  ClusterResult runParameter(const std::string &Variant);

private:
  std::unique_ptr<TxKdTree> makeTree(const std::string &Variant);
  Executor::OperatorFn makeOperator(TxKdTree &Tree,
                                    std::vector<Merge> &Merges,
                                    std::mutex &MergesMutex);

  /// Creates the centroid of \p A and \p B and returns its id.
  int64_t centroidOf(int64_t A, int64_t B);

  PointStore Store;
  std::vector<double> Weight; // Indexed by point id; grows with merges.
  std::mutex WeightMutex;
  size_t InitialPoints;
};

} // namespace comlat

#endif // COMLAT_APPS_CLUSTERING_H
