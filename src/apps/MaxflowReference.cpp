//===- apps/MaxflowReference.cpp - Independent max-flow oracle --------------===//

#include "apps/MaxflowReference.h"
#include "adt/FlowGraph.h"

#include <algorithm>
#include <deque>
#include <limits>

using namespace comlat;

DinicSolver::DinicSolver(unsigned NumNodes)
    : Adj(NumNodes), Level(NumNodes), Next(NumNodes) {}

void DinicSolver::addEdge(unsigned From, unsigned To, int64_t Cap) {
  const unsigned FwdIdx = static_cast<unsigned>(Adj[From].size());
  const unsigned RevIdx = static_cast<unsigned>(Adj[To].size());
  Adj[From].push_back(Edge{To, RevIdx, Cap});
  Adj[To].push_back(Edge{From, FwdIdx, 0});
}

bool DinicSolver::buildLevels(unsigned Source, unsigned Sink) {
  std::fill(Level.begin(), Level.end(), -1);
  std::deque<unsigned> Queue{Source};
  Level[Source] = 0;
  while (!Queue.empty()) {
    const unsigned U = Queue.front();
    Queue.pop_front();
    for (const Edge &E : Adj[U]) {
      if (E.Cap <= 0 || Level[E.To] != -1)
        continue;
      Level[E.To] = Level[U] + 1;
      Queue.push_back(E.To);
    }
  }
  return Level[Sink] != -1;
}

int64_t DinicSolver::augment(unsigned U, unsigned Sink, int64_t Limit) {
  if (U == Sink)
    return Limit;
  for (unsigned &I = Next[U]; I < Adj[U].size(); ++I) {
    Edge &E = Adj[U][I];
    if (E.Cap <= 0 || Level[E.To] != Level[U] + 1)
      continue;
    const int64_t Pushed = augment(E.To, Sink, std::min(Limit, E.Cap));
    if (Pushed > 0) {
      E.Cap -= Pushed;
      Adj[E.To][E.Rev].Cap += Pushed;
      return Pushed;
    }
  }
  return 0;
}

int64_t DinicSolver::maxflow(unsigned Source, unsigned Sink) {
  assert(Source != Sink && "degenerate instance");
  int64_t Total = 0;
  while (buildLevels(Source, Sink)) {
    std::fill(Next.begin(), Next.end(), 0u);
    for (;;) {
      const int64_t Pushed =
          augment(Source, Sink, std::numeric_limits<int64_t>::max());
      if (Pushed == 0)
        break;
      Total += Pushed;
    }
  }
  return Total;
}

int64_t comlat::referenceMaxflow(const FlowGraph &G, unsigned Source,
                                 unsigned Sink) {
  DinicSolver Solver(G.numNodes());
  for (unsigned U = 0; U != G.numNodes(); ++U)
    for (unsigned I = 0; I != G.degree(U); ++I)
      if (G.residual(U, I) > 0)
        Solver.addEdge(U, G.neighbor(U, I), G.residual(U, I));
  return Solver.maxflow(Source, Sink);
}
