//===- apps/SetMicrobench.cpp - The Table 2 workload -------------------------===//

#include "apps/SetMicrobench.h"
#include "support/Random.h"

using namespace comlat;

const char *comlat::setSchemeName(SetScheme S) {
  switch (S) {
  case SetScheme::GlobalLock:
    return "global-lock";
  case SetScheme::Exclusive:
    return "abs-lock-exclusive";
  case SetScheme::ReadWrite:
    return "abs-lock-rw";
  case SetScheme::Gatekeeper:
    return "gatekeeper";
  case SetScheme::Direct:
    return "direct";
  }
  COMLAT_UNREACHABLE("bad scheme");
}

std::unique_ptr<TxSet> comlat::makeMicrobenchSet(SetScheme S) {
  switch (S) {
  case SetScheme::GlobalLock:
    return makeLockedSet(bottomSetSpec());
  case SetScheme::Exclusive:
    return makeLockedSet(exclusiveSetSpec());
  case SetScheme::ReadWrite:
    return makeLockedSet(strengthenedSetSpec());
  case SetScheme::Gatekeeper:
    return makeGatedSet(preciseSetSpec());
  case SetScheme::Direct:
    return makeDirectSet();
  }
  COMLAT_UNREACHABLE("bad scheme");
}

/// The per-transaction operator shared by the real and round executors.
/// The operation stream is a pure function of (seed, item, j), so a
/// retried transaction repeats exactly the same operations.
static Executor::OperatorFn makeMicroOperator(TxSet &Set,
                                              const MicroParams &P) {
  return [&Set, P](Transaction &Tx, int64_t Item, TxWorklist &) {
    Rng R(P.Seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(Item));
    for (unsigned J = 0; J != P.OpsPerTx; ++J) {
      int64_t Key;
      if (P.KeyClasses == 0)
        Key = Item * static_cast<int64_t>(P.OpsPerTx) + J;
      else
        Key = static_cast<int64_t>(R.nextBelow(P.KeyClasses));
      bool Res = false;
      const bool Ok = R.nextBool(P.AddFraction)
                          ? Set.add(Tx, Key, Res)
                          : Set.contains(Tx, Key, Res);
      if (!Ok)
        return;
    }
  };
}

static uint64_t numTxsFor(const MicroParams &Params) {
  assert(Params.OpsPerTx > 0 && "transactions need at least one operation");
  return (Params.NumOps + Params.OpsPerTx - 1) / Params.OpsPerTx;
}

ExecStats comlat::runSetMicrobench(TxSet &Set, const MicroParams &Params) {
  Worklist WL;
  for (uint64_t I = 0; I != numTxsFor(Params); ++I)
    WL.push(static_cast<int64_t>(I));
  Executor Exec({.NumThreads = Params.Threads, .Worklist = Params.Policy,
                 .Seed = Params.Seed});
  return Exec.run(WL, makeMicroOperator(Set, Params));
}

RoundStats comlat::runSetMicrobenchRounds(TxSet &Set,
                                          const MicroParams &Params) {
  std::vector<int64_t> Items;
  for (uint64_t I = 0; I != numTxsFor(Params); ++I)
    Items.push_back(static_cast<int64_t>(I));
  RoundExecutor Exec;
  return Exec.runBounded(Items, makeMicroOperator(Set, Params),
                         Params.Threads);
}
