//===- apps/Genrmf.cpp - Synthetic max-flow inputs ---------------------------===//

#include "apps/Genrmf.h"
#include "support/Random.h"

using namespace comlat;

MaxflowInstance comlat::genrmf(unsigned A, unsigned Frames, int64_t C1,
                               int64_t C2, uint64_t Seed) {
  assert(A >= 2 && Frames >= 2 && C1 >= 1 && C1 <= C2 && "bad parameters");
  const unsigned FrameSize = A * A;
  const unsigned NumNodes = FrameSize * Frames;
  MaxflowInstance Out;
  Out.Graph = std::make_unique<FlowGraph>(NumNodes);
  Out.Source = 0;
  Out.Sink = NumNodes - 1;

  const int64_t InFrameCap = C2 * static_cast<int64_t>(A) * A;
  auto NodeAt = [&](unsigned X, unsigned Y, unsigned Z) {
    return Z * FrameSize + Y * A + X;
  };

  Rng R(Seed);
  for (unsigned Z = 0; Z != Frames; ++Z) {
    // In-frame grid edges, both directions.
    for (unsigned Y = 0; Y != A; ++Y) {
      for (unsigned X = 0; X != A; ++X) {
        const unsigned U = NodeAt(X, Y, Z);
        if (X + 1 != A) {
          Out.Graph->addEdge(U, NodeAt(X + 1, Y, Z), InFrameCap);
          Out.Graph->addEdge(NodeAt(X + 1, Y, Z), U, InFrameCap);
        }
        if (Y + 1 != A) {
          Out.Graph->addEdge(U, NodeAt(X, Y + 1, Z), InFrameCap);
          Out.Graph->addEdge(NodeAt(X, Y + 1, Z), U, InFrameCap);
        }
      }
    }
    // Inter-frame edges through a random permutation of the next frame.
    if (Z + 1 != Frames) {
      const std::vector<uint32_t> Perm = R.permutation(FrameSize);
      for (unsigned I = 0; I != FrameSize; ++I) {
        const unsigned U = Z * FrameSize + I;
        const unsigned V = (Z + 1) * FrameSize + Perm[I];
        const int64_t Cap = R.nextInRange(C1, C2);
        Out.Graph->addEdge(U, V, Cap);
      }
    }
  }
  return Out;
}
