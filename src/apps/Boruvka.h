//===- apps/Boruvka.h - Minimum spanning trees --------------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Boruvka case study (§5): a worklist of component leaders; each
/// iteration finds the lightest edge leaving its component (pruning dead
/// edges), merges the two components in the union-find structure, splices
/// their candidate edge lists, and re-queues the merged leader. Union-find
/// carries the conflict detection under study (uf-gk general gatekeeper,
/// uf-gk-spec specialized gatekeeper, uf-ml memory-level STM); per-
/// component edge lists are claimed through boosted exclusive ownership,
/// mirroring the paper's "boosted objects wherever possible" methodology.
///
/// Inputs are random 2-D meshes with unique edge weights (so the MST is
/// unique); Kruskal provides the reference weight.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_BORUVKA_H
#define COMLAT_APPS_BORUVKA_H

#include "adt/BoostedUnionFind.h"
#include "adt/OwnerLocks.h"
#include "runtime/Executor.h"
#include "runtime/RoundExecutor.h"

#include <mutex>

namespace comlat {

/// An undirected weighted graph instance.
struct MeshInstance {
  unsigned NumNodes = 0;
  struct Edge {
    unsigned U;
    unsigned V;
    int64_t W;
  };
  std::vector<Edge> Edges;
};

/// 4-connected Width x Height grid with unique shuffled weights.
MeshInstance randomMesh(unsigned Width, unsigned Height, uint64_t Seed);

/// Reference MST weight (Kruskal).
int64_t kruskalWeight(const MeshInstance &Mesh);

/// Result of one Boruvka run.
struct BoruvkaResult {
  int64_t MstWeight = 0;
  size_t MstEdges = 0;
  ExecStats Exec;
  RoundStats Rounds; ///< Filled by the ParaMeter entry point only.
};

/// Boruvka driver over a boosted union-find.
class Boruvka {
public:
  /// \p Mesh must outlive the driver.
  explicit Boruvka(const MeshInstance *Mesh) : Mesh(Mesh) {}

  /// Plain sequential Boruvka (no transactions); overhead baseline.
  BoruvkaResult runSequential(double *Seconds = nullptr);

  /// Speculative run over "uf-gk", "uf-gk-spec", "uf-ml" or "uf-direct",
  /// under \p Config's thread count and scheduling policy.
  BoruvkaResult runSpeculative(const std::string &Variant,
                               const ExecutorConfig &Config);

  /// ParaMeter round-model run (critical path / parallelism, Table 1).
  BoruvkaResult runParameter(const std::string &Variant);

private:
  struct RunState;
  std::unique_ptr<TxUnionFind> makeUf(const std::string &Variant) const;
  Executor::OperatorFn makeOperator(std::shared_ptr<RunState> State,
                                    BoruvkaResult &Out,
                                    std::mutex &OutMutex);

  const MeshInstance *Mesh;
};

} // namespace comlat

#endif // COMLAT_APPS_BORUVKA_H
