//===- apps/SetMicrobench.h - The Table 2 workload ---------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set microbenchmark of §5 (Table 2): threads concurrently pick
/// objects from a shared pool and either add them to a global set or test
/// membership. Two inputs: every examined object distinct, or objects
/// drawn from a small number of equivalence classes (10 in the paper).
/// Four conflict-detection schemes from the set's lattice are compared:
/// global lock (bottom), exclusive key locks, read/write key locks
/// (Fig. 3) and the forward gatekeeper (precise, Fig. 2).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_SETMICROBENCH_H
#define COMLAT_APPS_SETMICROBENCH_H

#include "adt/BoostedSet.h"
#include "runtime/Executor.h"
#include "runtime/RoundExecutor.h"

namespace comlat {

/// Workload parameters.
struct MicroParams {
  uint64_t NumOps = 1000000;
  /// Operations per transaction; >1 widens the conflict window, which is
  /// how contention manifests on few cores.
  unsigned OpsPerTx = 8;
  /// 0 = all keys distinct; otherwise keys fall into this many classes.
  unsigned KeyClasses = 0;
  double AddFraction = 0.5;
  unsigned Threads = 4;
  uint64_t Seed = 42;
  /// Scheduler for the real-executor run; GlobalFifo reproduces the seed
  /// scheduler so benches can ablate scheduling against conflict cost.
  WorklistPolicy Policy = WorklistPolicy::ChunkedStealing;
};

/// Scheme selector for makeMicrobenchSet.
enum class SetScheme { GlobalLock, Exclusive, ReadWrite, Gatekeeper, Direct };

const char *setSchemeName(SetScheme S);

/// Builds the boosted set for a scheme.
std::unique_ptr<TxSet> makeMicrobenchSet(SetScheme S);

/// Runs the workload; returns executor statistics (abort ratio and time
/// are the two Table 2 columns).
ExecStats runSetMicrobench(TxSet &Set, const MicroParams &Params);

/// Runs the same transaction stream under the width-bounded round model
/// (Params.Threads simultaneous transactions in lockstep groups). The
/// deferral ratio — abortRatio(), Aborted/(Committed+Aborted) — is the
/// contention a scheme would exhibit with truly overlapping threads: the
/// signal behind Table 2's abort column, which a single hardware core
/// cannot produce natively.
RoundStats runSetMicrobenchRounds(TxSet &Set, const MicroParams &Params);

} // namespace comlat

#endif // COMLAT_APPS_SETMICROBENCH_H
