//===- apps/Boruvka.cpp - Minimum spanning trees -----------------------------===//

#include "apps/Boruvka.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <numeric>

using namespace comlat;

MeshInstance comlat::randomMesh(unsigned Width, unsigned Height,
                                uint64_t Seed) {
  assert(Width >= 2 && Height >= 2 && "mesh too small");
  MeshInstance Mesh;
  Mesh.NumNodes = Width * Height;
  auto NodeAt = [Width](unsigned X, unsigned Y) { return Y * Width + X; };
  for (unsigned Y = 0; Y != Height; ++Y) {
    for (unsigned X = 0; X != Width; ++X) {
      if (X + 1 != Width)
        Mesh.Edges.push_back(
            MeshInstance::Edge{NodeAt(X, Y), NodeAt(X + 1, Y), 0});
      if (Y + 1 != Height)
        Mesh.Edges.push_back(
            MeshInstance::Edge{NodeAt(X, Y), NodeAt(X, Y + 1), 0});
    }
  }
  // Unique weights: a random permutation of 1..E makes the MST unique.
  Rng R(Seed);
  std::vector<uint32_t> Perm =
      R.permutation(static_cast<uint32_t>(Mesh.Edges.size()));
  for (size_t I = 0; I != Mesh.Edges.size(); ++I)
    Mesh.Edges[I].W = static_cast<int64_t>(Perm[I]) + 1;
  return Mesh;
}

int64_t comlat::kruskalWeight(const MeshInstance &Mesh) {
  std::vector<uint32_t> Order(Mesh.Edges.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::sort(Order.begin(), Order.end(), [&Mesh](uint32_t A, uint32_t B) {
    return Mesh.Edges[A].W < Mesh.Edges[B].W;
  });
  UnionFind UF(Mesh.NumNodes);
  int64_t Total = 0;
  for (const uint32_t I : Order) {
    const MeshInstance::Edge &E = Mesh.Edges[I];
    bool Changed = false;
    UF.unite(E.U, E.V, nullptr, nullptr, Changed);
    if (Changed)
      Total += E.W;
  }
  return Total;
}

BoruvkaResult Boruvka::runSequential(double *Seconds) {
  Timer T;
  UnionFind UF(Mesh->NumNodes);
  std::vector<std::vector<uint32_t>> Lists(Mesh->NumNodes);
  for (uint32_t I = 0; I != Mesh->Edges.size(); ++I) {
    Lists[Mesh->Edges[I].U].push_back(I);
    Lists[Mesh->Edges[I].V].push_back(I);
  }
  std::deque<int64_t> Work;
  for (unsigned U = 0; U != Mesh->NumNodes; ++U)
    Work.push_back(U);
  BoruvkaResult Out;
  while (!Work.empty()) {
    const int64_t C = Work.front();
    Work.pop_front();
    if (UF.repOf(C) != C)
      continue;
    // Lightest alive edge leaving the component; prune dead ones.
    std::vector<uint32_t> &List = Lists[static_cast<size_t>(C)];
    int64_t BestW = INT64_MAX;
    uint32_t BestE = UINT32_MAX;
    for (size_t I = 0; I != List.size();) {
      const MeshInstance::Edge &E = Mesh->Edges[List[I]];
      if (UF.repOf(E.U) == UF.repOf(E.V)) {
        List[I] = List.back();
        List.pop_back();
        continue;
      }
      if (E.W < BestW) {
        BestW = E.W;
        BestE = List[I];
      }
      ++I;
    }
    if (BestE == UINT32_MAX)
      continue; // Component finished.
    const MeshInstance::Edge &E = Mesh->Edges[BestE];
    const int64_t Other =
        UF.repOf(E.U) == C ? UF.repOf(E.V) : UF.repOf(E.U);
    bool Changed = false;
    UF.unite(E.U, E.V, nullptr, nullptr, Changed);
    assert(Changed && "alive edge must merge two components");
    Out.MstWeight += E.W;
    ++Out.MstEdges;
    const int64_t Leader = UF.repOf(E.U);
    std::vector<uint32_t> &Src =
        Lists[static_cast<size_t>(Leader == C ? Other : C)];
    std::vector<uint32_t> &Dst = Lists[static_cast<size_t>(Leader)];
    Dst.insert(Dst.end(), Src.begin(), Src.end());
    Src.clear();
    Work.push_back(Leader);
  }
  if (Seconds)
    *Seconds = T.seconds();
  return Out;
}

struct Boruvka::RunState {
  explicit RunState(const MeshInstance &Mesh, std::unique_ptr<TxUnionFind> Uf)
      : Uf(std::move(Uf)), Owners("boruvka-components"),
        Lists(Mesh.NumNodes) {
    for (uint32_t I = 0; I != Mesh.Edges.size(); ++I) {
      Lists[Mesh.Edges[I].U].push_back(I);
      Lists[Mesh.Edges[I].V].push_back(I);
    }
  }

  std::unique_ptr<TxUnionFind> Uf;
  OwnerLocks Owners;
  std::vector<std::vector<uint32_t>> Lists;
};

std::unique_ptr<TxUnionFind>
Boruvka::makeUf(const std::string &Variant) const {
  if (Variant == "uf-gk")
    return makeGatedUnionFind(Mesh->NumNodes);
  if (Variant == "uf-gk-spec")
    return makeSpecializedUnionFind(Mesh->NumNodes);
  if (Variant == "uf-ml")
    return makeStmUnionFind(Mesh->NumNodes);
  if (Variant == "uf-direct")
    return makeDirectUnionFind(Mesh->NumNodes);
  COMLAT_UNREACHABLE("unknown union-find variant");
}

Executor::OperatorFn Boruvka::makeOperator(std::shared_ptr<RunState> State,
                                           BoruvkaResult &Out,
                                           std::mutex &OutMutex) {
  const MeshInstance *M = Mesh;
  return [State, M, &Out, &OutMutex](Transaction &Tx, int64_t C,
                                     TxWorklist &WL) {
    // Claim the component's edge list, then confirm C still leads it.
    if (!State->Owners.own(Tx, C))
      return;
    int64_t Rc = UfNone;
    if (!State->Uf->find(Tx, C, Rc))
      return;
    if (Rc != C)
      return; // Component was absorbed; its new leader is queued.

    // Scan for the lightest alive edge; dead edges (endpoints already in
    // one set, a monotone property of committed state) are pruned in
    // place — the list is exclusively owned.
    std::vector<uint32_t> &List = State->Lists[static_cast<size_t>(C)];
    int64_t BestW = INT64_MAX;
    uint32_t BestE = UINT32_MAX;
    int64_t BestOther = UfNone;
    for (size_t I = 0; I != List.size();) {
      const MeshInstance::Edge &E = M->Edges[List[I]];
      int64_t Ru = UfNone, Rv = UfNone;
      if (!State->Uf->find(Tx, E.U, Ru) || !State->Uf->find(Tx, E.V, Rv))
        return;
      if (Ru == Rv) {
        List[I] = List.back();
        List.pop_back();
        continue;
      }
      assert((Ru == C || Rv == C) &&
             "component list holds an edge not touching the component");
      if (E.W < BestW) {
        BestW = E.W;
        BestE = List[I];
        BestOther = Ru == C ? Rv : Ru;
      }
      ++I;
    }
    if (BestE == UINT32_MAX)
      return; // Spanning complete for this component.

    // Claim the neighbor component and merge.
    if (!State->Owners.own(Tx, BestOther))
      return;
    const MeshInstance::Edge &E = M->Edges[BestE];
    bool Changed = false;
    if (!State->Uf->unite(Tx, E.U, E.V, Changed))
      return;
    assert(Changed && "owned components cannot have merged meanwhile");
    int64_t Leader = UfNone;
    if (!State->Uf->find(Tx, E.U, Leader))
      return;
    assert((Leader == C || Leader == BestOther) && "unexpected union winner");
    const int64_t Loser = Leader == C ? BestOther : C;
    std::vector<uint32_t> &Dst = State->Lists[static_cast<size_t>(Leader)];
    std::vector<uint32_t> &Src = State->Lists[static_cast<size_t>(Loser)];
    const size_t OldDst = Dst.size();
    std::vector<uint32_t> Moved = std::move(Src);
    Src.clear();
    Dst.insert(Dst.end(), Moved.begin(), Moved.end());
    Tx.addUndo([&Dst, &Src, OldDst] {
      Src.assign(Dst.begin() + static_cast<ptrdiff_t>(OldDst), Dst.end());
      Dst.resize(OldDst);
    });

    WL.push(Leader);
    const int64_t W = E.W;
    Tx.addCommitAction([&Out, &OutMutex, W] {
      std::lock_guard<std::mutex> Guard(OutMutex);
      Out.MstWeight += W;
      ++Out.MstEdges;
    });
  };
}

BoruvkaResult Boruvka::runSpeculative(const std::string &Variant,
                                      const ExecutorConfig &Config) {
  auto State = std::make_shared<RunState>(*Mesh, makeUf(Variant));
  BoruvkaResult Out;
  std::mutex OutMutex;
  Worklist WL;
  for (unsigned U = 0; U != Mesh->NumNodes; ++U)
    WL.push(U);
  Executor Exec(Config);
  Out.Exec = Exec.run(WL, makeOperator(State, Out, OutMutex));
  return Out;
}

BoruvkaResult Boruvka::runParameter(const std::string &Variant) {
  auto State = std::make_shared<RunState>(*Mesh, makeUf(Variant));
  BoruvkaResult Out;
  std::mutex OutMutex;
  std::vector<int64_t> Initial;
  for (unsigned U = 0; U != Mesh->NumNodes; ++U)
    Initial.push_back(U);
  RoundExecutor Exec;
  Out.Rounds = Exec.run(Initial, makeOperator(State, Out, OutMutex));
  return Out;
}
