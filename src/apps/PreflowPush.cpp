//===- apps/PreflowPush.cpp - Goldberg-Tarjan max-flow ----------------------===//

#include "apps/PreflowPush.h"
#include "support/Timer.h"

#include <algorithm>
#include <deque>

using namespace comlat;

std::vector<int64_t> PreflowPush::initPreflow(FlowGraph &G, unsigned Source,
                                              unsigned Sink) {
  const unsigned N = G.numNodes();
  // Exact distance labels from the sink (standard global initialization).
  std::vector<int64_t> Dist(N, -1);
  std::deque<unsigned> Queue{Sink};
  Dist[Sink] = 0;
  while (!Queue.empty()) {
    const unsigned U = Queue.front();
    Queue.pop_front();
    for (unsigned I = 0; I != G.degree(U); ++I) {
      const unsigned V = G.neighbor(U, I);
      // Label V when it can reach U through a residual edge V -> U.
      const unsigned RevIdx = 0;
      (void)RevIdx;
      if (Dist[V] != -1)
        continue;
      // Look for the edge V -> U with residual capacity.
      bool Reaches = false;
      for (unsigned J = 0; J != G.degree(V); ++J)
        if (G.neighbor(V, J) == U && G.residual(V, J) > 0) {
          Reaches = true;
          break;
        }
      if (!Reaches)
        continue;
      Dist[V] = Dist[U] + 1;
      Queue.push_back(V);
    }
  }
  for (unsigned U = 0; U != N; ++U)
    G.setHeight(U, Dist[U] == -1 ? static_cast<int64_t>(N) : Dist[U]);
  G.setHeight(Source, static_cast<int64_t>(N));

  // Saturate the source's out-edges.
  int64_t SourceCap = 0;
  for (unsigned I = 0; I != G.degree(Source); ++I)
    SourceCap += G.residual(Source, I);
  G.setExcess(Source, SourceCap);
  std::vector<int64_t> Active;
  for (unsigned I = 0; I != G.degree(Source); ++I) {
    const int64_t Delta = G.residual(Source, I);
    if (Delta <= 0)
      continue;
    const unsigned V = G.neighbor(Source, I);
    G.applyPush(Source, I, Delta);
    if (V != Sink && G.excess(V) == Delta)
      Active.push_back(V);
  }
  return Active;
}

int64_t PreflowPush::runSequential(FlowGraph &G, unsigned Source,
                                   unsigned Sink, double *Seconds) {
  Timer T;
  std::deque<unsigned> Active;
  for (const int64_t U : initPreflow(G, Source, Sink))
    Active.push_back(static_cast<unsigned>(U));
  const int64_t MaxHeight = 2 * static_cast<int64_t>(G.numNodes());
  while (!Active.empty()) {
    const unsigned U = Active.front();
    Active.pop_front();
    while (G.excess(U) > 0 && G.height(U) < MaxHeight) {
      bool PushedAny = false;
      for (unsigned I = 0; I != G.degree(U) && G.excess(U) > 0; ++I) {
        const unsigned V = G.neighbor(U, I);
        if (G.residual(U, I) <= 0 || G.height(U) != G.height(V) + 1)
          continue;
        const int64_t Delta = std::min(G.excess(U), G.residual(U, I));
        const bool Activated = G.excess(V) == 0;
        G.applyPush(U, I, Delta);
        PushedAny = true;
        if (Activated && V != Source && V != Sink)
          Active.push_back(V);
      }
      if (G.excess(U) > 0 && !PushedAny) {
        // Relabel.
        int64_t Min = MaxHeight;
        for (unsigned I = 0; I != G.degree(U); ++I)
          if (G.residual(U, I) > 0)
            Min = std::min(Min, G.height(G.neighbor(U, I)) + 1);
        G.setHeight(U, std::max(G.height(U), Min));
      }
    }
  }
  if (Seconds)
    *Seconds = T.seconds();
  return G.excess(Sink);
}

Executor::OperatorFn PreflowPush::makeOperator(BoostedFlowGraph &BG,
                                               unsigned Source,
                                               unsigned Sink) {
  FlowGraph &G = BG.graph();
  const int64_t MaxHeight = 2 * static_cast<int64_t>(G.numNodes());
  return [&BG, &G, Source, Sink, MaxHeight](Transaction &Tx, int64_t Item,
                                            TxWorklist &WL) {
    const unsigned U = static_cast<unsigned>(Item);
    unsigned Degree = 0;
    if (!BG.getNeighbors(Tx, U, Degree))
      return;
    // Excess and residuals of U are protected by the getNeighbors lock
    // (any push into or out of U names U as an argument). Neighbor
    // heights read here are only a pre-filter; pushFlow re-validates
    // admissibility under its own locks.
    if (G.excess(U) <= 0 || G.height(U) >= MaxHeight)
      return;
    for (unsigned I = 0; I != Degree && G.excess(U) > 0; ++I) {
      const unsigned V = G.neighbor(U, I);
      if (G.residual(U, I) <= 0 || G.height(U) != G.height(V) + 1)
        continue;
      int64_t Pushed = 0;
      bool Activated = false;
      if (!BG.pushFlow(Tx, U, I, Pushed, Activated))
        return;
      if (Pushed > 0 && Activated && V != Source && V != Sink)
        WL.push(V);
    }
    if (G.excess(U) > 0) {
      int64_t NewHeight = 0;
      if (!BG.relabel(Tx, U, NewHeight))
        return;
      if (NewHeight < MaxHeight)
        WL.push(U); // Keep discharging in a later (short) transaction.
    }
  };
}

PreflowResult PreflowPush::runSpeculative(FlowGraph &G, unsigned Source,
                                          unsigned Sink, const CommSpec &Spec,
                                          const ExecutorConfig &Config,
                                          unsigned Partitions) {
  BoostedFlowGraph BG(&G, Spec, Partitions);
  Worklist WL(initPreflow(G, Source, Sink));
  Executor Exec(Config);
  PreflowResult Out;
  Out.Exec = Exec.run(WL, makeOperator(BG, Source, Sink));
  Out.FlowValue = G.excess(Sink);
  return Out;
}

PreflowRoundResult PreflowPush::runParameter(FlowGraph &G, unsigned Source,
                                             unsigned Sink,
                                             const CommSpec &Spec,
                                             unsigned Partitions) {
  BoostedFlowGraph BG(&G, Spec, Partitions);
  const std::vector<int64_t> Initial = initPreflow(G, Source, Sink);
  RoundExecutor Exec;
  PreflowRoundResult Out;
  Out.Rounds = Exec.run(Initial, makeOperator(BG, Source, Sink));
  Out.FlowValue = G.excess(Sink);
  return Out;
}
