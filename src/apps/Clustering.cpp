//===- apps/Clustering.cpp - Agglomerative clustering ------------------------===//

#include "apps/Clustering.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <memory>

using namespace comlat;

Clustering::Clustering(size_t N, uint64_t Seed) {
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    Point3 P;
    for (unsigned D = 0; D != KdDims; ++D)
      P.C[D] = R.nextDouble();
    Store.addPoint(P);
    Weight.push_back(1.0);
  }
  InitialPoints = N;
}

int64_t Clustering::centroidOf(int64_t A, int64_t B) {
  std::lock_guard<std::mutex> Guard(WeightMutex);
  const double WA = Weight[static_cast<size_t>(A)];
  const double WB = Weight[static_cast<size_t>(B)];
  const Point3 &PA = Store.get(A);
  const Point3 &PB = Store.get(B);
  Point3 C;
  for (unsigned D = 0; D != KdDims; ++D)
    C.C[D] = (PA.C[D] * WA + PB.C[D] * WB) / (WA + WB);
  const int64_t Id = Store.addPoint(C);
  assert(static_cast<size_t>(Id) == Weight.size() &&
         "weights out of sync with the point store");
  Weight.push_back(WA + WB);
  return Id;
}

std::unique_ptr<TxKdTree> Clustering::makeTree(const std::string &Variant) {
  if (Variant == "kd-gk")
    return makeGatedKdTree(&Store);
  if (Variant == "kd-ml")
    return makeStmKdTree(&Store);
  if (Variant == "kd-direct")
    return makeDirectKdTree(&Store);
  COMLAT_UNREACHABLE("unknown kd-tree variant");
}

Executor::OperatorFn Clustering::makeOperator(TxKdTree &Tree,
                                              std::vector<Merge> &Merges,
                                              std::mutex &MergesMutex) {
  // Points already consumed by a committed merge. Conflict detection on
  // the kd-tree makes racing merges impossible; this filter only drops
  // stale worklist items (guarded reads, updated at commit).
  struct SharedState {
    std::mutex M;
    IntHashSet Dead;
  };
  auto State = std::make_shared<SharedState>();

  return [this, &Tree, &Merges, &MergesMutex, State](
             Transaction &Tx, int64_t P, TxWorklist &WL) {
    {
      std::lock_guard<std::mutex> Guard(State->M);
      if (State->Dead.contains(P))
        return; // Already clustered into a centroid.
    }
    int64_t N = KdNullPoint;
    if (!Tree.nearest(Tx, P, N))
      return;
    if (N == KdNullPoint)
      return; // P is the final cluster.
    int64_t M = KdNullPoint;
    if (!Tree.nearest(Tx, N, M))
      return;
    if (M != P) {
      // Not mutual yet; retry after more merges happened.
      WL.push(P);
      return;
    }
    bool Changed = false;
    if (!Tree.remove(Tx, P, Changed))
      return;
    assert(Changed && "live worklist point missing from the tree");
    if (!Tree.remove(Tx, N, Changed))
      return;
    assert(Changed && "mutual nearest neighbor missing from the tree");
    const int64_t Parent = centroidOf(P, N);
    if (!Tree.add(Tx, Parent, Changed))
      return;
    assert(Changed && "fresh centroid id already in the tree");
    WL.push(Parent);
    Tx.addCommitAction([&Merges, &MergesMutex, State, P, N, Parent] {
      {
        std::lock_guard<std::mutex> Guard(State->M);
        State->Dead.insert(P);
        State->Dead.insert(N);
      }
      std::lock_guard<std::mutex> Guard(MergesMutex);
      Merges.push_back(Merge{P, N, Parent});
    });
  };
}

ClusterResult Clustering::runSequential(double *Seconds) {
  Timer T;
  ClusterResult Out = runSpeculative("kd-direct", {.NumThreads = 1});
  if (Seconds)
    *Seconds = T.seconds();
  return Out;
}

ClusterResult Clustering::runSpeculative(const std::string &Variant,
                                         const ExecutorConfig &Config) {
  const std::unique_ptr<TxKdTree> Tree = makeTree(Variant);
  ClusterResult Out;
  std::mutex MergesMutex;

  // Build phase: insert every initial point (sequentially).
  {
    Transaction Tx(1u << 30);
    for (size_t I = 0; I != InitialPoints; ++I) {
      bool Changed = false;
      const bool Ok = Tree->add(Tx, static_cast<int64_t>(I), Changed);
      assert(Ok && Changed && "sequential build cannot conflict");
      (void)Ok;
    }
    Tx.commit();
  }

  Worklist WL;
  for (size_t I = 0; I != InitialPoints; ++I)
    WL.push(static_cast<int64_t>(I));
  Executor Exec(Config);
  Out.Exec = Exec.run(WL, makeOperator(*Tree, Out.Merges, MergesMutex));
  return Out;
}

ClusterResult Clustering::runParameter(const std::string &Variant) {
  const std::unique_ptr<TxKdTree> Tree = makeTree(Variant);
  ClusterResult Out;
  std::mutex MergesMutex;
  {
    Transaction Tx(1u << 30);
    for (size_t I = 0; I != InitialPoints; ++I) {
      bool Changed = false;
      const bool Ok = Tree->add(Tx, static_cast<int64_t>(I), Changed);
      assert(Ok && Changed && "sequential build cannot conflict");
      (void)Ok;
    }
    Tx.commit();
  }
  std::vector<int64_t> Initial;
  for (size_t I = 0; I != InitialPoints; ++I)
    Initial.push_back(static_cast<int64_t>(I));
  RoundExecutor Exec;
  Out.Rounds = Exec.run(Initial, makeOperator(*Tree, Out.Merges, MergesMutex));
  return Out;
}
