//===- apps/MaxflowReference.h - Independent max-flow oracle ----*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone Dinic's-algorithm implementation used as an independent
/// oracle for the preflow-push case study: the max-flow value computed by
/// every conflict-detection variant must match this one.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_MAXFLOWREFERENCE_H
#define COMLAT_APPS_MAXFLOWREFERENCE_H

#include <cstdint>
#include <vector>

namespace comlat {

class FlowGraph;

/// A minimal standalone max-flow solver (Dinic).
class DinicSolver {
public:
  explicit DinicSolver(unsigned NumNodes);

  void addEdge(unsigned From, unsigned To, int64_t Cap);

  /// Computes the maximum flow value from \p Source to \p Sink.
  int64_t maxflow(unsigned Source, unsigned Sink);

private:
  bool buildLevels(unsigned Source, unsigned Sink);
  int64_t augment(unsigned U, unsigned Sink, int64_t Limit);

  struct Edge {
    unsigned To;
    unsigned Rev;
    int64_t Cap;
  };
  std::vector<std::vector<Edge>> Adj;
  std::vector<int> Level;
  std::vector<unsigned> Next;
};

/// Copies the (pre-flow) capacities of \p G into a Dinic solver and
/// returns the max-flow value. Must be called on an unused graph (original
/// capacities intact).
int64_t referenceMaxflow(const FlowGraph &G, unsigned Source, unsigned Sink);

} // namespace comlat

#endif // COMLAT_APPS_MAXFLOWREFERENCE_H
