//===- apps/PreflowPush.h - Goldberg-Tarjan max-flow -------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preflow-push case study (§5): a worklist of active nodes; each
/// iteration discharges one node by pushing excess along admissible
/// residual edges (activating receivers) and relabeling when stuck. The
/// boosted graph methods (getNeighbors / pushFlow / relabel) carry the
/// conflict detection; the three studied variants plug in via the flow
/// specs of adt/FlowGraph.h (ml / ex / part).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_PREFLOWPUSH_H
#define COMLAT_APPS_PREFLOWPUSH_H

#include "adt/FlowGraph.h"
#include "runtime/Executor.h"
#include "runtime/RoundExecutor.h"

namespace comlat {

/// Result of one speculative preflow-push run.
struct PreflowResult {
  int64_t FlowValue = 0;
  ExecStats Exec;
};

/// Result of one ParaMeter (round-model) preflow-push run.
struct PreflowRoundResult {
  int64_t FlowValue = 0;
  RoundStats Rounds;
};

/// Preflow-push driver over a boosted flow graph.
class PreflowPush {
public:
  /// Initializes the preflow: BFS height labels from the sink, source at
  /// N, and saturating pushes out of the source. Returns the initially
  /// active nodes.
  static std::vector<int64_t> initPreflow(FlowGraph &G, unsigned Source,
                                          unsigned Sink);

  /// Plain sequential preflow-push (no transactions); the overhead
  /// baseline. Returns the max-flow value.
  static int64_t runSequential(FlowGraph &G, unsigned Source, unsigned Sink,
                               double *Seconds = nullptr);

  /// Speculative run under \p Spec with \p Config's workers and scheduling
  /// policy. The graph must be fresh (initPreflow is called internally).
  static PreflowResult runSpeculative(FlowGraph &G, unsigned Source,
                                      unsigned Sink, const CommSpec &Spec,
                                      const ExecutorConfig &Config,
                                      unsigned Partitions = 32);

  /// ParaMeter round-model run under \p Spec (critical path /
  /// parallelism, Table 1).
  static PreflowRoundResult runParameter(FlowGraph &G, unsigned Source,
                                         unsigned Sink, const CommSpec &Spec,
                                         unsigned Partitions = 32);

  /// The discharge operator, exposed for the harnesses.
  static Executor::OperatorFn makeOperator(BoostedFlowGraph &BG,
                                           unsigned Source, unsigned Sink);
};

} // namespace comlat

#endif // COMLAT_APPS_PREFLOWPUSH_H
