//===- apps/Genrmf.h - Synthetic max-flow inputs -----------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GENRMF synthetic maximum-flow family ([1] in the paper: Goldberg's
/// CATS "synthetic maximum flow families"). The network is \p Frames
/// square grid frames of side \p A stacked along a third axis. In-frame
/// edges connect 4-neighbors with capacity C2 * A * A; each node connects
/// to a node of the next frame through a random permutation with capacity
/// drawn uniformly from [C1, C2]. Source is the first node of the first
/// frame, sink the last node of the last frame.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_APPS_GENRMF_H
#define COMLAT_APPS_GENRMF_H

#include "adt/FlowGraph.h"

#include <memory>

namespace comlat {

/// A generated max-flow instance.
struct MaxflowInstance {
  std::unique_ptr<FlowGraph> Graph;
  unsigned Source = 0;
  unsigned Sink = 0;
};

/// Builds a GENRMF-style instance: Frames frames of A x A nodes.
MaxflowInstance genrmf(unsigned A, unsigned Frames, int64_t C1, int64_t C2,
                       uint64_t Seed);

} // namespace comlat

#endif // COMLAT_APPS_GENRMF_H
