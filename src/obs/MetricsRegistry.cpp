//===- obs/MetricsRegistry.cpp - Sharded named metrics ---------------------===//

#include "obs/MetricsRegistry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace comlat;
using namespace comlat::obs;

unsigned obs::shardIndex() {
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumMetricShards;
  return Shard;
}

uint64_t HistogramSnapshot::quantileUpperBound(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  const uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank || (Seen == Count && Seen != 0))
      return 1ull << (B + 1);
  }
  return 1ull << NumBuckets;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  for (const Shard &S : Shards) {
    for (unsigned B = 0; B != NumBuckets; ++B)
      Snap.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
    Snap.Count += S.Count.load(std::memory_order_relaxed);
    Snap.Sum += S.Sum.load(std::memory_order_relaxed);
  }
  return Snap;
}

MetricsRegistry &MetricsRegistry::global() {
  // Leaked intentionally, like the trace session: metrics may be touched
  // by worker threads parked past static destruction.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

Counter *MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(M);
  Entry &E = Entries[Name];
  if (!E.C) {
    E.Kind = MetricKind::Counter;
    E.C = std::make_unique<Counter>();
  }
  assert(E.Kind == MetricKind::Counter && "metric re-registered as counter");
  return E.C.get();
}

Gauge *MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(M);
  Entry &E = Entries[Name];
  if (!E.G) {
    E.Kind = MetricKind::Gauge;
    E.G = std::make_unique<Gauge>();
  }
  assert(E.Kind == MetricKind::Gauge && "metric re-registered as gauge");
  return E.G.get();
}

Histogram *MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(M);
  Entry &E = Entries[Name];
  if (!E.H) {
    E.Kind = MetricKind::Histogram;
    E.H = std::make_unique<Histogram>();
  }
  assert(E.Kind == MetricKind::Histogram &&
         "metric re-registered as histogram");
  return E.H.get();
}

/// The metric base name: everything before the label braces.
static std::string baseName(const std::string &Name) {
  const size_t Brace = Name.find('{');
  return Brace == std::string::npos ? Name : Name.substr(0, Brace);
}

std::string MetricsRegistry::toPrometheusText() const {
  std::lock_guard<std::mutex> Guard(M);
  std::string Out;
  char Buf[128];
  std::string LastTyped;
  for (const auto &[Name, E] : Entries) {
    const std::string Base = baseName(Name);
    if (Base != LastTyped) {
      const char *Type = E.Kind == MetricKind::Counter   ? "counter"
                         : E.Kind == MetricKind::Gauge   ? "gauge"
                                                         : "histogram";
      Out += "# TYPE " + Base + " " + Type + "\n";
      LastTyped = Base;
    }
    switch (E.Kind) {
    case MetricKind::Counter:
      std::snprintf(Buf, sizeof(Buf), " %llu\n",
                    static_cast<unsigned long long>(E.C->value()));
      Out += Name + Buf;
      break;
    case MetricKind::Gauge:
      std::snprintf(Buf, sizeof(Buf), " %lld\n",
                    static_cast<long long>(E.G->value()));
      Out += Name + Buf;
      break;
    case MetricKind::Histogram: {
      const HistogramSnapshot Snap = E.H->snapshot();
      uint64_t Cumulative = 0;
      for (unsigned B = 0; B != HistogramSnapshot::NumBuckets; ++B) {
        Cumulative += Snap.Buckets[B];
        if (Snap.Buckets[B] == 0 && Cumulative != Snap.Count)
          continue; // keep the exposition short: only non-empty buckets
        std::snprintf(Buf, sizeof(Buf), "_bucket{le=\"%llu\"} %llu\n",
                      static_cast<unsigned long long>(1ull << (B + 1)),
                      static_cast<unsigned long long>(Cumulative));
        Out += Base + Buf;
        if (Cumulative == Snap.Count)
          break;
      }
      std::snprintf(Buf, sizeof(Buf), "_bucket{le=\"+Inf\"} %llu\n",
                    static_cast<unsigned long long>(Snap.Count));
      Out += Base + Buf;
      std::snprintf(Buf, sizeof(Buf), "_sum %llu\n",
                    static_cast<unsigned long long>(Snap.Sum));
      Out += Base + Buf;
      std::snprintf(Buf, sizeof(Buf), "_count %llu\n",
                    static_cast<unsigned long long>(Snap.Count));
      Out += Base + Buf;
      break;
    }
    }
  }
  return Out;
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Guard(M);
  std::string Out = "{";
  char Buf[128];
  bool First = true;
  for (const auto &[Name, E] : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + jsonEscape(Name) + "\": ";
    switch (E.Kind) {
    case MetricKind::Counter:
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(E.C->value()));
      Out += Buf;
      break;
    case MetricKind::Gauge:
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(E.G->value()));
      Out += Buf;
      break;
    case MetricKind::Histogram: {
      const HistogramSnapshot Snap = E.H->snapshot();
      std::snprintf(Buf, sizeof(Buf),
                    "{\"count\": %llu, \"sum\": %llu, \"p50\": %llu, "
                    "\"p99\": %llu}",
                    static_cast<unsigned long long>(Snap.Count),
                    static_cast<unsigned long long>(Snap.Sum),
                    static_cast<unsigned long long>(
                        Snap.quantileUpperBound(0.5)),
                    static_cast<unsigned long long>(
                        Snap.quantileUpperBound(0.99)));
      Out += Buf;
      break;
    }
    }
  }
  Out += "\n}\n";
  return Out;
}

std::string obs::metricName(
    const std::string &Base,
    const std::vector<std::pair<std::string, std::string>> &Labels) {
  if (Labels.empty())
    return Base;
  std::string Out = Base + "{";
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += K + "=\"";
    for (const char C : V) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += "\"";
  }
  Out += "}";
  return Out;
}
