//===- obs/ObsCli.h - Driver-side observability wiring ----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three flags every bench/example driver shares:
///
///   --trace=FILE         arm tracing; write a Chrome trace JSON at exit
///   --trace-events=N     per-worker ring capacity (default 64Ki events)
///   --metrics            print the Prometheus metrics dump to stderr
///   --metrics-json=FILE  write the metrics registry as JSON (the
///                        bench-smoke baseline format)
///
/// Construct one ScopedObs from the parsed Options at the top of main();
/// its destructor flushes everything after the workload ran.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_OBSCLI_H
#define COMLAT_OBS_OBSCLI_H

#include <string>

namespace comlat {

class Options;

namespace obs {

/// RAII observability scope for a driver process.
class ScopedObs {
public:
  explicit ScopedObs(const Options &Opts);
  ~ScopedObs();

  ScopedObs(const ScopedObs &) = delete;
  ScopedObs &operator=(const ScopedObs &) = delete;

  /// Flushes outputs now (idempotent; the destructor calls it too). Prints
  /// a one-line trace summary — event count and abort attribution — to
  /// stderr when tracing was armed.
  void flush();

private:
  std::string TracePath;
  std::string MetricsJsonPath;
  bool PrintMetrics = false;
  bool Flushed = false;
};

} // namespace obs
} // namespace comlat

#endif // COMLAT_OBS_OBSCLI_H
