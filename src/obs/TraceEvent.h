//===- obs/TraceEvent.h - The typed trace-event taxonomy --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of the observability layer. Every instrumented
/// subsystem — scheduler, executor, the three conflict-detection schemes of
/// §3 and the STM baseline — records fixed-size typed events into its
/// worker's TraceRing. The taxonomy mirrors the paper's cost taxonomy:
/// scheduling events expose where items travel, detector events expose
/// where conflict-detection time goes, and every Abort event carries enough
/// detail (detector label + packed mode/method pair) to attribute it to a
/// concrete lock-mode conflict, gatekeeper predicate, or STM validation
/// failure.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_TRACEEVENT_H
#define COMLAT_OBS_TRACEEVENT_H

#include <cstdint>

namespace comlat {
namespace obs {

/// What happened. Kept dense and stable: exporters and golden tests key on
/// these values.
enum class EventKind : uint8_t {
  /// Scheduler handed an item to a worker (Arg = item).
  ItemPop,
  /// A chunk was stolen from another worker (Arg = victim worker).
  ItemSteal,
  /// A pop attempt found no work anywhere.
  EmptyPop,
  /// Transaction committed (Arg = item, Tx set).
  Commit,
  /// Transaction aborted (Arg = item, Detail/Label = attribution).
  Abort,
  /// Post-abort backoff began (Arg = planned sleep in microseconds).
  Backoff,
  /// An abstract lock was granted (Detail = mode).
  LockAcquire,
  /// A transaction already holding a lock acquired a further mode on it
  /// (Detail = (held << 16) | new mode) — the "upgrade" path.
  LockUpgrade,
  /// Lock acquisition failed (Detail = (held << 16) | requested mode).
  LockConflict,
  /// A gatekeeper evaluated one commutativity condition
  /// (Detail = (first method << 16) | second method).
  GateCheck,
  /// A gatekeeper condition evaluated false and vetoed the invocation
  /// (Detail = (first method << 16) | second method).
  GateVeto,
  /// STM read-lock acquisition (Arg = object id).
  StmRead,
  /// STM write-lock acquisition (Arg = object id).
  StmWrite,
  /// STM validation failed (Arg = object, Detail = (held << 16) | req).
  StmConflict,
  /// One ParaMeter round completed (Arg = available iterations at round
  /// start, Detail = iterations committed in the round).
  Round,
  /// Service layer: a connection was accepted (Arg = connection fd).
  SvcAccept,
  /// Service layer: a request frame parsed cleanly off a connection
  /// (Arg = request id, Detail = message type).
  SvcFrame,
  /// Service layer: a batch frame was admitted to the submitter queue
  /// (Arg = request id).
  SvcAdmit,
  /// Service layer: a reply was queued for writing (Arg = request id,
  /// Detail = reply status: 0 ok, 1 busy, 2 error).
  SvcReply,
  /// Replication: the leader shipped a WAL chunk to a subscriber
  /// (Arg = chunk's last sequence, Detail = chunk bytes).
  ReplShip,
  /// Replication: a follower applied one shipped record
  /// (Arg = record sequence).
  ReplApply,
};

inline constexpr unsigned NumEventKinds = 21;

/// Short stable name for exporters ("pop", "steal", ...).
const char *eventKindName(EventKind Kind);

/// One fixed-size trace record: 32 bytes, written in place on the owning
/// worker's ring with no allocation and no synchronization.
struct TraceEvent {
  /// Raw trace-clock ticks (obs::now()).
  uint64_t Tick;
  /// Transaction id, or 0 when no transaction is in scope.
  uint64_t Tx;
  /// Kind-specific payload: the work item, STM object, or sleep length.
  int64_t Arg;
  /// Kind-specific packed pair: lock modes (held << 16 | requested) or
  /// gatekeeper methods (first << 16 | second).
  uint32_t Detail;
  /// Which instrumented component emitted this (see TraceRing.h label
  /// registration); 0 = none.
  uint16_t Label;
  EventKind Kind;
  /// Ring id of the recording thread (Chrome-trace lane).
  uint8_t Worker;
};

static_assert(sizeof(TraceEvent) == 32, "trace events must stay 32 bytes");

/// Packs a (held, requested) mode pair or (first, second) method pair into
/// the Detail field.
inline uint32_t packPair(uint32_t First, uint32_t Second) {
  return (First << 16) | (Second & 0xFFFFu);
}

inline uint32_t pairFirst(uint32_t Detail) { return Detail >> 16; }
inline uint32_t pairSecond(uint32_t Detail) { return Detail & 0xFFFFu; }

} // namespace obs
} // namespace comlat

#endif // COMLAT_OBS_TRACEEVENT_H
