//===- obs/ObsCli.cpp - Driver-side observability wiring -------------------===//

#include "obs/ObsCli.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceExport.h"
#include "support/AllocCount.h"
#include "support/Options.h"

#include <cstdio>

using namespace comlat;
using namespace comlat::obs;

ScopedObs::ScopedObs(const Options &Opts) {
  TracePath = Opts.getString("trace", "");
  MetricsJsonPath = Opts.getString("metrics-json", "");
  PrintMetrics = Opts.getBool("metrics");
  if (!TracePath.empty()) {
    const uint64_t Capacity =
        Opts.getUInt("trace-events", TraceRing::DefaultCapacity);
    TraceSession::global().arm(static_cast<size_t>(Capacity));
  }
}

void ScopedObs::flush() {
  if (Flushed)
    return;
  Flushed = true;
  if (!TracePath.empty()) {
    TraceSession &Session = TraceSession::global();
    Session.disarm();
    TraceExportResult Res;
    if (!TraceExport::writeChromeJsonFile(TracePath, Session, &Res)) {
      std::fprintf(stderr, "obs: cannot write trace file '%s'\n",
                   TracePath.c_str());
    } else {
      const double Attributed =
          Res.Aborts == 0 ? 100.0
                          : 100.0 * static_cast<double>(Res.AbortsAttributed) /
                                static_cast<double>(Res.Aborts);
      std::fprintf(stderr,
                   "obs: %llu events (%llu dropped) -> %s; %llu aborts, "
                   "%.1f%% attributed\n",
                   static_cast<unsigned long long>(Res.Events),
                   static_cast<unsigned long long>(Res.Dropped),
                   TracePath.c_str(),
                   static_cast<unsigned long long>(Res.Aborts), Attributed);
    }
  }
  // Snapshot the process-wide heap-allocation count into the registry so
  // exported metrics carry the allocation-free-hot-path evidence alongside
  // the throughput numbers. Stays 0 when COMLAT_COUNT_ALLOCS is off.
  if (allocCountingEnabled())
    MetricsRegistry::global()
        .gauge("comlat_allocs_total")
        ->set(static_cast<int64_t>(totalAllocs()));
  if (!MetricsJsonPath.empty() &&
      !TraceExport::writeTextFile(MetricsJsonPath,
                                  MetricsRegistry::global().toJson()))
    std::fprintf(stderr, "obs: cannot write metrics file '%s'\n",
                 MetricsJsonPath.c_str());
  if (PrintMetrics)
    std::fputs(MetricsRegistry::global().toPrometheusText().c_str(), stderr);
}

ScopedObs::~ScopedObs() { flush(); }
