//===- obs/Clock.h - Cycle-level timestamps for tracing ---------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace clock: a raw hardware tick counter (TSC on x86-64, the
/// virtual counter on AArch64, steady_clock nanoseconds elsewhere) read in
/// a handful of cycles with no syscall and no serialization. Trace events
/// record raw ticks; the exporter converts them to microseconds with a
/// calibration measured once per process (ticks are only ever compared and
/// differenced within one run, so constant frequency is all we need).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_CLOCK_H
#define COMLAT_OBS_CLOCK_H

#include <chrono>
#include <cstdint>

namespace comlat {
namespace obs {

/// Reads the raw trace clock. Monotonic per core and cheap enough for the
/// conflict-detection hot path (no fencing: we time spans of thousands of
/// cycles, not single instructions).
inline uint64_t now() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  uint64_t Ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(Ticks));
  return Ticks;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Tick-to-wall-clock conversion for one process.
struct ClockCalibration {
  /// Ticks per microsecond; exporters divide tick deltas by this.
  double TicksPerMicro = 1e3;

  /// Measures the trace clock against steady_clock over a short busy
  /// window. Called once, off the hot path (when a trace session arms).
  static ClockCalibration measure() {
    using SteadyClock = std::chrono::steady_clock;
    const uint64_t T0 = now();
    const SteadyClock::time_point W0 = SteadyClock::now();
    // ~2 ms window: long enough for sub-percent accuracy, short enough to
    // be unnoticeable at arm time.
    for (;;) {
      const auto Elapsed = SteadyClock::now() - W0;
      if (Elapsed >= std::chrono::milliseconds(2)) {
        const uint64_t T1 = now();
        const double Micros =
            std::chrono::duration<double, std::micro>(Elapsed).count();
        ClockCalibration C;
        if (Micros > 0 && T1 > T0)
          C.TicksPerMicro = static_cast<double>(T1 - T0) / Micros;
        return C;
      }
    }
  }
};

} // namespace obs
} // namespace comlat

#endif // COMLAT_OBS_CLOCK_H
