//===- obs/TraceRing.h - Lock-free per-worker event rings -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording half of the observability layer. Each thread owns one
/// bounded TraceRing; recording an event is a branch on the armed flag,
/// one clock read and one 32-byte store into the thread's ring — no locks,
/// no allocation, no cross-thread traffic. Full rings wrap, keeping the
/// most recent events (observability must never turn into backpressure).
///
/// Rings register themselves with the process-wide TraceSession on a
/// thread's first event; the session hands the full set to the exporters
/// after the traced region quiesces. Labels — short strings naming an
/// instrumented component ("set<rw>", "kdtree-gk", ...) — are interned
/// once at detector construction time so hot-path events carry a 16-bit id
/// instead of a pointer.
///
/// When the build disables tracing (COMLAT_TRACING=OFF, i.e.
/// COMLAT_TRACING_ENABLED == 0) the COMLAT_TRACE macro expands to nothing
/// and the entire recording path compiles out.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_TRACERING_H
#define COMLAT_OBS_TRACERING_H

#include "obs/Clock.h"
#include "obs/TraceEvent.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef COMLAT_TRACING_ENABLED
#define COMLAT_TRACING_ENABLED 1
#endif

namespace comlat {
namespace obs {

/// One thread's bounded event buffer. Written only by the owning thread
/// while a session is armed; read only after the traced region quiesced
/// (the executors' termination barrier provides the happens-before edge).
class TraceRing {
public:
  static constexpr size_t DefaultCapacity = 1 << 16; // 2 MiB of events

  /// \p Capacity is rounded up to a power of two (for mask-wrap indexing).
  explicit TraceRing(size_t Capacity = DefaultCapacity);

  /// Records one event; overwrites the oldest record once full.
  void record(EventKind Kind, uint64_t Tx, int64_t Arg, uint32_t Detail,
              uint16_t Label) {
    recordAt(now(), Kind, Tx, Arg, Detail, Label);
  }

  /// Records with an explicit timestamp (golden tests, replay tools).
  void recordAt(uint64_t Tick, EventKind Kind, uint64_t Tx, int64_t Arg,
                uint32_t Detail, uint16_t Label) {
    TraceEvent &E = Events[Head & Mask];
    E.Tick = Tick;
    E.Tx = Tx;
    E.Arg = Arg;
    E.Detail = Detail;
    E.Label = Label;
    E.Kind = Kind;
    E.Worker = RingId;
    ++Head;
  }

  /// Events recorded since the last reset (may exceed capacity: the ring
  /// wrapped and dropped the difference).
  uint64_t recorded() const { return Head; }

  /// Events dropped to wrap-around.
  uint64_t dropped() const {
    return Head > Events.size() ? Head - Events.size() : 0;
  }

  size_t capacity() const { return Events.size(); }

  /// The retained events in recording order (oldest first). Only valid
  /// once the writer thread is quiescent.
  std::vector<TraceEvent> snapshot() const;

  /// Forgets all events (capacity is retained).
  void reset() { Head = 0; }

  uint8_t ringId() const { return RingId; }
  void setRingId(uint8_t Id) { RingId = Id; }

private:
  std::vector<TraceEvent> Events;
  size_t Mask;
  uint64_t Head = 0;
  uint8_t RingId = 0;
};

/// The process-wide trace session: owns every thread's ring, the interned
/// label table, and the armed flag the hot path checks.
class TraceSession {
public:
  /// The process-wide session used by the COMLAT_TRACE macro.
  static TraceSession &global();

  /// Starts recording. Per-thread rings created from here on use
  /// \p RingCapacity. Also measures the clock calibration.
  void arm(size_t RingCapacity = TraceRing::DefaultCapacity);

  /// Stops recording (rings retain their events for export).
  void disarm();

  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Interns \p Name, returning its stable 16-bit id (> 0). \p Kind tags
  /// what the label names — exporters map it to an abort cause:
  /// "lock" (abstract locking), "gate" (a gatekeeper), "stm".
  uint16_t internLabel(const std::string &Name, const std::string &Kind);

  /// Registers a human-readable rendering of (\p Label, \p Detail) — e.g.
  /// "add(x):arg vs remove(y):arg" for a lock-mode pair. Called at
  /// detector construction, never on the hot path.
  void describeDetail(uint16_t Label, uint32_t Detail, std::string Text);

  const std::string &labelName(uint16_t Label) const;
  const std::string &labelKind(uint16_t Label) const;

  /// Rendering registered by describeDetail, or "" when unknown.
  const std::string &detailText(uint16_t Label, uint32_t Detail) const;

  /// The calling thread's ring, created (and registered) on first use.
  TraceRing &ringForThisThread();

  /// Stable snapshot of all registered rings. Rings live for the process
  /// lifetime, so the pointers never dangle.
  std::vector<TraceRing *> rings() const;

  /// Drops all recorded events (labels and rings are kept).
  void resetEvents();

  const ClockCalibration &calibration() const { return Calibration; }
  uint64_t armTick() const { return ArmTick; }

private:
  std::atomic<bool> Armed{false};
  std::atomic<size_t> RingCapacity{TraceRing::DefaultCapacity};
  ClockCalibration Calibration;
  uint64_t ArmTick = 0;

  mutable std::mutex M;
  std::vector<std::unique_ptr<TraceRing>> Rings;
  std::vector<std::pair<std::string, std::string>> Labels; // name, kind
  std::map<uint64_t, std::string> Details; // (label << 32 | detail) -> text
};

/// True when events should be recorded; constant-folds to false in
/// tracing-disabled builds so instrumentation sites vanish entirely.
inline bool tracingActive() {
#if COMLAT_TRACING_ENABLED
  return TraceSession::global().armed();
#else
  return false;
#endif
}

/// Out-of-line slow path of COMLAT_TRACE (only reached while armed).
void emitTraceEvent(EventKind Kind, uint64_t Tx, int64_t Arg, uint32_t Detail,
                    uint16_t Label);

} // namespace obs
} // namespace comlat

/// Records one typed trace event. Free of side effects (and of any code at
/// all, under COMLAT_TRACING=OFF) unless a session is armed.
#if COMLAT_TRACING_ENABLED
#define COMLAT_TRACE(Kind, Tx, Arg, Detail, Label)                            \
  do {                                                                        \
    if (::comlat::obs::tracingActive())                                       \
      ::comlat::obs::emitTraceEvent((Kind), (Tx), (Arg), (Detail), (Label)); \
  } while (false)
#else
#define COMLAT_TRACE(Kind, Tx, Arg, Detail, Label)                            \
  do {                                                                        \
  } while (false)
#endif

#endif // COMLAT_OBS_TRACERING_H
