//===- obs/TraceExport.cpp - Chrome-trace and Prometheus export ------------===//

#include "obs/TraceExport.h"

#include <algorithm>
#include <cstdio>

using namespace comlat;
using namespace comlat::obs;

namespace {

/// Incremental JSON assembly for the trace-event array.
class EventWriter {
public:
  explicit EventWriter(std::string &Out) : Out(Out) {}

  void open(const char *Name, const char *Cat, char Phase, double Ts,
            unsigned Tid) {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%.3f,\"pid\":1,\"tid\":%u",
                  First ? "" : ",", Name, Cat, Phase, Ts, Tid);
    Out += Buf;
    First = false;
  }

  void duration(double Dur) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"dur\":%.3f", Dur);
    Out += Buf;
  }

  void scopeThread() { Out += ",\"s\":\"t\""; }

  void argsBegin() {
    Out += ",\"args\":{";
    ArgsOpen = true;
  }

  void arg(const char *Key, uint64_t V) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", ArgFirst ? "" : ",", Key,
                  static_cast<unsigned long long>(V));
    Out += Buf;
    ArgFirst = false;
  }

  void arg(const char *Key, int64_t V) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%lld", ArgFirst ? "" : ",", Key,
                  static_cast<long long>(V));
    Out += Buf;
    ArgFirst = false;
  }

  void arg(const char *Key, const std::string &V) {
    Out += ArgFirst ? "\"" : ",\"";
    Out += Key;
    Out += "\":\"";
    for (const char C : V) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += "\"";
    ArgFirst = false;
  }

  void close() {
    if (ArgsOpen)
      Out += "}";
    ArgsOpen = false;
    ArgFirst = true;
    Out += "}";
  }

private:
  std::string &Out;
  bool First = true;
  bool ArgFirst = true;
  bool ArgsOpen = false;
};

/// Kinds whose Detail field is a described conflict pair; only these get a
/// "why" rendering (acquire/upgrade events reuse Detail for the raw mode,
/// which must not be looked up as a pair).
bool detailIsConflictPair(EventKind Kind) {
  switch (Kind) {
  case EventKind::LockConflict:
  case EventKind::GateCheck:
  case EventKind::GateVeto:
  case EventKind::StmConflict:
  case EventKind::Abort:
    return true;
  default:
    return false;
  }
}

/// The Chrome-viewer name of an abort, derived from the vetoing detector's
/// label kind ("lock", "gate", "stm"); unattributed aborts are the
/// operator's own retries.
std::string abortName(const TraceSession &Session, const TraceEvent &E) {
  const std::string &Kind = Session.labelKind(E.Label);
  if (Kind.empty())
    return "abort:user";
  return "abort:" + Kind;
}

} // namespace

std::string
TraceExport::toChromeJson(const std::vector<const TraceRing *> &Rings,
                          const TraceSession &Session, double TicksPerMicro,
                          uint64_t BaseTick, TraceExportResult *Result) {
  TraceExportResult Res;
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventWriter W(Out);

  const double Scale = TicksPerMicro > 0 ? 1.0 / TicksPerMicro : 1.0;
  const auto ToMicros = [&](uint64_t Tick) {
    return Tick >= BaseTick ? static_cast<double>(Tick - BaseTick) * Scale
                            : 0.0;
  };

  for (const TraceRing *Ring : Rings) {
    const std::vector<TraceEvent> Events = Ring->snapshot();
    Res.Events += Events.size();
    Res.Dropped += Ring->dropped();
    const unsigned Tid = Ring->ringId();

    // The open iteration on this lane: pop ts and item, until the matching
    // commit/abort closes it as one span.
    bool HaveOpenIter = false;
    double IterStart = 0;
    int64_t IterItem = 0;

    for (const TraceEvent &E : Events) {
      const double Ts = ToMicros(E.Tick);
      switch (E.Kind) {
      case EventKind::ItemPop:
        HaveOpenIter = true;
        IterStart = Ts;
        IterItem = E.Arg;
        break;
      case EventKind::Commit:
      case EventKind::Abort: {
        const bool IsAbort = E.Kind == EventKind::Abort;
        const std::string Name =
            IsAbort ? abortName(Session, E) : "commit";
        if (IsAbort) {
          ++Res.Aborts;
          // Attributed: a concrete detector vetoed (lock-mode pair,
          // gatekeeper predicate or STM object). Operator-requested
          // retries carry no label and are counted separately.
          if (E.Label != 0)
            ++Res.AbortsAttributed;
        }
        if (HaveOpenIter) {
          W.open(Name.c_str(), "iteration", 'X', IterStart, Tid);
          W.duration(std::max(0.0, Ts - IterStart));
        } else {
          // Pop fell off the wrapped ring; keep the outcome as an instant.
          W.open(Name.c_str(), "iteration", 'i', Ts, Tid);
          W.scopeThread();
        }
        W.argsBegin();
        W.arg("item", HaveOpenIter ? IterItem : E.Arg);
        W.arg("tx", E.Tx);
        if (IsAbort) {
          const std::string &Detector = Session.labelName(E.Label);
          if (!Detector.empty())
            W.arg("detector", Detector);
          const std::string &Why = Session.detailText(E.Label, E.Detail);
          if (!Why.empty())
            W.arg("why", Why);
        }
        W.close();
        HaveOpenIter = false;
        break;
      }
      case EventKind::Backoff:
        W.open("backoff", "scheduler", 'X', Ts, Tid);
        W.duration(static_cast<double>(E.Arg));
        W.argsBegin();
        W.arg("planned_us", E.Arg);
        W.close();
        break;
      case EventKind::Round:
        // Counter track: available parallelism and per-round commits.
        W.open("parallelism", "parameter", 'C', Ts, Tid);
        W.argsBegin();
        W.arg("available", E.Arg);
        W.arg("committed", static_cast<uint64_t>(E.Detail));
        W.close();
        break;
      default: {
        W.open(eventKindName(E.Kind), "detector", 'i', Ts, Tid);
        W.scopeThread();
        W.argsBegin();
        if (E.Tx != 0)
          W.arg("tx", E.Tx);
        if (E.Arg != 0)
          W.arg("arg", E.Arg);
        const std::string &Detector = Session.labelName(E.Label);
        if (!Detector.empty())
          W.arg("detector", Detector);
        if (detailIsConflictPair(E.Kind)) {
          const std::string &Why = Session.detailText(E.Label, E.Detail);
          if (!Why.empty())
            W.arg("why", Why);
        }
        W.close();
        break;
      }
      }
    }
  }

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "\n],\"otherData\":{\"events\":%llu,\"dropped\":%llu,"
                "\"aborts\":%llu,\"abortsAttributed\":%llu}}\n",
                static_cast<unsigned long long>(Res.Events),
                static_cast<unsigned long long>(Res.Dropped),
                static_cast<unsigned long long>(Res.Aborts),
                static_cast<unsigned long long>(Res.AbortsAttributed));
  Out += Buf;
  if (Result)
    *Result = Res;
  return Out;
}

std::string TraceExport::toChromeJson(const TraceSession &Session,
                                      TraceExportResult *Result) {
  const std::vector<TraceRing *> Mutable = Session.rings();
  const std::vector<const TraceRing *> Rings(Mutable.begin(), Mutable.end());
  return toChromeJson(Rings, Session, Session.calibration().TicksPerMicro,
                      Session.armTick(), Result);
}

bool TraceExport::writeTextFile(const std::string &Path,
                                const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  const bool Ok = std::fclose(F) == 0 && Written == Text.size();
  return Ok;
}

bool TraceExport::writeChromeJsonFile(const std::string &Path,
                                      const TraceSession &Session,
                                      TraceExportResult *Result) {
  return writeTextFile(Path, toChromeJson(Session, Result));
}
