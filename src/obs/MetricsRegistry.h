//===- obs/MetricsRegistry.h - Sharded named metrics ------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: named counters, gauges and
/// log-scale histograms. Writes go to per-worker sharded cells (one cache
/// line per shard) so the hot path is a relaxed fetch_add with no
/// cross-worker contention; reads merge the shards. Handles are looked up
/// once, by name, at construction time (the executor, each conflict
/// detector); the hot path only ever touches a pre-resolved pointer.
///
/// Metric names follow the Prometheus convention, with label sets rendered
/// into the name string at registration time (they are static — a detector
/// knows its mode pairs when it is built):
///
///   comlat_committed_total
///   comlat_lock_conflicts_total{detector="set<rw>",held="add:arg",req="rm:arg"}
///
/// The registry exports either Prometheus text format or a JSON object
/// (the bench-smoke baseline file).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_METRICSREGISTRY_H
#define COMLAT_OBS_METRICSREGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace comlat {
namespace obs {

/// Index of the calling thread's metric shard. Threads are assigned
/// round-robin; distinct workers get distinct shards until the shard count
/// is exceeded (then relaxed atomics absorb the sharing).
unsigned shardIndex();

inline constexpr unsigned NumMetricShards = 16;

/// A monotonically increasing sharded counter.
class Counter {
public:
  void add(uint64_t N = 1) {
    Cells[shardIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Merged value across shards.
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Cell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> V{0};
  };
  Cell Cells[NumMetricShards];
};

/// A last-write-wins instantaneous value (no sharding: gauges are set from
/// control paths, not per-iteration ones).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Merged read-side view of a histogram.
struct HistogramSnapshot {
  static constexpr unsigned NumBuckets = 32;
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;

  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Upper bound (2^(B+1)) of the bucket containing quantile \p Q.
  uint64_t quantileUpperBound(double Q) const;
};

/// A log2-bucketed sharded histogram: bucket B counts samples in
/// [2^B, 2^(B+1)), bucket 0 everything below 2; the unit is whatever the
/// call site observes (microseconds for latencies).
class Histogram {
public:
  static constexpr unsigned NumBuckets = HistogramSnapshot::NumBuckets;

  void observe(uint64_t Sample) {
    Shard &S = Shards[shardIndex()];
    S.Buckets[bucketFor(Sample)].fetch_add(1, std::memory_order_relaxed);
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(Sample, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  static unsigned bucketFor(uint64_t Sample) {
    unsigned B = 0;
    while (B + 1 < NumBuckets && (Sample >> (B + 1)) != 0)
      ++B;
    return B;
  }

private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> Buckets[NumBuckets] = {};
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
  };
  Shard Shards[NumMetricShards];
};

/// Name -> metric registry. Registration is mutex-guarded (construction
/// time only); returned handles are stable for the registry's lifetime.
class MetricsRegistry {
public:
  /// The process-wide registry backing ExecStats and the CLI exporters.
  static MetricsRegistry &global();

  Counter *counter(const std::string &Name);
  Gauge *gauge(const std::string &Name);
  Histogram *histogram(const std::string &Name);

  /// Prometheus text exposition of every registered metric.
  std::string toPrometheusText() const;

  /// One JSON object: {"name": value, ..., "hist": {"count": ..}}. The
  /// bench-smoke baseline (BENCH_baseline.json) is this rendering.
  std::string toJson() const;

private:
  enum class MetricKind { Counter, Gauge, Histogram };
  struct Entry {
    MetricKind Kind;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  mutable std::mutex M;
  std::map<std::string, Entry> Entries;
};

/// Renders a Prometheus-style metric name with a static label set, e.g.
/// metricName("comlat_lock_conflicts_total", {{"detector", "set"},
/// {"held", "add:arg"}}). Quotes and backslashes in values are escaped.
std::string
metricName(const std::string &Base,
           const std::vector<std::pair<std::string, std::string>> &Labels);

} // namespace obs
} // namespace comlat

#endif // COMLAT_OBS_METRICSREGISTRY_H
