//===- obs/TraceRing.cpp - Lock-free per-worker event rings ----------------===//

#include "obs/TraceRing.h"

#include "support/Compiler.h"

using namespace comlat;
using namespace comlat::obs;

const char *obs::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ItemPop:
    return "pop";
  case EventKind::ItemSteal:
    return "steal";
  case EventKind::EmptyPop:
    return "empty-pop";
  case EventKind::Commit:
    return "commit";
  case EventKind::Abort:
    return "abort";
  case EventKind::Backoff:
    return "backoff";
  case EventKind::LockAcquire:
    return "lock-acquire";
  case EventKind::LockUpgrade:
    return "lock-upgrade";
  case EventKind::LockConflict:
    return "lock-conflict";
  case EventKind::GateCheck:
    return "gate-check";
  case EventKind::GateVeto:
    return "gate-veto";
  case EventKind::StmRead:
    return "stm-read";
  case EventKind::StmWrite:
    return "stm-write";
  case EventKind::StmConflict:
    return "stm-conflict";
  case EventKind::Round:
    return "round";
  case EventKind::SvcAccept:
    return "svc-accept";
  case EventKind::SvcFrame:
    return "svc-frame";
  case EventKind::SvcAdmit:
    return "svc-admit";
  case EventKind::SvcReply:
    return "svc-reply";
  case EventKind::ReplShip:
    return "repl-ship";
  case EventKind::ReplApply:
    return "repl-apply";
  }
  COMLAT_UNREACHABLE("bad event kind");
}

static size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

TraceRing::TraceRing(size_t Capacity)
    : Events(roundUpPow2(Capacity == 0 ? 1 : Capacity)),
      Mask(Events.size() - 1) {}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> Out;
  const size_t Retained =
      Head < Events.size() ? static_cast<size_t>(Head) : Events.size();
  Out.reserve(Retained);
  // Oldest retained event first: once wrapped, that is the slot Head
  // points at (about to be overwritten next).
  const uint64_t First = Head - Retained;
  for (uint64_t I = First; I != Head; ++I)
    Out.push_back(Events[I & Mask]);
  return Out;
}

TraceSession &TraceSession::global() {
  // Leaked intentionally: worker threads may touch their rings during
  // static destruction (thread pools park past main's end in tests).
  static TraceSession *S = new TraceSession();
  return *S;
}

void TraceSession::arm(size_t Capacity) {
  {
    std::lock_guard<std::mutex> Guard(M);
    Calibration = ClockCalibration::measure();
    ArmTick = now();
  }
  RingCapacity.store(Capacity, std::memory_order_relaxed);
  Armed.store(true, std::memory_order_release);
}

void TraceSession::disarm() { Armed.store(false, std::memory_order_release); }

uint16_t TraceSession::internLabel(const std::string &Name,
                                   const std::string &Kind) {
  std::lock_guard<std::mutex> Guard(M);
  for (size_t I = 0; I != Labels.size(); ++I)
    if (Labels[I].first == Name && Labels[I].second == Kind)
      return static_cast<uint16_t>(I + 1);
  Labels.emplace_back(Name, Kind);
  assert(Labels.size() < 0xFFFF && "label table overflow");
  return static_cast<uint16_t>(Labels.size());
}

void TraceSession::describeDetail(uint16_t Label, uint32_t Detail,
                                  std::string Text) {
  std::lock_guard<std::mutex> Guard(M);
  Details[(static_cast<uint64_t>(Label) << 32) | Detail] = std::move(Text);
}

static const std::string &emptyString() {
  static const std::string Empty;
  return Empty;
}

const std::string &TraceSession::labelName(uint16_t Label) const {
  std::lock_guard<std::mutex> Guard(M);
  if (Label == 0 || Label > Labels.size())
    return emptyString();
  return Labels[Label - 1].first;
}

const std::string &TraceSession::labelKind(uint16_t Label) const {
  std::lock_guard<std::mutex> Guard(M);
  if (Label == 0 || Label > Labels.size())
    return emptyString();
  return Labels[Label - 1].second;
}

const std::string &TraceSession::detailText(uint16_t Label,
                                            uint32_t Detail) const {
  std::lock_guard<std::mutex> Guard(M);
  const auto It =
      Details.find((static_cast<uint64_t>(Label) << 32) | Detail);
  return It == Details.end() ? emptyString() : It->second;
}

TraceRing &TraceSession::ringForThisThread() {
  thread_local TraceRing *Ring = nullptr;
  if (COMLAT_LIKELY(Ring != nullptr))
    return *Ring;
  std::lock_guard<std::mutex> Guard(M);
  Rings.push_back(std::make_unique<TraceRing>(
      RingCapacity.load(std::memory_order_relaxed)));
  Ring = Rings.back().get();
  Ring->setRingId(static_cast<uint8_t>((Rings.size() - 1) & 0xFF));
  return *Ring;
}

std::vector<TraceRing *> TraceSession::rings() const {
  std::lock_guard<std::mutex> Guard(M);
  std::vector<TraceRing *> Out;
  Out.reserve(Rings.size());
  for (const std::unique_ptr<TraceRing> &R : Rings)
    Out.push_back(R.get());
  return Out;
}

void TraceSession::resetEvents() {
  std::lock_guard<std::mutex> Guard(M);
  for (const std::unique_ptr<TraceRing> &R : Rings)
    R->reset();
}

void obs::emitTraceEvent(EventKind Kind, uint64_t Tx, int64_t Arg,
                         uint32_t Detail, uint16_t Label) {
  TraceSession::global().ringForThisThread().record(Kind, Tx, Arg, Detail,
                                                    Label);
}
