//===- obs/TraceExport.h - Chrome-trace and Prometheus export ---*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns recorded TraceRings into a chrome://tracing (Trace Event Format)
/// JSON document: one timeline lane per worker ring, iteration spans
/// synthesized from pop->commit/abort pairs, detector events as instants
/// with their attribution rendered into args, and ParaMeter rounds as
/// counter tracks (available parallelism per round). The Prometheus side
/// lives on MetricsRegistry (toPrometheusText/toJson); this header only
/// adds the file-writing conveniences the bench drivers share.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_OBS_TRACEEXPORT_H
#define COMLAT_OBS_TRACEEXPORT_H

#include "obs/TraceRing.h"

#include <string>
#include <vector>

namespace comlat {
namespace obs {

/// Summary of one export, used by drivers to report attribution coverage
/// (the "every abort is explained" contract).
struct TraceExportResult {
  /// Events retained across all rings.
  uint64_t Events = 0;
  /// Events lost to ring wrap-around.
  uint64_t Dropped = 0;
  /// Abort events exported.
  uint64_t Aborts = 0;
  /// Abort events carrying a concrete attribution: a detector label with a
  /// lock-mode pair, gatekeeper predicate, or STM object. Operator-requested
  /// retries (user aborts) carry no label and are not counted here.
  uint64_t AbortsAttributed = 0;
};

namespace TraceExport {

/// Renders \p Rings as a Chrome trace. \p TicksPerMicro and \p BaseTick
/// pin the time axis (pass session.calibration().TicksPerMicro and the
/// arm tick for real exports; fixed values in golden tests). \p Session
/// supplies label/detail names.
std::string toChromeJson(const std::vector<const TraceRing *> &Rings,
                         const TraceSession &Session, double TicksPerMicro,
                         uint64_t BaseTick,
                         TraceExportResult *Result = nullptr);

/// Renders every ring of \p Session on its own calibration.
std::string toChromeJson(const TraceSession &Session,
                         TraceExportResult *Result = nullptr);

/// Writes toChromeJson(Session) to \p Path; false on I/O failure.
bool writeChromeJsonFile(const std::string &Path, const TraceSession &Session,
                         TraceExportResult *Result = nullptr);

/// Writes arbitrary exposition text (Prometheus or JSON metrics) to a
/// file; false on I/O failure.
bool writeTextFile(const std::string &Path, const std::string &Text);

} // namespace TraceExport

} // namespace obs
} // namespace comlat

#endif // COMLAT_OBS_TRACEEXPORT_H
