//===- stm/ObjectStm.cpp - Memory-level conflict detection -----------------===//

#include "stm/ObjectStm.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"

using namespace comlat;

MemProbe::~MemProbe() = default;

namespace {
enum StmMode : ModeId { ReadMode = 0, WriteMode = 1 };
} // namespace

ObjectStm::ObjectStm(std::string Label) : Label(std::move(Label)) {
  // Read/read compatible; anything involving a write conflicts.
  Compat = {{1, 0}, {0, 0}};
  obs::TraceSession &Session = obs::TraceSession::global();
  ObsLabel = Session.internLabel(this->Label, "stm");
  const char *ModeNames[2] = {"read", "write"};
  for (ModeId Held = 0; Held != 2; ++Held)
    for (ModeId Req = 0; Req != 2; ++Req) {
      if (Compat[Held][Req])
        continue;
      PairConflicts[Held][Req] = obs::MetricsRegistry::global().counter(
          obs::metricName("comlat_stm_conflicts_total",
                          {{"detector", this->Label},
                           {"held", ModeNames[Held]},
                           {"req", ModeNames[Req]}}));
      Session.describeDetail(ObsLabel, obs::packPair(Held, Req),
                             std::string(ModeNames[Held]) + " vs " +
                                 ModeNames[Req]);
    }
}

bool ObjectStm::acquire(Transaction &Tx, uint64_t Obj, ModeId Mode) {
  Tx.touch(this);
  Accesses.fetch_add(1, std::memory_order_relaxed);
  COMLAT_TRACE(Mode == WriteMode ? obs::EventKind::StmWrite
                                 : obs::EventKind::StmRead,
               Tx.id(), static_cast<int64_t>(Obj), 0, ObsLabel);
  AbstractLock *Lock = Table.lockFor(LockTable::PlainSpace,
                                     Value::integer(static_cast<int64_t>(Obj)));
  ModeId Blocking = 0;
  bool WasHeld = false;
  if (!Lock->tryAcquire(Tx.id(), Mode, Compat, &Blocking, &WasHeld)) {
    Conflicts.fetch_add(1, std::memory_order_relaxed);
    const uint32_t Detail = obs::packPair(Blocking, Mode);
    PairConflicts[Blocking][Mode]->add();
    COMLAT_TRACE(obs::EventKind::StmConflict, Tx.id(),
                 static_cast<int64_t>(Obj), Detail, ObsLabel);
    Tx.fail(AbortCause::LockConflict, Detail, ObsLabel);
    return false;
  }
  // First hold only: releaseAll drops every mode at once, and repeated
  // probes of one hot object (every node access re-reads the root) would
  // otherwise blow the transaction's inline holder list.
  if (!WasHeld)
    Tx.noteHeldLock(this, Lock);
  return true;
}

bool ObjectStm::read(Transaction &Tx, uint64_t Obj) {
  return acquire(Tx, Obj, ReadMode);
}

bool ObjectStm::write(Transaction &Tx, uint64_t Obj) {
  return acquire(Tx, Obj, WriteMode);
}

void ObjectStm::release(Transaction &Tx, bool Committed) {
  Tx.consumeHeldLocks(this, [&](AbstractLock *Lock) {
    Lock->releaseAll(Tx.id());
  });
}
