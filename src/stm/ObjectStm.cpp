//===- stm/ObjectStm.cpp - Memory-level conflict detection -----------------===//

#include "stm/ObjectStm.h"

using namespace comlat;

MemProbe::~MemProbe() = default;

namespace {
enum StmMode : ModeId { ReadMode = 0, WriteMode = 1 };
} // namespace

ObjectStm::ObjectStm(std::string Label) : Label(std::move(Label)) {
  // Read/read compatible; anything involving a write conflicts.
  Compat = {{1, 0}, {0, 0}};
}

bool ObjectStm::acquire(Transaction &Tx, uint64_t Obj, ModeId Mode) {
  Tx.touch(this);
  Accesses.fetch_add(1, std::memory_order_relaxed);
  AbstractLock *Lock = Table.lockFor(LockTable::PlainSpace,
                                     Value::integer(static_cast<int64_t>(Obj)));
  if (!Lock->tryAcquire(Tx.id(), Mode, Compat)) {
    Conflicts.fetch_add(1, std::memory_order_relaxed);
    Tx.fail(AbortCause::LockConflict);
    return false;
  }
  std::lock_guard<std::mutex> Guard(HeldMutex);
  Held[Tx.id()].push_back(Lock);
  return true;
}

bool ObjectStm::read(Transaction &Tx, uint64_t Obj) {
  return acquire(Tx, Obj, ReadMode);
}

bool ObjectStm::write(Transaction &Tx, uint64_t Obj) {
  return acquire(Tx, Obj, WriteMode);
}

void ObjectStm::release(Transaction &Tx, bool Committed) {
  std::vector<AbstractLock *> Locks;
  {
    std::lock_guard<std::mutex> Guard(HeldMutex);
    const auto It = Held.find(Tx.id());
    if (It == Held.end())
      return;
    Locks = std::move(It->second);
    Held.erase(It);
  }
  for (AbstractLock *Lock : Locks)
    Lock->releaseAll(Tx.id());
}
