//===- stm/ObjectStm.h - Memory-level conflict detection --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-level baseline the paper compares against (its "ml" variants,
/// measured with DSTM2): an object-granularity software transactional
/// memory with encounter-time read/write locking and visible readers.
/// Concrete data structures instrument their node accesses through the
/// MemProbe interface; a conflict (incompatible access by another live
/// transaction) fails the transaction, whose undo log reverts all writes.
///
/// Two transactions conflict here exactly when they touch the same concrete
/// object and at least one writes — the "concrete commutativity" criterion
/// of §4.3, which the commutativity lattice places at or below every
/// semantic specification (F_C <= F*). The kd-tree and union-find
/// experiments reproduce the consequences: bounding-box updates and path
/// compression create memory conflicts between semantically commuting
/// operations.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_STM_OBJECTSTM_H
#define COMLAT_STM_OBJECTSTM_H

#include "runtime/LockTable.h"
#include "runtime/Transaction.h"

#include <atomic>

namespace comlat {

namespace obs {
class Counter;
} // namespace obs

/// Instrumentation hook concrete structures call on every object access.
/// Both methods return false when the access must not proceed (conflict);
/// the structure then abandons the operation mid-way (already-registered
/// undo actions revert partial work).
class MemProbe {
public:
  virtual ~MemProbe();
  virtual bool onRead(uint64_t Obj) = 0;
  virtual bool onWrite(uint64_t Obj) = 0;
};

/// A MemProbe that always admits (for plain sequential execution).
class NullProbe : public MemProbe {
public:
  bool onRead(uint64_t Obj) override { return true; }
  bool onWrite(uint64_t Obj) override { return true; }
};

/// The STM conflict detector: r/w locks per concrete object.
class ObjectStm : public ConflictDetector {
public:
  explicit ObjectStm(std::string Label);

  /// Acquires a read lock on \p Obj for \p Tx; false (and Tx failed) when
  /// another live transaction holds it for writing.
  bool read(Transaction &Tx, uint64_t Obj);

  /// Acquires a write lock on \p Obj; false when another live transaction
  /// holds it in any mode. The caller performs the write and registers its
  /// undo action on the transaction.
  bool write(Transaction &Tx, uint64_t Obj);

  void release(Transaction &Tx, bool Committed) override;
  const char *name() const override { return Label.c_str(); }

  uint64_t numAccesses() const { return Accesses.load(); }
  uint64_t numConflicts() const { return Conflicts.load(); }

private:
  bool acquire(Transaction &Tx, uint64_t Obj, ModeId Mode);

  std::string Label;
  CompatMatrix Compat;
  LockTable Table;
  std::atomic<uint64_t> Accesses{0};
  std::atomic<uint64_t> Conflicts{0};
  /// Interned trace label and the three conflict counters (r-w, w-r, w-w)
  /// pre-registered at construction, indexed [held][requested].
  uint16_t ObsLabel = 0;
  obs::Counter *PairConflicts[2][2] = {};
};

/// Adapts (ObjectStm, Transaction) to the MemProbe interface so a concrete
/// structure can run one operation under STM instrumentation.
class StmProbe : public MemProbe {
public:
  StmProbe(ObjectStm &Stm, Transaction &Tx) : Stm(Stm), Tx(Tx) {}

  bool onRead(uint64_t Obj) override { return Stm.read(Tx, Obj); }
  bool onWrite(uint64_t Obj) override { return Stm.write(Tx, Obj); }

private:
  ObjectStm &Stm;
  Transaction &Tx;
};

} // namespace comlat

#endif // COMLAT_STM_OBJECTSTM_H
