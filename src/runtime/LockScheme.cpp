//===- runtime/LockScheme.cpp - Lock schemes from SIMPLE specs -------------===//

#include "runtime/LockScheme.h"
#include "core/Classify.h"

#include <map>
#include <set>

using namespace comlat;

LockScheme::LockScheme(const CommSpec &Spec) : Sig(&Spec.sig()) {
  const unsigned NumMethods = Sig->numMethods();

  // Step 1: define modes. Per method: a structure mode, one mode per
  // argument slot, one for the return value.
  std::map<std::pair<MethodId, Slot>, ModeId> SlotModes;
  StructureModes.resize(NumMethods);
  for (MethodId M = 0; M != NumMethods; ++M) {
    const MethodInfo &Info = Sig->method(M);
    StructureModes[M] = static_cast<ModeId>(Names.size());
    Names.push_back(Info.Name + ":ds");
    for (unsigned I = 0; I != Info.NumArgs; ++I) {
      SlotModes[{M, Slot{false, I}}] = static_cast<ModeId>(Names.size());
      Names.push_back(Info.Name + ":arg" + std::to_string(I));
    }
    if (Info.HasRet) {
      SlotModes[{M, Slot{true, 0}}] = static_cast<ModeId>(Names.size());
      Names.push_back(Info.Name + ":ret");
    }
  }

  // Rule 3: compatibility is the default.
  const unsigned NumModes = static_cast<unsigned>(Names.size());
  Compat.assign(NumModes, std::vector<uint8_t>(NumModes, 1));

  // Rules 1-2: incompatibilities from the specification. Track which key
  // functions each slot is locked under so acquisitions use matching key
  // spaces.
  std::map<std::pair<MethodId, Slot>, std::set<std::optional<StateFnId>>>
      SlotKeys;
  auto MarkIncompatible = [this](ModeId A, ModeId B) {
    Compat[A][B] = 0;
    Compat[B][A] = 0;
  };
  const SpecClassification &Class = Spec.classification();
  PrivatizableMask = Class.privatizableMask();
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    for (MethodId M2 = M1; M2 != NumMethods; ++M2) {
      const std::optional<SimpleForm> &Form = Class.pair(M1, M2).Simple;
      if (!Form)
        COMLAT_UNREACHABLE("lock scheme requested for a non-SIMPLE "
                           "specification (Theorem 1 forbids it)");
      switch (Form->K) {
      case SimpleForm::Kind::True:
        break;
      case SimpleForm::Kind::False:
        MarkIncompatible(StructureModes[M1], StructureModes[M2]);
        break;
      case SimpleForm::Kind::Clauses:
        for (const SimpleClause &C : Form->Clauses) {
          const ModeId A = SlotModes.at({M1, C.Lhs});
          const ModeId B = SlotModes.at({M2, C.Rhs});
          MarkIncompatible(A, B);
          SlotKeys[{M1, C.Lhs}].insert(C.KeyFn);
          SlotKeys[{M2, C.Rhs}].insert(C.KeyFn);
        }
        break;
      }
    }
  }

  // Reduction: a mode compatible with every mode can never cause or suffer
  // a conflict; drop it and its acquisitions.
  Reduced.assign(NumModes, 1);
  for (ModeId A = 0; A != NumModes; ++A)
    for (ModeId B = 0; B != NumModes; ++B)
      if (!Compat[A][B]) {
        Reduced[A] = 0;
        Reduced[B] = 0;
      }

  // Step 2: acquisitions (post-reduction).
  Pre.resize(NumMethods);
  Post.resize(NumMethods);
  for (MethodId M = 0; M != NumMethods; ++M) {
    const MethodInfo &Info = Sig->method(M);
    if (!Reduced[StructureModes[M]])
      Pre[M].push_back(LockAcquisition{StructureModes[M], /*OnStructure=*/true,
                                       false, 0, std::nullopt, nullptr});
    auto AddSlot = [&](Slot S, std::vector<LockAcquisition> &Out) {
      const auto ModeIt = SlotModes.find({M, S});
      assert(ModeIt != SlotModes.end() && "slot without a mode");
      if (Reduced[ModeIt->second])
        return;
      const auto KeysIt = SlotKeys.find({M, S});
      // A non-reduced slot mode always stems from some clause, which
      // registered at least one key space.
      assert(KeysIt != SlotKeys.end() && "constrained slot without keys");
      for (const std::optional<StateFnId> &Key : KeysIt->second) {
        LockAcquisition Acq{ModeIt->second, false, S.IsRet, S.ArgIndex, Key,
                            nullptr};
        // Compile the key expression `x` (or `k(x)`) with the slot read as
        // a first-invocation frame load; keys in SIMPLE clauses are pure,
        // so the apply carries no state reference and the lock manager's
        // resolver never sees S1/S2.
        TermPtr KeyTerm = S.IsRet ? dsl::ret1() : dsl::arg1(S.ArgIndex);
        if (Key)
          KeyTerm = dsl::apply(*Key, StateRef::None, {KeyTerm});
        CondCompiler C;
        Acq.KeyProg =
            std::make_shared<const CondProgram>(C.compileTerm(KeyTerm));
        Out.push_back(std::move(Acq));
      }
    };
    for (unsigned I = 0; I != Info.NumArgs; ++I)
      AddSlot(Slot{false, I}, Pre[M]);
    if (Info.HasRet)
      AddSlot(Slot{true, 0}, Post[M]);
  }

  // Compile the ordered-pair conditions the matrix was derived from. The
  // scheme itself never evaluates these at run time (that is the point of
  // abstract locking), but diagnostics and the validator's differential
  // mode compare them against the interpreter.
  PairProgs.resize(NumMethods);
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    PairProgs[M1].reserve(NumMethods);
    for (MethodId M2 = 0; M2 != NumMethods; ++M2) {
      CondCompiler C;
      PairProgs[M1].push_back(C.compileFormula(Class.pair(M1, M2).Cond));
    }
  }
}

std::string LockScheme::matrixStr(bool IncludeReduced) const {
  std::vector<ModeId> Shown;
  for (ModeId M = 0; M != numModes(); ++M)
    if (IncludeReduced || !Reduced[M])
      Shown.push_back(M);
  size_t Width = 1;
  for (ModeId M : Shown)
    Width = std::max(Width, Names[M].size());
  std::string Out(Width + 1, ' ');
  for (ModeId M : Shown) {
    Out += Names[M];
    Out += ' ';
  }
  Out += '\n';
  for (ModeId Row : Shown) {
    Out += Names[Row];
    Out.append(Width + 1 - Names[Row].size(), ' ');
    for (ModeId Col : Shown) {
      const std::string Cell = Compat[Row][Col] ? "+" : "x";
      Out += Cell;
      Out.append(Names[Col].size(), ' ');
    }
    Out += '\n';
  }
  return Out;
}
