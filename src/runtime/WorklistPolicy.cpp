//===- runtime/WorklistPolicy.cpp - Scheduler policies ---------------------===//

#include "runtime/WorklistPolicy.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"
#include "support/Compiler.h"

#include <deque>
#include <mutex>

using namespace comlat;

const char *comlat::worklistPolicyName(WorklistPolicy Policy) {
  switch (Policy) {
  case WorklistPolicy::ChunkedStealing:
    return "chunked";
  case WorklistPolicy::GlobalFifo:
    return "fifo";
  }
  COMLAT_UNREACHABLE("bad worklist policy");
}

bool comlat::parseWorklistPolicy(const std::string &Name,
                                 WorklistPolicy &Out) {
  if (Name == "chunked" || Name == "stealing" || Name == "chunked-stealing") {
    Out = WorklistPolicy::ChunkedStealing;
    return true;
  }
  if (Name == "fifo" || Name == "global" || Name == "global-fifo") {
    Out = WorklistPolicy::GlobalFifo;
    return true;
  }
  return false;
}

WorkScheduler::~WorkScheduler() = default;

//===----------------------------------------------------------------------===//
// ChunkedWorklist
//===----------------------------------------------------------------------===//

/// One worker's queues. The fill chunk (Fill) and drain chunk (Drain) are
/// touched only by the owning worker and need no lock; full chunks sit on
/// Shelf behind a per-worker mutex that is uncontended except during
/// handoffs and steals. Cache-line alignment keeps workers from
/// false-sharing each other's hot fields.
struct alignas(64) ChunkedWorklist::PerWorker {
  /// Owner-only chunk being filled by push(). Spilled to Shelf when full.
  std::vector<int64_t> Fill;
  /// Owner-only chunk being drained front-to-back (FIFO); DrainHead is
  /// the next unread index.
  std::vector<int64_t> Drain;
  size_t DrainHead = 0;

  mutable std::mutex M;
  /// Full chunks, oldest at the front. The owner refills from the front
  /// (oldest first, keeping overall FIFO order); thieves take from the
  /// back, so the two ends only meet when one chunk remains.
  std::deque<std::vector<int64_t>> Shelf;

  /// Takes the next item from the drain chunk; the caller has ensured it
  /// is non-empty.
  int64_t drainNext(std::atomic<size_t> &Pending) {
    assert(DrainHead < Drain.size() && "drain chunk unexpectedly empty");
    const int64_t Item = Drain[DrainHead++];
    if (DrainHead == Drain.size()) {
      Drain.clear();
      DrainHead = 0;
    }
    Pending.fetch_sub(1, std::memory_order_acq_rel);
    return Item;
  }
};

ChunkedWorklist::ChunkedWorklist(unsigned NumWorkers, unsigned ChunkSize)
    : ChunkCapacity(ChunkSize) {
  assert(NumWorkers > 0 && "scheduler needs at least one worker");
  assert(ChunkSize > 0 && "chunks must hold at least one item");
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I) {
    Workers.push_back(std::make_unique<PerWorker>());
    Workers.back()->Fill.reserve(ChunkSize);
  }
}

ChunkedWorklist::~ChunkedWorklist() = default;

void ChunkedWorklist::push(unsigned Worker, int64_t Item) {
  assert(Worker < Workers.size() && "worker index out of range");
  PerWorker &P = *Workers[Worker];
  if (P.Fill.size() == ChunkCapacity) {
    std::vector<int64_t> Full = std::move(P.Fill);
    P.Fill = std::vector<int64_t>();
    P.Fill.reserve(ChunkCapacity);
    std::lock_guard<std::mutex> Guard(P.M);
    P.Shelf.push_back(std::move(Full));
  }
  P.Fill.push_back(Item);
  Pending.fetch_add(1, std::memory_order_acq_rel);
}

std::optional<int64_t> ChunkedWorklist::tryPop(unsigned Worker) {
  assert(Worker < Workers.size() && "worker index out of range");
  PerWorker &P = *Workers[Worker];

  // Fast path: the private drain chunk, front to back.
  if (P.DrainHead < P.Drain.size())
    return P.drainNext(Pending);

  // Refill from the own shelf, oldest chunk first (FIFO across chunks).
  {
    std::lock_guard<std::mutex> Guard(P.M);
    if (!P.Shelf.empty()) {
      P.Drain = std::move(P.Shelf.front());
      P.Shelf.pop_front();
    }
  }
  if (!P.Drain.empty())
    return P.drainNext(Pending);

  // The fill chunk is all that's left locally: drain it in push order.
  // This keeps a re-pushed retry item behind everything queued before it.
  if (!P.Fill.empty()) {
    P.Drain = std::move(P.Fill);
    P.Fill = std::vector<int64_t>();
    P.Fill.reserve(ChunkCapacity);
    return P.drainNext(Pending);
  }

  // Steal a whole chunk from a victim's shelf (the back — the owner works
  // the front, so the ends only collide when one chunk remains), scanning
  // victims round-robin from our right-hand neighbor.
  const unsigned N = numWorkers();
  for (unsigned Offset = 1; Offset != N; ++Offset) {
    PerWorker &Victim = *Workers[(Worker + Offset) % N];
    std::lock_guard<std::mutex> Guard(Victim.M);
    if (Victim.Shelf.empty())
      continue;
    P.Drain = std::move(Victim.Shelf.back());
    Victim.Shelf.pop_back();
    ExecMetrics::global().Steals->add();
    COMLAT_TRACE(obs::EventKind::ItemSteal, 0,
                 static_cast<int64_t>((Worker + Offset) % N), 0, 0);
    break;
  }
  if (!P.Drain.empty())
    return P.drainNext(Pending);
  return std::nullopt;
}

size_t ChunkedWorklist::shelvedChunks(unsigned Worker) const {
  assert(Worker < Workers.size() && "worker index out of range");
  const PerWorker &P = *Workers[Worker];
  std::lock_guard<std::mutex> Guard(P.M);
  return P.Shelf.size();
}

//===----------------------------------------------------------------------===//
// Policy factory
//===----------------------------------------------------------------------===//

namespace {

/// The seed scheduler: every worker shares one mutex-guarded FIFO. Wraps
/// the caller's Worklist in place so a one-thread run reproduces the seed
/// executor's scheduling decisions exactly.
class GlobalFifoScheduler : public WorkScheduler {
public:
  explicit GlobalFifoScheduler(Worklist &WL) : WL(WL) {}

  void push(unsigned, int64_t Item) override { WL.push(Item); }

  std::optional<int64_t> tryPop(unsigned) override { return WL.tryPop(); }

  bool empty() const override { return WL.empty(); }

private:
  Worklist &WL;
};

} // namespace

std::unique_ptr<WorkScheduler>
comlat::makeWorkScheduler(WorklistPolicy Policy, Worklist &Seed,
                          unsigned NumWorkers, unsigned ChunkSize) {
  switch (Policy) {
  case WorklistPolicy::GlobalFifo:
    return std::make_unique<GlobalFifoScheduler>(Seed);
  case WorklistPolicy::ChunkedStealing: {
    auto Sched = std::make_unique<ChunkedWorklist>(NumWorkers, ChunkSize);
    // Spread the seed round-robin so every worker starts with work and
    // the first steals happen only once the initial distribution skews.
    unsigned W = 0;
    while (const std::optional<int64_t> Item = Seed.tryPop()) {
      Sched->push(W, *Item);
      W = (W + 1) % NumWorkers;
    }
    return Sched;
  }
  }
  COMLAT_UNREACHABLE("bad worklist policy");
}
