//===- runtime/Privatizer.h - Privatized commutative updates ----*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Privatized commutative-update coalescing (CommTM-style; PAPERS.md:
/// Balaji/Tirumala/Lucia, "Flexible Support for Fast Parallel Commutative
/// Updates"). When the spec classification (core/CommClass.h) proves a
/// method an unconditional self-commuter that also unconditionally
/// commutes with every other privatized method, its invocations need no
/// conflict detection at all: the runtime *diverts* them — no gate stripe,
/// no abstract lock — into transaction-held deltas that publish to a
/// per-worker replica at commit and merge into the master structure only
/// when someone executes a non-commuting method (or at a quiesced
/// boundary).
///
/// A PrivDomain tracks one structure's privatization censuses in a single
/// packed atomic word: the low half counts live transactions holding
/// unpublished privatized deltas ("priv"), the high half counts live
/// transactions that executed a conflicting method ("blockers"). The two
/// populations exclude each other — entering either side CASes on the
/// word and requires the other side to be zero — which yields the protocol:
///
///  * Divert (privatizable method): join the priv census (or fall back to
///    the ordinary detector path while blockers live) and append the delta
///    to the transaction. Nothing is shared: an abort just drops the
///    records, no undo anywhere.
///  * Publish (commit release): move the transaction's coalesced deltas
///    into the committing worker's replica, then leave the census. Commit
///    sequence numbers are assigned before detectors release (see
///    runtime/Submitter.h), so every published delta belongs to a
///    serialized-earlier transaction than anything that later merges.
///  * Merge (first blocker entry): once the priv census is empty — and it
///    must be, or the blocker vetoes and retries — drain every worker
///    replica and apply the deltas to the master structure, under one
///    merge mutex held across drain *and* apply so concurrent blockers
///    observe a complete master.
///  * Self-upgrade: a transaction holding private deltas that then calls a
///    conflicting method upgrades priv->blocker (sound only when it is the
///    sole priv member; otherwise veto), merges, and *flushes* its own
///    pending deltas through the owner's normal admission path so they
///    regain undo logging and conflict checks for the rest of the
///    transaction's life.
///
/// Serializability: merged deltas belong to committed transactions whose
/// commit seq precedes every live blocker's; within an epoch privatized
/// updates pairwise always-commute (the classification's closure
/// condition), so replaying committed transactions in commit-seq order
/// reproduces the master state — the SerialChecker / OracleReplica
/// arguments carry over unchanged. The owner (a forward gatekeeper, or a
/// boosted wrapper over abstract locks) supplies the apply callback and
/// must serialize it against its own executions.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_PRIVATIZER_H
#define COMLAT_RUNTIME_PRIVATIZER_H

#include "runtime/Transaction.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace comlat {

namespace obs {
class Counter;
} // namespace obs

/// Privatization census + replica pool for one structure. Owned by the
/// structure's detector (e.g. Gatekeeper) and driven from its hot path.
class PrivDomain {
public:
  /// Applies one merged (committed) delta to the master structure. Called
  /// with the merge mutex held; the owner must serialize the application
  /// against its own method executions (the gatekeeper takes the owning
  /// stripe's mutex).
  using ApplyFn = std::function<void(int64_t Slot, int64_t Amount)>;

  /// \p Label names the owning detector in metrics.
  PrivDomain(ApplyFn Apply, std::string Label);
  ~PrivDomain();

  PrivDomain(const PrivDomain &) = delete;
  PrivDomain &operator=(const PrivDomain &) = delete;

  /// Divert attempt for one privatizable update. True: the delta was
  /// captured privately (the transaction joined or already belonged to the
  /// priv census) and the invocation is complete. False: blockers are
  /// live, the caller must run the invocation through its normal
  /// admission path instead (which is sound — the master is fully merged
  /// while blockers live).
  bool tryDivert(Transaction &Tx, int64_t Slot, int64_t Amount);

  /// Outcome of enterBlocker.
  enum class BlockOutcome : uint8_t {
    Entered,        ///< Joined the blocker census; outstanding deltas merged.
    AlreadyBlocker, ///< The transaction was already a blocker.
    NeedsFlush,     ///< Self-upgraded priv->blocker and merged; the caller
                    ///< must flush the transaction's pending deltas through
                    ///< its normal admission path before proceeding.
    Veto            ///< Other transactions hold unpublished privatized
                    ///< deltas; the caller must fail the transaction.
  };

  /// Ensures \p Tx may execute a method that does not always-commute with
  /// the privatized set: joins the blocker census and merges outstanding
  /// committed deltas into the master.
  BlockOutcome enterBlocker(Transaction &Tx);

  /// Release hook, called exactly once per touched transaction from the
  /// owner's release path: publishes pending deltas (commit) or drops them
  /// (abort), and leaves whichever census the transaction joined.
  void release(Transaction &Tx, bool Committed);

  /// Drains and applies all committed replica deltas. Quiesced callers
  /// only (state dumps, value() reads outside transactions).
  void mergeQuiesced() { merge(); }

  /// Observability: the owner bumps this when it flushes pending deltas
  /// through its admission path on self-upgrade.
  void noteFlush(uint64_t N);

  uint64_t numDiverted() const { return Diverted.load(); }
  uint64_t numMerges() const { return MergeCount.load(); }
  uint64_t numFallbacks() const { return Fallbacks.load(); }
  uint64_t numVetoes() const { return Vetoes.load(); }

  /// Live census snapshot (tests): {priv, blockers}.
  std::pair<uint32_t, uint32_t> census() const;

private:
  struct Replica;

  /// Packed census: low 32 bits the priv population, high 32 the blocker
  /// population. All protocol transitions CAS this word, which is what
  /// makes the two populations mutually exclusive.
  static constexpr uint64_t PrivOne = 1;
  static constexpr uint64_t BlockOne = uint64_t(1) << 32;
  static uint32_t livePriv(uint64_t W) { return static_cast<uint32_t>(W); }
  static uint32_t liveBlockers(uint64_t W) {
    return static_cast<uint32_t>(W >> 32);
  }

  Replica &localReplica();
  void publish(Transaction &Tx);
  void merge();

  std::atomic<uint64_t> Census{0};

  /// Serializes merges and, crucially, covers delta application: a second
  /// blocker entering mid-merge waits here until the master is complete.
  std::mutex MergeMu;
  /// Drained deltas awaiting application; guarded by MergeMu, capacity
  /// kept across merges.
  std::vector<std::pair<int64_t, int64_t>> MergeScratch;

  /// Worker replicas, created on a worker's first publish and reused for
  /// the domain's lifetime. RepMu guards the vector; each replica has its
  /// own mutex for the publish/merge handoff.
  std::mutex RepMu;
  std::vector<std::unique_ptr<Replica>> Replicas;

  ApplyFn Apply;
  std::string Label;
  /// Process-unique id for the thread-local replica cache (addresses can
  /// be reused across domain lifetimes; serials cannot).
  uint64_t Serial;

  std::atomic<uint64_t> Diverted{0};
  std::atomic<uint64_t> MergeCount{0};
  std::atomic<uint64_t> Fallbacks{0};
  std::atomic<uint64_t> Vetoes{0};

  obs::Counter *OpsMetric = nullptr;
  obs::Counter *MergesMetric = nullptr;
  obs::Counter *MergedDeltasMetric = nullptr;
  obs::Counter *FallbacksMetric = nullptr;
  obs::Counter *VetoesMetric = nullptr;
  obs::Counter *FlushesMetric = nullptr;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_PRIVATIZER_H
