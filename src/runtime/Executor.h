//===- runtime/Executor.h - Speculative parallel executor -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimistic parallel executor in the style of the Galois system the
/// paper evaluates on: worker threads repeatedly pop a work item, run the
/// loop operator as a transaction over boosted data structures, and either
/// commit or — when a conflict detector objected — abort (undoing every
/// effect) and retry the item later with randomized exponential backoff.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_EXECUTOR_H
#define COMLAT_RUNTIME_EXECUTOR_H

#include "runtime/Transaction.h"
#include "runtime/Worklist.h"

#include <functional>

namespace comlat {

/// Outcome statistics of one speculative run.
struct ExecStats {
  uint64_t Committed = 0;
  uint64_t Aborted = 0;
  double Seconds = 0;

  /// Fraction of iteration executions that aborted (the paper's "Abort
  /// Ratio %", Table 2, is this times 100).
  double abortRatio() const {
    const uint64_t Total = Committed + Aborted;
    return Total == 0 ? 0.0 : static_cast<double>(Aborted) / Total;
  }
};

/// Runs speculative worklist loops.
class Executor {
public:
  /// The loop operator: one iteration body. It must check Tx.failed()
  /// after every boosted call and return promptly when set; new work goes
  /// through the TxWorklist so it materializes only on commit.
  using OperatorFn =
      std::function<void(Transaction &Tx, int64_t Item, TxWorklist &WL)>;

  /// \p NumThreads workers; \p RecordHistories enables per-transaction
  /// invocation recording (for the serializability tests).
  explicit Executor(unsigned NumThreads, bool RecordHistories = false)
      : NumThreads(NumThreads), RecordHistories(RecordHistories) {}

  /// Drains \p WL, applying \p Op to every item until no work remains.
  ExecStats run(Worklist &WL, const OperatorFn &Op);

private:
  unsigned NumThreads;
  bool RecordHistories;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_EXECUTOR_H
