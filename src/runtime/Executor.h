//===- runtime/Executor.h - Speculative parallel executor -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimistic parallel executor in the style of the Galois system the
/// paper evaluates on: worker threads repeatedly pop a work item, run the
/// loop operator as a transaction over boosted data structures, and either
/// commit or — when a conflict detector objected — abort (undoing every
/// effect) and retry the item later with randomized exponential backoff.
///
/// The execution engine is a persistent thread pool over a pluggable
/// worklist scheduler (WorklistPolicy.h): per-worker chunked stealing
/// deques by default, the seed's global FIFO for reproducibility runs.
/// Worker quiescence is decided by a termination-detection barrier that
/// preserves the boosted-worklist semantics: new work materializes only at
/// commit time, aborted items are re-pushed before the worker gives up its
/// in-flight claim, so "no queued work and nothing in flight" is a stable
/// property and never fires early.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_EXECUTOR_H
#define COMLAT_RUNTIME_EXECUTOR_H

#include "runtime/ExecStats.h"
#include "runtime/Transaction.h"
#include "runtime/Worklist.h"
#include "runtime/WorklistPolicy.h"
#include "support/ThreadPool.h"

#include <functional>

namespace comlat {

/// How a worker waits out the conflict window after an abort.
enum class BackoffKind {
  /// Retry immediately (highest contention, useful for stress tests).
  None,
  /// Yield once between attempts.
  Yield,
  /// Randomized exponential backoff in microseconds, doubling per
  /// consecutive abort up to 2^MaxExponent (the seed behavior).
  Exponential,
};

/// Post-abort backoff configuration.
struct BackoffPolicy {
  BackoffKind Kind = BackoffKind::Exponential;
  /// Cap for the exponential delay: the J-th consecutive abort sleeps a
  /// uniform random number of microseconds below 2^min(J, MaxExponent).
  unsigned MaxExponent = 10;
};

/// Everything that shapes one executor: thread count, recording, backoff
/// and scheduling policy. Construct with designated initializers, e.g.
/// `Executor Exec({.NumThreads = 8});`.
struct ExecutorConfig {
  /// Number of worker threads (>= 1).
  unsigned NumThreads = 1;
  /// Enables per-transaction invocation recording (serializability tests).
  bool RecordHistories = false;
  /// Post-abort wait strategy.
  BackoffPolicy Backoff{};
  /// Scheduler backing the run (see WorklistPolicy.h).
  WorklistPolicy Worklist = WorklistPolicy::ChunkedStealing;
  /// Items per stealing chunk (ChunkedStealing only).
  unsigned ChunkSize = ChunkedWorklist::DefaultChunkSize;
  /// Seeds the per-worker backoff RNG streams; the same seed reproduces
  /// the same backoff decisions (given the same schedule).
  uint64_t Seed = 0;
};

class Rng;

/// Waits out the post-abort conflict window per \p Policy:
/// \p ConsecutiveAborts consecutive aborts so far, randomness from
/// \p BackoffRng. Shared by the worklist Executor and the batch Submitter.
void applyBackoff(const BackoffPolicy &Policy, unsigned ConsecutiveAborts,
                  Rng &BackoffRng);

/// Runs speculative worklist loops.
class Executor {
public:
  /// The loop operator: one iteration body. It must check Tx.failed()
  /// after every boosted call and return promptly when set; new work goes
  /// through the TxWorklist so it materializes only on commit.
  using OperatorFn =
      std::function<void(Transaction &Tx, int64_t Item, TxWorklist &WL)>;

  /// Builds the engine for \p Config; the worker pool persists across
  /// run() calls.
  explicit Executor(const ExecutorConfig &Config);

  /// Drains \p WL, applying \p Op to every item until no work remains.
  /// Callable repeatedly; each run reuses the pool.
  ExecStats run(Worklist &WL, const OperatorFn &Op);

  const ExecutorConfig &config() const { return Config; }

private:
  ExecutorConfig Config;
  ThreadPool Pool;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_EXECUTOR_H
