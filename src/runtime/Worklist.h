//===- runtime/Worklist.h - Shared worklist for speculative loops -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared worklist driving speculative loops. Following the paper's
/// methodology ("we used boosted objects wherever possible, for example the
/// worklist", §5), worklist pushes commute with everything and are made
/// transactional by deferring them to commit time (TxWorklist); pops are
/// performed by the executor before the transaction starts and re-pushed on
/// abort.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_WORKLIST_H
#define COMLAT_RUNTIME_WORKLIST_H

#include "runtime/Transaction.h"

#include <deque>
#include <mutex>
#include <optional>

namespace comlat {

/// An unordered thread-safe bag of work items.
class Worklist {
public:
  Worklist() = default;
  explicit Worklist(std::vector<int64_t> Initial);

  void push(int64_t Item);
  std::optional<int64_t> tryPop();
  size_t size() const;
  bool empty() const { return size() == 0; }

private:
  mutable std::mutex M;
  std::deque<int64_t> Items;
};

/// Transactional view of a worklist: pushes are buffered as commit actions
/// so an aborted iteration leaves no stray work behind.
class TxWorklist {
public:
  TxWorklist(Worklist &WL, Transaction &Tx) : WL(WL), Tx(Tx) {}

  /// Pushes \p Item when (and only when) the transaction commits.
  void push(int64_t Item) {
    Worklist *Target = &WL;
    Tx.addCommitAction([Target, Item] { Target->push(Item); });
  }

private:
  Worklist &WL;
  Transaction &Tx;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_WORKLIST_H
