//===- runtime/Worklist.h - Shared worklist for speculative loops -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared worklist driving speculative loops. Following the paper's
/// methodology ("we used boosted objects wherever possible, for example the
/// worklist", §5), worklist pushes commute with everything and are made
/// transactional by deferring them to commit time (TxWorklist); pops are
/// performed by the executor before the transaction starts and re-pushed on
/// abort.
///
/// Pushes are routed through the WorkSink interface so the same deferred
/// commit-action mechanism feeds either the plain global FIFO below or the
/// executor's per-worker stealing deques (WorklistPolicy.h) without the
/// operator code knowing which is active.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_WORKLIST_H
#define COMLAT_RUNTIME_WORKLIST_H

#include "runtime/Transaction.h"

#include <deque>
#include <mutex>
#include <optional>

namespace comlat {

/// Anything that accepts newly created work items. Implemented by the
/// global Worklist and by the executor's per-worker scheduler views.
class WorkSink {
public:
  virtual ~WorkSink();

  /// Makes \p Item available for execution. Must be safe to call from the
  /// worker thread that owns the sink view while other workers run.
  virtual void push(int64_t Item) = 0;
};

/// An unordered thread-safe bag of work items (single global FIFO). Used
/// to seed runs, as the working queue of the GlobalFifo policy, and by the
/// round-model executor.
class Worklist : public WorkSink {
public:
  Worklist() = default;
  explicit Worklist(std::vector<int64_t> Initial);

  void push(int64_t Item) override;
  std::optional<int64_t> tryPop();
  size_t size() const;
  bool empty() const { return size() == 0; }

private:
  mutable std::mutex M;
  std::deque<int64_t> Items;
};

/// Transactional view of a work sink: pushes are buffered as commit
/// actions so an aborted iteration leaves no stray work behind.
class TxWorklist {
public:
  TxWorklist(WorkSink &Sink, Transaction &Tx) : Sink(Sink), Tx(Tx) {}

  /// Pushes \p Item when (and only when) the transaction commits.
  void push(int64_t Item) {
    WorkSink *Target = &Sink;
    Tx.addCommitAction([Target, Item] { Target->push(Item); });
  }

private:
  WorkSink &Sink;
  Transaction &Tx;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_WORKLIST_H
