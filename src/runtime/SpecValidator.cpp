//===- runtime/SpecValidator.cpp - Testing commutativity conditions ---------===//

#include "runtime/SpecValidator.h"
#include "core/CondIR.h"
#include "core/Eval.h"

#include <map>
#include <utility>

using namespace comlat;

std::string ValidationIssue::str(const DataTypeSig &Sig) const {
  return "condition claimed " + Inv1.str(Sig) + " commutes with " +
         Inv2.str(Sig) + ", but " + Detail;
}

namespace {

/// Resolves state-function applications against two frozen structure
/// copies: s1 (before the first invocation) and s2 (before the second).
class FrozenStateResolver : public ApplyResolver {
public:
  FrozenStateResolver(GateTarget &S1, GateTarget &S2) : S1(S1), S2(S2) {}

  Value resolveApply(const Term &Apply, ValueSpan Args) override {
    switch (Apply.State) {
    case StateRef::S1:
      return S1.gateEvalStateFn(Apply.Fn, Args);
    case StateRef::S2:
    case StateRef::None: // Pure: either copy works.
      return S2.gateEvalStateFn(Apply.Fn, Args);
    }
    COMLAT_UNREACHABLE("bad state ref");
  }

private:
  GateTarget &S1;
  GateTarget &S2;
};

/// Executes one invocation, discarding undo actions.
Value executePlain(GateTarget &Target, const Invocation &Inv) {
  GateActionList Discard;
  return Target.gateExecute(Inv.Method, Inv.Args, Discard);
}

} // namespace

std::optional<ValidationIssue>
comlat::validateSpec(const CommSpec &Spec, const ValidationHarness &Harness,
                     const ValidationConfig &Config) {
  const DataTypeSig &Sig = Spec.sig();
  Rng R(Config.Seed);

  // Differential mode: compiled pair conditions, built lazily (one program
  // per ordered pair across all trials).
  std::map<std::pair<MethodId, MethodId>, CondProgram> Compiled;

  for (unsigned Trial = 0; Trial != Config.Trials; ++Trial) {
    // Random committed prefix.
    std::vector<Invocation> Prefix;
    const unsigned PrefixLen =
        static_cast<unsigned>(R.nextBelow(Config.PrefixOps + 1));
    for (unsigned I = 0; I != PrefixLen; ++I) {
      const MethodId M = static_cast<MethodId>(R.nextBelow(Sig.numMethods()));
      Prefix.emplace_back(M, Harness.RandomArgs(R, M));
    }
    // The tested pair.
    const MethodId M1 = static_cast<MethodId>(R.nextBelow(Sig.numMethods()));
    const MethodId M2 = static_cast<MethodId>(R.nextBelow(Sig.numMethods()));
    Invocation Inv1(M1, Harness.RandomArgs(R, M1));
    Invocation Inv2(M2, Harness.RandomArgs(R, M2));

    // Four copies of the structure: order A (m1 then m2), order B (m2
    // then m1), and the two frozen states the condition may inspect.
    const std::unique_ptr<GateTarget> OrderA = Harness.MakeTarget();
    const std::unique_ptr<GateTarget> OrderB = Harness.MakeTarget();
    const std::unique_ptr<GateTarget> AtS1 = Harness.MakeTarget();
    const std::unique_ptr<GateTarget> AtS2 = Harness.MakeTarget();
    for (const Invocation &P : Prefix) {
      executePlain(*OrderA, P);
      executePlain(*OrderB, P);
      executePlain(*AtS1, P);
      executePlain(*AtS2, P);
    }

    // Order A, recording returns; AtS2 additionally replays m1 so it
    // freezes the state the second invocation runs in.
    Inv1.Ret = executePlain(*OrderA, Inv1);
    executePlain(*AtS2, Inv1);
    Inv2.Ret = executePlain(*OrderA, Inv2);

    // Evaluate the condition on order A's observations.
    FrozenStateResolver Resolver(*AtS1, *AtS2);
    EvalContext Ctx{&Inv1, &Inv2, &Resolver};
    const FormulaPtr &Cond = Spec.get(M1, M2);
    const bool Interpreted = evalFormula(Cond, Ctx);

    if (Config.Differential) {
      auto It = Compiled.find({M1, M2});
      if (It == Compiled.end()) {
        CondCompiler C; // No external bindings: applies go to the resolver.
        It = Compiled.emplace(std::make_pair(M1, M2), C.compileFormula(Cond))
                 .first;
      }
      CondProgram::Inputs In;
      In.Inv1 = CondProgram::Frame(Inv1);
      In.Inv2 = CondProgram::Frame(Inv2);
      In.Resolver = &Resolver;
      const bool CompiledResult = It->second.evalBool(In);
      if (CompiledResult != Interpreted) {
        ValidationIssue Issue;
        Issue.Inv1 = Inv1;
        Issue.Inv2 = Inv2;
        Issue.Detail = std::string("compiled condition evaluates to ") +
                       (CompiledResult ? "true" : "false") +
                       " but the interpreter says " +
                       (Interpreted ? "true" : "false") +
                       " (differential mode)";
        return Issue;
      }
    }

    if (!Interpreted)
      continue; // Condition rejects the pair; nothing to check.

    // The condition claims commutativity: order B must agree.
    const Value R2B = executePlain(*OrderB, Inv2);
    const Value R1B = executePlain(*OrderB, Inv1);
    ValidationIssue Issue;
    Issue.Inv1 = Inv1;
    Issue.Inv2 = Inv2;
    if (R1B != Inv1.Ret) {
      Issue.Detail = "swapped order returns " + R1B.str() + " from " +
                     Sig.method(M1).Name + " instead of " + Inv1.Ret.str();
      return Issue;
    }
    if (R2B != Inv2.Ret) {
      Issue.Detail = "swapped order returns " + R2B.str() + " from " +
                     Sig.method(M2).Name + " instead of " + Inv2.Ret.str();
      return Issue;
    }
    const std::string SigA = OrderA->gateSignature();
    const std::string SigB = OrderB->gateSignature();
    if (SigA != SigB) {
      Issue.Detail = "final abstract states differ: [" + SigA + "] vs [" +
                     SigB + "]";
      return Issue;
    }
  }
  return std::nullopt;
}
