//===- runtime/Interleaver.cpp - Deterministic concurrency testing ---------===//

#include "runtime/Interleaver.h"

using namespace comlat;

InterleaveOutcome comlat::runInterleaved(const std::vector<TxScript> &Scripts,
                                         const std::vector<unsigned> &Schedule,
                                         bool RecordHistories) {
  InterleaveOutcome Outcome;
  const size_t N = Scripts.size();
  Outcome.Committed.assign(N, false);
  std::vector<size_t> NextStep(N, 0);
  std::vector<bool> Done(N, false);
  for (size_t I = 0; I != N; ++I) {
    Outcome.Txs.push_back(std::make_unique<Transaction>(I + 1));
    Outcome.Txs.back()->setRecording(RecordHistories);
  }

#ifndef NDEBUG
  {
    std::vector<size_t> Counts(N, 0);
    for (const unsigned S : Schedule)
      ++Counts.at(S);
    for (size_t I = 0; I != N; ++I)
      assert(Counts[I] == Scripts[I].Steps.size() &&
             "schedule slot count must match script length");
  }
#endif

  for (const unsigned S : Schedule) {
    if (Done[S])
      continue; // Aborted earlier; skip its remaining slots.
    Transaction &Tx = *Outcome.Txs[S];
    Scripts[S].Steps[NextStep[S]](Tx);
    ++NextStep[S];
    if (Tx.failed()) {
      Tx.abort();
      Done[S] = true;
      continue;
    }
    if (NextStep[S] == Scripts[S].Steps.size()) {
      Tx.commit();
      Outcome.Committed[S] = true;
      Done[S] = true;
    }
  }
  // All scripts must have drained (schedule covers every step).
  for (size_t I = 0; I != N; ++I)
    assert(Done[I] && "script did not finish under the schedule");
  return Outcome;
}

static void enumerateRec(std::vector<unsigned> &Remaining,
                         std::vector<unsigned> &Prefix,
                         std::vector<std::vector<unsigned>> &Out,
                         size_t Limit) {
  if (Limit != 0 && Out.size() >= Limit)
    return;
  bool AnyLeft = false;
  for (unsigned I = 0; I != Remaining.size(); ++I) {
    if (Remaining[I] == 0)
      continue;
    AnyLeft = true;
    --Remaining[I];
    Prefix.push_back(I);
    enumerateRec(Remaining, Prefix, Out, Limit);
    Prefix.pop_back();
    ++Remaining[I];
  }
  if (!AnyLeft)
    Out.push_back(Prefix);
}

std::vector<std::vector<unsigned>>
comlat::enumerateSchedules(const std::vector<unsigned> &Counts, size_t Limit) {
  std::vector<unsigned> Remaining = Counts;
  std::vector<unsigned> Prefix;
  std::vector<std::vector<unsigned>> Out;
  enumerateRec(Remaining, Prefix, Out, Limit);
  return Out;
}
