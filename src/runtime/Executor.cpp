//===- runtime/Executor.cpp - Speculative parallel executor ----------------===//

#include "runtime/Executor.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <atomic>
#include <condition_variable>
#include <thread>

using namespace comlat;

namespace {

/// Termination detection for the worker pool. A worker claims in-flight
/// status before popping, re-pushes aborted items and runs commit-time
/// pushes before dropping the claim — so "in-flight count zero and
/// scheduler empty" can only be observed once no work exists anywhere,
/// and since new work only originates from in-flight iterations, the
/// condition is stable once true. Idle workers park on a condition
/// variable instead of spinning; pushes bump an epoch and wake them. The
/// timed wait is a backstop against the (benign) race between a wake-up
/// check and parking, so lost notifications cost microseconds, never a
/// hang.
class TerminationBarrier {
public:
  /// Claims in-flight status; must precede the pop attempt.
  void enter() { InFlight.fetch_add(1, std::memory_order_acq_rel); }

  /// Drops the claim after an iteration finished (commit or abort path).
  void leave() { InFlight.fetch_sub(1, std::memory_order_acq_rel); }

  /// Drops the claim after a failed pop. Returns true when this worker
  /// proved quiescence (it was the last in-flight claim and no work is
  /// queued); broadcasts completion to parked workers.
  bool leaveIdle(const WorkScheduler &Sched) {
    if (InFlight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        Sched.empty()) {
      finish();
      return true;
    }
    return false;
  }

  bool done() const { return Done.load(std::memory_order_acquire); }

  /// Signals that new work became visible; wakes parked workers.
  void onWork() {
    Epoch.fetch_add(1, std::memory_order_release);
    if (Sleepers.load(std::memory_order_acquire) > 0)
      CV.notify_all();
  }

  /// Parks until new work may be available or the run completed.
  void idleWait() {
    const uint64_t E = Epoch.load(std::memory_order_acquire);
    // Brief spin first: in steady state a stolen chunk or commit-time
    // push lands within a few hundred cycles.
    for (int I = 0; I != 32; ++I) {
      if (done() || Epoch.load(std::memory_order_acquire) != E)
        return;
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> Guard(M);
    Sleepers.fetch_add(1, std::memory_order_relaxed);
    CV.wait_for(Guard, std::chrono::microseconds(200), [this, E] {
      return done() || Epoch.load(std::memory_order_acquire) != E;
    });
    Sleepers.fetch_sub(1, std::memory_order_relaxed);
  }

private:
  void finish() {
    Done.store(true, std::memory_order_release);
    // Taking the mutex orders the store against parked waiters'
    // predicate checks; then wake everyone for the final exit.
    std::lock_guard<std::mutex> Guard(M);
    CV.notify_all();
  }

  std::atomic<int64_t> InFlight{0};
  std::atomic<uint64_t> Epoch{0};
  std::atomic<unsigned> Sleepers{0};
  std::atomic<bool> Done{false};
  std::mutex M;
  std::condition_variable CV;
};

/// Routes one worker's pushes (commit actions, abort re-pushes) to its
/// scheduler lane and wakes parked peers.
class SchedulerSink : public WorkSink {
public:
  SchedulerSink(WorkScheduler &Sched, unsigned Worker,
                TerminationBarrier &Barrier)
      : Sched(Sched), Worker(Worker), Barrier(Barrier) {}

  void push(int64_t Item) override {
    Sched.push(Worker, Item);
    Barrier.onWork();
  }

private:
  WorkScheduler &Sched;
  unsigned Worker;
  TerminationBarrier &Barrier;
};

} // namespace

void comlat::applyBackoff(const BackoffPolicy &Policy,
                          unsigned ConsecutiveAborts, Rng &BackoffRng) {
  switch (Policy.Kind) {
  case BackoffKind::None:
    return;
  case BackoffKind::Yield:
    std::this_thread::yield();
    return;
  case BackoffKind::Exponential: {
    const unsigned Cap = std::min(ConsecutiveAborts, Policy.MaxExponent);
    const uint64_t DelayUs = BackoffRng.nextBelow(1ull << Cap);
    if (DelayUs > 0) {
      ExecMetrics::global().BackoffMicros->add(DelayUs);
      COMLAT_TRACE(obs::EventKind::Backoff, 0,
                   static_cast<int64_t>(DelayUs), 0, 0);
      std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
    } else {
      std::this_thread::yield();
    }
    return;
  }
  }
}

Executor::Executor(const ExecutorConfig &Config)
    : Config(Config), Pool(Config.NumThreads) {
  assert(Config.NumThreads > 0 && "need at least one worker");
}

ExecStats Executor::run(Worklist &WL, const OperatorFn &Op) {
  const unsigned NumThreads = Config.NumThreads;
  const std::unique_ptr<WorkScheduler> Sched =
      makeWorkScheduler(Config.Worklist, WL, NumThreads, Config.ChunkSize);
  TerminationBarrier Barrier;
  std::atomic<uint64_t> NextTxId{1};
  ExecMetrics &Metrics = ExecMetrics::global();
  const ExecStats Before = Metrics.snapshot();

  auto WorkLoop = [&](unsigned Worker) {
    // Seeded once per worker, decorrelated across workers by a
    // golden-ratio stride (Rng re-mixes the seed through SplitMix64, so
    // even adjacent strides yield independent streams). Deterministic for
    // a fixed Config.Seed and worker index.
    Rng BackoffRng(Config.Seed ^ (0x9E3779B97F4A7C15ull * (Worker + 1)));
    unsigned ConsecutiveAborts = 0;
    SchedulerSink Sink(*Sched, Worker, Barrier);
    // One pooled transaction per worker: reset() between items keeps the
    // inline buffers, grown spill capacity and overflow arena, so a warm
    // iteration allocates nothing on the transaction side.
    Transaction Tx(0);
    for (;;) {
      // Claim in-flight status before popping so no other thread can see
      // "queue empty and nobody running" while we hold an item.
      Barrier.enter();
      const std::optional<int64_t> Item = Sched->tryPop(Worker);
      if (!Item) {
        Metrics.EmptyPops->add();
        if (Barrier.leaveIdle(*Sched) || Barrier.done())
          return;
        Barrier.idleWait();
        continue;
      }
      Timer TxTimer;
      Tx.reset(NextTxId.fetch_add(1, std::memory_order_relaxed));
      COMLAT_TRACE(obs::EventKind::ItemPop, Tx.id(), *Item, 0, 0);
      Tx.setRecording(Config.RecordHistories);
      TxWorklist TxWL(Sink, Tx);
      Op(Tx, *Item, TxWL);
      if (Tx.failed()) {
        const AbortCause Cause = Tx.abortCause();
        // Attribution captured before abort() clears transaction state:
        // the detector that failed the transaction stamped its interned
        // label and packed conflict-pair detail.
        const uint32_t Detail = Tx.abortDetail();
        const uint16_t Label = Tx.abortLabel();
        Tx.abort();
        Metrics.Aborted->add();
        Metrics.AbortsByCause[static_cast<unsigned>(Cause)]->add();
        COMLAT_TRACE(obs::EventKind::Abort, Tx.id(), *Item, Detail, Label);
        Sink.push(*Item); // Before leave(): no lost work.
        Barrier.leave();
        ++ConsecutiveAborts;
        applyBackoff(Config.Backoff, ConsecutiveAborts, BackoffRng);
      } else {
        // Commit actions (including worklist pushes) run inside commit(),
        // before the in-flight claim drops — the termination barrier
        // cannot miss work created here.
        Tx.commit();
        Metrics.Committed->add();
        Metrics.CommitLatencyUs->observe(
            static_cast<uint64_t>(TxTimer.seconds() * 1e6));
        COMLAT_TRACE(obs::EventKind::Commit, Tx.id(), *Item, 0, 0);
        Barrier.leave();
        ConsecutiveAborts = 0;
      }
    }
  };

  Timer T;
  Pool.runOnAll(WorkLoop);

  // Workers are quiescent; the registry totals are stable. The run's own
  // statistics are the before/after snapshot difference.
  ExecStats Out = ExecStats::delta(Before, Metrics.snapshot());
  Out.Seconds = T.seconds();
  return Out;
}
