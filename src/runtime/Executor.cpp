//===- runtime/Executor.cpp - Speculative parallel executor ----------------===//

#include "runtime/Executor.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <atomic>
#include <thread>

using namespace comlat;

ExecStats Executor::run(Worklist &WL, const OperatorFn &Op) {
  assert(NumThreads > 0 && "need at least one worker");
  std::atomic<uint64_t> NextTxId{1};
  std::atomic<int64_t> InFlight{0};
  std::atomic<uint64_t> Committed{0}, Aborted{0};

  auto WorkLoop = [&](unsigned ThreadIndex) {
    Rng BackoffRng(0x9e37 + ThreadIndex);
    unsigned ConsecutiveAborts = 0;
    for (;;) {
      // Claim in-flight status before popping so no other thread can see
      // "queue empty and nobody running" while we hold an item.
      InFlight.fetch_add(1, std::memory_order_acq_rel);
      const std::optional<int64_t> Item = WL.tryPop();
      if (!Item) {
        // Quiescent only when nothing is queued and nothing is running; a
        // running iteration may still push work or re-push its item (it
        // always pushes before dropping its in-flight claim).
        if (InFlight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            WL.empty())
          return;
        std::this_thread::yield();
        continue;
      }
      Transaction Tx(NextTxId.fetch_add(1, std::memory_order_relaxed));
      Tx.setRecording(RecordHistories);
      TxWorklist TxWL(WL, Tx);
      Op(Tx, *Item, TxWL);
      if (Tx.failed()) {
        Tx.abort();
        Aborted.fetch_add(1, std::memory_order_relaxed);
        WL.push(*Item); // Before the InFlight decrement: no lost work.
        InFlight.fetch_sub(1, std::memory_order_acq_rel);
        // Randomized exponential backoff on consecutive aborts.
        ++ConsecutiveAborts;
        const unsigned Cap = std::min(ConsecutiveAborts, 10u);
        const uint64_t DelayUs = BackoffRng.nextBelow(1ull << Cap);
        if (DelayUs > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
        else
          std::this_thread::yield();
      } else {
        Tx.commit();
        Committed.fetch_add(1, std::memory_order_relaxed);
        InFlight.fetch_sub(1, std::memory_order_acq_rel);
        ConsecutiveAborts = 0;
      }
    }
  };

  Timer T;
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back(WorkLoop, I);
  for (std::thread &W : Workers)
    W.join();

  ExecStats Stats;
  Stats.Committed = Committed.load();
  Stats.Aborted = Aborted.load();
  Stats.Seconds = T.seconds();
  return Stats;
}
