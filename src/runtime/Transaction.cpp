//===- runtime/Transaction.cpp - Speculative transactions ------------------===//

#include "runtime/Transaction.h"

#include <algorithm>
#include <atomic>

using namespace comlat;

ConflictDetector::~ConflictDetector() = default;

TxId comlat::allocTxId() {
  static std::atomic<TxId> Next{UINT64_C(1) << 32};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Transaction::~Transaction() {
  assert((Finished || (Touched.empty() && Undos.empty())) &&
         "transaction destroyed without commit or abort");
}

void Transaction::touch(ConflictDetector *Detector) {
  assert(!Finished && "touching a finished transaction");
  if (std::find(Touched.begin(), Touched.end(), Detector) == Touched.end())
    Touched.push_back(Detector);
}

void Transaction::addUndo(Action Undo) {
  assert(!Finished && "registering undo on a finished transaction");
  Undos.push_back(std::move(Undo));
}

void Transaction::addCommitAction(Action Act) {
  assert(!Finished && "registering commit action on a finished transaction");
  CommitActions.push_back(std::move(Act));
}

void Transaction::recordInvocation(uintptr_t StructureTag, Invocation Inv) {
  if (Recording)
    History.emplace_back(StructureTag, std::move(Inv));
}

void Transaction::noteHeldLock(const void *Owner, AbstractLock *Lock) {
  assert(!Finished && "recording a lock on a finished transaction");
  HeldLocks.push_back(HeldLockRec{Owner, Lock});
}

Transaction::PrivState Transaction::privState(const void *Domain) const {
  for (const PrivStateRec &R : PrivStates)
    if (R.Domain == Domain)
      return R.State;
  return PrivState::None;
}

void Transaction::setPrivState(const void *Domain, PrivState S) {
  assert(!Finished && "recording priv state on a finished transaction");
  for (size_t I = 0; I != PrivStates.size(); ++I)
    if (PrivStates[I].Domain == Domain) {
      if (S == PrivState::None) {
        PrivStates[I] = PrivStates.back();
        PrivStates.pop_back();
      } else {
        PrivStates[I].State = S;
      }
      return;
    }
  if (S != PrivState::None)
    PrivStates.push_back(PrivStateRec{Domain, S});
}

Transaction::PrivState Transaction::takePrivState(const void *Domain) {
  for (size_t I = 0; I != PrivStates.size(); ++I)
    if (PrivStates[I].Domain == Domain) {
      const PrivState S = PrivStates[I].State;
      PrivStates[I] = PrivStates.back();
      PrivStates.pop_back();
      return S;
    }
  return PrivState::None;
}

void Transaction::addPrivDelta(const void *Domain, int64_t Slot,
                               int64_t Amount) {
  assert(!Finished && "recording a priv delta on a finished transaction");
  for (PrivDeltaRec &R : PrivDeltas)
    if (R.Domain == Domain && R.Slot == Slot) {
      R.Amount += Amount;
      return;
    }
  PrivDeltas.push_back(PrivDeltaRec{Domain, Slot, Amount});
}

size_t Transaction::numPrivDeltas(const void *Domain) const {
  size_t N = 0;
  for (const PrivDeltaRec &R : PrivDeltas)
    if (R.Domain == Domain)
      ++N;
  return N;
}

void Transaction::noteStripe(const void *Owner, unsigned StripeIdx) {
  assert(!Finished && "recording a stripe on a finished transaction");
  const uint64_t Bit = UINT64_C(1) << StripeIdx;
  for (StripeMaskRec &R : StripeMasks)
    if (R.Owner == Owner) {
      R.Mask |= Bit;
      return;
    }
  StripeMasks.push_back(StripeMaskRec{Owner, Bit});
}

uint64_t Transaction::stripeMask(const void *Owner) const {
  for (const StripeMaskRec &R : StripeMasks)
    if (R.Owner == Owner)
      return R.Mask;
  return 0;
}

uint64_t Transaction::takeStripeMask(const void *Owner) {
  for (size_t I = 0; I != StripeMasks.size(); ++I)
    if (StripeMasks[I].Owner == Owner) {
      const uint64_t Mask = StripeMasks[I].Mask;
      StripeMasks[I] = StripeMasks.back();
      StripeMasks.pop_back();
      return Mask;
    }
  return 0;
}

void Transaction::commit(bool Release) {
  assert(!Finished && "double commit");
  assert(!Failed && "committing a failed transaction");
  for (const Action &Act : CommitActions)
    Act();
  CommitActions.clear();
  Undos.clear();
  Finished = true;
  if (Release) {
    for (ConflictDetector *Detector : Touched)
      Detector->release(*this, /*Committed=*/true);
    Touched.clear();
  } else {
    NeedsRelease = true;
  }
}

void Transaction::abort() {
  assert(!Finished && "aborting a finished transaction");
  // Undo structure-owned effects newest-touched-first, then
  // transaction-local effects in reverse registration order. Active
  // invocations of concurrent transactions pairwise commute (that is the
  // detectors' invariant), so cross-structure undo ordering is immaterial;
  // within one structure each detector undoes in reverse order itself.
  for (size_t I = Touched.size(); I != 0; --I)
    Touched[I - 1]->undoFor(*this);
  for (size_t I = Undos.size(); I != 0; --I)
    Undos[I - 1]();
  Undos.clear();
  CommitActions.clear();
  Finished = true;
  for (ConflictDetector *Detector : Touched)
    Detector->release(*this, /*Committed=*/false);
  Touched.clear();
}

void Transaction::releaseDetectors() {
  assert(Finished && NeedsRelease && "no deferred release pending");
  NeedsRelease = false;
  for (ConflictDetector *Detector : Touched)
    Detector->release(*this, /*Committed=*/true);
  Touched.clear();
}

void Transaction::reset(TxId NewId) {
  assert((Finished || (Touched.empty() && Undos.empty() && !Failed)) &&
         "resetting a live transaction");
  assert(HeldLocks.empty() && "held locks survived commit/abort");
  assert(StripeMasks.empty() && "stripe masks survived commit/abort");
  assert(PrivStates.empty() && "privatization state survived commit/abort");
  assert(PrivDeltas.empty() && "privatized deltas survived commit/abort");
#ifndef NDEBUG
  // Poison the retired identity so a detector that cached state keyed by
  // the old id (or a stale pointer into History) shows up as a mismatch
  // under the debug-build stress tests rather than silently aliasing the
  // recycled transaction.
  Id = ~UINT64_C(0);
#endif
  // Shrink every container back to its inline buffer *before* rewinding
  // the arena: spilled storage points into it.
  Undos.resetStorage();
  CommitActions.resetStorage();
  Touched.resetStorage();
  History.resetStorage();
  HeldLocks.resetStorage();
  StripeMasks.resetStorage();
  PrivStates.resetStorage();
  PrivDeltas.resetStorage();
  Arena.reset();
  Id = NewId;
  Failed = false;
  Cause = AbortCause::User;
  Detail = 0;
  Label = 0;
  Finished = false;
  Recording = false;
  NeedsRelease = false;
}
