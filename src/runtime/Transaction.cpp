//===- runtime/Transaction.cpp - Speculative transactions ------------------===//

#include "runtime/Transaction.h"

#include <algorithm>
#include <atomic>

using namespace comlat;

ConflictDetector::~ConflictDetector() = default;

TxId comlat::allocTxId() {
  static std::atomic<TxId> Next{UINT64_C(1) << 32};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Transaction::~Transaction() {
  assert((Finished || (Touched.empty() && Undos.empty())) &&
         "transaction destroyed without commit or abort");
}

void Transaction::touch(ConflictDetector *Detector) {
  assert(!Finished && "touching a finished transaction");
  if (std::find(Touched.begin(), Touched.end(), Detector) == Touched.end())
    Touched.push_back(Detector);
}

void Transaction::addUndo(std::function<void()> Undo) {
  assert(!Finished && "registering undo on a finished transaction");
  Undos.push_back(std::move(Undo));
}

void Transaction::addCommitAction(std::function<void()> Action) {
  assert(!Finished && "registering commit action on a finished transaction");
  CommitActions.push_back(std::move(Action));
}

void Transaction::recordInvocation(uintptr_t StructureTag, Invocation Inv) {
  if (Recording)
    History.emplace_back(StructureTag, std::move(Inv));
}

void Transaction::commit(bool Release) {
  assert(!Finished && "double commit");
  assert(!Failed && "committing a failed transaction");
  for (const std::function<void()> &Action : CommitActions)
    Action();
  CommitActions.clear();
  Undos.clear();
  Finished = true;
  if (Release) {
    for (ConflictDetector *Detector : Touched)
      Detector->release(*this, /*Committed=*/true);
    Touched.clear();
  } else {
    NeedsRelease = true;
  }
}

void Transaction::abort() {
  assert(!Finished && "aborting a finished transaction");
  // Undo structure-owned effects newest-touched-first, then
  // transaction-local effects in reverse registration order. Active
  // invocations of concurrent transactions pairwise commute (that is the
  // detectors' invariant), so cross-structure undo ordering is immaterial;
  // within one structure each detector undoes in reverse order itself.
  for (auto It = Touched.rbegin(); It != Touched.rend(); ++It)
    (*It)->undoFor(*this);
  for (auto It = Undos.rbegin(); It != Undos.rend(); ++It)
    (*It)();
  Undos.clear();
  CommitActions.clear();
  Finished = true;
  for (ConflictDetector *Detector : Touched)
    Detector->release(*this, /*Committed=*/false);
  Touched.clear();
}

void Transaction::releaseDetectors() {
  assert(Finished && NeedsRelease && "no deferred release pending");
  NeedsRelease = false;
  for (ConflictDetector *Detector : Touched)
    Detector->release(*this, /*Committed=*/true);
  Touched.clear();
}
