//===- runtime/RoundExecutor.cpp - ParaMeter-style profiling ---------------===//

#include "runtime/RoundExecutor.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"

#include <memory>

using namespace comlat;

ExecStats RoundExecutor::run(const std::vector<int64_t> &Initial,
                             const OperatorFn &Op) {
  ExecMetrics &Metrics = ExecMetrics::global();
  const ExecStats Before = Metrics.snapshot();
  uint64_t Rounds = 0;
  uint64_t NextTxId = 1;

  std::vector<int64_t> Current = Initial;
  while (!Current.empty()) {
    ++Rounds;
    const uint64_t Available = Current.size();
    uint64_t CommittedInRound = 0;
    // Work created by this round (commit-time pushes).
    Worklist NextRound;
    // Conflict-deferred items, retried at the *front* of the next round.
    // Ordering them first guarantees progress: the first deferred item of
    // a round runs against an empty conflict state and must commit,
    // whereas appending them after re-pushed work can recreate the same
    // blocking pattern round after round (a committed reader re-observing
    // the value a deferred writer wants to change).
    std::vector<int64_t> Deferred;
    // Committed transactions stay open (locks/logs held) until the round
    // ends: they model iterations running simultaneously on unbounded
    // processors.
    std::vector<std::unique_ptr<Transaction>> Open;
    for (const int64_t Item : Current) {
      auto Tx = std::make_unique<Transaction>(NextTxId++);
      COMLAT_TRACE(obs::EventKind::ItemPop, Tx->id(), Item, 0, 0);
      TxWorklist TxWL(NextRound, *Tx);
      Op(*Tx, Item, TxWL);
      if (Tx->failed()) {
        const AbortCause Cause = Tx->abortCause();
        const uint32_t Detail = Tx->abortDetail();
        const uint16_t Label = Tx->abortLabel();
        Tx->abort();
        Metrics.Aborted->add();
        Metrics.AbortsByCause[static_cast<unsigned>(Cause)]->add();
        COMLAT_TRACE(obs::EventKind::Abort, Tx->id(), Item, Detail, Label);
        Deferred.push_back(Item);
        continue;
      }
      Tx->commit(/*Release=*/false);
      Metrics.Committed->add();
      COMLAT_TRACE(obs::EventKind::Commit, Tx->id(), Item, 0, 0);
      ++CommittedInRound;
      Open.push_back(std::move(Tx));
    }
    for (const std::unique_ptr<Transaction> &Tx : Open)
      Tx->releaseDetectors();
    Open.clear();
    // Per-round available parallelism: Arg carries the items runnable at
    // the round start, Detail how many of them committed.
    COMLAT_TRACE(obs::EventKind::Round, Rounds,
                 static_cast<int64_t>(Available),
                 static_cast<uint32_t>(CommittedInRound), 0);
    Current = std::move(Deferred);
    while (const std::optional<int64_t> Item = NextRound.tryPop())
      Current.push_back(*Item);
  }
  ExecStats Out = ExecStats::delta(Before, Metrics.snapshot());
  Out.Rounds = Rounds;
  return Out;
}

ExecStats RoundExecutor::runBounded(const std::vector<int64_t> &Initial,
                                    const OperatorFn &Op, unsigned Width) {
  assert(Width > 0 && "need at least one processor");
  ExecMetrics &Metrics = ExecMetrics::global();
  const ExecStats Before = Metrics.snapshot();
  uint64_t Rounds = 0;
  uint64_t NextTxId = 1;
  std::deque<int64_t> Queue(Initial.begin(), Initial.end());
  Worklist Created;
  while (!Queue.empty()) {
    ++Rounds;
    const uint64_t Available = Queue.size();
    uint64_t CommittedInRound = 0;
    std::vector<std::unique_ptr<Transaction>> Open;
    // One lockstep group of at most Width transactions.
    std::vector<int64_t> Retry;
    for (unsigned Slot = 0; Slot != Width && !Queue.empty(); ++Slot) {
      const int64_t Item = Queue.front();
      Queue.pop_front();
      auto Tx = std::make_unique<Transaction>(NextTxId++);
      COMLAT_TRACE(obs::EventKind::ItemPop, Tx->id(), Item, 0, 0);
      TxWorklist TxWL(Created, *Tx);
      Op(*Tx, Item, TxWL);
      if (Tx->failed()) {
        const AbortCause Cause = Tx->abortCause();
        const uint32_t Detail = Tx->abortDetail();
        const uint16_t Label = Tx->abortLabel();
        Tx->abort();
        Metrics.Aborted->add();
        Metrics.AbortsByCause[static_cast<unsigned>(Cause)]->add();
        COMLAT_TRACE(obs::EventKind::Abort, Tx->id(), Item, Detail, Label);
        Retry.push_back(Item);
        continue;
      }
      Tx->commit(/*Release=*/false);
      Metrics.Committed->add();
      COMLAT_TRACE(obs::EventKind::Commit, Tx->id(), Item, 0, 0);
      ++CommittedInRound;
      Open.push_back(std::move(Tx));
    }
    for (const std::unique_ptr<Transaction> &Tx : Open)
      Tx->releaseDetectors();
    COMLAT_TRACE(obs::EventKind::Round, Rounds,
                 static_cast<int64_t>(Available),
                 static_cast<uint32_t>(CommittedInRound), 0);
    // Deferred items retry in the next group, ahead of fresh work.
    for (auto It = Retry.rbegin(); It != Retry.rend(); ++It)
      Queue.push_front(*It);
    while (const std::optional<int64_t> Item = Created.tryPop())
      Queue.push_back(*Item);
  }
  ExecStats Out = ExecStats::delta(Before, Metrics.snapshot());
  Out.Rounds = Rounds;
  return Out;
}
