//===- runtime/Gatekeeper.h - Forward and general gatekeeping ---*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gatekeeping conflict-detection paradigm of §3.3. A gatekeeper
/// intercepts every method invocation on its structure and, atomically:
///
///  1. pre-evaluates, for every active invocation of another transaction,
///     the s2-applications of the relevant condition (s2 is the state the
///     new invocation runs in, so these must be computed before executing);
///  2. pre-evaluates the new invocation's loggable primitive functions C_m
///     that do not need its return value (for mutating methods, s1 is about
///     to disappear);
///  3. executes the method, collecting undo/redo actions;
///  4. finishes the result log (return-value-dependent entries) and checks
///     the condition f_{m_a, m} against every active invocation m_a of
///     other transactions, resolving applications from the logs;
///  5. on success records the invocation as active; on failure undoes the
///     method's effects and reports a conflict.
///
/// A *forward* gatekeeper (§3.3.1) requires every condition to be
/// ONLINE-CHECKABLE: all s1-applications resolve from logs. A *general*
/// gatekeeper (§3.3.2) additionally resolves s1-applications that depend on
/// second-invocation values by temporarily rolling the structure back to
/// the historical state (undoing the suffix of the mutation log) and
/// re-executing forward — exactly the paper's undo/re-execute scheme for
/// union-find.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_GATEKEEPER_H
#define COMLAT_RUNTIME_GATEKEEPER_H

#include "core/Classify.h"
#include "core/Spec.h"
#include "runtime/GateTarget.h"
#include "runtime/Transaction.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace comlat {

namespace obs {
class Counter;
} // namespace obs

/// Gatekeeper conflict detector; instantiate via ForwardGatekeeper or
/// GeneralGatekeeper below.
class Gatekeeper : public ConflictDetector {
public:
  enum class Kind : uint8_t { Forward, General };

  /// \p Spec and \p Target must outlive the gatekeeper. Forward kind
  /// asserts the specification is ONLINE-CHECKABLE in every orientation.
  Gatekeeper(Kind K, const CommSpec *Spec, GateTarget *Target,
             std::string Label);

  /// Atomically checks, executes and logs one invocation. On conflict the
  /// invocation's effects are undone, \p Tx is marked failed, and false is
  /// returned; otherwise \p Ret receives the method's return value.
  bool invoke(Transaction &Tx, MethodId M, const std::vector<Value> &Args,
              Value &Ret);

  void undoFor(Transaction &Tx) override;
  void release(Transaction &Tx, bool Committed) override;
  const char *name() const override { return Label.c_str(); }

  uint64_t numChecks() const { return Checks.load(); }
  uint64_t numConflicts() const { return Conflicts.load(); }
  uint64_t numRollbackEvals() const { return RollbackEvals.load(); }

  /// Number of invocations currently active (diagnostics/tests).
  size_t numActive() const;

private:
  friend class GateCheckResolver;
  friend class GatePreResolver;
  friend class GateLogResolver;

  /// One active invocation: a method executed by a live transaction.
  struct ActiveInv {
    TxId Tx;
    /// Mutation-log sequence number at which this invocation started; the
    /// state s1 of the invocation is reached by undoing all log entries
    /// with Seq >= StartSeq.
    uint64_t StartSeq;
    Invocation Inv;
    /// Pre-evaluated primitive-function results, keyed by term key.
    std::map<std::string, Value> Log;
  };

  /// Per ordered method pair: the condition and its evaluation plan, plus
  /// the observability handles naming this predicate. A veto of the pair
  /// (active first, arriving second) bumps Vetoes and attributes the abort
  /// to the packed (first, second) method pair.
  struct PairPlan {
    FormulaPtr F;
    bool TriviallyTrue = false;
    std::vector<TermPtr> S2Applies;
    obs::Counter *Vetoes = nullptr;
  };

  /// Per method: one loggable primitive-function term.
  struct LogTermPlan {
    TermPtr T;
    bool NeedsRet = false;
  };

  /// Rolls back to the state before \p StartSeq, evaluates \p Fn, rolls
  /// forward again. Gate mutex must be held.
  Value rollbackEval(uint64_t StartSeq, StateFnId Fn,
                     const std::vector<Value> &Args);

  /// Drops mutation-log entries no longer needed by any active invocation.
  void compactMutLog();

  Kind K;
  const CommSpec *Spec;
  GateTarget *Target;
  std::string Label;
  /// Interned trace label (obs::TraceSession).
  uint16_t ObsLabel = 0;

  std::vector<std::vector<PairPlan>> Plans;    // [first][second]
  std::vector<std::vector<LogTermPlan>> LogPlans; // [method]

  mutable std::mutex Gate;
  /// deque: stable references on push_back (pending checks hold pointers
  /// within one invoke), no per-entry allocation.
  std::deque<ActiveInv> Active;
  struct MutEntry {
    uint64_t Seq;
    TxId Tx;
    GateAction Act;
  };
  std::deque<MutEntry> MutLog;
  uint64_t NextSeq = 0;

  std::atomic<uint64_t> Checks{0};
  std::atomic<uint64_t> Conflicts{0};
  std::atomic<uint64_t> RollbackEvals{0};
};

/// Forward gatekeeper (§3.3.1): for ONLINE-CHECKABLE specifications.
class ForwardGatekeeper : public Gatekeeper {
public:
  ForwardGatekeeper(const CommSpec *Spec, GateTarget *Target,
                    std::string Label)
      : Gatekeeper(Kind::Forward, Spec, Target, std::move(Label)) {}
};

/// General gatekeeper (§3.3.2): for arbitrary L1 specifications.
class GeneralGatekeeper : public Gatekeeper {
public:
  GeneralGatekeeper(const CommSpec *Spec, GateTarget *Target,
                    std::string Label)
      : Gatekeeper(Kind::General, Spec, Target, std::move(Label)) {}
};

} // namespace comlat

#endif // COMLAT_RUNTIME_GATEKEEPER_H
