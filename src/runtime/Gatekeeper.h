//===- runtime/Gatekeeper.h - Forward and general gatekeeping ---*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gatekeeping conflict-detection paradigm of §3.3. A gatekeeper
/// intercepts every method invocation on its structure and, atomically:
///
///  1. pre-evaluates, for every active invocation of another transaction,
///     the s2-applications of the relevant condition (s2 is the state the
///     new invocation runs in, so these must be computed before executing);
///  2. pre-evaluates the new invocation's loggable primitive functions C_m
///     that do not need its return value (for mutating methods, s1 is about
///     to disappear);
///  3. executes the method, collecting undo/redo actions;
///  4. finishes the result log (return-value-dependent entries) and checks
///     the condition f_{m_a, m} against every active invocation m_a of
///     other transactions, resolving applications from the logs;
///  5. on success records the invocation as active; on failure undoes the
///     method's effects and reports a conflict.
///
/// A *forward* gatekeeper (§3.3.1) requires every condition to be
/// ONLINE-CHECKABLE: all s1-applications resolve from logs. A *general*
/// gatekeeper (§3.3.2) additionally resolves s1-applications that depend on
/// second-invocation values by temporarily rolling the structure back to
/// the historical state (undoing the suffix of the mutation log) and
/// re-executing forward — exactly the paper's undo/re-execute scheme for
/// union-find.
///
/// Conditions are not interpreted on the hot path: every pair condition,
/// s2-application and log term is lowered to a CondProgram (core/CondIR.h)
/// at construction, with the first invocation's log entries and the phase-1
/// s2-cache pre-bound as indexed external slots. Invocation logs are plain
/// value vectors (one slot per LogPlans entry) instead of string-keyed
/// maps; the tree interpreter remains as the reference semantics
/// (SpecValidator's differential mode checks agreement).
///
/// Admission is *striped* when the specification allows it. If every
/// non-trivial condition is key-separable (carries a disjunct
/// `m1.argI != m2.argJ`, like the set lattice's `x != y` clauses), the key
/// argument assignment is consistent across pairs, no condition or log term
/// reads abstract state, the gatekeeper is forward, and the target declares
/// gateConcurrentSafe(), then invocations are admitted per key stripe
/// (gateStripeOf): each stripe has its own mutex, active list and mutation
/// log. Invocations in different stripes have different keys, so the
/// separable disjunct makes their conditions true — cross-stripe checks can
/// be skipped entirely. Specifications outside this fragment fall back to a
/// single stripe, which is exactly the classic global critical section.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_GATEKEEPER_H
#define COMLAT_RUNTIME_GATEKEEPER_H

#include "core/Classify.h"
#include "core/CondIR.h"
#include "core/Spec.h"
#include "runtime/GateTarget.h"
#include "runtime/Privatizer.h"
#include "runtime/Transaction.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace comlat {

namespace obs {
class Counter;
} // namespace obs

/// Gatekeeper conflict detector; instantiate via ForwardGatekeeper or
/// GeneralGatekeeper below.
class Gatekeeper : public ConflictDetector {
public:
  enum class Kind : uint8_t { Forward, General };

  /// \p Spec and \p Target must outlive the gatekeeper. Forward kind
  /// asserts the specification is ONLINE-CHECKABLE in every orientation.
  /// With \p Privatize (forward kind only), methods the classification
  /// marked privatizable — intersected with Target->privSupported() — are
  /// diverted to per-worker replicas (runtime/Privatizer.h) instead of
  /// admitted; conflicting methods merge first.
  Gatekeeper(Kind K, const CommSpec *Spec, GateTarget *Target,
             std::string Label, bool Privatize = false);

  /// Atomically checks, executes and logs one invocation. On conflict the
  /// invocation's effects are undone, \p Tx is marked failed, and false is
  /// returned; otherwise \p Ret receives the method's return value.
  bool invoke(Transaction &Tx, MethodId M, ValueSpan Args, Value &Ret);

  void undoFor(Transaction &Tx) override;
  void release(Transaction &Tx, bool Committed) override;
  const char *name() const override { return Label.c_str(); }

  uint64_t numChecks() const { return Checks.load(); }
  uint64_t numConflicts() const { return Conflicts.load(); }
  uint64_t numRollbackEvals() const { return RollbackEvals.load(); }

  /// True when this gatekeeper admits per key stripe (see file comment);
  /// false means the single-stripe (global critical section) fallback.
  bool striped() const { return Striped; }

  /// True when privatized coalescing is enabled (some method diverts).
  bool privatized() const { return Priv != nullptr; }

  /// Bit M set when invocations of method M divert to the privatized path.
  uint64_t privMask() const { return PrivMask; }

  /// The privatization domain (null unless privatized(); tests/stats).
  PrivDomain *privDomain() { return Priv.get(); }

  /// Merges outstanding committed privatized deltas into the target.
  /// Quiesced callers only (state dumps, value() reads); no-op when
  /// privatization is off.
  void mergePrivatizedQuiesced() {
    if (Priv)
      Priv->mergeQuiesced();
  }

  /// Number of admission stripes in use (GateStripeCount or 1).
  unsigned numStripes() const { return unsigned(Stripes.size()); }

  /// The compiled condition for the ordered pair (diagnostics/tests).
  const CondProgram &pairProgram(MethodId First, MethodId Second) const {
    return Plans[First][Second].Prog;
  }

  /// Number of invocations currently active (diagnostics/tests).
  size_t numActive() const;

private:
  friend class GateLiveResolver;
  friend class GateLogResolver;

  /// Hard cap on external slots per pair (log entries of the first method
  /// plus s2-applications); asserted at plan build, so the check path can
  /// use fixed scratch.
  static constexpr unsigned MaxExtSlots = 32;

  /// One active invocation: a method executed by a live transaction.
  struct ActiveInv {
    TxId Tx;
    /// Mutation-log sequence number (within the owning stripe) at which
    /// this invocation started; its state s1 is reached by undoing all
    /// entries with Seq >= StartSeq.
    uint64_t StartSeq;
    Invocation Inv;
    /// Pre-evaluated primitive-function results, indexed exactly like
    /// LogPlans[Inv.Method] (and bound to the same external slots in every
    /// compiled condition with this method first). Specs log at most a
    /// couple of terms per method, so the inline slots always suffice.
    InlineVec<Value, 4> Log;
  };

  /// Per ordered method pair: the condition, its compiled form, and the
  /// observability handles naming this predicate. A veto of the pair
  /// (active first, arriving second) bumps Vetoes and attributes the abort
  /// to the packed (first, second) method pair.
  struct PairPlan {
    FormulaPtr F;
    bool TriviallyTrue = false;
    /// The compiled condition. External slots: [0, L) the first method's
    /// log entries (L = LogPlans[first].size()), [L, L+S) the pair's
    /// s2-application values in S2Applies order.
    CondProgram Prog;
    std::vector<TermPtr> S2Applies;
    /// Compiled s2-applications (phase 1); external slots [0, L) as above.
    std::vector<CondProgram> S2Progs;
    obs::Counter *Vetoes = nullptr;
  };

  /// Per method: one loggable primitive-function term.
  struct LogTermPlan {
    TermPtr T;
    CondProgram Prog; ///< Compiled against no external slots.
    bool NeedsRet = false;
  };

  /// One admission stripe: mutex, active invocations, mutation log. The
  /// single-stripe fallback uses exactly one of these. Both lists are
  /// vectors that keep their grown capacity: pointers into Active are held
  /// only within one invoke (no push until the pending checks are
  /// consumed), and a warmed stripe appends without allocating.
  struct Stripe {
    std::mutex Mu;
    std::vector<ActiveInv> Active;
    struct MutEntry {
      uint64_t Seq;
      TxId Tx;
      GateAction Act;
    };
    std::vector<MutEntry> MutLog;
    uint64_t NextSeq = 0;
  };

  /// Rolls back stripe \p S to the state before \p StartSeq, evaluates
  /// \p Fn, rolls forward again. The stripe mutex must be held; only ever
  /// reached on the single-stripe path (striping excludes state applies).
  Value rollbackEval(Stripe &S, uint64_t StartSeq, StateFnId Fn,
                     ValueSpan Args);

  /// Drops mutation-log entries no longer needed by any active invocation
  /// of the stripe. Stripe mutex held.
  void compactMutLog(Stripe &S);

  /// The admission stripe index for an invocation of \p M with \p Args.
  unsigned stripeIndexFor(MethodId M, ValueSpan Args) const;

  /// Releases \p Tx's state in stripe \p S (active records; with \p Undo
  /// also its mutations, newest first). Takes the stripe mutex.
  void cleanStripe(Stripe &S, TxId Tx, bool Undo);

  /// The ordinary admission path (phases 1-5 of the file comment); invoke
  /// routes here directly when privatization is off or the invocation was
  /// not diverted.
  bool invokeGated(Transaction &Tx, MethodId M, ValueSpan Args, Value &Ret);

  /// Joins the blocker census before a non-always-commuting method runs,
  /// flushing the transaction's own pending deltas through the admission
  /// path on self-upgrade. False: the transaction was failed (veto).
  bool ensurePrivBlocker(Transaction &Tx, MethodId M);

  Kind K;
  const CommSpec *Spec;
  GateTarget *Target;
  std::string Label;
  /// Interned trace label (obs::TraceSession).
  uint16_t ObsLabel = 0;

  std::vector<std::vector<PairPlan>> Plans;       // [first][second]
  std::vector<std::vector<LogTermPlan>> LogPlans; // [method]

  /// Striped-admission state. KeyArgOf[M] is the key argument index used
  /// for stripe routing (-1: method participates in no non-trivial pair
  /// and routes to stripe 0). Meaningful only when Striped.
  bool Striped = false;
  std::vector<int> KeyArgOf;
  std::vector<std::unique_ptr<Stripe>> Stripes;

  /// Privatized coalescing (null when off). PrivMask: methods that divert
  /// (classification-privatizable AND target-supported). PrivBlockMask:
  /// methods that must join the blocker census first (some pair with a
  /// diverted method is not AlwaysCommutes). Methods in neither mask take
  /// the gated path directly — they always-commute with every diverted
  /// method, so outstanding deltas cannot affect them.
  std::unique_ptr<PrivDomain> Priv;
  uint64_t PrivMask = 0;
  uint64_t PrivBlockMask = 0;

  std::atomic<uint64_t> Checks{0};
  std::atomic<uint64_t> Conflicts{0};
  std::atomic<uint64_t> RollbackEvals{0};

  /// Fast-path / contention observability (MetricsRegistry).
  obs::Counter *StripedAdmits = nullptr;
  obs::Counter *GlobalAdmits = nullptr;
  obs::Counter *StripeContention = nullptr;
};

/// Forward gatekeeper (§3.3.1): for ONLINE-CHECKABLE specifications.
class ForwardGatekeeper : public Gatekeeper {
public:
  ForwardGatekeeper(const CommSpec *Spec, GateTarget *Target,
                    std::string Label, bool Privatize = false)
      : Gatekeeper(Kind::Forward, Spec, Target, std::move(Label), Privatize) {
  }
};

/// General gatekeeper (§3.3.2): for arbitrary L1 specifications.
class GeneralGatekeeper : public Gatekeeper {
public:
  GeneralGatekeeper(const CommSpec *Spec, GateTarget *Target,
                    std::string Label)
      : Gatekeeper(Kind::General, Spec, Target, std::move(Label)) {}
};

} // namespace comlat

#endif // COMLAT_RUNTIME_GATEKEEPER_H
