//===- runtime/ExecStats.cpp - Unified execution statistics ----------------===//

#include "runtime/ExecStats.h"

#include "obs/MetricsRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstdio>

using namespace comlat;

const char *comlat::abortCauseName(AbortCause Cause) {
  switch (Cause) {
  case AbortCause::LockConflict:
    return "lock";
  case AbortCause::Gatekeeper:
    return "gatekeeper";
  case AbortCause::User:
    return "user";
  }
  COMLAT_UNREACHABLE("bad abort cause");
}

static unsigned bucketFor(uint64_t Micros) {
  unsigned B = 0;
  while (B + 1 < LatencyHistogram::NumBuckets && (Micros >> (B + 1)) != 0)
    ++B;
  return B;
}

void LatencyHistogram::addMicros(uint64_t Micros) {
  ++Buckets[bucketFor(Micros)];
  ++Count;
  TotalMicros += Micros;
}

void LatencyHistogram::merge(const LatencyHistogram &Other) {
  for (unsigned B = 0; B != NumBuckets; ++B)
    Buckets[B] += Other.Buckets[B];
  Count += Other.Count;
  TotalMicros += Other.TotalMicros;
}

uint64_t LatencyHistogram::quantileUpperBoundMicros(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  const uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank || (Seen == Count && Seen != 0))
      return 1ull << (B + 1);
  }
  return 1ull << NumBuckets;
}

ExecStats &ExecStats::merge(const ExecStats &Other) {
  Committed += Other.Committed;
  Aborted += Other.Aborted;
  for (unsigned C = 0; C != NumAbortCauses; ++C)
    AbortsByCause[C] += Other.AbortsByCause[C];
  Steals += Other.Steals;
  EmptyPops += Other.EmptyPops;
  BackoffMicros += Other.BackoffMicros;
  Rounds = std::max(Rounds, Other.Rounds);
  Seconds = std::max(Seconds, Other.Seconds);
  CommitLatency.merge(Other.CommitLatency);
  return *this;
}

ExecStats ExecStats::delta(const ExecStats &Before, const ExecStats &After) {
  ExecStats Out;
  Out.Committed = After.Committed - Before.Committed;
  Out.Aborted = After.Aborted - Before.Aborted;
  for (unsigned C = 0; C != NumAbortCauses; ++C)
    Out.AbortsByCause[C] = After.AbortsByCause[C] - Before.AbortsByCause[C];
  Out.Steals = After.Steals - Before.Steals;
  Out.EmptyPops = After.EmptyPops - Before.EmptyPops;
  Out.BackoffMicros = After.BackoffMicros - Before.BackoffMicros;
  for (unsigned B = 0; B != LatencyHistogram::NumBuckets; ++B)
    Out.CommitLatency.Buckets[B] =
        After.CommitLatency.Buckets[B] - Before.CommitLatency.Buckets[B];
  Out.CommitLatency.Count =
      After.CommitLatency.Count - Before.CommitLatency.Count;
  Out.CommitLatency.TotalMicros =
      After.CommitLatency.TotalMicros - Before.CommitLatency.TotalMicros;
  return Out;
}

ExecMetrics &ExecMetrics::global() {
  static ExecMetrics *EM = [] {
    obs::MetricsRegistry &R = obs::MetricsRegistry::global();
    auto *M = new ExecMetrics();
    M->Committed = R.counter("comlat_committed_total");
    M->Aborted = R.counter("comlat_aborted_total");
    for (unsigned C = 0; C != NumAbortCauses; ++C)
      M->AbortsByCause[C] = R.counter(obs::metricName(
          "comlat_aborts_total",
          {{"cause", abortCauseName(static_cast<AbortCause>(C))}}));
    M->Steals = R.counter("comlat_scheduler_steals_total");
    M->EmptyPops = R.counter("comlat_scheduler_empty_pops_total");
    M->BackoffMicros = R.counter("comlat_backoff_micros_total");
    M->CommitLatencyUs = R.histogram("comlat_commit_latency_micros");
    return M;
  }();
  return *EM;
}

ExecStats ExecMetrics::snapshot() const {
  ExecStats S;
  S.Committed = Committed->value();
  S.Aborted = Aborted->value();
  for (unsigned C = 0; C != NumAbortCauses; ++C)
    S.AbortsByCause[C] = AbortsByCause[C]->value();
  S.Steals = Steals->value();
  S.EmptyPops = EmptyPops->value();
  S.BackoffMicros = BackoffMicros->value();
  const obs::HistogramSnapshot H = CommitLatencyUs->snapshot();
  // The registry histogram has more buckets than the report vocabulary;
  // the tail collapses into the report's open-ended last bucket.
  for (unsigned B = 0; B != obs::HistogramSnapshot::NumBuckets; ++B)
    S.CommitLatency
        .Buckets[std::min(B, LatencyHistogram::NumBuckets - 1)] +=
        H.Buckets[B];
  S.CommitLatency.Count = H.Count;
  S.CommitLatency.TotalMicros = H.Sum;
  return S;
}

std::string ExecStats::csvHeader() {
  return "committed,aborted,aborts_lock,aborts_gatekeeper,aborts_user,"
         "steals,empty_pops,backoff_us,rounds,seconds,abort_ratio,"
         "parallelism,commit_p50_us,commit_p99_us";
}

std::string ExecStats::toCsvRow() const {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.2f,%llu,%llu",
      static_cast<unsigned long long>(Committed),
      static_cast<unsigned long long>(Aborted),
      static_cast<unsigned long long>(abortsByCause(AbortCause::LockConflict)),
      static_cast<unsigned long long>(abortsByCause(AbortCause::Gatekeeper)),
      static_cast<unsigned long long>(abortsByCause(AbortCause::User)),
      static_cast<unsigned long long>(Steals),
      static_cast<unsigned long long>(EmptyPops),
      static_cast<unsigned long long>(BackoffMicros),
      static_cast<unsigned long long>(Rounds), Seconds, abortRatio(),
      parallelism(),
      static_cast<unsigned long long>(
          CommitLatency.quantileUpperBoundMicros(0.5)),
      static_cast<unsigned long long>(
          CommitLatency.quantileUpperBoundMicros(0.99)));
  return Buf;
}

std::string ExecStats::toJson() const {
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"committed\":%llu,\"aborted\":%llu,"
      "\"abortsByCause\":{\"lock\":%llu,\"gatekeeper\":%llu,\"user\":%llu},"
      "\"steals\":%llu,\"emptyPops\":%llu,\"backoffUs\":%llu,"
      "\"rounds\":%llu,\"seconds\":%.6f,\"abortRatio\":%.6f,"
      "\"parallelism\":%.2f,\"commitLatencyUs\":{\"count\":%llu,"
      "\"mean\":%.2f,\"p50UpperBound\":%llu,\"p99UpperBound\":%llu,"
      "\"buckets\":[",
      static_cast<unsigned long long>(Committed),
      static_cast<unsigned long long>(Aborted),
      static_cast<unsigned long long>(abortsByCause(AbortCause::LockConflict)),
      static_cast<unsigned long long>(abortsByCause(AbortCause::Gatekeeper)),
      static_cast<unsigned long long>(abortsByCause(AbortCause::User)),
      static_cast<unsigned long long>(Steals),
      static_cast<unsigned long long>(EmptyPops),
      static_cast<unsigned long long>(BackoffMicros),
      static_cast<unsigned long long>(Rounds), Seconds, abortRatio(),
      parallelism(), static_cast<unsigned long long>(CommitLatency.Count),
      CommitLatency.meanMicros(),
      static_cast<unsigned long long>(
          CommitLatency.quantileUpperBoundMicros(0.5)),
      static_cast<unsigned long long>(
          CommitLatency.quantileUpperBoundMicros(0.99)));
  std::string Out(Buf);
  // Trailing zero buckets are elided to keep rows short.
  unsigned Last = 0;
  for (unsigned B = 0; B != LatencyHistogram::NumBuckets; ++B)
    if (CommitLatency.Buckets[B] != 0)
      Last = B + 1;
  for (unsigned B = 0; B != Last; ++B) {
    std::snprintf(Buf, sizeof(Buf), "%s%llu", B == 0 ? "" : ",",
                  static_cast<unsigned long long>(CommitLatency.Buckets[B]));
    Out += Buf;
  }
  Out += "]}}";
  return Out;
}
