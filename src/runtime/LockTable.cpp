//===- runtime/LockTable.cpp - Multi-mode abstract locks -------------------===//

#include "runtime/LockTable.h"

using namespace comlat;

bool AbstractLock::tryAcquire(TxId Tx, ModeId Mode, const CompatMatrix &Compat,
                              ModeId *BlockingMode, bool *WasHeld) {
  assert(Mode < Compat.size() && "mode out of range for matrix");
  std::lock_guard<std::mutex> Guard(M);
  bool Held = false;
  for (const Holder &H : Holders) {
    if (H.Tx == Tx) {
      Held = true;
      continue;
    }
    if (!Compat[H.Mode][Mode]) {
      if (BlockingMode)
        *BlockingMode = H.Mode;
      return false;
    }
  }
  if (WasHeld)
    *WasHeld = Held;
  for (Holder &H : Holders) {
    if (H.Tx == Tx && H.Mode == Mode) {
      ++H.Count;
      return true;
    }
  }
  Holders.push_back(Holder{Tx, Mode, 1});
  return true;
}

void AbstractLock::releaseAll(TxId Tx) {
  std::lock_guard<std::mutex> Guard(M);
  for (size_t I = 0; I != Holders.size();) {
    if (Holders[I].Tx == Tx) {
      Holders[I] = Holders.back();
      Holders.pop_back();
    } else {
      ++I;
    }
  }
}

bool AbstractLock::heldBy(TxId Tx) const {
  std::lock_guard<std::mutex> Guard(M);
  for (const Holder &H : Holders)
    if (H.Tx == Tx)
      return true;
  return false;
}

unsigned AbstractLock::numHolders() const {
  std::lock_guard<std::mutex> Guard(M);
  unsigned N = 0;
  uint64_t SeenTx = ~0ull;
  // Holders of one transaction are adjacent often enough that this simple
  // distinct-count is fine for diagnostics.
  for (const Holder &H : Holders) {
    if (H.Tx != SeenTx) {
      ++N;
      SeenTx = H.Tx;
    }
  }
  return N;
}

LockTable::LockTable(unsigned ShardCount) {
  assert(ShardCount > 0 && "need at least one shard");
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

AbstractLock *LockTable::lockFor(uint32_t Space, const Value &Key) {
  Shard &S = *Shards[(Key.hash() ^ Space) % Shards.size()];
  std::lock_guard<std::mutex> Guard(S.M);
  std::unique_ptr<AbstractLock> &Slot = S.Locks[{Space, Key}];
  if (!Slot)
    Slot = std::make_unique<AbstractLock>();
  return Slot.get();
}

uint64_t LockTable::size() const {
  uint64_t N = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->M);
    N += S->Locks.size();
  }
  return N;
}
