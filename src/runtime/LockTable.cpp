//===- runtime/LockTable.cpp - Multi-mode abstract locks -------------------===//

#include "runtime/LockTable.h"

using namespace comlat;

bool AbstractLock::tryAcquire(TxId Tx, ModeId Mode, const CompatMatrix &Compat,
                              ModeId *BlockingMode, bool *WasHeld) {
  assert(Mode < Compat.size() && "mode out of range for matrix");
  std::lock_guard<std::mutex> Guard(M);
  bool Held = false;
  for (const Holder &H : Holders) {
    if (H.Tx == Tx) {
      Held = true;
      continue;
    }
    if (!Compat[H.Mode][Mode]) {
      if (BlockingMode)
        *BlockingMode = H.Mode;
      return false;
    }
  }
  if (WasHeld)
    *WasHeld = Held;
  for (Holder &H : Holders) {
    if (H.Tx == Tx && H.Mode == Mode) {
      ++H.Count;
      return true;
    }
  }
  Holders.push_back(Holder{Tx, Mode, 1});
  return true;
}

void AbstractLock::releaseAll(TxId Tx) {
  std::lock_guard<std::mutex> Guard(M);
  for (size_t I = 0; I != Holders.size();) {
    if (Holders[I].Tx == Tx) {
      Holders[I] = Holders.back();
      Holders.pop_back();
    } else {
      ++I;
    }
  }
}

bool AbstractLock::heldBy(TxId Tx) const {
  std::lock_guard<std::mutex> Guard(M);
  for (const Holder &H : Holders)
    if (H.Tx == Tx)
      return true;
  return false;
}

unsigned AbstractLock::numHolders() const {
  std::lock_guard<std::mutex> Guard(M);
  unsigned N = 0;
  uint64_t SeenTx = ~0ull;
  // Holders of one transaction are adjacent often enough that this simple
  // distinct-count is fine for diagnostics.
  for (const Holder &H : Holders) {
    if (H.Tx != SeenTx) {
      ++N;
      SeenTx = H.Tx;
    }
  }
  return N;
}

/// Exact-kind key identity. Value::operator== compares Int and Real
/// numerically, which would merge locks the previous ordered map (strict
/// by kind, then payload) kept distinct; equivalence under operator< is
/// the identity the rest of the system was built against.
bool LockTable::sameKey(const Entry &E, uint64_t Hash, uint32_t Space,
                        const Value &Key) {
  return E.Hash == Hash && E.Space == Space && !(E.Key < Key) &&
         !(Key < E.Key);
}

LockTable::LockTable(unsigned ShardCount) {
  assert(ShardCount > 0 && "need at least one shard");
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I) {
    auto S = std::make_unique<Shard>();
    S->Tables.push_back(std::make_unique<Table>(/*Capacity=*/64));
    S->Cur.store(S->Tables.back().get(), std::memory_order_release);
    Shards.push_back(std::move(S));
  }
}

LockTable::~LockTable() = default;

AbstractLock *LockTable::lockFor(uint32_t Space, const Value &Key) {
  const uint64_t Hash = Key.hash() ^ (uint64_t(Space) * 0x9E3779B97F4A7C15ull);
  Shard &S = shardFor(Key.hash(), Space);

  // Fast path: probe the published table without any lock. Slots are
  // write-once under the shard mutex, so an acquire load either sees null
  // (possibly stale — fall through to the slow path) or a fully
  // constructed, immortal entry.
  {
    const Table *T = S.Cur.load(std::memory_order_acquire);
    for (size_t I = Hash & T->Mask;; I = (I + 1) & T->Mask) {
      Entry *E = T->Slots[I].load(std::memory_order_acquire);
      if (!E)
        break;
      if (sameKey(*E, Hash, Space, Key))
        return &E->Lock;
    }
  }

  // Slow path: insert (or find an entry that raced in) under the mutex.
  std::lock_guard<std::mutex> Guard(S.WriteM);
  Table *T = S.Cur.load(std::memory_order_relaxed);

  // Grow at ~70% load, before probing: the new entry then lands in the
  // fresh table. Readers keep probing the retired array until they next
  // reload Cur; its entries stay valid forever.
  if ((S.Count + 1) * 10 > (T->Mask + 1) * 7) {
    auto Bigger = std::make_unique<Table>((T->Mask + 1) * 2);
    for (size_t I = 0; I != T->Mask + 1; ++I) {
      Entry *E = T->Slots[I].load(std::memory_order_relaxed);
      if (!E)
        continue;
      for (size_t J = E->Hash & Bigger->Mask;; J = (J + 1) & Bigger->Mask) {
        if (!Bigger->Slots[J].load(std::memory_order_relaxed)) {
          Bigger->Slots[J].store(E, std::memory_order_relaxed);
          break;
        }
      }
    }
    T = Bigger.get();
    S.Tables.push_back(std::move(Bigger));
    S.Cur.store(T, std::memory_order_release);
  }

  for (size_t I = Hash & T->Mask;; I = (I + 1) & T->Mask) {
    Entry *E = T->Slots[I].load(std::memory_order_relaxed);
    if (E) {
      if (sameKey(*E, Hash, Space, Key))
        return &E->Lock; // Lost a race with another inserter.
      continue;
    }
    Entry &New = S.Pool.emplace_back(Hash, Space, Key);
    ++S.Count;
    // Release: a fast-path reader that sees the pointer sees the entry.
    T->Slots[I].store(&New, std::memory_order_release);
    return &New.Lock;
  }
}

uint64_t LockTable::size() const {
  uint64_t N = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->WriteM);
    N += S->Count;
  }
  return N;
}
