//===- runtime/Transaction.h - Speculative transactions ---------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactions for the speculative runtime. One transaction wraps one
/// application of a worklist operator (one "iteration" in Galois terms) and
/// may touch several boosted data structures, each guarded by its own
/// conflict detector (abstract locks or a gatekeeper, §3). Following the
/// LLVM guides this runtime uses no exceptions: a conflict marks the
/// transaction failed; operators check failed() and return early, and the
/// executor aborts (undoing all effects) and retries.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_TRANSACTION_H
#define COMLAT_RUNTIME_TRANSACTION_H

#include "core/MethodSig.h"
#include "runtime/ExecStats.h"
#include "support/BumpArena.h"
#include "support/InlineVec.h"
#include "support/SmallFunc.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace comlat {

/// Globally unique transaction identity.
using TxId = uint64_t;

class Transaction;
class AbstractLock;

/// A conflict detector guards one data structure. The three schemes of §3
/// (abstract locking, forward gatekeeping, general gatekeeping) and the
/// memory-level STM baseline all implement this interface; the transaction
/// calls back into every detector it touched when it finishes.
class ConflictDetector {
public:
  virtual ~ConflictDetector();

  /// Undoes all effects this transaction had on the guarded structure.
  /// Called during abort, before any lock release, in reverse touch order.
  /// Detectors without structure-owned undo logs (e.g. plain abstract
  /// locking, where the boosted wrapper registers undo actions on the
  /// transaction instead) may keep the default no-op.
  virtual void undoFor(Transaction &Tx) {}

  /// Releases every resource (locks, logs, active-invocation records) held
  /// by \p Tx. Called exactly once per touched transaction, at commit or
  /// after abort undo.
  virtual void release(Transaction &Tx, bool Committed) = 0;

  /// Scheme name for diagnostics/benchmark labels.
  virtual const char *name() const = 0;
};

/// One speculative iteration. Not thread-safe: a transaction belongs to a
/// single worker thread. Lifecycle: construct -> (boosted calls, possibly
/// fail()) -> commit() or abort(); pooled engines then reset() and reuse
/// the object, keeping its inline buffers, spill arena and grown
/// capacities — a retried or successive transaction allocates nothing.
class Transaction {
public:
  /// Undo/commit actions: captures (a this-pointer plus a key or two)
  /// stay inline, so registering an action never allocates.
  using Action = SmallFunc<void()>;

  explicit Transaction(TxId Id)
      : Id(Id), Undos(&Arena), CommitActions(&Arena), Touched(&Arena),
        History(&Arena), HeldLocks(&Arena), StripeMasks(&Arena),
        PrivStates(&Arena), PrivDeltas(&Arena) {}
  ~Transaction();

  Transaction(const Transaction &) = delete;
  Transaction &operator=(const Transaction &) = delete;

  TxId id() const { return Id; }

  /// True once any boosted call detected a conflict. Operators must check
  /// this after every boosted call and return without further work.
  bool failed() const { return Failed; }

  /// Marks the transaction conflicted, recording why. Idempotent: the
  /// first cause wins (the operator returns on the first failure, so later
  /// calls would only ever come from unwinding code). Detectors pass their
  /// cause plus their observability attribution: \p Label is the
  /// detector's interned trace label (obs::TraceSession) and \p Detail the
  /// packed mode/method pair that vetoed — together they tie the abort to
  /// a concrete lock-mode conflict or gatekeeper predicate. A plain
  /// fail() from operator code is a user-requested retry (no attribution).
  void fail(AbortCause Cause = AbortCause::User, uint32_t Detail = 0,
            uint16_t Label = 0) {
    if (!Failed) {
      this->Cause = Cause;
      this->Detail = Detail;
      this->Label = Label;
    }
    Failed = true;
  }

  /// Why the transaction failed; meaningful only when failed().
  AbortCause abortCause() const { return Cause; }

  /// Packed attribution detail from the vetoing detector (0 if none).
  uint32_t abortDetail() const { return Detail; }

  /// Trace label of the vetoing detector (0 if none).
  uint16_t abortLabel() const { return Label; }

  /// Registers participation of a detector; called by boosted wrappers on
  /// every invocation (cheap after the first).
  void touch(ConflictDetector *Detector);

  /// Registers a transaction-local undo action (run in reverse order on
  /// abort). Used by boosted wrappers whose detector has no structure-owned
  /// undo log.
  void addUndo(Action Undo);

  /// Registers an action to run at commit (e.g. pushing newly created work
  /// items); never runs on abort.
  void addCommitAction(Action Act);

  /// Records an invocation for post-hoc serializability checking; only
  /// populated when recording is enabled (tests).
  void recordInvocation(uintptr_t StructureTag, Invocation Inv);
  void setRecording(bool On) { Recording = On; }
  bool recording() const { return Recording; }

  /// The recorded (structure, invocation) history in program order.
  using HistoryList = InlineVec<std::pair<uintptr_t, Invocation>, 4>;
  const HistoryList &history() const { return History; }

  /// Records an abstract lock newly acquired for this transaction by the
  /// detector \p Owner (lock managers, the object STM). Replaces the old
  /// process-global Held map: the holder list lives with its transaction,
  /// touched only by the owning worker thread — no mutex, no allocation.
  void noteHeldLock(const void *Owner, AbstractLock *Lock);

  /// Removes and visits every lock recorded by \p Owner. Order is
  /// unspecified (multi-mode abstract locks release wholesale).
  template <typename Fn> void consumeHeldLocks(const void *Owner, Fn &&F) {
    for (size_t I = 0; I != HeldLocks.size();) {
      if (HeldLocks[I].Owner == Owner) {
        AbstractLock *Lock = HeldLocks[I].Lock;
        HeldLocks[I] = HeldLocks.back();
        HeldLocks.pop_back();
        F(Lock);
      } else {
        ++I;
      }
    }
  }

  /// Privatization state of this transaction within one PrivDomain
  /// (runtime/Privatizer.h). Priv: the transaction holds privatized deltas
  /// (pending below) and counts in the domain's live-privatized census.
  /// Blocker: it executed a non-always-commuting method and counts in the
  /// blocker census. Owner-thread state, like the stripe masks.
  enum class PrivState : uint8_t { None, Priv, Blocker };

  /// This transaction's privatization state for \p Domain.
  PrivState privState(const void *Domain) const;

  /// Sets the state for \p Domain (None removes the record).
  void setPrivState(const void *Domain, PrivState S);

  /// Returns and clears the state for \p Domain (domain release path).
  PrivState takePrivState(const void *Domain);

  /// Accumulates one privatized delta for \p Domain, coalescing by slot:
  /// repeated updates of one counter stay one record. The records live in
  /// the transaction (inline buffer, then the spill arena) — nothing is
  /// shared until commit, so aborting simply drops them.
  void addPrivDelta(const void *Domain, int64_t Slot, int64_t Amount);

  /// Removes and visits every pending delta of \p Domain.
  template <typename Fn> void consumePrivDeltas(const void *Domain, Fn &&F) {
    for (size_t I = 0; I != PrivDeltas.size();) {
      if (PrivDeltas[I].Domain == Domain) {
        const PrivDeltaRec R = PrivDeltas[I];
        PrivDeltas[I] = PrivDeltas.back();
        PrivDeltas.pop_back();
        F(R.Slot, R.Amount);
      } else {
        ++I;
      }
    }
  }

  /// Number of pending privatized deltas for \p Domain (tests).
  size_t numPrivDeltas(const void *Domain) const;

  /// Marks admission stripe \p StripeIdx of gatekeeper \p Owner as touched
  /// by this transaction (striped gatekeepers only; see Gatekeeper.h).
  void noteStripe(const void *Owner, unsigned StripeIdx);

  /// This transaction's stripe mask for \p Owner (0 when none touched).
  uint64_t stripeMask(const void *Owner) const;

  /// Returns and clears the stripe mask for \p Owner.
  uint64_t takeStripeMask(const void *Owner);

  /// Commits: runs commit actions in order, then (when \p Release) lets
  /// every touched detector release this transaction's resources. The
  /// round-based ParaMeter executor passes Release=false and calls
  /// releaseDetectors() at the end of the round, modelling transactions
  /// that are simultaneously live on unbounded processors.
  void commit(bool Release = true);

  /// Aborts: detector-owned undo (reverse touch order), transaction-local
  /// undo (reverse registration order), then detector release.
  void abort();

  /// Releases detector resources for an already-committed transaction kept
  /// open by the round executor.
  void releaseDetectors();

  /// True once commit() or abort() ran.
  bool finished() const { return Finished; }

  /// Returns the object to the freshly-constructed state under a new id,
  /// keeping all storage: inline buffers, grown spill capacity and the
  /// overflow arena (rewound, not freed). Only legal on a finished (or
  /// never-used) transaction. Pooled engines call this between items and
  /// between retry attempts; under !NDEBUG the previous attempt's state is
  /// poisoned first so stale reuse trips assertions instead of aliasing.
  void reset(TxId NewId);

private:
  TxId Id;
  bool Failed = false;
  AbortCause Cause = AbortCause::User;
  uint32_t Detail = 0;
  uint16_t Label = 0;
  bool Finished = false;
  bool Recording = false;
  bool NeedsRelease = false;

  struct HeldLockRec {
    const void *Owner;
    AbstractLock *Lock;
  };
  struct StripeMaskRec {
    const void *Owner;
    uint64_t Mask;
  };
  struct PrivStateRec {
    const void *Domain;
    PrivState State;
  };
  struct PrivDeltaRec {
    const void *Domain;
    int64_t Slot;
    int64_t Amount;
  };

  /// Overflow storage for the inline containers below; reset() rewinds it
  /// after shrinking every container back to its inline buffer. Declared
  /// first so it outlives (constructs before) the containers bound to it.
  BumpArena Arena;

  InlineVec<Action, 8> Undos;
  InlineVec<Action, 4> CommitActions;
  InlineVec<ConflictDetector *, 4> Touched;
  HistoryList History;
  InlineVec<HeldLockRec, 16> HeldLocks;
  InlineVec<StripeMaskRec, 2> StripeMasks;
  InlineVec<PrivStateRec, 2> PrivStates;
  InlineVec<PrivDeltaRec, 8> PrivDeltas;
};

/// Draws a process-globally unique transaction id from a reserved high
/// range (ids >= 2^32). Conflict detectors key every lock, log entry and
/// stripe mask by TxId, so two live transactions sharing an id are treated
/// as one re-entrant transaction and sail straight through each other's
/// conflicts. Engines whose transactions can coexist with foreign ones on
/// shared structures (the Submitter; anything long-running) must allocate
/// here; per-run engines that own their structures for the run (Executor,
/// RoundExecutor) and hand-written test transactions keep the small-id
/// space below 2^32.
TxId allocTxId();

} // namespace comlat

#endif // COMLAT_RUNTIME_TRANSACTION_H
