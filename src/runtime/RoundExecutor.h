//===- runtime/RoundExecutor.h - ParaMeter-style profiling ------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the ParaMeter parallelism profiler the paper uses
/// for Table 1 ([16]: Kulkarni et al., "How much parallelism is there in
/// irregular applications?", PPoPP 2009). The model: unbounded processors,
/// unit-cost iterations, executed in rounds. Every round greedily runs a
/// maximal set of available iterations that are mutually non-conflicting
/// *according to the conflict-detection scheme under study*: iterations
/// execute one at a time but keep their locks/logs until the round ends, so
/// an iteration that conflicts with an earlier one in the same round is
/// rolled back and deferred. Work created by round R becomes available in
/// round R+1.
///
/// The number of rounds is the critical path length; committed iterations
/// divided by rounds is the average parallelism — the two quantities the
/// paper reports per application and scheme.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_ROUNDEXECUTOR_H
#define COMLAT_RUNTIME_ROUNDEXECUTOR_H

#include "runtime/Executor.h"

namespace comlat {

/// Round-model results share the executor's statistics vocabulary: a
/// conflict-induced deferral is an Aborted execution (with its cause
/// breakdown), Rounds is the critical path length, and parallelism() is
/// Table 1's average parallelism. Seconds stays zero — the model has no
/// meaningful wall clock.
using RoundStats = ExecStats;

/// Runs a worklist loop under the ParaMeter round model (sequentially, on
/// one thread; the rounds simulate unbounded processors).
class RoundExecutor {
public:
  using OperatorFn = Executor::OperatorFn;

  /// Applies \p Op to every item of \p Initial and all transitively created
  /// work, measuring rounds.
  ExecStats run(const std::vector<int64_t> &Initial, const OperatorFn &Op);

  /// Width-bounded variant: models \p Width processors running
  /// transactions in lockstep groups — at most Width transactions are
  /// simultaneously live, and all of a group's locks/logs are held until
  /// the group ends. The deferral (abort) ratio approximates the abort
  /// ratio of a Width-threaded machine (used for Table 2 on single-core
  /// hosts); Rounds counts groups, so parallelism() is capped by Width.
  ExecStats runBounded(const std::vector<int64_t> &Initial,
                       const OperatorFn &Op, unsigned Width);
};

} // namespace comlat

#endif // COMLAT_RUNTIME_ROUNDEXECUTOR_H
