//===- runtime/Submitter.h - Batch transaction submission -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-driven entry point into the speculative runtime. Where the
/// Executor drains a worklist it owns, the Submitter accepts externally
/// arriving transaction bodies (one per service request frame), runs each
/// on a persistent worker pool through the same conflict-detector path —
/// abort, undo, randomized backoff, retry — and reports the final outcome
/// through a per-submission completion callback. Three properties matter
/// to the serving layer built on top (src/svc):
///
///  * admission is bounded: trySubmit() refuses (returns false) when the
///    queue is full, so overload turns into BUSY shedding at the protocol
///    layer instead of unbounded memory growth;
///  * retries are invisible: the body re-runs from scratch on every
///    attempt and the completion fires exactly once, after the final
///    commit or terminal failure — a client never observes a speculative
///    attempt;
///  * the commit order is witnessed: every committed submission is stamped
///    with a global commit sequence number from inside commit(), before
///    its conflict detectors release. For any two conflicting submissions
///    the stamp order therefore agrees with the detector-enforced order,
///    so replaying committed bodies in stamp order is a serial execution
///    witness (the loopback oracle in tests/svc relies on this).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_SUBMITTER_H
#define COMLAT_RUNTIME_SUBMITTER_H

#include "runtime/Executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comlat {

/// Shapes one submitter: worker count, admission bound, retry policy.
struct SubmitterConfig {
  /// Worker threads executing submissions (>= 1).
  unsigned NumThreads = 4;
  /// Admission bound: trySubmit() refuses once this many submissions are
  /// queued (in-flight ones do not count; they already hold a worker).
  size_t QueueCapacity = 1024;
  /// Post-abort wait strategy (shared with the Executor).
  BackoffPolicy Backoff{};
  /// Attempts before a submission fails terminally (completion fires with
  /// Committed = false). 0 = retry until commit.
  unsigned MaxAttempts = 0;
  /// Enables per-transaction invocation recording (serializability tests).
  bool RecordHistories = false;
  /// Seeds the per-worker backoff RNG streams (see ExecutorConfig::Seed).
  uint64_t Seed = 0;
};

/// Final outcome of one submission, delivered to its completion callback.
struct SubmitOutcome {
  /// True when the body committed; false only under MaxAttempts.
  bool Committed = false;
  /// Aborted attempts before the final outcome.
  unsigned Aborts = 0;
  /// Cause of the last abort; meaningful when Aborts > 0.
  AbortCause LastCause = AbortCause::User;
  /// 1-based position in the submitter's global commit order (0 when not
  /// committed). Conflict-consistent: see the file comment.
  uint64_t CommitSeq = 0;
  /// Id of the transaction that reached the final outcome.
  TxId Tx = 0;
};

/// Accepts transaction bodies and executes each to a final outcome on a
/// persistent worker pool. Thread-safe: any thread may trySubmit().
class Submitter {
public:
  /// One submission: runs boosted calls against shared structures, checks
  /// Tx.failed() after each and returns promptly when set (the Executor's
  /// operator contract). Re-run from scratch on every attempt, so any
  /// result buffer it writes must be reset at body entry.
  using TxBody = std::function<void(Transaction &Tx)>;

  /// Invoked exactly once per accepted submission, on the worker thread
  /// that reached the final outcome. Must not block for long and must not
  /// call back into trySubmit() (worker threads are a bounded resource).
  using Completion = std::function<void(const SubmitOutcome &Outcome)>;

  /// Optional commit-sequence source, run inside the commit action (the
  /// transaction's conflict detectors are still held) in place of the
  /// internal counter. The durable service installs the WAL here so that
  /// assigning the sequence and enqueuing the log record happen atomically
  /// — log order then extends the detector-enforced order (svc/Wal.h).
  using StampFn = std::function<uint64_t()>;

  explicit Submitter(const SubmitterConfig &Config);

  /// Drains and joins the workers.
  ~Submitter();

  Submitter(const Submitter &) = delete;
  Submitter &operator=(const Submitter &) = delete;

  /// Queues \p Body for execution; \p Done fires after its final outcome.
  /// \p TraceTag labels the submission's trace events (the service layer
  /// passes the request id). \p Stamp, when set, replaces the internal
  /// commit-sequence counter for this submission (see StampFn). Returns
  /// false — and runs no callback — when the queue is at capacity or the
  /// submitter is draining.
  bool trySubmit(TxBody Body, Completion Done, int64_t TraceTag = 0,
                 StampFn Stamp = {});

  /// Stops admission, waits until every already-accepted submission has
  /// completed (resuming paused workers if necessary), then stops the
  /// workers. Idempotent; called by the destructor.
  void drain();

  /// Test/drain coordination: stops workers from starting new submissions
  /// (in-flight ones finish). Queued submissions stay queued, so a paused
  /// submitter with a full queue deterministically sheds — the BUSY-path
  /// tests rely on this.
  void pause();

  /// Releases pause().
  void resume();

  /// Currently queued (not yet started) submissions.
  size_t queueDepth() const;

  /// Accepted submissions that have not yet completed (queued + running).
  size_t inFlight() const { return Pending.load(std::memory_order_acquire); }

  const SubmitterConfig &config() const { return Config; }

private:
  struct Submission {
    TxBody Body;
    Completion Done;
    int64_t TraceTag = 0;
    StampFn Stamp;
  };

  void workerMain(unsigned Worker);

  SubmitterConfig Config;
  mutable std::mutex M;
  std::condition_variable WorkCV;  // queued work or state change
  std::condition_variable IdleCV;  // completion / drain progress
  std::deque<Submission> Queue;    // guarded by M
  bool Draining = false;           // guarded by M
  bool Stopping = false;           // guarded by M
  bool Paused = false;             // guarded by M
  std::atomic<size_t> Pending{0};
  std::atomic<uint64_t> NextCommitSeq{1};
  std::vector<std::thread> Workers;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_SUBMITTER_H
