//===- runtime/SerialChecker.cpp - Serializability oracle ------------------===//

#include "runtime/SerialChecker.h"

#include <algorithm>
#include <numeric>

using namespace comlat;

Replayer::~Replayer() = default;

TxTrace comlat::traceOf(const Transaction &Tx, TxId Id) {
  TxTrace Trace;
  Trace.Id = Id;
  Trace.Invocations.assign(Tx.history().begin(), Tx.history().end());
  return Trace;
}

static bool replayInOrder(
    const std::vector<TxTrace> &Traces, const std::vector<size_t> &Order,
    const std::function<std::unique_ptr<Replayer>()> &MakeReplayer,
    const std::string &ExpectedSignature) {
  const std::unique_ptr<Replayer> R = MakeReplayer();
  for (const size_t Index : Order) {
    for (const auto &[Tag, Inv] : Traces[Index].Invocations) {
      const Value Got = R->replay(Tag, Inv);
      if (Got != Inv.Ret)
        return false;
    }
  }
  if (!ExpectedSignature.empty() && R->stateSignature() != ExpectedSignature)
    return false;
  return true;
}

bool comlat::findSerialWitness(
    const std::vector<TxTrace> &Traces,
    const std::function<std::unique_ptr<Replayer>()> &MakeReplayer,
    const std::string &ExpectedSignature, std::vector<TxId> *Witness) {
  std::vector<size_t> Order(Traces.size());
  std::iota(Order.begin(), Order.end(), 0);
  // Enumerate permutations in by-id lexicographic order, starting from the
  // id-sorted sequence: the witness is typically the commit order or close
  // to it. The enumeration comparator must match the initial sort — with
  // the default (raw index) comparator, an id-sorted start that is not
  // also index-sorted would begin mid-sequence and silently skip every
  // permutation before it.
  const auto ById = [&Traces](size_t A, size_t B) {
    return Traces[A].Id < Traces[B].Id;
  };
  std::sort(Order.begin(), Order.end(), ById);
  do {
    if (replayInOrder(Traces, Order, MakeReplayer, ExpectedSignature)) {
      if (Witness) {
        Witness->clear();
        for (const size_t Index : Order)
          Witness->push_back(Traces[Index].Id);
      }
      return true;
    }
  } while (std::next_permutation(Order.begin(), Order.end(), ById));
  return false;
}
