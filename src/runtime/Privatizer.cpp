//===- runtime/Privatizer.cpp - Privatized commutative updates -------------===//

#include "runtime/Privatizer.h"

#include "obs/MetricsRegistry.h"

using namespace comlat;

/// One worker's replica: the coalesced deltas of transactions that
/// committed on this worker since the last merge. Mu covers Committed for
/// the publish/merge handoff; publishes are uncontended except while a
/// merge drains.
struct PrivDomain::Replica {
  std::mutex Mu;
  std::vector<std::pair<int64_t, int64_t>> Committed; // (Slot, Amount)
};

PrivDomain::PrivDomain(ApplyFn Apply, std::string Label)
    : Apply(std::move(Apply)), Label(std::move(Label)) {
  static std::atomic<uint64_t> NextSerial{1};
  Serial = NextSerial.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  OpsMetric = Reg.counter(obs::metricName("comlat_privatized_ops_total",
                                          {{"detector", this->Label}}));
  MergesMetric = Reg.counter(obs::metricName("comlat_privatized_merges_total",
                                             {{"detector", this->Label}}));
  MergedDeltasMetric = Reg.counter(obs::metricName(
      "comlat_privatized_merged_deltas_total", {{"detector", this->Label}}));
  FallbacksMetric = Reg.counter(obs::metricName(
      "comlat_privatized_fallbacks_total", {{"detector", this->Label}}));
  VetoesMetric = Reg.counter(obs::metricName("comlat_privatized_vetoes_total",
                                             {{"detector", this->Label}}));
  FlushesMetric = Reg.counter(obs::metricName(
      "comlat_privatized_flushes_total", {{"detector", this->Label}}));
}

PrivDomain::~PrivDomain() = default;

PrivDomain::Replica &PrivDomain::localReplica() {
  // Serial-keyed cache: one entry per (thread, domain) pair, linear scan
  // (a thread touches very few domains). Keying by serial rather than by
  // address keeps a recycled domain address from resurrecting a dead
  // replica pointer.
  struct CacheEntry {
    uint64_t Serial;
    Replica *R;
  };
  thread_local std::vector<CacheEntry> Cache;
  for (const CacheEntry &E : Cache)
    if (E.Serial == Serial)
      return *E.R;
  std::lock_guard<std::mutex> Guard(RepMu);
  Replicas.push_back(std::make_unique<Replica>());
  Replica *R = Replicas.back().get();
  Cache.push_back(CacheEntry{Serial, R});
  return *R;
}

bool PrivDomain::tryDivert(Transaction &Tx, int64_t Slot, int64_t Amount) {
  switch (Tx.privState(this)) {
  case Transaction::PrivState::Priv:
    break; // Already counted in the census.
  case Transaction::PrivState::Blocker:
    // Once a blocker, always a blocker: the master is merged and stays
    // authoritative for this transaction, so updates take the normal path.
    Fallbacks.fetch_add(1, std::memory_order_relaxed);
    FallbacksMetric->add();
    return false;
  case Transaction::PrivState::None: {
    uint64_t W = Census.load(std::memory_order_relaxed);
    for (;;) {
      if (liveBlockers(W) != 0) {
        // Blockers live: no new private deltas may be created (their
        // merges must stay complete). Run the update through the normal
        // admission path instead.
        Fallbacks.fetch_add(1, std::memory_order_relaxed);
        FallbacksMetric->add();
        return false;
      }
      if (Census.compare_exchange_weak(W, W + PrivOne,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed))
        break;
    }
    Tx.setPrivState(this, Transaction::PrivState::Priv);
    break;
  }
  }
  Tx.addPrivDelta(this, Slot, Amount);
  Diverted.fetch_add(1, std::memory_order_relaxed);
  OpsMetric->add();
  return true;
}

PrivDomain::BlockOutcome PrivDomain::enterBlocker(Transaction &Tx) {
  switch (Tx.privState(this)) {
  case Transaction::PrivState::Blocker:
    // No merge needed: while any blocker lives the priv census stays
    // empty, so nothing can have been published since this transaction's
    // own entry merge.
    return BlockOutcome::AlreadyBlocker;
  case Transaction::PrivState::None: {
    uint64_t W = Census.load(std::memory_order_relaxed);
    for (;;) {
      if (livePriv(W) != 0) {
        Vetoes.fetch_add(1, std::memory_order_relaxed);
        VetoesMetric->add();
        return BlockOutcome::Veto;
      }
      if (Census.compare_exchange_weak(W, W + BlockOne,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed))
        break;
    }
    Tx.setPrivState(this, Transaction::PrivState::Blocker);
    merge();
    return BlockOutcome::Entered;
  }
  case Transaction::PrivState::Priv: {
    // Self-upgrade: sound only when this transaction is the whole priv
    // census — its own unpublished deltas are about to be flushed through
    // the admission path; anyone else's would be invisible to the merge.
    uint64_t Expect = PrivOne;
    if (!Census.compare_exchange_strong(Expect, BlockOne,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      Vetoes.fetch_add(1, std::memory_order_relaxed);
      VetoesMetric->add();
      return BlockOutcome::Veto;
    }
    Tx.setPrivState(this, Transaction::PrivState::Blocker);
    merge();
    return BlockOutcome::NeedsFlush;
  }
  }
  COMLAT_UNREACHABLE("bad priv state");
}

void PrivDomain::publish(Transaction &Tx) {
  Replica &R = localReplica();
  std::lock_guard<std::mutex> Guard(R.Mu);
  Tx.consumePrivDeltas(this, [&R](int64_t Slot, int64_t Amount) {
    for (std::pair<int64_t, int64_t> &E : R.Committed)
      if (E.first == Slot) {
        E.second += Amount;
        return;
      }
    R.Committed.emplace_back(Slot, Amount);
  });
}

void PrivDomain::release(Transaction &Tx, bool Committed) {
  switch (Tx.takePrivState(this)) {
  case Transaction::PrivState::None:
    return;
  case Transaction::PrivState::Priv:
    if (Committed)
      publish(Tx);
    else
      Tx.consumePrivDeltas(this, [](int64_t, int64_t) {}); // Drop.
    // Leave the census only after the publish: a blocker that observes an
    // empty priv census must see every committed delta in the replicas.
    Census.fetch_sub(PrivOne, std::memory_order_release);
    return;
  case Transaction::PrivState::Blocker:
    // Flushed deltas (self-upgrade) went through the admission path; any
    // residue would mean the flush was interrupted by a veto — the abort
    // already undid the flushed prefix, so dropping is correct.
    Tx.consumePrivDeltas(this, [](int64_t, int64_t) {});
    Census.fetch_sub(BlockOne, std::memory_order_release);
    return;
  }
  COMLAT_UNREACHABLE("bad priv state");
}

void PrivDomain::merge() {
  std::lock_guard<std::mutex> MergeGuard(MergeMu);
  MergeCount.fetch_add(1, std::memory_order_relaxed);
  MergesMetric->add();
  MergeScratch.clear();
  {
    std::lock_guard<std::mutex> RepGuard(RepMu);
    for (const std::unique_ptr<Replica> &R : Replicas) {
      std::lock_guard<std::mutex> Guard(R->Mu);
      for (const std::pair<int64_t, int64_t> &E : R->Committed)
        MergeScratch.push_back(E);
      R->Committed.clear(); // Keeps capacity for the next epoch.
    }
  }
  // Application stays under MergeMu: a concurrent blocker waits above
  // until the master is complete.
  for (const std::pair<int64_t, int64_t> &E : MergeScratch)
    Apply(E.first, E.second);
  if (!MergeScratch.empty())
    MergedDeltasMetric->add(MergeScratch.size());
  MergeScratch.clear();
}

void PrivDomain::noteFlush(uint64_t N) {
  if (N)
    FlushesMetric->add(N);
}

std::pair<uint32_t, uint32_t> PrivDomain::census() const {
  const uint64_t W = Census.load(std::memory_order_relaxed);
  return {livePriv(W), liveBlockers(W)};
}
