//===- runtime/Interleaver.h - Deterministic concurrency testing -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic step scheduler for testing the conflict-detection
/// schemes. Real threads on one core rarely overlap, so the tests instead
/// build explicit transaction scripts (sequences of boosted calls) and run
/// them step-interleaved under a chosen schedule. Because the paper's
/// serializability argument (§2.1, Appendix A) quantifies over all
/// interleavings of method invocations, exhaustively enumerating schedules
/// for small scripts exercises exactly the space the theorem covers.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_INTERLEAVER_H
#define COMLAT_RUNTIME_INTERLEAVER_H

#include "runtime/Transaction.h"

#include <functional>
#include <memory>
#include <vector>

namespace comlat {

/// One transaction script: an ordered list of boosted-call steps.
struct TxScript {
  std::vector<std::function<void(Transaction &)>> Steps;
};

/// Result of one interleaved run.
struct InterleaveOutcome {
  /// Per script: true if its transaction committed, false if it aborted.
  std::vector<bool> Committed;
  /// The transactions, for inspecting recorded histories. Index-aligned
  /// with the scripts.
  std::vector<std::unique_ptr<Transaction>> Txs;

  unsigned numCommitted() const {
    unsigned N = 0;
    for (const bool C : Committed)
      N += C;
    return N;
  }
};

/// Runs \p Scripts step-interleaved under \p Schedule: each entry names the
/// script whose next step runs. A script whose transaction failed aborts
/// immediately and its remaining schedule slots are skipped; a script
/// commits right after its last step. \p Schedule must contain each script
/// index exactly as many times as the script has steps. No retries: an
/// aborted script stays aborted (tests inspect the committed subset).
InterleaveOutcome runInterleaved(const std::vector<TxScript> &Scripts,
                                 const std::vector<unsigned> &Schedule,
                                 bool RecordHistories = true);

/// Enumerates schedules (multiset permutations of script indices, script I
/// appearing Counts[I] times), up to \p Limit schedules. Deterministic
/// lexicographic order; Limit = 0 means all.
std::vector<std::vector<unsigned>>
enumerateSchedules(const std::vector<unsigned> &Counts, size_t Limit = 0);

} // namespace comlat

#endif // COMLAT_RUNTIME_INTERLEAVER_H
