//===- runtime/LockScheme.h - Lock schemes from SIMPLE specs ----*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The systematic abstract-locking construction of §3.2. Given a SIMPLE
/// commutativity specification, the builder:
///
///  1. defines the abstract locks and their modes: one mode per method for
///     the whole-structure lock (`m:ds`), plus one mode per argument slot
///     (`m:arg_i`) and per return value (`m:ret`);
///  2. decides which locks each method acquires: the structure lock and the
///     argument locks before executing, the return-value lock after;
///  3. derives the mode-compatibility matrix from the specification:
///     - f_{m1,m2} = false       -> m1:ds incompatible with m2:ds,
///     - each conjunct k(x)!=k(y) -> mode of x incompatible with mode of y
///       (acquired on the key k(value), so equal keys collide),
///     - everything else is compatible (rule 3);
///
/// and then removes superfluous modes (compatible with every mode) together
/// with their acquisitions — the reduction that turns Fig. 8(a) into
/// Fig. 8(b) for the accumulator. By Theorem 1 the resulting scheme is a
/// sound and complete implementation of the specification.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_LOCKSCHEME_H
#define COMLAT_RUNTIME_LOCKSCHEME_H

#include "core/CondIR.h"
#include "core/Spec.h"
#include "runtime/LockTable.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace comlat {

/// One lock acquisition a method performs.
struct LockAcquisition {
  ModeId Mode;
  /// True: the whole-structure lock. False: a data-member lock keyed by the
  /// slot's value (optionally mapped through KeyFn).
  bool OnStructure = false;
  /// Slot supplying the key (ignored for structure locks).
  bool IsRet = false;
  unsigned ArgIndex = 0;
  /// Key space / key function: locks on k(x) live in key space k.
  std::optional<StateFnId> KeyFn;
  /// Compiled key expression (`x` or `k(x)` with the slot pre-bound as a
  /// first-invocation frame load); the lock manager evaluates this instead
  /// of re-deriving the slot and key function per acquisition. Null for
  /// structure locks.
  std::shared_ptr<const CondProgram> KeyProg;
};

/// The generated locking scheme for one data type.
class LockScheme {
public:
  /// Runs the construction algorithm. Aborts if \p Spec is not SIMPLE
  /// (Theorem 1: no sound and complete abstract locking scheme exists).
  explicit LockScheme(const CommSpec &Spec);

  const DataTypeSig &sig() const { return *Sig; }

  unsigned numModes() const { return static_cast<unsigned>(Names.size()); }
  const std::string &modeName(ModeId M) const { return Names[M]; }
  const CompatMatrix &compat() const { return Compat; }

  /// The structure-lock mode of a method (always defined, pre-reduction).
  ModeId structureMode(MethodId M) const { return StructureModes[M]; }

  /// Acquisitions performed when invoking \p M, before execution
  /// (post-reduction: superfluous ones removed).
  const std::vector<LockAcquisition> &preAcquires(MethodId M) const {
    return Pre[M];
  }

  /// Acquisitions performed after \p M returns (return-value locks).
  const std::vector<LockAcquisition> &postAcquires(MethodId M) const {
    return Post[M];
  }

  /// True when the reduction removed mode \p M entirely.
  bool modeReduced(ModeId M) const { return Reduced[M]; }

  /// The divert hook for privatized commutative-update coalescing: bit M
  /// set when the classification marked method M privatizable (mutating,
  /// no return value, unconditionally commutes with itself and with every
  /// other privatizable method). Boosted wrappers may route such updates
  /// to a per-worker replica (runtime/Privatizer.h) instead of acquiring
  /// any abstract lock; for the accumulator this is exactly `increment`.
  uint64_t privatizableMask() const { return PrivatizableMask; }

  /// Convenience form of the divert hook for one method.
  bool privatizable(MethodId M) const {
    return (PrivatizableMask >> M) & 1;
  }

  /// The compiled condition for the ordered pair (the mode-selection
  /// clauses the matrix was derived from; diagnostics, tests, and the
  /// validator's differential mode).
  const CondProgram &pairProgram(MethodId First, MethodId Second) const {
    return PairProgs[First][Second];
  }

  /// Renders the compatibility matrix as in Fig. 8 of the paper; with
  /// \p IncludeReduced the full matrix (a), otherwise the reduced one (b).
  std::string matrixStr(bool IncludeReduced) const;

private:
  const DataTypeSig *Sig;
  std::vector<std::string> Names;
  CompatMatrix Compat;
  std::vector<ModeId> StructureModes;
  std::vector<std::vector<LockAcquisition>> Pre;
  std::vector<std::vector<LockAcquisition>> Post;
  std::vector<uint8_t> Reduced;
  std::vector<std::vector<CondProgram>> PairProgs; // [first][second]
  uint64_t PrivatizableMask = 0;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_LOCKSCHEME_H
