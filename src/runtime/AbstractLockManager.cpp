//===- runtime/AbstractLockManager.cpp - Lock-based conflicts --------------===//

#include "runtime/AbstractLockManager.h"

using namespace comlat;

AbstractLockManager::AbstractLockManager(const LockScheme *Scheme,
                                         std::string Label, KeyEvalFn KeyEval)
    : Scheme(Scheme), Label(std::move(Label)), KeyEval(std::move(KeyEval)) {
  assert(Scheme && "manager requires a scheme");
}

bool AbstractLockManager::acquireList(Transaction &Tx,
                                      const std::vector<LockAcquisition> &List,
                                      const std::vector<Value> &Args,
                                      const Value *Ret) {
  for (const LockAcquisition &Acq : List) {
    AbstractLock *Lock;
    if (Acq.OnStructure) {
      Lock = &StructureLock;
    } else {
      Value Key;
      if (Acq.IsRet) {
        assert(Ret && "return-value lock requested before execution");
        Key = *Ret;
      } else {
        assert(Acq.ArgIndex < Args.size() && "argument index out of range");
        Key = Args[Acq.ArgIndex];
      }
      uint32_t Space = LockTable::PlainSpace;
      if (Acq.KeyFn) {
        assert(KeyEval && "keyed clause but no key evaluator bound");
        Key = KeyEval(*Acq.KeyFn, Key);
        Space = *Acq.KeyFn;
      }
      Lock = Table.lockFor(Space, Key);
    }
    Acquires.fetch_add(1, std::memory_order_relaxed);
    if (!Lock->tryAcquire(Tx.id(), Acq.Mode, Scheme->compat())) {
      Conflicts.fetch_add(1, std::memory_order_relaxed);
      Tx.fail(AbortCause::LockConflict);
      return false;
    }
    {
      std::lock_guard<std::mutex> Guard(HeldMutex);
      Held[Tx.id()].push_back(Lock);
    }
  }
  return true;
}

bool AbstractLockManager::acquirePre(Transaction &Tx, MethodId M,
                                     const std::vector<Value> &Args) {
  Tx.touch(this);
  return acquireList(Tx, Scheme->preAcquires(M), Args, nullptr);
}

bool AbstractLockManager::acquirePost(Transaction &Tx, MethodId M,
                                      const std::vector<Value> &Args,
                                      const Value &Ret) {
  Tx.touch(this);
  return acquireList(Tx, Scheme->postAcquires(M), Args, &Ret);
}

void AbstractLockManager::release(Transaction &Tx, bool Committed) {
  std::vector<AbstractLock *> Locks;
  {
    std::lock_guard<std::mutex> Guard(HeldMutex);
    const auto It = Held.find(Tx.id());
    if (It == Held.end())
      return;
    Locks = std::move(It->second);
    Held.erase(It);
  }
  for (AbstractLock *Lock : Locks)
    Lock->releaseAll(Tx.id());
}
