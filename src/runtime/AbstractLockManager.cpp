//===- runtime/AbstractLockManager.cpp - Lock-based conflicts --------------===//

#include "runtime/AbstractLockManager.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"

using namespace comlat;

AbstractLockManager::AbstractLockManager(const LockScheme *Scheme,
                                         std::string Label, KeyEvalFn KeyEval)
    : Scheme(Scheme), Label(std::move(Label)), KeyEval(std::move(KeyEval)) {
  assert(Scheme && "manager requires a scheme");
  // Observability registration, all off the hot path: intern the trace
  // label and pre-resolve one conflict counter per incompatible mode pair,
  // so an abort can always name the exact held/requested pair that caused
  // it (the lattice construction's modes are the paper's vocabulary for
  // "why did these two invocations not commute").
  obs::TraceSession &Session = obs::TraceSession::global();
  ObsLabel = Session.internLabel(this->Label, "lock");
  const CompatMatrix &Compat = Scheme->compat();
  const unsigned NumModes = Scheme->numModes();
  PairConflicts.assign(NumModes, std::vector<obs::Counter *>(NumModes));
  for (ModeId Held = 0; Held != NumModes; ++Held)
    for (ModeId Req = 0; Req != NumModes; ++Req) {
      if (Compat[Held][Req])
        continue;
      PairConflicts[Held][Req] = obs::MetricsRegistry::global().counter(
          obs::metricName("comlat_lock_conflicts_total",
                          {{"detector", this->Label},
                           {"held", Scheme->modeName(Held)},
                           {"req", Scheme->modeName(Req)}}));
      Session.describeDetail(ObsLabel, obs::packPair(Held, Req),
                             Scheme->modeName(Held) + " vs " +
                                 Scheme->modeName(Req));
    }
}

namespace {

/// Resolves the (pure) key-function applies of compiled key expressions
/// through the manager's KeyEvalFn. SIMPLE clauses only ever key through
/// unary pure functions, so the adapter forwards the single argument.
class KeyFnResolver : public ApplyResolver {
public:
  explicit KeyFnResolver(const AbstractLockManager::KeyEvalFn &KeyEval)
      : KeyEval(KeyEval) {}

  Value resolveApply(const Term &Apply, ValueSpan EvaledArgs) override {
    assert(Apply.State == StateRef::None &&
           "lock key expressions never read abstract state");
    assert(EvaledArgs.size() == 1 && "key functions are unary");
    assert(KeyEval && "keyed clause but no key evaluator bound");
    return KeyEval(Apply.Fn, EvaledArgs[0]);
  }

private:
  const AbstractLockManager::KeyEvalFn &KeyEval;
};

} // namespace

bool AbstractLockManager::acquireList(Transaction &Tx,
                                      const std::vector<LockAcquisition> &List,
                                      ValueSpan Args, const Value *Ret) {
  for (const LockAcquisition &Acq : List) {
    AbstractLock *Lock;
    if (Acq.OnStructure) {
      Lock = &StructureLock;
    } else {
      // Evaluate the compiled key expression (`x` or `k(x)` over the
      // invocation's frame). The evaluator asserts that a ret-slot program
      // only runs once the return value is bound.
      assert(Acq.KeyProg && "data-member acquisition without a key program");
      CondProgram::Inputs In;
      In.Inv1 = CondProgram::Frame(Args.data(),
                                   static_cast<uint32_t>(Args.size()), Ret);
      KeyFnResolver Resolver(KeyEval);
      In.Resolver = &Resolver;
      const Value Key = Acq.KeyProg->eval(In);
      const uint32_t Space = Acq.KeyFn ? *Acq.KeyFn : LockTable::PlainSpace;
      Lock = Table.lockFor(Space, Key);
    }
    Acquires.fetch_add(1, std::memory_order_relaxed);
    ModeId Blocking = 0;
    bool WasHeld = false;
    if (!Lock->tryAcquire(Tx.id(), Acq.Mode, Scheme->compat(), &Blocking,
                          &WasHeld)) {
      Conflicts.fetch_add(1, std::memory_order_relaxed);
      const uint32_t Detail = obs::packPair(Blocking, Acq.Mode);
      PairConflicts[Blocking][Acq.Mode]->add();
      COMLAT_TRACE(obs::EventKind::LockConflict, Tx.id(), 0, Detail,
                   ObsLabel);
      Tx.fail(AbortCause::LockConflict, Detail, ObsLabel);
      return false;
    }
    COMLAT_TRACE(WasHeld ? obs::EventKind::LockUpgrade
                         : obs::EventKind::LockAcquire,
                 Tx.id(), 0, Acq.Mode, ObsLabel);
    // Record only first acquisitions: releaseAll drops every mode at once,
    // so one record per (transaction, lock) suffices and the holder list
    // stays within the transaction's inline buffer.
    if (!WasHeld)
      Tx.noteHeldLock(this, Lock);
  }
  return true;
}

bool AbstractLockManager::acquirePre(Transaction &Tx, MethodId M,
                                     ValueSpan Args) {
  Tx.touch(this);
  return acquireList(Tx, Scheme->preAcquires(M), Args, nullptr);
}

bool AbstractLockManager::acquirePost(Transaction &Tx, MethodId M,
                                      ValueSpan Args, const Value &Ret) {
  Tx.touch(this);
  return acquireList(Tx, Scheme->postAcquires(M), Args, &Ret);
}

void AbstractLockManager::release(Transaction &Tx, bool Committed) {
  Tx.consumeHeldLocks(this, [&](AbstractLock *Lock) {
    Lock->releaseAll(Tx.id());
  });
}
