//===- runtime/ExecStats.h - Unified execution statistics -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistics vocabulary shared by every execution engine: the real
/// speculative Executor, the ParaMeter RoundExecutor, and the benchmark
/// harnesses that aggregate their results. One struct carries the counters
/// of both engines (the ParaMeter-only fields are zero on real runs and
/// vice versa), so Table 1/2 and Fig. 10-12 drivers format and merge rows
/// through one API instead of hand-rolling per-bench aggregation.
///
/// Per-worker instances are written without synchronization by their
/// owning thread and merged by the executor only at quiescence (after the
/// termination barrier), so no field needs to be atomic.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_EXECSTATS_H
#define COMLAT_RUNTIME_EXECSTATS_H

#include <cstdint>
#include <string>

namespace comlat {

namespace obs {
class Counter;
class Histogram;
} // namespace obs

/// Why a speculative iteration aborted. Detectors pass their cause to
/// Transaction::fail(); operator code calling fail() directly is a user
/// abort.
enum class AbortCause : unsigned {
  /// An abstract/memory-level lock was held in an incompatible mode
  /// (abstract locking schemes, OwnerLocks, the STM baseline).
  LockConflict,
  /// A gatekeeper judged the invocation non-commuting with an active one
  /// (forward/general gatekeeping, adaptive-set drain refusals).
  Gatekeeper,
  /// The operator itself requested the retry.
  User,
};

inline constexpr unsigned NumAbortCauses = 3;

/// Short stable label ("lock", "gatekeeper", "user") for reports.
const char *abortCauseName(AbortCause Cause);

/// Power-of-two-bucketed latency histogram (microseconds). Bucket B counts
/// samples in [2^B, 2^(B+1)) us, with bucket 0 holding everything below
/// 2 us; the last bucket is open-ended.
struct LatencyHistogram {
  static constexpr unsigned NumBuckets = 24; // covers up to ~2^23 us (~8 s)

  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t TotalMicros = 0;

  void addMicros(uint64_t Micros);
  void merge(const LatencyHistogram &Other);

  double meanMicros() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(TotalMicros) /
                            static_cast<double>(Count);
  }

  /// Upper bound of the bucket containing quantile \p Q in [0, 1]
  /// (e.g. 0.99); zero when empty.
  uint64_t quantileUpperBoundMicros(double Q) const;
};

/// Outcome statistics of one execution — real (Executor) or modelled
/// (RoundExecutor). Also the unit of aggregation: benches merge() repeated
/// trials and emit CSV/JSON rows from the merged value.
struct ExecStats {
  /// Committed iterations (both engines).
  uint64_t Committed = 0;
  /// Aborted/deferred iteration executions (an item may abort repeatedly).
  uint64_t Aborted = 0;
  /// Aborts broken down by AbortCause; sums to Aborted.
  uint64_t AbortsByCause[NumAbortCauses] = {};
  /// Chunks stolen from another worker's deque (ChunkedStealing only).
  uint64_t Steals = 0;
  /// Pop attempts that found no work anywhere (scheduler idle pressure).
  uint64_t EmptyPops = 0;
  /// Microseconds spent sleeping in post-abort backoff.
  uint64_t BackoffMicros = 0;
  /// ParaMeter only: number of rounds = critical path length (Table 1).
  /// Zero for real executions.
  uint64_t Rounds = 0;
  /// Wall-clock seconds (real executions; zero for the round model).
  double Seconds = 0;
  /// Latency from transaction start to commit, committed iterations only.
  LatencyHistogram CommitLatency;

  /// Fraction of iteration executions that aborted (the paper's "Abort
  /// Ratio %", Table 2, is this times 100). For round-model runs the
  /// deferral ratio plays the same role.
  double abortRatio() const {
    const uint64_t Total = Committed + Aborted;
    return Total == 0 ? 0.0 : static_cast<double>(Aborted) / Total;
  }

  /// Average parallelism of Table 1 (round-model runs only).
  double parallelism() const {
    return Rounds == 0 ? 0.0
                       : static_cast<double>(Committed) /
                             static_cast<double>(Rounds);
  }

  uint64_t abortsByCause(AbortCause Cause) const {
    return AbortsByCause[static_cast<unsigned>(Cause)];
  }

  /// Folds \p Other into this: counters add, Rounds takes the max (the
  /// critical path of a merged run is the longest constituent path),
  /// Seconds takes the max (workers run concurrently). Used both for
  /// per-worker merging at quiescence and for cross-trial aggregation.
  ExecStats &merge(const ExecStats &Other);

  /// The counter-wise difference After - Before (Rounds and Seconds are
  /// zeroed: they are set by the engine, not differenced). This is how an
  /// engine turns two registry snapshots into one run's statistics.
  static ExecStats delta(const ExecStats &Before, const ExecStats &After);

  /// Column names matching toCsvRow(), comma-separated.
  static std::string csvHeader();

  /// One CSV row of every counter (no trailing newline).
  std::string toCsvRow() const;

  /// A JSON object of every counter including the latency histogram.
  std::string toJson() const;
};

/// The registry-backed home of the execution counters. Both engines (the
/// speculative Executor and the ParaMeter RoundExecutor) count into these
/// sharded cells on the hot path; an ExecStats is merely a snapshot view —
/// engines snapshot() before and after a run and report the delta, so the
/// same numbers serve the benches (per-run ExecStats rows) and the
/// always-on exporters (cumulative Prometheus/JSON dumps) without
/// double bookkeeping.
struct ExecMetrics {
  obs::Counter *Committed;
  obs::Counter *Aborted;
  obs::Counter *AbortsByCause[NumAbortCauses];
  obs::Counter *Steals;
  obs::Counter *EmptyPops;
  obs::Counter *BackoffMicros;
  obs::Histogram *CommitLatencyUs;

  /// The comlat_* metrics in the process-wide registry.
  static ExecMetrics &global();

  /// Merged read of the current totals.
  ExecStats snapshot() const;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_EXECSTATS_H
