//===- runtime/Worklist.cpp - Shared worklist for speculative loops --------===//

#include "runtime/Worklist.h"

using namespace comlat;

WorkSink::~WorkSink() = default;

Worklist::Worklist(std::vector<int64_t> Initial)
    : Items(Initial.begin(), Initial.end()) {}

void Worklist::push(int64_t Item) {
  std::lock_guard<std::mutex> Guard(M);
  Items.push_back(Item);
}

std::optional<int64_t> Worklist::tryPop() {
  std::lock_guard<std::mutex> Guard(M);
  if (Items.empty())
    return std::nullopt;
  const int64_t Item = Items.front();
  Items.pop_front();
  return Item;
}

size_t Worklist::size() const {
  std::lock_guard<std::mutex> Guard(M);
  return Items.size();
}
