//===- runtime/WorklistPolicy.h - Scheduler policies ------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worklist scheduling policies for the speculative executor. The paper's
/// speedups assume the Galois scheduler itself scales; a single mutex-
/// protected deque serializes every pop/push and becomes the bottleneck
/// before conflict detection does. Policies:
///
///   * ChunkedStealing — per-worker chunked FIFO deques. A worker pushes
///     into a private fill chunk (no synchronization); full chunks spill
///     onto a per-worker lightly-locked shelf from which idle workers
///     steal whole chunks. This is the classic Galois "chunked" design:
///     the only contended operation is a chunk handoff every ChunkSize
///     items. Order within a worker is FIFO (drain chunk front-to-back,
///     shelf oldest-first, fill chunk last) — a deliberate choice over
///     LIFO: operators that defer an item by re-pushing it ("retry after
///     someone else made progress", e.g. clustering's mutual-nearest
///     check) livelock under LIFO, because the re-pushed item is the very
///     next pop and nothing has changed in between.
///
///   * GlobalFifo — the seed's single mutex-guarded FIFO, kept for
///     reproducibility runs (bit-for-bit identical scheduling on one
///     thread) and so benches can ablate scheduler cost against conflict-
///     detection cost.
///
/// Either policy is driven through the WorkScheduler interface; the
/// executor remains policy-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_WORKLISTPOLICY_H
#define COMLAT_RUNTIME_WORKLISTPOLICY_H

#include "runtime/ExecStats.h"
#include "runtime/Worklist.h"

#include <atomic>
#include <memory>

namespace comlat {

/// Which scheduler backs Executor::run.
enum class WorklistPolicy {
  /// Per-worker chunked FIFO deques with chunk stealing (default).
  ChunkedStealing,
  /// One global mutex-guarded FIFO: the seed scheduler, for
  /// reproducibility and scheduler-cost ablations.
  GlobalFifo,
};

/// Stable name ("chunked" / "fifo") for reports and flags.
const char *worklistPolicyName(WorklistPolicy Policy);

/// Parses a policy name as accepted on bench command lines
/// ("chunked"/"stealing" or "fifo"/"global"); returns false on junk.
bool parseWorklistPolicy(const std::string &Name, WorklistPolicy &Out);

/// The executor-facing scheduler: per-worker push/pop over whichever
/// policy is active. Pop failures mean "no work anywhere right now", not
/// termination — the executor's termination barrier decides that.
class WorkScheduler {
public:
  virtual ~WorkScheduler();

  /// Makes \p Item runnable; called by worker \p Worker (commit-time
  /// pushes, abort re-pushes) or by the seeding loop before workers start.
  virtual void push(unsigned Worker, int64_t Item) = 0;

  /// Takes one item for \p Worker, preferring local work and stealing
  /// otherwise. A steal bumps the global steals counter
  /// (ExecMetrics::global().Steals) and emits an ItemSteal trace event.
  virtual std::optional<int64_t> tryPop(unsigned Worker) = 0;

  /// True when no item is queued anywhere (items claimed by running
  /// iterations are not queued; the termination barrier accounts for
  /// those separately).
  virtual bool empty() const = 0;
};

/// Per-worker chunked FIFO deques with chunk stealing. Exposed (rather
/// than private to the executor) so scheduler invariants are unit-testable
/// in isolation.
class ChunkedWorklist : public WorkScheduler {
public:
  static constexpr unsigned DefaultChunkSize = 64;

  explicit ChunkedWorklist(unsigned NumWorkers,
                           unsigned ChunkSize = DefaultChunkSize);
  ~ChunkedWorklist() override;

  void push(unsigned Worker, int64_t Item) override;
  std::optional<int64_t> tryPop(unsigned Worker) override;
  bool empty() const override {
    return Pending.load(std::memory_order_acquire) == 0;
  }

  /// Queued items across all workers (exact: maintained atomically).
  size_t size() const { return Pending.load(std::memory_order_acquire); }

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }
  unsigned chunkSize() const { return ChunkCapacity; }

  /// Full chunks currently shelved by \p Worker (test introspection).
  size_t shelvedChunks(unsigned Worker) const;

private:
  struct PerWorker;

  const unsigned ChunkCapacity;
  /// Total queued items; the executor's termination check requires this to
  /// never undercount (an item is counted from before its push returns
  /// until a tryPop hands it out).
  std::atomic<size_t> Pending{0};
  std::vector<std::unique_ptr<PerWorker>> Workers;
};

/// Builds the scheduler for \p Policy. GlobalFifo wraps \p Seed in place
/// (preserving its FIFO order exactly); ChunkedStealing drains \p Seed
/// round-robin across the per-worker deques.
std::unique_ptr<WorkScheduler> makeWorkScheduler(WorklistPolicy Policy,
                                                 Worklist &Seed,
                                                 unsigned NumWorkers,
                                                 unsigned ChunkSize);

} // namespace comlat

#endif // COMLAT_RUNTIME_WORKLISTPOLICY_H
