//===- runtime/SerialChecker.h - Serializability oracle ---------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An end-to-end oracle for the paper's central safety claim (Theorem 2,
/// Appendix A): if a conflict detector admits a set of concurrently
/// committed transactions, there exists an equivalent serial order — one in
/// which every method invocation returns the same value and the final
/// abstract state matches. The checker brute-forces witness orders over the
/// committed transactions by replaying their recorded invocation histories
/// on fresh structures; feasible because test scenarios keep the number of
/// transactions small.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_SERIALCHECKER_H
#define COMLAT_RUNTIME_SERIALCHECKER_H

#include "runtime/Transaction.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace comlat {

/// Replays invocation histories against fresh structure instances.
class Replayer {
public:
  virtual ~Replayer();

  /// Executes \p Inv.Method with \p Inv.Args on the structure identified by
  /// \p StructureTag and returns the result (sequentially, no concurrency
  /// control).
  virtual Value replay(uintptr_t StructureTag, const Invocation &Inv) = 0;

  /// A canonical fingerprint of the abstract state of all structures, for
  /// final-state comparison. Return an empty string to skip the check.
  virtual std::string stateSignature() = 0;
};

/// One committed transaction's history.
struct TxTrace {
  TxId Id = 0;
  std::vector<std::pair<uintptr_t, Invocation>> Invocations;
};

/// Extracts traces from committed interleaver/executor transactions.
TxTrace traceOf(const Transaction &Tx, TxId Id);

/// Searches for a serial witness order of \p Traces: a permutation whose
/// sequential replay (via fresh replayers from \p MakeReplayer) reproduces
/// every recorded return value and, when \p ExpectedSignature is nonempty,
/// ends in a state with that signature. Returns true and fills \p Witness
/// (ids in serial order) on success. Cost is O(n! * work); keep n small.
bool findSerialWitness(
    const std::vector<TxTrace> &Traces,
    const std::function<std::unique_ptr<Replayer>()> &MakeReplayer,
    const std::string &ExpectedSignature, std::vector<TxId> *Witness = nullptr);

} // namespace comlat

#endif // COMLAT_RUNTIME_SERIALCHECKER_H
