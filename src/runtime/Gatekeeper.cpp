//===- runtime/Gatekeeper.cpp - Forward and general gatekeeping ------------===//

#include "runtime/Gatekeeper.h"
#include "core/Eval.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"

#include <algorithm>
#include <map>

using namespace comlat;

GateTarget::~GateTarget() = default;

unsigned comlat::gateStripeOf(const Value &Key) {
  // Equal keys must map to equal stripes, and Value equality compares Int
  // and Real numerically: hash integral reals as their integer.
  if (Key.isReal()) {
    const double D = Key.asReal();
    if (D >= -9.2e18 && D <= 9.2e18) {
      const int64_t I = static_cast<int64_t>(D);
      if (static_cast<double>(I) == D)
        return Value::integer(I).hash() % GateStripeCount;
    }
  }
  return Key.hash() % GateStripeCount;
}

/// True if the term transitively contains an application over s1.
static bool termTouchesS1(const TermPtr &T) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
  case Term::Kind::Const:
    return false;
  case Term::Kind::Apply:
    if (T->State == StateRef::S1)
      return true;
    for (const TermPtr &A : T->Args)
      if (termTouchesS1(A))
        return true;
    return false;
  case Term::Kind::Arith:
    return termTouchesS1(T->Lhs) || termTouchesS1(T->Rhs);
  }
  COMLAT_UNREACHABLE("bad term kind");
}

namespace comlat {

/// Resolves apply slots left unbound in compiled programs while the
/// current structure state is s2 of the arriving invocation (phases 1 and
/// 5). Logged s1-applications never get here — they are external slots —
/// so an s1-application means rollback evaluation (general gatekeeping
/// only); everything else (pure, or s2 == current state) evaluates live.
class GateLiveResolver : public ApplyResolver {
public:
  GateLiveResolver(Gatekeeper &GK, Gatekeeper::Stripe &S,
                   const Gatekeeper::ActiveInv *A)
      : GK(GK), S(S), A(A) {}

  Value resolveApply(const Term &Apply, ValueSpan Args) override {
    if (Apply.State == StateRef::S1) {
      assert(A && "s1-application with no first invocation");
      assert(GK.K == Gatekeeper::Kind::General &&
             "forward gatekeeper met an unlogged s1-application");
      return GK.rollbackEval(S, A->StartSeq, Apply.Fn, Args);
    }
    return GK.Target->gateEvalStateFn(Apply.Fn, Args);
  }

private:
  Gatekeeper &GK;
  Gatekeeper::Stripe &S;
  const Gatekeeper::ActiveInv *A;
};

/// Resolver for log-term evaluation at registration time: the invocation
/// being logged is the first invocation and the current state is (or, for
/// read-only methods, still equals) its s1, so everything evaluates live.
class GateLogResolver : public ApplyResolver {
public:
  explicit GateLogResolver(Gatekeeper &GK) : GK(GK) {}

  Value resolveApply(const Term &Apply, ValueSpan Args) override {
    assert(Apply.State != StateRef::S2 &&
           "loggable term may not reference s2");
    return GK.Target->gateEvalStateFn(Apply.Fn, Args);
  }

private:
  Gatekeeper &GK;
};

} // namespace comlat

Gatekeeper::Gatekeeper(Kind K, const CommSpec *Spec, GateTarget *Target,
                       std::string Label, bool Privatize)
    : K(K), Spec(Spec), Target(Target), Label(std::move(Label)) {
  assert(Spec && Target && "gatekeeper requires a spec and a target");
  assert(Spec->isComplete() && "specification must cover all method pairs");
  assert((!Privatize || K == Kind::Forward) &&
         "privatized coalescing requires a forward gatekeeper: merges are "
         "invisible to the general gatekeeper's rollback evaluation");
  const DataTypeSig &Sig = Spec->sig();
  const unsigned NumMethods = Sig.numMethods();
  obs::TraceSession &Session = obs::TraceSession::global();
  ObsLabel = Session.internLabel(this->Label, "gate");
  Plans.resize(NumMethods);
  LogPlans.resize(NumMethods);

  // Pass 1: pull the per-pair classification, harvest log terms, register
  // attribution. The classification precomputes per ordered pair the
  // oriented condition, its CommClass, and the striping metadata the
  // analysis below consumes.
  const SpecClassification &Class = Spec->classification();
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    Plans[M1].resize(NumMethods);
    for (MethodId M2 = 0; M2 != NumMethods; ++M2) {
      PairPlan &Plan = Plans[M1][M2];
      const PairClass &PC = Class.pair(M1, M2);
      Plan.F = PC.Cond;
      Plan.TriviallyTrue = PC.always();
      Plan.S2Applies = collectS2Applies(Plan.F);
      if (!Plan.TriviallyTrue) {
        // Abort attribution: a veto of this predicate names the ordered
        // method pair whose commutativity condition evaluated false.
        Plan.Vetoes = obs::MetricsRegistry::global().counter(
            obs::metricName("comlat_gate_vetoes_total",
                            {{"detector", this->Label},
                             {"first", Sig.method(M1).Name},
                             {"second", Sig.method(M2).Name}}));
        Session.describeDetail(ObsLabel, obs::packPair(M1, M2),
                               Sig.method(M1).Name + " vs " +
                                   Sig.method(M2).Name);
      }
      // Warm the structural-key caches while still single-threaded; the
      // hot path only reads them afterwards.
      Plan.F->key();
      if (K == Kind::Forward)
        assert(isOnlineCheckable(Plan.F) &&
               "forward gatekeeper requires an ONLINE-CHECKABLE spec "
               "(Def. 7); use a general gatekeeper");
      // Harvest C_{M1}: loggable primitive functions of the first method.
      std::map<std::string, bool> Seen;
      for (const LogTermPlan &Existing : LogPlans[M1])
        Seen.emplace(Existing.T->key(), true);
      for (const TermPtr &T : collectLoggableApplies(Plan.F)) {
        if (Seen.count(T->key()))
          continue;
        LogTermPlan LT;
        LT.T = T;
        LT.NeedsRet = termMentionsRet(T, InvIndex::Inv1);
        assert(!(LT.NeedsRet && Sig.method(M1).Mutating &&
                 termTouchesS1(T)) &&
               "log term needs both the return value and the pre-state of a "
               "mutating method; no scheme can evaluate it");
        LogPlans[M1].push_back(LT);
      }
    }
  }

  // Pass 2: compile log terms (no external slots; applies resolve live at
  // registration time).
  for (MethodId M = 0; M != NumMethods; ++M)
    for (LogTermPlan &LT : LogPlans[M]) {
      CondCompiler C;
      LT.Prog = C.compileTerm(LT.T);
    }

  // Pass 3: compile conditions and s2-applications. External slot layout
  // per pair (M1, M2): [0, L) the log terms of M1 in LogPlans[M1] order,
  // [L, L+S) the pair's s2-applications in S2Applies order. S2-programs
  // run in phase 1, before the cache exists, and bind only the log slots.
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    const uint16_t NumLogSlots = static_cast<uint16_t>(LogPlans[M1].size());
    for (MethodId M2 = 0; M2 != NumMethods; ++M2) {
      PairPlan &Plan = Plans[M1][M2];
      assert(NumLogSlots + Plan.S2Applies.size() <= MaxExtSlots &&
             "condition binds more log/s2 slots than the check scratch");
      CondCompiler S2C;
      for (uint16_t I = 0; I != NumLogSlots; ++I)
        S2C.bindExternal(LogPlans[M1][I].T, I);
      for (const TermPtr &T : Plan.S2Applies)
        Plan.S2Progs.push_back(S2C.compileTerm(T));
      CondCompiler C;
      for (uint16_t I = 0; I != NumLogSlots; ++I)
        C.bindExternal(LogPlans[M1][I].T, I);
      for (size_t J = 0; J != Plan.S2Applies.size(); ++J)
        C.bindExternal(Plan.S2Applies[J],
                       static_cast<uint16_t>(NumLogSlots + J));
      Plan.Prog = C.compileFormula(Plan.F);
    }
  }

  // Striping eligibility, straight off the classification: forward kind,
  // concurrency-safe target, every non-trivial pair key-separable with a
  // consistent key argument per method, and state-free (no abstract-state
  // reads anywhere — which subsumes "no state applies in conditions, no
  // s2-applications, no state-reading log terms", since log terms and
  // s2-caches are harvested from the very same formulas).
  KeyArgOf.assign(NumMethods, -1);
  Striped = K == Kind::Forward && Target->gateConcurrentSafe();
  auto NoteKey = [&](MethodId M, unsigned Arg) {
    if (KeyArgOf[M] < 0) {
      KeyArgOf[M] = static_cast<int>(Arg);
      return true;
    }
    return KeyArgOf[M] == static_cast<int>(Arg);
  };
  for (MethodId M1 = 0; Striped && M1 != NumMethods; ++M1)
    for (MethodId M2 = 0; Striped && M2 != NumMethods; ++M2) {
      const PairClass &PC = Class.pair(M1, M2);
      if (PC.always())
        continue;
      if (!PC.Separable || !PC.StateFree || !NoteKey(M1, PC.KeyArg1) ||
          !NoteKey(M2, PC.KeyArg2))
        Striped = false;
    }

  const unsigned NumStripes = Striped ? GateStripeCount : 1;
  Stripes.reserve(NumStripes);
  for (unsigned I = 0; I != NumStripes; ++I)
    Stripes.push_back(std::make_unique<Stripe>());

  // Privatized coalescing: divert mask = classification-privatizable AND
  // target-supported; the blocker mask is recomputed against the effective
  // divert set (a method conflicting only with an unsupported-privatizable
  // method needs no census). The whole decision is mechanical — computed
  // here once from the spec objects, consulted as bitmask tests on the
  // hot path.
  if (Privatize) {
    for (MethodId M = 0; M != NumMethods; ++M)
      if (Class.method(M).Privatizable && Target->privSupported(M))
        PrivMask |= uint64_t(1) << M;
    for (MethodId M = 0; M != NumMethods; ++M) {
      if ((PrivMask >> M) & 1)
        continue;
      if ((PrivMask & ~Class.method(M).AlwaysMask) != 0)
        PrivBlockMask |= uint64_t(1) << M;
    }
#ifndef NDEBUG
    // Striped routing of merged deltas relies on the GateTarget contract
    // that a privatizable method's Slot is its key argument's value.
    if (Striped)
      for (MethodId M = 0; M != NumMethods; ++M)
        assert(!((PrivMask >> M) & 1) || KeyArgOf[M] >= 0 ||
               Spec->sig().method(M).NumArgs == 0);
#endif
    if (PrivMask)
      Priv = std::make_unique<PrivDomain>(
          [this](int64_t Slot, int64_t Amount) {
            // Merged deltas apply under the owning stripe's mutex so they
            // serialize against concurrent admissions. Privatizable
            // methods key their stripe by the slot (GateTarget contract).
            Stripe &S =
                *Stripes[Striped ? gateStripeOf(Value::integer(Slot)) : 0];
            std::lock_guard<std::mutex> Guard(S.Mu);
            this->Target->privApplyDelta(Slot, Amount);
          },
          this->Label);
  }

  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  StripedAdmits = Reg.counter(obs::metricName(
      "comlat_gate_striped_admissions_total", {{"detector", this->Label}}));
  GlobalAdmits = Reg.counter(obs::metricName(
      "comlat_gate_global_admissions_total", {{"detector", this->Label}}));
  StripeContention = Reg.counter(obs::metricName(
      "comlat_gate_stripe_contention_total", {{"detector", this->Label}}));
  Reg.gauge(obs::metricName("comlat_gate_stripes", {{"detector", this->Label}}))
      ->set(NumStripes);
}

Value Gatekeeper::rollbackEval(Stripe &S, uint64_t StartSeq, StateFnId Fn,
                               ValueSpan Args) {
  RollbackEvals.fetch_add(1, std::memory_order_relaxed);
  // Undo the suffix of the mutation log back to the historical state, ask
  // the structure, then replay forward. The log may contain entries from
  // committed transactions: commitment only means the effects are
  // permanent, not that we cannot temporarily unwind them.
  size_t I = S.MutLog.size();
  while (I > 0 && S.MutLog[I - 1].Seq >= StartSeq) {
    S.MutLog[I - 1].Act.Undo();
    --I;
  }
  const Value Result = Target->gateEvalStateFn(Fn, Args);
  for (; I != S.MutLog.size(); ++I)
    S.MutLog[I].Act.Redo();
  return Result;
}

unsigned Gatekeeper::stripeIndexFor(MethodId M, ValueSpan Args) const {
  if (!Striped)
    return 0;
  const int KeyArg = KeyArgOf[M];
  if (KeyArg < 0)
    return 0; // Participates in no non-trivial pair.
  assert(static_cast<size_t>(KeyArg) < Args.size() && "bad key argument");
  return gateStripeOf(Args[KeyArg]);
}

bool Gatekeeper::invoke(Transaction &Tx, MethodId M, ValueSpan Args,
                        Value &Ret) {
  assert(M < Spec->sig().numMethods() && "bad method id");
  assert(Args.size() == Spec->sig().method(M).NumArgs &&
         "wrong argument count");
  Tx.touch(this);
  if (Priv) {
    if ((PrivMask >> M) & 1) {
      // Privatizable update: divert unless this transaction already became
      // a blocker (then the master is authoritative for it) or blockers
      // are live (then fall through to the fully-merged gated path).
      if (Tx.privState(Priv.get()) != Transaction::PrivState::Blocker) {
        int64_t Slot, Amount;
        Target->privDelta(M, Args, Slot, Amount);
        if (Priv->tryDivert(Tx, Slot, Amount)) {
          Ret = Value::none();
          return true;
        }
      }
    } else if ((PrivBlockMask >> M) & 1) {
      if (!ensurePrivBlocker(Tx, M))
        return false;
    }
  }
  return invokeGated(Tx, M, Args, Ret);
}

bool Gatekeeper::ensurePrivBlocker(Transaction &Tx, MethodId M) {
  switch (Priv->enterBlocker(Tx)) {
  case PrivDomain::BlockOutcome::Entered:
  case PrivDomain::BlockOutcome::AlreadyBlocker:
    return true;
  case PrivDomain::BlockOutcome::Veto: {
    // Other live transactions hold unpublished privatized deltas the
    // merge cannot see; the only sound move is to retry later.
    Conflicts.fetch_add(1, std::memory_order_relaxed);
    const uint32_t Detail = obs::packPair(M, M);
    COMLAT_TRACE(obs::EventKind::GateVeto, Tx.id(), 0, Detail, ObsLabel);
    Tx.fail(AbortCause::Gatekeeper, Detail, ObsLabel);
    return false;
  }
  case PrivDomain::BlockOutcome::NeedsFlush: {
    // Self-upgrade: replay this transaction's own pending deltas through
    // the admission path so they regain undo logging and conflict checks.
    // A flush veto fails the transaction like any gated conflict — the
    // abort undoes the flushed prefix, and release drops the rest.
    bool Ok = true;
    uint64_t Flushed = 0;
    Tx.consumePrivDeltas(Priv.get(), [&](int64_t Slot, int64_t Amount) {
      if (!Ok)
        return; // Keep consuming: pending deltas must not survive.
      const Invocation I = Target->privInvocation(Slot, Amount);
      Value R;
      Ok = invokeGated(Tx, I.Method, ValueSpan(I.Args.data(), I.Args.size()),
                       R);
      ++Flushed;
    });
    Priv->noteFlush(Flushed);
    return Ok;
  }
  }
  COMLAT_UNREACHABLE("bad blocker outcome");
}

bool Gatekeeper::invokeGated(Transaction &Tx, MethodId M, ValueSpan Args,
                             Value &Ret) {
  const unsigned StripeIdx = stripeIndexFor(M, Args);
  Stripe &S = *Stripes[StripeIdx];
  if (!S.Mu.try_lock()) {
    StripeContention->add();
    S.Mu.lock();
  }
  std::lock_guard<std::mutex> Guard(S.Mu, std::adopt_lock);

  Invocation NewInv(M, Args);
  const CondProgram::Frame NewFrame(NewInv);

  // Phase 1: pre-execution. Capture s2-application values for every
  // pending check while the current state still is s2. Cross-stripe
  // actives are not consulted: in striped mode their keys provably differ,
  // which satisfies the separable disjunct of every condition. The
  // ActiveInv pointers stay valid because nothing is appended to Active
  // until phase 5 has consumed the pending list.
  struct PendingCheck {
    ActiveInv *A;
    InlineVec<Value, 4> S2Vals;
  };
  InlineVec<PendingCheck, 8> Pending;
  for (ActiveInv &ARef : S.Active) {
    ActiveInv *A = &ARef;
    if (A->Tx == Tx.id())
      continue;
    const PairPlan &Plan = Plans[A->Inv.Method][M];
    if (Plan.TriviallyTrue)
      continue;
    InlineVec<Value, 4> S2Vals;
    if (!Plan.S2Progs.empty()) {
      GateLiveResolver Resolver(*this, S, A);
      CondProgram::Inputs In;
      In.Inv1 = CondProgram::Frame(A->Inv);
      In.Inv2 = NewFrame;
      In.Ext = A->Log.data();
      In.NumExt = static_cast<uint32_t>(A->Log.size());
      In.Resolver = &Resolver;
      for (const CondProgram &P : Plan.S2Progs)
        S2Vals.push_back(P.eval(In));
    }
    Pending.emplace_back(PendingCheck{A, std::move(S2Vals)});
  }

  // Phase 2: log entries that do not need the return value; the current
  // state is this invocation's s1.
  InlineVec<Value, 4> NewLog;
  NewLog.resize(LogPlans[M].size());
  if (!NewLog.empty()) {
    GateLogResolver Resolver(*this);
    CondProgram::Inputs In;
    In.Inv1 = NewFrame;
    In.Resolver = &Resolver;
    for (size_t I = 0; I != LogPlans[M].size(); ++I)
      if (!LogPlans[M][I].NeedsRet)
        NewLog[I] = LogPlans[M][I].Prog.eval(In);
  }

  // Phase 3: execute.
  const uint64_t StartSeq = S.NextSeq;
  GateActionList Actions;
  NewInv.Ret = Target->gateExecute(M, Args, Actions);
  for (GateAction &Act : Actions) {
    S.MutLog.push_back(Stripe::MutEntry{S.NextSeq, Tx.id(), std::move(Act)});
    ++S.NextSeq;
  }

  // Phase 4: return-value-dependent log entries (pure, or the method is
  // read-only so the state still equals s1; asserted at plan build).
  if (!NewLog.empty()) {
    GateLogResolver Resolver(*this);
    CondProgram::Inputs In;
    In.Inv1 = NewFrame;
    In.Resolver = &Resolver;
    for (size_t I = 0; I != LogPlans[M].size(); ++I)
      if (LogPlans[M][I].NeedsRet)
        NewLog[I] = LogPlans[M][I].Prog.eval(In);
  }

  // Phase 5: check commutativity against every pending active invocation.
  bool Commutes = true;
  const PairPlan *VetoPlan = nullptr;
  uint32_t VetoDetail = 0;
  for (auto &[A, S2Vals] : Pending) {
    Checks.fetch_add(1, std::memory_order_relaxed);
    const PairPlan &Plan = Plans[A->Inv.Method][M];
    COMLAT_TRACE(obs::EventKind::GateCheck, Tx.id(), 0,
                 obs::packPair(A->Inv.Method, M), ObsLabel);
    GateLiveResolver Resolver(*this, S, A);
    CondProgram::Inputs In;
    In.Inv1 = CondProgram::Frame(A->Inv);
    In.Inv2 = NewFrame;
    In.Resolver = &Resolver;
    if (S2Vals.empty()) {
      // The common case: external slots are exactly the log vector.
      In.Ext = A->Log.data();
      In.NumExt = static_cast<uint32_t>(A->Log.size());
      Commutes = Plan.Prog.evalBool(In);
    } else {
      Value ExtBuf[MaxExtSlots];
      uint32_t N = 0;
      for (const Value &V : A->Log)
        ExtBuf[N++] = V;
      for (const Value &V : S2Vals)
        ExtBuf[N++] = V;
      In.Ext = ExtBuf;
      In.NumExt = N;
      Commutes = Plan.Prog.evalBool(In);
    }
    if (!Commutes) {
      VetoPlan = &Plan;
      VetoDetail = obs::packPair(A->Inv.Method, M);
      break;
    }
  }

  if (!Commutes) {
    // Undo this invocation's own effects; they form the newest log suffix.
    while (S.NextSeq != StartSeq) {
      assert(!S.MutLog.empty() && S.MutLog.back().Seq == S.NextSeq - 1 &&
             "mutation log out of sync");
      S.MutLog.back().Act.Undo();
      S.MutLog.pop_back();
      --S.NextSeq;
    }
    Conflicts.fetch_add(1, std::memory_order_relaxed);
    if (VetoPlan && VetoPlan->Vetoes)
      VetoPlan->Vetoes->add();
    COMLAT_TRACE(obs::EventKind::GateVeto, Tx.id(), 0, VetoDetail, ObsLabel);
    Tx.fail(AbortCause::Gatekeeper, VetoDetail, ObsLabel);
    return false;
  }

  Ret = NewInv.Ret;
  S.Active.emplace_back();
  ActiveInv &A = S.Active.back();
  A.Tx = Tx.id();
  A.StartSeq = StartSeq;
  A.Inv = std::move(NewInv);
  A.Log = std::move(NewLog);
  if (Striped) {
    Tx.noteStripe(this, StripeIdx);
    StripedAdmits->add();
  } else {
    GlobalAdmits->add();
  }
  return true;
}

void Gatekeeper::cleanStripe(Stripe &S, TxId Tx, bool Undo) {
  std::lock_guard<std::mutex> Guard(S.Mu);
  if (Undo) {
    // Undo this transaction's mutations newest-first. Out-of-order undo
    // relative to other live transactions is sound because all active
    // invocations pairwise commute (the gatekeeper's invariant).
    for (size_t I = S.MutLog.size(); I != 0; --I)
      if (S.MutLog[I - 1].Tx == Tx)
        S.MutLog[I - 1].Act.Undo();
    // Compact in place (stable; keeps the vector's capacity).
    S.MutLog.erase(
        std::remove_if(S.MutLog.begin(), S.MutLog.end(),
                       [&](const Stripe::MutEntry &E) { return E.Tx == Tx; }),
        S.MutLog.end());
  }
  S.Active.erase(std::remove_if(S.Active.begin(), S.Active.end(),
                                [&](const ActiveInv &A) { return A.Tx == Tx; }),
                 S.Active.end());
  compactMutLog(S);
}

void Gatekeeper::undoFor(Transaction &Tx) {
  if (!Striped) {
    cleanStripe(*Stripes[0], Tx.id(), /*Undo=*/true);
    return;
  }
  // Abort order is undoFor then release: peek the mask here, consume it
  // there. The mask lives on the transaction itself (owner-thread state;
  // see Transaction::noteStripe), so neither call synchronizes.
  uint64_t Mask = Tx.stripeMask(this);
  for (unsigned I = 0; Mask; ++I, Mask >>= 1)
    if (Mask & 1)
      cleanStripe(*Stripes[I], Tx.id(), /*Undo=*/true);
}

void Gatekeeper::release(Transaction &Tx, bool Committed) {
  // Privatized release first: publish (commit) or drop (abort) the
  // transaction's pending deltas and leave its census. Diverted-only
  // transactions have no stripe state but still pass through here —
  // invoke touches the detector before diverting.
  if (Priv)
    Priv->release(Tx, Committed);
  if (!Striped) {
    cleanStripe(*Stripes[0], Tx.id(), /*Undo=*/false);
    return;
  }
  uint64_t Mask = Tx.takeStripeMask(this);
  for (unsigned I = 0; Mask; ++I, Mask >>= 1)
    if (Mask & 1)
      cleanStripe(*Stripes[I], Tx.id(), /*Undo=*/false);
}

void Gatekeeper::compactMutLog(Stripe &S) {
  uint64_t MinSeq = S.NextSeq;
  for (const ActiveInv &A : S.Active)
    MinSeq = std::min(MinSeq, A.StartSeq);
  size_t Drop = 0;
  while (Drop != S.MutLog.size() && S.MutLog[Drop].Seq < MinSeq)
    ++Drop;
  if (Drop)
    S.MutLog.erase(S.MutLog.begin(),
                   S.MutLog.begin() + static_cast<ptrdiff_t>(Drop));
}

size_t Gatekeeper::numActive() const {
  size_t N = 0;
  for (const std::unique_ptr<Stripe> &S : Stripes) {
    std::lock_guard<std::mutex> Guard(S->Mu);
    N += S->Active.size();
  }
  return N;
}
