//===- runtime/Gatekeeper.cpp - Forward and general gatekeeping ------------===//

#include "runtime/Gatekeeper.h"
#include "core/Eval.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"

#include <algorithm>

using namespace comlat;

GateTarget::~GateTarget() = default;

/// True if the term transitively contains an application over s1.
static bool termTouchesS1(const TermPtr &T) {
  switch (T->K) {
  case Term::Kind::Arg:
  case Term::Kind::Ret:
  case Term::Kind::Const:
    return false;
  case Term::Kind::Apply:
    if (T->State == StateRef::S1)
      return true;
    for (const TermPtr &A : T->Args)
      if (termTouchesS1(A))
        return true;
    return false;
  case Term::Kind::Arith:
    return termTouchesS1(T->Lhs) || termTouchesS1(T->Rhs);
  }
  COMLAT_UNREACHABLE("bad term kind");
}

namespace comlat {

/// Resolver for phase 1 (pre-execution): the current state is s2 of the
/// pending invocation. First-invocation applications come from the active
/// invocation's log, or — general gatekeeping only — from rollback.
class GatePreResolver : public ApplyResolver {
public:
  GatePreResolver(Gatekeeper &GK, const Gatekeeper::ActiveInv *A)
      : GK(GK), A(A) {}

  Value resolveApply(const Term &Apply,
                     const std::vector<Value> &Args) override {
    if (A) {
      const auto It = A->Log.find(Apply.key());
      if (It != A->Log.end())
        return It->second;
    }
    if (Apply.State == StateRef::S1) {
      assert(A && "s1-application with no first invocation");
      assert(GK.K == Gatekeeper::Kind::General &&
             "forward gatekeeper met an unlogged s1-application");
      return GK.rollbackEval(A->StartSeq, Apply.Fn, Args);
    }
    // Pure, or s2 == current state.
    return GK.Target->gateEvalStateFn(Apply.Fn, Args);
  }

private:
  Gatekeeper &GK;
  const Gatekeeper::ActiveInv *A;
};

/// Resolver for log-term evaluation at registration time: the invocation
/// being logged is the first invocation and the current state is (or, for
/// read-only methods, still equals) its s1, so everything evaluates live.
class GateLogResolver : public ApplyResolver {
public:
  explicit GateLogResolver(Gatekeeper &GK) : GK(GK) {}

  Value resolveApply(const Term &Apply,
                     const std::vector<Value> &Args) override {
    assert(Apply.State != StateRef::S2 &&
           "loggable term may not reference s2");
    return GK.Target->gateEvalStateFn(Apply.Fn, Args);
  }

private:
  Gatekeeper &GK;
};

/// Resolver for phase 5 (post-execution checks): s1-applications from the
/// active invocation's log (or rollback), s2-applications from the cache
/// captured in phase 1, pure applications live.
class GateCheckResolver : public ApplyResolver {
public:
  GateCheckResolver(Gatekeeper &GK, const Gatekeeper::ActiveInv *A,
                    const std::map<std::string, Value> *S2Cache)
      : GK(GK), A(A), S2Cache(S2Cache) {}

  Value resolveApply(const Term &Apply,
                     const std::vector<Value> &Args) override {
    const std::string Key = Apply.key();
    const auto LogIt = A->Log.find(Key);
    if (LogIt != A->Log.end())
      return LogIt->second;
    if (Apply.State == StateRef::S2) {
      const auto CacheIt = S2Cache->find(Key);
      assert(CacheIt != S2Cache->end() && "s2-application missing from cache");
      return CacheIt->second;
    }
    if (Apply.State == StateRef::None)
      return GK.Target->gateEvalStateFn(Apply.Fn, Args);
    assert(GK.K == Gatekeeper::Kind::General &&
           "forward gatekeeper met an unlogged s1-application");
    return GK.rollbackEval(A->StartSeq, Apply.Fn, Args);
  }

private:
  Gatekeeper &GK;
  const Gatekeeper::ActiveInv *A;
  const std::map<std::string, Value> *S2Cache;
};

} // namespace comlat

Gatekeeper::Gatekeeper(Kind K, const CommSpec *Spec, GateTarget *Target,
                       std::string Label)
    : K(K), Spec(Spec), Target(Target), Label(std::move(Label)) {
  assert(Spec && Target && "gatekeeper requires a spec and a target");
  assert(Spec->isComplete() && "specification must cover all method pairs");
  const DataTypeSig &Sig = Spec->sig();
  const unsigned NumMethods = Sig.numMethods();
  obs::TraceSession &Session = obs::TraceSession::global();
  ObsLabel = Session.internLabel(this->Label, "gate");
  Plans.resize(NumMethods);
  LogPlans.resize(NumMethods);
  for (MethodId M1 = 0; M1 != NumMethods; ++M1) {
    Plans[M1].resize(NumMethods);
    for (MethodId M2 = 0; M2 != NumMethods; ++M2) {
      PairPlan &Plan = Plans[M1][M2];
      Plan.F = Spec->get(M1, M2);
      Plan.TriviallyTrue = Plan.F->isTrue();
      Plan.S2Applies = collectS2Applies(Plan.F);
      if (!Plan.TriviallyTrue) {
        // Abort attribution: a veto of this predicate names the ordered
        // method pair whose commutativity condition evaluated false.
        Plan.Vetoes = obs::MetricsRegistry::global().counter(
            obs::metricName("comlat_gate_vetoes_total",
                            {{"detector", this->Label},
                             {"first", Sig.method(M1).Name},
                             {"second", Sig.method(M2).Name}}));
        Session.describeDetail(ObsLabel, obs::packPair(M1, M2),
                               Sig.method(M1).Name + " vs " +
                                   Sig.method(M2).Name);
      }
      // Warm the structural-key caches while still single-threaded; the
      // hot path only reads them afterwards.
      Plan.F->key();
      if (K == Kind::Forward)
        assert(isOnlineCheckable(Plan.F) &&
               "forward gatekeeper requires an ONLINE-CHECKABLE spec "
               "(Def. 7); use a general gatekeeper");
      // Harvest C_{M1}: loggable primitive functions of the first method.
      std::map<std::string, bool> Seen;
      for (const LogTermPlan &Existing : LogPlans[M1])
        Seen.emplace(Existing.T->key(), true);
      for (const TermPtr &T : collectLoggableApplies(Plan.F)) {
        if (Seen.count(T->key()))
          continue;
        LogTermPlan LT;
        LT.T = T;
        LT.NeedsRet = termMentionsRet(T, InvIndex::Inv1);
        assert(!(LT.NeedsRet && Sig.method(M1).Mutating &&
                 termTouchesS1(T)) &&
               "log term needs both the return value and the pre-state of a "
               "mutating method; no scheme can evaluate it");
        LogPlans[M1].push_back(LT);
      }
    }
  }
}

Value Gatekeeper::rollbackEval(uint64_t StartSeq, StateFnId Fn,
                               const std::vector<Value> &Args) {
  RollbackEvals.fetch_add(1, std::memory_order_relaxed);
  // Undo the suffix of the mutation log back to the historical state, ask
  // the structure, then replay forward. The log may contain entries from
  // committed transactions: commitment only means the effects are
  // permanent, not that we cannot temporarily unwind them.
  size_t I = MutLog.size();
  while (I > 0 && MutLog[I - 1].Seq >= StartSeq) {
    MutLog[I - 1].Act.Undo();
    --I;
  }
  const Value Result = Target->gateEvalStateFn(Fn, Args);
  for (; I != MutLog.size(); ++I)
    MutLog[I].Act.Redo();
  return Result;
}

bool Gatekeeper::invoke(Transaction &Tx, MethodId M,
                        const std::vector<Value> &Args, Value &Ret) {
  assert(M < Spec->sig().numMethods() && "bad method id");
  assert(Args.size() == Spec->sig().method(M).NumArgs &&
         "wrong argument count");
  Tx.touch(this);
  std::lock_guard<std::mutex> Guard(Gate);

  Invocation NewInv(M, Args);

  // Phase 1: pre-execution. Capture s2-application values for every
  // pending check while the current state still is s2.
  std::vector<std::pair<ActiveInv *, std::map<std::string, Value>>> Pending;
  for (ActiveInv &ARef : Active) {
    ActiveInv *A = &ARef;
    if (A->Tx == Tx.id())
      continue;
    const PairPlan &Plan = Plans[A->Inv.Method][M];
    if (Plan.TriviallyTrue)
      continue;
    std::map<std::string, Value> S2Cache;
    if (!Plan.S2Applies.empty()) {
      GatePreResolver Resolver(*this, A);
      EvalContext Ctx{&A->Inv, &NewInv, &Resolver};
      for (const TermPtr &T : Plan.S2Applies)
        S2Cache.emplace(T->key(), evalTerm(T, Ctx));
    }
    Pending.emplace_back(A, std::move(S2Cache));
  }

  // Phase 2: log entries that do not need the return value; the current
  // state is this invocation's s1.
  std::map<std::string, Value> NewLog;
  {
    GateLogResolver Resolver(*this);
    EvalContext Ctx{&NewInv, nullptr, &Resolver};
    for (const LogTermPlan &LT : LogPlans[M])
      if (!LT.NeedsRet)
        NewLog.emplace(LT.T->key(), evalTerm(LT.T, Ctx));
  }

  // Phase 3: execute.
  const uint64_t StartSeq = NextSeq;
  std::vector<GateAction> Actions;
  NewInv.Ret = Target->gateExecute(M, Args, Actions);
  for (GateAction &Act : Actions) {
    MutLog.push_back(MutEntry{NextSeq, Tx.id(), std::move(Act)});
    ++NextSeq;
  }

  // Phase 4: return-value-dependent log entries (pure, or the method is
  // read-only so the state still equals s1; asserted at plan build).
  {
    GateLogResolver Resolver(*this);
    EvalContext Ctx{&NewInv, nullptr, &Resolver};
    for (const LogTermPlan &LT : LogPlans[M])
      if (LT.NeedsRet)
        NewLog.emplace(LT.T->key(), evalTerm(LT.T, Ctx));
  }

  // Phase 5: check commutativity against every pending active invocation.
  bool Commutes = true;
  const PairPlan *VetoPlan = nullptr;
  uint32_t VetoDetail = 0;
  for (auto &[A, S2Cache] : Pending) {
    Checks.fetch_add(1, std::memory_order_relaxed);
    const PairPlan &Plan = Plans[A->Inv.Method][M];
    COMLAT_TRACE(obs::EventKind::GateCheck, Tx.id(), 0,
                 obs::packPair(A->Inv.Method, M), ObsLabel);
    GateCheckResolver Resolver(*this, A, &S2Cache);
    EvalContext Ctx{&A->Inv, &NewInv, &Resolver};
    if (!evalFormula(Plan.F, Ctx)) {
      Commutes = false;
      VetoPlan = &Plan;
      VetoDetail = obs::packPair(A->Inv.Method, M);
      break;
    }
  }

  if (!Commutes) {
    // Undo this invocation's own effects; they form the newest log suffix.
    while (NextSeq != StartSeq) {
      assert(!MutLog.empty() && MutLog.back().Seq == NextSeq - 1 &&
             "mutation log out of sync");
      MutLog.back().Act.Undo();
      MutLog.pop_back();
      --NextSeq;
    }
    Conflicts.fetch_add(1, std::memory_order_relaxed);
    if (VetoPlan && VetoPlan->Vetoes)
      VetoPlan->Vetoes->add();
    COMLAT_TRACE(obs::EventKind::GateVeto, Tx.id(), 0, VetoDetail, ObsLabel);
    Tx.fail(AbortCause::Gatekeeper, VetoDetail, ObsLabel);
    return false;
  }

  Ret = NewInv.Ret;
  Active.emplace_back();
  ActiveInv &A = Active.back();
  A.Tx = Tx.id();
  A.StartSeq = StartSeq;
  A.Inv = std::move(NewInv);
  A.Log = std::move(NewLog);
  return true;
}

void Gatekeeper::undoFor(Transaction &Tx) {
  std::lock_guard<std::mutex> Guard(Gate);
  // Undo this transaction's mutations newest-first. Out-of-order undo
  // relative to other live transactions is sound because all active
  // invocations pairwise commute (the gatekeeper's invariant).
  for (auto It = MutLog.rbegin(); It != MutLog.rend(); ++It)
    if (It->Tx == Tx.id())
      It->Act.Undo();
  std::deque<MutEntry> Kept;
  for (MutEntry &E : MutLog)
    if (E.Tx != Tx.id())
      Kept.push_back(std::move(E));
  MutLog = std::move(Kept);
  Active.erase(std::remove_if(
                   Active.begin(), Active.end(),
                   [&](const ActiveInv &A) { return A.Tx == Tx.id(); }),
               Active.end());
  compactMutLog();
}

void Gatekeeper::release(Transaction &Tx, bool Committed) {
  std::lock_guard<std::mutex> Guard(Gate);
  Active.erase(std::remove_if(
                   Active.begin(), Active.end(),
                   [&](const ActiveInv &A) { return A.Tx == Tx.id(); }),
               Active.end());
  compactMutLog();
}

void Gatekeeper::compactMutLog() {
  uint64_t MinSeq = NextSeq;
  for (const ActiveInv &A : Active)
    MinSeq = std::min(MinSeq, A.StartSeq);
  while (!MutLog.empty() && MutLog.front().Seq < MinSeq)
    MutLog.pop_front();
}

size_t Gatekeeper::numActive() const {
  std::lock_guard<std::mutex> Guard(Gate);
  return Active.size();
}
