//===- runtime/AbstractLockManager.h - Lock-based conflicts -----*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime side of abstract locking (§3.2): executes the acquisitions a
/// LockScheme prescribes against a LockTable, tracks per-transaction holds,
/// and reports conflicts on failed acquisition. All locks are released when
/// the transaction ends (commit or abort), per the paper's protocol.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_ABSTRACTLOCKMANAGER_H
#define COMLAT_RUNTIME_ABSTRACTLOCKMANAGER_H

#include "runtime/LockScheme.h"
#include "runtime/Transaction.h"

#include <atomic>
#include <functional>

namespace comlat {

namespace obs {
class Counter;
} // namespace obs

/// Conflict detector driven by a generated LockScheme.
///
/// Boosted wrappers call acquirePre before running the sequential method
/// and acquirePost after it returns (return-value locks). Both mark the
/// transaction failed and return false on conflict; the wrapper then skips
/// or undoes its work and the executor aborts the transaction, releasing
/// every lock.
class AbstractLockManager : public ConflictDetector {
public:
  /// Evaluates pure key functions (e.g. §4.2's `part`) for keyed clauses.
  using KeyEvalFn = std::function<Value(StateFnId, const Value &)>;

  /// \p Scheme must outlive the manager. \p KeyEval may be null when the
  /// scheme uses no key functions.
  AbstractLockManager(const LockScheme *Scheme, std::string Label,
                      KeyEvalFn KeyEval = nullptr);

  /// Acquires the structure and argument locks for invoking \p M.
  bool acquirePre(Transaction &Tx, MethodId M, ValueSpan Args);

  /// Acquires the return-value locks after \p M returned \p Ret.
  bool acquirePost(Transaction &Tx, MethodId M, ValueSpan Args,
                   const Value &Ret);

  /// The scheme's divert hook, re-exported so wrappers holding only the
  /// manager can consult it: true when the classification marked \p M
  /// privatizable and the invocation may skip lock acquisition entirely in
  /// favor of a per-worker replica (runtime/Privatizer.h).
  bool privatizable(MethodId M) const { return Scheme->privatizable(M); }

  void release(Transaction &Tx, bool Committed) override;
  const char *name() const override { return Label.c_str(); }

  uint64_t numAcquires() const { return Acquires.load(); }
  uint64_t numConflicts() const { return Conflicts.load(); }

private:
  bool acquireList(Transaction &Tx, const std::vector<LockAcquisition> &List,
                   ValueSpan Args, const Value *Ret);

  const LockScheme *Scheme;
  std::string Label;
  KeyEvalFn KeyEval;
  LockTable Table;
  AbstractLock StructureLock;
  /// Interned trace label (obs::TraceSession); stamps every event and
  /// abort attribution this manager produces.
  uint16_t ObsLabel = 0;
  /// Per incompatible (held, requested) mode pair: the conflict counter
  /// registered at construction (null for compatible pairs). Indexed
  /// [held][requested]; hot path only dereferences.
  std::vector<std::vector<obs::Counter *>> PairConflicts;
  std::atomic<uint64_t> Acquires{0};
  std::atomic<uint64_t> Conflicts{0};
};

} // namespace comlat

#endif // COMLAT_RUNTIME_ABSTRACTLOCKMANAGER_H
