//===- runtime/Submitter.cpp - Batch transaction submission ----------------===//

#include "runtime/Submitter.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"
#include "support/Random.h"
#include "support/Timer.h"

using namespace comlat;

Submitter::Submitter(const SubmitterConfig &Config) : Config(Config) {
  assert(Config.NumThreads > 0 && "need at least one worker");
  assert(Config.QueueCapacity > 0 && "need a non-empty admission queue");
  Workers.reserve(Config.NumThreads);
  for (unsigned W = 0; W != Config.NumThreads; ++W)
    Workers.emplace_back([this, W] { workerMain(W); });
}

Submitter::~Submitter() { drain(); }

bool Submitter::trySubmit(TxBody Body, Completion Done, int64_t TraceTag,
                          StampFn Stamp) {
  {
    std::lock_guard<std::mutex> Guard(M);
    if (Draining || Queue.size() >= Config.QueueCapacity)
      return false;
    Pending.fetch_add(1, std::memory_order_acq_rel);
    Queue.push_back(
        {std::move(Body), std::move(Done), TraceTag, std::move(Stamp)});
  }
  WorkCV.notify_one();
  return true;
}

void Submitter::pause() {
  std::lock_guard<std::mutex> Guard(M);
  Paused = true;
}

void Submitter::resume() {
  {
    std::lock_guard<std::mutex> Guard(M);
    Paused = false;
  }
  WorkCV.notify_all();
}

size_t Submitter::queueDepth() const {
  std::lock_guard<std::mutex> Guard(M);
  return Queue.size();
}

void Submitter::drain() {
  {
    std::unique_lock<std::mutex> Guard(M);
    Draining = true;
    Paused = false; // a paused drain would never finish
    WorkCV.notify_all();
    IdleCV.wait(Guard, [this] {
      return Queue.empty() && Pending.load(std::memory_order_acquire) == 0;
    });
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

void Submitter::workerMain(unsigned Worker) {
  // Per-worker stream, seeded once and decorrelated across workers by a
  // golden-ratio stride (Rng re-mixes through SplitMix64); deterministic
  // for a fixed Config.Seed.
  Rng BackoffRng(Config.Seed ^ (0x9E3779B97F4A7C15ull * (Worker + 1)));
  ExecMetrics &Metrics = ExecMetrics::global();
  // Pooled transaction: reset per attempt keeps buffers/arena warm, so a
  // retry allocates nothing on the transaction side.
  Transaction Tx(0);
  for (;;) {
    Submission Sub;
    {
      std::unique_lock<std::mutex> Guard(M);
      WorkCV.wait(Guard, [this] {
        return Stopping || (!Paused && !Queue.empty());
      });
      if (Stopping && Queue.empty())
        return;
      if (Paused || Queue.empty())
        continue;
      Sub = std::move(Queue.front());
      Queue.pop_front();
    }

    SubmitOutcome Outcome;
    Timer SubTimer;
    unsigned Attempt = 0;
    for (;;) {
      ++Attempt;
      // Globally allocated id: submitted transactions coexist with foreign
      // transactions on the same structures (tests hold their own
      // transactions open against a Submitter; a collision would make the
      // detectors treat the two as one re-entrant transaction).
      Tx.reset(allocTxId());
      Tx.setRecording(Config.RecordHistories);
      Sub.Body(Tx);
      if (!Tx.failed()) {
        // Stamp the commit order from inside commit(), before the
        // detectors release: conflicting submissions are still mutually
        // excluded here, so the stamp order extends the conflict order. A
        // caller-provided Stamp (the WAL) replaces the counter wholesale.
        Tx.addCommitAction([this, &Outcome, &Sub] {
          Outcome.CommitSeq =
              Sub.Stamp ? Sub.Stamp()
                        : NextCommitSeq.fetch_add(1,
                                                  std::memory_order_relaxed);
        });
        Tx.commit();
        Outcome.Committed = true;
        Outcome.Tx = Tx.id();
        Metrics.Committed->add();
        Metrics.CommitLatencyUs->observe(
            static_cast<uint64_t>(SubTimer.seconds() * 1e6));
        COMLAT_TRACE(obs::EventKind::Commit, Tx.id(), Sub.TraceTag, 0, 0);
        break;
      }
      const AbortCause Cause = Tx.abortCause();
      const uint32_t Detail = Tx.abortDetail();
      const uint16_t Label = Tx.abortLabel();
      Tx.abort();
      ++Outcome.Aborts;
      Outcome.LastCause = Cause;
      Outcome.Tx = Tx.id();
      Metrics.Aborted->add();
      Metrics.AbortsByCause[static_cast<unsigned>(Cause)]->add();
      COMLAT_TRACE(obs::EventKind::Abort, Tx.id(), Sub.TraceTag, Detail,
                   Label);
      if (Config.MaxAttempts != 0 && Attempt >= Config.MaxAttempts)
        break; // terminal failure: Committed stays false
      applyBackoff(Config.Backoff, Attempt, BackoffRng);
    }

    // The completion is the client-visible boundary: it observes only the
    // final outcome, never an intermediate attempt.
    if (Sub.Done)
      Sub.Done(Outcome);
    Pending.fetch_sub(1, std::memory_order_acq_rel);
    IdleCV.notify_all();
  }
}
