//===- runtime/LockTable.h - Multi-mode abstract locks ----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract locks (§3.2): "a lock with a number of modes. When attempting
/// to acquire a lock in a particular mode, the acquisition succeeds if no
/// other entity holds the lock in an incompatible mode." Mode compatibility
/// is a scheme-wide matrix (see LockScheme.h). Acquisition is try-only: a
/// failed acquire is a conflict and the requesting transaction aborts,
/// which is how the optimistic runtime avoids blocking and deadlock.
///
/// A LockTable maps data-member keys (values, optionally pre-mapped through
/// a key function such as §4.2's `part`) to lock instances, allocating them
/// on demand. The map is a sharded open-addressing table: lookups of
/// already-materialized locks — the steady state of every workload with a
/// bounded key universe — are lock-free (one acquire-load of the published
/// slot array plus a linear probe); only a miss takes the shard's writer
/// mutex to insert. Lock nodes come from a shard-local pool (a deque, so
/// addresses are stable) and are *immortal*: never freed, never moved,
/// while the table lives. That immortality is what makes the lock-free
/// read path safe without epoch/hazard reclamation — a reader racing a
/// concurrent rehash may probe a retired slot array, but every entry
/// pointer it can observe is permanently valid (retired arrays are kept
/// until the table is destroyed; see DESIGN.md §3.8).
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_LOCKTABLE_H
#define COMLAT_RUNTIME_LOCKTABLE_H

#include "core/Value.h"
#include "runtime/Transaction.h"
#include "support/InlineVec.h"

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace comlat {

/// Index of a lock mode within a LockScheme.
using ModeId = uint32_t;

/// Mode-compatibility matrix: Compat[a][b] is true when a holder in mode a
/// does not block an acquirer in mode b. Always symmetric here (the paper's
/// construction only ever produces symmetric incompatibilities).
using CompatMatrix = std::vector<std::vector<uint8_t>>;

/// One abstract lock instance with per-holder mode counts.
///
/// Re-entrant per transaction: the same transaction may acquire any mix of
/// modes repeatedly; only *other* holders are tested for compatibility.
class AbstractLock {
public:
  /// Attempts to acquire in \p Mode for \p Tx. Returns false (no state
  /// change) if any other transaction holds an incompatible mode; in that
  /// case \p BlockingMode (when non-null) receives the incompatible mode
  /// held — the other half of the conflicting mode pair that abort
  /// attribution reports. On success, \p WasHeld (when non-null) is set to
  /// whether \p Tx already held this lock in some mode (a re-entrant or
  /// upgrade acquisition).
  bool tryAcquire(TxId Tx, ModeId Mode, const CompatMatrix &Compat,
                  ModeId *BlockingMode = nullptr, bool *WasHeld = nullptr);

  /// Drops every hold of \p Tx. Idempotent per transaction.
  void releaseAll(TxId Tx);

  /// True when \p Tx currently holds the lock in any mode.
  bool heldBy(TxId Tx) const;

  /// Number of distinct holding transactions (diagnostics).
  unsigned numHolders() const;

private:
  struct Holder {
    TxId Tx;
    ModeId Mode;
    uint32_t Count;
  };
  /// Guards Holders: distinct transactions may race on one lock.
  mutable std::mutex M;
  /// Holds are few per lock in practice; inline slots make the common
  /// acquisition allocation-free and linear scans beat hashing.
  InlineVec<Holder, 4> Holders;
};

/// A sharded open-addressing map from key values to abstract locks.
///
/// Key identity includes the key-function id that produced it, so locks on
/// `x` and on `part(x)` live in disjoint key spaces even when the values
/// collide numerically. Identity is *exact-kind*: Value::integer(3) and
/// Value::real(3.0) key distinct locks, matching the strict weak order the
/// previous std::map used (schemes never mix kinds within one key space).
class LockTable {
public:
  explicit LockTable(unsigned ShardCount = 16);
  ~LockTable();

  LockTable(const LockTable &) = delete;
  LockTable &operator=(const LockTable &) = delete;

  /// Key space id for keys not produced by any key function.
  static constexpr uint32_t PlainSpace = 0xFFFFFFFFu;

  /// Returns the lock for (\p Space, \p Key), creating it on first use.
  /// The returned pointer is stable for the table's lifetime. Lock-free
  /// when the lock already exists; takes the shard mutex only to insert.
  AbstractLock *lockFor(uint32_t Space, const Value &Key);

  /// Total number of distinct locks allocated (diagnostics).
  uint64_t size() const;

private:
  /// One materialized lock: immutable key plus the lock proper. Entries
  /// are pooled per shard and never freed or moved while the table lives.
  struct Entry {
    Entry(uint64_t Hash, uint32_t Space, const Value &Key)
        : Hash(Hash), Space(Space), Key(Key) {}
    const uint64_t Hash;
    const uint32_t Space;
    const Value Key;
    AbstractLock Lock;
  };

  /// One published probe array. Slots hold null (empty) or a pointer to a
  /// pooled Entry; slots are write-once (only ever null -> entry, under
  /// the shard mutex), so readers need only acquire loads.
  struct Table {
    explicit Table(size_t Capacity)
        : Mask(Capacity - 1),
          Slots(std::make_unique<std::atomic<Entry *>[]>(Capacity)) {}
    const size_t Mask; ///< Capacity - 1; capacity is a power of two.
    std::unique_ptr<std::atomic<Entry *>[]> Slots;
  };

  struct Shard {
    /// Serializes inserts and rehashes; never taken on the hit path.
    std::mutex WriteM;
    /// The probe array readers use. Swapped (release) on rehash.
    std::atomic<Table *> Cur{nullptr};
    /// Entry storage. std::deque: grows without moving elements, so entry
    /// addresses — and the AbstractLocks inside — are stable forever.
    std::deque<Entry> Pool;
    /// Current and retired probe arrays. Retired arrays stay allocated so
    /// a reader still probing one is always safe (entries are immortal;
    /// the array memory itself is the only thing a rehash replaces).
    std::vector<std::unique_ptr<Table>> Tables;
    size_t Count = 0; ///< Entries; guarded by WriteM.
  };

  static bool sameKey(const Entry &E, uint64_t Hash, uint32_t Space,
                      const Value &Key);

  Shard &shardFor(uint64_t Hash, uint32_t Space) {
    return *Shards[(Hash ^ Space) % Shards.size()];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_LOCKTABLE_H
