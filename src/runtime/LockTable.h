//===- runtime/LockTable.h - Multi-mode abstract locks ----------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract locks (§3.2): "a lock with a number of modes. When attempting
/// to acquire a lock in a particular mode, the acquisition succeeds if no
/// other entity holds the lock in an incompatible mode." Mode compatibility
/// is a scheme-wide matrix (see LockScheme.h). Acquisition is try-only: a
/// failed acquire is a conflict and the requesting transaction aborts,
/// which is how the optimistic runtime avoids blocking and deadlock.
///
/// A LockTable maps data-member keys (values, optionally pre-mapped through
/// a key function such as §4.2's `part`) to lock instances, allocating them
/// on demand; locks are never deallocated while the table lives, so raw
/// pointers into it remain valid.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_LOCKTABLE_H
#define COMLAT_RUNTIME_LOCKTABLE_H

#include "core/Value.h"
#include "runtime/Transaction.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace comlat {

/// Index of a lock mode within a LockScheme.
using ModeId = uint32_t;

/// Mode-compatibility matrix: Compat[a][b] is true when a holder in mode a
/// does not block an acquirer in mode b. Always symmetric here (the paper's
/// construction only ever produces symmetric incompatibilities).
using CompatMatrix = std::vector<std::vector<uint8_t>>;

/// One abstract lock instance with per-holder mode counts.
///
/// Re-entrant per transaction: the same transaction may acquire any mix of
/// modes repeatedly; only *other* holders are tested for compatibility.
class AbstractLock {
public:
  /// Attempts to acquire in \p Mode for \p Tx. Returns false (no state
  /// change) if any other transaction holds an incompatible mode; in that
  /// case \p BlockingMode (when non-null) receives the incompatible mode
  /// held — the other half of the conflicting mode pair that abort
  /// attribution reports. On success, \p WasHeld (when non-null) is set to
  /// whether \p Tx already held this lock in some mode (a re-entrant or
  /// upgrade acquisition).
  bool tryAcquire(TxId Tx, ModeId Mode, const CompatMatrix &Compat,
                  ModeId *BlockingMode = nullptr, bool *WasHeld = nullptr);

  /// Drops every hold of \p Tx.
  void releaseAll(TxId Tx);

  /// True when \p Tx currently holds the lock in any mode.
  bool heldBy(TxId Tx) const;

  /// Number of distinct holding transactions (diagnostics).
  unsigned numHolders() const;

private:
  struct Holder {
    TxId Tx;
    ModeId Mode;
    uint32_t Count;
  };
  /// Guards Holders: distinct transactions may race on one lock.
  mutable std::mutex M;
  /// Holds are few per lock in practice; linear scans beat hashing.
  std::vector<Holder> Holders;
};

/// A sharded map from key values to abstract locks.
///
/// Key identity includes the key-function id that produced it, so locks on
/// `x` and on `part(x)` live in disjoint key spaces even when the values
/// collide numerically.
class LockTable {
public:
  explicit LockTable(unsigned ShardCount = 16);

  /// Key space id for keys not produced by any key function.
  static constexpr uint32_t PlainSpace = 0xFFFFFFFFu;

  /// Returns the lock for (\p Space, \p Key), creating it on first use.
  /// The returned pointer is stable for the table's lifetime.
  AbstractLock *lockFor(uint32_t Space, const Value &Key);

  /// Total number of distinct locks allocated (diagnostics).
  uint64_t size() const;

private:
  struct Shard {
    mutable std::mutex M;
    std::map<std::pair<uint32_t, Value>, std::unique_ptr<AbstractLock>> Locks;
  };
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace comlat

#endif // COMLAT_RUNTIME_LOCKTABLE_H
