//===- runtime/SpecValidator.h - Testing commutativity conditions -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A randomized validator for commutativity specifications — the testing
/// counterpart of the verification problem the paper defers to Kim &
/// Rinard [14] (§2.2: "we have not considered the correctness of
/// commutativity conditions, instead relying on external techniques").
///
/// The validator checks Definition 1 directly: it builds random histories,
/// picks a pair of back-to-back invocations, executes them in both orders
/// on identical copies of the structure, and whenever the specification's
/// condition evaluates to true demands that both orders produce the same
/// return values and the same abstract state. Any violation is a concrete
/// counterexample showing the condition is not a valid commutativity
/// condition. (Like all testing, a pass is evidence, not proof.)
///
/// State functions are evaluated against replayed copies of the structure
/// frozen at the right moments: s1 is the state before the first
/// invocation, s2 the state before the second.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_SPECVALIDATOR_H
#define COMLAT_RUNTIME_SPECVALIDATOR_H

#include "core/Spec.h"
#include "runtime/GateTarget.h"
#include "support/Random.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace comlat {

/// Structure-specific bindings the validator needs. Final states are
/// compared through GateTarget::gateSignature().
struct ValidationHarness {
  /// Creates a fresh, empty structure.
  std::function<std::unique_ptr<GateTarget>()> MakeTarget;

  /// Produces random arguments for an invocation of \p M.
  std::function<std::vector<Value>(Rng &, MethodId)> RandomArgs;
};

/// A counterexample: the condition claimed the invocations commute, but
/// swapping them changed an observable.
struct ValidationIssue {
  Invocation Inv1;
  Invocation Inv2;
  std::string Detail;

  std::string str(const DataTypeSig &Sig) const;
};

/// Validator configuration.
struct ValidationConfig {
  unsigned Trials = 2000;
  /// Length of the random committed prefix before the tested pair.
  unsigned PrefixOps = 6;
  uint64_t Seed = 0x5eed;
  /// Differential mode: additionally compile every tested pair condition
  /// (core/CondIR.h) and demand that the compiled evaluation agrees with
  /// the tree interpreter on every trial. A divergence is reported as a
  /// ValidationIssue — it means the hot-path evaluator would admit or veto
  /// a pair the reference semantics decides the other way.
  bool Differential = true;
};

/// Searches for a violation of Definition 1 (and, in differential mode, of
/// compiled-vs-interpreted agreement); std::nullopt means no counterexample
/// was found within the budget.
std::optional<ValidationIssue>
validateSpec(const CommSpec &Spec, const ValidationHarness &Harness,
             const ValidationConfig &Config = ValidationConfig());

} // namespace comlat

#endif // COMLAT_RUNTIME_SPECVALIDATOR_H
