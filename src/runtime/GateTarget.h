//===- runtime/GateTarget.h - Structures protectable by gatekeepers -------===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface a data structure exposes to a gatekeeper (§3.3). Per the
/// paper, "a gatekeeper interacts with a data structure only by invoking
/// methods on it, [so] the data structure is effectively a black box": the
/// gatekeeper executes methods, evaluates state functions, and — for
/// general gatekeeping — temporarily undoes and redoes mutating invocations
/// to evaluate conditions in historical states.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_GATETARGET_H
#define COMLAT_RUNTIME_GATETARGET_H

#include "core/MethodSig.h"

#include <functional>
#include <vector>

namespace comlat {

/// Inverse/replay pair for one mutating effect. Undo must restore the
/// *abstract* state exactly; Redo must re-establish it (the concrete
/// representation may differ, which is the whole point of semantic
/// conflict detection).
struct GateAction {
  std::function<void()> Undo;
  std::function<void()> Redo;
};

/// A black-box abstract data type as seen by a gatekeeper. Calls are always
/// made under the gatekeeper's gate mutex, so implementations need no
/// internal synchronization for these entry points.
class GateTarget {
public:
  virtual ~GateTarget();

  /// Executes method \p M with \p Args in the current state, returning its
  /// value. Mutating methods append one or more GateActions describing how
  /// to undo/redo their abstract-state effects; read-only methods append
  /// nothing (even if they mutate the concrete representation, e.g. path
  /// compression).
  virtual Value gateExecute(MethodId M, const std::vector<Value> &Args,
                            std::vector<GateAction> &Actions) = 0;

  /// Evaluates the state function \p F against the *current* state (pure
  /// functions ignore the state).
  virtual Value gateEvalStateFn(StateFnId F,
                                const std::vector<Value> &Args) = 0;

  /// Canonical abstract-state fingerprint; used by the specification
  /// validator to compare final states across execution orders. The
  /// default (empty) disables the state comparison.
  virtual std::string gateSignature() const { return std::string(); }
};

} // namespace comlat

#endif // COMLAT_RUNTIME_GATETARGET_H
