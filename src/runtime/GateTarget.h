//===- runtime/GateTarget.h - Structures protectable by gatekeepers -------===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface a data structure exposes to a gatekeeper (§3.3). Per the
/// paper, "a gatekeeper interacts with a data structure only by invoking
/// methods on it, [so] the data structure is effectively a black box": the
/// gatekeeper executes methods, evaluates state functions, and — for
/// general gatekeeping — temporarily undoes and redoes mutating invocations
/// to evaluate conditions in historical states.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_GATETARGET_H
#define COMLAT_RUNTIME_GATETARGET_H

#include "core/MethodSig.h"
#include "support/InlineVec.h"
#include "support/SmallFunc.h"

namespace comlat {

/// Inverse/replay pair for one mutating effect. Undo must restore the
/// *abstract* state exactly; Redo must re-establish it (the concrete
/// representation may differ, which is the whole point of semantic
/// conflict detection). Move-only: the actions live in exactly one
/// mutation log, and their lambdas (a this-pointer plus a scalar or two)
/// stay inside SmallFunc's inline storage, so recording an effect never
/// allocates.
struct GateAction {
  SmallFunc<void()> Undo;
  SmallFunc<void()> Redo;
};

/// Action list handed to gateExecute. A mutating method records one or
/// two actions, so the inline capacity makes the common case
/// allocation-free.
using GateActionList = InlineVec<GateAction, 4>;

/// Number of admission stripes a striped gatekeeper uses; a power of two
/// no larger than 64 (stripe sets are tracked as one 64-bit mask per
/// transaction).
constexpr unsigned GateStripeCount = 64;

/// Maps a key value to its admission stripe. Equal values (per Value
/// equality, which compares Int and Real numerically) always map to the
/// same stripe — the soundness requirement of key-separable striping — so
/// integral reals are normalized to their integer hash.
unsigned gateStripeOf(const Value &Key);

/// A black-box abstract data type as seen by a gatekeeper. Calls are always
/// made under a gatekeeper gate mutex. With the default (non-concurrent)
/// declaration that is one global mutex, so implementations need no
/// internal synchronization for these entry points; targets that declare
/// gateConcurrentSafe() instead promise stripe-level isolation (below).
class GateTarget {
public:
  virtual ~GateTarget();

  /// Executes method \p M with \p Args in the current state, returning its
  /// value. Mutating methods append one or more GateActions describing how
  /// to undo/redo their abstract-state effects; read-only methods append
  /// nothing (even if they mutate the concrete representation, e.g. path
  /// compression).
  virtual Value gateExecute(MethodId M, ValueSpan Args,
                            GateActionList &Actions) = 0;

  /// Evaluates the state function \p F against the *current* state (pure
  /// functions ignore the state).
  virtual Value gateEvalStateFn(StateFnId F, ValueSpan Args) = 0;

  /// Canonical abstract-state fingerprint; used by the specification
  /// validator to compare final states across execution orders. The
  /// default (empty) disables the state comparison.
  virtual std::string gateSignature() const { return std::string(); }

  /// Opt-in for striped admission: returning true promises that concurrent
  /// gateExecute/gateEvalStateFn calls are safe whenever the key arguments
  /// involved map to different stripes under gateStripeOf (the target
  /// shards its concrete representation by the same function, so
  /// same-stripe calls — which the gatekeeper serializes per stripe — are
  /// the only ones that may touch shared state). Targets with any
  /// cross-key state, or whose state functions read globally, must keep
  /// the default.
  virtual bool gateConcurrentSafe() const { return false; }

  /// Privatization opt-in (CommTM-style coalescing; runtime/Privatizer.h).
  /// Returning true for a method the specification classified as
  /// privatizable promises that the method's entire abstract effect is one
  /// mergeable delta (Slot, Amount) — an addition to a named counter-like
  /// cell — reducible via privDelta, re-applicable via privApplyDelta, and
  /// expressible as one equivalent invocation via privInvocation. For
  /// striped targets, Slot must be the integer value of the method's key
  /// argument (the gatekeeper routes merge application by gateStripeOf of
  /// the slot).
  virtual bool privSupported(MethodId M) const { return false; }

  /// Reduces one invocation of a privSupported method to its delta.
  virtual void privDelta(MethodId M, ValueSpan Args, int64_t &Slot,
                         int64_t &Amount) {
    COMLAT_UNREACHABLE("target does not support privatization");
  }

  /// Applies one (coalesced, committed) delta to the current state. Called
  /// under the same serialization gateExecute runs under; never undone.
  virtual void privApplyDelta(int64_t Slot, int64_t Amount) {
    COMLAT_UNREACHABLE("target does not support privatization");
  }

  /// Renders a pending delta as one invocation with identical abstract
  /// effect, for flushing through the normal admission path when the
  /// owning transaction turns out to need conflict detection after all.
  virtual Invocation privInvocation(int64_t Slot, int64_t Amount) const {
    COMLAT_UNREACHABLE("target does not support privatization");
  }
};

} // namespace comlat

#endif // COMLAT_RUNTIME_GATETARGET_H
