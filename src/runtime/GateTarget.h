//===- runtime/GateTarget.h - Structures protectable by gatekeepers -------===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface a data structure exposes to a gatekeeper (§3.3). Per the
/// paper, "a gatekeeper interacts with a data structure only by invoking
/// methods on it, [so] the data structure is effectively a black box": the
/// gatekeeper executes methods, evaluates state functions, and — for
/// general gatekeeping — temporarily undoes and redoes mutating invocations
/// to evaluate conditions in historical states.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_RUNTIME_GATETARGET_H
#define COMLAT_RUNTIME_GATETARGET_H

#include "core/MethodSig.h"
#include "support/InlineVec.h"
#include "support/SmallFunc.h"

namespace comlat {

/// Inverse/replay pair for one mutating effect. Undo must restore the
/// *abstract* state exactly; Redo must re-establish it (the concrete
/// representation may differ, which is the whole point of semantic
/// conflict detection). Move-only: the actions live in exactly one
/// mutation log, and their lambdas (a this-pointer plus a scalar or two)
/// stay inside SmallFunc's inline storage, so recording an effect never
/// allocates.
struct GateAction {
  SmallFunc<void()> Undo;
  SmallFunc<void()> Redo;
};

/// Action list handed to gateExecute. A mutating method records one or
/// two actions, so the inline capacity makes the common case
/// allocation-free.
using GateActionList = InlineVec<GateAction, 4>;

/// Number of admission stripes a striped gatekeeper uses; a power of two
/// no larger than 64 (stripe sets are tracked as one 64-bit mask per
/// transaction).
constexpr unsigned GateStripeCount = 64;

/// Maps a key value to its admission stripe. Equal values (per Value
/// equality, which compares Int and Real numerically) always map to the
/// same stripe — the soundness requirement of key-separable striping — so
/// integral reals are normalized to their integer hash.
unsigned gateStripeOf(const Value &Key);

/// A black-box abstract data type as seen by a gatekeeper. Calls are always
/// made under a gatekeeper gate mutex. With the default (non-concurrent)
/// declaration that is one global mutex, so implementations need no
/// internal synchronization for these entry points; targets that declare
/// gateConcurrentSafe() instead promise stripe-level isolation (below).
class GateTarget {
public:
  virtual ~GateTarget();

  /// Executes method \p M with \p Args in the current state, returning its
  /// value. Mutating methods append one or more GateActions describing how
  /// to undo/redo their abstract-state effects; read-only methods append
  /// nothing (even if they mutate the concrete representation, e.g. path
  /// compression).
  virtual Value gateExecute(MethodId M, ValueSpan Args,
                            GateActionList &Actions) = 0;

  /// Evaluates the state function \p F against the *current* state (pure
  /// functions ignore the state).
  virtual Value gateEvalStateFn(StateFnId F, ValueSpan Args) = 0;

  /// Canonical abstract-state fingerprint; used by the specification
  /// validator to compare final states across execution orders. The
  /// default (empty) disables the state comparison.
  virtual std::string gateSignature() const { return std::string(); }

  /// Opt-in for striped admission: returning true promises that concurrent
  /// gateExecute/gateEvalStateFn calls are safe whenever the key arguments
  /// involved map to different stripes under gateStripeOf (the target
  /// shards its concrete representation by the same function, so
  /// same-stripe calls — which the gatekeeper serializes per stripe — are
  /// the only ones that may touch shared state). Targets with any
  /// cross-key state, or whose state functions read globally, must keep
  /// the default.
  virtual bool gateConcurrentSafe() const { return false; }
};

} // namespace comlat

#endif // COMLAT_RUNTIME_GATETARGET_H
