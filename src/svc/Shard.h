//===- svc/Shard.h - Consistent-hash ring + spec-driven routing -*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharding layer's pure logic (DESIGN.md §3.12): a consistent-hash
/// ring over N backend shards, and a routing planner that derives where
/// every protocol Op may execute *from the hosted specs' classification*
/// rather than from any hand-maintained table. The lattice makes the
/// scale-out decision mechanical, per method:
///
///  * Keyed — every non-trivial pair involving the method is key-separable
///    and state-free on a consistent argument (the striped-admission
///    premise, PairClass::Separable/KeyArg1): invocations with different
///    keys commute unconditionally, so the key's hash picks the shard and
///    shards never coordinate. Set add/remove/contains land here.
///  * Anywhere — the method is privatizable (MethodClass::Privatizable:
///    an unconditional self-commuter returning nothing): any shard may
///    absorb it into its local replica and the whole-structure view is the
///    join of the replicas. Accumulator increment lands here; the planner
///    attaches such ops to the batch's primary shard to keep a batch on as
///    few shards as possible.
///  * Pinned — everything else (conditional pairs reading abstract state:
///    union-find's rep()-dependent conditions, the accumulator read that
///    never commutes with increment): all invocations serialize through
///    the structure's owning shard, chosen by ring-hashing the structure
///    id. A pinned read observes the owner's replica only — for the
///    accumulator that is a lattice lower bound of the global sum; the
///    precise join is a State merge.
///
/// Everything here is deterministic from (shard count, vnodes, seed): the
/// proxy publishes those three in its Stats text and the loadgen rebuilds
/// an identical ring + planner client-side to recompute every batch's plan
/// for the per-shard replay oracle. The lattice merges (set union,
/// accumulator sum, union-find partition join) live here too, shared by
/// the proxy's State endpoint and the oracle's merge-equality check so the
/// two can never drift.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_SHARD_H
#define COMLAT_SVC_SHARD_H

#include "svc/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace comlat {
namespace svc {

/// splitmix64 finalizer: the ring's point hash. Pure arithmetic, so the
/// proxy and a loadgen in another process agree bit-for-bit.
inline uint64_t shardMix(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// A consistent-hash ring: VNodes points per shard on the u64 circle, a
/// key hashes to the first point clockwise. Construction is deterministic
/// from (NumShards, VNodes, Seed).
class HashRing {
public:
  HashRing(unsigned NumShards, unsigned VNodes, uint64_t Seed);

  unsigned numShards() const { return NumShards; }
  unsigned vnodes() const { return VNodes; }
  uint64_t seed() const { return Seed; }

  /// The shard owning \p Key (already-mixed keys welcome; the ring mixes
  /// again against its seed so correlated keys still spread).
  unsigned shardForKey(uint64_t Key) const;

private:
  unsigned NumShards;
  unsigned VNodes;
  uint64_t Seed;
  /// (ring point, shard), sorted by point.
  std::vector<std::pair<uint64_t, uint32_t>> Points;
};

/// Where a method's invocations may execute (see file comment).
enum class RouteKind : uint8_t { Keyed, Pinned, Anywhere };

const char *routeKindName(RouteKind K);

/// The derived routing rule for one protocol method.
struct MethodRoute {
  RouteKind Kind = RouteKind::Pinned;
  /// Keyed only: which Op argument is the key (0 = A, 1 = B).
  unsigned KeyArg = 0;
};

/// One batch's routing plan: the ops grouped by target shard, ascending
/// shard id, each group keeping its ops in original batch order. The
/// groups execute as independent transactions (they commute across shards
/// by construction), so a plan with one group is forwardable whole.
struct RoutePlan {
  struct Sub {
    uint32_t Shard = 0;
    std::vector<uint32_t> OpIdx; ///< indices into the batch's op array
  };
  std::vector<Sub> Subs;

  bool singleShard() const { return Subs.size() == 1; }
};

/// Derives per-method routes from the hosted specs' SpecClassification and
/// plans batches over a ring. Stateless after construction; shareable.
class ShardRouter {
public:
  explicit ShardRouter(const HashRing &Ring);

  /// The derived rule for (\p Obj, \p Method). Ops must satisfy validOp.
  const MethodRoute &route(ObjectId Obj, uint8_t Method) const {
    return Routes[static_cast<unsigned>(Obj)][Method];
  }

  /// The shard owning structure \p Obj (where its pinned ops serialize).
  unsigned ownerShard(ObjectId Obj) const {
    return Owners[static_cast<unsigned>(Obj)];
  }

  /// The shard for one op, ignoring batch context. Anywhere ops get the
  /// sentinel; the planner resolves them to the batch's primary shard.
  static constexpr unsigned AnyShard = ~0u;
  unsigned shardForOp(const Op &O) const;

  /// Groups \p Ops into per-shard sub-batches (see RoutePlan). Never
  /// returns an empty plan for a non-empty batch.
  RoutePlan plan(const std::vector<Op> &Ops) const;

  const HashRing &ring() const { return Ring; }

private:
  const HashRing &Ring;
  MethodRoute Routes[3][3];
  unsigned Owners[3];
};

/// Joins N backends' stateText() dumps into the whole-structure view:
/// set = union of the shard sets, acc = sum of the shard replicas, uf =
/// partition join (union, over a fresh forest, of every shard's observed
/// same-set classes). Output is renderStateText-formatted, so it is
/// byte-comparable with a merged oracle view produced by this same
/// function. False (Err set) on malformed or inconsistent inputs.
bool mergeStateTexts(const std::vector<std::string> &Texts, std::string &Out,
                     std::string *Err);

/// Merges N Prometheus text exports by summing samples with identical
/// name+labels keys; comments pass through once. Scatter-gathered Metrics
/// replies reconcile through this.
std::string mergeMetricsTexts(const std::vector<std::string> &Texts);

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_SHARD_H
