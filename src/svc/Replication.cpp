//===- svc/Replication.cpp - Unified replay + WAL shipping -----------------===//

#include "svc/Replication.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"
#include "runtime/Transaction.h"

#include <dirent.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace comlat;
using namespace comlat::svc;

namespace {

uint64_t monotonicNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The comlat_repl_* instrumentation, registered once per process. The
/// ship-side families come alive on leaders, the apply-side ones on
/// followers; registering both everywhere keeps the export self-describing.
struct ReplMetrics {
  // Leader / hub side.
  obs::Gauge *Subscribers;
  obs::Counter *ShipChunks;
  obs::Counter *ShipBytes;
  obs::Counter *ShipSnapshots;
  obs::Counter *DroppedSubs;
  // Follower / client side.
  obs::Counter *Applied;
  obs::Counter *Chunks;
  obs::Counter *Bytes;
  obs::Counter *Reconnects;
  obs::Gauge *LagSeq;
  obs::Gauge *LagMs;

  static ReplMetrics &get() {
    static ReplMetrics M = [] {
      obs::MetricsRegistry &R = obs::MetricsRegistry::global();
      ReplMetrics X;
      X.Subscribers = R.gauge("comlat_repl_subscribers");
      X.ShipChunks = R.counter("comlat_repl_ship_chunks_total");
      X.ShipBytes = R.counter("comlat_repl_ship_bytes_total");
      X.ShipSnapshots = R.counter("comlat_repl_ship_snapshots_total");
      X.DroppedSubs = R.counter("comlat_repl_dropped_subscribers_total");
      X.Applied = R.counter("comlat_repl_applied_total");
      X.Chunks = R.counter("comlat_repl_chunks_total");
      X.Bytes = R.counter("comlat_repl_bytes_total");
      X.Reconnects = R.counter("comlat_repl_reconnects_total");
      X.LagSeq = R.gauge("comlat_repl_lag_seq");
      X.LagMs = R.gauge("comlat_repl_lag_ms");
      return X;
    }();
    return M;
  }
};

/// Tail-subscription keys for the hubs of this process (each Wal keys its
/// sinks by caller-chosen id; distinct hubs must never collide).
std::atomic<uint64_t> NextTailKey{1};

/// First sequence parsed from a `<prefix><seq><suffix>` file name scan of
/// \p Dir, picking the lexicographically smallest (oldest) or largest
/// (newest) match; 0 when none exist.
uint64_t scanNamesFor(const std::string &Dir, const char *Prefix,
                      const char *Suffix, bool Newest) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return 0;
  const size_t PrefixLen = std::strlen(Prefix);
  const size_t SuffixLen = std::strlen(Suffix);
  std::string Pick;
  while (struct dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (Name.size() <= PrefixLen + SuffixLen ||
        Name.compare(0, PrefixLen, Prefix) != 0 ||
        Name.compare(Name.size() - SuffixLen, SuffixLen, Suffix) != 0)
      continue;
    if (Pick.empty() || (Newest ? Name > Pick : Name < Pick))
      Pick = Name;
  }
  ::closedir(D);
  if (Pick.empty())
    return 0;
  return std::strtoull(Pick.c_str() + PrefixLen, nullptr, 10);
}

} // namespace

uint64_t comlat::svc::oldestWalSeq(const std::string &Dir) {
  return scanNamesFor(Dir, "wal-", ".log", /*Newest=*/false);
}

uint64_t comlat::svc::newestSnapshotSeq(const std::string &Dir) {
  return scanNamesFor(Dir, "snap-", ".snap", /*Newest=*/true);
}

//===----------------------------------------------------------------------===//
// Replay targets
//===----------------------------------------------------------------------===//

bool HostReplayTarget::loadSnapshot(const std::string &State,
                                    std::string *Err) {
  return Host.loadSnapshot(State, Err);
}

bool HostReplayTarget::applyBatch(const std::vector<Op> &Ops,
                                  std::vector<int64_t> &Results,
                                  std::string *Err) {
  // One transaction per record — the same gated path live batches take, so
  // replay re-exercises the detectors rather than bypassing them.
  Transaction Tx(allocTxId());
  for (const Op &O : Ops) {
    int64_t Result = 0;
    if (!Host.applyOp(Tx, O, Result)) {
      Tx.abort();
      if (Err)
        *Err = "gated apply vetoed a logged operation";
      return false;
    }
    Results.push_back(Result);
  }
  Tx.commit();
  return true;
}

bool OracleReplayTarget::loadSnapshot(const std::string &State,
                                      std::string *Err) {
  if (!Replica.loadSnapshot(State)) {
    if (Err)
      *Err = "malformed snapshot state";
    return false;
  }
  return true;
}

bool OracleReplayTarget::applyBatch(const std::vector<Op> &Ops,
                                    std::vector<int64_t> &Results,
                                    std::string *) {
  for (const Op &O : Ops)
    Results.push_back(Replica.applyOp(O));
  return true;
}

//===----------------------------------------------------------------------===//
// ReplayEngine
//===----------------------------------------------------------------------===//

bool ReplayEngine::bootstrap(const SnapshotData &Snap, std::string *Err) {
  std::string LoadErr;
  if (!Target.loadSnapshot(Snap.State, &LoadErr)) {
    if (Err)
      *Err = "snapshot " + std::to_string(Snap.Seq) + " rejected: " + LoadErr;
    return false;
  }
  Applied = Snap.Seq;
  return true;
}

bool ReplayEngine::apply(const WalRecord &R, Outcome &Out, std::string *Err) {
  if (R.Seq <= Applied) {
    if (Policy == SeqPolicy::Resume) {
      Out = Outcome::Skipped;
      return true;
    }
    if (Err)
      *Err = "duplicate commit sequence " + std::to_string(R.Seq);
    return false;
  }
  if (Policy != SeqPolicy::Ordered && R.Seq != Applied + 1) {
    if (Err)
      *Err = "wal sequence gap at " + std::to_string(Applied + 1) +
             " (next record is " + std::to_string(R.Seq) + ")";
    return false;
  }
  Scratch.clear();
  std::string ApplyErr;
  if (!Target.applyBatch(R.Ops, Scratch, &ApplyErr)) {
    if (Err)
      *Err = "replay failed at seq " + std::to_string(R.Seq) + ": " + ApplyErr;
    return false;
  }
  if (Scratch.size() != R.Results.size()) {
    if (Err)
      *Err = "replay diverged at seq " + std::to_string(R.Seq) +
             ": recomputed " + std::to_string(Scratch.size()) +
             " results for " + std::to_string(R.Results.size()) + " logged";
    return false;
  }
  for (size_t I = 0; I != Scratch.size(); ++I) {
    if (Scratch[I] != R.Results[I]) {
      if (Err)
        *Err = "replay diverged at seq " + std::to_string(R.Seq) + " op " +
               std::to_string(I);
      return false;
    }
  }
  Applied = R.Seq;
  ++Count;
  Out = Outcome::Applied;
  return true;
}

bool ReplayEngine::applyAll(const std::vector<WalRecord> &Records,
                            std::string *Err) {
  for (const WalRecord &R : Records) {
    Outcome Out;
    if (!apply(R, Out, Err))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// RecoverySource
//===----------------------------------------------------------------------===//

bool RecoverySource::load(bool Repair, std::string *Err) {
  HaveSnap = loadNewestSnapshot(Dir, Snap);
  if (!scanWalDir(Dir, HaveSnap ? Snap.Seq : 0, Scan, Err, Repair))
    return false;
  Loaded = true;
  return true;
}

uint64_t RecoverySource::watermark() const {
  return std::max(HaveSnap ? Snap.Seq : 0, Scan.LastSeq);
}

bool RecoverySource::replayInto(ReplayEngine &Engine, std::string *Err) {
  if (HaveSnap && !Engine.bootstrap(Snap, Err))
    return false;
  return Engine.applyAll(Scan.Records, Err);
}

//===----------------------------------------------------------------------===//
// ReplicationHub
//===----------------------------------------------------------------------===//

ReplicationHub::ReplicationHub(Wal &Log, std::string WalDir)
    : Log(Log), Dir(std::move(WalDir)),
      TailKey(NextTailKey.fetch_add(1, std::memory_order_relaxed)) {
  ReplMetrics::get(); // register the families up front
}

ReplicationHub::~ReplicationHub() { stop(); }

void ReplicationHub::start() {
  if (Started)
    return;
  Started = true;
  Shipper = std::thread([this] { shipperMain(); });
  Token = std::make_shared<TailToken>();
  Token->Hub = this;
  std::shared_ptr<TailToken> T = Token;
  Log.subscribeTail(TailKey,
                    [T](uint64_t First, uint64_t Last, const std::string &B) {
                      std::lock_guard<std::mutex> G(T->Mu);
                      if (T->Hub)
                        T->Hub->onLive(First, Last, B);
                    });
}

void ReplicationHub::requestStop() {
  // Flag-only by contract: a missed notify costs at most one 500ms tick
  // of the shipper's timed wait.
  StopFlag.store(true, std::memory_order_release);
  Cv.notify_all();
}

void ReplicationHub::stop() {
  if (!Started || StoppedDone)
    return;
  StoppedDone = true;
  Log.unsubscribeTail(TailKey);
  {
    // After this block no trailing delivery can reach the hub (the sink
    // locks the token around its callback).
    std::lock_guard<std::mutex> G(Token->Mu);
    Token->Hub = nullptr;
  }
  requestStop();
  Shipper.join();
  // Close out whatever subscribers remain so their connections die with
  // the hub instead of hanging half-subscribed.
  for (auto &[Id, S] : Subs) {
    (void)Id;
    S.Sink->close();
  }
  Subs.clear();
  SubCount.store(0, std::memory_order_release);
  ReplMetrics::get().Subscribers->set(0);
}

ReplicationHub::SubscribePlan
ReplicationHub::planSubscribe(uint64_t From) const {
  SubscribePlan P;
  P.DurableSeq = Log.durableSeq();
  if (From > P.DurableSeq) {
    // A subscriber past our durable watermark holds history we never
    // acknowledged: divergent, and no amount of shipping can fix it.
    P.Reason = "subscriber watermark " + std::to_string(From) +
               " is ahead of the leader's durable watermark " +
               std::to_string(P.DurableSeq) + " (divergent history)";
    return P;
  }
  if (From == P.DurableSeq) {
    P.Accept = true;
    return P;
  }
  const uint64_t Oldest = oldestWalSeq(Dir);
  if (Oldest != 0 && From + 1 >= Oldest) {
    P.Accept = true; // every record past From is still on disk
    return P;
  }
  if (From == 0) {
    const uint64_t SnapSeq = newestSnapshotSeq(Dir);
    if (SnapSeq != 0) {
      P.Accept = true;
      P.SendSnapshot = true;
      P.SnapshotSeq = SnapSeq;
      return P;
    }
    P.Reason = "leader wal starts at " + std::to_string(Oldest) +
               " with no snapshot to bridge";
    return P;
  }
  P.Reason = "leader truncated past subscriber watermark " +
             std::to_string(From) +
             " (restart the follower with a clean wal dir)";
  return P;
}

uint64_t ReplicationHub::addSubscriber(uint64_t From, const SubscribePlan &Plan,
                                       std::shared_ptr<ChunkSink> Sink) {
  const uint64_t Id = NextSubId.fetch_add(1, std::memory_order_relaxed);
  // Count it before the Add event exists: a live delivery racing this
  // registration must be queued for the shipper, not discarded.
  SubCount.fetch_add(1, std::memory_order_acq_rel);
  Event E;
  E.K = Event::Kind::Add;
  E.Id = Id;
  E.From = From;
  E.SendSnapshot = Plan.SendSnapshot;
  E.Sink = std::move(Sink);
  enqueue(std::move(E));
  return Id;
}

void ReplicationHub::removeSubscriber(uint64_t Id) {
  Event E;
  E.K = Event::Kind::Remove;
  E.Id = Id;
  enqueue(std::move(E));
}

void ReplicationHub::enqueue(Event E) {
  std::lock_guard<std::mutex> G(Mu);
  if (StopFlag.load(std::memory_order_acquire))
    return;
  Queue.push_back(std::move(E));
  Cv.notify_all();
}

void ReplicationHub::onLive(uint64_t FirstSeq, uint64_t LastSeq,
                            const std::string &Bytes) {
  if (StopFlag.load(std::memory_order_acquire))
    return;
  // With no subscriber registered or pending there is nobody to ship to,
  // and the records are durable on disk — any future subscriber's catch-up
  // scan covers them. Dropping here keeps an idle leader from copying
  // every group into a queue nobody drains.
  if (SubCount.load(std::memory_order_acquire) == 0)
    return;
  Event E;
  E.K = Event::Kind::Live;
  E.FirstSeq = FirstSeq;
  E.LastSeq = LastSeq;
  E.Bytes = Bytes;
  enqueue(std::move(E));
}

void ReplicationHub::shipperMain() {
  for (;;) {
    Event E;
    bool Have = false;
    {
      std::unique_lock<std::mutex> G(Mu);
      Cv.wait_for(G, std::chrono::milliseconds(500), [this] {
        return StopFlag.load(std::memory_order_acquire) || !Queue.empty();
      });
      if (!Queue.empty()) {
        E = std::move(Queue.front());
        Queue.pop_front();
        Have = true;
      } else if (StopFlag.load(std::memory_order_acquire)) {
        return;
      }
    }
    if (!Have) {
      // Idle tick: empty heartbeats carry the durable watermark so the
      // followers' lag clocks stay honest between commits.
      std::vector<uint64_t> Dead;
      for (auto &[Id, S] : Subs)
        if (!sendChunk(S, 0, std::string()))
          Dead.push_back(Id);
      for (uint64_t Id : Dead) {
        auto It = Subs.find(Id);
        if (It != Subs.end()) {
          dropSub(Id, It->second, "heartbeat send failed");
          Subs.erase(It);
        }
      }
      continue;
    }
    switch (E.K) {
    case Event::Kind::Add:
      processAdd(E);
      break;
    case Event::Kind::Remove: {
      auto It = Subs.find(E.Id);
      if (It != Subs.end()) {
        // The connection is already closing; just forget the sub.
        Subs.erase(It);
        SubCount.fetch_sub(1, std::memory_order_acq_rel);
        ReplMetrics::get().Subscribers->set(
            static_cast<int64_t>(Subs.size()));
      }
      break;
    }
    case Event::Kind::Live:
      processLive(E);
      break;
    }
  }
}

bool ReplicationHub::sendChunk(Sub &S, uint64_t LastSeq,
                               const std::string &Bytes) {
  // A big group-commit's concatenated records can exceed the protocol's
  // frame bound (64 records of up to MaxBatchOps ops each), so the wire
  // splits at record boundaries: each record frame self-describes its size
  // as u32 len | payload | u32 crc.
  static constexpr size_t WireChunkMax = 256 * 1024;
  size_t Off = 0;
  do {
    size_t End = Off;
    while (End < Bytes.size()) {
      if (Bytes.size() - End < 8) { // malformed tail: ship it, let the
        End = Bytes.size();         // follower's decode refuse it loudly
        break;
      }
      uint32_t Len = 0;
      std::memcpy(&Len, Bytes.data() + End, sizeof(Len));
      const size_t RecSize = static_cast<size_t>(Len) + 8;
      if (End != Off && End + RecSize - Off > WireChunkMax)
        break;
      End += RecSize;
    }
    Request R;
    R.ReqId = 0;
    R.Type = MsgType::WalChunk;
    R.Seq = Log.durableSeq();
    R.StampUs = monotonicNowUs();
    R.Blob = Bytes.substr(Off, End - Off);
    std::string Frame;
    encodeRequest(R, Frame);
    if (!S.Sink->sendFrame(std::move(Frame)))
      return false;
    Off = End;
  } while (Off < Bytes.size());
  if (LastSeq > S.SentThrough)
    S.SentThrough = LastSeq;
  if (!Bytes.empty()) {
    ReplMetrics::get().ShipChunks->add();
    ReplMetrics::get().ShipBytes->add(Bytes.size());
    COMLAT_TRACE(obs::EventKind::ReplShip, 0, static_cast<int64_t>(LastSeq),
                 static_cast<int64_t>(Bytes.size()), 0);
  }
  return true;
}

void ReplicationHub::processAdd(Event &E) {
  ReplMetrics &M = ReplMetrics::get();
  Sub S;
  S.Sink = std::move(E.Sink);
  S.SentThrough = E.From;
  auto Abandon = [&] {
    S.Sink->close();
    SubCount.fetch_sub(1, std::memory_order_acq_rel);
    M.DroppedSubs->add();
  };

  if (E.SendSnapshot) {
    SnapshotData Snap;
    if (!loadNewestSnapshot(Dir, Snap)) {
      Abandon(); // snapshot vanished between plan and add; reconnect replans
      return;
    }
    static constexpr size_t SnapChunkMax = 256 * 1024;
    size_t Off = 0;
    do {
      const size_t N = std::min(SnapChunkMax, Snap.State.size() - Off);
      Request R;
      R.ReqId = 0;
      R.Type = MsgType::SnapshotXfer;
      R.Seq = Snap.Seq;
      R.Last = (Off + N == Snap.State.size()) ? 1 : 0;
      R.Blob = Snap.State.substr(Off, N);
      std::string Frame;
      encodeRequest(R, Frame);
      if (!S.Sink->sendFrame(std::move(Frame))) {
        Abandon();
        return;
      }
      Off += N;
    } while (Off < Snap.State.size());
    S.SentThrough = Snap.Seq;
    M.ShipSnapshots->add();
  }

  // Catch up from disk: every durable record past SentThrough is fully on
  // disk (the covering fdatasync precedes its live emission), and any live
  // event queued behind this Add that overlaps the scan is deduped by
  // SentThrough in processLive. A torn tail here is just the writer
  // mid-append — the live tail covers those records; a gap means
  // truncation raced the plan, so drop and let the reconnect replan.
  WalScan Scan;
  std::string ScanErr;
  if (!scanWalDir(Dir, S.SentThrough, Scan, &ScanErr, /*Repair=*/false) ||
      Scan.Gap) {
    Abandon();
    return;
  }

  // Ship the backlog in bounded chunks, pacing against the sink's backlog
  // so one slow follower cannot balloon the server's write buffers.
  static constexpr size_t CatchupChunkMax = 64 * 1024;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto ShipPaced = [&](uint64_t LastSeq, const std::string &Bytes) {
    while (S.Sink->backlog() > MaxSinkBacklog) {
      if (std::chrono::steady_clock::now() >= Deadline)
        return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return sendChunk(S, LastSeq, Bytes);
  };
  std::string Bytes;
  uint64_t Last = S.SentThrough;
  for (const WalRecord &R : Scan.Records) {
    encodeWalRecord(Bytes, R.Seq, R.Ops, R.Results);
    Last = R.Seq;
    if (Bytes.size() >= CatchupChunkMax) {
      if (!ShipPaced(Last, Bytes)) {
        Abandon();
        return;
      }
      Bytes.clear();
    }
  }
  if (!Bytes.empty() && !ShipPaced(Last, Bytes)) {
    Abandon();
    return;
  }

  Subs.emplace(E.Id, std::move(S));
  M.Subscribers->set(static_cast<int64_t>(Subs.size()));
}

void ReplicationHub::processLive(const Event &E) {
  if (Subs.empty())
    return;
  std::vector<uint64_t> Dead;
  for (auto &[Id, S] : Subs) {
    // Catch-up overlap: this sub already holds everything in the chunk.
    // (A partial overlap still ships whole — the follower's Resume engine
    // skips the records at or below its watermark idempotently.)
    if (E.LastSeq <= S.SentThrough)
      continue;
    if (S.Sink->backlog() > MaxSinkBacklog) {
      Dead.push_back(Id); // slow follower: drop, it resumes on reconnect
      continue;
    }
    if (!sendChunk(S, E.LastSeq, E.Bytes))
      Dead.push_back(Id);
  }
  for (uint64_t Id : Dead) {
    auto It = Subs.find(Id);
    if (It != Subs.end()) {
      dropSub(Id, It->second, "backlog over bound");
      Subs.erase(It);
    }
  }
  ReplMetrics::get().Subscribers->set(static_cast<int64_t>(Subs.size()));
}

void ReplicationHub::dropSub(uint64_t Id, Sub &S, const char *Why) {
  (void)Id;
  (void)Why;
  S.Sink->close();
  SubCount.fetch_sub(1, std::memory_order_acq_rel);
  ReplMetrics::get().DroppedSubs->add();
}

//===----------------------------------------------------------------------===//
// ReplicationClient
//===----------------------------------------------------------------------===//

ReplicationClient::ReplicationClient(ObjectHost &Host, FollowConfig Config,
                                     FatalFn OnFatal)
    : Host(Host), Config(std::move(Config)), OnFatal(std::move(OnFatal)),
      Target(this->Host), Engine(Target, SeqPolicy::Resume) {
  ReplMetrics::get(); // register the families up front
}

ReplicationClient::~ReplicationClient() { stop(); }

bool ReplicationClient::bootstrap(uint64_t FromSeq, SnapshotData *InstalledSnap,
                                  bool *GotSnapshot, std::string *Err) {
  if (GotSnapshot)
    *GotSnapshot = false;
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Config.ConnectTimeoutSec));
  std::string ConnErr;
  while (!Link.connect(Config.LeaderHost, Config.LeaderPort, &ConnErr)) {
    if (StopFlag.load(std::memory_order_acquire)) {
      if (Err)
        *Err = "stopped before the leader became reachable";
      return false;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      if (Err)
        *Err = "leader unreachable: " + ConnErr;
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Config.ReconnectDelayMs));
  }

  Request Req;
  Req.ReqId = 1;
  Req.Type = MsgType::Subscribe;
  Req.Seq = FromSeq;
  Response Resp;
  if (!Link.call(Req, Resp)) {
    if (Err)
      *Err = "subscribe: connection lost";
    return false;
  }
  if (Resp.St != Status::Ok) {
    if (Err)
      *Err = "leader refused subscription: " + Resp.Text;
    return false;
  }
  LeaderDurable.store(Resp.CommitSeq, std::memory_order_release);

  if (Resp.Text.find("snapshot=") != std::string::npos) {
    if (FromSeq != 0) {
      // The leader only offers a snapshot when it truncated past us; a
      // follower with local state cannot splice one in.
      if (Err)
        *Err = "leader offers a snapshot but the follower has local state; "
               "clear the follower wal dir and restart";
      return false;
    }
    SnapshotData Snap;
    if (!receiveSnapshot(Snap, Err))
      return false;
    if (!installSnapshot(Snap, Err))
      return false;
    if (InstalledSnap)
      *InstalledSnap = Snap;
    if (GotSnapshot)
      *GotSnapshot = true;
  } else {
    Engine.seedApplied(FromSeq);
  }
  Applied.store(Engine.appliedSeq(), std::memory_order_release);
  return true;
}

bool ReplicationClient::receiveSnapshot(SnapshotData &Snap, std::string *Err) {
  Snap.Seq = 0;
  Snap.State.clear();
  bool First = true;
  for (;;) {
    Request R;
    if (!Link.recvRequest(R)) {
      if (Err)
        *Err = "connection lost during snapshot transfer";
      return false;
    }
    if (R.Type != MsgType::SnapshotXfer) {
      if (Err)
        *Err = "unexpected frame during snapshot transfer";
      return false;
    }
    if (First) {
      Snap.Seq = R.Seq;
      First = false;
    } else if (R.Seq != Snap.Seq) {
      if (Err)
        *Err = "snapshot sequence changed mid-transfer";
      return false;
    }
    Snap.State += R.Blob;
    if (R.Last)
      return true;
  }
}

bool ReplicationClient::installSnapshot(const SnapshotData &Snap,
                                        std::string *Err) {
  return Engine.bootstrap(Snap, Err);
}

void ReplicationClient::start(Wal *L) {
  Log = L;
  Applier = std::thread([this] { applyMain(); });
}

void ReplicationClient::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  if (Link.fd() >= 0)
    ::shutdown(Link.fd(), SHUT_RDWR); // break a blocking recv
}

void ReplicationClient::stop() {
  requestStop();
  if (Applier.joinable())
    Applier.join();
}

void ReplicationClient::applyMain() {
  for (;;) {
    Request R;
    if (!Link.recvRequest(R)) {
      if (StopFlag.load(std::memory_order_acquire))
        return;
      if (Link.disconnected()) {
        if (!reconnect())
          return; // stopped, or fatal already reported
        continue;
      }
      fatal("undecodable frame from the leader");
      return;
    }
    if (!handleChunk(R))
      return;
  }
}

bool ReplicationClient::reconnect() {
  ReplMetrics::get().Reconnects->add();
  Reconnects.fetch_add(1, std::memory_order_acq_rel);
  for (;;) {
    Link.close();
    if (StopFlag.load(std::memory_order_acquire))
      return false;
    std::string ConnErr;
    if (!Link.connect(Config.LeaderHost, Config.LeaderPort, &ConnErr)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Config.ReconnectDelayMs));
      continue; // leader mid-restart: keep trying until stopped
    }
    Request Req;
    Req.ReqId = 1;
    Req.Type = MsgType::Subscribe;
    Req.Seq = Applied.load(std::memory_order_acquire);
    Response Resp;
    if (!Link.call(Req, Resp)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Config.ReconnectDelayMs));
      continue;
    }
    if (Resp.St != Status::Ok) {
      fatal("leader refused resubscription: " + Resp.Text);
      return false;
    }
    LeaderDurable.store(Resp.CommitSeq, std::memory_order_release);
    if (Resp.Text.find("snapshot=") != std::string::npos) {
      // Only a still-fresh, non-durable follower can swallow a bootstrap
      // snapshot after the fact; anyone else must restart clean.
      if (Req.Seq != 0 || Log) {
        fatal("leader truncated past our watermark; restart the follower "
              "with a clean wal dir");
        return false;
      }
      SnapshotData Snap;
      std::string SnapErr;
      if (!receiveSnapshot(Snap, &SnapErr)) {
        if (Link.disconnected())
          continue;
        fatal(SnapErr);
        return false;
      }
      std::string InstallErr;
      std::lock_guard<std::mutex> G(ApplyMu);
      if (!installSnapshot(Snap, &InstallErr)) {
        fatal(InstallErr);
        return false;
      }
      Applied.store(Engine.appliedSeq(), std::memory_order_release);
    }
    return true;
  }
}

bool ReplicationClient::handleChunk(const Request &R) {
  ReplMetrics &M = ReplMetrics::get();
  if (R.Type != MsgType::WalChunk) {
    fatal("unexpected frame type " +
          std::to_string(static_cast<unsigned>(R.Type)) +
          " on the subscription channel");
    return false;
  }
  size_t Pos = 0;
  WalRecord Rec;
  for (;;) {
    const size_t Start = Pos;
    const WalDecode D = decodeWalRecord(R.Blob, Pos, Rec);
    if (D == WalDecode::End)
      break;
    if (D == WalDecode::Torn) {
      fatal("torn record inside a shipped chunk");
      return false;
    }
    std::lock_guard<std::mutex> G(ApplyMu);
    ReplayEngine::Outcome Out;
    std::string ApplyErr;
    if (!Engine.apply(Rec, Out, &ApplyErr)) {
      fatal(ApplyErr);
      return false;
    }
    if (Out != ReplayEngine::Outcome::Applied)
      continue; // resume overlap, skipped idempotently
    if (Log) {
      // Mirror the exact framed bytes the leader shipped; the sequences
      // must line up, or the follower's own log would lie about history.
      std::string Bytes = R.Blob.substr(Start, Pos - Start);
      const uint64_t Assigned = Log->logCommit(
          [B = std::move(Bytes)](uint64_t, std::string &Out) { Out += B; });
      if (Assigned != Rec.Seq) {
        fatal("follower wal sequence skew: assigned " +
              std::to_string(Assigned) + " for shipped record " +
              std::to_string(Rec.Seq));
        return false;
      }
    }
    Applied.store(Rec.Seq, std::memory_order_release);
    M.Applied->add();
    COMLAT_TRACE(obs::EventKind::ReplApply, 0, static_cast<int64_t>(Rec.Seq),
                 0, 0);
  }
  if (R.Seq > LeaderDurable.load(std::memory_order_acquire))
    LeaderDurable.store(R.Seq, std::memory_order_release);
  M.Chunks->add();
  M.Bytes->add(R.Blob.size());
  const uint64_t App = Applied.load(std::memory_order_acquire);
  M.LagSeq->set(R.Seq > App ? static_cast<int64_t>(R.Seq - App) : 0);
  const uint64_t Now = monotonicNowUs();
  M.LagMs->set(R.StampUs != 0 && Now > R.StampUs
                   ? static_cast<int64_t>((Now - R.StampUs) / 1000)
                   : 0);
  return true;
}

void ReplicationClient::fatal(const std::string &Msg) {
  bool Expected = false;
  if (!Failed.compare_exchange_strong(Expected, true,
                                      std::memory_order_acq_rel))
    return;
  if (OnFatal)
    OnFatal(Msg);
}
