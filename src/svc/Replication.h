//===- svc/Replication.h - Unified replay + WAL shipping --------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replication layer of the serving stack (DESIGN.md §3.11). The WAL is
/// a conflict-ordered commit stream (svc/Wal.h); everything that *consumes*
/// that stream — crash recovery, the loadgen recovery audit's oracle, and
/// live follower replicas — goes through one ReplayEngine: apply records in
/// sequence order to a ReplayTarget and demand the recomputed results match
/// the logged (acknowledged) ones. Any disagreement is divergence, and the
/// policy is refusal: recovery fails startup, a follower kills itself, the
/// audit reports the property violated. There is no "repair" for divergence
/// the way there is for a torn tail — a diverged replica has re-executed
/// acknowledged history differently, which the commutativity argument says
/// cannot happen unless the state or the log is wrong.
///
/// On top of the engine sit the two halves of WAL shipping:
///
///  * ReplicationHub (leader): owns one Wal tail subscription and a shipper
///    thread fanning durable records out to subscribers. A subscriber at
///    watermark W first gets history it is missing — straight from the
///    closed segments on disk, or a full SnapshotXfer when truncation has
///    already dropped W's records — then live WalChunk frames pushed past
///    the durable watermark. The leader never blocks on a subscriber: one
///    that backlogs past a bound is dropped and expected to reconnect and
///    resume from its watermark (snapshot-refresh fallback included).
///  * ReplicationClient (follower): bootstraps (subscribe + optional
///    snapshot install), then applies the tail through the ReplayEngine on
///    one apply thread, mirroring every applied record into the follower's
///    own WAL when it runs durable. Disconnects reconnect and resubscribe
///    from the applied watermark; divergence and truncated-past-us
///    subscriptions are fatal by policy.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_REPLICATION_H
#define COMLAT_SVC_REPLICATION_H

#include "svc/LoadGen.h"
#include "svc/Objects.h"
#include "svc/Snapshot.h"
#include "svc/Wal.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace comlat {
namespace svc {

//===----------------------------------------------------------------------===//
// ReplayEngine: the one replay code path
//===----------------------------------------------------------------------===//

/// Where replayed records land. Two implementations: the gated ObjectHost
/// (recovery, followers) and the sequential OracleReplica (audits).
class ReplayTarget {
public:
  virtual ~ReplayTarget() = default;

  /// Installs a snapshot state dump into the (fresh) target.
  virtual bool loadSnapshot(const std::string &State, std::string *Err) = 0;

  /// Applies one batch atomically, appending one result per op to
  /// \p Results. False (Err set) when the target vetoed or failed.
  virtual bool applyBatch(const std::vector<Op> &Ops,
                          std::vector<int64_t> &Results,
                          std::string *Err) = 0;

  /// Canonical abstract-state dump (renderStateText format).
  virtual std::string stateText() const = 0;
};

/// Replays into an ObjectHost through the gated path, one transaction per
/// record — the same apply path live batches take.
class HostReplayTarget : public ReplayTarget {
public:
  explicit HostReplayTarget(ObjectHost &Host) : Host(Host) {}
  bool loadSnapshot(const std::string &State, std::string *Err) override;
  bool applyBatch(const std::vector<Op> &Ops, std::vector<int64_t> &Results,
                  std::string *Err) override;
  std::string stateText() const override { return Host.stateText(); }

private:
  ObjectHost &Host;
};

/// Replays into an owned sequential OracleReplica (the audits' oracle).
class OracleReplayTarget : public ReplayTarget {
public:
  explicit OracleReplayTarget(size_t UfElements) : Replica(UfElements) {}
  bool loadSnapshot(const std::string &State, std::string *Err) override;
  bool applyBatch(const std::vector<Op> &Ops, std::vector<int64_t> &Results,
                  std::string *Err) override;
  std::string stateText() const override { return Replica.stateText(); }

private:
  OracleReplica Replica;
};

/// How the engine treats record sequence numbers relative to its applied
/// watermark.
enum class SeqPolicy {
  /// Records at or below the watermark are skipped idempotently (a
  /// follower resuming mid-stream sees overlap by design); a skipped-ahead
  /// sequence is still a fatal gap.
  Resume,
  /// Duplicates are as fatal as gaps: the disk audits demand each
  /// acknowledged sequence appear exactly once, contiguously.
  Strict,
  /// Duplicates are fatal but gaps are tolerated: the live loadgen verify
  /// replays only the batches whose ACKs it saw, and a reply lost to a
  /// tolerated disconnect legitimately leaves a hole (the final-state
  /// comparison still catches a hole that mattered).
  Ordered,
};

/// Applies a verified snapshot + WAL prefix/tail to a ReplayTarget,
/// demanding recomputed results match logged ones. Not thread-safe; one
/// replay stream per engine.
class ReplayEngine {
public:
  ReplayEngine(ReplayTarget &Target, SeqPolicy Policy)
      : Target(Target), Policy(Policy) {}

  /// Seeds the applied watermark without touching the target — a Strict
  /// verify of a run that started mid-history (e.g. after a restart)
  /// seeds to its first committed sequence minus one.
  void seedApplied(uint64_t Seq) { Applied = Seq; }

  /// Installs \p Snap into the target and moves the watermark to its
  /// sequence. Only legal before any apply.
  bool bootstrap(const SnapshotData &Snap, std::string *Err);

  enum class Outcome { Applied, Skipped };

  /// Applies one record: sequence-checked per the policy, replayed through
  /// the target, results compared against the logged ones. False (Err set)
  /// on a gap, a policy violation, or divergence.
  bool apply(const WalRecord &R, Outcome &Out, std::string *Err);

  /// apply() over a scan's record vector.
  bool applyAll(const std::vector<WalRecord> &Records, std::string *Err);

  uint64_t appliedSeq() const { return Applied; }
  uint64_t appliedRecords() const { return Count; }
  ReplayTarget &target() { return Target; }

private:
  ReplayTarget &Target;
  SeqPolicy Policy;
  uint64_t Applied = 0;
  uint64_t Count = 0;
  std::vector<int64_t> Scratch;
};

//===----------------------------------------------------------------------===//
// RecoverySource: one snapshot load + one directory scan, shared
//===----------------------------------------------------------------------===//

/// The read side of a WAL directory for recovery and audits: loads the
/// newest valid snapshot and scans the segments once, then hands the cached
/// results to every consumer (Server::recover and the loadgen audits used
/// to re-run scanWalDir from scratch on the same directory).
class RecoverySource {
public:
  explicit RecoverySource(std::string Dir) : Dir(std::move(Dir)) {}

  /// Loads the snapshot and scans the WAL (with torn-tail repair when
  /// \p Repair). False only on I/O error; a torn tail or gap is reported
  /// through scan() for the caller to judge.
  bool load(bool Repair, std::string *Err);

  bool hasSnapshot() const { return HaveSnap; }
  const SnapshotData &snapshot() const { return Snap; }
  const WalScan &scan() const { return Scan; }

  /// The recovered watermark: max(snapshot seq, last WAL seq).
  uint64_t watermark() const;

  /// bootstrap (when a snapshot exists) + applyAll through \p Engine.
  bool replayInto(ReplayEngine &Engine, std::string *Err);

private:
  std::string Dir;
  bool Loaded = false;
  bool HaveSnap = false;
  SnapshotData Snap;
  WalScan Scan;
};

//===----------------------------------------------------------------------===//
// ReplicationHub: the leader's shipping side
//===----------------------------------------------------------------------===//

/// Where the hub writes one subscriber's pushed frames. Implemented by the
/// server over its I/O-thread reply handoff. Thread-safe.
class ChunkSink {
public:
  virtual ~ChunkSink() = default;
  /// Queues one already-encoded frame; false when the connection is gone.
  virtual bool sendFrame(std::string Bytes) = 0;
  /// Approximate bytes queued but not yet on the wire (drop decisions).
  virtual size_t backlog() const = 0;
  /// Asks the owning I/O thread to close the connection.
  virtual void close() = 0;
};

/// Fans the leader's durable WAL tail out to subscribers: one Wal tail
/// subscription feeding one shipper thread. start() before the first
/// subscriber, stop() before the Wal dies.
class ReplicationHub {
public:
  /// A subscriber whose sink backlog passes this is dropped (it reconnects
  /// and resumes from its watermark; the leader never blocks on it).
  static constexpr size_t MaxSinkBacklog = 8 * 1024 * 1024;

  ReplicationHub(Wal &Log, std::string WalDir);
  ~ReplicationHub();

  void start();
  /// Flag-only (cheap, lock-free); the shipper notices within its tick.
  void requestStop();
  /// Unsubscribes from the Wal and joins the shipper. Idempotent; must run
  /// while the Wal is still alive.
  void stop();

  /// How to serve a subscription from watermark \p From. Cheap (one
  /// directory listing, no file reads) — called on I/O threads.
  struct SubscribePlan {
    bool Accept = false;
    std::string Reason; ///< refusal detail when !Accept
    bool SendSnapshot = false;
    uint64_t SnapshotSeq = 0; ///< by file name; the shipper re-loads
    uint64_t DurableSeq = 0;  ///< leader durable watermark at plan time
  };
  SubscribePlan planSubscribe(uint64_t From) const;

  /// Registers an accepted subscriber; the hub now pushes history + tail
  /// into \p Sink. Returns the subscriber id for removeSubscriber.
  uint64_t addSubscriber(uint64_t From, const SubscribePlan &Plan,
                         std::shared_ptr<ChunkSink> Sink);

  /// Drops a subscriber (connection closed). Safe for unknown ids.
  void removeSubscriber(uint64_t Id);

  size_t subscriberCount() const {
    return SubCount.load(std::memory_order_acquire);
  }

private:
  struct Event {
    enum class Kind { Add, Remove, Live } K = Kind::Live;
    uint64_t Id = 0;          // Add / Remove
    uint64_t From = 0;        // Add
    bool SendSnapshot = false; // Add
    std::shared_ptr<ChunkSink> Sink; // Add
    uint64_t FirstSeq = 0, LastSeq = 0; // Live
    std::string Bytes; // Live
  };
  struct Sub {
    std::shared_ptr<ChunkSink> Sink;
    uint64_t SentThrough = 0;
  };

  void shipperMain();
  void enqueue(Event E);
  void onLive(uint64_t FirstSeq, uint64_t LastSeq, const std::string &Bytes);
  void processAdd(Event &E);
  void processLive(const Event &E);
  bool sendChunk(Sub &S, uint64_t LastSeq, const std::string &Bytes);
  void dropSub(uint64_t Id, Sub &S, const char *Why);

  /// Keeps the Wal's possible one-trailing-delivery-after-unsubscribe from
  /// touching a dead hub: the tail sink holds the token and locks it around
  /// the callback; stop() clears the back-pointer under the same lock, so
  /// after stop() returns no delivery can reach this again.
  struct TailToken {
    std::mutex Mu;
    ReplicationHub *Hub = nullptr;
  };

  Wal &Log;
  std::string Dir;
  const uint64_t TailKey;
  std::shared_ptr<TailToken> Token;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Event> Queue; // guarded by Mu
  std::atomic<bool> StopFlag{false};
  /// Registered-or-pending subscribers. Incremented in addSubscriber —
  /// before the Add event is even enqueued — so a live event that races a
  /// registration is queued rather than discarded (the dedupe in
  /// processLive makes a spurious queue entry harmless, a discard is not).
  std::atomic<size_t> SubCount{0};
  std::atomic<uint64_t> NextSubId{1};

  std::map<uint64_t, Sub> Subs; // shipper thread only
  bool Started = false;
  bool StoppedDone = false;
  std::thread Shipper;
};

//===----------------------------------------------------------------------===//
// ReplicationClient: the follower's applying side
//===----------------------------------------------------------------------===//

/// Shapes one follower's link to its leader.
struct FollowConfig {
  std::string LeaderHost;
  uint16_t LeaderPort = 0;
  /// Pause between reconnect attempts.
  unsigned ReconnectDelayMs = 200;
  /// bootstrap() gives up when the leader stays unreachable this long.
  double ConnectTimeoutSec = 30;
};

/// The follower's replication client: one connection to the leader, one
/// apply thread pushing the shipped tail through a ReplayEngine into the
/// follower's ObjectHost (and its own WAL when durable).
class ReplicationClient {
public:
  /// Fired once, from the apply thread, on an unrecoverable failure
  /// (divergence, truncated-past-us, protocol violation). The server's
  /// handler flags the failure and begins its drain.
  using FatalFn = std::function<void(const std::string &)>;

  ReplicationClient(ObjectHost &Host, FollowConfig Config, FatalFn OnFatal);
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient &) = delete;
  ReplicationClient &operator=(const ReplicationClient &) = delete;

  /// Synchronous bootstrap, before the follower serves: connect (retrying
  /// until ConnectTimeoutSec), subscribe from \p FromSeq (the locally
  /// recovered watermark), and when the leader ships a snapshot first,
  /// install it — only legal from a fresh state (FromSeq == 0); a durable
  /// follower whose watermark the leader truncated past must be restarted
  /// with a clean directory instead. On snapshot install, \p InstalledSnap
  /// and \p GotSnapshot let the caller persist it before opening its own
  /// WAL. The connection stays open, tail frames queued behind it.
  bool bootstrap(uint64_t FromSeq, SnapshotData *InstalledSnap,
                 bool *GotSnapshot, std::string *Err);

  /// Spawns the apply thread. \p Log (may be null) is the follower's own
  /// WAL: every applied record is mirrored into it at the same sequence.
  void start(Wal *Log);

  /// Flag + socket shutdown; safe from any thread, does not join.
  void requestStop();

  /// requestStop() + join. Idempotent.
  void stop();

  /// Applied watermark: every record <= this is reflected in the host.
  uint64_t appliedSeq() const {
    return Applied.load(std::memory_order_acquire);
  }

  /// Leader durable watermark as of the last chunk (lag = this - applied).
  uint64_t leaderDurableSeq() const {
    return LeaderDurable.load(std::memory_order_acquire);
  }

  bool failed() const { return Failed.load(std::memory_order_acquire); }
  uint64_t reconnects() const {
    return Reconnects.load(std::memory_order_acquire);
  }

  std::string leaderEndpoint() const {
    return Config.LeaderHost + ":" + std::to_string(Config.LeaderPort);
  }

  /// Quiesce hooks for the follower's snapshotNow(): block the apply
  /// thread between records, then release it.
  void pauseApply() { ApplyMu.lock(); }
  void resumeApply() { ApplyMu.unlock(); }

private:
  void applyMain();
  bool receiveSnapshot(SnapshotData &Snap, std::string *Err);
  bool installSnapshot(const SnapshotData &Snap, std::string *Err);
  bool subscribeOnce(bool AllowSnapshot, std::string *Err);
  bool reconnect();
  bool handleChunk(const Request &R);
  void fatal(const std::string &Msg);

  ObjectHost &Host;
  FollowConfig Config;
  FatalFn OnFatal;
  HostReplayTarget Target;
  ReplayEngine Engine;
  Client Link;
  Wal *Log = nullptr; // the follower's own WAL (null when not durable)
  std::mutex ApplyMu; // held around each record apply; pauseApply() blocks
  std::atomic<uint64_t> Applied{0};
  std::atomic<uint64_t> LeaderDurable{0};
  std::atomic<uint64_t> Reconnects{0};
  std::atomic<bool> Failed{false};
  std::atomic<bool> StopFlag{false};
  std::thread Applier;
};

//===----------------------------------------------------------------------===//
// Odds and ends shared by the server and the audits
//===----------------------------------------------------------------------===//

/// First sequence of the oldest `wal-*.log` segment under \p Dir (by
/// name), or 0 when none exist.
uint64_t oldestWalSeq(const std::string &Dir);

/// Watermark of the newest snapshot file under \p Dir (by name — the file
/// is not validated), or 0 when none exist.
uint64_t newestSnapshotSeq(const std::string &Dir);

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_REPLICATION_H
