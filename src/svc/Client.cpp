//===- svc/Client.cpp - Direct-routing sharded client ----------------------===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "svc/Client.h"

#include "svc/LoadGen.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace comlat {
namespace svc {

namespace {

uint64_t nowMs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000u +
         static_cast<uint64_t>(Ts.tv_nsec) / 1000000u;
}

/// Blocking TCP dial with TCP_NODELAY; -1 on failure.
int dialTcp(const std::string &Host, uint16_t Port) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  const std::string PortStr = std::to_string(Port);
  if (getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res) != 0)
    return -1;
  int Fd = -1;
  for (addrinfo *Ai = Res; Ai; Ai = Ai->ai_next) {
    Fd = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, Ai->ai_addr, Ai->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  freeaddrinfo(Res);
  if (Fd >= 0) {
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  return Fd;
}

/// Writes all of \p Bytes (blocking); false on any socket error.
bool sendAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    const ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                             MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One `key=` line's value out of a Stats text; false when absent.
bool statLine(const std::string &Text, const std::string &Key,
              std::string &Out) {
  const std::string Needle = Key + "=";
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    if (Text.compare(Pos, Needle.size(), Needle) == 0) {
      Out = Text.substr(Pos + Needle.size(), End - Pos - Needle.size());
      return true;
    }
    Pos = End + 1;
  }
  return false;
}

} // namespace

bool parseRingGeometry(const std::string &StatsText, RingGeometry &Out,
                       std::string *Err) {
  Out = RingGeometry();
  std::string V;
  if (statLine(StatsText, "role", V))
    Out.Role = V;
  if (statLine(StatsText, "shards", V))
    Out.Shards = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
  if (statLine(StatsText, "ring_vnodes", V))
    Out.VNodes = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
  if (statLine(StatsText, "ring_seed", V))
    Out.Seed = std::strtoull(V.c_str(), nullptr, 10);
  for (unsigned I = 0; I < Out.Shards; ++I) {
    if (!statLine(StatsText, "shard" + std::to_string(I), V)) {
      if (Err)
        *Err = "stats text announces " + std::to_string(Out.Shards) +
               " shards but has no shard" + std::to_string(I) + "= line";
      return false;
    }
    const size_t Colon = V.rfind(':');
    const unsigned long Port =
        Colon == std::string::npos
            ? 0
            : std::strtoul(V.c_str() + Colon + 1, nullptr, 10);
    if (Colon == std::string::npos || Colon == 0 || Port == 0 ||
        Port > 65535) {
      if (Err)
        *Err = "unparseable shard endpoint '" + V + "'";
      return false;
    }
    Out.Endpoints.push_back(
        {V.substr(0, Colon), static_cast<uint16_t>(Port)});
  }
  return true;
}

ShardClient::ShardClient(const ShardClientConfig &Config) : Config(Config) {
  // Until a bootstrap there is only the proxy slot.
  rebuildSlots();
}

ShardClient::~ShardClient() { close(); }

void ShardClient::rebuildSlots() {
  for (Slot &S : Slots)
    if (S.Fd >= 0)
      ::close(S.Fd);
  Slots.clear();
  Slots.resize(static_cast<size_t>(Geo.Shards) + 1);
  for (unsigned I = 0; I < Geo.Shards; ++I) {
    Slots[I].Host = Geo.Endpoints[I].Host;
    Slots[I].Port = Geo.Endpoints[I].Port;
  }
  Slots[proxySlot()].Host = Config.ProxyHost;
  Slots[proxySlot()].Port = Config.ProxyPort;
}

bool ShardClient::connect(std::string *Err) {
  const std::string Text = fetchStatsText(Config.ProxyHost, Config.ProxyPort);
  if (Text.empty()) {
    if (Err)
      *Err = "stats fetch from " + Config.ProxyHost + ":" +
             std::to_string(Config.ProxyPort) + " failed";
    return false;
  }
  return bootstrapFromText(Text, Err);
}

bool ShardClient::bootstrapFromText(const std::string &StatsText,
                                    std::string *Err) {
  RingGeometry G;
  if (!parseRingGeometry(StatsText, G, Err))
    return false;
  Geo = std::move(G);
  DirectOn = Config.Direct && Geo.routable();
  Router.reset(); // before Ring: it holds a reference into it
  if (DirectOn) {
    Ring = std::make_unique<HashRing>(Geo.Shards, Geo.VNodes, Geo.Seed);
    Router = std::make_unique<ShardRouter>(*Ring);
  } else {
    Ring.reset();
    Geo.Shards = 0;
    Geo.Endpoints.clear();
  }
  rebuildSlots();
  return true;
}

bool ShardClient::wouldRouteDirect(const std::vector<Op> &Ops,
                                   unsigned *Shard) const {
  if (!DirectOn || Ops.empty())
    return false;
  // Allocation-free single pass over the batch (this runs per submit):
  // every op must be valid and un-Pinned, and all keyed ops must land on
  // one shard. Anywhere ops tag along with whatever the keyed ops picked.
  unsigned Target = ShardRouter::AnyShard;
  for (const Op &O : Ops) {
    if (!validOp(O, Config.UfElements))
      return false;
    if (Router->route(static_cast<ObjectId>(O.Obj), O.Method).Kind ==
        RouteKind::Pinned)
      return false;
    const unsigned S = Router->shardForOp(O);
    if (S == ShardRouter::AnyShard)
      continue;
    if (Target == ShardRouter::AnyShard)
      Target = S;
    else if (S != Target)
      return false;
  }
  if (Target == ShardRouter::AnyShard) {
    // All-Anywhere batch: defer to the full plan so the landing shard
    // matches what the proxy (and the verify oracle) would derive.
    const RoutePlan Plan = Router->plan(Ops);
    if (!Plan.singleShard())
      return false;
    Target = Plan.Subs[0].Shard;
  }
  if (Shard)
    *Shard = Target;
  return true;
}

uint64_t ShardClient::backoffDelayMs(Slot &S) {
  const unsigned Shift = std::min(S.FailStreak, 6u);
  uint64_t D = static_cast<uint64_t>(Config.ReconnectDelayMs) << Shift;
  D = std::min<uint64_t>(std::max<uint64_t>(D, 1),
                         std::max(1u, Config.ReconnectMaxDelayMs));
  // xorshift jitter in [0.75D, 1.25D): desynchronizes re-dial stampedes
  // without pulling in a real RNG.
  JitterState ^= JitterState << 13;
  JitterState ^= JitterState >> 7;
  JitterState ^= JitterState << 17;
  const uint64_t Half = std::max<uint64_t>(1, D / 2);
  return D - D / 4 + JitterState % Half;
}

bool ShardClient::dialSlot(unsigned Idx) {
  Slot &S = Slots[Idx];
  if (S.Fd >= 0)
    return true;
  const uint64_t Now = nowMs();
  if (Now < S.RetryAtMs)
    return false;
  const int Fd = dialTcp(S.Host, S.Port);
  if (Fd < 0) {
    ++S.FailStreak;
    S.RetryAtMs = Now + backoffDelayMs(S);
    return false;
  }
  S.Fd = Fd;
  S.RecvBuf.clear();
  S.RecvPos = 0;
  S.FailStreak = 0;
  S.RetryAtMs = 0;
  if (S.EverConnected)
    ++Counters.Reconnects;
  S.EverConnected = true;
  return true;
}

void ShardClient::completeError(PendingTx &&Tx, unsigned Idx,
                                const std::string &Text, bool ConnLost) {
  ClientCompletion C;
  C.Token = Tx.Token;
  C.R.St = Status::Error;
  C.R.Text = Text;
  C.Direct = Idx != proxySlot();
  C.Shard = C.Direct ? Tx.Shard : 0;
  C.ConnLost = ConnLost;
  Ready.push_back(std::move(C));
}

void ShardClient::slotDown(unsigned Idx) {
  Slot &S = Slots[Idx];
  if (S.Fd >= 0) {
    ::close(S.Fd);
    S.Fd = -1;
  }
  S.RecvBuf.clear();
  S.RecvPos = 0;
  S.SendBuf.clear();
  ++S.FailStreak;
  S.RetryAtMs = nowMs() + backoffDelayMs(S);
  Counters.ConnLostBatches += S.Pending.size();
  const std::string Who = Idx == proxySlot()
                              ? std::string("proxy")
                              : "shard " + std::to_string(Idx);
  std::map<uint64_t, PendingTx> Owed;
  Owed.swap(S.Pending);
  for (auto &[ReqId, Tx] : Owed) {
    (void)ReqId;
    completeError(std::move(Tx), Idx, Who + " connection lost", true);
  }
  // Busy retries owed to this slot fail too: their batches were already
  // accepted once, waiting out a reconnect could reorder them far behind
  // fresh submissions.
  for (auto It = Retries.begin(); It != Retries.end();) {
    if (It->SlotIdx == Idx) {
      completeError(std::move(It->Tx), Idx, Who + " connection lost", true);
      It = Retries.erase(It);
    } else {
      ++It;
    }
  }
}

void ShardClient::sendTx(unsigned Idx, PendingTx Tx) {
  Slot &S = Slots[Idx];
  if (!dialSlot(Idx)) {
    const std::string Who = Idx == proxySlot()
                                ? std::string("proxy")
                                : "shard " + std::to_string(Idx);
    completeError(std::move(Tx), Idx, Who + " unreachable", true);
    return;
  }
  // Hand-rolled Batch/SubBatch encoding straight into the slot's send
  // buffer: this is the per-submit hot path, and going through a Request
  // would copy the ops vector and malloc two strings per batch. The frame
  // is not sent here — flushSlot pushes the whole accumulated run in one
  // send() at the next poll/wait, coalescing syscalls across the window.
  const uint64_t ReqId = NextReqId++;
  const bool Sub = Idx != proxySlot();
  std::string &Out = S.SendBuf;
  const uint32_t PayloadLen = static_cast<uint32_t>(
      8 + 1 + (Sub ? 4 : 0) + 4 + Tx.Ops.size() * 18);
  auto PutU32 = [&Out](uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  };
  auto PutU64 = [&Out](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  };
  PutU32(PayloadLen);
  PutU64(ReqId);
  Out.push_back(static_cast<char>(Sub ? MsgType::SubBatch : MsgType::Batch));
  if (Sub)
    PutU32(Tx.Shard);
  PutU32(static_cast<uint32_t>(Tx.Ops.size()));
  for (const Op &O : Tx.Ops) {
    Out.push_back(static_cast<char>(O.Obj));
    Out.push_back(static_cast<char>(O.Method));
    PutU64(static_cast<uint64_t>(O.A));
    PutU64(static_cast<uint64_t>(O.B));
  }
  S.Pending.emplace(ReqId, std::move(Tx));
  flushSlot(Idx); // send immediately: a buffered batch is a pipeline bubble
  if (S.Fd < 0)
    return; // the flush lost the connection; pendings already failed
  Counters.MaxConnInflight =
      std::max<uint64_t>(Counters.MaxConnInflight, S.Pending.size());
  size_t Total = Retries.size();
  for (const Slot &Sl : Slots)
    Total += Sl.Pending.size();
  Counters.MaxInflight = std::max<uint64_t>(Counters.MaxInflight, Total);
}

void ShardClient::flushSlot(unsigned Idx) {
  Slot &S = Slots[Idx];
  if (S.Fd < 0 || S.SendBuf.empty())
    return;
  if (!sendAll(S.Fd, S.SendBuf)) {
    slotDown(Idx); // fails the pendings and clears the buffer
    return;
  }
  S.SendBuf.clear(); // keeps capacity for the next burst
}

void ShardClient::handleReply(unsigned Idx, Response &&R) {
  Slot &S = Slots[Idx];
  const auto It = S.Pending.find(R.ReqId);
  if (It == S.Pending.end())
    return; // stale reply for a batch already failed on teardown
  PendingTx Tx = std::move(It->second);
  S.Pending.erase(It);

  if (Idx == proxySlot()) {
    ClientCompletion C;
    C.Token = Tx.Token;
    C.R = std::move(R);
    Ready.push_back(std::move(C));
    return;
  }

  switch (R.St) {
  case Status::Ok: {
    // Audit the reply trailer against the predicted route: exactly one
    // annotation, naming our shard, covering every op.
    if (R.Shards.size() != 1 || R.Shards[0].Shard != Tx.Shard ||
        R.Results.size() != Tx.Ops.size()) {
      ++Counters.Misroutes;
      WantRebootstrap = true;
      const std::string Got = R.Shards.size() == 1
                                  ? std::to_string(R.Shards[0].Shard)
                                  : std::to_string(R.Shards.size()) +
                                        " annotations";
      completeError(std::move(Tx), Idx,
                    "misroute: shard " + std::to_string(Tx.Shard) +
                        " expected, got " + Got,
                    false);
      return;
    }
    ClientCompletion C;
    C.Token = Tx.Token;
    C.R = std::move(R);
    C.Direct = true;
    C.Shard = Tx.Shard;
    Ready.push_back(std::move(C));
    return;
  }
  case Status::Busy: {
    if (Tx.BusyTries++ < Config.BusyRetryLimit) {
      ++Counters.BusyRetries;
      Retries.push_back(
          {nowMs() + Config.BusyRetryDelayMs, Idx, std::move(Tx)});
      return;
    }
    ClientCompletion C;
    C.Token = Tx.Token;
    C.R = std::move(R);
    C.Direct = true;
    C.Shard = Tx.Shard;
    Ready.push_back(std::move(C));
    return;
  }
  case Status::Redirect: {
    // The slot's backend turned follower: re-point at the named leader
    // and resend. The teardown fails this slot's *other* in-flight
    // batches — their fate on the old backend is unknowable.
    std::string Host;
    uint16_t Port = 0;
    if (Tx.RedirectTries++ >= Config.RedirectLimit ||
        !parseLeaderText(R.Text, Host, Port)) {
      completeError(std::move(Tx), Idx, "redirect chase failed: " + R.Text,
                    false);
      return;
    }
    ++Counters.Redirects;
    slotDown(Idx);
    S.Host = Host;
    S.Port = Port;
    S.FailStreak = 0;
    S.RetryAtMs = 0;
    sendTx(Idx, std::move(Tx));
    return;
  }
  case Status::Error: {
    // A backend refusing the envelope ("sub-batch for shard N, this is
    // shard M") means our ring disagrees with the wiring: re-bootstrap.
    if (R.Text.find("this is shard") != std::string::npos) {
      ++Counters.Misroutes;
      WantRebootstrap = true;
    }
    ClientCompletion C;
    C.Token = Tx.Token;
    C.R = std::move(R);
    C.Direct = true;
    C.Shard = Tx.Shard;
    Ready.push_back(std::move(C));
    return;
  }
  }
}

void ShardClient::pumpRetries(uint64_t NowMs) {
  // The deque is FIFO by due time (constant delay), so stop at the first
  // not-yet-due entry.
  while (!Retries.empty() && Retries.front().DueMs <= NowMs) {
    BusyRetry R = std::move(Retries.front());
    Retries.pop_front();
    sendTx(R.SlotIdx, std::move(R.Tx));
  }
}

void ShardClient::rebootstrap() {
  WantRebootstrap = false;
  const std::string Text = fetchStatsText(Config.ProxyHost, Config.ProxyPort);
  if (Text.empty())
    return; // keep the current ring; the proxy may be restarting
  RingGeometry G;
  if (!parseRingGeometry(Text, G, nullptr))
    return;
  ++Counters.Rebootstraps;
  const bool RingChanged = !G.sameRing(Geo) ||
                           G.Endpoints.size() != Geo.Endpoints.size();
  if (!RingChanged) {
    // Same ring: just adopt possibly-updated endpoints for down slots.
    for (unsigned I = 0; I < Geo.Shards && I < G.Endpoints.size(); ++I) {
      Slot &S = Slots[I];
      if (S.Fd < 0 && (S.Host != G.Endpoints[I].Host ||
                       S.Port != G.Endpoints[I].Port)) {
        S.Host = G.Endpoints[I].Host;
        S.Port = G.Endpoints[I].Port;
        S.FailStreak = 0;
        S.RetryAtMs = 0;
      }
    }
    Geo = std::move(G);
    return;
  }
  // Topology changed: fail everything in flight and rebuild the router.
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (!Slots[I].Pending.empty() || Slots[I].Fd >= 0)
      slotDown(I);
  std::string Err;
  Geo = std::move(G);
  DirectOn = Config.Direct && Geo.routable();
  if (DirectOn) {
    Router.reset();
    Ring = std::make_unique<HashRing>(Geo.Shards, Geo.VNodes, Geo.Seed);
    Router = std::make_unique<ShardRouter>(*Ring);
  } else {
    Router.reset();
    Ring.reset();
    Geo.Shards = 0;
    Geo.Endpoints.clear();
  }
  rebuildSlots();
}

void ShardClient::drainSlot(unsigned Idx) {
  Slot &S = Slots[Idx];
  bool Dead = false;
  char Buf[65536];
  for (;;) {
    const ssize_t R = ::recv(S.Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (R > 0) {
      S.RecvBuf.append(Buf, static_cast<size_t>(R));
      if (R < static_cast<ssize_t>(sizeof(Buf)))
        break;
      continue;
    }
    if (R < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (R < 0 && errno == EINTR)
      continue;
    Dead = true; // EOF or hard socket error
    break;
  }
  // Peel every complete frame that arrived.
  for (;;) {
    std::string_view Payload;
    size_t Consumed = 0;
    const FrameResult FR = peelFrame(
        std::string_view(S.RecvBuf).substr(S.RecvPos), Payload, Consumed);
    if (FR == FrameResult::NeedMore)
      break;
    if (FR == FrameResult::Malformed) {
      Dead = true;
      break;
    }
    Response Resp;
    if (!decodeResponse(Payload, Resp)) {
      Dead = true;
      break;
    }
    S.RecvPos += Consumed;
    handleReply(Idx, std::move(Resp));
  }
  if (S.RecvPos > 0 && S.Fd >= 0) {
    S.RecvBuf.erase(0, S.RecvPos);
    S.RecvPos = 0;
  }
  if (Dead && S.Fd >= 0)
    slotDown(Idx);
}

void ShardClient::pollOnce(int TimeoutMs, bool EvenIfReady) {
  const uint64_t Now = nowMs();
  pumpRetries(Now);
  if (WantRebootstrap)
    rebootstrap();
  // Push every buffered submission onto the wire before looking for
  // replies — this is where the coalesced send() happens.
  for (unsigned I = 0; I < Slots.size(); ++I)
    flushSlot(I);
  if (!EvenIfReady && !Ready.empty())
    return;

  std::vector<unsigned> &PfdSlot = PfdSlotScratch;
  PfdSlot.clear();
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (Slots[I].Fd >= 0 && !Slots[I].Pending.empty())
      PfdSlot.push_back(I);
  int Wait = TimeoutMs;
  if (!Retries.empty()) {
    const uint64_t Due = Retries.front().DueMs;
    const int UntilDue = Due > Now ? static_cast<int>(Due - Now) : 0;
    Wait = Wait < 0 ? UntilDue : std::min(Wait, UntilDue);
  }
  if (PfdSlot.empty()) {
    if (Wait > 0 && !Retries.empty()) {
      timespec Ts{Wait / 1000, (Wait % 1000) * 1000000L};
      nanosleep(&Ts, nullptr);
    }
    pumpRetries(nowMs());
    return;
  }
  if (Wait <= 0) {
    // Zero-timeout round (a saturated open loop does this once per burst):
    // skip the poll() syscall entirely, MSG_DONTWAIT on each live socket
    // reports would-block just as well.
    for (const unsigned Idx : PfdSlot)
      drainSlot(Idx);
  } else {
    std::vector<pollfd> &Pfds = PfdScratch;
    Pfds.clear();
    for (const unsigned Idx : PfdSlot)
      Pfds.push_back({Slots[Idx].Fd, POLLIN, 0});
    const int N = ::poll(Pfds.data(), Pfds.size(), Wait);
    if (N <= 0) {
      pumpRetries(nowMs());
      return;
    }
    for (size_t P = 0; P < Pfds.size(); ++P)
      if (Pfds[P].revents & (POLLIN | POLLERR | POLLHUP))
        drainSlot(PfdSlot[P]);
  }
  if (WantRebootstrap)
    rebootstrap();
  // Busy retries and Redirect chases re-queue sends from inside
  // handleReply; get them moving now rather than at the next poll.
  for (unsigned I = 0; I < Slots.size(); ++I)
    flushSlot(I);
}

void ShardClient::waitWindow(unsigned Idx) {
  // A down slot holds no pendings, so this cannot spin on a dead shard.
  while (Slots[Idx].Pending.size() >= Config.Window)
    pollOnce(50, /*EvenIfReady=*/true);
}

bool ShardClient::submit(uint64_t Token, std::vector<Op> Ops) {
  if (Ops.empty() || Ops.size() > MaxBatchOps)
    return false;
  unsigned Shard = 0;
  const bool Direct = wouldRouteDirect(Ops, &Shard);
  const unsigned Idx = Direct ? Shard : proxySlot();
  if (Direct)
    ++Counters.DirectBatches;
  else
    ++Counters.ProxiedBatches;
  waitWindow(Idx);
  PendingTx Tx;
  Tx.Token = Token;
  Tx.Ops = std::move(Ops);
  Tx.Shard = Direct ? Shard : ShardRouter::AnyShard;
  sendTx(Idx, std::move(Tx));
  return true;
}

size_t ShardClient::poll(std::vector<ClientCompletion> &Out, int TimeoutMs) {
  if (Ready.empty() && inflight() > 0)
    pollOnce(TimeoutMs);
  const size_t N = Ready.size();
  for (ClientCompletion &C : Ready)
    Out.push_back(std::move(C));
  Ready.clear();
  return N;
}

bool ShardClient::drain(std::vector<ClientCompletion> &Out,
                        double TimeoutSec) {
  const uint64_t Deadline = nowMs() + static_cast<uint64_t>(TimeoutSec * 1e3);
  while (inflight() > 0 || !Ready.empty()) {
    poll(Out, 100);
    if (nowMs() > Deadline && (inflight() > 0 || !Ready.empty()))
      return inflight() == 0 && Ready.empty();
  }
  return true;
}

bool ShardClient::call(const std::vector<Op> &Ops, ClientCompletion &C,
                       double TimeoutSec) {
  // Tokens in the top half of the space; callers use their own below.
  const uint64_t Token = (1ull << 63) | NextCallToken++;
  if (!submit(Token, Ops)) {
    C = ClientCompletion();
    C.Token = Token;
    C.R.St = Status::Error;
    C.R.Text = "invalid batch";
    return false;
  }
  const uint64_t Deadline = nowMs() + static_cast<uint64_t>(TimeoutSec * 1e3);
  for (;;) {
    for (auto It = Ready.begin(); It != Ready.end(); ++It) {
      if (It->Token == Token) {
        C = std::move(*It);
        Ready.erase(It);
        return true;
      }
    }
    if (nowMs() > Deadline) {
      C = ClientCompletion();
      C.Token = Token;
      C.R.St = Status::Error;
      C.R.Text = "call timeout";
      return false;
    }
    pollOnce(100);
  }
}

size_t ShardClient::inflight() const {
  size_t N = Retries.size();
  for (const Slot &S : Slots)
    N += S.Pending.size();
  return N;
}

void ShardClient::close() {
  for (Slot &S : Slots) {
    if (S.Fd >= 0) {
      ::close(S.Fd);
      S.Fd = -1;
    }
    S.Pending.clear();
    S.RecvBuf.clear();
    S.RecvPos = 0;
  }
  Retries.clear();
}

} // namespace svc
} // namespace comlat
