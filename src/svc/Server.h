//===- svc/Server.h - Transactional TCP service front end -------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// comlat-serve: an epoll-based multi-threaded TCP server exposing the
/// hosted boosted structures (svc/Objects.h) behind the length-prefixed
/// protocol of svc/Protocol.h. Threading model (DESIGN.md §3.7):
///
///  * one acceptor + N I/O threads, each owning an epoll instance and a
///    disjoint subset of connections (accepted round-robin). All socket
///    reads, writes and interest changes for a connection happen on its
///    owning I/O thread; completions hand replies over through a
///    mutex-guarded per-connection write buffer plus an eventfd wake;
///  * M executor workers inside a runtime::Submitter execute each batch
///    frame as one transaction on the gatekeeper/abstract-lock path,
///    retrying aborts invisibly and replying only with the final outcome.
///
/// Unhappy paths are first-class: a full admission queue sheds with BUSY
/// (every shed frame still gets a reply), a slow reader stops being read
/// once its reply backlog passes MaxWriteBuffered bytes (and resumes
/// below half), idle connections are reaped after IdleTimeoutMs, framing
/// errors close only the offending connection, and requestStop() drains —
/// stop accepting, stop parsing, finish every admitted transaction, flush
/// every reply, then exit cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_SERVER_H
#define COMLAT_SVC_SERVER_H

#include "runtime/Submitter.h"
#include "svc/Objects.h"
#include "svc/Replication.h"
#include "svc/Wal.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace comlat {
namespace svc {

class IoThread;

/// Everything that shapes one server instance.
struct ServerConfig {
  /// IPv4 address to bind ("0.0.0.0" to serve externally).
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t Port = 0;
  /// I/O event-loop threads; connections are spread round-robin.
  unsigned IoThreads = 2;
  /// Executor workers running batch transactions.
  unsigned Workers = 4;
  /// Admission queue bound; overflow frames get BUSY replies.
  size_t QueueCapacity = 1024;
  /// Per-connection reply backlog cap; beyond it the connection's reads
  /// pause until the peer drains below half (slow-reader backpressure).
  size_t MaxWriteBuffered = 256 * 1024;
  /// Per-connection kernel send buffer (SO_SNDBUF); 0 keeps the kernel's
  /// auto-tuned default. Setting it pins how much reply data the kernel
  /// absorbs before sends return EAGAIN and the user-space backlog (and
  /// so the MaxWriteBuffered backpressure) engages — the slow-reader
  /// tests pin it small to make that path deterministic.
  size_t SocketSndBuf = 0;
  /// Connections idle longer than this are closed; 0 disables.
  unsigned IdleTimeoutMs = 0;
  /// Element count of the hosted union-find.
  size_t UfElements = 1024;
  /// Run the hosted accumulator behind the privatized gatekeeper
  /// (increments divert to per-worker replicas) instead of abstract locks.
  bool PrivatizeAcc = false;
  /// Post-abort backoff for batch retries.
  BackoffPolicy Backoff{};
  /// Retry bound per batch (0 = until commit); exhausting it produces an
  /// Error reply, never a silent drop.
  unsigned MaxAttempts = 0;
  /// Durable mode (DESIGN.md §3.10): every committed batch is WAL-logged
  /// and its client ACK released only after the covering fdatasync; on
  /// startup the newest valid snapshot is loaded and the log replayed.
  bool Durable = false;
  /// Directory for WAL segments and snapshots (must exist; Durable only).
  std::string WalDir;
  /// Group-commit coalescing window in microseconds (Durable only).
  unsigned WalSyncIntervalUs = 1000;
  /// Records per fdatasync group cap (Durable only).
  unsigned WalGroupMax = 64;
  /// Periodic snapshot interval in milliseconds; 0 disables the periodic
  /// thread (snapshotNow() still works — SIGUSR1 in comlat-serve).
  unsigned SnapshotIntervalMs = 0;
  /// Follower mode (comlat-serve --follow): replicate from this leader
  /// instead of accepting mutations. Empty host = leader/standalone.
  std::string FollowHost;
  uint16_t FollowPort = 0;
  /// Ring slot this backend serves (comlat-serve --shard-id). Negative =
  /// unsharded. A configured backend refuses SubBatch envelopes stamped
  /// with a different shard — the guard that catches a mis-wired ring —
  /// and advertises the id in its Stats text.
  int ShardId = -1;
};

/// The server. Lifecycle: construct -> start() -> (serve) -> stop().
class Server {
public:
  explicit Server(const ServerConfig &Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens and spawns the I/O threads and workers. Returns false
  /// (with \p Err set) when the socket setup fails.
  bool start(std::string *Err = nullptr);

  /// The bound port (after start()); resolves Port = 0 requests.
  uint16_t port() const { return BoundPort; }

  /// Begins the graceful drain without blocking: stop accepting and
  /// parsing, finish admitted transactions, flush replies. Safe from any
  /// thread and from signal handlers (an atomic store plus an eventfd
  /// write).
  void requestStop();

  /// requestStop() plus waiting for the drain to finish and joining every
  /// thread. Idempotent; the destructor calls it.
  void stop();

  /// Blocks until a requestStop() drain completed (start() must have
  /// succeeded). The comlat-serve binary parks its main thread here.
  void waitStopped();

  bool stopRequested() const {
    return StopFlag.load(std::memory_order_acquire);
  }

  /// The hosted structures (tests read signatures when quiesced).
  const ObjectHost &objects() const { return Host; }

  /// The transaction submitter (tests pause/resume it to force BUSY and
  /// drain scenarios deterministically).
  Submitter &submitter() { return Submit; }

  /// Takes one snapshot now (Durable only): pause admission, quiesce,
  /// capture the ADT state at the last assigned sequence, resume, persist
  /// atomically, truncate the WAL behind the watermark. Returns false
  /// (serving unaffected) when quiescing times out or the write fails.
  bool snapshotNow();

  /// The Stats-frame payload: `key=value` lines (durable, privatized,
  /// uf_elements, wal_last_seq, wal_durable_seq, wal_recovered_seq,
  /// snapshot_seq).
  std::string statsText() const;

  /// Watermark recovered at start() (0 when fresh or not durable).
  uint64_t recoveredSeq() const {
    return RecoveredSeq.load(std::memory_order_acquire);
  }

  /// Whether this server runs as a read-only follower (--follow): serves
  /// the read vocabulary stamped with its applied watermark and Redirects
  /// mutations to the leader.
  bool isFollower() const { return !Config.FollowHost.empty(); }

  /// Follower only: set once replication failed fatally (divergence,
  /// leader refusal, protocol violation) — the server is already draining
  /// and comlat-serve exits non-zero.
  bool replicationFailed() const {
    return ReplFailed.load(std::memory_order_acquire);
  }

  /// Follower only: the replication client (tests read watermarks).
  ReplicationClient *replication() { return Repl.get(); }

  /// Leader only: the WAL shipping hub (tests read subscriber counts).
  ReplicationHub *hub() { return Hub.get(); }

private:
  friend class IoThread;

  /// Recovery half of start(): load the newest snapshot, repair and replay
  /// the WAL, construct the log. False (Err set) fails startup — serving
  /// on top of a half-recovered state would break the durability contract.
  bool recover(std::string *Err);

  ServerConfig Config;
  ObjectHost Host;
  Submitter Submit;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopped{false};
  /// Batch frames admitted to the submitter whose replies have not yet
  /// been handed to their connection; the drain waits for zero.
  std::atomic<uint64_t> InFlightReplies{0};
  std::atomic<uint64_t> RecoveredSeq{0};
  std::atomic<uint64_t> SnapSeq{0};
  std::atomic<bool> ReplFailed{false};
  std::vector<std::unique_ptr<IoThread>> Io;
  std::vector<std::thread> IoJoins;
  /// Leader side: ships the WAL tail to subscribed followers. stop()
  /// stops it while Log is still alive (its tail-sink unsubscription
  /// needs the Wal).
  std::unique_ptr<ReplicationHub> Hub;
  /// Follower side: the link to the leader. Declared before Log so its
  /// destruction (apply thread join) runs *after* Log's — stop() joins the
  /// apply thread explicitly before the log flushes.
  std::unique_ptr<ReplicationClient> Repl;
  /// Declared after Io so it is destroyed (flushed + joined) first; the
  /// Done callbacks it releases reference IoThreads.
  std::unique_ptr<Wal> Log;
  std::mutex SnapMu; // serializes snapshotNow() callers
  std::thread SnapThread;
  std::mutex SnapStopMu;
  std::condition_variable SnapStopCv;
  bool SnapStop = false; // guarded by SnapStopMu
  std::mutex StopM;
  std::condition_variable StopCV;
};

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_SERVER_H
