//===- svc/Server.cpp - Transactional TCP service front end ----------------===//

#include "svc/Server.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRing.h"
#include "svc/Snapshot.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>

using namespace comlat;
using namespace comlat::svc;

namespace {

/// The comlat_svc_* instrumentation, registered once per process.
struct SvcMetrics {
  obs::Counter *ConnectionsTotal;
  obs::Gauge *ConnectionsActive;
  obs::Counter *RequestsTotal;
  obs::Counter *RequestsBatch;
  obs::Counter *RequestsMetrics;
  obs::Counter *RequestsState;
  obs::Counter *RequestsPing;
  obs::Counter *RequestsStats;
  obs::Counter *RequestsSubscribe;
  obs::Counter *RedirectsTotal;
  obs::Counter *OpsTotal;
  obs::Counter *BusyTotal;
  obs::Counter *MalformedTotal;
  obs::Counter *RepliesTotal;
  obs::Counter *TxRetriesTotal;
  obs::Counter *TxFailedTotal;
  obs::Counter *BytesRead;
  obs::Counter *BytesWritten;
  obs::Counter *BackpressureStalls;
  obs::Counter *IdleClosed;
  obs::Histogram *RequestLatencyUs;

  static SvcMetrics &get() {
    static SvcMetrics M = [] {
      obs::MetricsRegistry &R = obs::MetricsRegistry::global();
      SvcMetrics N;
      N.ConnectionsTotal = R.counter("comlat_svc_connections_total");
      N.ConnectionsActive = R.gauge("comlat_svc_connections_active");
      N.RequestsTotal = R.counter("comlat_svc_requests_total");
      N.RequestsBatch =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "batch"}}));
      N.RequestsMetrics =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "metrics"}}));
      N.RequestsState =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "state"}}));
      N.RequestsPing =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "ping"}}));
      N.RequestsStats =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "stats"}}));
      N.RequestsSubscribe =
          R.counter(obs::metricName("comlat_svc_requests_by_type_total",
                                    {{"type", "subscribe"}}));
      N.RedirectsTotal = R.counter("comlat_svc_redirects_total");
      N.OpsTotal = R.counter("comlat_svc_ops_total");
      N.BusyTotal = R.counter("comlat_svc_busy_total");
      N.MalformedTotal = R.counter("comlat_svc_malformed_total");
      N.RepliesTotal = R.counter("comlat_svc_replies_total");
      N.TxRetriesTotal = R.counter("comlat_svc_tx_retries_total");
      N.TxFailedTotal = R.counter("comlat_svc_tx_failed_total");
      N.BytesRead = R.counter("comlat_svc_bytes_read_total");
      N.BytesWritten = R.counter("comlat_svc_bytes_written_total");
      N.BackpressureStalls = R.counter("comlat_svc_backpressure_stalls_total");
      N.IdleClosed = R.counter("comlat_svc_idle_closed_total");
      N.RequestLatencyUs = R.histogram("comlat_svc_request_latency_us");
      return N;
    }();
    return M;
  }
};

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

namespace comlat {
namespace svc {

/// One connection; every field is owned by the connection's I/O thread.
/// Worker threads only ever see the shared_ptr (to hand replies back) and
/// the Closed flag.
struct Connection {
  int Fd = -1;
  std::string ReadBuf;
  size_t ReadPos = 0; // parsed prefix of ReadBuf
  std::string WriteBuf;
  size_t WritePos = 0; // flushed prefix of WriteBuf
  bool ReadPaused = false;
  bool WriteArmed = false;
  bool WantClose = false;
  uint64_t LastActiveMs = 0;
  std::atomic<bool> Closed{false};
  /// Replication subscriber id when this connection subscribed (0 = none);
  /// closing the connection unsubscribes it from the hub.
  uint64_t SubId = 0;
  /// Approximate bytes handed to this connection by the replication hub
  /// but not yet on the wire — the hub's cross-thread backlog probe (the
  /// exact buffered() count is I/O-thread-only).
  std::atomic<size_t> BufferedApprox{0};

  size_t buffered() const { return WriteBuf.size() - WritePos; }
};

/// One epoll event loop owning a subset of the connections.
class IoThread {
public:
  IoThread(Server &S, unsigned Index) : S(S), Index(Index) {
    EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
    WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    struct epoll_event Ev {};
    Ev.events = EPOLLIN;
    Ev.data.u64 = TagWake;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
  }

  ~IoThread() {
    if (EpollFd >= 0)
      ::close(EpollFd);
    if (WakeFd >= 0)
      ::close(WakeFd);
  }

  /// Async wake; safe from any thread and from signal handlers.
  void wake() {
    const uint64_t One = 1;
    [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
  }

  /// Hands a freshly accepted socket to this thread (from the acceptor).
  void adoptConnection(int Fd) {
    {
      std::lock_guard<std::mutex> Guard(HandoffMu);
      NewFds.push_back(Fd);
    }
    wake();
  }

  /// Hands an encoded reply from a worker thread to this event loop.
  /// Always consumes the in-flight claim, even for dead connections.
  void queueReplyFromWorker(std::shared_ptr<Connection> C, std::string Bytes) {
    {
      std::lock_guard<std::mutex> Guard(HandoffMu);
      PendingReplies.emplace_back(std::move(C), std::move(Bytes));
    }
    wake();
  }

  /// Asks this event loop to close \p C — the replication hub dropping a
  /// slow or dead subscriber from its shipper thread.
  void requestCloseFromWorker(std::shared_ptr<Connection> C) {
    {
      std::lock_guard<std::mutex> Guard(HandoffMu);
      PendingCloses.push_back(std::move(C));
    }
    wake();
  }

  void registerListener(int ListenFd) {
    struct epoll_event Ev {};
    Ev.events = EPOLLIN;
    Ev.data.u64 = TagListener;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);
  }

  void run();

private:
  static constexpr uint64_t TagWake = 0;
  static constexpr uint64_t TagListener = 1;

  void acceptNew();
  void addConnection(int Fd);
  void updateInterest(Connection *C);
  void closeConnection(Connection *C);
  void handleRead(Connection *C);
  void parseFrames(Connection *C);
  void handleFrame(Connection *C, std::string_view Payload);
  void queueReply(Connection *C, const Response &R);
  void appendAndFlush(Connection *C, const std::string &Bytes);
  void flushWrites(Connection *C);
  void drainHandoff();
  void sweepIdle();
  bool drainComplete();

  Server &S;
  unsigned Index;
  int EpollFd = -1;
  int WakeFd = -1;
  std::mutex HandoffMu;
  std::vector<int> NewFds; // guarded by HandoffMu
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>>
      PendingReplies; // guarded by HandoffMu
  std::vector<std::shared_ptr<Connection>>
      PendingCloses; // guarded by HandoffMu
  std::unordered_map<int, std::shared_ptr<Connection>> Conns;
  /// Connections closed during the current event batch. Destruction is
  /// deferred to the end of the loop pass: a later event in the same
  /// epoll_wait batch may still carry a pointer to a just-closed one.
  std::vector<std::shared_ptr<Connection>> Dead;
  bool ListenerClosed = false;
  uint64_t DrainDeadlineMs = 0;
  /// Round-robin accept distribution. Atomic: every I/O thread of every
  /// server in the process bumps it (a leader and its follower share it
  /// in the replication tests), and fairness only needs the increment,
  /// not an order.
  static std::atomic<unsigned> NextAccept;

  friend class Server;
};

/// The hub's view of one subscribed connection: frames queue through the
/// owning I/O thread's reply handoff, backlog reads the connection's
/// approximate unflushed count, close defers to the I/O thread.
class ConnSink : public ChunkSink {
public:
  ConnSink(IoThread *Owner, std::shared_ptr<Connection> C)
      : Owner(Owner), C(std::move(C)) {}

  bool sendFrame(std::string Bytes) override {
    if (C->Closed.load(std::memory_order_acquire))
      return false;
    C->BufferedApprox.fetch_add(Bytes.size(), std::memory_order_acq_rel);
    Owner->queueReplyFromWorker(C, std::move(Bytes));
    return true;
  }

  size_t backlog() const override {
    return C->BufferedApprox.load(std::memory_order_acquire);
  }

  void close() override { Owner->requestCloseFromWorker(C); }

private:
  IoThread *Owner;
  std::shared_ptr<Connection> C;
};

} // namespace svc
} // namespace comlat

void IoThread::addConnection(int Fd) {
  auto C = std::make_shared<Connection>();
  C->Fd = Fd;
  C->LastActiveMs = nowMs();
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  if (S.Config.SocketSndBuf != 0) {
    const int Buf = static_cast<int>(S.Config.SocketSndBuf);
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Buf, sizeof(Buf));
  }
  struct epoll_event Ev {};
  Ev.events = EPOLLIN;
  Ev.data.ptr = C.get();
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    ::close(Fd);
    return;
  }
  Conns.emplace(Fd, std::move(C));
  SvcMetrics::get().ConnectionsTotal->add();
  SvcMetrics::get().ConnectionsActive->set(
      static_cast<int64_t>(Conns.size()));
  COMLAT_TRACE(obs::EventKind::SvcAccept, 0, Fd, 0, 0);
}

void IoThread::updateInterest(Connection *C) {
  struct epoll_event Ev {};
  Ev.events = (C->ReadPaused || S.stopRequested() ? 0u : unsigned(EPOLLIN)) |
              (C->WriteArmed ? unsigned(EPOLLOUT) : 0u);
  Ev.data.ptr = C;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C->Fd, &Ev);
}

void IoThread::closeConnection(Connection *C) {
  if (C->Closed.exchange(true))
    return;
  if (C->SubId != 0 && S.Hub)
    S.Hub->removeSubscriber(C->SubId);
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->Fd, nullptr);
  ::close(C->Fd);
  auto It = Conns.find(C->Fd);
  if (It != Conns.end()) {
    Dead.push_back(std::move(It->second));
    Conns.erase(It);
  }
  SvcMetrics::get().ConnectionsActive->set(
      static_cast<int64_t>(Conns.size()));
}

void IoThread::acceptNew() {
  for (;;) {
    const int Fd = ::accept4(S.ListenFd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN, or the listener went away during drain
    const unsigned Target =
        NextAccept.fetch_add(1, std::memory_order_relaxed) % S.Io.size();
    if (Target == Index)
      addConnection(Fd);
    else
      S.Io[Target]->adoptConnection(Fd);
  }
}

void IoThread::handleRead(Connection *C) {
  char Buf[16 * 1024];
  for (;;) {
    const ssize_t N = ::recv(C->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C->ReadBuf.append(Buf, static_cast<size_t>(N));
      C->LastActiveMs = nowMs();
      SvcMetrics::get().BytesRead->add(static_cast<uint64_t>(N));
      parseFrames(C);
      if (C->Closed.load(std::memory_order_relaxed) || C->ReadPaused ||
          C->WantClose)
        return;
      continue;
    }
    if (N == 0) { // orderly shutdown from the peer
      if (C->buffered() == 0)
        closeConnection(C);
      else
        C->WantClose = true;
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    closeConnection(C); // hard error
    return;
  }
}

void IoThread::parseFrames(Connection *C) {
  while (!S.stopRequested() && !C->WantClose && !C->ReadPaused) {
    std::string_view Rest(C->ReadBuf);
    Rest.remove_prefix(C->ReadPos);
    std::string_view Payload;
    size_t Consumed = 0;
    const FrameResult FR = peelFrame(Rest, Payload, Consumed);
    if (FR == FrameResult::NeedMore)
      break;
    if (FR == FrameResult::Malformed) {
      // No resync point on a byte stream: reply, then close after flush.
      // The flag is set first so an inline full flush honors the close.
      SvcMetrics::get().MalformedTotal->add();
      C->WantClose = true;
      Response R;
      R.St = Status::Error;
      R.Text = "oversized frame";
      queueReply(C, R);
      break;
    }
    C->ReadPos += Consumed;
    handleFrame(C, Payload);
  }
  // Compact the parsed prefix once it dominates the buffer.
  if (C->ReadPos > 4096 && C->ReadPos * 2 >= C->ReadBuf.size()) {
    C->ReadBuf.erase(0, C->ReadPos);
    C->ReadPos = 0;
  }
}

void IoThread::handleFrame(Connection *C, std::string_view Payload) {
  SvcMetrics &M = SvcMetrics::get();
  Request Req;
  std::string Err;
  if (!decodeRequest(Payload, Req, Err)) {
    // Framing was intact, so the connection survives the bad payload.
    M.MalformedTotal->add();
    Response R;
    R.ReqId = Req.ReqId;
    R.St = Status::Error;
    R.Text = Err;
    queueReply(C, R);
    return;
  }
  M.RequestsTotal->add();
  COMLAT_TRACE(obs::EventKind::SvcFrame, 0, static_cast<int64_t>(Req.ReqId),
               static_cast<uint32_t>(Req.Type), 0);
  switch (Req.Type) {
  case MsgType::Ping: {
    M.RequestsPing->add();
    Response R;
    R.ReqId = Req.ReqId;
    queueReply(C, R);
    return;
  }
  case MsgType::Metrics: {
    M.RequestsMetrics->add();
    Response R;
    R.ReqId = Req.ReqId;
    R.Text = obs::MetricsRegistry::global().toPrometheusText();
    queueReply(C, R);
    return;
  }
  case MsgType::State: {
    // Diagnostic/oracle endpoint: the dump is only meaningful when no
    // batches are in flight (the protocol docs say so); reading it live
    // races with worker transactions.
    M.RequestsState->add();
    Response R;
    R.ReqId = Req.ReqId;
    R.Text = S.Host.stateText();
    queueReply(C, R);
    return;
  }
  case MsgType::Stats: {
    M.RequestsStats->add();
    Response R;
    R.ReqId = Req.ReqId;
    R.Text = S.statsText();
    queueReply(C, R);
    return;
  }
  case MsgType::Subscribe: {
    M.RequestsSubscribe->add();
    Response R;
    R.ReqId = Req.ReqId;
    if (!S.Hub) {
      R.St = Status::Error;
      R.Text = S.isFollower()
                   ? "not a leader (following " + S.Repl->leaderEndpoint() +
                         ")"
                   : "leader is not durable (no wal to ship)";
      queueReply(C, R);
      return;
    }
    const ReplicationHub::SubscribePlan Plan = S.Hub->planSubscribe(Req.Seq);
    if (!Plan.Accept) {
      R.St = Status::Error;
      R.Text = Plan.Reason;
      queueReply(C, R);
      return;
    }
    R.CommitSeq = Plan.DurableSeq;
    if (Plan.SendSnapshot)
      R.Text = "snapshot=" + std::to_string(Plan.SnapshotSeq);
    // Reply first: the Ok goes into the write buffer ahead of anything the
    // hub ships, so the subscriber sees it before the first pushed frame.
    queueReply(C, R);
    if (C->Closed.load(std::memory_order_relaxed))
      return; // the reply flush already found the peer gone
    C->SubId = S.Hub->addSubscriber(
        Req.Seq, Plan, std::make_shared<ConnSink>(this, Conns.at(C->Fd)));
    return;
  }
  case MsgType::WalChunk:
  case MsgType::SnapshotXfer: {
    // Push frames flow leader-to-follower only; receiving one here means
    // the peer is confused. The framing was intact, so just fail it.
    M.MalformedTotal->add();
    Response R;
    R.ReqId = Req.ReqId;
    R.St = Status::Error;
    R.Text = "push frame on a client connection";
    queueReply(C, R);
    return;
  }
  case MsgType::SnapState: {
    // Full snapshot-format state dump (UF ranks included): what a sharded
    // verify run seeds its per-shard oracles from. Same quiescence caveat
    // as State. A concrete shard selector must name this backend.
    M.RequestsState->add();
    Response R;
    R.ReqId = Req.ReqId;
    if (Req.Shard != ShardSelf && S.Config.ShardId >= 0 &&
        Req.Shard != static_cast<uint32_t>(S.Config.ShardId)) {
      R.St = Status::Error;
      R.Text = "snapstate for shard " + std::to_string(Req.Shard) +
               ", this is shard " + std::to_string(S.Config.ShardId);
    } else {
      R.Text = S.Host.snapshotText();
    }
    queueReply(C, R);
    return;
  }
  case MsgType::SubBatch: {
    // The proxy's batch envelope: identical transaction semantics, plus
    // the ring-slot check and a shard annotation on the committed reply.
    if (S.Config.ShardId >= 0 &&
        Req.Shard != static_cast<uint32_t>(S.Config.ShardId)) {
      M.MalformedTotal->add();
      Response R;
      R.ReqId = Req.ReqId;
      R.St = Status::Error;
      R.Text = "sub-batch for shard " + std::to_string(Req.Shard) +
               ", this is shard " + std::to_string(S.Config.ShardId);
      queueReply(C, R);
      return;
    }
    break;
  }
  case MsgType::Batch:
    break;
  }

  M.RequestsBatch->add();
  for (const Op &O : Req.Ops)
    if (!validOp(O, S.Host.ufElements())) {
      M.MalformedTotal->add();
      Response R;
      R.ReqId = Req.ReqId;
      R.St = Status::Error;
      R.Text = "invalid batch op";
      queueReply(C, R);
      return;
    }

  // A follower serves only the read vocabulary; mutations go to the
  // leader. Redirect (not Error) so clients can tell policy from failure.
  if (S.isFollower())
    for (const Op &O : Req.Ops)
      if (mutatingOp(O)) {
        M.RedirectsTotal->add();
        Response R;
        R.ReqId = Req.ReqId;
        R.St = Status::Redirect;
        R.Text = "leader=" + S.Repl->leaderEndpoint();
        queueReply(C, R);
        return;
      }

  // One batch = one transaction. The context lives until the completion
  // fires; the body rebuilds Results from scratch on every attempt so
  // aborted attempts stay invisible to the client.
  struct BatchCtx {
    std::shared_ptr<Connection> Conn;
    uint64_t ReqId;
    std::vector<Op> Ops;
    std::vector<int64_t> Results;
    uint64_t AdmitUs;
    /// SubBatch only: annotate the committed reply with this ring slot.
    bool Sub = false;
    uint32_t Shard = 0;
  };
  auto Ctx = std::make_shared<BatchCtx>();
  Ctx->Conn = Conns.at(C->Fd);
  Ctx->ReqId = Req.ReqId;
  Ctx->Ops = std::move(Req.Ops);
  Ctx->AdmitUs = nowUs();
  if (Req.Type == MsgType::SubBatch) {
    Ctx->Sub = true;
    Ctx->Shard = S.Config.ShardId >= 0
                     ? static_cast<uint32_t>(S.Config.ShardId)
                     : Req.Shard;
  }

  ObjectHost &Host = S.Host;
  auto Body = [Ctx, &Host](Transaction &Tx) {
    Ctx->Results.clear();
    for (const Op &O : Ctx->Ops) {
      int64_t Result = 0;
      if (!Host.applyOp(Tx, O, Result))
        return; // Tx is failed; the submitter aborts and retries
      Ctx->Results.push_back(Result);
    }
  };
  Server &Srv = S;
  IoThread *Owner = this;
  auto Done = [Ctx, &Srv, Owner](const SubmitOutcome &Outcome) {
    SvcMetrics &SM = SvcMetrics::get();
    Response R;
    R.ReqId = Ctx->ReqId;
    if (Outcome.Committed) {
      R.CommitSeq = Outcome.CommitSeq;
      R.Results = Ctx->Results;
      if (Ctx->Sub)
        R.Shards.push_back({Ctx->Shard, Outcome.CommitSeq,
                            static_cast<uint32_t>(Ctx->Results.size())});
      SM.OpsTotal->add(Ctx->Results.size());
    } else {
      R.St = Status::Error;
      R.Text = "retry budget exhausted";
      SM.TxFailedTotal->add();
    }
    SM.TxRetriesTotal->add(Outcome.Aborts);
    SM.RequestLatencyUs->observe(nowUs() - Ctx->AdmitUs);
    std::string Bytes;
    encodeResponse(R, Bytes);
    SM.RepliesTotal->add();
    COMLAT_TRACE(obs::EventKind::SvcReply, Outcome.Tx,
                 static_cast<int64_t>(Ctx->ReqId),
                 static_cast<uint32_t>(R.St), 0);
    // The in-flight claim drops only after the reply was handed over, so
    // the drain cannot finish with a reply still in worker hands. In
    // durable mode a committed reply additionally waits for its WAL
    // record's fdatasync — the ACK-after-fsync ordering that makes every
    // acknowledged batch durable by construction.
    auto Deliver = [Ctx, &Srv, Owner, Bytes = std::move(Bytes)]() mutable {
      Owner->queueReplyFromWorker(std::move(Ctx->Conn), std::move(Bytes));
      Srv.InFlightReplies.fetch_sub(1, std::memory_order_acq_rel);
    };
    if (Srv.Log && Outcome.Committed && !Srv.isFollower())
      Srv.Log->awaitDurable(Outcome.CommitSeq, std::move(Deliver));
    else
      Deliver();
  };

  // In durable mode the WAL is the commit-sequence source: assigning the
  // sequence and enqueuing the record happen atomically inside the commit
  // action, so log order extends the conflict order (svc/Wal.h). On a
  // follower the batch is read-only and never logged; its stamp is the
  // applied replication watermark — the monotonic-reads token.
  Submitter::StampFn Stamp;
  if (S.isFollower()) {
    ReplicationClient *Repl = S.Repl.get();
    Stamp = [Repl]() -> uint64_t { return Repl->appliedSeq(); };
  } else if (S.Log) {
    Wal *Log = S.Log.get();
    Stamp = [Ctx, Log]() -> uint64_t {
      return Log->logCommit([Ctx](uint64_t Seq, std::string &Out) {
        encodeWalRecord(Out, Seq, Ctx->Ops, Ctx->Results);
      });
    };
  }

  S.InFlightReplies.fetch_add(1, std::memory_order_acq_rel);
  if (!S.Submit.trySubmit(std::move(Body), std::move(Done),
                          static_cast<int64_t>(Ctx->ReqId),
                          std::move(Stamp))) {
    S.InFlightReplies.fetch_sub(1, std::memory_order_acq_rel);
    M.BusyTotal->add();
    Response R;
    R.ReqId = Ctx->ReqId;
    R.St = Status::Busy;
    queueReply(C, R);
    return;
  }
  COMLAT_TRACE(obs::EventKind::SvcAdmit, 0, static_cast<int64_t>(Ctx->ReqId),
               0, 0);
}

void IoThread::queueReply(Connection *C, const Response &R) {
  std::string Bytes;
  encodeResponse(R, Bytes);
  SvcMetrics::get().RepliesTotal->add();
  COMLAT_TRACE(obs::EventKind::SvcReply, 0, static_cast<int64_t>(R.ReqId),
               static_cast<uint32_t>(R.St), 0);
  appendAndFlush(C, Bytes);
}

void IoThread::appendAndFlush(Connection *C, const std::string &Bytes) {
  C->WriteBuf += Bytes;
  flushWrites(C);
  if (C->Closed.load(std::memory_order_relaxed))
    return;
  // Slow-reader backpressure: beyond the cap, stop reading this
  // connection. Replies already owed are never dropped; what is bounded
  // is the *admission* of further frames from this peer.
  if (!C->ReadPaused && C->buffered() > S.Config.MaxWriteBuffered) {
    C->ReadPaused = true;
    SvcMetrics::get().BackpressureStalls->add();
    updateInterest(C);
  }
}

void IoThread::flushWrites(Connection *C) {
  while (C->buffered() > 0) {
    const ssize_t N =
        ::send(C->Fd, C->WriteBuf.data() + C->WritePos, C->buffered(),
               MSG_NOSIGNAL);
    if (N > 0) {
      C->WritePos += static_cast<size_t>(N);
      C->LastActiveMs = nowMs();
      SvcMetrics::get().BytesWritten->add(static_cast<uint64_t>(N));
      // Mirror progress into the hub's backlog probe (saturating: plain
      // replies in the same buffer were never counted in).
      size_t Approx = C->BufferedApprox.load(std::memory_order_relaxed);
      while (Approx != 0 &&
             !C->BufferedApprox.compare_exchange_weak(
                 Approx, Approx - std::min(Approx, static_cast<size_t>(N)),
                 std::memory_order_acq_rel))
        ;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!C->WriteArmed) {
        C->WriteArmed = true;
        updateInterest(C);
      }
      return;
    }
    closeConnection(C); // peer is gone
    return;
  }
  // Fully flushed: compact, disarm EPOLLOUT, honor deferred closes, and
  // resume reading once the backlog halved.
  C->WriteBuf.clear();
  C->WritePos = 0;
  if (C->WriteArmed) {
    C->WriteArmed = false;
    updateInterest(C);
  }
  if (C->WantClose) {
    closeConnection(C);
    return;
  }
  if (C->ReadPaused && C->buffered() < S.Config.MaxWriteBuffered / 2) {
    C->ReadPaused = false;
    updateInterest(C);
    // Frames buffered while paused are still waiting in ReadBuf.
    parseFrames(C);
  }
}

void IoThread::drainHandoff() {
  std::vector<int> Fds;
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>> Replies;
  std::vector<std::shared_ptr<Connection>> Closes;
  {
    std::lock_guard<std::mutex> Guard(HandoffMu);
    Fds.swap(NewFds);
    Replies.swap(PendingReplies);
    Closes.swap(PendingCloses);
  }
  for (const int Fd : Fds) {
    if (S.stopRequested())
      ::close(Fd);
    else
      addConnection(Fd);
  }
  for (auto &[C, Bytes] : Replies) {
    if (C->Closed.load(std::memory_order_relaxed))
      continue; // client went away; the reply has nowhere to go
    appendAndFlush(C.get(), Bytes);
  }
  for (const std::shared_ptr<Connection> &C : Closes)
    if (!C->Closed.load(std::memory_order_relaxed))
      closeConnection(C.get());
}

void IoThread::sweepIdle() {
  if (S.Config.IdleTimeoutMs == 0)
    return;
  const uint64_t Now = nowMs();
  std::vector<Connection *> Victims;
  for (auto &[Fd, C] : Conns)
    if (Now - C->LastActiveMs > S.Config.IdleTimeoutMs)
      Victims.push_back(C.get());
  for (Connection *C : Victims) {
    SvcMetrics::get().IdleClosed->add();
    closeConnection(C);
  }
}

bool IoThread::drainComplete() {
  if (S.InFlightReplies.load(std::memory_order_acquire) != 0)
    return false;
  {
    std::lock_guard<std::mutex> Guard(HandoffMu);
    if (!PendingReplies.empty() || !NewFds.empty() || !PendingCloses.empty())
      return false;
  }
  for (auto &[Fd, C] : Conns)
    if (C->buffered() > 0)
      return false;
  return true;
}

void IoThread::run() {
  obs::shardIndex(); // claim a metric shard for this thread
  constexpr int MaxEvents = 64;
  struct epoll_event Events[MaxEvents];
  for (;;) {
    int TimeoutMs = -1;
    if (S.Config.IdleTimeoutMs != 0)
      TimeoutMs = static_cast<int>(
          std::min<unsigned>(S.Config.IdleTimeoutMs / 2 + 1, 500));
    if (S.stopRequested())
      TimeoutMs = 10; // poll the drain conditions
    const int N = ::epoll_wait(EpollFd, Events, MaxEvents, TimeoutMs);
    if (N < 0 && errno != EINTR)
      break;
    for (int I = 0; I < std::max(N, 0); ++I) {
      const struct epoll_event &Ev = Events[I];
      if (Ev.data.u64 == TagWake) {
        uint64_t Junk;
        while (::read(WakeFd, &Junk, sizeof(Junk)) > 0) {
        }
        continue;
      }
      if (Ev.data.u64 == TagListener) {
        if (!S.stopRequested())
          acceptNew();
        continue;
      }
      auto *C = static_cast<Connection *>(Ev.data.ptr);
      if (Conns.find(C->Fd) == Conns.end() ||
          C->Closed.load(std::memory_order_relaxed))
        continue; // closed earlier in this batch of events
      if (Ev.events & (EPOLLHUP | EPOLLERR)) {
        // HUP means the peer is fully gone: flush what we can, then drop
        // the connection. Leaving it registered spins the level-triggered
        // loop at 100% CPU for every client that ever disconnected.
        if (C->buffered() > 0)
          flushWrites(C);
        if (!C->Closed.load(std::memory_order_relaxed))
          closeConnection(C);
        continue;
      }
      if (Ev.events & EPOLLOUT)
        flushWrites(C);
      if (C->Closed.load(std::memory_order_relaxed))
        continue;
      if ((Ev.events & EPOLLIN) && !S.stopRequested())
        handleRead(C);
    }
    drainHandoff();
    sweepIdle();
    Dead.clear();
    if (S.stopRequested()) {
      if (Index == 0 && !ListenerClosed) {
        // Stop accepting: new connections get RST from here on.
        ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, S.ListenFd, nullptr);
        ListenerClosed = true;
      }
      if (DrainDeadlineMs == 0)
        DrainDeadlineMs = nowMs() + 5000;
      // Stop reading every connection; keep flushing replies.
      for (auto &[Fd, C] : Conns)
        updateInterest(C.get());
      if (drainComplete() || nowMs() > DrainDeadlineMs)
        break;
    }
  }
  // Drained (or deadline): close whatever is left.
  while (!Conns.empty())
    closeConnection(Conns.begin()->second.get());
  SvcMetrics::get().ConnectionsActive->set(0);
}

// Round-robin accept distribution; process-wide is fine (one server per
// process in practice, and distribution only needs rough balance).
std::atomic<unsigned> IoThread::NextAccept{0};

Server::Server(const ServerConfig &Config)
    : Config(Config), Host(Config.UfElements, Config.PrivatizeAcc),
      Submit({.NumThreads = Config.Workers,
              .QueueCapacity = Config.QueueCapacity,
              .Backoff = Config.Backoff,
              .MaxAttempts = Config.MaxAttempts}) {}

Server::~Server() { stop(); }

bool Server::recover(std::string *Err) {
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
  obs::Counter *Replayed = Reg.counter("comlat_wal_recovery_replayed_total");
  obs::Counter *TornTotal = Reg.counter("comlat_wal_recovery_torn_total");
  Reg.counter("comlat_wal_snapshots_total"); // register the family

  RecoverySource Source(Config.WalDir);
  std::string LoadErr;
  if (!Source.load(/*Repair=*/true, &LoadErr)) {
    if (Err)
      *Err = "recovery: " + LoadErr;
    return false;
  }
  if (Source.scan().Torn)
    TornTotal->add();
  // A sequence gap means acknowledged records are missing from disk
  // (e.g. the WAL was truncated past the snapshot we could load). Replay
  // over the hole could silently lose acknowledged batches, so refuse.
  if (Source.scan().Gap) {
    if (Err)
      *Err = "recovery: wal sequence gap at " +
             std::to_string(Source.scan().GapAt) +
             " (acknowledged history missing; refusing to start)";
    return false;
  }
  if (Source.hasSnapshot())
    SnapSeq.store(Source.snapshot().Seq, std::memory_order_release);

  // Replay through the one ReplayEngine (svc/Replication.h): the gated
  // apply path, one transaction per record, demanding recomputed results
  // match the logged (acknowledged) ones — any disagreement means the
  // state diverged and serving must not start.
  HostReplayTarget Target(Host);
  ReplayEngine Engine(Target, SeqPolicy::Resume);
  std::string ReplayErr;
  if (!Source.replayInto(Engine, &ReplayErr)) {
    if (Err)
      *Err = "recovery: " + ReplayErr;
    return false;
  }
  Replayed->add(Engine.appliedRecords());
  RecoveredSeq.store(Source.watermark(), std::memory_order_release);
  return true;
}

bool Server::start(std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  // Recovery runs to completion before the socket exists: no client can
  // observe (or append to) a half-recovered state.
  if (Config.Durable) {
    if (Config.WalDir.empty()) {
      if (Err)
        *Err = "durable mode requires a wal directory";
      return false;
    }
    if (!recover(Err))
      return false;
  }

  // Follower bootstrap runs before the socket exists for the same reason
  // recovery does: no client can read a half-installed state. The client
  // synchronously connects, subscribes at our recovered watermark and
  // installs a shipped snapshot when the leader offers one; live tail
  // application starts only after the server is otherwise up.
  if (isFollower()) {
    FollowConfig FC;
    FC.LeaderHost = Config.FollowHost;
    FC.LeaderPort = Config.FollowPort;
    Repl = std::make_unique<ReplicationClient>(
        Host, FC, [this](const std::string &Msg) {
          std::fprintf(stderr, "comlat-serve: replication failed: %s\n",
                       Msg.c_str());
          ReplFailed.store(true, std::memory_order_release);
          requestStop();
        });
    SnapshotData Snap;
    bool GotSnapshot = false;
    std::string BootErr;
    if (!Repl->bootstrap(RecoveredSeq.load(std::memory_order_acquire), &Snap,
                         &GotSnapshot, &BootErr)) {
      if (Err)
        *Err = "follow: " + BootErr;
      return false;
    }
    if (GotSnapshot && Config.Durable) {
      // Persist the bridge snapshot so a restart can recover locally up
      // to its watermark instead of re-shipping it.
      std::string SnapErr;
      if (!writeSnapshot(Config.WalDir, Snap, &SnapErr)) {
        if (Err)
          *Err = "follow: persisting bootstrap snapshot: " + SnapErr;
        return false;
      }
      SnapSeq.store(Snap.Seq, std::memory_order_release);
      RecoveredSeq.store(Snap.Seq, std::memory_order_release);
    }
  }

  if (Config.Durable) {
    // A follower's log continues from wherever bootstrap left the applied
    // watermark (local recovery, possibly superseded by a shipped
    // snapshot); a leader's from its recovered watermark.
    const uint64_t Base = isFollower() ? Repl->appliedSeq()
                                       : RecoveredSeq.load(
                                             std::memory_order_acquire);
    Log = std::make_unique<Wal>(
        WalConfig{Config.WalDir, Config.WalSyncIntervalUs, Config.WalGroupMax},
        Base + 1);
  }

  // Only a durable leader ships its tail; followers refuse Subscribe.
  if (Log && !isFollower()) {
    Hub = std::make_unique<ReplicationHub>(*Log, Config.WalDir);
    Hub->start();
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1)
    return Fail("inet_pton('" + Config.BindAddress + "')");
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return Fail("bind");
  if (::listen(ListenFd, 256) != 0)
    return Fail("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
                    &Len) != 0)
    return Fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  SvcMetrics::get(); // register the metric families up front
  const unsigned NumIo = std::max(1u, Config.IoThreads);
  Io.reserve(NumIo);
  for (unsigned I = 0; I != NumIo; ++I)
    Io.push_back(std::make_unique<IoThread>(*this, I));
  Io[0]->registerListener(ListenFd);
  for (unsigned I = 0; I != NumIo; ++I)
    IoJoins.emplace_back([this, I] { Io[I]->run(); });
  if (Config.Durable && Config.SnapshotIntervalMs != 0) {
    SnapThread = std::thread([this] {
      std::unique_lock<std::mutex> Guard(SnapStopMu);
      for (;;) {
        if (SnapStopCv.wait_for(
                Guard, std::chrono::milliseconds(Config.SnapshotIntervalMs),
                [this] { return SnapStop; }))
          return;
        Guard.unlock();
        snapshotNow();
        Guard.lock();
      }
    });
  }
  Started.store(true, std::memory_order_release);
  // The apply thread starts last: everything it touches (Host, Log, the
  // serving threads that stamp reads with the applied watermark) is up.
  if (Repl)
    Repl->start(Log.get());
  return true;
}

bool Server::snapshotNow() {
  if (!Log)
    return false;
  std::lock_guard<std::mutex> Snapping(SnapMu);

  // Quiesce: pause admission, wait until nothing is running. With the
  // submitter paused the queue only grows, so reading the queue depth
  // first makes inFlight == queueDepth imply zero running transactions.
  Submit.pause();
  const uint64_t Deadline = nowMs() + 30000;
  for (;;) {
    const size_t Queued = Submit.queueDepth();
    const size_t Pending = Submit.inFlight();
    if (Pending == Queued)
      break;
    if (nowMs() > Deadline) {
      Submit.resume();
      std::fprintf(stderr, "comlat-serve: snapshot quiesce timed out\n");
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // On a follower the mutator is the replication apply thread, not the
  // submitter — hold it between records so the captured state matches the
  // last assigned (mirrored) sequence exactly.
  if (Repl)
    Repl->pauseApply();

  // Capture at the last assigned sequence: every record <= W is in the
  // WAL queue (assignment and enqueue are atomic) and reflected in the
  // captured state; nothing above W exists yet.
  SnapshotData Snap;
  Snap.Seq = Log->lastAssignedSeq();
  Snap.State = Host.snapshotText();
  Log->rotateAfter(Snap.Seq);
  if (Repl)
    Repl->resumeApply();
  Submit.resume();

  std::string Err;
  if (!writeSnapshot(Config.WalDir, Snap, &Err)) {
    std::fprintf(stderr, "comlat-serve: snapshot failed: %s\n", Err.c_str());
    return false;
  }
  SnapSeq.store(Snap.Seq, std::memory_order_release);
  obs::MetricsRegistry::global().counter("comlat_wal_snapshots_total")->add();
  pruneSnapshots(Config.WalDir, /*Keep=*/2);
  // Truncate only what the *oldest retained* snapshot covers (read back
  // from disk, so a re-snapshot at an unchanged watermark cannot advance
  // the boundary past it): the older snapshot is only an actual fallback
  // if every WAL record above *its* watermark is still on disk.
  Log->truncateThrough(oldestSnapshotSeq(Config.WalDir));
  return true;
}

std::string Server::statsText() const {
  std::string Out;
  Out += std::string("durable=") + (Config.Durable ? "1" : "0") + "\n";
  Out += std::string("privatized=") + (Host.privatizedAcc() ? "1" : "0") +
         "\n";
  Out += "uf_elements=" + std::to_string(Host.ufElements()) + "\n";
  Out += "wal_recovered_seq=" +
         std::to_string(RecoveredSeq.load(std::memory_order_acquire)) + "\n";
  Out += "snapshot_seq=" +
         std::to_string(SnapSeq.load(std::memory_order_acquire)) + "\n";
  if (Log) {
    Out += "wal_last_seq=" + std::to_string(Log->lastAssignedSeq()) + "\n";
    Out += "wal_durable_seq=" + std::to_string(Log->durableSeq()) + "\n";
  }
  Out += std::string("role=") + (isFollower() ? "follower" : "leader") + "\n";
  if (Config.ShardId >= 0)
    Out += "shard_id=" + std::to_string(Config.ShardId) + "\n";
  if (Repl) {
    Out += "repl_applied_seq=" + std::to_string(Repl->appliedSeq()) + "\n";
    Out += "repl_leader_durable_seq=" +
           std::to_string(Repl->leaderDurableSeq()) + "\n";
    Out += "repl_reconnects=" + std::to_string(Repl->reconnects()) + "\n";
    Out += std::string("repl_failed=") + (Repl->failed() ? "1" : "0") + "\n";
    Out += "repl_leader=" + Repl->leaderEndpoint() + "\n";
  }
  if (Hub)
    Out += "repl_subscribers=" + std::to_string(Hub->subscriberCount()) + "\n";
  return Out;
}

void Server::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  // Stop the hub pushing (flag-only, still signal-safe) so follower
  // connections can drain to empty write buffers; stop the apply thread's
  // blocking recv the same way.
  if (Hub)
    Hub->requestStop();
  if (Repl)
    Repl->requestStop();
  for (const std::unique_ptr<IoThread> &T : Io)
    T->wake();
}

void Server::stop() {
  if (!Started.load(std::memory_order_acquire)) {
    if (Repl)
      Repl->stop();
    if (Hub)
      Hub->stop();
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return;
  }
  requestStop();
  for (std::thread &T : IoJoins)
    if (T.joinable())
      T.join();
  IoJoins.clear();
  Submit.drain();
  if (SnapThread.joinable()) {
    {
      std::lock_guard<std::mutex> Guard(SnapStopMu);
      SnapStop = true;
    }
    SnapStopCv.notify_all();
    SnapThread.join();
  }
  // Replication shuts down while Log is still alive: the apply thread
  // appends mirrored records to it, and the hub's tail-sink unsubscription
  // needs the Wal.
  if (Repl)
    Repl->stop();
  if (Hub)
    Hub->stop();
  // Everything admitted has committed and logged; wait out the last
  // fdatasync so a clean shutdown leaves a fully durable log.
  if (Log)
    Log->flush();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  {
    std::lock_guard<std::mutex> Guard(StopM);
    Stopped.store(true, std::memory_order_release);
  }
  StopCV.notify_all();
  Started.store(false, std::memory_order_release);
}

void Server::waitStopped() {
  std::unique_lock<std::mutex> Guard(StopM);
  StopCV.wait(Guard, [this] { return Stopped.load(std::memory_order_acquire); });
}
