//===- svc/Client.h - Direct-routing sharded client -------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the sharding story (DESIGN.md §3.13): a routing
/// client that skips the proxy hop entirely for the traffic the lattice
/// says needs no coordination. The proxy's Stats frame publishes its full
/// ring geometry — (shards, vnodes, seed) plus the backend endpoints — and
/// because both HashRing and ShardRouter are deterministic pure functions
/// of that triple, a ShardClient rebuilds the *byte-identical* router and
/// predicts every batch's RoutePlan without asking anyone:
///
///  * Keyed / Anywhere batches that plan to a single shard go **direct**:
///    the client wraps them in the same SubBatch envelope the proxy would
///    have built and sends them straight to the owner backend over a
///    per-shard connection.
///  * Pinned ops, cross-shard plans and whole-structure State / Metrics /
///    SnapState reads **fall back to the proxy**, which still owns retry
///    orchestration, scatter-gather and the lattice merge.
///
/// On top of the routing sits pipelining: every connection (shard or
/// proxy) carries up to Window in-flight batches in a pending-reply map —
/// the proxy's Pending machinery generalized into the client. submit() is
/// asynchronous and blocks only when the target connection's window is
/// full; poll() collects completions in whatever order the backends answer.
///
/// The failure handling mirrors the proxy's slot logic: Busy replies retry
/// client-side on a bounded deadline queue; a Redirect re-points the slot
/// at the named leader and resends; a dead connection fails its in-flight
/// batches as synthesized Error completions (flagged ConnLost so a crash
/// harness can tell them from server-reported errors) and re-dials lazily
/// under exponential backoff. Every direct Ok reply is audited against the
/// predicted route via the shard-annotation trailer — a shard answering
/// for a key it does not own counts a misroute, and a backend refusing the
/// envelope ("this is shard M") triggers a ring re-bootstrap from the
/// proxy's current Stats.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_CLIENT_H
#define COMLAT_SVC_CLIENT_H

#include "svc/Proxy.h"
#include "svc/Shard.h"

#include <poll.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace comlat {
namespace svc {

/// Ring geometry as published by a proxy's Stats frame — everything a
/// client needs to rebuild the proxy's router bit-for-bit.
struct RingGeometry {
  /// The publisher's role line (`proxy`, `leader`, `follower`, or empty).
  std::string Role;
  unsigned Shards = 0;
  unsigned VNodes = 0;
  uint64_t Seed = 0;
  /// Backend endpoints by ascending shard id (Endpoints[i] = ring slot i).
  std::vector<ShardEndpoint> Endpoints;

  /// A geometry a router can be built from: a proxy publisher with a
  /// non-degenerate ring and one endpoint per shard.
  bool routable() const {
    return Role == "proxy" && Shards > 0 && VNodes > 0 &&
           Endpoints.size() == Shards;
  }

  bool sameRing(const RingGeometry &O) const {
    return Shards == O.Shards && VNodes == O.VNodes && Seed == O.Seed;
  }
};

/// Parses a Stats text (`key=value` lines) into \p Out: role=, shards=,
/// ring_vnodes=, ring_seed= and the per-slot shardK=host:port lines. False
/// (with \p Err set) on structurally broken geometry — a shardK line that
/// does not parse, or fewer endpoint lines than shards=N announced. A
/// Stats text with no ring lines at all (a plain backend's) parses fine
/// into a non-routable geometry.
bool parseRingGeometry(const std::string &StatsText, RingGeometry &Out,
                       std::string *Err = nullptr);

/// Shapes one ShardClient.
struct ShardClientConfig {
  /// The proxy (bootstrap source and fallback path).
  std::string ProxyHost = "127.0.0.1";
  uint16_t ProxyPort = 0;
  /// Route single-shard Keyed/Anywhere plans directly to their backend.
  /// With false (or a non-routable bootstrap) everything goes to the proxy
  /// — still pipelined.
  bool Direct = true;
  /// Max in-flight batches per connection; submit() blocks at the cap.
  unsigned Window = 32;
  /// Busy replies on direct connections retry this many times client-side.
  unsigned BusyRetryLimit = 64;
  unsigned BusyRetryDelayMs = 2;
  /// Redirect chases per batch (a slot whose backend turned follower).
  unsigned RedirectLimit = 4;
  /// Reconnect backoff for dead connections: base delay, doubling per
  /// consecutive failure up to the max, with deterministic jitter.
  unsigned ReconnectDelayMs = 20;
  unsigned ReconnectMaxDelayMs = 1000;
  /// Must match the backends' --uf-elements (op validation / routing).
  size_t UfElements = 1024;
};

/// Routing and failure counters, mirrored into loadgen outputs as
/// loadgen_client_* / loadgen_direct_* keys.
struct ShardClientCounters {
  /// Batches sent straight to their owner shard as SubBatch envelopes.
  uint64_t DirectBatches = 0;
  /// Batches that fell back to the proxy (Pinned ops, cross-shard plans,
  /// Direct off, or no routable ring).
  uint64_t ProxiedBatches = 0;
  /// Direct Ok replies whose shard annotation named the wrong shard (or
  /// mis-shaped results) — `client_misroutes_total`. Always a wiring bug.
  uint64_t Misroutes = 0;
  /// Redirect replies chased by re-pointing the slot at the named leader.
  uint64_t Redirects = 0;
  /// Successful re-dials of a connection that had been lost.
  uint64_t Reconnects = 0;
  /// Ring re-bootstraps from the proxy Stats frame (topology mismatch).
  uint64_t Rebootstraps = 0;
  /// Busy replies retried client-side on direct connections.
  uint64_t BusyRetries = 0;
  /// Connections that died with batches still in flight.
  uint64_t ConnLostBatches = 0;
  /// High watermark of in-flight batches on any single connection — the
  /// observed pipelining depth.
  uint64_t MaxConnInflight = 0;
  /// High watermark of in-flight batches across all connections.
  uint64_t MaxInflight = 0;
};

/// One finished batch, out of poll().
struct ClientCompletion {
  /// The caller's submit() token.
  uint64_t Token = 0;
  Response R;
  /// Answered by a backend directly (false: via the proxy).
  bool Direct = false;
  /// Direct only: the shard the batch was routed to.
  unsigned Shard = 0;
  /// The Error response was synthesized because the connection died before
  /// a reply arrived; the batch's fate on the server is unknown.
  bool ConnLost = false;
};

/// The direct-routing pipelined client. Not thread-safe; one per thread
/// (like Client). Lifecycle: construct -> connect() or
/// bootstrapFromText() -> submit()/poll() or call() -> close().
class ShardClient {
public:
  explicit ShardClient(const ShardClientConfig &Config);
  ~ShardClient();

  ShardClient(const ShardClient &) = delete;
  ShardClient &operator=(const ShardClient &) = delete;

  /// Fetches the proxy's Stats frame and bootstraps the ring from it.
  /// False (Err set) only when the Stats fetch fails outright; a
  /// non-routable publisher (a plain backend, say) succeeds with direct
  /// routing disengaged — every batch then goes to ProxyHost:ProxyPort.
  bool connect(std::string *Err = nullptr);

  /// Bootstraps from an in-hand Stats text instead of fetching one — for
  /// tests and embedded clients that already hold the geometry. False
  /// (Err set) on unparseable geometry.
  bool bootstrapFromText(const std::string &StatsText,
                         std::string *Err = nullptr);

  /// Whether direct routing is engaged (Direct configured and the
  /// bootstrap published a routable ring).
  bool directEngaged() const { return DirectOn; }

  const RingGeometry &geometry() const { return Geo; }

  /// The rebuilt router (null until a routable bootstrap).
  const ShardRouter *router() const { return Router.get(); }

  /// True when \p Ops would be routed directly: a single-shard plan with
  /// no Pinned op. (Pinned reads observe owner-replica state the proxy
  /// must be able to State-merge around, so they keep the proxy hop.)
  bool wouldRouteDirect(const std::vector<Op> &Ops, unsigned *Shard) const;

  /// Queues one batch for its routed destination and sends it. Blocks
  /// (polling internally) only while the destination's in-flight window is
  /// full. The completion — success or failure — always arrives via
  /// poll(); submit itself only fails (false) on an empty/oversized batch.
  bool submit(uint64_t Token, std::vector<Op> Ops);

  /// Collects finished batches into \p Out (appending), waiting up to
  /// \p TimeoutMs for the first one when none are ready. Returns the
  /// number appended.
  size_t poll(std::vector<ClientCompletion> &Out, int TimeoutMs);

  /// poll() until nothing is in flight or \p TimeoutSec passes. Returns
  /// true when fully drained.
  bool drain(std::vector<ClientCompletion> &Out, double TimeoutSec);

  /// Synchronous one-batch convenience: submit + poll until that batch
  /// completes (other completions queue for the next poll()). False on
  /// timeout (\p TimeoutSec) — \p C then reports a synthesized error.
  bool call(const std::vector<Op> &Ops, ClientCompletion &C,
            double TimeoutSec = 30.0);

  /// Batches currently in flight (pending replies + queued Busy retries).
  size_t inflight() const;

  const ShardClientCounters &counters() const { return Counters; }

  void close();

private:
  struct PendingTx {
    uint64_t Token = 0;
    std::vector<Op> Ops;
    /// Expected shard (direct) or SlotProxy's sentinel.
    unsigned Shard = 0;
    unsigned BusyTries = 0;
    unsigned RedirectTries = 0;
  };

  /// One connection: ring slot i for i < Shards, the proxy at index
  /// Shards. Dialed lazily, re-dialed under backoff after failures.
  struct Slot {
    std::string Host;
    uint16_t Port = 0;
    int Fd = -1;
    bool EverConnected = false;
    unsigned FailStreak = 0;
    uint64_t RetryAtMs = 0;
    std::string RecvBuf;
    size_t RecvPos = 0;
    /// Encoded-but-unsent frames: submit() appends here and the next
    /// poll/wait flushes the whole run in one send() — pipelined
    /// submission coalesces syscalls instead of paying one per batch.
    std::string SendBuf;
    std::map<uint64_t, PendingTx> Pending; ///< ReqId -> in-flight batch
  };

  struct BusyRetry {
    uint64_t DueMs = 0;
    unsigned SlotIdx = 0;
    PendingTx Tx;
  };

  ShardClientConfig Config;
  RingGeometry Geo;
  bool DirectOn = false;
  /// Router holds a reference into Ring; they rebuild together.
  std::unique_ptr<HashRing> Ring;
  std::unique_ptr<ShardRouter> Router;
  std::vector<Slot> Slots; ///< shard slots + trailing proxy slot
  std::deque<BusyRetry> Retries;
  std::deque<ClientCompletion> Ready;
  ShardClientCounters Counters;
  uint64_t NextReqId = 1;
  uint64_t NextCallToken = 1;
  bool WantRebootstrap = false;
  uint64_t JitterState = 0x2545F4914F6CDD1Dull;
  /// Per-poll scratch (hot path): reused pollfd arrays.
  std::vector<struct pollfd> PfdScratch;
  std::vector<unsigned> PfdSlotScratch;

  unsigned proxySlot() const { return Geo.Shards; }
  void rebuildSlots();
  uint64_t backoffDelayMs(Slot &S);
  bool dialSlot(unsigned Idx);
  void slotDown(unsigned Idx);
  void sendTx(unsigned Idx, PendingTx Tx);
  /// Pushes a slot's buffered frames onto the wire (slotDown on failure).
  void flushSlot(unsigned Idx);
  void completeError(PendingTx &&Tx, unsigned Idx, const std::string &Text,
                     bool ConnLost);
  void handleReply(unsigned Idx, Response &&R);
  /// Non-blocking read-drain of one slot: recv everything available, peel
  /// and dispatch complete frames, slotDown on EOF/corruption.
  void drainSlot(unsigned Idx);
  void pumpRetries(uint64_t NowMs);
  /// One socket-poll round. With \p EvenIfReady it makes progress on the
  /// wire even when completions are already queued (window waits need
  /// that); otherwise queued completions return immediately.
  void pollOnce(int TimeoutMs, bool EvenIfReady = false);
  void rebootstrap();
  void waitWindow(unsigned Idx);
};

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_CLIENT_H
