//===- svc/Proxy.h - The comlat-shard routing front end ---------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharding proxy (DESIGN.md §3.12): an epoll front end that speaks
/// the ordinary batch protocol to clients and fans batches out over N
/// backend comlat-serve processes according to the spec-driven routing
/// plan (svc/Shard.h). Data path per client Batch:
///
///  * plan the batch. One target shard -> the fast path: the ops bytes are
///    spliced unparsed out of the client frame into one SubBatch envelope
///    (no per-op re-encode) and the backend's reply maps straight back.
///  * several target shards -> the batch splits into per-shard SubBatch
///    transactions executing independently (they commute across shards by
///    construction of the plan); the reply reassembles results into
///    original op order and carries one shard annotation per sub-batch
///    with that backend's own commit_seq.
///
/// Sub-batches that come back Busy retry with a deadline queue (bounded);
/// Redirect replies from a backend that turned follower re-point that ring
/// slot at the named leader and resend. A backend that drops mid-flight
/// fails its sub-batches — committed siblings are still annotated in the
/// Error reply so a verifying client can account for them — and the slot
/// reconnects lazily with backoff, so routing resumes as soon as the
/// backend returns.
///
/// Whole-structure State/Metrics requests scatter-gather every backend and
/// reconcile by lattice merge (set union, accumulator sum, union-find
/// partition join — mergeStateTexts/mergeMetricsTexts); SnapState relays
/// to the named shard. The proxy's Stats text publishes the full ring
/// parameters (shards, vnodes, seed, endpoints), which is all a client
/// needs to rebuild the identical router and predict every plan.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_PROXY_H
#define COMLAT_SVC_PROXY_H

#include "svc/Shard.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace comlat {
namespace svc {

class ProxyIo;

/// One backend endpoint of the ring, by ascending shard id.
struct ShardEndpoint {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
};

/// Everything that shapes one proxy instance.
struct ProxyConfig {
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read back via port()).
  uint16_t Port = 0;
  /// I/O event-loop threads; each owns its own backend connections.
  unsigned IoThreads = 2;
  /// Backend shards; Backends[i] serves ring slot i.
  std::vector<ShardEndpoint> Backends;
  /// Ring geometry. Published in Stats; clients rebuild the same ring.
  unsigned VNodes = 64;
  uint64_t RingSeed = 0x5EEDull;
  /// Must match the backends' --uf-elements (op validation).
  size_t UfElements = 1024;
  /// Busy sub-batches retry this many times before the batch fails.
  unsigned BusyRetryLimit = 64;
  unsigned BusyRetryDelayMs = 2;
  /// Redirect chases per sub-batch (a slot whose backend turned follower).
  unsigned RedirectLimit = 4;
  /// Backoff before re-dialing a dead backend: base delay, doubled per
  /// consecutive failure (with jitter) up to the max — a persistently dead
  /// backend must not be hammered by every touching request.
  unsigned ReconnectDelayMs = 50;
  unsigned ReconnectMaxDelayMs = 2000;
  /// Per-connection reply backlog cap; a client further behind is closed.
  size_t MaxWriteBuffered = 1u << 22;
};

/// A log2-bucketed latency histogram safe for concurrent recording from
/// the I/O threads — the atomic sibling of runtime/ExecStats.h's
/// LatencyHistogram, rendered as a Prometheus histogram family.
struct AtomicLatencyHistogram {
  static constexpr unsigned NumBuckets = 24; // ~8s at microsecond grain
  std::atomic<uint64_t> Buckets[NumBuckets];
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> TotalMicros{0};

  AtomicLatencyHistogram() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }

  void addMicros(uint64_t Us) {
    unsigned Idx = 0;
    while (Idx + 1 < NumBuckets && Us >= (1ull << (Idx + 1)))
      ++Idx;
    Buckets[Idx].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    TotalMicros.fetch_add(Us, std::memory_order_relaxed);
  }

  /// Appends the family as Prometheus histogram text: cumulative
  /// `<Name>_bucket{le="..."}` samples (upper bounds in microseconds),
  /// `<Name>_sum` and `<Name>_count`.
  void renderProm(const char *Name, std::string &Out) const;
};

/// The proxy. Lifecycle: construct -> start() -> (serve) -> stop().
class Proxy {
public:
  explicit Proxy(const ProxyConfig &Config);
  ~Proxy();

  Proxy(const Proxy &) = delete;
  Proxy &operator=(const Proxy &) = delete;

  /// Binds, listens, spawns the I/O threads. Backend connections are
  /// dialed lazily on first use, so backends may start later. False (Err
  /// set) on socket setup failure or an empty backend list.
  bool start(std::string *Err = nullptr);

  /// The bound port (after start()).
  uint16_t port() const { return BoundPort; }

  /// Begins the drain without blocking: stop accepting, fail nothing —
  /// in-flight batches finish against their backends first.
  void requestStop();

  /// requestStop() plus joining every thread. Idempotent.
  void stop();

  /// Blocks until a requestStop() drain completed.
  void waitStopped();

  bool stopRequested() const {
    return StopFlag.load(std::memory_order_acquire);
  }

  const HashRing &ring() const { return Ring; }
  const ShardRouter &router() const { return Router; }

  /// The Stats-frame payload: role=proxy, ring geometry, endpoints and
  /// routing counters as `key=value` lines.
  std::string statsText() const;

  /// The proxy's own Prometheus families (comlat_proxy_*), merged into the
  /// scatter-gathered Metrics reply alongside the backends' exports.
  std::string proxyMetricsText() const;

  /// Routing counters (also in statsText and the Metrics export).
  uint64_t fastPathBatches() const { return FastPath.load(); }
  uint64_t splitBatches() const { return Split.load(); }
  uint64_t reconnectBackoffs() const { return ReconnectBackoffs.load(); }

  /// Per-route-kind batch round-trip times, client frame in to reply
  /// queued: the proxy hop the direct path saves, directly measurable.
  const AtomicLatencyHistogram &rttFastpath() const { return RttFastpath; }
  const AtomicLatencyHistogram &rttSplit() const { return RttSplit; }

private:
  friend class ProxyIo;

  ProxyConfig Config;
  HashRing Ring;
  ShardRouter Router;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopped{false};
  std::vector<std::unique_ptr<ProxyIo>> Io;
  std::vector<std::thread> IoJoins;
  std::mutex StopM;
  std::condition_variable StopCV;

  /// Routing counters, aggregated across I/O threads.
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> FastPath{0};
  std::atomic<uint64_t> Split{0};
  std::atomic<uint64_t> SubBatches{0};
  std::atomic<uint64_t> BusyRetries{0};
  std::atomic<uint64_t> Redirects{0};
  std::atomic<uint64_t> Reconnects{0};
  std::atomic<uint64_t> ShardErrors{0};
  std::atomic<uint64_t> Misroutes{0};
  std::atomic<uint64_t> MergeReads{0};
  std::atomic<uint64_t> PartialCommits{0};
  /// Dead-backend dials deferred past the base delay by the exponential
  /// backoff — each one a reconnect attempt the old constant-delay policy
  /// would have burned on a still-dead backend.
  std::atomic<uint64_t> ReconnectBackoffs{0};
  AtomicLatencyHistogram RttFastpath;
  AtomicLatencyHistogram RttSplit;
};

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_PROXY_H
