//===- svc/Wal.h - Commit-sequence write-ahead log --------------*- C++ -*-===//
//
// Part of the comlat project: a reproduction of "Exploiting the
// Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability log of the serving layer (DESIGN.md §3.10). Every
/// committed batch appends one length-prefixed, CRC32C-protected record
/// carrying its commit sequence number, its operations and its reply
/// results; a dedicated log thread group-commits records with one
/// fdatasync per group and only then releases the client ACKs, so an
/// acknowledged batch is durable by construction.
///
/// The one ordering invariant everything else leans on: *file order equals
/// commit-sequence order*. logCommit() both assigns the sequence number
/// and enqueues the record under the same mutex, and it is called from
/// inside the transaction's commit action — while the conflict detectors
/// are still held — so for any two conflicting batches the log order
/// extends the detector-enforced order. Replaying the log front to back is
/// therefore the same serial-execution witness the in-memory oracle
/// replays (runtime/Submitter.h), which is what makes recovery correct.
///
/// The log is segmented (`wal-<firstseq>.log`). A snapshot at watermark W
/// requests a rotation: the log thread finishes the current segment at W
/// and starts a new one at W+1, after which truncateThrough(B) deletes
/// the closed segments whose records all sit at or below a durable
/// boundary B — the server passes the *oldest retained* snapshot's
/// watermark, so the records above it stay on disk and the retained
/// fallback snapshot remains replayable. Recovery reads segments in name order, skips
/// records at or below the snapshot watermark, and tolerates a torn
/// tail: the first CRC/length mismatch ends the valid prefix, and repair
/// truncates the file there (plus unlinks any later segments) so the
/// garbage cannot shadow future appends. A sequence *gap*, by contrast,
/// is unrepairable lost history and recovery refuses to start on one.
///
//===----------------------------------------------------------------------===//

#ifndef COMLAT_SVC_WAL_H
#define COMLAT_SVC_WAL_H

#include "support/SmallFunc.h"
#include "svc/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace comlat {
namespace svc {

/// Shapes one log instance.
struct WalConfig {
  /// Directory holding the segments and snapshots. Must exist.
  std::string Dir;
  /// Group-commit coalescing window: a record waits at most this long for
  /// companions before its group is fdatasync'ed.
  unsigned SyncIntervalUs = 1000;
  /// Records per fdatasync group cap.
  unsigned GroupMax = 64;
};

/// One decoded log record.
struct WalRecord {
  uint64_t Seq = 0;
  std::vector<Op> Ops;
  std::vector<int64_t> Results;
};

/// Hard bound on one record's payload (header + MaxBatchOps ops and
/// results, with slack); larger length prefixes are torn by definition.
inline constexpr size_t MaxWalRecordPayload = 1u << 20;

/// Appends the framed encoding of one record to \p Out:
///   u32 payload_len | payload | u32 crc32c(payload)
///   payload := u64 seq | u32 nops | nops * (u8 obj | u8 method | i64 a |
///              i64 b) | u32 nresults | nresults * i64
void encodeWalRecord(std::string &Out, uint64_t Seq,
                     const std::vector<Op> &Ops,
                     const std::vector<int64_t> &Results);

/// Outcome of decoding one record at a buffer position.
enum class WalDecode {
  Ok,   ///< \p Out holds a record; \p Pos advanced past it.
  End,  ///< \p Pos is exactly the end of the buffer: clean end of log.
  Torn, ///< Partial header, bad length, CRC mismatch or malformed payload:
        ///< the valid prefix ends at \p Pos.
};

/// Decodes the record starting at \p Pos in \p Buf. Advances \p Pos only
/// on Ok.
WalDecode decodeWalRecord(std::string_view Buf, size_t &Pos, WalRecord &Out);

/// Result of scanning a log directory for recovery.
struct WalScan {
  /// Valid records with Seq > the scan watermark, in sequence order.
  std::vector<WalRecord> Records;
  /// Largest valid sequence number seen (including skipped records);
  /// 0 when the log is empty.
  uint64_t LastSeq = 0;
  /// Valid records skipped because Seq <= the watermark.
  uint64_t Skipped = 0;
  /// True when a torn tail (or a later-than-torn segment) was dropped.
  bool Torn = false;
  /// True when the surviving records do not form a contiguous extension
  /// of the watermark: some acknowledged sequence in (Watermark, LastSeq]
  /// is missing from disk. Unlike a torn tail this is never repairable —
  /// the records past the hole were acknowledged — so recovery must
  /// refuse to start rather than replay over it.
  bool Gap = false;
  /// First missing sequence number when Gap is set.
  uint64_t GapAt = 0;
  /// Segment file names examined, in replay order.
  std::vector<std::string> Segments;
};

/// Reads every `wal-*.log` segment under \p Dir in name order, collecting
/// records with Seq > \p Watermark. Stops at the first torn record or
/// sequence regression; with \p Repair the torn file is truncated to its
/// valid prefix (unlinked outright when no valid prefix remains, so a
/// leftover empty segment can never collide with the next writer's
/// O_EXCL create) and any later segments are unlinked, so the next
/// writer's appends can never be shadowed by stale bytes. A sequence
/// *gap* — the first record above \p Watermark is not Watermark+1, or a
/// later record skips ahead — sets Out.Gap and stops the scan without
/// touching any file: the missing records were acknowledged, so this is
/// data loss to report, not damage to repair. Returns false only on an
/// I/O error (\p Err set); a torn tail or gap is a reported outcome, not
/// an error.
bool scanWalDir(const std::string &Dir, uint64_t Watermark, WalScan &Out,
                std::string *Err = nullptr, bool Repair = false);

/// The live log: sequence allocation, group-commit appends, ACK release,
/// rotation and truncation. One writer thread; every public method is
/// thread-safe.
class Wal {
public:
  /// Produces one record's framed bytes given the sequence number the log
  /// assigned it. Runs on the log thread, off the commit hot path.
  using EncodeFn = SmallFunc<void(uint64_t Seq, std::string &Out)>;
  /// Fired once the record's group has been fdatasync'ed.
  using AckFn = std::function<void()>;
  /// A tail sink: receives one durable group's framed records (the exact
  /// encodeWalRecord bytes written to disk, concatenated) right after the
  /// covering fdatasync. Runs on the log thread with no Wal lock held, so
  /// it must not block for long — hand the bytes off and return.
  using TailFn =
      std::function<void(uint64_t FirstSeq, uint64_t LastSeq,
                         const std::string &Bytes)>;

  /// \p FirstSeq is the next sequence number to hand out (recovered
  /// watermark + 1 after recovery, 1 on a fresh directory).
  Wal(const WalConfig &Config, uint64_t FirstSeq);

  /// Flushes everything queued, releases remaining ACKs and joins the log
  /// thread.
  ~Wal();

  Wal(const Wal &) = delete;
  Wal &operator=(const Wal &) = delete;

  /// Assigns the next commit sequence number and enqueues the record, both
  /// under one lock so file order is sequence order. Call from inside a
  /// commit action (detectors still held — see the file comment).
  uint64_t logCommit(EncodeFn Encode);

  /// Runs \p Ack once record \p Seq is durable — immediately on the
  /// calling thread when it already is, else on the log thread after the
  /// covering fdatasync.
  void awaitDurable(uint64_t Seq, AckFn Ack);

  /// Blocks until record \p Seq is durable.
  void waitDurable(uint64_t Seq);

  /// Blocks until everything assigned so far is durable.
  void flush();

  uint64_t durableSeq() const {
    return Durable.load(std::memory_order_acquire);
  }

  /// Largest sequence number handed out; 0 when none yet.
  uint64_t lastAssignedSeq() const;

  /// Requests a segment rotation at \p Boundary (a snapshot watermark):
  /// the log thread finishes the current segment once every record
  /// <= Boundary is written and starts the next segment fresh. Callers
  /// must guarantee every sequence <= Boundary has already been assigned
  /// (the server snapshots from a quiesced pause, so this holds).
  void rotateAfter(uint64_t Boundary);

  /// Waits until \p Boundary is durable, then unlinks every closed
  /// segment all of whose records are <= Boundary; closed segments
  /// reaching past the boundary are retained for a later call. Returns
  /// the number of segments removed.
  size_t truncateThrough(uint64_t Boundary);

  /// Registers a live tail sink under caller-chosen key \p Id (replacing
  /// any previous sink under the same key) and returns the durable
  /// watermark at registration: the sink will see every record with
  /// Seq > that watermark exactly once, in sequence order, and nothing at
  /// or below it. Records between the watermark and registration time do
  /// not exist — registration happens under the same lock that advances
  /// the watermark.
  uint64_t subscribeTail(uint64_t Id, TailFn Sink);

  /// Removes the sink under \p Id. A delivery the log thread has already
  /// snapshotted may still arrive once after this returns; callers keep
  /// whatever the sink captures alive until they have synchronized with
  /// the log thread (e.g. via one flush()).
  void unsubscribeTail(uint64_t Id);

private:
  struct Item {
    uint64_t Seq;
    uint64_t ArrivalUs;
    EncodeFn Encode;
  };

  void writerMain();
  void openSegment(uint64_t FirstSeq);
  void closeSegment();
  void syncDir();

  WalConfig Config;
  mutable std::mutex Mu;
  std::condition_variable WorkCv;    // new items / stop, waking the writer
  std::condition_variable DurableCv; // durability progress, waking waiters
  std::deque<Item> Queue;            // guarded by Mu
  std::map<uint64_t, std::vector<AckFn>> Acks; // guarded by Mu
  uint64_t NextSeq;                  // guarded by Mu
  bool Stop = false;                 // guarded by Mu
  bool RotatePending = false;        // guarded by Mu
  uint64_t RotateBoundary = 0;       // guarded by Mu
  /// Closed segments eligible for truncation: file name and the last
  /// sequence number written to the segment.
  std::vector<std::pair<std::string, uint64_t>> Closed; // guarded by Mu
  /// Live tail sinks by subscriber key. Snapshotted by the writer inside
  /// the same critical section that publishes a group's durability, which
  /// is what makes the exactly-once contract of subscribeTail() hold.
  std::map<uint64_t, TailFn> Tails; // guarded by Mu
  std::atomic<uint64_t> Durable{0};

  // Writer-thread-only state (LastWritten is seeded to FirstSeq-1 by the
  // constructor before the thread starts, so a rotation boundary at or
  // below the recovered watermark is satisfied without any new write).
  int Fd = -1;
  uint64_t SegFirst = 0;
  uint64_t LastWritten = 0;
  std::string CurrentName;

  std::thread Writer;
};

} // namespace svc
} // namespace comlat

#endif // COMLAT_SVC_WAL_H
